#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/entropy_model.hpp"
#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/rng.hpp"
#include "stats/summary.hpp"

/// Property-based (parameterized) suites sweeping the model space:
/// the closed forms of §6 must agree with protocol-faithful Monte-Carlo
/// across loss rates, fanouts and request sizes, and the detection
/// machinery must behave monotonically in the freeriding degree.

namespace lifting::analysis {
namespace {

// ---------------------------------------------------- formulas vs sampler

using ModelPoint = std::tuple<double /*loss*/, std::uint32_t /*fanout*/,
                              std::uint32_t /*request*/, double /*p_dcc*/>;

/// Per-test deterministic seed derived from the test's own name.
std::uint64_t split_seed() {
  const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
  return std::hash<std::string>{}(std::string(info.name()));
}

class FormulaVsMonteCarlo : public ::testing::TestWithParam<ModelPoint> {};

TEST_P(FormulaVsMonteCarlo, HonestMeanMatches) {
  const auto [loss, fanout, request, p_dcc] = GetParam();
  const ProtocolModel m{loss, fanout, request, p_dcc};
  BlameSampler sampler(m);
  Pcg32 rng{split_seed()};
  stats::Summary s;
  for (int i = 0; i < 30000; ++i) s.add(sampler.sample_honest(rng));
  const double expected = expected_wrongful_blame(m);
  EXPECT_NEAR(s.mean(), expected, std::max(0.35, 0.03 * expected));
}

TEST_P(FormulaVsMonteCarlo, HonestVarianceMatches) {
  const auto [loss, fanout, request, p_dcc] = GetParam();
  const ProtocolModel m{loss, fanout, request, p_dcc};
  BlameSampler sampler(m);
  Pcg32 rng{split_seed() ^ 1};
  stats::Summary s;
  for (int i = 0; i < 50000; ++i) s.add(sampler.sample_honest(rng));
  const double sigma_model = std::sqrt(variance_wrongful_blame(m));
  EXPECT_NEAR(s.stddev(), sigma_model, std::max(0.3, 0.06 * sigma_model));
}

INSTANTIATE_TEST_SUITE_P(
    ModelSweep, FormulaVsMonteCarlo,
    ::testing::Values(ModelPoint{0.02, 7, 4, 1.0},
                      ModelPoint{0.07, 12, 4, 1.0},
                      ModelPoint{0.15, 12, 4, 1.0},
                      ModelPoint{0.07, 8, 2, 1.0},
                      ModelPoint{0.07, 16, 8, 1.0},
                      ModelPoint{0.07, 12, 4, 0.5},
                      ModelPoint{0.04, 7, 4, 0.0},
                      ModelPoint{0.30, 6, 3, 1.0}));

// ----------------------------------------------- freerider blame sweep

using DegreePoint = std::tuple<double, double, double>;

class FreeriderFormulaSweep : public ::testing::TestWithParam<DegreePoint> {};

TEST_P(FreeriderFormulaSweep, MeanMatchesSampler) {
  const auto [d1, d2, d3] = GetParam();
  const ProtocolModel m{0.07, 12, 4, 1.0};
  const FreeriderDegree d{d1, d2, d3};
  BlameSampler sampler(m);
  Pcg32 rng{1234};
  stats::Summary s;
  for (int i = 0; i < 30000; ++i) s.add(sampler.sample_period(rng, d));
  const double expected = expected_blame_freerider(m, d);
  EXPECT_NEAR(s.mean(), expected, std::max(0.5, 0.03 * expected));
}

TEST_P(FreeriderFormulaSweep, BlameNeverBelowHonest) {
  const auto [d1, d2, d3] = GetParam();
  const ProtocolModel m{0.07, 12, 4, 1.0};
  EXPECT_GE(expected_blame_freerider(m, FreeriderDegree{d1, d2, d3}),
            expected_wrongful_blame(m) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DegreeGrid, FreeriderFormulaSweep,
    ::testing::Values(DegreePoint{0.0, 0.0, 0.0}, DegreePoint{0.1, 0.0, 0.0},
                      DegreePoint{0.0, 0.1, 0.0}, DegreePoint{0.0, 0.0, 0.1},
                      DegreePoint{0.05, 0.05, 0.05},
                      DegreePoint{0.2, 0.2, 0.2},
                      DegreePoint{0.5, 0.3, 0.1},
                      DegreePoint{1.0, 0.0, 0.0}));

// --------------------------------------------------------- monotonicity

TEST(DetectionMonotonicity, DetectionGrowsWithDelta) {
  const ProtocolModel m{0.07, 12, 4, 1.0};
  BlameSampler sampler(m);
  Pcg32 rng{777};
  double previous = -0.01;
  for (const double delta : {0.02, 0.05, 0.10, 0.15}) {
    const auto est = estimate_detection(
        sampler, FreeriderDegree::uniform(delta), -9.75, 50, 600, rng);
    EXPECT_GE(est.detection, previous - 0.05)
        << "detection not monotone at delta=" << delta;
    previous = est.detection;
  }
  EXPECT_GT(previous, 0.95);  // δ=0.15 is detected nearly always
}

TEST(DetectionMonotonicity, DetectionGrowsWithTimeInSystem) {
  const ProtocolModel m{0.07, 12, 4, 1.0};
  BlameSampler sampler(m);
  Pcg32 rng{778};
  const auto d = FreeriderDegree::uniform(0.05);
  const auto early = estimate_detection(sampler, d, -9.75, 10, 800, rng);
  const auto late = estimate_detection(sampler, d, -9.75, 100, 800, rng);
  EXPECT_GE(late.detection, early.detection);
  EXPECT_LE(late.false_positive, early.false_positive + 0.02);
}

TEST(CompensationProperty, ZeroMeanAcrossLossRates) {
  for (const double loss : {0.0, 0.02, 0.07, 0.15, 0.25}) {
    const ProtocolModel m{loss, 10, 4, 1.0};
    BlameSampler sampler(m);
    Pcg32 rng{static_cast<std::uint64_t>(loss * 1000) + 3};
    stats::Summary s;
    for (int i = 0; i < 2000; ++i) {
      s.add(sampler.sample_score(rng, FreeriderDegree{}, 30));
    }
    EXPECT_NEAR(s.mean(), 0.0, 0.4) << "loss=" << loss;
  }
}

// --------------------------------------------------- entropy model sweep

class BiasInversionSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(BiasInversionSweep, InversionIsConsistentWithForwardModel) {
  const auto [gamma, coalition] = GetParam();
  const std::uint32_t history = 600;
  const double p_star = max_undetected_bias(gamma, coalition, history);
  // At p*_m the entropy equals γ (when an interior solution exists).
  const double uniform_rate =
      static_cast<double>(coalition) / static_cast<double>(history);
  if (p_star > uniform_rate + 1e-9 && p_star < 1.0 - 1e-9) {
    EXPECT_NEAR(biased_history_entropy(p_star, coalition, history), gamma,
                1e-6);
  }
  // Slightly more bias must fail the check.
  if (p_star < 0.99) {
    EXPECT_LT(biased_history_entropy(std::min(1.0, p_star + 0.02), coalition,
                                     history),
              gamma + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GammaCoalitionGrid, BiasInversionSweep,
    ::testing::Combine(::testing::Values(8.5, 8.95, 9.1),
                       ::testing::Values(5u, 10u, 25u, 50u, 100u)));

}  // namespace
}  // namespace lifting::analysis

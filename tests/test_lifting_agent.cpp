#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "gossip/mailer.hpp"
#include "lifting/agent.hpp"
#include "membership/directory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace lifting {
namespace {

/// A bank of agents wired to a perfect network (no engines — protocol
/// events are injected directly through the EngineObserver interface).
struct AgentFixture {
  explicit AgentFixture(std::uint32_t n, LiftingParams params = defaults(),
                        double loss = 0.0)
      : params_(params), directory(n), network(sim, Pcg32{500}),
        mailer(network, nullptr) {
    hooks.on_blame_emitted = [this](NodeId by, NodeId target, double value,
                                    gossip::BlameReason reason) {
      emitted.push_back({by, target, value, reason});
    };
    hooks.on_expulsion_committed = [this](NodeId victim, NodeId manager,
                                          bool from_audit) {
      commits.push_back({victim, manager, from_audit});
    };
    sim::LinkProfile link;
    link.loss = loss;
    link.latency_base = milliseconds(5);
    link.latency_jitter = milliseconds(2);
    link.upload_capacity_bps = 1e9;
    for (std::uint32_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<Agent>(
          sim, mailer, directory, NodeId{i}, params_,
          gossip::BehaviorSpec::honest(), derive_rng(42, i), kSeed, kSimEpoch,
          hooks));
      network.add_node(NodeId{i}, link,
                       [this, i](sim::Delivery<gossip::Message> d) {
                         agents[i]->handle(d.from, d.payload);
                       });
    }
  }

  static LiftingParams defaults() {
    LiftingParams p;
    p.fanout = 4;
    p.period = milliseconds(500);
    p.nominal_request_size = 2;
    p.managers = 5;
    p.loss_estimate = 0.0;
    p.eta = -5.0;
    p.min_score_replies = 2;
    p.min_periods_before_detection = 0;
    return p;
  }

  /// Min-vote score over the target's manager agents (message-free).
  double true_score(NodeId target) {
    const auto mgrs =
        managers_of(target, directory.initial_size(), params_.managers, kSeed);
    double best = 1e18;
    for (const auto m : mgrs) {
      best = std::min(best, agents[m.value()]->manager_store().normalized_score(
                                target, sim.now()));
    }
    return best;
  }

  struct Emitted {
    NodeId by;
    NodeId target;
    double value;
    gossip::BlameReason reason;
  };
  struct Commit {
    NodeId victim;
    NodeId manager;
    bool from_audit;
  };

  static constexpr std::uint64_t kSeed = 9001;
  LiftingParams params_;
  sim::Simulator sim;
  membership::Directory directory;
  sim::Network<gossip::Message> network;
  gossip::Mailer mailer;
  Agent::Hooks hooks;
  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<Emitted> emitted;
  std::vector<Commit> commits;
};

TEST(Agent, BlameReachesAllManagers) {
  AgentFixture fx(20);
  // Agent 1 blames node 2 directly through the emit path (via a protocol
  // event: an unserved request).
  fx.agents[1]->on_request_sent(NodeId{2}, 1, {ChunkId{5}});
  fx.sim.run();
  ASSERT_EQ(fx.emitted.size(), 1u);
  EXPECT_EQ(fx.emitted[0].target, NodeId{2});
  EXPECT_DOUBLE_EQ(fx.emitted[0].value, 4.0);  // f
  // Every manager's ledger saw the blame (no loss).
  const auto mgrs = managers_of(NodeId{2}, 20, fx.params_.managers,
                                AgentFixture::kSeed);
  for (const auto m : mgrs) {
    EXPECT_DOUBLE_EQ(
        fx.agents[m.value()]->manager_store().raw_blame_total(NodeId{2}),
        4.0);
  }
}

TEST(Agent, ScoreCheckExpelsHeavilyBlamedNode) {
  AgentFixture fx(20);
  // Pile blames on node 3 well past η, then have node 1 run a score check.
  for (int i = 0; i < 30; ++i) {
    fx.agents[1]->on_request_sent(NodeId{3}, static_cast<PeriodIndex>(i),
                                  {ChunkId{static_cast<std::uint32_t>(i)}});
  }
  fx.sim.run_until(fx.sim.now() + seconds(5.0));
  ASSERT_LT(fx.true_score(NodeId{3}), fx.params_.eta);
  fx.agents[1]->score_check(NodeId{3});
  fx.sim.run_until(fx.sim.now() + seconds(5.0));
  // A majority of node 3's managers committed the expulsion.
  std::size_t committed = 0;
  const auto mgrs = managers_of(NodeId{3}, 20, fx.params_.managers,
                                AgentFixture::kSeed);
  for (const auto m : mgrs) {
    if (fx.agents[m.value()]->manager_store().expelled(NodeId{3})) {
      ++committed;
    }
  }
  EXPECT_GT(committed * 2, mgrs.size());
  EXPECT_FALSE(fx.commits.empty());
  EXPECT_FALSE(fx.commits[0].from_audit);
}

TEST(Agent, ScoreCheckLeavesHealthyNodeAlone) {
  AgentFixture fx(20);
  fx.agents[1]->score_check(NodeId{3});
  fx.sim.run_until(fx.sim.now() + seconds(5.0));
  EXPECT_TRUE(fx.commits.empty());
}

TEST(Agent, WitnessConfirmsRecordedProposal) {
  AgentFixture fx(6);
  // Node 2 saw a proposal from node 5 containing chunks {1,2}.
  fx.agents[2]->on_propose_received(NodeId{5}, 9, {ChunkId{1}, ChunkId{2}});
  // Node 0 asks node 2 to confirm; capture the response by intercepting
  // node 0's handler via the cross-checker path: use a raw network probe.
  bool got_yes = false;
  fx.network.set_handler(NodeId{0},
                         [&](sim::Delivery<gossip::Message> d) {
                           const auto* resp =
                               std::get_if<gossip::ConfirmRespMsg>(&d.payload);
                           if (resp != nullptr) got_yes = resp->confirmed;
                         });
  fx.network.send(NodeId{0}, NodeId{2}, sim::Channel::kDatagram, 50,
                  gossip::Message{gossip::ConfirmReqMsg{NodeId{5}, 9,
                                                        {ChunkId{1}}}});
  fx.sim.run();
  EXPECT_TRUE(got_yes);
}

TEST(Agent, WitnessDeniesUnknownProposal) {
  AgentFixture fx(6);
  bool got_response = false;
  bool confirmed = true;
  fx.network.set_handler(NodeId{0},
                         [&](sim::Delivery<gossip::Message> d) {
                           const auto* resp =
                               std::get_if<gossip::ConfirmRespMsg>(&d.payload);
                           if (resp != nullptr) {
                             got_response = true;
                             confirmed = resp->confirmed;
                           }
                         });
  fx.network.send(NodeId{0}, NodeId{2}, sim::Channel::kDatagram, 50,
                  gossip::Message{gossip::ConfirmReqMsg{NodeId{5}, 9,
                                                        {ChunkId{77}}}});
  fx.sim.run();
  EXPECT_TRUE(got_response);
  EXPECT_FALSE(confirmed);
}

TEST(Agent, AuditOfHonestAgentPasses) {
  LiftingParams params = AgentFixture::defaults();
  params.gamma = 4.0;
  params.history_window = seconds(10.0);
  params.rate_tolerance = 0.0;  // short histories are fine in this test
  params.min_fanin_samples = 1000;
  AgentFixture fx(64, params);
  std::vector<AuditReport> reports;
  fx.agents[0] = nullptr;  // rebuild agent 0 with a report hook
  Agent::Hooks hooks = fx.hooks;
  hooks.on_audit_report = [&](NodeId, const AuditReport& r) {
    reports.push_back(r);
  };
  fx.agents[0] = std::make_unique<Agent>(
      fx.sim, fx.mailer, fx.directory, NodeId{0}, params,
      gossip::BehaviorSpec::honest(), derive_rng(42, 0), AgentFixture::kSeed,
      kSimEpoch, hooks);
  fx.network.set_handler(NodeId{0}, [&](sim::Delivery<gossip::Message> d) {
    fx.agents[0]->handle(d.from, d.payload);
  });

  // Subject (node 1) builds a uniform history of 20 periods x 4 partners,
  // and each partner witnesses the matching proposal.
  Pcg32 rng{7};
  for (std::uint32_t period = 1; period <= 20; ++period) {
    std::vector<NodeId> partners;
    gossip::ChunkIdList chunks{ChunkId{period}};
    const auto picks = sample_k_distinct(rng, 62, 4);
    for (const auto p : picks) partners.push_back(NodeId{p + 2});
    fx.agents[1]->on_proposal_sent(period, partners, partners, chunks);
    for (const auto partner : partners) {
      fx.agents[partner.value()]->on_propose_received(NodeId{1}, period,
                                                      chunks);
    }
  }
  fx.agents[0]->audit(NodeId{1});
  fx.sim.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].fanout_check_failed);
  EXPECT_FALSE(reports[0].fanin_check_failed);
  EXPECT_EQ(reports[0].denied, 0u);
  EXPECT_EQ(reports[0].confirmed, 80u);
  EXPECT_TRUE(fx.commits.empty());
}

TEST(Agent, AdaptivePdccDecaysWhenClean) {
  LiftingParams params = AgentFixture::defaults();
  params.adaptive_pdcc = true;
  params.p_dcc = 1.0;
  params.adaptive_min_pdcc = 0.1;
  params.adaptive_decay = 0.5;
  AgentFixture fx(10, params);
  fx.agents[1]->start(milliseconds(1));
  // No protocol activity at all: every period is clean.
  fx.sim.run_until(fx.sim.now() + seconds(5.0));
  EXPECT_NEAR(fx.agents[1]->current_pdcc(), 0.1, 1e-9);
}

TEST(Agent, AdaptivePdccSnapsBackOnSuspicion) {
  LiftingParams params = AgentFixture::defaults();
  params.adaptive_pdcc = true;
  params.p_dcc = 1.0;
  params.adaptive_min_pdcc = 0.0;
  params.adaptive_decay = 0.5;
  AgentFixture fx(10, params);
  fx.agents[1]->start(milliseconds(1));
  fx.sim.run_until(fx.sim.now() + seconds(4.0));
  ASSERT_LT(fx.agents[1]->current_pdcc(), 0.05);
  // A failed verification (unserved request => blame f) raises the
  // emitted-blame EWMA above the (zero-loss) noise floor.
  fx.agents[1]->on_request_sent(NodeId{2}, 1, {ChunkId{1}});
  fx.sim.run_until(fx.sim.now() + seconds(1.0));
  EXPECT_DOUBLE_EQ(fx.agents[1]->current_pdcc(), 1.0);
}

TEST(Agent, MeanVoteAbsorbsColludingManagerLies) {
  // Direct unit check of the two vote functions via finish_score_read is
  // internal; validate at the params level plus the inflated reply rule.
  LiftingParams p = AgentFixture::defaults();
  p.score_vote = LiftingParams::ScoreVote::kMean;
  EXPECT_NO_THROW(p.validate());
  p.adaptive_pdcc = true;
  p.adaptive_min_pdcc = 2.0;  // > p_dcc: invalid
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Agent, LyingHistoryDeniedByHonestWitnesses) {
  LiftingParams params = AgentFixture::defaults();
  params.gamma = 4.0;
  params.rate_tolerance = 0.0;
  params.min_fanin_samples = 1000;
  AgentFixture fx(64, params);
  std::vector<AuditReport> reports;
  Agent::Hooks hooks = fx.hooks;
  hooks.on_audit_report = [&](NodeId, const AuditReport& r) {
    reports.push_back(r);
  };
  fx.agents[0] = std::make_unique<Agent>(
      fx.sim, fx.mailer, fx.directory, NodeId{0}, params,
      gossip::BehaviorSpec::honest(), derive_rng(42, 0), AgentFixture::kSeed,
      kSimEpoch, hooks);
  fx.network.set_handler(NodeId{0}, [&](sim::Delivery<gossip::Message> d) {
    fx.agents[0]->handle(d.from, d.payload);
  });

  // Subject (node 1) claims proposals that no witness ever received.
  Pcg32 rng{8};
  for (std::uint32_t period = 1; period <= 20; ++period) {
    std::vector<NodeId> partners;
    const auto picks = sample_k_distinct(rng, 62, 4);
    for (const auto p : picks) partners.push_back(NodeId{p + 2});
    fx.agents[1]->on_proposal_sent(period, partners, partners,
                                   {ChunkId{period}});
  }
  fx.agents[0]->audit(NodeId{1});
  fx.sim.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].confirmed, 0u);
  EXPECT_EQ(reports[0].denied, 80u);
  // The denials became an a-posteriori blame of 80 (compensation happens
  // manager-side).
  double apcc = 0.0;
  for (const auto& e : fx.emitted) {
    if (e.reason == gossip::BlameReason::kAposterioriCheck) apcc += e.value;
  }
  EXPECT_DOUBLE_EQ(apcc, 80.0);
}

}  // namespace
}  // namespace lifting

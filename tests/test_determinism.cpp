#include <gtest/gtest.h>

#include "runtime/experiment.hpp"

/// Determinism of the simulation substrate: the same ScenarioConfig must
/// produce bit-identical outcomes on every run — the paper's claims are
/// validated by exact-seeded simulations, and the timing-wheel event queue
/// must preserve the (time, insertion-seq) execution order the results
/// depend on. Also pins a fixed-seed outcome so substrate refactors that
/// change behavior (rather than just speed) fail loudly.

namespace lifting::runtime {
namespace {

struct Outcome {
  std::uint64_t events = 0;
  sim::NetworkStats net;
  std::vector<double> honest_scores;
  std::vector<double> freerider_scores;
  double blame_emissions = 0.0;
};

Outcome outcome_of(Experiment& ex) {
  Outcome out;
  out.events = ex.simulator().events_processed();
  out.net = ex.network_stats();
  auto snap = ex.snapshot_scores();
  out.honest_scores = std::move(snap.honest);
  out.freerider_scores = std::move(snap.freeriders);
  out.blame_emissions = static_cast<double>(ex.ledger().emissions());
  return out;
}

void expect_identical(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.net.datagrams_sent, b.net.datagrams_sent);
  EXPECT_EQ(a.net.datagrams_lost, b.net.datagrams_lost);
  EXPECT_EQ(a.net.datagrams_dropped, b.net.datagrams_dropped);
  EXPECT_EQ(a.net.datagrams_delivered, b.net.datagrams_delivered);
  EXPECT_EQ(a.net.reliable_sent, b.net.reliable_sent);
  EXPECT_EQ(a.net.reliable_delivered, b.net.reliable_delivered);
  EXPECT_EQ(a.net.bytes_sent, b.net.bytes_sent);
  EXPECT_EQ(a.net.bytes_delivered, b.net.bytes_delivered);
  EXPECT_EQ(a.blame_emissions, b.blame_emissions);
  ASSERT_EQ(a.honest_scores.size(), b.honest_scores.size());
  for (std::size_t i = 0; i < a.honest_scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.honest_scores[i], b.honest_scores[i]);
  }
  ASSERT_EQ(a.freerider_scores.size(), b.freerider_scores.size());
  for (std::size_t i = 0; i < a.freerider_scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.freerider_scores[i], b.freerider_scores[i]);
  }
}

ScenarioConfig fixture_config() {
  auto cfg = ScenarioConfig::small(60);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.02;
  return cfg;
}

TEST(Determinism, IdenticalRunsProduceIdenticalOutcomes) {
  Experiment a(fixture_config());
  a.run();
  Experiment b(fixture_config());
  b.run();
  expect_identical(outcome_of(a), outcome_of(b));
}

TEST(Determinism, RunUntilCheckpointsMatchStraightRun) {
  // Driving the same scenario through intermediate run_until() deadlines
  // (which make the event queue peek ahead and then accept pushes behind
  // its cursor) must not change any outcome.
  Experiment straight(fixture_config());
  straight.run();

  Experiment stepped(fixture_config());
  const auto end = kSimEpoch + fixture_config().duration;
  for (int i = 1; i <= 7; ++i) {
    stepped.run_until(kSimEpoch + (i * fixture_config().duration) / 7);
  }
  stepped.run_until(end);
  expect_identical(outcome_of(straight), outcome_of(stepped));
}

TEST(Determinism, FixedSeedOutcomeIsPinned) {
  // Golden counters for ScenarioConfig::planetlab() shortened to 10 s.
  // Originally captured from the seed implementation (binary-heap event
  // queue, hash-map node state); re-captured once, deliberately, when the
  // churn PR (a) replaced Engine::send_acks' per-phase hash-map grouping
  // with a stable sort — acks now go out in ascending target-id order
  // instead of unordered_map iteration order, so the goldens are no longer
  // hostage to stdlib hash-map iteration — and (b) moved per-node rng
  // streams to disjoint 2^32-wide bases (the old 0x1000+i/0x2000+i scheme
  // collided agent and engine streams for populations over 4096). Both
  // reorder rng draws and shift every downstream counter. A change here
  // means the substrate changed *behavior*, not just speed.
  auto cfg = ScenarioConfig::planetlab();
  cfg.duration = seconds(10.0);
  cfg.stream.duration = seconds(8.0);
  Experiment ex(cfg);
  ex.run();
  EXPECT_EQ(ex.simulator().events_processed(), 762243u);
  EXPECT_EQ(ex.network_stats().datagrams_sent, 762265u);
  EXPECT_EQ(ex.network_stats().datagrams_lost, 39850u);
  EXPECT_EQ(ex.network_stats().datagrams_dropped, 0u);
  EXPECT_EQ(ex.network_stats().datagrams_delivered, 714168u);
  EXPECT_EQ(ex.network_stats().bytes_sent, 251943574u);
  EXPECT_EQ(ex.network_stats().bytes_delivered, 238084850u);
  EXPECT_EQ(ex.ledger().emissions(), 17862u);
  double freerider_blame = 0.0;
  for (const auto id : ex.freerider_ids()) {
    freerider_blame += ex.ledger().total(id);
  }
  EXPECT_NEAR(freerider_blame, 7747.159324, 1e-4);
}

TEST(Determinism, ChurnTimelineOutcomesAreReproducible) {
  // Dynamic membership must be as deterministic as the static scenarios:
  // the timeline applies through ordinary simulator events, joins derive
  // their rngs from (seed, id), and the Poisson preset is a pure function
  // of (churn, base_nodes, seed).
  auto make = [] {
    auto cfg = fixture_config();
    ScenarioTimeline::PoissonChurn churn;
    churn.arrival_fraction_per_min = 0.5;
    churn.departure_fraction_per_min = 0.5;
    churn.crash_fraction = 0.5;
    churn.freerider_fraction = 0.2;
    churn.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
    churn.start = seconds(2.0);
    churn.end = seconds(18.0);
    cfg.timeline = ScenarioTimeline::poisson_churn(churn, cfg.nodes, cfg.seed);
    return cfg;
  };
  Experiment a(make());
  a.run();
  Experiment b(make());
  b.run();
  ASSERT_GT(a.joins().size() + a.departures().size(), 0u);
  EXPECT_EQ(a.joins().size(), b.joins().size());
  EXPECT_EQ(a.departures().size(), b.departures().size());
  expect_identical(outcome_of(a), outcome_of(b));
}

}  // namespace
}  // namespace lifting::runtime

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "lifting/auditor.hpp"
#include "sim/simulator.hpp"

namespace lifting {
namespace {

struct AuditorFixture {
  AuditorFixture() {
    params.fanout = 4;
    params.period = milliseconds(500);
    params.gamma = 5.0;
    params.history_window = seconds(10.0);  // n_h = 20
    params.audit_poll_timeout = seconds(1.0);
    params.min_fanin_samples = 8;
    params.rate_tolerance = 0.5;
    params.p_dcc = 1.0;
    auditor.emplace(
        sim, params, NodeId{0},
        [this](NodeId t, double v, gossip::BlameReason r) {
          blames.push_back({t, v, r});
        },
        [this](NodeId to, gossip::Message m) {
          sent.emplace_back(to, std::move(m));
        },
        [this](NodeId t) { expelled.push_back(t); },
        [this](const AuditReport& r) { reports.push_back(r); });
  }

  /// History with `periods` records, distinct partners, distinct chunks.
  [[nodiscard]] static gossip::AuditHistoryMsg good_history(
      std::uint32_t audit_id, std::uint32_t periods, std::uint32_t fanout) {
    gossip::AuditHistoryMsg msg;
    msg.audit_id = audit_id;
    std::uint32_t next_partner = 50;
    std::uint32_t next_chunk = 1000;
    for (std::uint32_t p = 0; p < periods; ++p) {
      gossip::HistoryProposalRecord rec;
      rec.period = p;
      for (std::uint32_t j = 0; j < fanout; ++j) {
        rec.partners.push_back(NodeId{next_partner++});
        rec.chunks.push_back(ChunkId{next_chunk++});
      }
      msg.proposals.push_back(std::move(rec));
    }
    return msg;
  }

  [[nodiscard]] std::uint32_t current_audit_id() const {
    // Deterministic: ids start at 1 and increment per audit.
    return static_cast<std::uint32_t>(auditor->audits_started());
  }

  struct BlameRecord {
    NodeId target;
    double value;
    gossip::BlameReason reason;
  };

  sim::Simulator sim;
  LiftingParams params;
  std::optional<Auditor> auditor;
  std::vector<BlameRecord> blames;
  std::vector<std::pair<NodeId, gossip::Message>> sent;
  std::vector<NodeId> expelled;
  std::vector<AuditReport> reports;
};

TEST(Auditor, StartsWithHistoryRequest) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  ASSERT_EQ(fx.sent.size(), 1u);
  EXPECT_EQ(fx.sent[0].first, NodeId{7});
  EXPECT_TRUE(
      std::holds_alternative<gossip::AuditRequestMsg>(fx.sent[0].second));
}

TEST(Auditor, SilentSubjectIsExpelled) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  fx.sim.run();
  ASSERT_EQ(fx.expelled.size(), 1u);
  EXPECT_EQ(fx.expelled[0], NodeId{7});
  ASSERT_EQ(fx.reports.size(), 1u);
  EXPECT_TRUE(fx.reports[0].rate_check_failed);
}

TEST(Auditor, UniformHistoryPassesFanoutEntropy) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  const auto history = AuditorFixture::good_history(1, 20, 4);
  fx.auditor->on_history(NodeId{7}, history);
  // 80 distinct partners -> entropy log2(80) = 6.32 > γ = 5: polls go out.
  bool polled = false;
  for (const auto& [to, msg] : fx.sent) {
    if (std::holds_alternative<gossip::HistoryPollMsg>(msg)) polled = true;
  }
  EXPECT_TRUE(polled);
  EXPECT_TRUE(fx.expelled.empty());
}

TEST(Auditor, CoalitionHeavyHistoryFailsFanoutEntropy) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  // All proposals to the same 3 partners: entropy log2(3) = 1.58 < 5.
  gossip::AuditHistoryMsg msg;
  msg.audit_id = 1;
  for (std::uint32_t p = 0; p < 20; ++p) {
    gossip::HistoryProposalRecord rec;
    rec.period = p;
    rec.partners = {NodeId{100}, NodeId{101}, NodeId{102}};
    rec.chunks = {ChunkId{p}};
    msg.proposals.push_back(rec);
  }
  fx.auditor->on_history(NodeId{7}, msg);
  ASSERT_EQ(fx.expelled.size(), 1u);
  EXPECT_EQ(fx.expelled[0], NodeId{7});
  ASSERT_EQ(fx.reports.size(), 1u);
  EXPECT_TRUE(fx.reports[0].fanout_check_failed);
  EXPECT_LT(fx.reports[0].fanout_entropy, 2.0);
}

TEST(Auditor, ShortHistoryBlamedForRate) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  // 5 records where n_h = 20 and tolerance 0.5 expects >= 10.
  const auto history = AuditorFixture::good_history(1, 5, 4);
  fx.auditor->on_history(NodeId{7}, history);
  fx.sim.run();
  double rate_blame = 0.0;
  for (const auto& b : fx.blames) {
    if (b.reason == gossip::BlameReason::kRateCheck) rate_blame += b.value;
  }
  EXPECT_DOUBLE_EQ(rate_blame, 5.0 * 4.0);  // 5 missing × f
}

TEST(Auditor, DenialsBecomeApccBlames) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  const auto history = AuditorFixture::good_history(1, 20, 4);
  fx.auditor->on_history(NodeId{7}, history);
  // Answer every poll: first 3 witnesses deny everything, rest confirm.
  int answered = 0;
  for (const auto& [to, msg] : fx.sent) {
    const auto* poll = std::get_if<gossip::HistoryPollMsg>(&msg);
    if (poll == nullptr) continue;
    gossip::HistoryPollRespMsg resp;
    resp.audit_id = poll->audit_id;
    resp.subject = poll->subject;
    if (answered < 3) {
      resp.denied = static_cast<std::uint32_t>(poll->claims.size());
    } else {
      resp.confirmed = static_cast<std::uint32_t>(poll->claims.size());
    }
    ++answered;
    fx.auditor->on_poll_response(to, resp);
  }
  fx.sim.run();
  double apcc = 0.0;
  for (const auto& b : fx.blames) {
    if (b.reason == gossip::BlameReason::kAposterioriCheck) apcc += b.value;
  }
  EXPECT_DOUBLE_EQ(apcc, 3.0);  // one claim per partner per period here
  ASSERT_EQ(fx.reports.size(), 1u);
  EXPECT_EQ(fx.reports[0].denied, 3u);
}

TEST(Auditor, CoalitionAskersFailFaninEntropy) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  const auto history = AuditorFixture::good_history(1, 20, 4);
  fx.auditor->on_history(NodeId{7}, history);
  // Every witness reports the same two askers: F'_h entropy = 1 < γ.
  for (const auto& [to, msg] : fx.sent) {
    const auto* poll = std::get_if<gossip::HistoryPollMsg>(&msg);
    if (poll == nullptr) continue;
    gossip::HistoryPollRespMsg resp;
    resp.audit_id = poll->audit_id;
    resp.subject = poll->subject;
    resp.confirmed = static_cast<std::uint32_t>(poll->claims.size());
    resp.confirm_askers = {NodeId{200}, NodeId{201}};
    fx.auditor->on_poll_response(to, resp);
  }
  fx.sim.run();
  ASSERT_EQ(fx.reports.size(), 1u);
  EXPECT_TRUE(fx.reports[0].fanin_check_failed);
  ASSERT_EQ(fx.expelled.size(), 1u);
  EXPECT_EQ(fx.expelled[0], NodeId{7});
}

TEST(Auditor, DiverseAskersPassFaninEntropy) {
  AuditorFixture fx;
  fx.auditor->start_audit(NodeId{7});
  const auto history = AuditorFixture::good_history(1, 20, 4);
  fx.auditor->on_history(NodeId{7}, history);
  std::uint32_t next_asker = 300;
  for (const auto& [to, msg] : fx.sent) {
    const auto* poll = std::get_if<gossip::HistoryPollMsg>(&msg);
    if (poll == nullptr) continue;
    gossip::HistoryPollRespMsg resp;
    resp.audit_id = poll->audit_id;
    resp.subject = poll->subject;
    resp.confirmed = static_cast<std::uint32_t>(poll->claims.size());
    resp.confirm_askers = {NodeId{next_asker++}, NodeId{next_asker++}};
    fx.auditor->on_poll_response(to, resp);
  }
  fx.sim.run();
  ASSERT_EQ(fx.reports.size(), 1u);
  EXPECT_FALSE(fx.reports[0].fanin_check_failed);
  EXPECT_TRUE(fx.expelled.empty());
}

TEST(Auditor, FewFaninSamplesSkipsTheCheck) {
  AuditorFixture fx;
  fx.params.min_fanin_samples = 1000;  // unreachable
  fx.auditor.emplace(
      fx.sim, fx.params, NodeId{0},
      [&](NodeId, double, gossip::BlameReason) {},
      [&](NodeId to, gossip::Message m) { fx.sent.emplace_back(to, std::move(m)); },
      [&](NodeId t) { fx.expelled.push_back(t); },
      [&](const AuditReport& r) { fx.reports.push_back(r); });
  fx.auditor->start_audit(NodeId{7});
  const auto history = AuditorFixture::good_history(1, 20, 4);
  fx.auditor->on_history(NodeId{7}, history);
  for (const auto& [to, msg] : fx.sent) {
    const auto* poll = std::get_if<gossip::HistoryPollMsg>(&msg);
    if (poll == nullptr) continue;
    gossip::HistoryPollRespMsg resp;
    resp.audit_id = poll->audit_id;
    resp.subject = poll->subject;
    resp.confirmed = static_cast<std::uint32_t>(poll->claims.size());
    resp.confirm_askers = {NodeId{200}};  // coalition-like, but too few
    fx.auditor->on_poll_response(to, resp);
  }
  fx.sim.run();
  ASSERT_EQ(fx.reports.size(), 1u);
  EXPECT_FALSE(fx.reports[0].fanin_check_failed);
}

}  // namespace
}  // namespace lifting

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "faults/plan.hpp"
#include "obs/registry.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"

/// Determinism under parallelism (DESIGN.md §6): sharding independent
/// Experiments across a worker pool must be invisible in the results —
/// per-run digests and task-ordered aggregates are byte-identical across
/// thread counts, a spec's outcome does not depend on which worker lane
/// (with whatever deployment history) executes it, and Experiment::reset
/// is bit-identical to fresh construction. This suite is the
/// ThreadSanitizer CI target: any hidden shared mutable state between
/// concurrent Experiments fails loudly here.

namespace lifting::runtime {
namespace {

/// A fast scenario (~0.1 s simulated work) with enough machinery on —
/// losses, weak links, freeriders, churn on odd indices — that hidden
/// sharing anywhere in the stack would skew a counter.
RunSpec quick_spec(std::uint32_t index) {
  auto cfg = ScenarioConfig::small(36 + (index % 3) * 8);
  cfg.duration = seconds(6.0);
  cfg.stream.duration = seconds(5.0);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.01;
  cfg.weak_fraction = 0.1;
  cfg.weak_link = cfg.link;
  cfg.weak_link.loss = 0.05;
  cfg.weak_link.upload_capacity_bps = 5e6;
  const std::uint64_t seed = derive_task_seed(0xD15EA5EULL, index);
  if (index % 2 == 1) {
    ScenarioTimeline::PoissonChurn churn;
    churn.arrival_fraction_per_min = 0.5;
    churn.departure_fraction_per_min = 0.5;
    churn.crash_fraction = 0.5;
    churn.freerider_fraction = 0.1;
    churn.freerider_behavior = cfg.freerider_behavior;
    churn.start = seconds(1.0);
    churn.end = seconds(5.0);
    cfg.timeline = ScenarioTimeline::poisson_churn(churn, cfg.nodes, seed);
  }
  return RunSpec{std::move(cfg), seed};
}

std::vector<RunSpec> quick_specs(std::uint32_t count) {
  std::vector<RunSpec> specs;
  for (std::uint32_t i = 0; i < count; ++i) specs.push_back(quick_spec(i));
  return specs;
}

void expect_same_digests(const std::vector<RunDigest>& a,
                         const std::vector<RunDigest>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << what << ": digest of run " << i
                              << " differs";
  }
}

TEST(ParallelRunner, DigestsAreByteIdenticalAcrossThreadCounts) {
  const auto specs = quick_specs(5);
  ParallelRunner serial(1);
  const auto reference = serial.run_digests(specs);
  ASSERT_EQ(reference.size(), specs.size());
  // Non-trivial runs (the digest actually pins something).
  EXPECT_GT(reference[0].events, 0u);
  EXPECT_GT(reference[0].honest_scored, 0u);

  for (const unsigned threads : {2u, 4u}) {
    ParallelRunner runner(threads);
    EXPECT_EQ(runner.threads(), threads);
    const auto parallel = runner.run_digests(specs);
    expect_same_digests(reference, parallel,
                        threads == 2 ? "2 threads" : "4 threads");
    // The task-ordered reduce is bit-identical too (double sums included).
    RunDigest serial_total;
    RunDigest parallel_total;
    for (const auto& d : reference) serial_total.accumulate(d);
    for (const auto& d : parallel) parallel_total.accumulate(d);
    EXPECT_TRUE(serial_total == parallel_total);
  }
}

TEST(ParallelRunner, SameSpecTwiceConcurrentlyIsIdentical) {
  const auto one = quick_spec(1);  // churny: the harder re-entrancy case
  const std::vector<RunSpec> twice{one, one};
  ParallelRunner runner(2);
  const auto digests = runner.run_digests(twice);
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_TRUE(digests[0] == digests[1]);

  ParallelRunner serial(1);
  const auto alone = serial.run_digests({one});
  EXPECT_TRUE(digests[0] == alone[0]);
}

TEST(ParallelRunner, SweepWorkloadDigestsMatchAcrossThreadCounts) {
  // A slice of the real sweep workload (the bench measures the full set).
  const auto specs = scenario_sweep_specs(4);
  ParallelRunner serial(1);
  ParallelRunner pair(2);
  expect_same_digests(serial.run_digests(specs), pair.run_digests(specs),
                      "sweep slice");
}

TEST(ExperimentReset, MatchesFreshConstructionBitForBit) {
  const auto spec_a = quick_spec(0);
  const auto spec_b = quick_spec(1);  // different n, churn timeline

  // Reference: fresh deployments.
  Experiment fresh_a(spec_a.config);
  fresh_a.run();
  const auto digest_a = RunDigest::of(fresh_a);
  Experiment fresh_b(spec_b.config);
  fresh_b.run();
  const auto digest_b = RunDigest::of(fresh_b);

  // One deployment, rewound across configs: b after a, then a again.
  Experiment reused(spec_a.config);
  reused.run();
  EXPECT_TRUE(RunDigest::of(reused) == digest_a);
  reused.reset(spec_b.config);
  reused.run();
  EXPECT_TRUE(RunDigest::of(reused) == digest_b) << "reset a -> b";
  reused.reset(spec_a.config);
  reused.run();
  EXPECT_TRUE(RunDigest::of(reused) == digest_a) << "reset b -> a";
}

TEST(ExperimentReset, SeedOnlyResetReseedsTheWholeDeployment) {
  auto cfg = quick_spec(0).config;
  const std::uint64_t s1 = 0xABCDEFULL;

  auto fresh_cfg = cfg;
  fresh_cfg.seed = s1;
  Experiment fresh(fresh_cfg);
  fresh.run();
  const auto want = RunDigest::of(fresh);

  Experiment reused(cfg);  // built and run under the original seed...
  reused.run();
  // Different seeds genuinely produce different runs (the digest is not
  // trivially invariant under reseeding).
  EXPECT_FALSE(RunDigest::of(reused) == want);
  reused.reset(s1);  // ...then rewound to s1
  reused.run();
  EXPECT_TRUE(RunDigest::of(reused) == want);
}

/// quick_spec(0) with every counter family added since the fault/audit
/// PRs actually exercised: a FaultPlan firing all four fault paths at the
/// transport seam, and entropy audits over the reliable-UDP channel.
RunSpec faulty_audited_spec() {
  auto spec = quick_spec(0);
  auto& cfg = spec.config;
  faults::FaultPlan plan;
  plan.p_good_to_bad = 0.05;
  plan.p_bad_to_good = 0.3;
  plan.loss_bad = 0.8;
  plan.duplicate_probability = 0.02;
  plan.delay_spike_probability = 0.02;
  plan.delay_spike_min = milliseconds(5);
  plan.delay_spike_max = milliseconds(30);
  plan.reorder_probability = 0.02;
  plan.reorder_delay = milliseconds(10);
  cfg.faults = plan;
  cfg.lifting.audit_channel = LiftingParams::AuditChannel::kReliableUdp;
  if (cfg.lifting.audit_probability == 0.0) {
    cfg.lifting.audit_probability = 0.3;
    cfg.lifting.audit_warmup_periods = 6;
  }
  return spec;
}

/// The reset audit for the counters added since the transport-seam fault
/// and reliable-audit PRs: fault stats, audit-channel totals and the
/// engine duplicate counters must come back from Experiment::reset exactly
/// as from fresh construction. Compared through collect_metrics, which
/// folds every scattered family into one registry — so a counter leaking
/// across reset fails by name.
TEST(ExperimentReset, FaultAndAuditCountersMatchFreshConstruction) {
  const auto spec = faulty_audited_spec();

  Experiment fresh(spec.config);
  fresh.run();
  // The scenario must actually exercise the audited families, or the
  // equality below would vacuously pass on zeros.
  const auto faults = fresh.fault_stats();
  EXPECT_GT(faults.dropped(), 0u);
  EXPECT_GT(faults.duplicated + faults.delayed + faults.reordered, 0u);
  EXPECT_GT(fresh.audit_channel_totals().sends, 0u);
  obs::Registry want;
  fresh.collect_metrics(want);
  const auto want_digest = RunDigest::of(fresh);

  // Run an unrelated churny spec first, then reset into the faulty one.
  Experiment reused(quick_spec(1).config);
  reused.run();
  reused.reset(spec.config);
  reused.run();
  obs::Registry got;
  reused.collect_metrics(got);

  EXPECT_TRUE(RunDigest::of(reused) == want_digest);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const auto& w = want.entries()[i];
    const auto& g = got.entries()[i];
    EXPECT_EQ(w.name, g.name) << "registry order diverged at slot " << i;
    EXPECT_EQ(w.counter, g.counter) << "counter leaked across reset: "
                                    << w.name;
    EXPECT_EQ(w.gauge, g.gauge) << "gauge leaked across reset: " << w.name;
  }
}

TEST(ExperimentReset, ResetAfterWindDownDrainsClean) {
  const auto spec = quick_spec(3);  // churny
  Experiment ex(spec.config);
  ex.run();
  ex.wind_down();
  EXPECT_EQ(ex.network().in_flight(), 0u);
  const auto first = RunDigest::of(ex);

  ex.reset();
  ex.run();
  ex.wind_down();
  EXPECT_EQ(ex.network().in_flight(), 0u) << "pool leak across reset";
  EXPECT_EQ(ex.simulator().pending_events(), 0u);
  EXPECT_TRUE(RunDigest::of(ex) == first) << "identical repetition";
}

TEST(ParallelRunner, MapCollectsResultsInTaskOrder) {
  ParallelRunner runner(4);
  const auto out = runner.map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, FirstTaskExceptionPropagatesByIndex) {
  ParallelRunner runner(4);
  try {
    runner.for_each(64, [](std::size_t i, unsigned) {
      if (i % 7 == 3) {  // lowest failing index is 3
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
}

TEST(ParallelRunner, TaskSeedDerivationIsPureAndSpread) {
  EXPECT_EQ(derive_task_seed(42, 0), derive_task_seed(42, 0));
  EXPECT_NE(derive_task_seed(42, 0), derive_task_seed(42, 1));
  EXPECT_NE(derive_task_seed(42, 0), derive_task_seed(43, 0));
}

}  // namespace
}  // namespace lifting::runtime

#include <gtest/gtest.h>

#include <vector>

#include "net/udp_transport.hpp"

namespace lifting::net {
namespace {

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport transport;
  std::vector<std::pair<NodeId, gossip::Message>> received;
  ASSERT_TRUE(transport.add_endpoint(NodeId{0}, nullptr));
  ASSERT_TRUE(transport.add_endpoint(
      NodeId{1}, [&](NodeId from, gossip::Message msg) {
        received.emplace_back(from, std::move(msg));
      }));

  gossip::ProposeMsg propose{3, {ChunkId{10}, ChunkId{11}}};
  ASSERT_TRUE(transport.send(NodeId{0}, NodeId{1}, gossip::Message{propose}));

  // Loopback delivery is near-instant; poll with a small wait budget.
  std::size_t delivered = 0;
  for (int i = 0; i < 50 && delivered == 0; ++i) {
    delivered += transport.poll_wait(20);
  }
  ASSERT_EQ(delivered, 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, NodeId{0});
  const auto* msg = std::get_if<gossip::ProposeMsg>(&received[0].second);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->period, 3u);
  EXPECT_EQ(msg->chunks, propose.chunks);
}

TEST(UdpTransport, ManyNodesExchangeVerificationTraffic) {
  UdpTransport transport;
  constexpr std::uint32_t kNodes = 8;
  std::vector<int> acks_seen(kNodes, 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(transport.add_endpoint(
        NodeId{i}, [&acks_seen, i](NodeId, gossip::Message msg) {
          if (std::holds_alternative<gossip::AckMsg>(msg)) ++acks_seen[i];
        }));
  }
  // Every node acks every other node once.
  for (std::uint32_t a = 0; a < kNodes; ++a) {
    for (std::uint32_t b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      gossip::AckMsg ack{1, {ChunkId{a}}, {NodeId{b}}};
      ASSERT_TRUE(transport.send(NodeId{a}, NodeId{b}, gossip::Message{ack}));
    }
  }
  std::size_t total = 0;
  for (int i = 0; i < 100 && total < kNodes * (kNodes - 1); ++i) {
    total += transport.poll_wait(20);
  }
  EXPECT_EQ(total, kNodes * (kNodes - 1));
  for (const auto seen : acks_seen) {
    EXPECT_EQ(seen, static_cast<int>(kNodes - 1));
  }
  EXPECT_EQ(transport.decode_failures(), 0u);
}

TEST(UdpTransport, RejectsUnknownEndpoints) {
  UdpTransport transport;
  ASSERT_TRUE(transport.add_endpoint(NodeId{0}, nullptr));
  EXPECT_FALSE(
      transport.send(NodeId{0}, NodeId{9}, gossip::Message{gossip::AckMsg{}}));
  EXPECT_FALSE(
      transport.send(NodeId{9}, NodeId{0}, gossip::Message{gossip::AckMsg{}}));
  EXPECT_FALSE(transport.add_endpoint(NodeId{0}, nullptr));  // duplicate
}

}  // namespace
}  // namespace lifting::net

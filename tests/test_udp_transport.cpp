#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/codec.hpp"
#include "net/udp_transport.hpp"

namespace lifting::net {
namespace {

/// Raw loopback sender for crafting hostile datagrams the transport's own
/// send() would never emit.
class RawSender {
 public:
  RawSender() : fd_(::socket(AF_INET, SOCK_DGRAM, 0)) {}
  ~RawSender() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool send_to(std::uint16_t port, const void* data, std::size_t size) const {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::sendto(fd_, data, size, 0,
                    reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == static_cast<ssize_t>(size);
  }

 private:
  int fd_;
};

/// A well-formed frame for `msg` from sender 0: sender id u32 LE, codec
/// length u16 LE, codec bytes (mirrors UdpTransport's framing).
std::vector<std::uint8_t> make_frame(const gossip::Message& msg) {
  const auto codec = encode(msg);
  std::vector<std::uint8_t> frame{0, 0, 0, 0,
                                  static_cast<std::uint8_t>(codec.size()),
                                  static_cast<std::uint8_t>(codec.size() >> 8)};
  frame.insert(frame.end(), codec.begin(), codec.end());
  return frame;
}

std::size_t drain(UdpTransport& transport, std::size_t want) {
  std::size_t delivered = 0;
  for (int i = 0; i < 50 && delivered < want; ++i) {
    delivered += transport.poll_wait(20);
  }
  return delivered;
}

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport transport;
  std::vector<std::pair<NodeId, gossip::Message>> received;
  ASSERT_TRUE(transport.add_endpoint(NodeId{0}, nullptr));
  ASSERT_TRUE(transport.add_endpoint(
      NodeId{1}, [&](NodeId from, gossip::Message msg) {
        received.emplace_back(from, std::move(msg));
      }));

  gossip::ProposeMsg propose{3, {ChunkId{10}, ChunkId{11}}};
  ASSERT_TRUE(transport.send(NodeId{0}, NodeId{1}, gossip::Message{propose}));

  // Loopback delivery is near-instant; poll with a small wait budget.
  std::size_t delivered = 0;
  for (int i = 0; i < 50 && delivered == 0; ++i) {
    delivered += transport.poll_wait(20);
  }
  ASSERT_EQ(delivered, 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, NodeId{0});
  const auto* msg = std::get_if<gossip::ProposeMsg>(&received[0].second);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->period, 3u);
  EXPECT_EQ(msg->chunks, propose.chunks);
}

TEST(UdpTransport, ManyNodesExchangeVerificationTraffic) {
  UdpTransport transport;
  constexpr std::uint32_t kNodes = 8;
  std::vector<int> acks_seen(kNodes, 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(transport.add_endpoint(
        NodeId{i}, [&acks_seen, i](NodeId, gossip::Message msg) {
          if (std::holds_alternative<gossip::AckMsg>(msg)) ++acks_seen[i];
        }));
  }
  // Every node acks every other node once.
  for (std::uint32_t a = 0; a < kNodes; ++a) {
    for (std::uint32_t b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      gossip::AckMsg ack{1, {ChunkId{a}}, {NodeId{b}}};
      ASSERT_TRUE(transport.send(NodeId{a}, NodeId{b}, gossip::Message{ack}));
    }
  }
  std::size_t total = 0;
  for (int i = 0; i < 100 && total < kNodes * (kNodes - 1); ++i) {
    total += transport.poll_wait(20);
  }
  EXPECT_EQ(total, kNodes * (kNodes - 1));
  for (const auto seen : acks_seen) {
    EXPECT_EQ(seen, static_cast<int>(kNodes - 1));
  }
  EXPECT_EQ(transport.decode_failures(), 0u);
}

TEST(UdpTransport, RejectsUnknownEndpoints) {
  UdpTransport transport;
  ASSERT_TRUE(transport.add_endpoint(NodeId{0}, nullptr));
  EXPECT_FALSE(
      transport.send(NodeId{0}, NodeId{9}, gossip::Message{gossip::AckMsg{}}));
  EXPECT_FALSE(
      transport.send(NodeId{9}, NodeId{0}, gossip::Message{gossip::AckMsg{}}));
  EXPECT_FALSE(transport.add_endpoint(NodeId{0}, nullptr));  // duplicate
  EXPECT_EQ(transport.send_failures(), 2u);  // both failed sends counted
}

// Regression for the poll() drain bug: a runt (or zero-length) datagram
// used to terminate the drain loop for that socket, stranding every
// datagram queued behind it until the next poll — and runts were dropped
// without a trace. Now every malformed datagram is counted in
// decode_failures() and draining continues.
TEST(UdpTransport, CountsRuntsAndKeepsDraining) {
  UdpTransport transport;
  std::size_t received = 0;
  ASSERT_TRUE(transport.add_endpoint(
      NodeId{1}, [&](NodeId, gossip::Message) { ++received; }));
  const std::uint16_t port = transport.port_of(NodeId{1});
  ASSERT_NE(port, 0u);

  RawSender raw;
  const std::uint8_t runt[3] = {0xAB, 0xCD, 0xEF};
  ASSERT_TRUE(raw.send_to(port, runt, sizeof runt));    // < frame header
  ASSERT_TRUE(raw.send_to(port, nullptr, 0));           // zero-length
  // Valid frame header, garbage codec bytes.
  std::uint8_t bad_codec[9] = {0, 0, 0, 0, 3, 0, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(raw.send_to(port, bad_codec, sizeof bad_codec));
  // Codec length field larger than the datagram.
  std::uint8_t bad_len[8] = {0, 0, 0, 0, 0xFF, 0x00, 1, 2};
  ASSERT_TRUE(raw.send_to(port, bad_len, sizeof bad_len));
  // A valid message queued *behind* the malformed ones must still arrive
  // in the same drain.
  const auto good = make_frame(gossip::Message{gossip::AuditRequestMsg{7}});
  ASSERT_TRUE(raw.send_to(port, good.data(), good.size()));

  EXPECT_EQ(drain(transport, 1), 1u);
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(transport.decode_failures(), 4u);
  EXPECT_EQ(transport.socket_errors(), 0u);
}

// Regression for the trailing-bytes hole: a serve frame whose datagram
// payload contradicts its payload_bytes field is malformed.
TEST(UdpTransport, RejectsServeWithShortPayloadBody) {
  UdpTransport transport;
  std::size_t received = 0;
  ASSERT_TRUE(transport.add_endpoint(
      NodeId{1}, [&](NodeId, gossip::Message) { ++received; }));
  RawSender raw;
  auto frame = make_frame(
      gossip::Message{gossip::ServeMsg{1, ChunkId{5}, 100, NodeId{2}}});
  frame.resize(frame.size() + 50);  // claims 100 payload bytes, carries 50
  ASSERT_TRUE(raw.send_to(transport.port_of(NodeId{1}), frame.data(),
                          frame.size()));
  // Non-serve frames must carry nothing after the codec bytes.
  auto trailing = make_frame(gossip::Message{gossip::AuditRequestMsg{7}});
  trailing.push_back(0);
  ASSERT_TRUE(raw.send_to(transport.port_of(NodeId{1}), trailing.data(),
                          trailing.size()));
  const auto good = make_frame(gossip::Message{gossip::AuditRequestMsg{8}});
  ASSERT_TRUE(raw.send_to(transport.port_of(NodeId{1}), good.data(),
                          good.size()));
  EXPECT_EQ(drain(transport, 1), 1u);
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(transport.decode_failures(), 2u);
}

TEST(UdpTransport, RoutesReachRemoteTransports) {
  // Two transports in one process standing in for two daemon processes:
  // the sender knows the receiver only as a routed port.
  UdpTransport sender;
  UdpTransport receiver;
  ASSERT_TRUE(sender.add_endpoint(NodeId{0}, nullptr));
  std::vector<NodeId> from_ids;
  ASSERT_TRUE(receiver.add_endpoint(
      NodeId{5}, [&](NodeId from, gossip::Message) {
        from_ids.push_back(from);
      }));
  EXPECT_EQ(sender.port_of(NodeId{5}), 0u);  // not local
  ASSERT_TRUE(sender.add_route(NodeId{5}, receiver.port_of(NodeId{5})));
  EXPECT_FALSE(sender.add_route(NodeId{5}, 1));  // duplicate route

  ASSERT_TRUE(sender.send(NodeId{0}, NodeId{5},
                          gossip::Message{gossip::ScoreQueryMsg{NodeId{5}, 1}}));
  EXPECT_EQ(drain(receiver, 1), 1u);
  ASSERT_EQ(from_ids.size(), 1u);
  EXPECT_EQ(from_ids[0], NodeId{0});  // sender id carried in the frame
}

// The per-kind accounting behind the wire-vs-model report: a serve's
// datagram carries the frame header (6 B) and an explicit payload_bytes
// field (4 B) the analytical model folds into the payload, so its wire
// size must exceed gossip::wire_size by exactly 10 B; other UDP kinds by
// exactly the 6 B frame header.
TEST(UdpTransport, WireStatsMatchModelPlusFraming) {
  UdpTransport transport;
  std::uint32_t payload_seen = 0;
  ASSERT_TRUE(transport.add_endpoint(NodeId{0}, nullptr));
  ASSERT_TRUE(transport.add_endpoint(
      NodeId{1}, [&](NodeId, gossip::Message msg) {
        if (const auto* serve = std::get_if<gossip::ServeMsg>(&msg)) {
          payload_seen = serve->payload_bytes;
        }
      }));

  const gossip::ServeMsg serve{1, ChunkId{5}, 1000, NodeId{0}};
  ASSERT_TRUE(transport.send(NodeId{0}, NodeId{1}, gossip::Message{serve}));
  const gossip::AckMsg ack{1, {ChunkId{5}}, {NodeId{0}}};
  ASSERT_TRUE(transport.send(NodeId{0}, NodeId{1}, gossip::Message{ack}));
  EXPECT_EQ(drain(transport, 2), 2u);
  EXPECT_EQ(payload_seen, 1000u);  // zero-filled body priced and stripped

  const auto& stats = transport.wire_stats();
  const auto& serve_stats = stats[gossip::Message{serve}.index()];
  EXPECT_EQ(serve_stats.count, 1u);
  EXPECT_EQ(serve_stats.modeled_bytes, gossip::wire_size(serve));
  EXPECT_EQ(serve_stats.wire_bytes, serve_stats.modeled_bytes + 10);
  const auto& ack_stats = stats[gossip::Message{ack}.index()];
  EXPECT_EQ(ack_stats.count, 1u);
  EXPECT_EQ(ack_stats.modeled_bytes, gossip::wire_size(ack));
  EXPECT_EQ(ack_stats.wire_bytes,
            ack_stats.modeled_bytes + UdpTransport::kFrameHeaderBytes);
  EXPECT_EQ(transport.decode_failures(), 0u);
  EXPECT_EQ(transport.send_failures(), 0u);
}

}  // namespace
}  // namespace lifting::net

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "runtime/node_host.hpp"
#include "runtime/wire_scenario.hpp"

namespace lifting::runtime {
namespace {

/// In-process wire deployment: one NodeHost (the lifting_node daemon's
/// stack) per thread, real UDP datagrams between them — the multi-process
/// launcher path minus fork/exec, so it runs inside the test suite and
/// under sanitizers. Hosts share nothing but the port roster, exactly like
/// separate processes would.
TEST(WireDeploy, LoopbackStreamReachesEveryNode) {
  auto config = ScenarioConfig::small(8);
  config.stream.duration = seconds(1.2);
  config.duration = seconds(2.0);

  std::string why;
  ASSERT_TRUE(wire_supported(config, &why)) << why;

  std::vector<std::unique_ptr<NodeHost>> hosts;
  std::vector<std::uint16_t> ports;
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    hosts.push_back(std::make_unique<NodeHost>(config, NodeId{i}));
    ports.push_back(hosts.back()->port());
    ASSERT_NE(ports.back(), 0u);
  }
  for (auto& host : hosts) host->set_roster(ports);

  EXPECT_TRUE(hosts[0]->is_source());
  EXPECT_FALSE(hosts[1]->is_source());

  std::vector<std::thread> threads;
  threads.reserve(hosts.size());
  for (auto& host : hosts) {
    threads.emplace_back([&host] { host->run(); });
  }
  for (auto& thread : threads) thread.join();

  const auto emitted = hosts[0]->chunks_emitted();
  ASSERT_GT(emitted, 0u);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    const auto& udp = hosts[i]->transport();
    EXPECT_EQ(udp.decode_failures(), 0u) << "node " << i;
    EXPECT_EQ(udp.socket_errors(), 0u) << "node " << i;
    EXPECT_EQ(udp.send_failures(), 0u) << "node " << i;
    if (i == 0) continue;
    // Loopback, no loss: the stream must substantially arrive everywhere.
    EXPECT_GE(hosts[i]->engine_stats().chunks_received + 1, emitted)
        << "node " << i << " received "
        << hosts[i]->engine_stats().chunks_received << "/" << emitted;
  }

  // The wire-vs-model identity on live traffic: serves cost model + 10 B,
  // every other UDP kind model + 6 B per datagram (see lifting_loopback).
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    const auto& stats = hosts[i]->transport().wire_stats();
    for (std::size_t k = 0; k < stats.size(); ++k) {
      if (stats[k].count == 0 || k >= 12) continue;  // audit kinds: launcher
      const std::uint64_t delta = k == 2 ? 10 : 6;
      EXPECT_EQ(stats[k].wire_bytes,
                stats[k].modeled_bytes + delta * stats[k].count)
          << "node " << i << " kind " << k;
    }
  }
}

/// Roles and derived state agree across independently-built hosts: the
/// freerider set comes out of the config, not out of coordination.
TEST(WireDeploy, RolesDeriveConsistentlyFromConfig) {
  auto config = ScenarioConfig::small(12);
  config.freerider_fraction = 0.25;

  std::uint32_t freeriders = 0;
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    NodeHost host(config, NodeId{i});
    if (host.is_freerider()) ++freeriders;
    if (i == 0) EXPECT_TRUE(host.is_source());
  }
  EXPECT_EQ(freeriders, 3u);  // floor(0.25 * 12), source excluded by seed
}

}  // namespace
}  // namespace lifting::runtime

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/explain.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/runner.hpp"

/// The flight recorder (DESIGN.md §13): ring mechanics, the unified
/// registry, the exporters, and the two load-bearing contracts —
///
///  1. Inertness/passivity: a disarmed recorder changes nothing about a
///     fixed-seed run, and an ARMED recorder is passive (no draws, no
///     events), so armed and disarmed digests are bit-identical.
///  2. Provenance: obs::explain reconstructs the full causal chain behind
///     an expulsion — direct-verification verdicts, cross-check blames,
///     the score read, the ballots, the commit — and the report is
///     byte-identical whether the run executed alone or sharded across a
///     ParallelRunner at any thread count.

namespace lifting {
namespace {

using runtime::Experiment;
using runtime::ParallelRunner;
using runtime::RunDigest;
using runtime::ScenarioConfig;

// ------------------------------------------------------------ TraceRing

obs::TraceRecord rec(std::int64_t at_us, std::uint32_t actor,
                     obs::EventKind kind) {
  obs::TraceRecord r;
  r.at_us = at_us;
  r.actor = actor;
  r.subject = actor;
  r.kind = kind;
  return r;
}

TEST(TraceRing, WrapsOverwritingOldest) {
  obs::TraceRing ring;
  EXPECT_FALSE(ring.armed());
  ring.arm(3);
  EXPECT_TRUE(ring.armed());
  EXPECT_EQ(ring.capacity(), 3u);

  for (std::uint32_t i = 0; i < 5; ++i) {
    ring.append(rec(i, i, obs::EventKind::kProposeSent));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  // Oldest-first access: records 0 and 1 were overwritten.
  EXPECT_EQ(ring[0].actor, 2u);
  EXPECT_EQ(ring[1].actor, 3u);
  EXPECT_EQ(ring[2].actor, 4u);

  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.armed());  // arming survives a clear
}

TEST(TraceRing, KindNamesAndCategoriesAreTotal) {
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    EXPECT_STRNE(obs::kind_name(kind), "");
    EXPECT_STRNE(obs::kind_category(kind), "");
  }
}

// ------------------------------------------------------------- Registry

TEST(Registry, SlotsAreStableAndOrdered) {
  obs::Registry reg;
  auto& hits = reg.counter("hits");
  hits += 2;
  reg.gauge("load") = 0.5;
  reg.histogram("sizes").observe(10.0);
  reg.counter("hits") += 1;  // same slot on re-lookup
  EXPECT_EQ(&reg.counter("hits"), &hits);

  ASSERT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.entries()[0].name, "hits");
  EXPECT_EQ(reg.entries()[0].counter, 3u);
  EXPECT_EQ(reg.entries()[1].name, "load");
  EXPECT_DOUBLE_EQ(reg.entries()[1].gauge, 0.5);
  EXPECT_EQ(reg.entries()[2].name, "sizes");
  EXPECT_EQ(reg.entries()[2].histogram.count, 1u);

  reg.reset_values();
  EXPECT_EQ(reg.size(), 3u);  // names and order survive
  EXPECT_EQ(reg.entries()[0].counter, 0u);
  EXPECT_EQ(reg.entries()[2].histogram.count, 0u);
}

TEST(Registry, HistogramBucketsAreLog2) {
  obs::Histogram h;
  h.observe(0.5);   // bucket 0: [0, 1)
  h.observe(1.0);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(100.0); // bucket 7: [64, 128)
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 1.0 + 3.0 + 100.0) / 4.0);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[7], 1u);
}

// ------------------------------------------------------------ Exporters

TEST(Export, BinaryDumpRoundTripsAndRejectsGarbage) {
  obs::TraceRing ring;
  ring.arm(8);
  ring.append(rec(10, 1, obs::EventKind::kProposeSent));
  ring.append(rec(20, 2, obs::EventKind::kBlameEmitted));

  const std::string path = testing::TempDir() + "obs_roundtrip.trace";
  ASSERT_TRUE(obs::write_binary_dump(path, ring, 7));

  std::vector<obs::TraceRecord> back;
  std::uint32_t node = 0;
  ASSERT_TRUE(obs::read_binary_dump(path, back, &node));
  EXPECT_EQ(node, 7u);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].at_us, 10);
  EXPECT_EQ(back[1].kind, obs::EventKind::kBlameEmitted);

  // Unreadable / corrupt inputs fail instead of fabricating records.
  std::vector<obs::TraceRecord> none;
  EXPECT_FALSE(obs::read_binary_dump(path + ".missing", none, nullptr));
  const std::string garbage = testing::TempDir() + "obs_garbage.trace";
  {
    std::vector<obs::TraceRecord> empty;
    ASSERT_TRUE(obs::write_binary_dump(garbage, empty, 0));
  }
  ASSERT_TRUE(obs::read_binary_dump(garbage, none, nullptr));
  EXPECT_TRUE(none.empty());
}

TEST(Export, MergeOrdersByTimeThenActorThenKind) {
  std::vector<obs::TraceRecord> records;
  records.push_back(rec(30, 0, obs::EventKind::kProposeSent));
  records.push_back(rec(10, 5, obs::EventKind::kProposeSent));
  records.push_back(rec(10, 1, obs::EventKind::kAckReceived));
  records.push_back(rec(10, 1, obs::EventKind::kProposeSent));
  obs::sort_for_merge(records);
  EXPECT_EQ(records[0].at_us, 10);
  EXPECT_EQ(records[0].actor, 1u);
  EXPECT_EQ(records[0].kind, obs::EventKind::kProposeSent);
  EXPECT_EQ(records[1].kind, obs::EventKind::kAckReceived);
  EXPECT_EQ(records[2].actor, 5u);
  EXPECT_EQ(records[3].at_us, 30);
}

TEST(Export, ChromeTraceIsWellFormedInstantEvents) {
  std::vector<obs::TraceRecord> records;
  records.push_back(rec(1500, 3, obs::EventKind::kVerdictUnserved));
  std::ostringstream out;
  obs::write_chrome_trace(out, records);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"verdict_unserved\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"verdict\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

// ------------------------------------- the deployment-level contracts

/// A pinned fixed-seed scenario that reliably expels a hard freerider
/// through the full §5.1 machinery: direct-verification and cross-check
/// blames accumulate, a score read observes the threshold crossing, the
/// managers vote, a commit follows.
ScenarioConfig expulsion_config() {
  auto cfg = ScenarioConfig::small(40);
  cfg.duration = seconds(24.0);
  cfg.stream.duration = seconds(22.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.6);
  cfg.expulsion_enabled = true;
  cfg.lifting.eta = -4.0;
  cfg.lifting.score_check_probability = 0.5;
  return cfg;
}

/// Ring big enough that the engine-phase firehose cannot overwrite the
/// earliest verdicts of the run (the provenance chain must be complete).
constexpr std::size_t kRingCapacity = std::size_t{1} << 20;

TEST(FlightRecorder, ArmedRecordingIsPassive) {
  const auto cfg = expulsion_config();

  Experiment disarmed(cfg);
  EXPECT_EQ(disarmed.trace_ring(), nullptr);
  disarmed.run();
  const auto want = RunDigest::of(disarmed);

  Experiment armed(cfg);
  armed.enable_trace(kRingCapacity);
  ASSERT_NE(armed.trace_ring(), nullptr);
  armed.run();
  // Recording draws nothing and schedules nothing: the armed run is
  // bit-identical to the disarmed one — which is also why the disarmed
  // fixed-seed goldens (test_determinism) needed no re-pinning.
  EXPECT_TRUE(RunDigest::of(armed) == want);

  const auto& ring = *armed.trace_ring();
  EXPECT_GT(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u) << "kRingCapacity too small for the chain";

  // Every sim-side seam of this scenario shows up in the trace.
  std::uint64_t by_category[5] = {};  // engine, verdict, blame, expel, rps
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const std::string cat = obs::kind_category(ring[i].kind);
    if (cat == "engine") ++by_category[0];
    if (cat == "verdict") ++by_category[1];
    if (cat == "blame") ++by_category[2];
    if (cat == "expel") ++by_category[3];
    if (cat == "rps") ++by_category[4];
  }
  EXPECT_GT(by_category[0], 0u) << "no engine-phase records";
  EXPECT_GT(by_category[1], 0u) << "no verifier verdicts";
  EXPECT_GT(by_category[2], 0u) << "no blame records";
  EXPECT_GT(by_category[3], 0u) << "no expulsion-protocol records";
}

TEST(FlightRecorder, ResetDisarmsAndRearmsCleanly) {
  auto cfg = expulsion_config();
  cfg.duration = seconds(6.0);
  cfg.stream.duration = seconds(5.0);
  Experiment ex(cfg);
  ex.enable_trace(1 << 16);
  ex.run();
  EXPECT_GT(ex.trace_ring()->total_recorded(), 0u);

  // The measurement-hook contract: reset drops the recorder...
  ex.reset();
  EXPECT_EQ(ex.trace_ring(), nullptr);
  ex.run();  // ...and an untraced rerun records through no stale pointer
  // ...and re-arming works.
  ex.reset();
  ex.enable_trace(1 << 16);
  ex.run();
  EXPECT_GT(ex.trace_ring()->total_recorded(), 0u);
}

/// Runs the pinned scenario inside a ParallelRunner shard (lane 0 of
/// `tasks`, with differently-seeded neighbors keeping the other lanes
/// busy) and returns the victim's forensic report.
std::string report_under(unsigned threads, std::size_t tasks) {
  ParallelRunner runner(threads);
  const auto reports = runner.map<std::string>(tasks, [](std::size_t i) {
    auto cfg = expulsion_config();
    if (i != 0) cfg.seed += 1000 + i;  // neighbor lanes: different runs
    Experiment ex(cfg);
    ex.enable_trace(kRingCapacity);
    ex.run();
    if (i != 0) return std::string{};
    EXPECT_FALSE(ex.expulsions().empty()) << "scenario never expelled";
    if (ex.expulsions().empty()) return std::string{};
    return obs::explain(*ex.trace_ring(), ex.expulsions().front().victim);
  });
  return reports[0];
}

TEST(FlightRecorder, ExplainReconstructsTheExpulsionCausalChain) {
  const auto cfg = expulsion_config();
  Experiment ex(cfg);
  ex.enable_trace(kRingCapacity);
  ex.run();
  ASSERT_FALSE(ex.expulsions().empty()) << "scenario never expelled anyone";
  const NodeId victim = ex.expulsions().front().victim;
  EXPECT_TRUE(ex.is_freerider(victim));
  const auto& ring = *ex.trace_ring();
  ASSERT_EQ(ring.dropped(), 0u) << "chain truncated; raise kRingCapacity";

  // The summary walk finds every stage of the §5.1 pipeline.
  const auto s = obs::summarize(ring, victim);
  EXPECT_GT(s.verdicts, 0u);
  EXPECT_GT(s.blames_emitted_against, 0u);
  EXPECT_GT(s.blame_value_against, 0.0);
  EXPECT_GT(s.blame_rows_applied, 0u);
  EXPECT_GT(s.score_reads, 0u);
  EXPECT_GE(s.expel_requests, 1u);
  EXPECT_GE(s.expel_votes, 1u);
  EXPECT_GE(s.expel_agree_votes, 1u);
  EXPECT_GE(s.expel_commits, 1u);
  EXPECT_TRUE(s.expelled);

  // Both blame families fed the chain: direct verification (unserved
  // requests) AND at least one cross-check reason (invalid ack / fanout
  // decrease / testimony).
  bool direct = false;
  bool cross = false;
  std::int64_t first_blame_at = -1;
  std::int64_t first_request_at = -1;
  std::int64_t commit_at = -1;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const auto& r = ring[i];
    if (r.subject != victim.value()) continue;
    if (r.kind == obs::EventKind::kBlameEmitted) {
      if (first_blame_at < 0) first_blame_at = r.at_us;
      const auto reason = static_cast<gossip::BlameReason>(r.detail);
      if (reason == gossip::BlameReason::kDirectVerification) direct = true;
      if (reason == gossip::BlameReason::kInvalidAck ||
          reason == gossip::BlameReason::kFanoutDecrease ||
          reason == gossip::BlameReason::kTestimony) {
        cross = true;
      }
    }
    if (r.kind == obs::EventKind::kExpelRequest && first_request_at < 0) {
      first_request_at = r.at_us;
    }
    if (r.kind == obs::EventKind::kExpelCommit && commit_at < 0) {
      commit_at = r.at_us;
    }
  }
  EXPECT_TRUE(direct) << "no direct-verification blame in the chain";
  EXPECT_TRUE(cross) << "no cross-check blame in the chain";
  // Causality reads off the timestamps: blame before request before
  // commit.
  ASSERT_GE(first_blame_at, 0);
  ASSERT_GE(first_request_at, 0);
  ASSERT_GE(commit_at, 0);
  EXPECT_LT(first_blame_at, first_request_at);
  EXPECT_LE(first_request_at, commit_at);

  // The rendered report narrates the same chain.
  const std::string report = obs::explain(ring, victim);
  EXPECT_NE(report.find("direct verification"), std::string::npos);
  EXPECT_NE(report.find("expulsion requested"), std::string::npos);
  EXPECT_NE(report.find("expulsion ballot"), std::string::npos);
  EXPECT_NE(report.find("committed the expulsion"), std::string::npos);
  EXPECT_NE(report.find("EXPELLED"), std::string::npos);
}

TEST(FlightRecorder, ExplainIsByteIdenticalAcrossThreadCounts) {
  const std::string reference = report_under(1, 3);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, report_under(2, 3)) << "2 threads diverged";
  EXPECT_EQ(reference, report_under(8, 3)) << "8 threads diverged";
}

}  // namespace
}  // namespace lifting

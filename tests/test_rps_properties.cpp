#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "adversary/membership.hpp"
#include "membership/rps.hpp"
#include "runtime/experiment.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"
#include "stats/entropy.hpp"
#include "stats/summary.hpp"

/// RPS sampler properties (DESIGN.md §12), both variants:
///
///   * honest invariants — view uniformity (chi-squared), in-degree
///     concentration, shuffle-convergence calibration — hold for the
///     legacy AND the hardened sampler (hardening must not degrade the
///     honest substrate: the "small deviation with respect to the uniform
///     distribution" §5.3's γ tolerates);
///   * attack cases — view poisoning packs legacy views with colluders and
///     skews in-degree; the hardened sampler's attestation + push bounds
///     restore the honest bounds; eclipse concentrates compromise on its
///     victim subset;
///   * the inertness pin — an armed-but-kNone membership config with RPS
///     partner sampling off leaves fixed-seed outcomes byte-identical to a
///     config that never mentions membership (goldens are NOT re-pinned);
///   * thread-count invariance — membership-armed experiments produce
///     bit-identical outcomes on the ParallelRunner at any thread count
///     (the TSan job runs exactly these cases);
///   * the sweep draws its membership knobs deterministically from
///     per-case rngs, preserving the historical case prefix.

namespace lifting::membership {
namespace {

SamplerPolicy policy_for(bool hardened) {
  return hardened ? SamplerPolicy::hardened_defaults() : SamplerPolicy{};
}

const char* variant_name(bool hardened) {
  return hardened ? "hardened" : "legacy";
}

/// First k node ids as the colluder set — deterministic and independent of
/// any rng stream the network consumes.
std::vector<NodeId> first_ids(std::uint32_t k) {
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < k; ++i) ids.push_back(NodeId{i});
  return ids;
}

// ------------------------------------------------- honest invariants

TEST(RpsProperties, ViewUniformityChiSquaredBothVariants) {
  // Sample one peer per node per round across re-shuffling views; the
  // aggregate target distribution must be uniform to chi-squared within a
  // loose bound (per-round draws are not iid — views overlap — so demand
  // X²/df < 2 rather than a strict percentile) and near-full entropy.
  constexpr std::uint32_t n = 150;
  for (const bool hardened : {false, true}) {
    SCOPED_TRACE(variant_name(hardened));
    RpsNetwork rps(n, 10, 5, 44, policy_for(hardened));
    rps.run_rounds(20);
    Pcg32 rng{45};
    std::vector<std::uint64_t> counts(n, 0);
    std::uint64_t total = 0;
    for (int round = 0; round < 60; ++round) {
      for (std::uint32_t i = 0; i < n; ++i) {
        ++counts[rps.sample(NodeId{i}, rng).value()];
        ++total;
      }
      rps.run_round();
    }
    const double expected =
        static_cast<double>(total) / static_cast<double>(n);
    double chi2 = 0.0;
    for (const auto c : counts) {
      const double d = static_cast<double>(c) - expected;
      chi2 += d * d / expected;
    }
    const double df = static_cast<double>(n - 1);
    EXPECT_LT(chi2 / df, 2.0) << "sampling deviates from uniform";
    EXPECT_GT(stats::shannon_entropy(counts), 0.98 * std::log2(n));
  }
}

TEST(RpsProperties, InDegreeConcentratesBothVariants) {
  for (const bool hardened : {false, true}) {
    SCOPED_TRACE(variant_name(hardened));
    RpsNetwork rps(300, 10, 5, 43, policy_for(hardened));
    rps.run_rounds(30);
    stats::Summary s;
    for (const auto d : rps.in_degrees()) s.add(static_cast<double>(d));
    // Total pointers = n·view_size ⇒ mean in-degree ≈ view_size; after
    // mixing there are no starved or celebrity nodes under either variant.
    EXPECT_NEAR(s.mean(), 10.0, 1.0);
    EXPECT_GT(s.min(), 2.0);
    EXPECT_LT(s.max(), 25.0);
    // Views stay essentially full: the hardened hygiene (age eviction,
    // bounded push acceptance, responder cap) must not drain them.
    for (std::uint32_t i = 0; i < 300; ++i) {
      EXPECT_GE(rps.view_of(NodeId{i}).size(), 6u);
    }
  }
}

TEST(RpsProperties, ShuffleConvergenceCalibrationBothVariants) {
  // Convergence calibration via view diffusion: a node's view must turn
  // over fast enough that across 30 rounds it cycles through a large
  // fraction of the population (the property that makes history entropy
  // pass §5.3's γ), while the in-degree spread stays bounded. The
  // hardened hygiene rules may slow mixing slightly but not cripple it.
  constexpr std::uint32_t n = 200;
  const auto diffusion = [](bool hardened, double* spread) {
    RpsNetwork rps(n, 12, 6, 42, policy_for(hardened));
    std::set<NodeId> seen(rps.view_of(NodeId{0}).begin(),
                          rps.view_of(NodeId{0}).end());
    for (int r = 0; r < 30; ++r) {
      rps.run_round();
      const auto& v = rps.view_of(NodeId{0});
      seen.insert(v.begin(), v.end());
    }
    stats::Summary s;
    for (const auto d : rps.in_degrees()) s.add(static_cast<double>(d));
    *spread = s.stddev();
    return seen.size();
  };
  double legacy_spread = 0.0;
  double hardened_spread = 0.0;
  const auto legacy_seen = diffusion(false, &legacy_spread);
  const auto hardened_seen = diffusion(true, &hardened_spread);
  for (const bool hardened : {false, true}) {
    SCOPED_TRACE(variant_name(hardened));
    EXPECT_GT(hardened ? hardened_seen : legacy_seen, n / 2)
        << "view diffusion stalled";
    EXPECT_LT(hardened ? hardened_spread : legacy_spread, 4.0);
  }
  EXPECT_GT(static_cast<double>(hardened_seen),
            0.6 * static_cast<double>(legacy_seen))
      << "hardened sampler mixes materially worse than legacy";
}

// ------------------------------------------------------ attack cases

TEST(RpsProperties, ViewPoisonPacksLegacyViewsAndSkewsInDegree) {
  constexpr std::uint32_t n = 120;
  RpsNetwork rps(n, 10, 5, 47);
  adversary::MembershipAttackConfig attack;
  attack.strategy = adversary::MembershipStrategy::kViewPoison;
  rps.set_adversary(attack, first_ids(30));
  rps.run_rounds(40);
  // Colluders are 25% of the population but dominate honest views...
  EXPECT_GT(rps.colluder_view_share(), 0.6);
  // ...and the in-degree distribution splits: colluder entries (forged at
  // age 0) crowd out honest ones everywhere.
  stats::Summary colluder_deg;
  stats::Summary honest_deg;
  const auto degrees = rps.in_degrees();
  for (std::uint32_t i = 0; i < n; ++i) {
    (rps.is_colluder(NodeId{i}) ? colluder_deg : honest_deg)
        .add(static_cast<double>(degrees[i]));
  }
  EXPECT_GT(colluder_deg.mean(), 2.0 * honest_deg.mean());
}

TEST(RpsProperties, HardenedSamplerRestoresBoundsUnderPoison) {
  constexpr std::uint32_t n = 120;
  RpsNetwork rps(n, 10, 5, 47, SamplerPolicy::hardened_defaults());
  adversary::MembershipAttackConfig attack;
  attack.strategy = adversary::MembershipStrategy::kViewPoison;
  rps.set_adversary(attack, first_ids(30));
  rps.run_rounds(40);
  // Attestation strips the forged payload; what survives is the colluders'
  // protocol-legal self-adverts plus genuinely held entries, so the view
  // share stays near the 25% population share.
  EXPECT_LT(rps.colluder_view_share(), 0.4);
  // Regression pin for the remove-as-needed merge: a mostly-rejected
  // forged offer must not drain the victim's view (the victim spends sent
  // entries only as accepted replacements arrive).
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rps.is_colluder(NodeId{i})) continue;
    EXPECT_GE(rps.view_of(NodeId{i}).size(), 5u)
        << "node " << i << "'s view drained under rejected poison offers";
  }
}

TEST(RpsProperties, HardenedPushBoundsBluntHubCapture) {
  constexpr std::uint32_t n = 120;
  adversary::MembershipAttackConfig attack;
  attack.strategy = adversary::MembershipStrategy::kHubCapture;
  const auto share_under = [&](SamplerPolicy policy) {
    RpsNetwork rps(n, 10, 5, 48, policy);
    rps.set_adversary(attack, first_ids(30));
    rps.run_rounds(40);
    return rps.colluder_view_share();
  };
  const double legacy = share_under({});
  const double hardened = share_under(SamplerPolicy::hardened_defaults());
  EXPECT_GT(legacy, 0.7);  // directed pushes amplify plain poisoning
  // The responder cap + bounded push acceptance + attestation strip most
  // of the directed-push amplification (self-adverts are protocol-legal,
  // so the hardened share keeps a residual above the population share).
  EXPECT_LT(hardened, 0.75 * legacy);
}

TEST(RpsProperties, EclipseConcentratesOnVictims) {
  constexpr std::uint32_t n = 120;
  adversary::MembershipAttackConfig attack;
  attack.strategy = adversary::MembershipStrategy::kEclipse;
  const auto victim_share_under = [&](SamplerPolicy policy, double* other) {
    RpsNetwork rps(n, 10, 5, 49, policy);
    rps.set_adversary(attack, first_ids(30));
    rps.run_rounds(40);
    EXPECT_FALSE(rps.eclipse_victims().empty());
    stats::Summary victims;
    std::set<std::uint32_t> victim_ids;
    for (const auto v : rps.eclipse_victims()) {
      victim_ids.insert(v.value());
      victims.add(rps.colluder_share_of(v));
    }
    stats::Summary rest;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (rps.is_colluder(NodeId{i}) || victim_ids.count(i) != 0) continue;
      rest.add(rps.colluder_share_of(NodeId{i}));
    }
    *other = rest.mean();
    return victims.mean();
  };
  double legacy_rest = 0.0;
  const double legacy_victims = victim_share_under({}, &legacy_rest);
  // Victims' views are almost entirely coalition; the directed pushes
  // concentrate there (the broadcast poisoning still lifts everyone).
  EXPECT_GT(legacy_victims, 0.8);
  EXPECT_GT(legacy_victims, legacy_rest);
  double hardened_rest = 0.0;
  const double hardened_victims =
      victim_share_under(SamplerPolicy::hardened_defaults(), &hardened_rest);
  // The hardened sampler strips the forged payload and rate-limits the
  // directed pushes, but every accepted push still plants one
  // protocol-legal self-advert at age 0 — concentrated on a small victim
  // subset that residual stays visible (RAPTEE bounds attacks to legal
  // behavior, it does not erase them). Demand a material reduction, not
  // eradication.
  EXPECT_LT(hardened_victims, 0.75 * legacy_victims);
  EXPECT_LT(hardened_victims, 0.7);
}

}  // namespace
}  // namespace lifting::membership

namespace lifting::runtime {
namespace {

/// Outcome fingerprint (mirrors tests/test_determinism.cpp): enough state
/// that any behavioral divergence shows up, cheap enough to compare.
struct Outcome {
  std::uint64_t events = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t bytes = 0;
  double blame_emissions = 0.0;
  std::vector<double> honest_scores;
  std::vector<double> freerider_scores;

  bool operator==(const Outcome& other) const = default;
};

Outcome outcome_of(Experiment& ex) {
  Outcome out;
  out.events = ex.simulator().events_processed();
  const auto net = ex.network_stats();
  out.datagrams = net.datagrams_sent;
  out.bytes = net.bytes_sent;
  out.blame_emissions = static_cast<double>(ex.ledger().emissions());
  auto snap = ex.snapshot_scores();
  out.honest_scores = std::move(snap.honest);
  out.freerider_scores = std::move(snap.freeriders);
  return out;
}

Outcome run_outcome(const ScenarioConfig& cfg) {
  Experiment ex(cfg);
  ex.run();
  return outcome_of(ex);
}

ScenarioConfig pin_config() {
  auto cfg = ScenarioConfig::small(60);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.02;
  return cfg;
}

TEST(RpsProperties, ArmedButNoneMembershipConfigIsInert) {
  // The inertness pin (the contract that lets goldens stay un-re-pinned):
  // filling every membership knob — sampler thresholds, attack tuning,
  // even the hardened *fields* with the legacy variant — while
  // rps_partner_sampling is off and the strategy is kNone must leave the
  // run byte-identical to a config that never mentions membership. No
  // draw, no allocation, no schedule may depend on armed-but-inert knobs.
  const auto baseline = run_outcome(pin_config());

  auto cfg = pin_config();
  cfg.membership.rps_partner_sampling = false;
  cfg.membership.view_size = 14;
  cfg.membership.shuffle_length = 7;
  cfg.membership.bootstrap_rounds = 20;
  cfg.membership.rps_round_period = milliseconds(250);
  cfg.membership.sampler.max_push_accept = 1;
  cfg.membership.sampler.max_responses_per_round = 1;
  cfg.membership.sampler.max_entry_age = 2;
  cfg.membership.sampler.attested = false;
  cfg.membership.attack.strategy = adversary::MembershipStrategy::kNone;
  cfg.membership.attack.poison_fill = 1.0;
  cfg.membership.attack.extra_pushes = 9;
  cfg.membership.attack.eclipse_fraction = 0.9;
  EXPECT_TRUE(run_outcome(cfg) == baseline)
      << "armed-but-kNone membership config changed a run it must not touch";
}

TEST(RpsProperties, MembershipOutcomesThreadCountInvariant) {
  // The same membership-armed case grid must produce bit-identical
  // outcomes at any ParallelRunner width — the bench's membership axis
  // inherits its --threads invariance from exactly this property. The
  // TSan CI job runs this test to race-check concurrent experiments that
  // exercise the RPS shuffle path.
  const auto& catalog = adversary::membership_catalog();
  std::vector<ScenarioConfig> grid;
  for (const bool hardened : {false, true}) {
    auto cfg = membership_frontier_config(0xC0DEULL);
    cfg.nodes = 60;
    cfg.freerider_fraction = 0.2;
    cfg.duration = seconds(8.0);
    cfg.stream.duration = seconds(6.0);
    if (hardened) {
      cfg.membership.sampler = membership::SamplerPolicy::hardened_defaults();
    }
    grid.push_back(cfg);
    auto attacked = cfg;
    attacked.membership.attack = catalog[hardened ? 0 : 1].config;
    grid.push_back(attacked);
  }
  std::vector<Outcome> serial;
  for (const auto& cfg : grid) serial.push_back(run_outcome(cfg));
  for (const unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    ParallelRunner runner(threads);
    const auto parallel = runner.map<Outcome>(
        grid.size(), [&](std::size_t i) { return run_outcome(grid[i]); });
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(parallel[i] == serial[i]) << "grid case " << i;
    }
  }
}

TEST(RpsProperties, SweepDrawsMembershipKnobsDeterministically) {
  // Rule 2 of the sweep contract (src/runtime/sweep.hpp): membership knobs
  // come from per-case rngs, so (a) regeneration is exact and (b) the
  // historical prefix is unchanged by sweep extension.
  const auto a = scenario_sweep_cases(40);
  const auto b = scenario_sweep_cases(40);
  ASSERT_EQ(a.size(), 40u);
  std::size_t with_rps = 0;
  std::size_t with_attack = 0;
  std::size_t with_hardened = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ma = a[i].config.membership;
    const auto& mb = b[i].config.membership;
    EXPECT_EQ(ma.rps_partner_sampling, mb.rps_partner_sampling);
    EXPECT_EQ(ma.view_size, mb.view_size);
    EXPECT_EQ(ma.shuffle_length, mb.shuffle_length);
    EXPECT_EQ(ma.bootstrap_rounds, mb.bootstrap_rounds);
    EXPECT_EQ(ma.sampler.variant, mb.sampler.variant);
    EXPECT_EQ(ma.attack.strategy, mb.attack.strategy);
    if (ma.rps_partner_sampling) ++with_rps;
    if (ma.attack.enabled()) ++with_attack;
    if (ma.sampler.hardened()) ++with_hardened;
  }
  // The draw rates are fixed by the sweep generator: ~30% rps, of which
  // ~half hardened and ~40% attacked. Loose floors — the point is that
  // the sweep actually exercises the subsystem, not the exact counts.
  EXPECT_GE(with_rps, 6u);
  EXPECT_GE(with_attack, 1u);
  EXPECT_GE(with_hardened, 1u);

  const auto prefix = scenario_sweep_cases(20);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].config.seed, a[i].config.seed);
    EXPECT_EQ(prefix[i].config.nodes, a[i].config.nodes);
    EXPECT_EQ(prefix[i].delta, a[i].delta);
    EXPECT_EQ(prefix[i].config.membership.rps_partner_sampling,
              a[i].config.membership.rps_partner_sampling);
    EXPECT_EQ(prefix[i].config.membership.attack.strategy,
              a[i].config.membership.attack.strategy);
  }
}

}  // namespace
}  // namespace lifting::runtime

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/entropy_model.hpp"
#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace lifting::analysis {
namespace {

ProtocolModel paper_model() {
  // §6.2: p_l = 7%, f = 12, |R| = 4, p_dcc = 1.
  return ProtocolModel{0.07, 12, 4, 1.0};
}

// ------------------------------------------------------- expected blames

TEST(Formulas, Eq2MatchesClosedForm) {
  const auto m = paper_model();
  const double pr = 0.93;
  EXPECT_NEAR(expected_blame_direct_verification(m),
              pr * (1.0 - pr * pr) * 144.0, 1e-9);
}

TEST(Formulas, Eq3MatchesClosedForm) {
  const auto m = paper_model();
  const double pr = 0.93;
  const double expected = pr * pr * (1.0 - std::pow(pr, 8)) * 144.0;
  EXPECT_NEAR(expected_blame_cross_check(m), expected, 1e-9);
}

TEST(Formulas, Eq5MatchesPaperNumber) {
  // The paper compensates Fig. 10's scores by b̃ = 72.95.
  EXPECT_NEAR(expected_wrongful_blame(paper_model()), 72.95, 0.02);
}

TEST(Formulas, Eq5MatchesPaperClosedForm) {
  const auto m = paper_model();
  const double pr = 0.93;
  const double closed =
      pr * (1.0 + pr - pr * pr - std::pow(pr, 9)) * 144.0;
  EXPECT_NEAR(expected_wrongful_blame(m), closed, 1e-9);
}

TEST(Formulas, Eq4Apcc) {
  const auto m = paper_model();
  // (1-pr)·n_h·f with n_h = 50.
  EXPECT_NEAR(expected_blame_apcc(m, 50), 0.07 * 50 * 12, 1e-9);
}

TEST(Formulas, NoLossMeansNoWrongfulBlame) {
  ProtocolModel m{0.0, 12, 4, 1.0};
  EXPECT_DOUBLE_EQ(expected_wrongful_blame(m), 0.0);
  EXPECT_DOUBLE_EQ(variance_wrongful_blame(m), 0.0);
}

TEST(Formulas, PdccZeroKeepsAckInspectionBlames) {
  ProtocolModel m = paper_model();
  m.p_dcc = 0.0;
  // Acks are always sent (§7.2): the bad-ack term of Eq. 3 survives.
  const double pr = 0.93;
  const double expected = 12.0 * pr * pr * (1.0 - std::pow(pr, 5)) * 12.0;
  EXPECT_NEAR(expected_blame_cross_check(m), expected, 1e-9);
  EXPECT_LT(expected_blame_cross_check(m),
            expected_blame_cross_check(paper_model()));
}

TEST(Formulas, FreeriderBlameReducesToHonestAtZeroDegree) {
  const auto m = paper_model();
  EXPECT_NEAR(expected_blame_freerider(m, FreeriderDegree{}),
              expected_wrongful_blame(m), 1e-9);
  EXPECT_NEAR(expected_blame_freerider_paper(m, FreeriderDegree{}),
              expected_wrongful_blame(m), 1e-9);
}

TEST(Formulas, FreeriderBlameGrowsWithEachDegree) {
  const auto m = paper_model();
  const double base = expected_blame_freerider(m, FreeriderDegree{});
  EXPECT_GT(expected_blame_freerider(m, FreeriderDegree{0.0, 0.2, 0.0}),
            base);
  EXPECT_GT(expected_blame_freerider(m, FreeriderDegree{0.0, 0.0, 0.2}),
            base);
  EXPECT_GT(expected_blame_freerider(m, FreeriderDegree{0.2, 0.0, 0.0}),
            base);
}

TEST(Formulas, GainFormula) {
  EXPECT_DOUBLE_EQ(FreeriderDegree{}.gain(), 0.0);
  const auto d = FreeriderDegree::uniform(0.035);
  // §6.3.1 / Fig. 12: 10% gain at δ ≈ 0.035.
  EXPECT_NEAR(d.gain(), 0.10, 0.005);
  EXPECT_DOUBLE_EQ((FreeriderDegree{1.0, 0.0, 0.0}).gain(), 1.0);
}

// --------------------------------------------------------------- variance

TEST(Variance, MatchesMonteCarloHonest) {
  const auto m = paper_model();
  BlameSampler sampler(m);
  Pcg32 rng{101};
  stats::Summary s;
  for (int i = 0; i < 60000; ++i) s.add(sampler.sample_honest(rng));
  EXPECT_NEAR(s.mean(), expected_wrongful_blame(m),
              0.02 * expected_wrongful_blame(m));
  EXPECT_NEAR(s.stddev(), std::sqrt(variance_wrongful_blame(m)),
              0.03 * s.stddev());
}

TEST(Variance, ReproducesPaperSigma) {
  // Fig. 10 reports an experimental σ(b) = 25.6 at the paper's parameters.
  const double sigma = std::sqrt(variance_wrongful_blame(paper_model()));
  EXPECT_NEAR(sigma, 25.6, 1.0);
}

TEST(Variance, ComponentsArePositive) {
  const auto m = paper_model();
  EXPECT_GT(variance_blame_direct_verification(m), 0.0);
  EXPECT_GT(variance_blame_cross_check(m), 0.0);
  EXPECT_GT(variance_wrongful_blame(m), 0.0);
  // The dv/dcc covariance is negative: total < sum of parts.
  EXPECT_LT(variance_wrongful_blame(m),
            variance_blame_direct_verification(m) +
                variance_blame_cross_check(m));
}

// ---------------------------------------------------------------- sampler

TEST(Sampler, HonestMeanMatchesCompensation) {
  const ProtocolModel m{0.04, 7, 4, 1.0};  // PlanetLab-like
  BlameSampler sampler(m);
  Pcg32 rng{102};
  stats::Summary s;
  for (int i = 0; i < 40000; ++i) s.add(sampler.sample_honest(rng));
  EXPECT_NEAR(s.mean(), expected_wrongful_blame(m), 0.5);
}

TEST(Sampler, FreeriderMeanMatchesFormula) {
  const auto m = paper_model();
  BlameSampler sampler(m);
  Pcg32 rng{103};
  const auto d = FreeriderDegree::uniform(0.1);
  stats::Summary s;
  for (int i = 0; i < 40000; ++i) s.add(sampler.sample_period(rng, d));
  const double expected = expected_blame_freerider(m, d);
  EXPECT_NEAR(s.mean(), expected, 0.02 * expected);
}

TEST(Sampler, ScoreCentersAtZeroForHonest) {
  const auto m = paper_model();
  BlameSampler sampler(m);
  Pcg32 rng{104};
  stats::Summary s;
  for (int i = 0; i < 3000; ++i) {
    s.add(sampler.sample_score(rng, FreeriderDegree{}, 50));
  }
  // Fig. 10/11: honest normalized scores center at 0.
  EXPECT_NEAR(s.mean(), 0.0, 0.25);
}

TEST(Sampler, FreeriderScoresSeparateFromHonest) {
  const auto m = paper_model();
  BlameSampler sampler(m);
  Pcg32 rng{105};
  stats::Summary honest;
  stats::Summary cheats;
  const auto d = FreeriderDegree::uniform(0.1);
  for (int i = 0; i < 2000; ++i) {
    honest.add(sampler.sample_score(rng, FreeriderDegree{}, 50));
    cheats.add(sampler.sample_score(rng, d, 50));
  }
  // Fig. 11: two disjoint modes with a gap at η = -9.75.
  EXPECT_GT(honest.mean(), -3.0);
  EXPECT_LT(cheats.mean(), -15.0);
  // The modes are separated: the worst honest score sits above the best
  // freerider only in distribution, so compare generous quantile proxies.
  EXPECT_GT(honest.mean() - 3.0 * honest.stddev(),
            cheats.mean() + 3.0 * cheats.stddev() - 25.0);
}

TEST(Sampler, DetectionRatesAtPaperOperatingPoint) {
  const auto m = paper_model();
  BlameSampler sampler(m);
  Pcg32 rng{106};
  const auto est = estimate_detection(sampler, FreeriderDegree::uniform(0.1),
                                      -9.75, 50, 1500, rng);
  // Fig. 12: beyond 10% freeriding, detection is >99%; β stays ~1%.
  EXPECT_GT(est.detection, 0.99);
  EXPECT_LT(est.false_positive, 0.03);
}

// ----------------------------------------------------------------- bounds

TEST(Bounds, FalsePositiveBoundHoldsEmpirically) {
  const auto m = paper_model();
  const double sigma = std::sqrt(variance_wrongful_blame(m));
  const double eta = -9.75;
  const std::uint32_t r = 50;
  const double bound = false_positive_bound(sigma, eta, r);
  BlameSampler sampler(m);
  Pcg32 rng{107};
  int fp = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (sampler.sample_score(rng, FreeriderDegree{}, r) < eta) ++fp;
  }
  EXPECT_LE(static_cast<double>(fp) / trials, bound + 0.01);
}

TEST(Bounds, DetectionBoundHoldsEmpirically) {
  const auto m = paper_model();
  const auto d = FreeriderDegree::uniform(0.1);
  const double eta = -9.75;
  const std::uint32_t r = 50;
  BlameSampler sampler(m);
  Pcg32 rng{108};
  // σ(b') estimated by Monte-Carlo (the paper defers it to [8]).
  stats::Summary per_period;
  for (int i = 0; i < 20000; ++i) {
    per_period.add(sampler.sample_period(rng, d));
  }
  const double excess =
      expected_blame_freerider(m, d) - expected_wrongful_blame(m);
  const double bound =
      detection_bound(excess, per_period.stddev(), eta, r);
  int detected = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    if (sampler.sample_score(rng, d, r) < eta) ++detected;
  }
  EXPECT_GE(static_cast<double>(detected) / trials, bound - 0.01);
}

TEST(Bounds, VacuousWhenFreeriderAboveThreshold) {
  EXPECT_DOUBLE_EQ(detection_bound(5.0, 10.0, -9.75, 50), 0.0);
}

TEST(Bounds, FalsePositiveBoundDecreasesWithTime) {
  const double b1 = false_positive_bound(25.6, -9.75, 10);
  const double b2 = false_positive_bound(25.6, -9.75, 100);
  EXPECT_GT(b1, b2);
}

// ------------------------------------------------------ model structure

TEST(Formulas, WrongfulBlameGrowsWithLoss) {
  double previous = -1.0;
  for (const double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const ProtocolModel m{loss, 12, 4, 1.0};
    const double b = expected_wrongful_blame(m);
    EXPECT_GT(b, previous) << "loss=" << loss;
    previous = b;
  }
}

TEST(Formulas, WrongfulBlameScalesWithFanoutSquared) {
  const ProtocolModel small{0.07, 6, 4, 1.0};
  const ProtocolModel big{0.07, 12, 4, 1.0};
  // Both Eq. 2 and Eq. 3 are ∝ f².
  EXPECT_NEAR(expected_wrongful_blame(big) / expected_wrongful_blame(small),
              4.0, 1e-9);
}

TEST(Formulas, PaperAndImplementationFreeriderFormulasAgreeAtSmallDegrees) {
  // The two b̃'(Δ) expressions differ in where the fanout shortfall is
  // booked; for small deviations they must stay within a few percent.
  const auto m = paper_model();
  for (const double delta : {0.0, 0.02, 0.05}) {
    const auto d = FreeriderDegree::uniform(delta);
    const double ours = expected_blame_freerider(m, d);
    const double paper = expected_blame_freerider_paper(m, d);
    EXPECT_NEAR(ours, paper, 0.12 * paper) << "delta=" << delta;
  }
}

TEST(Bounds, DetectionBoundImprovesWithTime) {
  const double b1 = detection_bound(20.0, 25.0, -9.75, 10);
  const double b2 = detection_bound(20.0, 25.0, -9.75, 100);
  EXPECT_LT(b1, b2);
  EXPECT_LE(b2, 1.0);
}

TEST(Sampler, DeterministicUnderSameSeed) {
  const BlameSampler sampler(paper_model());
  Pcg32 a{99};
  Pcg32 b{99};
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(sampler.sample_honest(a), sampler.sample_honest(b));
  }
}

TEST(Sampler, NoLossNoBlameForHonest) {
  const ProtocolModel m{0.0, 12, 4, 1.0};
  const BlameSampler sampler(m);
  Pcg32 rng{100};
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(sampler.sample_honest(rng), 0.0);
  }
}

TEST(Sampler, PureLeechAccruesMaximalDvSilence) {
  // δ1 = 1: no partners at all — no dv blame is even possible (nobody is
  // proposed to), but the dcc side still blames the fanout shortfall.
  const ProtocolModel m{0.0, 8, 4, 1.0};
  const BlameSampler sampler(m);
  Pcg32 rng{101};
  stats::Summary s;
  for (int i = 0; i < 5000; ++i) {
    s.add(sampler.sample_period(rng, FreeriderDegree{1.0, 0.0, 0.0}));
  }
  // Expected: f verifiers × f shortfall = f² per period (no loss).
  EXPECT_NEAR(s.mean(), 64.0, 2.0);
}

// ---------------------------------------------------------- entropy model

TEST(EntropyModel, Eq7MatchesPaperExample) {
  // §6.3.2: γ = 8.95, m' = 25 colluders, n_h·f = 600 ⇒ p*_m ≈ 0.21.
  const double p_star = max_undetected_bias(8.95, 25, 600);
  EXPECT_NEAR(p_star, 0.21, 0.01);
}

TEST(EntropyModel, EntropyMaxAtUniformRate) {
  const double at_uniform = biased_history_entropy(25.0 / 600.0, 25, 600);
  EXPECT_NEAR(at_uniform, std::log2(600.0), 1e-6);
  EXPECT_LT(biased_history_entropy(0.5, 25, 600), at_uniform);
  EXPECT_LT(biased_history_entropy(0.01, 25, 600), at_uniform);
}

TEST(EntropyModel, FullBiasGivesLog2Coalition) {
  EXPECT_NEAR(biased_history_entropy(1.0, 25, 600), std::log2(25.0), 1e-9);
}

TEST(EntropyModel, ThresholdBelowCoalitionEntropyAllowsFullBias) {
  EXPECT_DOUBLE_EQ(max_undetected_bias(4.0, 25, 600), 1.0);
}

TEST(EntropyModel, ImpossibleThresholdPinsToUniformRate) {
  EXPECT_NEAR(max_undetected_bias(10.0, 25, 600), 25.0 / 600.0, 1e-9);
}

TEST(EntropyModel, LargerCoalitionAllowsMoreBias) {
  const double small = max_undetected_bias(8.95, 10, 600);
  const double large = max_undetected_bias(8.95, 50, 600);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace lifting::analysis

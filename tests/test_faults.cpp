#include <gtest/gtest.h>

#include <vector>

#include "faults/injector.hpp"
#include "lifting/managers.hpp"
#include "lifting/params.hpp"
#include "net/codec.hpp"
#include "net/udp_transport.hpp"
#include "runtime/experiment.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"
#include "runtime/wire_scenario.hpp"
#include "sim/simulator.hpp"

/// Deterministic fault injection at the transport seam (DESIGN.md §11):
/// inert-by-default (the determinism goldens in test_determinism run with
/// the injector in the pipeline and are NOT re-pinned), bit-identical
/// under any thread count and across Experiment::reset, and idempotent
/// under transport-level duplication when the dedup machinery is armed.

namespace lifting::runtime {
namespace {

ScenarioConfig fault_fixture() {
  auto cfg = ScenarioConfig::small(60);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.02;
  return cfg;
}

faults::FaultPlan everything_plan() {
  faults::FaultPlan plan;
  plan.p_good_to_bad = 0.02;
  plan.p_bad_to_good = 0.25;
  plan.loss_good = 0.01;
  plan.loss_bad = 0.6;
  plan.delay_spike_probability = 0.01;
  plan.delay_spike_min = milliseconds(20);
  plan.delay_spike_max = milliseconds(120);
  plan.duplicate_probability = 0.02;
  plan.reorder_probability = 0.02;
  plan.reorder_delay = milliseconds(40);
  faults::PartitionWindow w;
  w.start = seconds(4.0);
  w.end = seconds(6.0);
  w.modulus = 7;
  w.remainder = 2;
  plan.partitions.push_back(w);
  return plan;
}

TEST(Faults, EmptyPlanIsInert) {
  // The injector always sits between Mailer and network; with the default
  // (empty) plan it must never count, draw, or hold anything. The byte-
  // identity of the goldens themselves is pinned by test_determinism,
  // which runs this same pipeline.
  Experiment ex(fault_fixture());
  ex.run();
  const auto& stats = ex.fault_stats();
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.delayed, 0u);
  EXPECT_EQ(stats.reordered, 0u);
}

TEST(Faults, PlanValidationRejectsBadValues) {
  auto cfg = fault_fixture();
  cfg.faults.loss_good = 1.5;
  EXPECT_THROW(Experiment{cfg}, std::invalid_argument);

  cfg = fault_fixture();
  cfg.faults.delay_spike_min = milliseconds(50);
  cfg.faults.delay_spike_max = milliseconds(10);
  EXPECT_THROW(Experiment{cfg}, std::invalid_argument);

  cfg = fault_fixture();
  faults::PartitionWindow w;
  w.modulus = 4;
  w.remainder = 4;
  cfg.faults.partitions.push_back(w);
  EXPECT_THROW(Experiment{cfg}, std::invalid_argument);
}

TEST(Faults, IdenticalPlanIsThreadCountInvariant) {
  // The same FaultPlan must produce bit-identical digests at --threads
  // 1/2/8: per-sender rng streams are derived from (seed, sender), never
  // from scheduling. This case (threads=8) also runs under TSan in CI.
  std::vector<RunSpec> specs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto cfg = fault_fixture();
    cfg.faults = everything_plan();
    specs.emplace_back(std::move(cfg), derive_task_seed(0xFA17ULL, i));
  }
  ParallelRunner serial(1);
  const auto reference = serial.run_digests(specs);

  RunDigest total;
  for (const auto& d : reference) total.accumulate(d);
  EXPECT_GT(total.faults_dropped, 0u);
  EXPECT_GT(total.faults_duplicated, 0u);
  EXPECT_GT(total.faults_delayed, 0u);

  for (const unsigned threads : {2u, 8u}) {
    ParallelRunner runner(threads);
    const auto digests = runner.run_digests(specs);
    ASSERT_EQ(digests.size(), reference.size());
    for (std::size_t i = 0; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i] == reference[i], true)
          << "digest " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(Faults, ResetReplaysTheIdenticalFaultStream) {
  auto cfg = fault_fixture();
  cfg.faults = everything_plan();
  Experiment ex(cfg);
  ex.run();
  const auto first = RunDigest::of(ex);
  EXPECT_GT(first.faults_dropped, 0u);

  ex.reset();
  ex.run();
  const auto replay = RunDigest::of(ex);
  EXPECT_TRUE(first == replay);

  Experiment fresh(cfg);
  fresh.run();
  EXPECT_TRUE(RunDigest::of(fresh) == first);
}

TEST(Faults, PartitionWindowDropsOnlyWhileActive) {
  auto cfg = fault_fixture();
  faults::PartitionWindow w;
  w.start = seconds(2.0);
  w.end = seconds(4.0);
  w.modulus = 5;
  w.remainder = 1;
  cfg.faults.partitions.push_back(w);
  Experiment ex(cfg);

  // Stop 1 us short of the window opening: a send scheduled exactly at the
  // boundary must not count toward the "before" reading.
  ex.run_until(kSimEpoch + seconds(2.0) - microseconds(1));
  EXPECT_EQ(ex.fault_stats().dropped_partition, 0u);

  ex.run_until(kSimEpoch + seconds(4.0));
  const auto during = ex.fault_stats().dropped_partition;
  EXPECT_GT(during, 0u);

  // Healed: the window closed, so the count freezes while traffic keeps
  // flowing (the partition machinery is rng-free time/id arithmetic).
  const auto delivered_at_heal = ex.network_stats().datagrams_delivered;
  ex.run();
  EXPECT_EQ(ex.fault_stats().dropped_partition, during);
  EXPECT_GT(ex.network_stats().datagrams_delivered, delivered_at_heal);
}

TEST(Faults, AsymmetricPartitionDropsOneDirectionOnly) {
  // drop_island_to_main only: the island can hear but not speak. Pinned at
  // the injector seam (rng-free id/time arithmetic) over the real wire
  // transport: main->island passes, island->main drops.
  sim::Simulator sim;
  net::UdpTransport udp;
  std::size_t at_main = 0;
  std::size_t at_island = 0;
  ASSERT_TRUE(udp.add_endpoint(NodeId{0},
                               [&](NodeId, gossip::Message) { ++at_main; }));
  ASSERT_TRUE(udp.add_endpoint(NodeId{1},
                               [&](NodeId, gossip::Message) { ++at_island; }));
  faults::FaultInjector injector(udp, sim, /*seed=*/1);
  faults::FaultPlan plan;
  faults::PartitionWindow w;
  w.start = Duration::zero();
  w.end = seconds(1.0);
  w.modulus = 2;
  w.remainder = 1;  // island = odd ids
  w.drop_main_to_island = false;
  plan.partitions.push_back(w);
  injector.set_plan(plan);

  const gossip::Message msg{gossip::AuditRequestMsg{1}};
  injector.send(NodeId{0}, NodeId{1}, sim::Channel::kDatagram,
                gossip::wire_size(msg), msg);
  injector.send(NodeId{1}, NodeId{0}, sim::Channel::kDatagram,
                gossip::wire_size(msg), msg);
  std::size_t delivered = 0;
  for (int i = 0; i < 50 && delivered < 1; ++i) delivered += udp.poll_wait(20);
  EXPECT_EQ(at_island, 1u);
  EXPECT_EQ(at_main, 0u);
  EXPECT_EQ(injector.stats().dropped_partition, 1u);
}

TEST(Faults, TimelineSwapsThePlanMidRun) {
  // kSetFaults: faults start at 3 s and heal at 6 s via the timeline, so
  // the drop counter only moves inside that window.
  auto cfg = fault_fixture();
  faults::FaultPlan lossy;
  lossy.loss_good = 0.3;
  cfg.timeline.set_faults_at(seconds(3.0), lossy);
  cfg.timeline.set_faults_at(seconds(6.0), faults::FaultPlan{});
  Experiment ex(cfg);

  ex.run_until(kSimEpoch + seconds(3.0) - microseconds(1));
  EXPECT_EQ(ex.fault_stats().dropped(), 0u);
  ex.run_until(kSimEpoch + seconds(6.0) + milliseconds(1));
  const auto during = ex.fault_stats().dropped();
  EXPECT_GT(during, 0u);
  ex.run();
  EXPECT_EQ(ex.fault_stats().dropped(), during);
}

TEST(Faults, InjectorDuplicatesOverTheUdpTransport) {
  // The same injector class wraps the real wire transport inside each
  // lifting_node daemon; a duplicate is a second identical frame on the
  // socket, and both copies are recorded by the wire accounting.
  sim::Simulator sim;
  net::UdpTransport udp;
  std::size_t received = 0;
  ASSERT_TRUE(udp.add_endpoint(NodeId{0}, nullptr));
  ASSERT_TRUE(udp.add_endpoint(NodeId{1},
                               [&](NodeId, gossip::Message) { ++received; }));
  faults::FaultInjector injector(udp, sim, /*seed=*/7);
  faults::FaultPlan plan;
  plan.duplicate_probability = 1.0;
  injector.set_plan(plan);

  const gossip::Message msg{gossip::BlameMsg{NodeId{3}, 1.0,
                                             gossip::BlameReason::kTestimony}};
  injector.send(NodeId{0}, NodeId{1}, sim::Channel::kDatagram,
                gossip::wire_size(msg), msg);
  std::size_t delivered = 0;
  for (int i = 0; i < 50 && delivered < 2; ++i) delivered += udp.poll_wait(20);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(received, 2u);
  EXPECT_EQ(injector.stats().duplicated, 1u);
  EXPECT_EQ(udp.wire_stats()[msg.index()].count, 2u);
}

TEST(Faults, DuplicateDeliveryDoesNotDoubleCountBlameOrScores) {
  // The idempotence audit: duplicate EVERY datagram and arm the dedup
  // machinery (windowed blame dedup; propose/request/testimony/ballot
  // dedup is always on); the manager ledger and the final scores must
  // equal the no-dup run — every receive path is dup-safe, not merely
  // dup-tolerant. The wire itself is made side-effect-free first: under
  // loss a duplicate legitimately acts as redundancy (one copy survives),
  // with jitter the extra datagram draws its own latency, and at finite
  // uplink capacity it occupies real serialization time that delays later
  // traffic past verification deadlines. All three are faithful physics,
  // not double-counting — what this test pins is that the protocol state
  // machines absorb exact duplicates.
  auto base = fault_fixture();
  base.link.loss = 0.0;
  base.link.latency_jitter = Duration::zero();
  base.link.upload_capacity_bps = 1e12;  // tx time rounds to 0 us
  base.lifting.blame_dedup_window = seconds(1.0);
  Experiment clean(base);
  clean.run();
  const auto clean_scores = clean.snapshot_scores();
  const auto clean_emissions = clean.ledger().emissions();

  auto dup = base;
  dup.faults.duplicate_probability = 1.0;
  Experiment doubled(dup);
  doubled.run();
  EXPECT_GT(doubled.fault_stats().duplicated, 0u);
  const auto dup_scores = doubled.snapshot_scores();

  for (int r = 0; r < 6; ++r) {
    double c = 0.0;
    double d = 0.0;
    for (std::uint32_t i = 0; i < base.nodes; ++i) {
      c += clean.ledger().total(NodeId{i}, static_cast<gossip::BlameReason>(r));
      d += doubled.ledger().total(NodeId{i},
                                  static_cast<gossip::BlameReason>(r));
    }
    EXPECT_DOUBLE_EQ(d, c) << "reason " << r;
  }
  EXPECT_EQ(doubled.ledger().emissions(), clean_emissions);
  ASSERT_EQ(dup_scores.honest.size(), clean_scores.honest.size());
  for (std::size_t i = 0; i < clean_scores.honest.size(); ++i) {
    EXPECT_DOUBLE_EQ(dup_scores.honest[i], clean_scores.honest[i]);
  }
  ASSERT_EQ(dup_scores.freeriders.size(), clean_scores.freeriders.size());
  for (std::size_t i = 0; i < clean_scores.freeriders.size(); ++i) {
    EXPECT_DOUBLE_EQ(dup_scores.freeriders[i], clean_scores.freeriders[i]);
  }
}

ScenarioConfig reliable_audit_fixture() {
  auto cfg = fault_fixture();
  cfg.lifting.audit_channel = LiftingParams::AuditChannel::kReliableUdp;
  cfg.lifting.audit_probability = 0.3;
  cfg.lifting.audit_warmup_periods = 4;
  return cfg;
}

TEST(Faults, ReliableAuditChannelRetriesUnderLoss) {
  auto cfg = reliable_audit_fixture();
  cfg.faults.loss_good = 0.4;
  Experiment ex(cfg);
  ex.run();
  const auto totals = ex.audit_channel_totals();
  EXPECT_GT(totals.sends, 0u);
  EXPECT_GT(totals.retries, 0u);
  EXPECT_GT(totals.acks_received, 0u);
}

TEST(Faults, ReliableAuditChannelGivesUpWhenTheBudgetRunsOut) {
  // A permanent full partition around a quarter of the population: audits
  // crossing the boundary can never be acked, so the bounded retry budget
  // must expire into give_ups rather than retrying forever.
  auto cfg = reliable_audit_fixture();
  cfg.lifting.audit_max_retries = 2;
  faults::PartitionWindow w;
  w.start = Duration::zero();
  w.end = cfg.duration;
  w.modulus = 4;
  w.remainder = 1;
  cfg.faults.partitions.push_back(w);
  Experiment ex(cfg);
  ex.run();
  const auto totals = ex.audit_channel_totals();
  EXPECT_GT(totals.sends, 0u);
  EXPECT_GT(totals.give_ups, 0u);
}

TEST(Faults, ReliableAuditChannelIsInertByDefaultAndDeterministic) {
  // Reliable mode with no faults: every audit acked on first transmission,
  // and the mode itself is deterministic (two runs bit-equal).
  auto cfg = reliable_audit_fixture();
  Experiment a(cfg);
  a.run();
  const auto ta = a.audit_channel_totals();
  EXPECT_GT(ta.sends, 0u);
  EXPECT_EQ(ta.give_ups, 0u);
  Experiment b(cfg);
  b.run();
  EXPECT_TRUE(RunDigest::of(a) == RunDigest::of(b));
}

TEST(Faults, DatagramWireSizeMatchesTheCodecExactly) {
  // datagram_wire_size prices a message as IP/UDP headers + the loopback
  // frame's codec bytes (+ the zero-filled serve payload). Pinning it to
  // the actual encoder is what makes the reliable-audit wire-vs-model
  // delta exactly +6 B/msg (the frame header) for every kind.
  gossip::AuditHistoryMsg hist;
  hist.audit_id = 5;
  hist.proposals.push_back(
      {3, {NodeId{1}, NodeId{2}}, {ChunkId{10}, ChunkId{11}}});
  const std::vector<gossip::Message> corpus = {
      gossip::Message{gossip::ProposeMsg{1, {ChunkId{5}, ChunkId{6}}}},
      gossip::Message{gossip::ServeMsg{1, ChunkId{5}, 1024, NodeId{3}}},
      gossip::Message{gossip::AuditRequestMsg{9}},
      gossip::Message{hist},
      gossip::Message{gossip::HistoryPollMsg{9, NodeId{7}, hist.proposals}},
      gossip::Message{
          gossip::HistoryPollRespMsg{9, NodeId{7}, 3, 1, {NodeId{1}}}},
      gossip::Message{gossip::AuditAckMsg{13, 9, NodeId{7}}},
  };
  constexpr std::size_t kIpUdp = 28;
  for (const auto& msg : corpus) {
    const std::size_t payload =
        std::holds_alternative<gossip::ServeMsg>(msg)
            ? std::get<gossip::ServeMsg>(msg).payload_bytes
            : 0;
    EXPECT_EQ(gossip::datagram_wire_size(msg),
              kIpUdp + net::encode(msg).size() + payload)
        << "kind " << gossip::message_kind(msg);
  }
}

TEST(Faults, AuditAckCodecRoundTrip) {
  const gossip::AuditAckMsg ack{14, 123456, NodeId{77}};
  const auto decoded = net::decode(net::encode(gossip::Message{ack}));
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<gossip::AuditAckMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->acked_kind, ack.acked_kind);
  EXPECT_EQ(out->audit_id, ack.audit_id);
  EXPECT_EQ(out->subject, ack.subject);
}

TEST(Faults, WireScenarioRoundTripsFaultPlanAndAuditChannel) {
  auto cfg = ScenarioConfig::small(16);
  cfg.lifting.audit_channel = LiftingParams::AuditChannel::kReliableUdp;
  cfg.lifting.audit_max_retries = 7;
  cfg.lifting.audit_retry_base = milliseconds(125);
  cfg.lifting.audit_retry_jitter = 0.25;
  cfg.lifting.audit_dedup_cap = 64;
  cfg.lifting.blame_dedup_window = milliseconds(750);
  cfg.faults = everything_plan();
  faults::PartitionWindow second;
  second.start = seconds(7.0);
  second.end = seconds(8.0);
  second.modulus = 3;
  second.remainder = 0;
  second.drop_island_to_main = false;
  cfg.faults.partitions.push_back(second);

  std::string error;
  const auto decoded = decode_wire_scenario(encode_wire_scenario(cfg), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->lifting.audit_channel,
            LiftingParams::AuditChannel::kReliableUdp);
  EXPECT_EQ(decoded->lifting.audit_max_retries, 7u);
  EXPECT_EQ(decoded->lifting.audit_retry_base, milliseconds(125));
  EXPECT_DOUBLE_EQ(decoded->lifting.audit_retry_jitter, 0.25);
  EXPECT_EQ(decoded->lifting.audit_dedup_cap, 64u);
  EXPECT_EQ(decoded->lifting.blame_dedup_window, milliseconds(750));
  EXPECT_DOUBLE_EQ(decoded->faults.p_good_to_bad, 0.02);
  EXPECT_DOUBLE_EQ(decoded->faults.loss_bad, 0.6);
  EXPECT_EQ(decoded->faults.delay_spike_min, milliseconds(20));
  EXPECT_EQ(decoded->faults.reorder_delay, milliseconds(40));
  ASSERT_EQ(decoded->faults.partitions.size(), 2u);
  EXPECT_EQ(decoded->faults.partitions[0].modulus, 7u);
  EXPECT_EQ(decoded->faults.partitions[0].remainder, 2u);
  EXPECT_EQ(decoded->faults.partitions[1].start, seconds(7.0));
  EXPECT_FALSE(decoded->faults.partitions[1].drop_island_to_main);
  EXPECT_TRUE(decoded->faults.partitions[1].drop_main_to_island);

  // The plan survives wire_supported's gate (faults are deployable; the
  // timeline's kSetFaults is not — it needs the launcher's clock).
  std::string why;
  EXPECT_TRUE(wire_supported(*decoded, &why)) << why;
  cfg.timeline.set_faults_at(seconds(1.0), faults::FaultPlan{});
  EXPECT_FALSE(wire_supported(cfg, &why));
}

TEST(Faults, CarriedManagerStoreConservesBlameAcrossABounce) {
  // ROADMAP carry-over: with manager_handoff OFF, a departing manager's
  // rows vanish with it — unless carried_manager_store moves them into the
  // rejoining incarnation. The rows move exactly once and keep the OLD
  // store's genesis, so the carried blame is judged against the periods it
  // actually accrued over (no score cliff for the managed targets).
  LiftingParams params;
  ManagerStore old_store(params, kSimEpoch);
  old_store.apply_blame(NodeId{5}, 2.0, gossip::BlameReason::kTestimony);

  ManagerStore fresh(params, kSimEpoch + seconds(10.0));
  EXPECT_EQ(old_store.carry_into(fresh), 1u);
  EXPECT_DOUBLE_EQ(fresh.raw_blame_total(NodeId{5}), 2.0);
  EXPECT_DOUBLE_EQ(old_store.raw_blame_total(NodeId{5}), 0.0);
  EXPECT_EQ(old_store.carry_into(fresh), 0u);  // a row carries at most once

  // Same blame applied natively to the fresh store (genesis = the rejoin
  // instant) divides by half the periods, so it reads strictly lower.
  fresh.apply_blame(NodeId{6}, 2.0, gossip::BlameReason::kTestimony);
  const auto now = kSimEpoch + seconds(20.0);
  EXPECT_GT(fresh.normalized_score(NodeId{5}, now),
            fresh.normalized_score(NodeId{6}, now));
}

TEST(Faults, CarriedManagerStoreRunsTheFrontierScenario) {
  // The bench's off+carried arm end to end: handoff off, churn with
  // rejoiners, carry enabled — must complete with rejoins actually
  // exercising the carry path (bench_adversary_frontier asserts the
  // behavioral effect on the whitewash edge).
  auto cfg = adversary_frontier_config(/*handoff_on=*/false, 0xCA22ULL);
  cfg.carried_manager_store = true;
  Experiment ex(cfg);
  ex.run();
  EXPECT_GT(ex.rejoins().size(), 0u);
}

}  // namespace
}  // namespace lifting::runtime

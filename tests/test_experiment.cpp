#include <gtest/gtest.h>

#include "runtime/experiment.hpp"
#include "runtime/scenario.hpp"

namespace lifting::runtime {
namespace {

TEST(Experiment, HonestSystemDisseminatesAndScoresStayHealthy) {
  auto cfg = ScenarioConfig::small(50);
  cfg.duration = seconds(15.0);
  cfg.stream.duration = seconds(12.0);
  Experiment ex(cfg);
  ex.run();

  // Dissemination: every emitted chunk reaches (almost) every node. The
  // default 0.99 clear threshold allows zero misses over the ~25 eligible
  // chunks, and under infect-and-die a propose wave occasionally dies
  // before covering all 50 nodes — give each node one chunk of slack so
  // the assertion tests dissemination, not wave-death coin flips.
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  const auto curve = ex.health_curve({5.0}, /*honest_only=*/true, playback);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_GT(curve[0].fraction_clear, 0.95);

  // Scores: nobody near the default η.
  const auto snap = ex.snapshot_scores();
  EXPECT_EQ(snap.freeriders.size(), 0u);
  for (const auto s : snap.honest) {
    EXPECT_GT(s, -5.0);
  }
  const auto det = ex.detection_at(-9.75);
  EXPECT_DOUBLE_EQ(det.false_positive, 0.0);
}

TEST(Experiment, FreeridersScoreBelowHonestNodes) {
  auto cfg = ScenarioConfig::small(60);
  cfg.duration = seconds(20.0);
  cfg.stream.duration = seconds(18.0);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.3);
  Experiment ex(cfg);
  ex.run();

  const auto snap = ex.snapshot_scores();
  ASSERT_GT(snap.freeriders.size(), 0u);
  ASSERT_GT(snap.honest.size(), 0u);
  double honest_mean = 0.0;
  for (const auto s : snap.honest) honest_mean += s;
  honest_mean /= static_cast<double>(snap.honest.size());
  double cheat_mean = 0.0;
  for (const auto s : snap.freeriders) cheat_mean += s;
  cheat_mean /= static_cast<double>(snap.freeriders.size());
  // Packet-level runs accumulate blames slower than the §6 steady-state
  // model (fewer requests per period than |R|·f); after r=40 periods the
  // separation is a few points and grows with time.
  EXPECT_LT(cheat_mean, honest_mean - 1.5);
  EXPECT_GT(honest_mean, -1.0);  // no loss => honest essentially unblamed
}

TEST(Experiment, ExpulsionRemovesFreeridersFromMembership) {
  auto cfg = ScenarioConfig::small(60);
  cfg.duration = seconds(35.0);
  cfg.stream.duration = seconds(33.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.6);
  cfg.expulsion_enabled = true;
  cfg.lifting.eta = -4.0;
  cfg.lifting.score_check_probability = 0.5;
  cfg.lifting.min_periods_before_detection = 10;
  Experiment ex(cfg);
  ex.run();

  // At least one freerider was expelled, and no honest node was.
  std::size_t freeriders_expelled = 0;
  for (const auto& rec : ex.expulsions()) {
    EXPECT_TRUE(rec.was_freerider)
        << "honest node " << rec.victim.value() << " expelled";
    if (rec.was_freerider) ++freeriders_expelled;
  }
  EXPECT_GT(freeriders_expelled, 0u);
  for (const auto id : ex.freerider_ids()) {
    if (!ex.directory().is_live(id)) continue;
    // Still-live freeriders should at least be deep in the red.
    EXPECT_LT(ex.true_score(id), 0.0);
  }
}

TEST(Experiment, OverheadAccountingSeparatesClasses) {
  auto cfg = ScenarioConfig::small(40);
  cfg.duration = seconds(10.0);
  cfg.stream.duration = seconds(8.0);
  Experiment ex(cfg);
  ex.run();
  const auto report = ex.overhead();
  EXPECT_GT(report.dissemination_bytes, 0u);
  EXPECT_GT(report.verification_bytes, 0u);
  // Verification traffic is small relative to the stream (Table 5 ballpark:
  // single-digit percent at p_dcc=1 for a real stream; generous bound here).
  EXPECT_LT(report.verification_ratio(), 0.35);
}

TEST(Experiment, LiftingDisabledSendsNoVerificationTraffic) {
  auto cfg = ScenarioConfig::small(40);
  cfg.lifting_enabled = false;
  cfg.duration = seconds(10.0);
  cfg.stream.duration = seconds(8.0);
  Experiment ex(cfg);
  ex.run();
  const auto report = ex.overhead();
  EXPECT_GT(report.dissemination_bytes, 0u);
  EXPECT_EQ(report.verification_bytes, 0u);
  EXPECT_EQ(report.audit_bytes, 0u);
  const auto curve = ex.health_curve({5.0});
  EXPECT_GT(curve[0].fraction_clear, 0.95);
}

TEST(Experiment, DeterministicUnderSameSeed) {
  auto cfg = ScenarioConfig::small(30);
  cfg.duration = seconds(8.0);
  cfg.stream.duration = seconds(6.0);
  Experiment a(cfg);
  a.run();
  Experiment b(cfg);
  b.run();
  EXPECT_EQ(a.simulator().events_processed(), b.simulator().events_processed());
  EXPECT_EQ(a.network_stats().datagrams_sent, b.network_stats().datagrams_sent);
  const auto sa = a.snapshot_scores();
  const auto sb = b.snapshot_scores();
  ASSERT_EQ(sa.honest.size(), sb.honest.size());
  for (std::size_t i = 0; i < sa.honest.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa.honest[i], sb.honest[i]);
  }
}

TEST(Experiment, SeedChangesRun) {
  auto cfg = ScenarioConfig::small(30);
  cfg.duration = seconds(6.0);
  cfg.stream.duration = seconds(5.0);
  Experiment a(cfg);
  a.run();
  cfg.seed = 8888;
  Experiment b(cfg);
  b.run();
  EXPECT_NE(a.network_stats().datagrams_sent,
            b.network_stats().datagrams_sent);
}

TEST(Experiment, ResumableRunUntil) {
  auto cfg = ScenarioConfig::small(30);
  cfg.duration = seconds(10.0);
  cfg.stream.duration = seconds(9.0);
  Experiment ex(cfg);
  ex.run_until(kSimEpoch + seconds(4.0));
  const auto mid = ex.network_stats().datagrams_sent;
  EXPECT_GT(mid, 0u);
  ex.run_until(kSimEpoch + seconds(10.0));
  EXPECT_GT(ex.network_stats().datagrams_sent, mid);
}

TEST(ScenarioConfig, PlanetlabPresetMatchesPaper) {
  const auto cfg = ScenarioConfig::planetlab();
  EXPECT_EQ(cfg.nodes, 300u);
  EXPECT_EQ(cfg.gossip.fanout, 7u);
  EXPECT_EQ(cfg.gossip.period, milliseconds(500));
  EXPECT_EQ(cfg.lifting.managers, 25u);
  // η is the paper's -9.75 mapped to this deployment's interaction density
  // (see EXPERIMENTS.md); it must stay strictly negative and of the same
  // order.
  EXPECT_LT(cfg.lifting.eta, -2.0);
  EXPECT_GT(cfg.lifting.eta, -9.75);
  EXPECT_NEAR(cfg.freerider_behavior.delta_fanout, 1.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(cfg.freerider_behavior.delta_propose, 0.1);
  EXPECT_DOUBLE_EQ(cfg.freerider_behavior.delta_serve, 0.1);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ScenarioConfig, ValidationRejectsNonsense) {
  auto cfg = ScenarioConfig::small();
  cfg.freerider_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScenarioConfig::small();
  cfg.nodes = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace lifting::runtime

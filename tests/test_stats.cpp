#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "stats/empirical.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace lifting::stats {
namespace {

// --------------------------------------------------------------- entropy

TEST(Entropy, UniformCountsReachLog2N) {
  const std::vector<std::uint64_t> counts(8, 5);
  EXPECT_NEAR(shannon_entropy(counts), 3.0, 1e-12);
}

TEST(Entropy, DegenerateDistributionIsZero) {
  const std::vector<std::uint64_t> counts{42};
  EXPECT_DOUBLE_EQ(shannon_entropy(counts), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<std::uint64_t>{}), 0.0);
}

TEST(Entropy, ZeroCountsIgnored) {
  const std::vector<std::uint64_t> counts{4, 0, 4, 0};
  EXPECT_NEAR(shannon_entropy(counts), 1.0, 1e-12);
}

TEST(Entropy, PmfMatchesCounts) {
  const std::vector<double> pmf{0.5, 0.25, 0.25};
  EXPECT_NEAR(shannon_entropy_pmf(pmf), 1.5, 1e-12);
}

TEST(Entropy, MultisetEntropyOfDistinctIdsIsLog2Size) {
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 64; ++i) ids.push_back(NodeId{i});
  EXPECT_NEAR(multiset_entropy<NodeId>({ids.data(), ids.size()}), 6.0, 1e-12);
}

TEST(Entropy, MultisetEntropyDropsWithRepetition) {
  std::vector<NodeId> skewed;
  // Half the mass on a single id — the biased-selection signature.
  for (std::uint32_t i = 0; i < 32; ++i) skewed.push_back(NodeId{0});
  for (std::uint32_t i = 0; i < 32; ++i) skewed.push_back(NodeId{i + 1});
  const double h = multiset_entropy<NodeId>({skewed.data(), skewed.size()});
  EXPECT_LT(h, 4.6);
  EXPECT_GT(h, 3.0);
}

TEST(Entropy, KlDivergenceProperties) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.25, 0.75};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
  EXPECT_GT(kl_divergence(p, q), 0.0);
  const std::vector<double> q0{1.0, 0.0};
  EXPECT_TRUE(std::isinf(kl_divergence(p, q0)));
}

TEST(Entropy, MaxEntropyIsLog2) {
  EXPECT_NEAR(max_entropy(600), std::log2(600.0), 1e-12);  // 9.2288 (§6.3.2)
  EXPECT_NEAR(max_entropy(600), 9.2288, 1e-3);
}

TEST(Entropy, ExpectedUniformEntropyBelowMaxAboveBulk) {
  // 600 draws from 10,000 nodes: the paper observes fanout entropy in
  // [9.11, 9.21] with a hard max of 9.23 (Fig. 13a).
  const double h = expected_uniform_entropy(10'000, 600);
  EXPECT_LT(h, 9.23);
  EXPECT_GT(h, 9.10);
}

TEST(Entropy, ExpectedUniformEntropyMatchesSimulation) {
  Pcg32 rng{2024};
  Summary sim;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> counts(1000, 0);
    for (int draw = 0; draw < 300; ++draw) ++counts[rng.below(1000)];
    sim.add(shannon_entropy(counts));
  }
  EXPECT_NEAR(expected_uniform_entropy(1000, 300), sim.mean(), 0.02);
}

// --------------------------------------------------------------- summary

TEST(Summary, MatchesNaiveMoments) {
  Summary s;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  double mean = 0.0;
  for (const auto x : xs) {
    s.add(x);
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const auto x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(Summary, MergeEqualsSequential) {
  Pcg32 rng{8};
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

// ------------------------------------------------------------- histogram

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamped into first bin
  h.add(100.0);  // clamped into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, BinEdgesConsistent) {
  Histogram h(-10.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.width(), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 5.0);
  EXPECT_EQ(h.bin_index(-10.0), 0u);
  EXPECT_EQ(h.bin_index(4.999), 2u);
}

TEST(Histogram, RenderShowsNonEmptyBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  const auto text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
}

// ------------------------------------------------------------- empirical

TEST(Empirical, CdfAndQuantiles) {
  Empirical e({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf_strict(1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 4.0);
}

TEST(Empirical, AddKeepsConsistency) {
  Empirical e;
  e.add(2.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.5), 0.5);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.5), 2.0 / 3.0);
}

TEST(Empirical, CdfSeriesMonotone) {
  Pcg32 rng{77};
  Empirical e;
  for (int i = 0; i < 500; ++i) e.add(rng.normal());
  const auto series = e.cdf_series(-3.0, 3.0, 25);
  ASSERT_EQ(series.size(), 25u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_LT(series.front().second, 0.05);
  EXPECT_GT(series.back().second, 0.95);
}

}  // namespace
}  // namespace lifting::stats

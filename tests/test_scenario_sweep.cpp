#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lifting/managers.hpp"
#include "runtime/experiment.hpp"

/// Randomized scenario sweep: ~20 small configurations (population,
/// δ-vector, loss, weak fraction, churn on/off) derived from one fixed
/// seed, each run end to end and checked against structural invariants
/// rather than pinned numbers:
///
///   * no pool-slot leaks — after wind_down() the delivery pool is empty
///     and the event queue fully drained (exercises endpoint teardown);
///   * detection/false-positive/health fractions in [0,1], scores finite;
///   * every manager's view of a target never exceeds the ground-truth
///     ledger (managers only know what was emitted, minus losses);
///   * detection >= false-positive at a mid-gap threshold for δ >= 0.3;
///   * the health curve is monotone in the playback lag.
///
/// The sweep is deterministic (fixed seed), so a failure names the exact
/// config; the same suite runs under ASan/UBSan in CI to surface teardown
/// and lifetime bugs loudly.

namespace lifting::runtime {
namespace {

struct SweepCase {
  std::uint32_t index = 0;
  double delta = 0.0;
  bool churn = false;
  ScenarioConfig config;
};

SweepCase make_case(std::uint32_t index, Pcg32& rng) {
  SweepCase c;
  c.index = index;
  const std::uint32_t nodes = 40 + rng.below(60);
  c.config = ScenarioConfig::small(nodes);
  c.config.seed = 0x5EEDULL + index;
  c.config.duration = seconds(10.0 + rng.uniform() * 4.0);
  c.config.stream.duration = c.config.duration - seconds(2.0);

  static constexpr double kDeltas[] = {0.1, 0.3, 0.5, 0.7};
  c.delta = kDeltas[rng.below(4)];
  c.config.freerider_fraction = 0.1 + rng.uniform() * 0.15;
  c.config.freerider_behavior = gossip::BehaviorSpec::freerider(c.delta);

  c.config.link.loss = rng.uniform() * 0.04;
  c.config.weak_fraction = rng.uniform() * 0.2;
  c.config.weak_link = c.config.link;
  c.config.weak_link.loss = std::min(0.15, c.config.link.loss * 3 + 0.02);
  c.config.weak_link.upload_capacity_bps = 5e6;

  c.churn = (index % 2) == 1;
  if (c.churn) {
    ScenarioTimeline::PoissonChurn churn;
    churn.arrival_fraction_per_min = 0.3 + rng.uniform() * 0.4;
    churn.departure_fraction_per_min = 0.3 + rng.uniform() * 0.4;
    churn.crash_fraction = rng.uniform();
    churn.freerider_fraction = 0.1;
    churn.freerider_behavior = c.config.freerider_behavior;
    churn.start = seconds(2.0);
    churn.end = c.config.duration - seconds(2.0);
    c.config.timeline =
        ScenarioTimeline::poisson_churn(churn, nodes, c.config.seed);
  }
  return c;
}

void check_invariants(const SweepCase& c) {
  SCOPED_TRACE(::testing::Message()
               << "sweep case " << c.index << ": nodes=" << c.config.nodes
               << " delta=" << c.delta << " loss=" << c.config.link.loss
               << " churn=" << (c.churn ? c.config.timeline.size() : 0)
               << " events");
  Experiment ex(c.config);
  ex.run();

  // ---- scores: finite, and split cleanly into honest/freerider samples.
  const auto snap = ex.snapshot_scores();
  double honest_sum = 0.0;
  double freerider_sum = 0.0;
  for (const double s : snap.honest) {
    ASSERT_TRUE(std::isfinite(s));
    honest_sum += s;
  }
  for (const double s : snap.freeriders) {
    ASSERT_TRUE(std::isfinite(s));
    freerider_sum += s;
  }
  ASSERT_FALSE(snap.honest.empty());
  ASSERT_FALSE(snap.freeriders.empty());
  const double honest_mean =
      honest_sum / static_cast<double>(snap.honest.size());
  const double freerider_mean =
      freerider_sum / static_cast<double>(snap.freeriders.size());

  // ---- detection dominates false positives at a mid-gap threshold once
  // the freeriding degree is substantial.
  const double eta = (honest_mean + freerider_mean) / 2.0;
  const auto stats = ex.detection_at(eta);
  EXPECT_GE(stats.detection, 0.0);
  EXPECT_LE(stats.detection, 1.0);
  EXPECT_GE(stats.false_positive, 0.0);
  EXPECT_LE(stats.false_positive, 1.0);
  if (c.delta >= 0.3) {
    EXPECT_LE(freerider_mean, honest_mean);
    EXPECT_GE(stats.detection, stats.false_positive);
  }

  // ---- the managers' (lossy) view never exceeds the ground-truth ledger.
  for (std::uint32_t i = 1; i < ex.population(); ++i) {
    const NodeId id{i};
    const double emitted = ex.ledger().total(id);
    for (const auto m : lifting::managers_of(id, c.config.nodes,
                                             c.config.lifting.managers,
                                             c.config.seed)) {
      const double view =
          ex.agent(m).manager_store().raw_blame_total(id);
      ASSERT_LE(view, emitted + 1e-6)
          << "manager " << m.value() << " knows more blame against "
          << i << " than was ever emitted";
    }
  }

  // ---- health monotone in lag, fractions in [0,1]. One common judging
  // window across lags — per-lag eligible sets would break comparability.
  gossip::PlaybackConfig playback;
  playback.warmup = seconds(2.0);
  playback.clear_threshold = 0.9;
  playback.common_window_lag = 4.0;
  const auto curve = ex.health_curve({1.0, 2.0, 4.0}, /*honest_only=*/true,
                                     playback);
  double prev = 0.0;
  for (const auto& point : curve) {
    EXPECT_GE(point.fraction_clear, 0.0);
    EXPECT_LE(point.fraction_clear, 1.0);
    EXPECT_GE(point.fraction_clear, prev) << "health not monotone in lag";
    prev = point.fraction_clear;
  }

  // ---- churn consistency: the directory and the records agree.
  if (c.churn) {
    std::size_t expected_live = c.config.nodes + ex.joins().size() -
                                ex.directory().expelled().size() -
                                ex.directory().departed().size();
    EXPECT_EQ(ex.directory().live_count(), expected_live);
  }

  // ---- teardown: drain the deployment; nothing may leak.
  ex.wind_down();
  EXPECT_EQ(ex.network().in_flight(), 0u) << "delivery pool slot leak";
  EXPECT_EQ(ex.simulator().pending_events(), 0u) << "event queue not drained";
}

TEST(ScenarioSweep, RandomizedConfigsHoldStructuralInvariants) {
  auto rng = derive_rng(0xC0FFEE, 0x5357454550ULL);  // "SWEEP"
  for (std::uint32_t i = 0; i < 20; ++i) {
    check_invariants(make_case(i, rng));
  }
}

}  // namespace
}  // namespace lifting::runtime

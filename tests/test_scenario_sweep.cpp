#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lifting/managers.hpp"
#include "runtime/experiment.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"

/// Randomized scenario sweep: ~20 small configurations (population,
/// δ-vector, loss, weak fraction, churn on/off) derived from one fixed
/// seed (src/runtime/sweep.hpp — the same workload bench_sweep_scaling
/// measures), each run end to end and checked against structural
/// invariants rather than pinned numbers:
///
///   * no pool-slot leaks — after wind_down() the delivery pool is empty
///     and the event queue fully drained (exercises endpoint teardown);
///   * detection/false-positive/health fractions in [0,1], scores finite;
///   * every manager's view of a target never exceeds the ground-truth
///     ledger (managers only know what was emitted, minus losses);
///   * detection >= false-positive at a mid-gap threshold for δ >= 0.3;
///   * the health curve is monotone in the playback lag.
///
/// The sweep is deterministic (fixed seed), so a failure names the exact
/// config; the same suite runs under ASan/UBSan in CI to surface teardown
/// and lifetime bugs loudly. The cases execute on the ParallelRunner
/// (runs share no state — DESIGN.md §6), so the suite also exercises the
/// sharded sweep path on every run; gtest assertions are thread-safe on
/// pthread platforms.

namespace lifting::runtime {
namespace {

void check_invariants(const SweepCase& c) {
  SCOPED_TRACE(::testing::Message()
               << "sweep case " << c.index << ": nodes=" << c.config.nodes
               << " delta=" << c.delta << " loss=" << c.config.link.loss
               << " churn=" << (c.churn ? c.config.timeline.size() : 0)
               << " events");
  Experiment ex(c.config);
  ex.run();

  // ---- scores: finite, and split cleanly into honest/freerider samples.
  const auto snap = ex.snapshot_scores();
  double honest_sum = 0.0;
  double freerider_sum = 0.0;
  for (const double s : snap.honest) {
    ASSERT_TRUE(std::isfinite(s));
    honest_sum += s;
  }
  for (const double s : snap.freeriders) {
    ASSERT_TRUE(std::isfinite(s));
    freerider_sum += s;
  }
  ASSERT_FALSE(snap.honest.empty());
  ASSERT_FALSE(snap.freeriders.empty());
  const double honest_mean =
      honest_sum / static_cast<double>(snap.honest.size());
  const double freerider_mean =
      freerider_sum / static_cast<double>(snap.freeriders.size());

  // ---- detection dominates false positives at a mid-gap threshold once
  // the freeriding degree is substantial.
  const double eta = (honest_mean + freerider_mean) / 2.0;
  const auto stats = ex.detection_at(eta);
  EXPECT_GE(stats.detection, 0.0);
  EXPECT_LE(stats.detection, 1.0);
  EXPECT_GE(stats.false_positive, 0.0);
  EXPECT_LE(stats.false_positive, 1.0);
  // An armed adaptive adversary (src/adversary/) deliberately blurs the
  // score gap — throttling near η, oscillating, whitewashing the record —
  // and an armed membership attack starves the blame supply by steering
  // partner selection into the coalition (DESIGN.md §12), so the mid-gap
  // dominance expectation only applies to static cases.
  if (c.delta >= 0.3 && !c.config.adversary.enabled() &&
      !c.config.membership.attack.enabled()) {
    EXPECT_LE(freerider_mean, honest_mean);
    EXPECT_GE(stats.detection, stats.false_positive);
  }

  // ---- the managers' (lossy) view never exceeds the ground-truth ledger.
  for (std::uint32_t i = 1; i < ex.population(); ++i) {
    const NodeId id{i};
    const double emitted = ex.ledger().total(id);
    for (const auto m : lifting::managers_of(id, c.config.nodes,
                                             c.config.lifting.managers,
                                             c.config.seed)) {
      const double view =
          ex.agent(m).manager_store().raw_blame_total(id);
      ASSERT_LE(view, emitted + 1e-6)
          << "manager " << m.value() << " knows more blame against "
          << i << " than was ever emitted";
    }
  }

  // ---- health monotone in lag, fractions in [0,1]. One common judging
  // window across lags — per-lag eligible sets would break comparability.
  gossip::PlaybackConfig playback;
  playback.warmup = seconds(2.0);
  playback.clear_threshold = 0.9;
  playback.common_window_lag = 4.0;
  const auto curve = ex.health_curve({1.0, 2.0, 4.0}, /*honest_only=*/true,
                                     playback);
  double prev = 0.0;
  for (const auto& point : curve) {
    EXPECT_GE(point.fraction_clear, 0.0);
    EXPECT_LE(point.fraction_clear, 1.0);
    EXPECT_GE(point.fraction_clear, prev) << "health not monotone in lag";
    prev = point.fraction_clear;
  }

  // ---- churn consistency: the directory and the records agree. Every
  // rejoin pairs with exactly one recorded directory departure (a crash
  // rejoined before detection records its departure at the rejoin), so the
  // balance closes with the rejoin count added back.
  if (c.churn) {
    std::size_t expected_live = c.config.nodes + ex.joins().size() +
                                ex.rejoins().size() -
                                ex.directory().expelled().size() -
                                ex.directory().departed().size();
    EXPECT_EQ(ex.directory().live_count(), expected_live);
  }

  // ---- teardown: drain the deployment; nothing may leak.
  ex.wind_down();
  EXPECT_EQ(ex.network().in_flight(), 0u) << "delivery pool slot leak";
  EXPECT_EQ(ex.simulator().pending_events(), 0u) << "event queue not drained";
}

TEST(ScenarioSweep, RandomizedConfigsHoldStructuralInvariants) {
  const auto cases = scenario_sweep_cases(20);
  ParallelRunner runner;  // LIFTING_THREADS-aware; serial when 1 core
  runner.for_each(cases.size(), [&](std::size_t i, unsigned /*worker*/) {
    check_invariants(cases[i]);
  });
}

}  // namespace
}  // namespace lifting::runtime

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "lifting/managers.hpp"
#include "membership/rps.hpp"
#include "membership/sampler.hpp"
#include "runtime/experiment.hpp"
#include "runtime/runner.hpp"

/// Churn-resilient accountability (DESIGN.md §7): manager handoff,
/// divergent membership views, and rejoin.
///
///   * handoff determinism — the post-handoff manager assignment is a pure
///     function of (config, seed, event history): identical across thread
///     counts, after Experiment::reset, and regardless of row
///     materialization order;
///   * ledger rows migrate exactly once — the departing manager's store is
///     zeroed by the move and total blame knowledge is conserved;
///   * rejoin epochs never alias a prior incarnation — every (id, epoch)
///     pair observed over a run is unique and epochs are monotone;
///   * divergent views — under a propagation lag observers disagree about
///     a leaver inside the lag window and converge after it; view-aware
///     sampling can return a recent leaver;
///   * the RPS dissemination curve justifies the lag model: join coverage
///     climbs over shuffle rounds, leave references decay.

namespace lifting::runtime {
namespace {

/// A scenario that forces manager churn: heavy leave/crash + rejoin over a
/// small population with LiFTinG and handoff on.
ScenarioConfig resilience_config() {
  auto cfg = ScenarioConfig::small(50);
  cfg.freerider_fraction = 0.1;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.duration = seconds(16.0);
  cfg.stream.duration = seconds(14.0);
  cfg.manager_handoff = true;
  cfg.manager_handoff_delay = milliseconds(300);
  cfg.view_propagation = milliseconds(400);
  ScenarioTimeline::PoissonChurn churn;
  churn.arrival_fraction_per_min = 0.6;
  churn.departure_fraction_per_min = 1.2;
  churn.crash_fraction = 0.5;
  churn.rejoin_fraction = 0.5;
  churn.rejoin_delay_mean = seconds(2.0);
  churn.start = seconds(1.0);
  churn.end = seconds(14.0);
  cfg.timeline = ScenarioTimeline::poisson_churn(churn, cfg.nodes, cfg.seed);
  return cfg;
}

TEST(ChurnResilience, HandoffDeterminismAcrossRunsAndReset) {
  const auto cfg = resilience_config();

  Experiment a(cfg);
  a.run();
  ASSERT_GT(a.handoffs().size(), 0u) << "scenario never exercised handoff";
  ASSERT_GT(a.rejoins().size(), 0u) << "scenario never exercised rejoin";

  Experiment b(cfg);
  b.run();

  // Fresh-vs-fresh: identical handoff history and identical final rows.
  ASSERT_EQ(a.handoffs().size(), b.handoffs().size());
  for (std::size_t i = 0; i < a.handoffs().size(); ++i) {
    EXPECT_EQ(a.handoffs()[i].target, b.handoffs()[i].target);
    EXPECT_EQ(a.handoffs()[i].departed, b.handoffs()[i].departed);
    EXPECT_EQ(a.handoffs()[i].replacement, b.handoffs()[i].replacement);
  }
  EXPECT_EQ(a.handoff_promotions(), b.handoff_promotions());

  // Reset-vs-fresh: rewinding a deployment that already executed handoffs
  // must clear the promotion state (assignment rebind) and reproduce the
  // identical history.
  b.reset(cfg);
  b.run();
  ASSERT_EQ(a.handoffs().size(), b.handoffs().size());
  for (std::size_t i = 0; i < a.handoffs().size(); ++i) {
    EXPECT_EQ(a.handoffs()[i].replacement, b.handoffs()[i].replacement);
  }
  EXPECT_EQ(a.handoff_promotions(), b.handoff_promotions());
  const auto qa = a.quorum_stats();
  const auto qb = b.quorum_stats();
  EXPECT_EQ(qa.min, qb.min);
  EXPECT_DOUBLE_EQ(qa.mean, qb.mean);
}

TEST(ChurnResilience, HandoffIdenticalAcrossThreadCounts) {
  // The same resilience scenario executed via the parallel runner at 1 and
  // 4 threads: per-spec digests must be bit-identical (worker lanes reuse
  // deployments via reset, so this also covers reset-after-handoff).
  std::vector<RunSpec> specs;
  for (std::uint64_t s = 0; s < 6; ++s) {
    auto cfg = resilience_config();
    const std::uint64_t seed = derive_task_seed(0xC0DE, s);
    ScenarioTimeline::PoissonChurn churn;
    churn.arrival_fraction_per_min = 0.6;
    churn.departure_fraction_per_min = 1.2;
    churn.crash_fraction = 0.5;
    churn.rejoin_fraction = 0.5;
    churn.rejoin_delay_mean = seconds(2.0);
    churn.start = seconds(1.0);
    churn.end = seconds(14.0);
    cfg.timeline = ScenarioTimeline::poisson_churn(churn, cfg.nodes, seed);
    specs.emplace_back(std::move(cfg), seed, "resilience");
  }
  ParallelRunner serial(1);
  ParallelRunner parallel(4);
  const auto ref = serial.run_digests(specs);
  const auto par = parallel.run_digests(specs);
  ASSERT_EQ(ref.size(), par.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "spec " << i;
  }
}

TEST(ChurnResilience, LedgerRowsMigrateExactlyOnce) {
  const auto cfg = resilience_config();
  Experiment ex(cfg);
  ex.run();

  std::size_t migrated = 0;
  for (const auto& handoff : ex.handoffs()) {
    if (!handoff.migrated) continue;
    ++migrated;
    // The move zeroed the departing store: a second take returns nothing.
    auto& from = ex.agent(handoff.departed).manager_store();
    EXPECT_EQ(from.raw_blame_total(handoff.target), 0.0)
        << "departed manager " << handoff.departed
        << " still holds a row for " << handoff.target;
  }
  ASSERT_GT(migrated, 0u) << "no handoff carried ledger state";

  // No (target, departed incarnation) pair is ever handed off twice — a
  // manager that rejoins, gets re-promoted and departs again is a new
  // incarnation, hence the epoch in the key.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (const auto& handoff : ex.handoffs()) {
    const auto key = std::make_tuple(handoff.target.value(),
                                     handoff.departed.value(),
                                     handoff.departed_epoch);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate handoff of target " << handoff.target
        << " from manager " << handoff.departed << " epoch "
        << handoff.departed_epoch;
  }
}

TEST(ChurnResilience, HandoffRestoresQuorum) {
  // With handoff on, every live target's present-manager quorum returns to
  // full strength after the handoff delay; with it off, departures leave
  // permanent holes.
  auto cfg = resilience_config();
  cfg.view_propagation = Duration::zero();  // isolate the handoff effect
  Experiment with(cfg);
  with.run();
  ASSERT_GT(with.handoffs().size(), 0u);
  const auto quorum_with = with.quorum_stats();

  cfg.manager_handoff = false;
  Experiment without(cfg);
  without.run();
  EXPECT_EQ(without.handoffs().size(), 0u);
  const auto quorum_without = without.quorum_stats();

  EXPECT_GT(quorum_with.mean, quorum_without.mean);
  EXPECT_GE(quorum_with.min, quorum_without.min);
  // Handoff keeps the mean quorum within one manager of full strength
  // (only departures younger than the handoff delay are uncovered).
  EXPECT_GE(quorum_with.mean,
            static_cast<double>(cfg.lifting.managers) - 1.0);
}

TEST(ChurnResilience, RejoinEpochsNeverAliasAPriorIncarnation) {
  const auto cfg = resilience_config();
  Experiment ex(cfg);
  ex.run();
  ASSERT_GT(ex.rejoins().size(), 0u);

  // Every rejoin bumped the directory epoch past every prior incarnation
  // of that id, and the (id, epoch) pairs across all rejoins are unique.
  std::set<std::pair<std::uint32_t, std::uint32_t>> incarnations;
  for (const auto& rejoin : ex.rejoins()) {
    EXPECT_GE(rejoin.epoch, 2u);
    EXPECT_TRUE(incarnations
                    .insert(std::make_pair(rejoin.node.value(), rejoin.epoch))
                    .second)
        << "aliased incarnation of node " << rejoin.node;
    EXPECT_TRUE(ex.ever_rejoined(rejoin.node));
  }
  // A currently-live rejoiner's directory epoch equals its latest rejoin
  // record; a re-departed one is at least that.
  for (const auto& rejoin : ex.rejoins()) {
    EXPECT_GE(ex.directory().epoch_of(rejoin.node), rejoin.epoch);
  }
}

TEST(ChurnResilience, RejoinFreshPolicyRestartsScores) {
  // A freerider that accrued blame, departed and rejoined under kFresh must
  // read better than the same history under kCarried.
  auto cfg = ScenarioConfig::small(40);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.7);
  cfg.duration = seconds(16.0);
  cfg.stream.duration = seconds(15.0);
  // Depart one known freerider mid-run and bring it back shortly after.
  Experiment probe(cfg);
  ASSERT_FALSE(probe.freerider_ids().empty());
  const NodeId victim = probe.freerider_ids().front();
  cfg.timeline.leave_at(seconds(8.0), victim);
  cfg.timeline.rejoin_at(seconds(10.0), victim);

  // Inspect the managers' rows just after the rejoin applies, before the
  // new incarnation accrues fresh blame (it keeps freeriding, so END-of-run
  // scores would conflate the restart with the re-accrual).
  const TimePoint just_after = kSimEpoch + seconds(10.05);

  cfg.rejoin_scores = ScenarioConfig::RejoinScores::kFresh;
  Experiment fresh(cfg);
  fresh.run_until(just_after);
  ASSERT_EQ(fresh.rejoins().size(), 1u);
  const double fresh_score = fresh.true_score(victim);

  cfg.rejoin_scores = ScenarioConfig::RejoinScores::kCarried;
  Experiment carried(cfg);
  carried.run_until(just_after);
  ASSERT_EQ(carried.rejoins().size(), 1u);
  const double carried_score = carried.true_score(victim);

  // kFresh wiped the blame rows at the rejoin instant; kCarried kept the
  // previous incarnation's record, so its min-vote read stays depressed.
  EXPECT_GT(fresh_score, carried_score);
  double fresh_raw = 0.0;
  double carried_raw = 0.0;
  for (std::uint32_t m = 0; m < cfg.nodes; ++m) {
    fresh_raw += fresh.agent(NodeId{m}).manager_store()
                     .raw_blame_total(victim);
    carried_raw += carried.agent(NodeId{m}).manager_store()
                       .raw_blame_total(victim);
  }
  EXPECT_LT(fresh_raw, carried_raw);
}

TEST(ChurnResilience, FreshPolicySurvivesAPendingHandoff) {
  // Regression: a target that rejoins (kFresh) while one of its managers
  // sits in the departed-but-not-yet-handed-off window must NOT have the
  // previous incarnation's blame resurrected when the handoff later
  // migrates that manager's row — the fresh restart applies to departed
  // managers' stores too (they are live memory under in-place retirement).
  auto cfg = ScenarioConfig::small(40);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.7);
  cfg.duration = seconds(12.0);
  cfg.stream.duration = seconds(11.0);
  cfg.manager_handoff = true;
  cfg.manager_handoff_delay = milliseconds(500);

  Experiment probe(cfg);
  ASSERT_FALSE(probe.freerider_ids().empty());
  const NodeId victim = probe.freerider_ids().front();
  const auto base_managers = lifting::managers_of(
      victim, cfg.nodes, cfg.lifting.managers, cfg.seed);
  NodeId manager = base_managers.front();
  for (const auto m : base_managers) {
    if (m != NodeId{0}) {
      manager = m;
      break;
    }
  }
  ASSERT_NE(manager, NodeId{0});

  // victim gone at 7.5; manager departs 8.0 (handoff due 8.5); victim
  // rejoins 8.2 — inside the manager's handoff window.
  cfg.timeline.leave_at(seconds(7.5), victim);
  cfg.timeline.leave_at(seconds(8.0), manager);
  cfg.timeline.rejoin_at(seconds(8.2), victim);

  const auto replacement_blame = [&](ScenarioConfig run_cfg) {
    Experiment ex(std::move(run_cfg));
    // Just past the handoff, before the new incarnation can accrue blame
    // (its first verification deadlines land >= 8.2 + dv_timeout).
    ex.run_until(kSimEpoch + seconds(8.55));
    for (const auto& handoff : ex.handoffs()) {
      if (handoff.target == victim && handoff.departed == manager) {
        return ex.agent(handoff.replacement)
            .manager_store()
            .raw_blame_total(victim);
      }
    }
    ADD_FAILURE() << "expected a handoff of the victim's row";
    return 0.0;
  };

  auto fresh_cfg = cfg;
  fresh_cfg.rejoin_scores = ScenarioConfig::RejoinScores::kFresh;
  EXPECT_EQ(replacement_blame(std::move(fresh_cfg)), 0.0);

  auto carried_cfg = cfg;
  carried_cfg.rejoin_scores = ScenarioConfig::RejoinScores::kCarried;
  EXPECT_GT(replacement_blame(std::move(carried_cfg)), 0.0);
}

TEST(ChurnResilience, BouncingManagerCannotFlushItsLedgerRows) {
  // Regression: a manager that leaves and rejoins before its handoff
  // delay elapses must have its rows migrated at the rejoin instant — the
  // rejoin rebuilds its Agent (fresh, empty stores), so a cancelled
  // handoff would have silently erased all blame it held.
  auto cfg = ScenarioConfig::small(40);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.7);
  cfg.duration = seconds(12.0);
  cfg.stream.duration = seconds(11.0);
  cfg.manager_handoff = true;
  cfg.manager_handoff_delay = seconds(1.0);

  Experiment probe(cfg);
  ASSERT_FALSE(probe.freerider_ids().empty());
  const NodeId victim = probe.freerider_ids().front();
  const auto base_managers = lifting::managers_of(
      victim, cfg.nodes, cfg.lifting.managers, cfg.seed);
  NodeId manager = base_managers.front();
  for (const auto m : base_managers) {
    if (m != NodeId{0} && m != victim) {
      manager = m;
      break;
    }
  }

  // The manager bounces: gone at 8.0, back at 8.3 — well inside the 1 s
  // handoff window, so the scheduled handoff timer is epoch-cancelled.
  cfg.timeline.leave_at(seconds(8.0), manager);
  cfg.timeline.rejoin_at(seconds(8.3), manager);

  Experiment ex(cfg);
  ex.run_until(kSimEpoch + seconds(8.4));
  bool migrated = false;
  double carried_blame = 0.0;
  for (const auto& handoff : ex.handoffs()) {
    if (handoff.departed != manager || handoff.target != victim) continue;
    migrated = handoff.migrated;
    carried_blame = ex.agent(handoff.replacement)
                        .manager_store()
                        .raw_blame_total(victim);
  }
  EXPECT_TRUE(migrated)
      << "bounce cancelled the handoff and destroyed the ledger row";
  EXPECT_GT(carried_blame, 0.0);
  // The bounced manager itself restarted empty and was demoted from the
  // victim's quorum (sticky handoff).
  EXPECT_EQ(ex.agent(manager).manager_store().raw_blame_total(victim), 0.0);
}

/// A scenario that reliably commits and applies expulsions: aggressive
/// static freeriders under score policing, short propagation, no churn —
/// every quorum change comes from the expulsions themselves.
ScenarioConfig expulsion_config() {
  auto cfg = ScenarioConfig::small(40);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.7);
  cfg.duration = seconds(16.0);
  cfg.stream.duration = seconds(15.0);
  cfg.lifting.eta = -2.0;
  cfg.lifting.score_check_probability = 0.3;
  cfg.lifting.min_periods_before_detection = 8;
  cfg.expulsion_enabled = true;
  cfg.expulsion_propagation = milliseconds(500);
  cfg.manager_handoff = true;
  cfg.expulsion_handoff = true;
  cfg.manager_handoff_delay = milliseconds(300);
  return cfg;
}

TEST(ChurnResilience, ExpelledManagerHandoffPromotesAndMigratesOnce) {
  // A committed-and-applied expulsion vacates the victim's manager slots
  // exactly like a departure: replacements promoted, ledger rows migrated
  // (zeroing the source), each (target, victim incarnation) at most once.
  Experiment ex(expulsion_config());
  ex.run();
  ASSERT_FALSE(ex.expulsions().empty()) << "scenario never expelled anyone";

  std::size_t expelled_handoffs = 0;
  std::size_t migrated = 0;
  for (const auto& handoff : ex.handoffs()) {
    ASSERT_TRUE(handoff.expelled)
        << "churn-free scenario produced a departure handoff";
    ++expelled_handoffs;
    EXPECT_TRUE(ex.is_expelled_member(handoff.departed));
    EXPECT_FALSE(ex.is_departed(handoff.departed))
        << "expulsion is not churn — the victim never 'departed'";
    if (handoff.migrated) {
      ++migrated;
      EXPECT_EQ(
          ex.agent(handoff.departed).manager_store().raw_blame_total(
              handoff.target),
          0.0)
          << "expelled manager " << handoff.departed
          << " still holds the row for " << handoff.target;
    }
  }
  EXPECT_GT(expelled_handoffs, 0u)
      << "no expelled victim ever sat in a manager row";
  EXPECT_GT(migrated, 0u) << "no expelled-manager row carried ledger state";

  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (const auto& handoff : ex.handoffs()) {
    const auto key = std::make_tuple(handoff.target.value(),
                                     handoff.departed.value(),
                                     handoff.departed_epoch);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate expelled handoff of target " << handoff.target
        << " from " << handoff.departed;
  }
}

TEST(ChurnResilience, ExpulsionHandoffSharesTheDepartureMask) {
  // An expelled victim that later also appears in a churn departure must
  // not migrate twice: the expulsion handoff and the departure handoff
  // share the assignment's departed mask, so whichever lands first wins.
  auto cfg = expulsion_config();
  Experiment probe(cfg);
  probe.run();
  ASSERT_FALSE(probe.expulsions().empty());
  const NodeId victim = probe.expulsions().front().victim;
  const auto victim_handoffs = [&](const Experiment& ex) {
    std::size_t count = 0;
    for (const auto& handoff : ex.handoffs()) {
      if (handoff.departed == victim) ++count;
    }
    return count;
  };
  const std::size_t reference = victim_handoffs(probe);
  ASSERT_GT(reference, 0u) << "probe victim never sat in a manager row";

  // Same run, but the timeline also tries to remove the victim afterwards
  // (a churn generator is blind to runtime expulsions). The leave is a
  // no-op — the victim is already out of the membership — and no second
  // handoff or migration may happen.
  cfg.timeline.leave_at(seconds(15.0), victim);
  Experiment ex(cfg);
  ex.run();
  EXPECT_EQ(victim_handoffs(ex), reference);
  EXPECT_FALSE(ex.is_departed(victim));
}

TEST(ChurnResilience, QuorumStatsCountExpelledManagersAbsent) {
  // The pre-fix accounting counted an expelled manager as present forever;
  // now the hole is visible — and expulsion handoff is what closes it.
  auto cfg = expulsion_config();
  Experiment with(cfg);
  with.run();
  ASSERT_FALSE(with.expulsions().empty());
  const auto quorum_with = with.quorum_stats();

  cfg.expulsion_handoff = false;
  Experiment without(cfg);
  without.run();
  ASSERT_FALSE(without.expulsions().empty());
  EXPECT_TRUE(without.handoffs().empty())
      << "expulsion_handoff off must not promote anyone in a churn-free run";
  const auto quorum_without = without.quorum_stats();

  // Off: every expelled manager is a permanent hole, so the mean quorum
  // sits strictly below full strength. On: promotions close the holes
  // (up to expulsions younger than the handoff delay).
  EXPECT_LT(quorum_without.mean,
            static_cast<double>(cfg.lifting.managers));
  EXPECT_GT(quorum_with.mean, quorum_without.mean);
  EXPECT_GE(quorum_with.min, quorum_without.min);
}

TEST(ChurnResilience, ExpulsionHandoffDeterministicAcrossThreadsAndReset) {
  // Expulsion handoff is scheduled protocol state like everything else:
  // bit-identical at any thread count and across Experiment::reset.
  std::vector<RunSpec> specs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    auto cfg = expulsion_config();
    specs.emplace_back(std::move(cfg), derive_task_seed(0xE89A, s),
                       "expulsion");
  }
  ParallelRunner serial(1);
  ParallelRunner parallel(4);
  const auto ref = serial.run_digests(specs);
  const auto par = parallel.run_digests(specs);
  ASSERT_EQ(ref.size(), par.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "spec " << i;
  }

  const auto cfg = expulsion_config();
  Experiment ex(cfg);
  ex.run();
  const auto fresh_handoffs = ex.handoffs();
  const auto fresh_expulsions = ex.expulsions().size();
  ASSERT_GT(fresh_handoffs.size(), 0u);
  ex.reset(cfg);
  ex.run();
  ASSERT_EQ(ex.handoffs().size(), fresh_handoffs.size());
  for (std::size_t i = 0; i < fresh_handoffs.size(); ++i) {
    EXPECT_EQ(ex.handoffs()[i].target, fresh_handoffs[i].target);
    EXPECT_EQ(ex.handoffs()[i].departed, fresh_handoffs[i].departed);
    EXPECT_EQ(ex.handoffs()[i].replacement, fresh_handoffs[i].replacement);
    EXPECT_EQ(ex.handoffs()[i].expelled, fresh_handoffs[i].expelled);
  }
  EXPECT_EQ(ex.expulsions().size(), fresh_expulsions);
}

TEST(ChurnResilience, CommittedExpulsionBlocksRejoin) {
  // Regression: a node whose expulsion was committed but departed before
  // the propagation delay applied it must not rejoin (the indictment
  // stands), and the latched commit must not leave a loophole.
  auto cfg = ScenarioConfig::small(40);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.7);
  cfg.duration = seconds(16.0);
  cfg.stream.duration = seconds(15.0);
  cfg.lifting.eta = -2.0;
  cfg.lifting.score_check_probability = 0.3;
  cfg.lifting.min_periods_before_detection = 8;
  cfg.expulsion_enabled = true;
  cfg.expulsion_propagation = seconds(8.0);  // wide commit->apply window

  // Probe: find a freerider whose expulsion the managers have committed
  // by t = 10 s (the expulsion itself would only apply much later).
  Experiment probe(cfg);
  probe.run_until(kSimEpoch + seconds(10.0));
  NodeId victim = kAutoNodeId;
  for (const auto id : probe.freerider_ids()) {
    if (probe.majority_expelled(id)) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kAutoNodeId)
      << "no committed expulsion by t=10 — tune the scenario";

  // Same run, but the indicted node slips away at 10 s and tries to come
  // back: the rejoin must be refused.
  cfg.timeline.leave_at(seconds(10.0), victim);
  cfg.timeline.rejoin_at(seconds(11.0), victim);
  Experiment ex(cfg);
  ex.run();
  EXPECT_TRUE(ex.rejoins().empty()) << "indicted node rejoined";
  EXPECT_FALSE(ex.directory().is_live(victim));
  EXPECT_TRUE(ex.is_departed(victim));
}

TEST(ChurnResilience, DivergentViewsDisagreeWithinLagWindow) {
  membership::Directory directory(40);
  directory.set_view_model(seconds(1.0), /*seed=*/7);
  const NodeId leaver{5};
  const TimePoint left = kSimEpoch + seconds(10.0);
  directory.leave(leaver, left);

  // Inside the lag window at least one observer still sees the leaver and
  // at least one already does not; after the window everyone agrees.
  std::size_t still_sees = 0;
  std::size_t knows_gone = 0;
  const TimePoint mid = left + milliseconds(300);
  for (std::uint32_t o = 0; o < 40; ++o) {
    if (o == leaver.value()) continue;
    if (directory.sees(NodeId{o}, leaver, mid)) {
      ++still_sees;
    } else {
      ++knows_gone;
    }
  }
  EXPECT_GT(still_sees, 0u);
  EXPECT_GT(knows_gone, 0u);
  for (std::uint32_t o = 0; o < 40; ++o) {
    EXPECT_FALSE(directory.sees(NodeId{o}, leaver, left + seconds(1.1)));
  }
  // The leaver itself always knows it is gone.
  EXPECT_FALSE(directory.sees(leaver, leaver, mid));

  // Joins become visible late the same way.
  const NodeId joiner{40};
  const TimePoint joined = kSimEpoch + seconds(20.0);
  directory.join(joiner, joined);
  std::size_t sees_joiner = 0;
  for (std::uint32_t o = 0; o < 40; ++o) {
    if (directory.sees(NodeId{o}, joiner, joined + milliseconds(300))) {
      ++sees_joiner;
    }
  }
  EXPECT_GT(sees_joiner, 0u);
  EXPECT_LT(sees_joiner, 40u);
  for (std::uint32_t o = 0; o < 40; ++o) {
    EXPECT_TRUE(
        directory.sees(NodeId{o}, joiner, joined + seconds(1.1)));
  }
}

TEST(ChurnResilience, ViewSamplingCanReturnARecentLeaver) {
  membership::Directory directory(30);
  directory.set_view_model(seconds(2.0), /*seed=*/11);
  const NodeId leaver{7};
  const TimePoint left = kSimEpoch + seconds(5.0);
  directory.leave(leaver, left);

  // Find an observer whose view still contains the leaver just after the
  // departure, and check the view-aware sampler can select it while the
  // plain sampler never does.
  auto rng = derive_rng(3, 3);
  bool sampled_leaver = false;
  for (std::uint32_t o = 1; o < 30 && !sampled_leaver; ++o) {
    const NodeId observer{o};
    if (!directory.sees(observer, leaver, left + milliseconds(100))) continue;
    for (int trial = 0; trial < 64 && !sampled_leaver; ++trial) {
      const auto picks = membership::sample_view(
          rng, directory, observer, 5, left + milliseconds(100));
      sampled_leaver = std::find(picks.begin(), picks.end(), leaver) !=
                       picks.end();
    }
  }
  EXPECT_TRUE(sampled_leaver);

  const auto uniform = membership::sample_uniform(rng, directory, NodeId{1},
                                                  29);
  EXPECT_EQ(std::find(uniform.begin(), uniform.end(), leaver),
            uniform.end());

  // With the model off, sample_view degrades to sample_uniform with the
  // identical draw sequence.
  membership::Directory plain(30);
  auto rng_a = derive_rng(5, 9);
  auto rng_b = derive_rng(5, 9);
  const auto via_view =
      membership::sample_view(rng_a, plain, NodeId{2}, 6, kSimEpoch);
  const auto via_uniform =
      membership::sample_uniform(rng_b, plain, NodeId{2}, 6);
  EXPECT_EQ(via_view, via_uniform);
}

TEST(ChurnResilience, RpsDisseminationJustifiesTheLagModel) {
  // The Directory's per-observer lag stands in for RPS dissemination; the
  // shuffling service itself must show the shape the model assumes: join
  // coverage climbing over rounds, leave references decaying over rounds.
  membership::RpsNetwork rps(200, /*view_size=*/12, /*shuffle_length=*/6,
                             /*seed=*/42);
  rps.run_rounds(30);  // mix the bootstrap topology

  const NodeId joiner{200};
  rps.join(joiner);
  const double at_join = rps.coverage_of(joiner);
  rps.run_rounds(3);
  const double after_3 = rps.coverage_of(joiner);
  rps.run_rounds(12);
  const double after_15 = rps.coverage_of(joiner);
  EXPECT_LT(at_join, 0.05);
  EXPECT_GT(after_3, at_join);
  EXPECT_GT(after_15, 0.04);  // in-degree plateau ≈ view_size / n = 6%

  const NodeId leaver{17};
  const double before_leave = rps.coverage_of(leaver);
  EXPECT_GT(before_leave, 0.0);
  rps.leave(leaver);
  rps.run_rounds(1);
  const double just_after = rps.coverage_of(leaver);
  rps.run_rounds(20);
  const double later = rps.coverage_of(leaver);
  EXPECT_LE(later, just_after);
  EXPECT_LT(later, before_leave * 0.5)
      << "stale leave references failed to decay";
}

}  // namespace
}  // namespace lifting::runtime

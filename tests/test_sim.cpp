#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace lifting::sim {
namespace {

// ------------------------------------------------------------ event queue

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(kSimEpoch + milliseconds(20), [&] { order.push_back(2); });
  q.push(kSimEpoch + milliseconds(10), [&] { order.push_back(1); });
  q.push(kSimEpoch + milliseconds(30), [&] { order.push_back(3); });
  while (!q.empty()) {
    auto [at, action] = q.pop();
    action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto t = kSimEpoch + milliseconds(5);
  for (int i = 0; i < 10; ++i) {
    q.push(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SameTimestampFifoAcrossMixedPushes) {
  // Regression for the timing-wheel rewrite: interleaving pushes at
  // different instants within one wheel slot must still pop same-timestamp
  // events in push order.
  EventQueue q;
  std::vector<int> order;
  const auto t1 = kSimEpoch + microseconds(100);
  const auto t2 = kSimEpoch + microseconds(200);
  q.push(t2, [&] { order.push_back(20); });
  q.push(t1, [&] { order.push_back(10); });
  q.push(t2, [&] { order.push_back(21); });
  q.push(t1, [&] { order.push_back(11); });
  q.push(t2, [&] { order.push_back(22); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 22}));
}

TEST(EventQueue, FarFutureEventsOverflowAndReturnInOrder) {
  // Events beyond the wheel horizon park in the overflow heap and must
  // merge back in exact (time, seq) order.
  EventQueue q;
  std::vector<int> order;
  q.push(kSimEpoch + seconds(100.0), [&] { order.push_back(3); });
  q.push(kSimEpoch + microseconds(50), [&] { order.push_back(1); });
  q.push(kSimEpoch + seconds(50.0), [&] { order.push_back(2); });
  q.push(kSimEpoch + seconds(100.0), [&] { order.push_back(4); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, PushBehindPeekedCursorRewinds) {
  // next_time() may advance the cursor far ahead (run_until peeking);
  // a later push at an earlier time must still pop first, including when
  // it lands in a slot already holding a later wheel-revolution event.
  EventQueue q;
  std::vector<int> order;
  q.push(kSimEpoch + seconds(100.0), [&] { order.push_back(9); });
  EXPECT_EQ(q.next_time(), kSimEpoch + seconds(100.0));  // cursor jumped
  q.push(kSimEpoch + milliseconds(1), [&] { order.push_back(1); });
  q.push(kSimEpoch + seconds(60.0), [&] { order.push_back(5); });
  EXPECT_EQ(q.next_time(), kSimEpoch + milliseconds(1));
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 5, 9}));
}

TEST(EventQueue, EventsScheduledWhileDrainingKeepOrder) {
  // Pushes into the instant currently being drained (the dirty-tail path).
  Simulator sim;
  std::vector<int> order;
  const auto t = kSimEpoch + milliseconds(3);
  sim.schedule_at(t, [&] {
    order.push_back(0);
    sim.schedule_at(t, [&] { order.push_back(2); });
    sim.schedule_at(t + microseconds(1), [&] { order.push_back(3); });
  });
  sim.schedule_at(t, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SingleOutstandingEventChainStaysOrdered) {
  // The min-event stash fast path: a chain that always holds exactly one
  // event (push into empty queue, then pop) must behave identically to the
  // general path — including across the wheel horizon and time ties.
  EventQueue q;
  std::vector<int> popped;
  auto t = kSimEpoch;
  for (int i = 0; i < 1000; ++i) {
    t += microseconds(10);
    q.push(t, [&popped, i] { popped.push_back(i); });
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.next_time(), t);
    q.pop().second();
  }
  // Far-future single event (would overflow the wheel) is stashed too.
  q.push(kSimEpoch + seconds(1000.0), [&] { popped.push_back(1000); });
  EXPECT_EQ(q.next_time(), kSimEpoch + seconds(1000.0));
  q.pop().second();
  ASSERT_EQ(popped.size(), 1001u);
  for (int i = 0; i <= 1000; ++i) EXPECT_EQ(popped[i], i);
}

TEST(EventQueue, StashDemotionPreservesTotalOrder) {
  // A stashed front must yield to a strictly earlier newcomer (and keep
  // priority over an equal-time one — its sequence number is lower).
  EventQueue q;
  std::vector<int> order;
  const auto t = kSimEpoch + milliseconds(10);
  q.push(t, [&] { order.push_back(1); });                       // stashed
  q.push(t, [&] { order.push_back(2); });                       // tie: stash wins
  q.push(t - milliseconds(5), [&] { order.push_back(0); });     // demotes stash
  q.push(t + milliseconds(5), [&] { order.push_back(3); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, StashDemotionIntoHarvestedTailKeepsTieOrder) {
  // Regression: a demoted stash entry appended to the cursor's harvested
  // order_ carries an OLDER seq than a later push at the same instant —
  // the tail must be flagged for a re-sort or same-instant events run out
  // of scheduling order.
  EventQueue q;
  std::vector<int> order;
  const auto t = kSimEpoch + microseconds(100);
  q.push(t, [&] { order.push_back(0); });  // stashed
  q.push(t, [&] { order.push_back(1); });  // into the wheel
  q.pop().second();                        // pops 0 (stash)
  q.pop().second();  // pops 1; the quantum stays harvested (drained tail)
  const auto t2 = t + microseconds(10);  // same quantum as the cursor
  q.push(t2, [&] { order.push_back(2); });  // stashed (queue empty again)
  q.push(t2, [&] { order.push_back(3); });  // appended to the harvested tail
  // Earlier newcomer: demotes 2 into the tail behind 3 — equal time,
  // older seq, so 2 must still pop before 3.
  q.push(t2 - microseconds(1), [&] { order.push_back(4); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3}));
}

TEST(EventQueue, ClearKeepsArenaAndRewindsSequence) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    q.push(kSimEpoch + milliseconds(i), [&] { ++fired; });
  }
  q.push(kSimEpoch + seconds(100.0), [&] { ++fired; });  // overflow too
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(fired, 0);  // pending closures destroyed, never invoked
  // The cleared queue orders a fresh schedule exactly like a new one.
  std::vector<int> order;
  q.push(kSimEpoch + milliseconds(2), [&] { order.push_back(1); });
  q.push(kSimEpoch + milliseconds(1), [&] { order.push_back(0); });
  q.push(kSimEpoch + milliseconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// -------------------------------------------------------------- simulator

TEST(Simulator, AdvancesClockThroughEvents) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule_after(milliseconds(100), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, kSimEpoch + milliseconds(100));
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(milliseconds(10), [&] { ++fired; });
  sim.schedule_after(milliseconds(50), [&] { ++fired; });
  sim.run_until(kSimEpoch + milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), kSimEpoch + milliseconds(20));
  sim.run_until(kSimEpoch + milliseconds(100));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  UniqueFunction<void()> recurse;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(milliseconds(1), [&] { chain(); });
  };
  sim.schedule_after(milliseconds(1), [&] { chain(); });
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), kSimEpoch + milliseconds(5));
}

// ---------------------------------------------------------------- network

struct Probe {
  int received = 0;
  TimePoint last_at{};
  std::string last_payload;
};

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  Network<std::string> net(sim, Pcg32{1});
  Probe probe;
  LinkProfile p;
  p.loss = 0.0;
  p.latency_base = milliseconds(10);
  p.latency_jitter = Duration::zero();
  p.upload_capacity_bps = 1e9;
  net.add_node(NodeId{0}, p, [](Delivery<std::string>) {});
  net.add_node(NodeId{1}, p, [&](Delivery<std::string> d) {
    ++probe.received;
    probe.last_at = sim.now();
    probe.last_payload = d.payload;
  });
  net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 100, "hello");
  sim.run();
  EXPECT_EQ(probe.received, 1);
  EXPECT_EQ(probe.last_payload, "hello");
  // 20 ms propagation (both endpoints) + ~1 us transmission.
  EXPECT_GE(probe.last_at, kSimEpoch + milliseconds(20));
  EXPECT_LE(probe.last_at, kSimEpoch + milliseconds(21));
}

TEST(Network, LossRateMatchesProfile) {
  Simulator sim;
  Network<int> net(sim, Pcg32{2});
  int received = 0;
  LinkProfile lossy;
  lossy.loss = 0.05;  // both endpoints: 1-(0.95)^2 = 9.75% per message
  lossy.upload_capacity_bps = 1e12;
  net.add_node(NodeId{0}, lossy, [](Delivery<int>) {});
  net.add_node(NodeId{1}, lossy, [&](Delivery<int>) { ++received; });
  const int sent = 20000;
  for (int i = 0; i < sent; ++i) {
    net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 10, i);
  }
  sim.run();
  const double delivered = static_cast<double>(received) / sent;
  EXPECT_NEAR(delivered, 0.95 * 0.95, 0.01);
  EXPECT_EQ(net.stats().datagrams_sent, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(net.stats().datagrams_delivered + net.stats().datagrams_lost,
            static_cast<std::uint64_t>(sent));
}

TEST(Network, ReliableChannelNeverLoses) {
  Simulator sim;
  Network<int> net(sim, Pcg32{3});
  int received = 0;
  LinkProfile lossy;
  lossy.loss = 0.3;
  net.add_node(NodeId{0}, lossy, [](Delivery<int>) {});
  net.add_node(NodeId{1}, lossy, [&](Delivery<int>) { ++received; });
  for (int i = 0; i < 500; ++i) {
    net.send(NodeId{0}, NodeId{1}, Channel::kReliable, 100, i);
  }
  sim.run();
  EXPECT_EQ(received, 500);
}

TEST(Network, UplinkCapacitySerializesTraffic) {
  Simulator sim;
  Network<int> net(sim, Pcg32{4});
  TimePoint last{};
  int received = 0;
  LinkProfile slow;
  slow.loss = 0.0;
  slow.latency_base = Duration::zero();
  slow.latency_jitter = Duration::zero();
  slow.upload_capacity_bps = 8000.0;  // 1000 bytes/s
  slow.max_queue_delay = seconds(100.0);
  net.add_node(NodeId{0}, slow, [](Delivery<int>) {});
  net.add_node(NodeId{1}, slow, [&](Delivery<int>) {
    ++received;
    last = sim.now();
  });
  // Ten 1000-byte messages at 1000 B/s: the last arrives at ~10 s.
  for (int i = 0; i < 10; ++i) {
    net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 1000, i);
  }
  sim.run();
  EXPECT_EQ(received, 10);
  EXPECT_NEAR(to_seconds(last), 10.0, 0.1);
}

TEST(Network, DatagramsDropWhenQueueExceedsBound) {
  Simulator sim;
  Network<int> net(sim, Pcg32{5});
  int received = 0;
  LinkProfile slow;
  slow.loss = 0.0;
  slow.upload_capacity_bps = 8000.0;  // 1000 B/s
  slow.max_queue_delay = seconds(2.0);
  net.add_node(NodeId{0}, slow, [](Delivery<int>) {});
  net.add_node(NodeId{1}, slow, [&](Delivery<int>) { ++received; });
  // 1 s of backlog per message: messages 4+ exceed the 2 s bound.
  for (int i = 0; i < 10; ++i) {
    net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 1000, i);
  }
  sim.run();
  EXPECT_LT(received, 10);
  EXPECT_GT(net.stats().datagrams_dropped, 0u);
  EXPECT_EQ(net.stats().datagrams_delivered + net.stats().datagrams_dropped,
            10u);
}

TEST(Network, SmallMessagesBypassTheBulkQueue) {
  Simulator sim;
  Network<int> net(sim, Pcg32{7});
  LinkProfile slow;
  slow.loss = 0.0;
  slow.latency_base = Duration::zero();
  slow.latency_jitter = Duration::zero();
  slow.upload_capacity_bps = 8000.0;  // 1000 B/s
  slow.max_queue_delay = seconds(100.0);
  slow.priority_bytes = 512;
  TimePoint small_arrived{};
  TimePoint big_arrived{};
  net.add_node(NodeId{0}, slow, [](Delivery<int>) {});
  net.add_node(NodeId{1}, slow, [&](Delivery<int> d) {
    if (d.payload == 1) big_arrived = sim.now();
    if (d.payload == 2) small_arrived = sim.now();
  });
  net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 5000, 1);  // 5 s of wire
  net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 100, 2);   // control
  sim.run();
  // The control message interleaves instead of waiting for the bulk one.
  EXPECT_LT(to_seconds(small_arrived), 0.5);
  EXPECT_NEAR(to_seconds(big_arrived), 5.0, 0.1);
}

TEST(Network, DetachedNodeIsSilent) {
  Simulator sim;
  Network<int> net(sim, Pcg32{6});
  int received = 0;
  LinkProfile p;
  net.add_node(NodeId{0}, p, [](Delivery<int>) {});
  net.add_node(NodeId{1}, p, [&](Delivery<int>) { ++received; });
  net.detach(NodeId{1});
  net.send(NodeId{0}, NodeId{1}, Channel::kDatagram, 10, 1);
  sim.run();
  EXPECT_EQ(received, 0);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CountersAccumulateAndSnapshot) {
  MetricsRegistry registry;
  auto& c = registry.counter("sent.propose.count");
  c.add();
  c.add(4);
  EXPECT_EQ(registry.value("sent.propose.count"), 5u);
  EXPECT_EQ(registry.value("missing"), 0u);
  auto& same = registry.counter("sent.propose.count");
  same.add();
  EXPECT_EQ(registry.value("sent.propose.count"), 6u);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "sent.propose.count");
  registry.reset_all();
  EXPECT_EQ(registry.value("sent.propose.count"), 0u);
}

}  // namespace
}  // namespace lifting::sim

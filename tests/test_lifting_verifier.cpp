#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "lifting/verifier.hpp"
#include "sim/simulator.hpp"

namespace lifting {
namespace {

struct BlameRecord {
  NodeId target;
  double value;
  gossip::BlameReason reason;
};

struct VerifierFixture {
  VerifierFixture() {
    params.fanout = 7;
    params.period = milliseconds(500);
    params.dv_timeout = milliseconds(500);
    params.ack_timeout = milliseconds(900);
    params.confirm_timeout = milliseconds(300);
    params.p_dcc = 1.0;
  }

  BlameFn blame_fn() {
    return [this](NodeId t, double v, gossip::BlameReason r) {
      blames.push_back({t, v, r});
    };
  }
  SendFn send_fn() {
    return [this](NodeId to, gossip::Message m) {
      sent.emplace_back(to, std::move(m));
    };
  }

  [[nodiscard]] double total_blame(NodeId target) const {
    double sum = 0.0;
    for (const auto& b : blames) {
      if (b.target == target) sum += b.value;
    }
    return sum;
  }

  sim::Simulator sim;
  LiftingParams params;
  std::vector<BlameRecord> blames;
  std::vector<std::pair<NodeId, gossip::Message>> sent;
  Pcg32 rng{404};
};

// -------------------------------------------------------- DirectVerifier

TEST(DirectVerifier, NoBlameWhenAllChunksServed) {
  VerifierFixture fx;
  DirectVerifier dv(fx.sim, fx.params, fx.blame_fn());
  const gossip::ChunkIdList r{ChunkId{1}, ChunkId{2}, ChunkId{3}};
  dv.on_request_sent(NodeId{9}, 1, r);
  for (const auto c : r) dv.on_serve_received(NodeId{9}, 1, c);
  fx.sim.run();
  EXPECT_TRUE(fx.blames.empty());
  EXPECT_EQ(dv.verifications_completed(), 1u);
}

TEST(DirectVerifier, BlamesFWhenNothingServed) {
  VerifierFixture fx;
  DirectVerifier dv(fx.sim, fx.params, fx.blame_fn());
  dv.on_request_sent(NodeId{9}, 1, {ChunkId{1}, ChunkId{2}});
  fx.sim.run();
  ASSERT_EQ(fx.blames.size(), 1u);
  EXPECT_EQ(fx.blames[0].target, NodeId{9});
  EXPECT_DOUBLE_EQ(fx.blames[0].value, 7.0);  // f
  EXPECT_EQ(fx.blames[0].reason, gossip::BlameReason::kDirectVerification);
}

TEST(DirectVerifier, BlamesProportionallyForPartialServe) {
  VerifierFixture fx;
  DirectVerifier dv(fx.sim, fx.params, fx.blame_fn());
  const gossip::ChunkIdList r{ChunkId{1}, ChunkId{2}, ChunkId{3}, ChunkId{4}};
  dv.on_request_sent(NodeId{9}, 1, r);
  dv.on_serve_received(NodeId{9}, 1, ChunkId{1});
  fx.sim.run();
  // Table 1: f·(|R|-|S|)/|R| = 7·3/4.
  ASSERT_EQ(fx.blames.size(), 1u);
  EXPECT_DOUBLE_EQ(fx.blames[0].value, 7.0 * 3.0 / 4.0);
}

TEST(DirectVerifier, LateServeStillBlamed) {
  VerifierFixture fx;
  DirectVerifier dv(fx.sim, fx.params, fx.blame_fn());
  dv.on_request_sent(NodeId{9}, 1, {ChunkId{1}});
  fx.sim.schedule_after(milliseconds(600), [&] {
    dv.on_serve_received(NodeId{9}, 1, ChunkId{1});  // after the deadline
  });
  fx.sim.run();
  ASSERT_EQ(fx.blames.size(), 1u);
  EXPECT_DOUBLE_EQ(fx.blames[0].value, 7.0);
}

TEST(DirectVerifier, SeparateRequestsTrackedIndependently) {
  VerifierFixture fx;
  DirectVerifier dv(fx.sim, fx.params, fx.blame_fn());
  dv.on_request_sent(NodeId{9}, 1, {ChunkId{1}});
  dv.on_request_sent(NodeId{8}, 1, {ChunkId{2}});
  dv.on_serve_received(NodeId{9}, 1, ChunkId{1});
  fx.sim.run();
  ASSERT_EQ(fx.blames.size(), 1u);
  EXPECT_EQ(fx.blames[0].target, NodeId{8});
}

TEST(DirectVerifier, EmptyRequestIsIgnored) {
  VerifierFixture fx;
  DirectVerifier dv(fx.sim, fx.params, fx.blame_fn());
  dv.on_request_sent(NodeId{9}, 1, {});
  fx.sim.run();
  EXPECT_TRUE(fx.blames.empty());
  EXPECT_EQ(dv.verifications_completed(), 0u);
}

// ---------------------------------------------------------- CrossChecker

gossip::AckMsg make_ack(PeriodIndex period, gossip::ChunkIdList chunks,
                        std::size_t partners, std::uint32_t first = 20) {
  gossip::AckMsg ack;
  ack.period = period;
  ack.chunks = std::move(chunks);
  for (std::size_t i = 0; i < partners; ++i) {
    ack.partners.push_back(NodeId{first + static_cast<std::uint32_t>(i)});
  }
  return ack;
}

TEST(CrossChecker, BlamesFWhenNoAckArrives) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}, ChunkId{2}});
  fx.sim.run();
  ASSERT_EQ(fx.blames.size(), 1u);
  EXPECT_EQ(fx.blames[0].target, NodeId{5});
  EXPECT_DOUBLE_EQ(fx.blames[0].value, 7.0);
  EXPECT_EQ(fx.blames[0].reason, gossip::BlameReason::kInvalidAck);
}

TEST(CrossChecker, BlamesFWhenAckMissesChunks) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}, ChunkId{2}});
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 7));
  fx.sim.run();
  double invalid = 0.0;
  for (const auto& b : fx.blames) {
    if (b.reason == gossip::BlameReason::kInvalidAck) invalid += b.value;
  }
  EXPECT_DOUBLE_EQ(invalid, 7.0);
}

TEST(CrossChecker, ValidAckTriggersConfirmRound) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}});
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 7));
  EXPECT_EQ(cc.confirm_rounds_started(), 1u);
  EXPECT_EQ(fx.sent.size(), 7u);  // one confirm per witness
  for (const auto& [to, msg] : fx.sent) {
    const auto* req = std::get_if<gossip::ConfirmReqMsg>(&msg);
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->subject, NodeId{5});
    EXPECT_EQ(req->subject_period, 3u);
  }
}

TEST(CrossChecker, AllYesTestimoniesMeanNoBlame) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}});
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 7));
  for (std::uint32_t w = 20; w < 27; ++w) {
    cc.on_confirm_response(NodeId{w},
                           gossip::ConfirmRespMsg{NodeId{5}, 3, true});
  }
  fx.sim.run();
  EXPECT_DOUBLE_EQ(fx.total_blame(NodeId{5}), 0.0);
}

TEST(CrossChecker, BlamesOnePerContradictionOrSilence) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}});
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 7));
  // 3 yes, 2 no, 2 silent => 4 failures.
  for (std::uint32_t w = 20; w < 23; ++w) {
    cc.on_confirm_response(NodeId{w},
                           gossip::ConfirmRespMsg{NodeId{5}, 3, true});
  }
  for (std::uint32_t w = 23; w < 25; ++w) {
    cc.on_confirm_response(NodeId{w},
                           gossip::ConfirmRespMsg{NodeId{5}, 3, false});
  }
  fx.sim.run();
  double testimony = 0.0;
  for (const auto& b : fx.blames) {
    if (b.reason == gossip::BlameReason::kTestimony) testimony += b.value;
  }
  EXPECT_DOUBLE_EQ(testimony, 4.0);
}

TEST(CrossChecker, FanoutShortfallBlamedFromAck) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}});
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 4));  // f̂=4 < f=7
  fx.sim.run();
  double fanout = 0.0;
  for (const auto& b : fx.blames) {
    if (b.reason == gossip::BlameReason::kFanoutDecrease) fanout += b.value;
  }
  EXPECT_DOUBLE_EQ(fanout, 3.0);  // f - f̂
}

TEST(CrossChecker, PdccZeroNeverSendsConfirms) {
  VerifierFixture fx;
  fx.params.p_dcc = 0.0;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}});
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 7));
  fx.sim.run();
  EXPECT_EQ(cc.confirm_rounds_started(), 0u);
  EXPECT_TRUE(fx.sent.empty());
  EXPECT_TRUE(fx.blames.empty());  // valid ack, no confirm round, no blame
}

TEST(CrossChecker, UnsolicitedAckIgnored) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_ack_received(NodeId{5}, make_ack(3, {ChunkId{1}}, 2));
  fx.sim.run();
  EXPECT_TRUE(fx.blames.empty());
  EXPECT_TRUE(fx.sent.empty());
}

TEST(CrossChecker, OneRoundPerReceiverPhaseEvenWithTwoBatches) {
  VerifierFixture fx;
  CrossChecker cc(fx.sim, fx.params, NodeId{0}, fx.rng, fx.blame_fn(),
                  fx.send_fn());
  cc.on_chunks_served(NodeId{5}, 2, {ChunkId{1}});
  cc.on_chunks_served(NodeId{5}, 3, {ChunkId{2}});
  const auto ack = make_ack(4, {ChunkId{1}, ChunkId{2}}, 7);
  cc.on_ack_received(NodeId{5}, ack);
  cc.on_ack_received(NodeId{5}, ack);  // duplicate delivery
  EXPECT_EQ(cc.confirm_rounds_started(), 1u);
  for (std::uint32_t w = 20; w < 27; ++w) {
    cc.on_confirm_response(NodeId{w},
                           gossip::ConfirmRespMsg{NodeId{5}, 4, true});
  }
  fx.sim.run();
  EXPECT_DOUBLE_EQ(fx.total_blame(NodeId{5}), 0.0);
}

}  // namespace
}  // namespace lifting

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/metrics.hpp"

/// Direct coverage of sim::MetricsRegistry — the counter store the Mailer
/// prices every sent message into and the streamed-health reporter reads
/// windows from. The windowed mark/since_mark semantics were only ever
/// exercised indirectly (through streamed health); this suite pins them
/// on their own: marks fold the accumulated window away without touching
/// the total, reset clears both, and handle/ordering guarantees hold.

namespace lifting::sim {
namespace {

TEST(Counter, AccumulatesAndReportsWindows) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.since_mark(), 0u);

  c.add();       // default increment is 1
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.since_mark(), 42u);  // no mark yet: the window is everything

  c.mark();  // close the window; the total is untouched
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.since_mark(), 0u);

  c.add(8);
  EXPECT_EQ(c.value(), 50u);
  EXPECT_EQ(c.since_mark(), 8u);  // only post-mark accumulation

  c.mark();
  c.mark();  // marking an empty window is a no-op, not an underflow
  EXPECT_EQ(c.since_mark(), 0u);
  EXPECT_EQ(c.value(), 50u);
}

TEST(Counter, ResetClearsValueAndMark) {
  Counter c;
  c.add(10);
  c.mark();
  c.add(5);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.since_mark(), 0u);
  c.add(3);  // usable immediately after reset, window restarts from zero
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(c.since_mark(), 3u);
}

TEST(MetricsRegistry, HandlesAreStableAcrossRegistrations) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  a.add(1);
  // Registering many more counters must not invalidate the first handle
  // (deque storage): the Mailer caches references for the hot path.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i)).add(1);
  }
  a.add(1);
  EXPECT_EQ(reg.value("a"), 2u);
  EXPECT_EQ(&reg.counter("a"), &a);  // same slot on re-lookup
}

TEST(MetricsRegistry, ValueOfUnregisteredNameIsZeroAndDoesNotRegister) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.value("never"), 0u);
  EXPECT_TRUE(reg.snapshot().empty());  // value() is a pure read
}

TEST(MetricsRegistry, SnapshotIsRegistrationOrdered) {
  MetricsRegistry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.counter("m").add(3);
  reg.counter("z").add(10);  // re-use keeps the original slot
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], (std::pair<std::string, std::uint64_t>{"z", 11u}));
  EXPECT_EQ(snap[1], (std::pair<std::string, std::uint64_t>{"a", 2u}));
  EXPECT_EQ(snap[2], (std::pair<std::string, std::uint64_t>{"m", 3u}));
}

TEST(MetricsRegistry, MarkAllFoldsEveryWindow) {
  MetricsRegistry reg;
  reg.counter("x").add(7);
  reg.counter("y").add(9);
  reg.mark_all();
  reg.counter("x").add(1);
  EXPECT_EQ(reg.counter("x").since_mark(), 1u);
  EXPECT_EQ(reg.counter("y").since_mark(), 0u);
  EXPECT_EQ(reg.value("x"), 8u);  // totals unaffected by the fold
  EXPECT_EQ(reg.value("y"), 9u);
}

TEST(MetricsRegistry, ResetAllKeepsSlotsAndOrder) {
  MetricsRegistry reg;
  Counter& x = reg.counter("x");
  x.add(5);
  reg.counter("y").add(6);
  reg.reset_all();
  EXPECT_EQ(reg.value("x"), 0u);
  EXPECT_EQ(reg.value("y"), 0u);
  // The Experiment reset contract: cached Mailer handles survive and the
  // snapshot's name set/order is unchanged (values zeroed, slots kept).
  x.add(2);
  EXPECT_EQ(reg.value("x"), 2u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "x");
  EXPECT_EQ(snap[1].first, "y");
}

}  // namespace
}  // namespace lifting::sim

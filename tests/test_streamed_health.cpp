// Streaming health measurement (Experiment::enable_streamed_health): the
// folded integer counters must reproduce health_curve() over fully
// retained delivery logs bit-for-bit, fold events must not perturb
// fixed-seed outcomes, and folding must actually compact the per-node
// delivery windows.

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/experiment.hpp"
#include "runtime/scenario.hpp"

namespace lifting::runtime {
namespace {

ScenarioConfig streamed_config() {
  auto cfg = ScenarioConfig::small(80);
  cfg.duration = seconds(20.0);
  cfg.stream.duration = seconds(18.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.4);
  cfg.link.loss = 0.02;
  return cfg;
}

void expect_curves_identical(const std::vector<gossip::HealthPoint>& a,
                             const std::vector<gossip::HealthPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].lag_seconds, b[i].lag_seconds);
    // Exact: both sides divide the same on-time and eligible integers.
    EXPECT_DOUBLE_EQ(a[i].fraction_clear, b[i].fraction_clear);
  }
}

TEST(StreamedHealth, MatchesRetainedCurveExactly) {
  const auto cfg = streamed_config();
  const std::vector<double> lags{2.0, 5.0, 10.0};
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.9;
  playback.warmup = seconds(4.0);

  Experiment retained(cfg);
  retained.run();
  const auto want = retained.health_curve(lags, /*honest_only=*/true,
                                          playback);

  Experiment streamed(cfg);
  streamed.enable_streamed_health(lags, /*honest_only=*/true, playback,
                                  /*fold_interval=*/seconds(1.5));
  streamed.run();
  const auto got = streamed.streamed_health_curve();

  expect_curves_identical(want, got);
  // The fold ran and actually discarded delivery stamps: the retained
  // window no longer starts at the first chunk.
  EXPECT_GT(streamed.engine(NodeId{1}).delivery_times().window_base().value(),
            0u);
  // Fold events read logs and draw nothing: protocol outcomes identical.
  EXPECT_EQ(retained.network_stats().datagrams_sent,
            streamed.network_stats().datagrams_sent);
  EXPECT_EQ(retained.network_stats().bytes_delivered,
            streamed.network_stats().bytes_delivered);
}

TEST(StreamedHealth, MatchesUnderCommonWindowAndChurn) {
  auto cfg = streamed_config();
  cfg.failure_detection = seconds(2.0);
  cfg.timeline.join_at(seconds(6.0))
      .join_at(seconds(9.0))
      .leave_at(seconds(11.0), NodeId{23})
      .crash_at(seconds(13.0), NodeId{41});
  const std::vector<double> lags{1.0, 2.0, 4.0};
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  playback.warmup = seconds(4.0);
  playback.common_window_lag = 4.0;  // one shared eligible set per lag

  Experiment retained(cfg);
  retained.run();
  const auto want = retained.health_curve(lags, /*honest_only=*/true,
                                          playback);

  Experiment streamed(cfg);
  streamed.enable_streamed_health(lags, /*honest_only=*/true, playback,
                                  /*fold_interval=*/seconds(2.0));
  streamed.run();
  const auto got = streamed.streamed_health_curve();

  expect_curves_identical(want, got);
}

TEST(StreamedHealth, TailOnlyRunNeedsNoFold) {
  // A run shorter than the first fold interval: everything is judged from
  // the retained tail, so the curve still matches.
  auto cfg = streamed_config();
  cfg.duration = seconds(8.0);
  cfg.stream.duration = seconds(7.0);
  const std::vector<double> lags{2.0};
  gossip::PlaybackConfig playback;
  playback.warmup = seconds(3.0);

  Experiment retained(cfg);
  retained.run();
  Experiment streamed(cfg);
  streamed.enable_streamed_health(lags, /*honest_only=*/true, playback,
                                  /*fold_interval=*/seconds(30.0));
  streamed.run();
  expect_curves_identical(
      retained.health_curve(lags, /*honest_only=*/true, playback),
      streamed.streamed_health_curve());
}

TEST(StreamedScores, SummariesMatchRetainedTimeline) {
  const auto cfg = streamed_config();
  Experiment ex(cfg);
  ex.sample_scores_every(seconds(5.0), Experiment::ScoreSampleMode::kRetained);
  ex.run();

  const auto& timeline = ex.score_timeline();
  const auto& summaries = ex.score_summaries();
  ASSERT_GT(summaries.size(), 1u);
  ASSERT_EQ(timeline.size(), summaries.size());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& snap = timeline[i].scores;
    const auto& sum = summaries[i];
    EXPECT_DOUBLE_EQ(timeline[i].at_seconds, sum.at_seconds);
    ASSERT_EQ(snap.honest.size(), sum.honest);
    ASSERT_EQ(snap.freeriders.size(), sum.freeriders);
    double honest_mean = 0.0;
    double honest_min = snap.honest.empty() ? 0.0 : snap.honest.front();
    for (const double s : snap.honest) {
      honest_mean += s;
      honest_min = std::min(honest_min, s);
    }
    honest_mean /= static_cast<double>(snap.honest.size());
    EXPECT_DOUBLE_EQ(sum.honest_mean, honest_mean);
    EXPECT_DOUBLE_EQ(sum.honest_min, honest_min);
    double freerider_max =
        snap.freeriders.empty() ? 0.0 : snap.freeriders.front();
    for (const double s : snap.freeriders) {
      freerider_max = std::max(freerider_max, s);
    }
    EXPECT_DOUBLE_EQ(sum.freerider_max, freerider_max);
  }
}

TEST(StreamedScores, StreamModeRetainsNoVectors) {
  const auto cfg = streamed_config();
  Experiment ex(cfg);
  ex.sample_scores_every(seconds(5.0));  // kStream is the default
  ex.run();
  EXPECT_TRUE(ex.score_timeline().empty());
  EXPECT_GT(ex.score_summaries().size(), 1u);
}

}  // namespace
}  // namespace lifting::runtime

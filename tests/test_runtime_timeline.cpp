#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "runtime/experiment.hpp"
#include "runtime/timeline.hpp"

/// Property tests for the scenario timeline: ordering semantics (equal
/// timestamps apply in insertion order), run_until transparency (an event
/// boundary is not observable through checkpointing), and id hygiene (a
/// leave followed by a join can never alias blame totals, because joiner
/// ids are fresh and directory epochs disambiguate reuse).

namespace lifting::runtime {
namespace {

ScenarioConfig churn_config() {
  auto cfg = ScenarioConfig::small(40);
  cfg.duration = seconds(16.0);
  cfg.stream.duration = seconds(14.0);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.02;
  return cfg;
}

TEST(ScenarioTimeline, OrderedIsStableForEqualTimestamps) {
  ScenarioTimeline timeline;
  timeline.leave_at(seconds(2.0), NodeId{3});
  timeline.crash_at(seconds(1.0), NodeId{4});
  timeline.leave_at(seconds(2.0), NodeId{5});
  timeline.leave_at(seconds(2.0), NodeId{6});
  const auto ordered = timeline.ordered();
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0].node, NodeId{4});  // earliest time first
  // Equal timestamps keep insertion order.
  EXPECT_EQ(ordered[1].node, NodeId{3});
  EXPECT_EQ(ordered[2].node, NodeId{5});
  EXPECT_EQ(ordered[3].node, NodeId{6});
}

TEST(ScenarioTimeline, EqualTimestampEventsApplyInInsertionOrder) {
  // Two set_link events on the same node at the same instant: the one
  // added last must win.
  auto cfg = churn_config();
  sim::LinkProfile first = cfg.link;
  first.loss = 0.11;
  sim::LinkProfile second = cfg.link;
  second.loss = 0.23;
  cfg.timeline.set_link_at(seconds(4.0), NodeId{7}, first);
  cfg.timeline.set_link_at(seconds(4.0), NodeId{7}, second);
  Experiment ex(cfg);
  ex.run_until(kSimEpoch + seconds(5.0));
  EXPECT_DOUBLE_EQ(ex.network().profile(NodeId{7}).loss, 0.23);
}

TEST(ScenarioTimeline, PoissonChurnIsDeterministicAndConsistent) {
  ScenarioTimeline::PoissonChurn churn;
  churn.arrival_fraction_per_min = 0.4;
  churn.departure_fraction_per_min = 0.4;
  churn.crash_fraction = 0.5;
  churn.start = seconds(2.0);
  churn.end = seconds(50.0);
  const auto a = ScenarioTimeline::poisson_churn(churn, 100, 77);
  const auto b = ScenarioTimeline::poisson_churn(churn, 100, 77);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);

  // Same seed, same timeline; joiner ids are fresh and increasing; every
  // departure targets a node that is present at that time.
  std::vector<std::uint8_t> present(100, 1);
  std::uint32_t last_join = 99;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    const auto& e = a.events()[i];
    const auto v = e.node.value();
    if (e.kind == ScenarioEventKind::kJoin) {
      EXPECT_GT(v, last_join);
      last_join = v;
      if (present.size() <= v) present.resize(v + 1, 0);
      present[v] = 1;
    } else {
      EXPECT_NE(e.node, NodeId{0});  // the source never departs
      ASSERT_LT(v, present.size());
      EXPECT_EQ(present[v], 1);
      present[v] = 0;
    }
  }
}

struct Outcome {
  std::uint64_t events = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t bytes = 0;
  std::uint64_t emissions = 0;
  std::size_t joins = 0;
  std::size_t departures = 0;
  std::size_t live = 0;
};

Outcome outcome_of(Experiment& ex) {
  return Outcome{ex.simulator().events_processed(),
                 ex.network_stats().datagrams_sent,
                 ex.network_stats().bytes_sent,
                 ex.ledger().emissions(),
                 ex.joins().size(),
                 ex.departures().size(),
                 ex.directory().live_count()};
}

TEST(ScenarioTimeline, RunUntilAcrossEventBoundaryMatchesStraightRun) {
  auto make = [] {
    auto cfg = churn_config();
    cfg.timeline.join_at(seconds(4.0));
    cfg.timeline.crash_at(seconds(6.0), NodeId{9});
    cfg.timeline.leave_at(seconds(8.0), NodeId{11});
    cfg.timeline.join_at(seconds(8.0));
    return cfg;
  };

  Experiment straight(make());
  straight.run();

  // Checkpoints landing exactly on and between event timestamps.
  Experiment stepped(make());
  for (const double t : {2.0, 4.0, 5.0, 6.0, 8.0, 9.0, 16.0}) {
    stepped.run_until(kSimEpoch + seconds(t));
  }

  const auto a = outcome_of(straight);
  const auto b = outcome_of(stepped);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.datagrams, b.datagrams);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.joins, 2u);
  EXPECT_EQ(a.departures, 2u);
}

TEST(ScenarioTimeline, LeaveThenJoinNeverAliasesBlameTotals) {
  auto cfg = churn_config();
  // Node 5 freerides hard, accrues blame, then leaves; a fresh node joins
  // right after. The joiner must not inherit one cent of node 5's ledger.
  cfg.freerider_fraction = 0.0;
  cfg.timeline.set_behavior_at(seconds(0.5), NodeId{5},
                               gossip::BehaviorSpec::freerider(0.8),
                               /*freerider=*/true);
  cfg.timeline.leave_at(seconds(10.0), NodeId{5});
  cfg.timeline.join_at(seconds(10.0));
  Experiment ex(cfg);
  ex.run_until(kSimEpoch + seconds(10.0));  // both events just applied

  ASSERT_EQ(ex.joins().size(), 1u);
  const NodeId joiner = ex.joins().front().node;
  // Fresh id, outside the base population — never a recycled slot.
  EXPECT_GE(joiner.value(), cfg.nodes);
  // At the join instant the departed node's blame stays where it was
  // earned and the joiner's ledger entry starts from zero — the aliasing
  // that id recycling would cause.
  const double blame_at_leave = ex.ledger().total(NodeId{5});
  EXPECT_GT(blame_at_leave, 0.0);
  EXPECT_DOUBLE_EQ(ex.ledger().total(joiner), 0.0);

  ex.run();
  // The joiner stays an honest, independent identity to the end: its loss
  // noise never approaches the freerider's accumulated total.
  EXPECT_LT(ex.ledger().total(joiner), ex.ledger().total(NodeId{5}) * 0.5);
  EXPECT_GE(ex.ledger().total(NodeId{5}), blame_at_leave);
  EXPECT_TRUE(ex.is_departed(NodeId{5}));
  EXPECT_FALSE(ex.is_departed(joiner));
  EXPECT_TRUE(ex.directory().is_live(joiner));
  EXPECT_FALSE(ex.directory().is_live(NodeId{5}));
}

TEST(ScenarioTimeline, DirectoryEpochDisambiguatesIdReuse) {
  membership::Directory dir(10);
  EXPECT_EQ(dir.epoch_of(NodeId{4}), 1u);
  dir.leave(NodeId{4});
  EXPECT_FALSE(dir.is_live(NodeId{4}));
  EXPECT_EQ(dir.epoch_of(NodeId{4}), 1u);  // epoch survives departure
  dir.join(NodeId{4});
  EXPECT_TRUE(dir.is_live(NodeId{4}));
  EXPECT_EQ(dir.epoch_of(NodeId{4}), 2u);  // rejoin is a new incarnation
  // Fresh id beyond the initial range grows the dense id space.
  dir.join(NodeId{12});
  EXPECT_TRUE(dir.is_live(NodeId{12}));
  EXPECT_EQ(dir.epoch_of(NodeId{12}), 1u);
  EXPECT_EQ(dir.id_capacity(), 13u);
  EXPECT_EQ(dir.departed().size(), 1u);
  EXPECT_TRUE(dir.expelled().empty());
}

TEST(ScenarioTimeline, CrashedNodeAccruesPostDepartureBlame) {
  auto cfg = churn_config();
  cfg.freerider_fraction = 0.0;
  cfg.failure_detection = seconds(3.0);
  cfg.timeline.crash_at(seconds(8.0), NodeId{6});
  Experiment ex(cfg);
  ex.run();

  // During the detection window partners kept proposing to the corpse and
  // its verifiers blamed the silence; the ledger reclassifies those
  // emissions as post-departure so churn-induced wrongful blame is
  // separable from live-node blame.
  const double posthumous =
      ex.ledger().total(NodeId{6}, gossip::BlameReason::kPostDeparture);
  EXPECT_GT(posthumous, 0.0);
  const auto split = ex.honest_blame_split();
  EXPECT_EQ(split.leavers, 1u);
  EXPECT_GT(split.leaver_total, 0.0);
  // Every post-departure emission is part of the victim's split bucket.
  EXPECT_LE(posthumous, split.leaver_total + 1e-9);
}

TEST(ScenarioTimeline, MidStreamJoinerCatchesUp) {
  auto cfg = churn_config();
  cfg.freerider_fraction = 0.0;
  cfg.timeline.join_at(seconds(5.0));
  Experiment ex(cfg);
  ex.run();

  ASSERT_EQ(ex.joins().size(), 1u);
  const NodeId joiner = ex.joins().front().node;
  // The joiner was wired into membership, received stream chunks, and its
  // managers can score it.
  EXPECT_TRUE(ex.directory().is_live(joiner));
  EXPECT_GT(ex.engine(joiner).stats().chunks_received, 0u);
  EXPECT_TRUE(std::isfinite(ex.true_score(joiner)));
}

}  // namespace
}  // namespace lifting::runtime

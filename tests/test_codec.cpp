#include <gtest/gtest.h>

#include "net/codec.hpp"

namespace lifting::net {
namespace {

template <typename T>
T roundtrip(const T& msg) {
  const auto bytes = encode(gossip::Message{msg});
  const auto decoded = decode(bytes);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

TEST(Codec, ProposeRoundTrip) {
  gossip::ProposeMsg m{42, {ChunkId{1}, ChunkId{99}, ChunkId{1u << 30}}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.period, m.period);
  EXPECT_EQ(out.chunks, m.chunks);
}

TEST(Codec, RequestRoundTrip) {
  gossip::RequestMsg m{7, {ChunkId{3}}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.period, 7u);
  EXPECT_EQ(out.chunks, m.chunks);
}

TEST(Codec, ServeRoundTrip) {
  gossip::ServeMsg m{5, ChunkId{12}, 8425, NodeId{77}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.chunk, m.chunk);
  EXPECT_EQ(out.payload_bytes, 8425u);
  EXPECT_EQ(out.ack_to, NodeId{77});
}

TEST(Codec, AckRoundTrip) {
  gossip::AckMsg m{9, {ChunkId{1}, ChunkId{2}}, {NodeId{4}, NodeId{5}, NodeId{6}}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.period, 9u);
  EXPECT_EQ(out.chunks, m.chunks);
  EXPECT_EQ(out.partners, m.partners);
}

TEST(Codec, ConfirmRoundTrip) {
  gossip::ConfirmReqMsg req{NodeId{3}, 11, {ChunkId{8}}};
  const auto r = roundtrip(req);
  EXPECT_EQ(r.subject, NodeId{3});
  EXPECT_EQ(r.subject_period, 11u);
  gossip::ConfirmRespMsg resp{NodeId{3}, 11, true};
  const auto rr = roundtrip(resp);
  EXPECT_TRUE(rr.confirmed);
}

TEST(Codec, BlameRoundTripPreservesValueAndReason) {
  gossip::BlameMsg m{NodeId{8}, 3.5, gossip::BlameReason::kTestimony};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.target, NodeId{8});
  EXPECT_DOUBLE_EQ(out.value, 3.5);
  EXPECT_EQ(out.reason, gossip::BlameReason::kTestimony);
}

TEST(Codec, ScoreMessagesRoundTrip) {
  const auto q = roundtrip(gossip::ScoreQueryMsg{NodeId{2}, 1234});
  EXPECT_EQ(q.query_id, 1234u);
  const auto r =
      roundtrip(gossip::ScoreReplyMsg{NodeId{2}, 1234, -9.7512, true});
  EXPECT_DOUBLE_EQ(r.normalized_score, -9.7512);
  EXPECT_TRUE(r.expelled);
}

TEST(Codec, ExpulsionMessagesRoundTrip) {
  EXPECT_DOUBLE_EQ(
      roundtrip(gossip::ExpelRequestMsg{NodeId{1}, -12.5}).observed_score,
      -12.5);
  EXPECT_TRUE(roundtrip(gossip::ExpelVoteMsg{NodeId{1}, true}).agree);
  EXPECT_TRUE(roundtrip(gossip::ExpelCommitMsg{NodeId{1}, true}).from_audit);
}

TEST(Codec, AuditMessagesRoundTrip) {
  gossip::AuditHistoryMsg hist;
  hist.audit_id = 5;
  hist.proposals.push_back(
      {3, {NodeId{1}, NodeId{2}}, {ChunkId{10}, ChunkId{11}}});
  hist.proposals.push_back({4, {NodeId{9}}, {}});
  const auto out = roundtrip(hist);
  ASSERT_EQ(out.proposals.size(), 2u);
  EXPECT_EQ(out.proposals[0].partners.size(), 2u);
  EXPECT_EQ(out.proposals[1].period, 4u);

  gossip::HistoryPollMsg poll{5, NodeId{7}, out.proposals};
  const auto p = roundtrip(poll);
  EXPECT_EQ(p.subject, NodeId{7});
  ASSERT_EQ(p.claims.size(), 2u);

  gossip::HistoryPollRespMsg resp{5, NodeId{7}, 10, 2, {NodeId{1}, NodeId{1}}};
  const auto pr = roundtrip(resp);
  EXPECT_EQ(pr.confirmed, 10u);
  EXPECT_EQ(pr.denied, 2u);
  EXPECT_EQ(pr.confirm_askers.size(), 2u);
}

TEST(Codec, RejectsTruncatedInput) {
  const auto bytes = encode(gossip::Message{
      gossip::ProposeMsg{1, {ChunkId{1}, ChunkId{2}}}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode(bytes.data(), cut).has_value())
        << "accepted truncation at " << cut;
  }
}

TEST(Codec, RejectsUnknownTagAndTrailingBytes) {
  const std::vector<std::uint8_t> junk{0xFF, 0x00, 0x01};
  EXPECT_FALSE(decode(junk).has_value());
  auto bytes = encode(gossip::Message{gossip::AuditRequestMsg{3}});
  bytes.push_back(0x00);  // trailing garbage
  EXPECT_FALSE(decode(bytes).has_value());
  EXPECT_FALSE(decode(nullptr, 0).has_value());
}

TEST(Codec, RejectsOversizedCountFields) {
  // Claim 65535 chunks but provide none: must fail cleanly, not crash.
  std::vector<std::uint8_t> crafted{1 /*propose*/, 0, 0, 0, 0, 0xFF, 0xFF};
  EXPECT_FALSE(decode(crafted).has_value());
}

}  // namespace
}  // namespace lifting::net

#include <gtest/gtest.h>

#include "net/codec.hpp"

namespace lifting::net {
namespace {

template <typename T>
T roundtrip(const T& msg) {
  const auto bytes = encode(gossip::Message{msg});
  const auto decoded = decode(bytes);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

TEST(Codec, ProposeRoundTrip) {
  gossip::ProposeMsg m{42, {ChunkId{1}, ChunkId{99}, ChunkId{1u << 30}}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.period, m.period);
  EXPECT_EQ(out.chunks, m.chunks);
}

TEST(Codec, RequestRoundTrip) {
  gossip::RequestMsg m{7, {ChunkId{3}}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.period, 7u);
  EXPECT_EQ(out.chunks, m.chunks);
}

TEST(Codec, ServeRoundTrip) {
  gossip::ServeMsg m{5, ChunkId{12}, 8425, NodeId{77}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.chunk, m.chunk);
  EXPECT_EQ(out.payload_bytes, 8425u);
  EXPECT_EQ(out.ack_to, NodeId{77});
}

TEST(Codec, AckRoundTrip) {
  gossip::AckMsg m{9, {ChunkId{1}, ChunkId{2}}, {NodeId{4}, NodeId{5}, NodeId{6}}};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.period, 9u);
  EXPECT_EQ(out.chunks, m.chunks);
  EXPECT_EQ(out.partners, m.partners);
}

TEST(Codec, ConfirmRoundTrip) {
  gossip::ConfirmReqMsg req{NodeId{3}, 11, {ChunkId{8}}};
  const auto r = roundtrip(req);
  EXPECT_EQ(r.subject, NodeId{3});
  EXPECT_EQ(r.subject_period, 11u);
  gossip::ConfirmRespMsg resp{NodeId{3}, 11, true};
  const auto rr = roundtrip(resp);
  EXPECT_TRUE(rr.confirmed);
}

TEST(Codec, BlameRoundTripPreservesValueAndReason) {
  gossip::BlameMsg m{NodeId{8}, 3.5, gossip::BlameReason::kTestimony};
  const auto out = roundtrip(m);
  EXPECT_EQ(out.target, NodeId{8});
  EXPECT_DOUBLE_EQ(out.value, 3.5);
  EXPECT_EQ(out.reason, gossip::BlameReason::kTestimony);
}

TEST(Codec, ScoreMessagesRoundTrip) {
  const auto q = roundtrip(gossip::ScoreQueryMsg{NodeId{2}, 1234});
  EXPECT_EQ(q.query_id, 1234u);
  const auto r =
      roundtrip(gossip::ScoreReplyMsg{NodeId{2}, 1234, -9.7512, true});
  EXPECT_DOUBLE_EQ(r.normalized_score, -9.7512);
  EXPECT_TRUE(r.expelled);
}

TEST(Codec, ExpulsionMessagesRoundTrip) {
  EXPECT_DOUBLE_EQ(
      roundtrip(gossip::ExpelRequestMsg{NodeId{1}, -12.5}).observed_score,
      -12.5);
  EXPECT_TRUE(roundtrip(gossip::ExpelVoteMsg{NodeId{1}, true}).agree);
  EXPECT_TRUE(roundtrip(gossip::ExpelCommitMsg{NodeId{1}, true}).from_audit);
}

TEST(Codec, AuditMessagesRoundTrip) {
  gossip::AuditHistoryMsg hist;
  hist.audit_id = 5;
  hist.proposals.push_back(
      {3, {NodeId{1}, NodeId{2}}, {ChunkId{10}, ChunkId{11}}});
  hist.proposals.push_back({4, {NodeId{9}}, {}});
  const auto out = roundtrip(hist);
  ASSERT_EQ(out.proposals.size(), 2u);
  EXPECT_EQ(out.proposals[0].partners.size(), 2u);
  EXPECT_EQ(out.proposals[1].period, 4u);

  gossip::HistoryPollMsg poll{5, NodeId{7}, out.proposals};
  const auto p = roundtrip(poll);
  EXPECT_EQ(p.subject, NodeId{7});
  ASSERT_EQ(p.claims.size(), 2u);

  gossip::HistoryPollRespMsg resp{5, NodeId{7}, 10, 2, {NodeId{1}, NodeId{1}}};
  const auto pr = roundtrip(resp);
  EXPECT_EQ(pr.confirmed, 10u);
  EXPECT_EQ(pr.denied, 2u);
  EXPECT_EQ(pr.confirm_askers.size(), 2u);
}

TEST(Codec, RejectsTruncatedInput) {
  const auto bytes = encode(gossip::Message{
      gossip::ProposeMsg{1, {ChunkId{1}, ChunkId{2}}}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode(bytes.data(), cut).has_value())
        << "accepted truncation at " << cut;
  }
}

TEST(Codec, RejectsUnknownTagAndTrailingBytes) {
  const std::vector<std::uint8_t> junk{0xFF, 0x00, 0x01};
  EXPECT_FALSE(decode(junk).has_value());
  auto bytes = encode(gossip::Message{gossip::AuditRequestMsg{3}});
  bytes.push_back(0x00);  // trailing garbage
  EXPECT_FALSE(decode(bytes).has_value());
  EXPECT_FALSE(decode(nullptr, 0).has_value());
}

TEST(Codec, RejectsOversizedCountFields) {
  // Claim 65535 chunks but provide none: must fail cleanly, not crash.
  std::vector<std::uint8_t> crafted{1 /*propose*/, 0, 0, 0, 0, 0xFF, 0xFF};
  EXPECT_FALSE(decode(crafted).has_value());
}

// Chunk ids travel as 8 wire bytes but the in-memory rep is 32-bit. A
// frame carrying an id >= 2^32 used to truncate silently into an alias of
// a real chunk; it must be rejected as malformed instead.
TEST(Codec, RejectsOutOfRangeChunkId) {
  // propose: tag, period u32, count u16, then one chunk id u64 (LE).
  const auto propose_with_id = [](std::uint64_t id) {
    std::vector<std::uint8_t> bytes{1 /*propose*/, 0, 0, 0, 0, 1, 0};
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(id >> (8 * i)));
    }
    return bytes;
  };
  EXPECT_TRUE(decode(propose_with_id(0xFFFFFFFFULL)).has_value());
  EXPECT_FALSE(decode(propose_with_id(0x100000000ULL)).has_value());
  EXPECT_FALSE(decode(propose_with_id(0x1FFFFFFFFULL)).has_value());
  EXPECT_FALSE(decode(propose_with_id(~0ULL)).has_value());

  // serve: tag, period u32, chunk u64, payload u32, ack_to u32.
  std::vector<std::uint8_t> serve{3 /*serve*/, 0, 0, 0, 0};
  for (int i = 0; i < 8; ++i) serve.push_back(i == 4 ? 1 : 0);  // id = 2^32
  for (int i = 0; i < 8; ++i) serve.push_back(0);  // payload + ack_to
  EXPECT_FALSE(decode(serve).has_value());
}

/// One representative, fully-populated sample of every message type, in
/// variant order.
std::vector<gossip::Message> sample_messages() {
  gossip::AuditHistoryMsg hist;
  hist.audit_id = 9;
  hist.proposals.push_back(
      {3, {NodeId{1}, NodeId{2}}, {ChunkId{10}, ChunkId{11}}});
  hist.proposals.push_back({4, {NodeId{9}}, {ChunkId{12}}});
  return {
      gossip::ProposeMsg{1, {ChunkId{5}, ChunkId{6}}},
      gossip::RequestMsg{1, {ChunkId{5}}},
      gossip::ServeMsg{1, ChunkId{5}, 1024, NodeId{3}},
      gossip::AckMsg{2, {ChunkId{5}}, {NodeId{1}, NodeId{2}}},
      gossip::ConfirmReqMsg{NodeId{4}, 2, {ChunkId{7}}},
      gossip::ConfirmRespMsg{NodeId{4}, 2, true},
      gossip::BlameMsg{NodeId{6}, 1.25, gossip::BlameReason::kTestimony},
      gossip::ScoreQueryMsg{NodeId{2}, 77},
      gossip::ScoreReplyMsg{NodeId{2}, 77, -3.5, false},
      gossip::ExpelRequestMsg{NodeId{8}, -20.0},
      gossip::ExpelVoteMsg{NodeId{8}, true},
      gossip::ExpelCommitMsg{NodeId{8}, false},
      gossip::AuditRequestMsg{9},
      hist,
      gossip::HistoryPollMsg{9, NodeId{7}, hist.proposals},
      gossip::HistoryPollRespMsg{9, NodeId{7}, 3, 1, {NodeId{1}}},
      gossip::AuditAckMsg{13, 9, NodeId{7}},
      gossip::RpsShuffleMsg{
          4,
          static_cast<std::uint8_t>(gossip::kRpsShuffleAttested |
                                    gossip::kRpsShuffleResponse),
          {gossip::RpsViewEntry{NodeId{5}, 3, 1, 0},
           gossip::RpsViewEntry{NodeId{11}, 0, 2, gossip::kRpsEntryForged}}},
  };
}

TEST(Codec, RpsShuffleRoundTrip) {
  gossip::RpsShuffleMsg m;
  m.round = 120;
  m.flags = gossip::kRpsShuffleAttested;
  m.entries.push_back(gossip::RpsViewEntry{NodeId{1}, 7, 1, 0});
  m.entries.push_back(
      gossip::RpsViewEntry{NodeId{42}, 0, 3, gossip::kRpsEntryForged});
  const auto out = roundtrip(m);
  EXPECT_EQ(out.round, 120u);
  EXPECT_EQ(out.flags, gossip::kRpsShuffleAttested);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].id, NodeId{1});
  EXPECT_EQ(out.entries[0].age, 7u);
  EXPECT_EQ(out.entries[0].epoch, 1u);
  EXPECT_EQ(out.entries[0].flags, 0u);
  EXPECT_EQ(out.entries[1].id, NodeId{42});
  EXPECT_EQ(out.entries[1].epoch, 3u);
  EXPECT_EQ(out.entries[1].flags, gossip::kRpsEntryForged);

  // An empty exchange (a node with a drained view) is legal on the wire.
  gossip::RpsShuffleMsg empty;
  EXPECT_TRUE(roundtrip(empty).entries.empty());

  // Claimed entry count without the bytes must fail cleanly (the count ×
  // entry-size pre-check), like every other list-carrying kind.
  std::vector<std::uint8_t> crafted{18 /*rps_shuffle tag*/, 0, 0, 0, 0,
                                    0 /*flags*/, 0xFF, 0xFF};
  EXPECT_FALSE(decode(crafted).has_value());
}

// Robustness sweep: every message type under systematic truncation. A
// strict prefix can never satisfy the parser (every read is bounds-checked
// and decode() demands full consumption), so all of these must fail
// cleanly — no crash, no overrun (the suite also runs under ASan in CI).
TEST(Codec, EveryKindRejectsAllTruncations) {
  const auto samples = sample_messages();
  ASSERT_EQ(samples.size(), std::variant_size_v<gossip::Message>);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const auto bytes = encode(samples[k]);
    EXPECT_EQ(decode(bytes)->index(), k);  // the sample itself round-trips
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode(bytes.data(), cut).has_value())
          << "kind " << k << " accepted a " << cut << "-byte prefix";
    }
  }
}

// Robustness sweep: every message type under single-byte mutation at every
// position. A mutated frame may still decode (e.g. a flipped period bit is
// indistinguishable from a different valid message) — the requirement is
// that the decoder never crashes or reads out of bounds, whatever comes
// back.
TEST(Codec, EveryKindSurvivesSingleByteMutation) {
  std::size_t still_decodable = 0;
  for (const auto& sample : sample_messages()) {
    const auto bytes = encode(sample);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
        auto mutated = bytes;
        mutated[pos] = static_cast<std::uint8_t>(mutated[pos] ^ flip);
        // Heap-copy at the exact size so ASan catches any overrun.
        const std::vector<std::uint8_t> exact(mutated.begin(), mutated.end());
        if (decode(exact.data(), exact.size()).has_value()) ++still_decodable;
      }
    }
  }
  // Sanity: the sweep ran over real data (some mutations survive, e.g. in
  // period or payload fields; a tag flip or count inflation must not).
  EXPECT_GT(still_decodable, 0u);
}

}  // namespace
}  // namespace lifting::net

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace lifting {
namespace {

// ---------------------------------------------------------- strong ids

TEST(StrongId, DistinctTypesDoNotMix) {
  static_assert(!std::is_convertible_v<NodeId, ChunkId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
  const NodeId a{3};
  const NodeId b{4};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(NodeId{3}, a);
}

TEST(StrongId, HashableInUnorderedContainers) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, IncrementForDenseGeneration) {
  ChunkId id{10};
  ++id;
  EXPECT_EQ(id, ChunkId{11});
}

// ---------------------------------------------------------------- time

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(milliseconds(500).count(), 500'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  const TimePoint t = kSimEpoch + seconds(1.0);
  EXPECT_DOUBLE_EQ(to_seconds(t), 1.0);
}

TEST(SimTime, PeriodArithmetic) {
  const Duration tg = milliseconds(500);
  EXPECT_EQ(seconds(25.0) / tg, 50);  // n_h = h / Tg
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Pcg32 a{123, 7};
  Pcg32 b{123, 7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentStreamsDiffer) {
  Pcg32 a{123, 1};
  Pcg32 b{123, 2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Pcg32 rng{99};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Pcg32 rng{5};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Pcg32 rng{17};
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.07)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.07, 0.005);
}

TEST(Rng, BernoulliEdgeCases) {
  Pcg32 rng{17};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BinomialMoments) {
  Pcg32 rng{31};
  const int trials = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < trials; ++i) {
    const auto k = rng.binomial(12, 0.3);
    ASSERT_LE(k, 12u);
    sum += k;
    sum2 += static_cast<double>(k) * k;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 12 * 0.3, 0.05);
  EXPECT_NEAR(var, 12 * 0.3 * 0.7, 0.1);
}

TEST(Rng, PoissonMoments) {
  Pcg32 rng{41};
  const int trials = 30000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < trials; ++i) {
    const auto k = rng.poisson(7.0);
    sum += k;
    sum2 += static_cast<double>(k) * k;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 7.0, 0.1);
  EXPECT_NEAR(var, 7.0, 0.25);
}

TEST(Rng, SampleKDistinctProducesDistinctInRange) {
  Pcg32 rng{55};
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = sample_k_distinct(rng, 20, 12);
    ASSERT_EQ(picks.size(), 12u);
    std::set<std::uint32_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 12u);
    for (const auto p : picks) EXPECT_LT(p, 20u);
  }
}

TEST(Rng, SampleKDistinctFullRange) {
  Pcg32 rng{56};
  const auto picks = sample_k_distinct(rng, 5, 5);
  std::set<std::uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleKDistinctIsApproximatelyUniform) {
  Pcg32 rng{57};
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const auto p : sample_k_distinct(rng, 10, 3)) ++counts[p];
  }
  // Each element is chosen with probability 3/10.
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(Rng, RoundRandomizedIsUnbiased) {
  Pcg32 rng{58};
  const double x = 3.7;
  double sum = 0.0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto v = round_randomized(rng, x);
    ASSERT_TRUE(v == 3 || v == 4);
    sum += v;
  }
  EXPECT_NEAR(sum / trials, x, 0.02);
}

TEST(Rng, DeriveRngIndependentStreams) {
  auto a = derive_rng(1234, 1);
  auto b = derive_rng(1234, 2);
  auto a2 = derive_rng(1234, 1);
  EXPECT_EQ(a.next(), a2.next());
  EXPECT_NE(a.next(), b.next());
}

// ------------------------------------------------------ unique function

TEST(UniqueFunction, CallsMoveOnlyLambda) {
  auto ptr = std::make_unique<int>(41);
  UniqueFunction<int()> fn = [p = std::move(ptr)] { return *p + 1; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  UniqueFunction<int(int)> fn = [](int x) { return x * 2; };
  UniqueFunction<int(int)> other = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(other(21), 42);
}

TEST(UniqueFunction, EmptyByDefault) {
  UniqueFunction<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

// --------------------------------------------------------------- table

TEST(TextTable, RendersAlignedRows) {
  TextTable table({"a", "bbbb"});
  table.add_row({"1", "2"});
  table.add_row({TextTable::num(3.14159, 2), "x"});
  std::ostringstream os;
  table.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  // 3 separator lines + header + 2 rows = 6 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Require, ThrowsOnViolation) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "bad config"), std::invalid_argument);
}

}  // namespace
}  // namespace lifting

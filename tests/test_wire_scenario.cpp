#include <gtest/gtest.h>

#include "runtime/wire_scenario.hpp"

namespace lifting::runtime {
namespace {

/// The serialized subset must round-trip exactly: every field the wire
/// deployment consumes compares equal after encode -> decode.
void expect_roundtrip(const ScenarioConfig& config) {
  const auto text = encode_wire_scenario(config);
  std::string error;
  const auto out = decode_wire_scenario(text, &error);
  ASSERT_TRUE(out.has_value()) << error << "\n" << text;

  EXPECT_EQ(out->nodes, config.nodes);
  EXPECT_EQ(out->seed, config.seed);
  EXPECT_EQ(out->duration, config.duration);
  EXPECT_EQ(out->lifting_enabled, config.lifting_enabled);
  EXPECT_EQ(out->gossip.fanout, config.gossip.fanout);
  EXPECT_EQ(out->gossip.period, config.gossip.period);
  EXPECT_EQ(out->gossip.request_timeout, config.gossip.request_timeout);
  EXPECT_EQ(out->gossip.proposal_retention_periods,
            config.gossip.proposal_retention_periods);
  EXPECT_EQ(out->gossip.max_request_per_proposal,
            config.gossip.max_request_per_proposal);
  EXPECT_EQ(out->stream.bitrate_bps, config.stream.bitrate_bps);
  EXPECT_EQ(out->stream.chunk_payload_bytes, config.stream.chunk_payload_bytes);
  EXPECT_EQ(out->stream.duration, config.stream.duration);
  EXPECT_DOUBLE_EQ(out->freerider_fraction, config.freerider_fraction);
  EXPECT_DOUBLE_EQ(out->freerider_behavior.delta_fanout,
                   config.freerider_behavior.delta_fanout);
  EXPECT_DOUBLE_EQ(out->freerider_behavior.delta_propose,
                   config.freerider_behavior.delta_propose);
  EXPECT_DOUBLE_EQ(out->freerider_behavior.delta_serve,
                   config.freerider_behavior.delta_serve);
  EXPECT_DOUBLE_EQ(out->freerider_behavior.period_stretch,
                   config.freerider_behavior.period_stretch);
  EXPECT_EQ(out->freerider_behavior.lie_in_history,
            config.freerider_behavior.lie_in_history);
  // LiFTinG parameters (spot-check the ones with awkward encodings:
  // durations, doubles that need round-trip precision, the vote pair).
  EXPECT_EQ(out->lifting.managers, config.lifting.managers);
  EXPECT_EQ(out->lifting.history_window, config.lifting.history_window);
  EXPECT_EQ(out->lifting.audit_poll_timeout,
            config.lifting.audit_poll_timeout);
  EXPECT_DOUBLE_EQ(out->lifting.eta, config.lifting.eta);
  EXPECT_DOUBLE_EQ(out->lifting.gamma, config.lifting.gamma);
  EXPECT_DOUBLE_EQ(out->lifting.p_dcc, config.lifting.p_dcc);
  EXPECT_DOUBLE_EQ(out->lifting.loss_estimate, config.lifting.loss_estimate);
  EXPECT_EQ(out->lifting.score_vote, config.lifting.score_vote);

  // Byte-identical re-encoding is the strongest round-trip guarantee the
  // deployment relies on (launcher and daemon agree on every derived seed).
  EXPECT_EQ(encode_wire_scenario(*out), text);
}

TEST(WireScenario, SmallPresetRoundTrips) {
  expect_roundtrip(ScenarioConfig::small(16));
}

TEST(WireScenario, PlanetlabPresetRoundTrips) {
  expect_roundtrip(ScenarioConfig::planetlab());
}

TEST(WireScenario, FreeriderScenarioRoundTrips) {
  auto config = ScenarioConfig::small(32);
  config.seed = 0xDEADBEEF;
  config.freerider_fraction = 0.25;
  config.freerider_behavior = gossip::BehaviorSpec::freerider(0.3);
  expect_roundtrip(config);
}

TEST(WireScenario, DecoderRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(decode_wire_scenario("no_such_key 1\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(decode_wire_scenario("nodes\n", &error).has_value());
  EXPECT_FALSE(decode_wire_scenario("nodes banana\n", &error).has_value());
  // Comments and blank lines are fine.
  const auto text = encode_wire_scenario(ScenarioConfig::small(8));
  EXPECT_TRUE(
      decode_wire_scenario("# comment\n\n" + text, &error).has_value());
}

TEST(WireScenario, UnsupportedFeaturesAreNamed) {
  std::string why;

  auto timeline = ScenarioConfig::small(16);
  timeline.timeline.leave_at(seconds(1.0), NodeId{1});
  EXPECT_FALSE(wire_supported(timeline, &why));
  EXPECT_NE(why.find("timeline"), std::string::npos) << why;

  auto expel = ScenarioConfig::small(16);
  expel.expulsion_enabled = true;
  EXPECT_FALSE(wire_supported(expel, &why));

  auto tiny = ScenarioConfig::small(16);
  tiny.nodes = 1;
  EXPECT_FALSE(wire_supported(tiny, &why));

  EXPECT_TRUE(wire_supported(ScenarioConfig::small(16), &why)) << why;
  EXPECT_TRUE(wire_supported(ScenarioConfig::planetlab(), &why)) << why;
}

}  // namespace
}  // namespace lifting::runtime

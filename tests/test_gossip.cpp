#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "gossip/engine.hpp"
#include "gossip/mailer.hpp"
#include "gossip/message.hpp"
#include "gossip/playback.hpp"
#include "gossip/stream_source.hpp"
#include "membership/directory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace lifting::gossip {
namespace {

/// Minimal multi-node gossip fixture with a perfect network.
class GossipFixture {
 public:
  explicit GossipFixture(std::uint32_t n, GossipParams params = {},
                         sim::LinkProfile profile = perfect_link())
      : directory_(n), network_(sim_, Pcg32{900}), mailer_(network_, nullptr) {
    params.emit_acks = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId id{i};
      engines_.push_back(std::make_unique<Engine>(
          sim_, mailer_, directory_, id, params,
          BehaviorSpec::honest(), derive_rng(77, i), nullptr));
      network_.add_node(id, profile,
                        [this, i](sim::Delivery<Message> d) {
                          engines_[i]->handle(d.from, d.payload);
                        });
    }
  }

  [[nodiscard]] static sim::LinkProfile perfect_link() {
    sim::LinkProfile p;
    p.loss = 0.0;
    p.latency_base = milliseconds(5);
    p.latency_jitter = milliseconds(2);
    p.upload_capacity_bps = 1e9;
    return p;
  }

  void start_all() {
    Pcg32 rng{31};
    for (auto& e : engines_) {
      e->start(Duration{static_cast<Duration::rep>(rng.uniform() * 5e5)});
    }
  }

  sim::Simulator sim_;
  membership::Directory directory_;
  sim::Network<Message> network_;
  Mailer mailer_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

TEST(WireSize, GrowsWithContent) {
  const ProposeMsg small{1, {ChunkId{1}}};
  const ProposeMsg big{1, {ChunkId{1}, ChunkId{2}, ChunkId{3}}};
  EXPECT_LT(wire_size(Message{small}), wire_size(Message{big}));
  EXPECT_EQ(wire_size(Message{big}) - wire_size(Message{small}), 16u);
}

TEST(WireSize, ServeCarriesPayload) {
  ServeMsg serve{1, ChunkId{9}, 8425, NodeId{0}};
  EXPECT_GT(wire_size(Message{serve}), 8425u);
}

TEST(WireSize, KindNames) {
  EXPECT_STREQ(message_kind(Message{ProposeMsg{}}), "propose");
  EXPECT_STREQ(message_kind(Message{BlameMsg{}}), "blame");
  EXPECT_STREQ(message_kind(Message{AuditHistoryMsg{}}), "audit_history");
}

TEST(Engine, DisseminatesToAllNodesWithoutLoss) {
  GossipFixture fx(40);
  fx.start_all();
  StreamSource::Params sp;
  sp.bitrate_bps = 100'000;
  sp.chunk_payload_bytes = 2'500;  // 5 chunks/s
  sp.duration = seconds(5.0);
  StreamSource source(fx.sim_, *fx.engines_[0], sp);
  source.start();
  fx.sim_.run_until(kSimEpoch + seconds(10.0));

  ASSERT_GT(source.emitted().size(), 20u);
  // Infect-and-die dissemination is probabilistic even without loss: the
  // epidemic dies once every holder has proposed. With f = 7 the expected
  // coverage is ~99.9% per chunk (1 - e^{-f·s} fixpoint); require that and
  // a hard per-chunk floor.
  std::size_t pairs = 0;
  std::size_t covered = 0;
  for (const auto& chunk : source.emitted()) {
    std::size_t holders = 0;
    for (const auto& e : fx.engines_) {
      if (e->has_chunk(chunk.id)) ++holders;
    }
    pairs += fx.engines_.size();
    covered += holders;
    EXPECT_GE(holders, fx.engines_.size() * 95 / 100)
        << "chunk " << chunk.id.value();
  }
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(pairs), 0.995);
}

TEST(Engine, DeliveryLagIsLogarithmicInPopulation) {
  GossipFixture fx(50);
  fx.start_all();
  StreamSource::Params sp;
  sp.duration = seconds(4.0);
  sp.bitrate_bps = 160'000;
  sp.chunk_payload_bytes = 4'000;
  StreamSource source(fx.sim_, *fx.engines_[0], sp);
  source.start();
  fx.sim_.run_until(kSimEpoch + seconds(10.0));
  // With f = 7 and Tg = 500 ms, full coverage takes ~log_f(50) ≈ 2-3
  // periods; mean lag should be low single-digit seconds.
  double worst = 0.0;
  for (const auto& e : fx.engines_) {
    worst = std::max(
        worst, mean_delivery_lag(source.emitted(), e->delivery_times()));
  }
  EXPECT_LT(worst, 4.0);
  EXPECT_GT(worst, 0.1);
}

TEST(Engine, InfectAndDieNeverReproposesAChunk) {
  // Observer recording every proposal; chunks must appear in at most one
  // propose phase per node (§3: infect-and-die).
  class Recorder final : public EngineObserver {
   public:
    void on_propose_received(NodeId, PeriodIndex, const ChunkIdList&) override {}
    void on_request_sent(NodeId, PeriodIndex, const ChunkIdList&) override {}
    void on_serve_received(NodeId, NodeId, PeriodIndex, ChunkId) override {}
    void on_chunks_served(NodeId, PeriodIndex, const ChunkIdList&) override {}
    void on_ack_received(NodeId, const AckMsg&) override {}
    void on_proposal_sent(PeriodIndex period,
                          const std::vector<NodeId>&,
                          const std::vector<NodeId>&,
                          const ChunkIdList& chunks) override {
      for (const auto c : chunks) {
        proposed_in[c].push_back(period);
      }
    }
    std::map<ChunkId, std::vector<PeriodIndex>> proposed_in;
  };

  sim::Simulator sim;
  membership::Directory dir(10);
  sim::Network<Message> net(sim, Pcg32{901});
  Mailer mailer(net, nullptr);
  Recorder recorder;
  GossipParams params;
  params.emit_acks = false;
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<Recorder> recorders(10);
  for (std::uint32_t i = 0; i < 10; ++i) {
    engines.push_back(std::make_unique<Engine>(
        sim, mailer, dir, NodeId{i}, params, BehaviorSpec::honest(),
        derive_rng(5, i), &recorders[i]));
    net.add_node(NodeId{i}, GossipFixture::perfect_link(),
                 [&engines, i](sim::Delivery<Message> d) {
                   engines[i]->handle(d.from, d.payload);
                 });
  }
  for (auto& e : engines) e->start(milliseconds(10));
  StreamSource::Params sp;
  sp.duration = seconds(3.0);
  StreamSource source(sim, *engines[0], sp);
  source.start();
  sim.run_until(kSimEpoch + seconds(6.0));

  for (const auto& rec : recorders) {
    for (const auto& [chunk, periods] : rec.proposed_in) {
      EXPECT_EQ(periods.size(), 1u)
          << "chunk " << chunk.value() << " proposed in multiple phases";
    }
  }
}

TEST(Engine, ServesOnlyProposedAndRequestedChunks) {
  // A node that requests chunks never proposed to it gets nothing (§3/§4.2).
  sim::Simulator sim;
  membership::Directory dir(2);
  sim::Network<Message> net(sim, Pcg32{902});
  Mailer mailer(net, nullptr);
  GossipParams params;
  params.emit_acks = false;
  Engine server(sim, mailer, dir, NodeId{0}, params, BehaviorSpec::honest(),
                Pcg32{1}, nullptr);
  int served = 0;
  net.add_node(NodeId{0}, GossipFixture::perfect_link(),
               [&](sim::Delivery<Message> d) { server.handle(d.from, d.payload); });
  net.add_node(NodeId{1}, GossipFixture::perfect_link(),
               [&](sim::Delivery<Message> d) {
                 if (std::holds_alternative<ServeMsg>(d.payload)) ++served;
               });
  server.inject_chunk(ChunkMeta{ChunkId{1}, 100, sim.now()});
  // Forged request with no matching proposal: must be ignored.
  net.send(NodeId{1}, NodeId{0}, sim::Channel::kDatagram, 50,
           Message{RequestMsg{1, {ChunkId{1}}}});
  sim.run();
  EXPECT_EQ(served, 0);
  EXPECT_EQ(server.stats().invalid_requests, 1u);
}

TEST(Engine, FanoutDecreaseAttackContactsFewerPartners) {
  sim::Simulator sim;
  membership::Directory dir(30);
  sim::Network<Message> net(sim, Pcg32{903});
  Mailer mailer(net, nullptr);
  GossipParams params;
  params.fanout = 8;
  params.emit_acks = false;
  BehaviorSpec cheat;
  cheat.delta_fanout = 0.5;
  int proposals_received = 0;
  Engine cheater(sim, mailer, dir, NodeId{0}, params, cheat, Pcg32{2},
                 nullptr);
  net.add_node(NodeId{0}, GossipFixture::perfect_link(),
               [&](sim::Delivery<Message> d) { cheater.handle(d.from, d.payload); });
  for (std::uint32_t i = 1; i < 30; ++i) {
    net.add_node(NodeId{i}, GossipFixture::perfect_link(),
                 [&](sim::Delivery<Message> d) {
                   if (std::holds_alternative<ProposeMsg>(d.payload)) {
                     ++proposals_received;
                   }
                 });
  }
  cheater.start(milliseconds(1));
  for (int round = 0; round < 40; ++round) {
    cheater.inject_chunk(
        ChunkMeta{ChunkId{static_cast<std::uint32_t>(round)}, 100,
                  sim.now()});
    sim.run_until(sim.now() + params.period);
  }
  // (1-δ1)·f = 4 partners on average instead of 8.
  const double avg = static_cast<double>(proposals_received) / 40.0;
  EXPECT_NEAR(avg, 4.0, 0.8);
}

TEST(Engine, MitmRedirectsAcksAndClaimsCoalitionPartners) {
  // Fig. 8b mechanics: the freerider's serves carry a coalition ack-target,
  // its acks list coalition members, and a coalition member sends the fake
  // confirm trail to the real partners.
  sim::Simulator sim;
  membership::Directory dir(30);
  sim::Network<Message> net(sim, Pcg32{905});
  Mailer mailer(net, nullptr);
  GossipParams params;
  params.fanout = 4;
  BehaviorSpec mitm;
  CollusionSpec collusion;
  for (std::uint32_t i = 20; i < 26; ++i) {
    collusion.coalition.push_back(NodeId{i});
  }
  collusion.mitm = true;
  mitm.collusion = collusion;  // node 20 is in its own coalition

  Engine cheater(sim, mailer, dir, NodeId{20}, params, mitm, Pcg32{6},
                 nullptr);
  std::vector<AckMsg> acks_seen;
  std::vector<std::pair<NodeId, ConfirmReqMsg>> trail;  // (receiver, msg)
  std::vector<ServeMsg> serves_seen;
  net.add_node(NodeId{20}, GossipFixture::perfect_link(),
               [&](sim::Delivery<Message> d) { cheater.handle(d.from, d.payload); });
  for (std::uint32_t i = 0; i < 30; ++i) {
    if (i == 20) continue;
    net.add_node(NodeId{i}, GossipFixture::perfect_link(),
                 [&, i](sim::Delivery<Message> d) {
                   if (const auto* a = std::get_if<AckMsg>(&d.payload)) {
                     acks_seen.push_back(*a);
                   } else if (const auto* c =
                                  std::get_if<ConfirmReqMsg>(&d.payload)) {
                     trail.emplace_back(NodeId{i}, *c);
                   } else if (const auto* s =
                                  std::get_if<ServeMsg>(&d.payload)) {
                     serves_seen.push_back(*s);
                   } else if (std::holds_alternative<ProposeMsg>(d.payload)) {
                     // request everything proposed
                     const auto& p = std::get<ProposeMsg>(d.payload);
                     net.send(NodeId{i}, NodeId{20}, sim::Channel::kDatagram,
                              50, Message{RequestMsg{p.period, p.chunks}});
                   }
                 });
  }
  // The cheater "receives" a chunk from node 1 (a serve) so it owes an ack.
  net.send(NodeId{1}, NodeId{20}, sim::Channel::kDatagram, 1000,
           Message{ServeMsg{1, ChunkId{5}, 100, NodeId{1}}});
  sim.run_until(sim.now() + milliseconds(50));
  cheater.start(milliseconds(1));
  sim.run_until(sim.now() + milliseconds(600));

  // Ack to the server lists only coalition partners.
  ASSERT_FALSE(acks_seen.empty());
  for (const auto& ack : acks_seen) {
    for (const auto partner : ack.partners) {
      EXPECT_TRUE(mitm.collusion->contains(partner));
    }
  }
  // The fake confirm trail about the cheater reached its real partners.
  ASSERT_FALSE(trail.empty());
  for (const auto& [receiver, msg] : trail) {
    EXPECT_EQ(msg.subject, NodeId{20});
  }
  // Serves carry a coalition ack-target, not the cheater itself.
  for (const auto& serve : serves_seen) {
    EXPECT_NE(serve.ack_to, NodeId{20});
    EXPECT_TRUE(mitm.collusion->contains(serve.ack_to));
  }
}

TEST(Engine, PartialProposeDropsServersButAcksClaimTheirChunks) {
  // δ2 = 1: every server's chunks are dropped from the proposal, yet the
  // (lying) acks still claim them — the witnesses are who catch this.
  sim::Simulator sim;
  membership::Directory dir(10);
  sim::Network<Message> net(sim, Pcg32{906});
  Mailer mailer(net, nullptr);
  GossipParams params;
  params.fanout = 3;
  BehaviorSpec cheat;
  cheat.delta_propose = 1.0;
  Engine cheater(sim, mailer, dir, NodeId{0}, params, cheat, Pcg32{8},
                 nullptr);
  std::vector<AckMsg> acks;
  int proposals = 0;
  net.add_node(NodeId{0}, GossipFixture::perfect_link(),
               [&](sim::Delivery<Message> d) { cheater.handle(d.from, d.payload); });
  for (std::uint32_t i = 1; i < 10; ++i) {
    net.add_node(NodeId{i}, GossipFixture::perfect_link(),
                 [&](sim::Delivery<Message> d) {
                   if (const auto* a = std::get_if<AckMsg>(&d.payload)) {
                     acks.push_back(*a);
                   } else if (std::holds_alternative<ProposeMsg>(d.payload)) {
                     ++proposals;
                   }
                 });
  }
  net.send(NodeId{3}, NodeId{0}, sim::Channel::kDatagram, 1000,
           Message{ServeMsg{1, ChunkId{7}, 100, NodeId{3}}});
  sim.run_until(sim.now() + milliseconds(50));
  cheater.start(milliseconds(1));
  sim.run_until(sim.now() + milliseconds(600));
  EXPECT_EQ(proposals, 0);  // the only fresh chunk's server was dropped
  ASSERT_EQ(acks.size(), 1u);  // ...but the server still got a lying ack
  EXPECT_EQ(acks[0].chunks, ChunkIdList{ChunkId{7}});
}

TEST(Mailer, AccountsMessagesAndBytesByKind) {
  sim::Simulator sim;
  sim::Network<Message> net(sim, Pcg32{907});
  sim::MetricsRegistry metrics;
  Mailer mailer(net, &metrics);
  sim::LinkProfile link;
  net.add_node(NodeId{0}, link, [](sim::Delivery<Message>) {});
  net.add_node(NodeId{1}, link, [](sim::Delivery<Message>) {});
  const Message propose{ProposeMsg{1, {ChunkId{1}, ChunkId{2}}}};
  mailer.send(NodeId{0}, NodeId{1}, sim::Channel::kDatagram, propose);
  mailer.send(NodeId{0}, NodeId{1}, sim::Channel::kDatagram, propose);
  mailer.send(NodeId{0}, NodeId{1}, sim::Channel::kDatagram,
              Message{BlameMsg{NodeId{5}, 2.0,
                               BlameReason::kDirectVerification}});
  EXPECT_EQ(metrics.value("sent.propose.count"), 2u);
  EXPECT_EQ(metrics.value("sent.propose.bytes"), 2 * wire_size(propose));
  EXPECT_EQ(metrics.value("sent.blame.count"), 1u);
  EXPECT_EQ(metrics.value("sent.serve.count"), 0u);
  EXPECT_TRUE(is_dissemination_kind("propose"));
  EXPECT_FALSE(is_dissemination_kind("blame"));
}

TEST(Playback, HealthCurveDetectsLaggards) {
  std::vector<ChunkMeta> emitted;
  DeliveryLog fast;
  DeliveryLog slow;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const ChunkMeta c{ChunkId{i}, 100, kSimEpoch + seconds(6.0 + 0.1 * static_cast<double>(i))};
    emitted.push_back(c);
    fast.record(c.id, c.emitted_at + seconds(1.0));
    slow.record(c.id, c.emitted_at + seconds(8.0));
  }
  const TimePoint end = kSimEpoch + seconds(40.0);
  PlaybackConfig cfg;
  cfg.warmup = seconds(5.0);
  const auto curve =
      health_curve(emitted, {&fast, &slow}, end, {2.0, 10.0}, cfg);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].fraction_clear, 0.5);  // only the fast node
  EXPECT_DOUBLE_EQ(curve[1].fraction_clear, 1.0);  // both within 10 s
}

TEST(Playback, MeanLag) {
  std::vector<ChunkMeta> emitted{{ChunkId{0}, 10, kSimEpoch},
                                 {ChunkId{1}, 10, kSimEpoch + seconds(1.0)}};
  DeliveryLog deliveries;
  deliveries.record(ChunkId{0}, kSimEpoch + seconds(2.0));
  deliveries.record(ChunkId{1}, kSimEpoch + seconds(2.0));
  EXPECT_DOUBLE_EQ(mean_delivery_lag(emitted, deliveries), 1.5);
}

TEST(StreamSource, EmitsAtConfiguredRate) {
  sim::Simulator sim;
  membership::Directory dir(2);
  sim::Network<Message> net(sim, Pcg32{904});
  Mailer mailer(net, nullptr);
  GossipParams params;
  params.emit_acks = false;
  Engine engine(sim, mailer, dir, NodeId{0}, params, BehaviorSpec::honest(),
                Pcg32{3}, nullptr);
  net.add_node(NodeId{0}, GossipFixture::perfect_link(),
               [](sim::Delivery<Message>) {});
  net.add_node(NodeId{1}, GossipFixture::perfect_link(),
               [](sim::Delivery<Message>) {});
  StreamSource::Params sp;
  sp.bitrate_bps = 674'000.0;
  sp.chunk_payload_bytes = 8'425;
  sp.duration = seconds(10.0);
  StreamSource source(sim, engine, sp);
  source.start();
  sim.run();
  // 674 kbps / 8425 B = 10 chunks/s for 10 s.
  EXPECT_EQ(source.emitted().size(), 100u);
  EXPECT_EQ(source.chunk_interval(), milliseconds(100));
  for (const auto& c : source.emitted()) {
    EXPECT_TRUE(engine.has_chunk(c.id));
  }
}

}  // namespace
}  // namespace lifting::gossip

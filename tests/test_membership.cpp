#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/rng.hpp"
#include "membership/directory.hpp"
#include "membership/rps.hpp"
#include "membership/sampler.hpp"
#include "stats/entropy.hpp"
#include "stats/summary.hpp"

namespace lifting::membership {
namespace {

TEST(Directory, StartsWithAllLive) {
  Directory dir(10);
  EXPECT_EQ(dir.live_count(), 10u);
  EXPECT_EQ(dir.initial_size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(dir.is_live(NodeId{i}));
  }
}

TEST(Directory, ExpelRemovesAndRecords) {
  Directory dir(5);
  dir.expel(NodeId{2});
  EXPECT_FALSE(dir.is_live(NodeId{2}));
  EXPECT_EQ(dir.live_count(), 4u);
  ASSERT_EQ(dir.expelled().size(), 1u);
  EXPECT_EQ(dir.expelled()[0], NodeId{2});
  dir.expel(NodeId{2});  // idempotent
  EXPECT_EQ(dir.live_count(), 4u);
  EXPECT_EQ(dir.expelled().size(), 1u);
}

TEST(Directory, PositionsStayConsistentAfterExpulsions) {
  Directory dir(20);
  dir.expel(NodeId{0});
  dir.expel(NodeId{19});
  dir.expel(NodeId{7});
  for (const auto id : dir.live()) {
    EXPECT_EQ(dir.live()[dir.position_of(id)], id);
  }
  EXPECT_EQ(dir.live_count(), 17u);
}

TEST(SampleUniform, DistinctAndExcludesSelf) {
  Directory dir(30);
  Pcg32 rng{11};
  for (int t = 0; t < 100; ++t) {
    const auto picks = sample_uniform(rng, dir, NodeId{5}, 7);
    ASSERT_EQ(picks.size(), 7u);
    std::set<NodeId> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 7u);
    EXPECT_FALSE(unique.contains(NodeId{5}));
    for (const auto p : picks) EXPECT_TRUE(dir.is_live(p));
  }
}

TEST(SampleUniform, CapsAtPopulation) {
  Directory dir(4);
  Pcg32 rng{12};
  const auto picks = sample_uniform(rng, dir, NodeId{0}, 10);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(SampleUniform, IsUniformOverCandidates) {
  Directory dir(20);
  Pcg32 rng{13};
  std::unordered_map<NodeId, int> counts;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    for (const auto p : sample_uniform(rng, dir, NodeId{3}, 4)) {
      ++counts[p];
    }
  }
  EXPECT_EQ(counts.find(NodeId{3}), counts.end());
  // Each of the 19 candidates appears with probability 4/19 per trial.
  for (const auto& [id, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 4.0 / 19.0, 0.015);
  }
}

TEST(SampleUniform, NeverPicksExpelled) {
  Directory dir(10);
  dir.expel(NodeId{4});
  Pcg32 rng{14};
  for (int t = 0; t < 200; ++t) {
    for (const auto p : sample_uniform(rng, dir, NodeId{0}, 5)) {
      EXPECT_NE(p, NodeId{4});
    }
  }
}

TEST(SampleBiased, HitsCoalitionAtRatePm) {
  Directory dir(200);
  Pcg32 rng{15};
  std::vector<NodeId> coalition;
  for (std::uint32_t i = 1; i <= 30; ++i) coalition.push_back(NodeId{i});
  int coalition_picks = 0;
  int total = 0;
  for (int t = 0; t < 4000; ++t) {
    const auto picks =
        sample_biased(rng, dir, NodeId{1}, 7, coalition, 0.5);
    ASSERT_EQ(picks.size(), 7u);
    std::set<NodeId> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), picks.size());
    for (const auto p : picks) {
      ++total;
      if (p != NodeId{1} &&
          std::find(coalition.begin(), coalition.end(), p) !=
              coalition.end()) {
        ++coalition_picks;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(coalition_picks) / total, 0.5, 0.03);
}

TEST(SampleBiased, ZeroBiasAvoidsCoalitionEntirely) {
  // §6.3.2's model: a slot picks a coalition member with probability p_m
  // and an honest node otherwise — at p_m = 0 the coalition is never hit
  // (the engine switches to the plain uniform sampler when bias is off).
  Directory dir(100);
  Pcg32 rng{16};
  std::vector<NodeId> coalition{NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4},
                                NodeId{5}};
  int coalition_picks = 0;
  for (int t = 0; t < 2000; ++t) {
    for (const auto p :
         sample_biased(rng, dir, NodeId{1}, 6, coalition, 0.0)) {
      if (std::find(coalition.begin(), coalition.end(), p) !=
          coalition.end()) {
        ++coalition_picks;
      }
    }
  }
  EXPECT_EQ(coalition_picks, 0);
}

TEST(SampleBiased, CoalitionSmallerThanFanoutFallsBack) {
  Directory dir(50);
  Pcg32 rng{17};
  std::vector<NodeId> coalition{NodeId{1}, NodeId{2}};
  const auto picks = sample_biased(rng, dir, NodeId{1}, 8, coalition, 1.0);
  ASSERT_EQ(picks.size(), 8u);
  std::set<NodeId> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
}

// ------------------------------------------------------------------- RPS

TEST(Rps, ViewsStayBoundedAndSelfFree) {
  RpsNetwork rps(200, 12, 6, 42);
  rps.run_rounds(20);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto& view = rps.view_of(NodeId{i});
    EXPECT_LE(view.size(), 12u);
    EXPECT_GE(view.size(), 6u);
    EXPECT_EQ(std::count(view.begin(), view.end(), NodeId{i}), 0)
        << "node " << i << " holds itself in its view";
    std::set<NodeId> unique(view.begin(), view.end());
    EXPECT_EQ(unique.size(), view.size()) << "duplicate view entries";
  }
}

TEST(Rps, InDegreeConcentratesAfterMixing) {
  RpsNetwork rps(300, 10, 5, 43);
  rps.run_rounds(30);
  const auto degrees = rps.in_degrees();
  lifting::stats::Summary s;
  for (const auto d : degrees) s.add(static_cast<double>(d));
  // Total pointers = n·view_size, so the mean in-degree is ~view_size;
  // after mixing the spread is tight (no starved or celebrity nodes).
  EXPECT_NEAR(s.mean(), 10.0, 1.0);
  EXPECT_GT(s.min(), 2.0);
  EXPECT_LT(s.max(), 25.0);
}

TEST(Rps, SamplingApproachesUniformAcrossRounds) {
  // Sample one peer per node per round, re-shuffling between rounds; the
  // aggregate distribution over targets approaches uniform.
  RpsNetwork rps(150, 10, 5, 44);
  rps.run_rounds(15);
  Pcg32 rng{45};
  std::vector<std::uint64_t> counts(150, 0);
  for (int round = 0; round < 60; ++round) {
    for (std::uint32_t i = 0; i < 150; ++i) {
      ++counts[rps.sample(NodeId{i}, rng).value()];
    }
    rps.run_round();
  }
  const double h = lifting::stats::shannon_entropy(counts);
  // Uniform over 150 targets would be log2(150) = 7.23; demand within
  // 2% of it.
  EXPECT_GT(h, 0.98 * std::log2(150.0));
}

TEST(Rps, HistoriesBuiltFromRpsPassTheGammaCheck) {
  // §5.3: "the peer selection service underlying the gossip protocol may
  // not be perfect, the threshold must be tolerant to small deviation".
  // Build n_h·f-entry histories by sampling from shuffling RPS views and
  // verify their entropy stays above a γ calibrated for full membership
  // minus a small tolerance.
  const std::uint32_t n = 500;
  RpsNetwork rps(n, 12, 6, 46);
  rps.run_rounds(20);
  Pcg32 rng{47};
  lifting::stats::Summary entropies;
  for (std::uint32_t node = 0; node < 40; ++node) {
    std::vector<NodeId> history;
    for (int period = 0; period < 30; ++period) {
      const auto picks = rps.sample_distinct(NodeId{node}, rng, 5);
      history.insert(history.end(), picks.begin(), picks.end());
      rps.run_round();
    }
    entropies.add(lifting::stats::multiset_entropy<NodeId>(
        {history.data(), history.size()}));
  }
  // Full-membership histories of 150 entries over 500 nodes measure ~7.0;
  // RPS sampling must stay within the tolerance band γ would use.
  EXPECT_GT(entropies.min(), 6.3);
}

// ----------------------------------------------------------- RPS + churn

TEST(Rps, LeaveDecaysFromAllViews) {
  RpsNetwork rps(120, 10, 5, 48);
  rps.run_rounds(10);
  rps.leave(NodeId{7});
  EXPECT_FALSE(rps.alive(NodeId{7}));
  EXPECT_TRUE(rps.view_of(NodeId{7}).empty());
  rps.run_rounds(10);
  // Stale entries are purged lazily during shuffles; after a few rounds no
  // live view references the dead node.
  const auto degrees = rps.in_degrees();
  EXPECT_EQ(degrees[7], 0u);
  for (std::uint32_t i = 0; i < 120; ++i) {
    if (i == 7) continue;
    const auto& view = rps.view_of(NodeId{i});
    EXPECT_EQ(std::count(view.begin(), view.end(), NodeId{7}), 0)
        << "node " << i << " still references the departed node";
  }
}

TEST(Rps, JoinSpreadsThroughShuffles) {
  RpsNetwork rps(120, 10, 5, 49);
  rps.run_rounds(10);
  rps.join(NodeId{120});
  EXPECT_TRUE(rps.alive(NodeId{120}));
  EXPECT_GE(rps.view_of(NodeId{120}).size(), 5u);  // bootstrapped view
  rps.run_rounds(12);
  const auto degrees = rps.in_degrees();
  // The joiner offers itself on every shuffle it initiates; after mixing
  // it is referenced like any other node.
  EXPECT_GT(degrees[120], 2u);
}

TEST(Rps, RejoinEpochPreventsStaleResurrection) {
  RpsNetwork rps(100, 8, 4, 50);
  rps.run_rounds(8);
  EXPECT_EQ(rps.epoch_of(NodeId{5}), 1u);
  rps.leave(NodeId{5});
  // Entries learned under epoch 1 are stale the moment the node rejoins as
  // epoch 2 — they cannot count for (or resurrect) the new incarnation.
  rps.join(NodeId{5});
  EXPECT_EQ(rps.epoch_of(NodeId{5}), 2u);
  EXPECT_TRUE(rps.alive(NodeId{5}));
  const auto degrees_now = rps.in_degrees();
  EXPECT_EQ(degrees_now[5], 0u) << "old-epoch entries counted for rejoiner";
  rps.run_rounds(12);
  const auto degrees_later = rps.in_degrees();
  EXPECT_GT(degrees_later[5], 2u) << "rejoiner failed to spread";
}

}  // namespace
}  // namespace lifting::membership

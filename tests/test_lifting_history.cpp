#include <gtest/gtest.h>

#include <vector>

#include "common/ring_log.hpp"
#include "lifting/history.hpp"

namespace lifting {
namespace {

TEST(SentProposalHistory, RecordsAndSnapshots) {
  SentProposalHistory history;
  history.record(kSimEpoch + seconds(1.0), 1, {NodeId{2}, NodeId{3}},
                 {ChunkId{10}});
  history.record(kSimEpoch + seconds(2.0), 2, {NodeId{4}}, {ChunkId{11}});
  EXPECT_EQ(history.size(), 2u);
  const auto snap = history.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].period, 1u);
  EXPECT_EQ(snap[0].partners.size(), 2u);
  EXPECT_EQ(snap[1].chunks, gossip::ChunkIdList{ChunkId{11}});
}

TEST(SentProposalHistory, PruneDropsOldEntriesOnly) {
  SentProposalHistory history;
  for (int i = 0; i < 10; ++i) {
    history.record(kSimEpoch + seconds(static_cast<double>(i)), i,
                   {NodeId{1}}, {ChunkId{static_cast<std::uint32_t>(i)}});
  }
  history.prune(kSimEpoch + seconds(5.0));
  EXPECT_EQ(history.size(), 5u);  // entries at t=5..9 survive
  EXPECT_EQ(history.snapshot().front().period, 5u);
}

TEST(ReceivedProposalLog, ConfirmsContainedChunksWithinWindow) {
  ReceivedProposalLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{7}, 3,
             {ChunkId{1}, ChunkId{2}, ChunkId{3}});
  // Subset of the proposal's chunks: confirmed.
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{1}, ChunkId{3}}, kSimEpoch));
  // Chunk never proposed: denied.
  EXPECT_FALSE(log.confirms(NodeId{7}, {ChunkId{9}}, kSimEpoch));
  // Wrong proposer: denied.
  EXPECT_FALSE(log.confirms(NodeId{8}, {ChunkId{1}}, kSimEpoch));
  // Entry older than the window: denied.
  EXPECT_FALSE(
      log.confirms(NodeId{7}, {ChunkId{1}}, kSimEpoch + seconds(2.0)));
}

TEST(ReceivedProposalLog, ConfirmSearchesAcrossMultipleProposals) {
  ReceivedProposalLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{7}, 1, {ChunkId{1}});
  log.record(kSimEpoch + seconds(2.0), NodeId{7}, 2, {ChunkId{2}});
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{1}}, kSimEpoch));
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{2}}, kSimEpoch));
  // Chunks split across two proposals: no single proposal contains both.
  EXPECT_FALSE(log.confirms(NodeId{7}, {ChunkId{1}, ChunkId{2}}, kSimEpoch));
}

TEST(ReceivedProposalLog, PruneRespectsTimeOrder) {
  ReceivedProposalLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{7}, 1, {ChunkId{1}});
  log.record(kSimEpoch + seconds(5.0), NodeId{7}, 2, {ChunkId{2}});
  log.prune(kSimEpoch + seconds(3.0));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_FALSE(log.confirms(NodeId{7}, {ChunkId{1}}, kSimEpoch));
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{2}}, kSimEpoch));
}

TEST(ConfirmAskerLog, CollectsAskersWithMultiplicity) {
  ConfirmAskerLog log;
  log.record(kSimEpoch, NodeId{5}, NodeId{1});
  log.record(kSimEpoch, NodeId{5}, NodeId{1});
  log.record(kSimEpoch, NodeId{5}, NodeId{2});
  log.record(kSimEpoch, NodeId{6}, NodeId{3});  // other subject
  const auto askers = log.askers_about(NodeId{5});
  ASSERT_EQ(askers.size(), 3u);
  EXPECT_EQ(std::count(askers.begin(), askers.end(), NodeId{1}), 2);
  EXPECT_EQ(std::count(askers.begin(), askers.end(), NodeId{2}), 1);
  EXPECT_TRUE(log.askers_about(NodeId{9}).empty());
}

TEST(RingLog, WrapAroundKeepsFifoOrderAcrossGrowth) {
  RingLog<int> ring;
  int next = 0;
  // Interleave pushes and pops so the live window straddles the physical
  // end of the buffer repeatedly while the ring grows past its initial
  // capacity.
  std::vector<int> expect_front;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) ring.push_slot() = next++;
    ring.pop_front();
  }
  // 150 pushed, 50 popped: [50, 150) survive, oldest first.
  ASSERT_EQ(ring.size(), 100u);
  EXPECT_EQ(ring.front(), 50);
  EXPECT_EQ(ring.back(), 149);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], 50 + static_cast<int>(i));
  }
}

TEST(RingLog, RecycledSlotsKeepPayloadCapacity) {
  RingLog<gossip::ChunkIdList> ring;
  std::vector<ChunkId> big;
  for (std::uint32_t i = 0; i < 100; ++i) big.push_back(ChunkId{i});
  // Fill past the inline capacity so the slot's list spills to the heap.
  ring.push_slot().assign(big.begin(), big.end());
  const auto spilled = ring.front().capacity();
  ASSERT_GE(spilled, 100u);
  ring.pop_front();
  // pop_front never destroys the slot; the next wrap-around push_slot
  // hands the same storage back (refill with assign, never operator=).
  for (std::size_t i = 0; i + 1 < ring.capacity(); ++i) {
    ring.push_slot().assign(big.begin(), big.begin() + 1);
    ring.pop_front();
  }
  gossip::ChunkIdList& recycled = ring.push_slot();
  EXPECT_GE(recycled.capacity(), spilled);
}

TEST(SentProposalHistory, RingRetentionUnderPeriodicPruning) {
  // Steady-state shape: one record per period, pruned to a fixed window —
  // the ring wraps many times and the window contents stay exact.
  SentProposalHistory history;
  const auto period = seconds(0.5);
  const auto window = seconds(5.0);
  for (int p = 0; p < 200; ++p) {
    const TimePoint now = kSimEpoch + p * period;
    history.record(now, static_cast<PeriodIndex>(p), {NodeId{1}, NodeId{2}},
                   {ChunkId{static_cast<std::uint32_t>(p)}});
    const TimePoint cutoff =
        now - std::min(now.time_since_epoch(), window);
    history.prune(cutoff);
    ASSERT_LE(history.size(), 11u);  // 5 s / 0.5 s + the fresh record
  }
  const auto snap = history.snapshot();
  ASSERT_EQ(snap.size(), 11u);
  EXPECT_EQ(snap.front().period, 189u);
  EXPECT_EQ(snap.back().period, 199u);
  EXPECT_EQ(snap.back().chunks, gossip::ChunkIdList{ChunkId{199}});
}

TEST(ReceivedProposalLog, WrapAroundConfirmsStayExact) {
  ReceivedProposalLog log;
  const auto period = seconds(0.5);
  for (int p = 0; p < 300; ++p) {
    const TimePoint now = kSimEpoch + p * period;
    log.record(now, NodeId{static_cast<std::uint32_t>(p % 5)},
               static_cast<PeriodIndex>(p),
               {ChunkId{static_cast<std::uint32_t>(p)}});
    log.prune(now - std::min(now.time_since_epoch(), seconds(2.0)));
  }
  // The prune cutoff trails the last record by 2 s, so the window is
  // [t=147.5, t=149.5]: periods 295..299 survive.
  EXPECT_FALSE(log.confirms(NodeId{0}, {ChunkId{290}}, kSimEpoch));
  EXPECT_TRUE(log.confirms(NodeId{295 % 5}, {ChunkId{295}}, kSimEpoch));
  EXPECT_TRUE(log.confirms(NodeId{299 % 5}, {ChunkId{299}}, kSimEpoch));
  // Wrong proposer for a surviving chunk: still denied after wraps.
  EXPECT_FALSE(log.confirms(NodeId{(295 % 5) + 1}, {ChunkId{295}},
                            kSimEpoch));
}

TEST(ConfirmAskerLog, PruneDropsOldAskers) {
  ConfirmAskerLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{5}, NodeId{1});
  log.record(kSimEpoch + seconds(4.0), NodeId{5}, NodeId{2});
  log.prune(kSimEpoch + seconds(2.0));
  const auto askers = log.askers_about(NodeId{5});
  ASSERT_EQ(askers.size(), 1u);
  EXPECT_EQ(askers[0], NodeId{2});
}

}  // namespace
}  // namespace lifting

#include <gtest/gtest.h>

#include "lifting/history.hpp"

namespace lifting {
namespace {

TEST(SentProposalHistory, RecordsAndSnapshots) {
  SentProposalHistory history;
  history.record(kSimEpoch + seconds(1.0), 1, {NodeId{2}, NodeId{3}},
                 {ChunkId{10}});
  history.record(kSimEpoch + seconds(2.0), 2, {NodeId{4}}, {ChunkId{11}});
  EXPECT_EQ(history.size(), 2u);
  const auto snap = history.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].period, 1u);
  EXPECT_EQ(snap[0].partners.size(), 2u);
  EXPECT_EQ(snap[1].chunks, gossip::ChunkIdList{ChunkId{11}});
}

TEST(SentProposalHistory, PruneDropsOldEntriesOnly) {
  SentProposalHistory history;
  for (int i = 0; i < 10; ++i) {
    history.record(kSimEpoch + seconds(static_cast<double>(i)), i,
                   {NodeId{1}}, {ChunkId{static_cast<std::uint64_t>(i)}});
  }
  history.prune(kSimEpoch + seconds(5.0));
  EXPECT_EQ(history.size(), 5u);  // entries at t=5..9 survive
  EXPECT_EQ(history.snapshot().front().period, 5u);
}

TEST(ReceivedProposalLog, ConfirmsContainedChunksWithinWindow) {
  ReceivedProposalLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{7}, 3,
             {ChunkId{1}, ChunkId{2}, ChunkId{3}});
  // Subset of the proposal's chunks: confirmed.
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{1}, ChunkId{3}}, kSimEpoch));
  // Chunk never proposed: denied.
  EXPECT_FALSE(log.confirms(NodeId{7}, {ChunkId{9}}, kSimEpoch));
  // Wrong proposer: denied.
  EXPECT_FALSE(log.confirms(NodeId{8}, {ChunkId{1}}, kSimEpoch));
  // Entry older than the window: denied.
  EXPECT_FALSE(
      log.confirms(NodeId{7}, {ChunkId{1}}, kSimEpoch + seconds(2.0)));
}

TEST(ReceivedProposalLog, ConfirmSearchesAcrossMultipleProposals) {
  ReceivedProposalLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{7}, 1, {ChunkId{1}});
  log.record(kSimEpoch + seconds(2.0), NodeId{7}, 2, {ChunkId{2}});
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{1}}, kSimEpoch));
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{2}}, kSimEpoch));
  // Chunks split across two proposals: no single proposal contains both.
  EXPECT_FALSE(log.confirms(NodeId{7}, {ChunkId{1}, ChunkId{2}}, kSimEpoch));
}

TEST(ReceivedProposalLog, PruneRespectsTimeOrder) {
  ReceivedProposalLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{7}, 1, {ChunkId{1}});
  log.record(kSimEpoch + seconds(5.0), NodeId{7}, 2, {ChunkId{2}});
  log.prune(kSimEpoch + seconds(3.0));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_FALSE(log.confirms(NodeId{7}, {ChunkId{1}}, kSimEpoch));
  EXPECT_TRUE(log.confirms(NodeId{7}, {ChunkId{2}}, kSimEpoch));
}

TEST(ConfirmAskerLog, CollectsAskersWithMultiplicity) {
  ConfirmAskerLog log;
  log.record(kSimEpoch, NodeId{5}, NodeId{1});
  log.record(kSimEpoch, NodeId{5}, NodeId{1});
  log.record(kSimEpoch, NodeId{5}, NodeId{2});
  log.record(kSimEpoch, NodeId{6}, NodeId{3});  // other subject
  const auto askers = log.askers_about(NodeId{5});
  ASSERT_EQ(askers.size(), 3u);
  EXPECT_EQ(std::count(askers.begin(), askers.end(), NodeId{1}), 2);
  EXPECT_EQ(std::count(askers.begin(), askers.end(), NodeId{2}), 1);
  EXPECT_TRUE(log.askers_about(NodeId{9}).empty());
}

TEST(ConfirmAskerLog, PruneDropsOldAskers) {
  ConfirmAskerLog log;
  log.record(kSimEpoch + seconds(1.0), NodeId{5}, NodeId{1});
  log.record(kSimEpoch + seconds(4.0), NodeId{5}, NodeId{2});
  log.prune(kSimEpoch + seconds(2.0));
  const auto askers = log.askers_about(NodeId{5});
  ASSERT_EQ(askers.size(), 1u);
  EXPECT_EQ(askers[0], NodeId{2});
}

}  // namespace
}  // namespace lifting

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "adversary/controller.hpp"
#include "adversary/strategy.hpp"
#include "runtime/experiment.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"

/// The adaptive adversary subsystem (src/adversary/, DESIGN.md §8):
/// inertness when unconfigured, the catalog contract, each strategy's
/// observable behavior (duty cycling, score-aware throttling, whitewashing
/// departures, coalition view pooling), the manager score-feedback channel,
/// and determinism of adversarial scenarios across thread counts and
/// Experiment::reset. The coalition cases also run under TSan in CI
/// (--gtest_filter=*Coalition*): coalition controllers share a hub inside
/// one Experiment, and nothing may be reachable from two Experiments.

namespace lifting::runtime {
namespace {

ScenarioConfig adversarial_config(adversary::Strategy strategy) {
  auto cfg = ScenarioConfig::small(80);
  cfg.seed = 0xADBE;
  cfg.duration = seconds(20.0);
  cfg.stream.duration = seconds(18.0);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  for (const auto& entry : adversary::catalog()) {
    if (entry.config.strategy == strategy) cfg.adversary = entry.config;
  }
  return cfg;
}

/// The frontier bench's accountability regime — the SAME deployment
/// (runtime::adversary_frontier_config), so the A/B asserted here and the
/// bench's printed frontier describe one scenario.
ScenarioConfig accountability_config(adversary::Strategy strategy,
                                     bool handoff_on,
                                     std::uint64_t rep = 0) {
  auto cfg = adversary_frontier_config(handoff_on,
                                       derive_task_seed(0xF407ULL, rep));
  for (const auto& entry : adversary::catalog()) {
    if (entry.config.strategy == strategy) cfg.adversary = entry.config;
  }
  return cfg;
}

/// Committed-indictment count over the adversaries (majority of managers
/// hold the expulsion mark — the latch that blocks rejoins).
std::size_t indicted_count(Experiment& ex) {
  std::size_t caught = 0;
  for (const auto id : ex.freerider_ids()) {
    if (ex.majority_expelled(id)) ++caught;
  }
  return caught;
}

TEST(Adversary, InertWhenNoStrategyConfigured) {
  // Strategy::kNone must not build controllers, draw rng streams or
  // schedule events — runs are bit-identical to the pre-subsystem world
  // (the fixed-seed goldens in tests/test_determinism.cpp pin that against
  // history; here we pin the structural half).
  auto cfg = adversarial_config(adversary::Strategy::kNone);
  ASSERT_FALSE(cfg.adversary.enabled());
  Experiment ex(cfg);
  ex.run();
  EXPECT_EQ(ex.adversary_stats().adversaries, 0u);
  for (std::uint32_t i = 0; i < ex.population(); ++i) {
    EXPECT_EQ(ex.adversary_controller(NodeId{i}), nullptr);
  }
}

TEST(Adversary, CatalogOrderAndConfigsAreStable) {
  // The sweep's deterministic draws and the frontier bench's task grid
  // depend on the catalog order; every entry must be valid and enabled.
  const auto& entries = adversary::catalog();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].config.strategy, adversary::Strategy::kOscillate);
  EXPECT_EQ(entries[1].config.strategy, adversary::Strategy::kScoreAware);
  EXPECT_EQ(entries[2].config.strategy, adversary::Strategy::kWhitewash);
  EXPECT_EQ(entries[3].config.strategy, adversary::Strategy::kCoalition);
  for (const auto& entry : entries) {
    SCOPED_TRACE(entry.name);
    EXPECT_TRUE(entry.config.enabled());
    EXPECT_NE(entry.name, nullptr);
    EXPECT_NE(entry.paper_ref, nullptr);
    EXPECT_NO_THROW(entry.config.validate());
    EXPECT_STREQ(adversary::strategy_name(entry.config.strategy),
                 entry.name);
  }
}

TEST(Adversary, OscillatorRealizesTheDutyCycle) {
  // duty_on == duty_off => the realized gain integrates to about half the
  // full-throttle gain, through real set_behavior mutations.
  auto cfg = adversarial_config(adversary::Strategy::kOscillate);
  Experiment ex(cfg);
  ex.run();
  const auto stats = ex.adversary_stats();
  ASSERT_GT(stats.adversaries, 0u);
  const double full = cfg.freerider_behavior.gain();
  EXPECT_GT(stats.mean_realized_gain, 0.3 * full);
  EXPECT_LT(stats.mean_realized_gain, 0.7 * full);
  // Every adversary flips behavior repeatedly over 20 s of 3 s+3 s cycles.
  EXPECT_GE(stats.behavior_switches, 2 * stats.adversaries);
  EXPECT_EQ(stats.probes, 0u);  // oscillation needs no feedback channel
}

TEST(Adversary, ScoreAwareThrottlerStaysOutOfExpulsionTrouble) {
  // The throttler probes its own standing through the managers and backs
  // off near η: it must end up with far fewer committed indictments than a
  // static freerider of the same Δ, while still freeriding part-time.
  Experiment throttled(
      accountability_config(adversary::Strategy::kScoreAware, true));
  throttled.run();
  Experiment reference(
      accountability_config(adversary::Strategy::kNone, true));
  reference.run();

  const auto stats = throttled.adversary_stats();
  ASSERT_GT(stats.adversaries, 0u);
  EXPECT_GT(stats.probes, 0u) << "no score feedback ever arrived";
  EXPECT_GT(stats.behavior_switches, 0u) << "never throttled";
  EXPECT_GT(stats.mean_realized_gain, 0.0);
  EXPECT_LT(indicted_count(throttled), indicted_count(reference))
      << "score-aware throttling did not reduce committed expulsions";
  // The feedback channel is real protocol traffic: score queries fanned
  // out to the managers.
  EXPECT_GT(throttled.metrics().value("sent.score_query.count"), 0u);
}

TEST(Adversary, ProbeReportsExpelledHintAndReplies) {
  // Direct probe-channel check: an honest agent's probe about a clean node
  // reports replies and no expulsion hint.
  auto cfg = accountability_config(adversary::Strategy::kNone, true);
  Experiment ex(cfg);
  ex.run_until(kSimEpoch + seconds(5.0));
  // The frontier scenario churns (burst + Poisson), so pick a prober and a
  // subject that are honest and still present.
  std::vector<NodeId> live;
  for (std::uint32_t i = 1; i < cfg.nodes && live.size() < 2; ++i) {
    const NodeId id{i};
    if (!ex.is_departed(id) && !ex.is_freerider(id)) live.push_back(id);
  }
  ASSERT_EQ(live.size(), 2u);
  bool done = false;
  lifting::Agent::ScoreFeedback feedback;
  ex.agent(live[0]).probe_score(live[1],
                                [&](const lifting::Agent::ScoreFeedback& f) {
                                  feedback = f;
                                  done = true;
                                });
  ex.run_until(kSimEpoch + seconds(6.0));
  ASSERT_TRUE(done) << "probe deadline never fired";
  EXPECT_GE(feedback.replies, cfg.lifting.min_score_replies);
  EXPECT_FALSE(feedback.expelled_hint);
  EXPECT_TRUE(std::isfinite(feedback.score));
}

TEST(Adversary, WhitewasherBouncesAndEvadesWithoutHandoff) {
  // The ROADMAP's timed-departure adversary: with manager handoff off it
  // flees before expulsions commit, rejoins with fresh scores, and ends up
  // with far fewer committed indictments than a static freerider.
  Experiment whitewash(
      accountability_config(adversary::Strategy::kWhitewash, false));
  whitewash.run();
  Experiment reference(
      accountability_config(adversary::Strategy::kNone, false));
  reference.run();

  const auto stats = whitewash.adversary_stats();
  ASSERT_GT(stats.adversaries, 0u);
  EXPECT_GT(stats.bounces, stats.adversaries)
      << "whitewashers never cycled leave/rejoin";
  EXPECT_FALSE(whitewash.rejoins().empty());
  EXPECT_LT(indicted_count(whitewash) * 2, indicted_count(reference))
      << "whitewashing did not evade the static detection rate";
}

TEST(Adversary, ExpulsionHandoffCutsTheWhitewashEdge) {
  // The frontier bench's A/B at test scale: manager handoff + expulsion
  // handoff keep the quorums (and their ledger rows) intact, so committed
  // indictments land during the lay-low window and the latch blocks the
  // rejoin — whitewashers get caught measurably more often than in the
  // no-handoff baseline.
  Experiment without(
      accountability_config(adversary::Strategy::kWhitewash, false));
  without.run();
  Experiment with(
      accountability_config(adversary::Strategy::kWhitewash, true));
  with.run();
  EXPECT_GT(indicted_count(with), indicted_count(without))
      << "handoff + expulsion handoff did not improve whitewash capture";
}

TEST(Adversary, CoalitionRecruitsJoinersAsViewsCatchUp) {
  // Coalition coordinator under divergent views: a freerider joiner must
  // end up in the cover-up set of base colluders — the pooled, view-lag-
  // aware coalition the static CollusionSpec cannot express.
  auto cfg = adversarial_config(adversary::Strategy::kCoalition);
  cfg.view_propagation = milliseconds(800);
  cfg.timeline.join_at(seconds(5.0), cfg.freerider_behavior,
                       /*freerider=*/true);
  Experiment ex(cfg);
  ex.run();
  const NodeId joiner{cfg.nodes};  // first fresh id
  ASSERT_FALSE(ex.joins().empty());
  ASSERT_TRUE(ex.is_freerider(joiner));
  std::size_t recruiters = 0;
  for (const auto id : ex.freerider_ids()) {
    if (id == joiner) continue;
    const auto& behavior = ex.engine(id).behavior();
    if (behavior.collusion.has_value() &&
        behavior.collusion->contains(joiner)) {
      ++recruiters;
    }
  }
  EXPECT_GT(recruiters, 0u) << "no base colluder ever recruited the joiner";
  // The joiner's own controller also folds into the coalition.
  ASSERT_NE(ex.adversary_controller(joiner), nullptr);
}

TEST(Adversary, CoalitionDropsDepartedMembersAfterIntelExpires) {
  // A colluder that leaves must fall out of the pooled cover-up sets once
  // no coalition member has seen it within the intel window.
  auto cfg = adversarial_config(adversary::Strategy::kCoalition);
  cfg.view_propagation = milliseconds(500);
  const NodeId leaver =
      Experiment::derive_freerider_ids(cfg.seed, cfg.nodes,
                                       cfg.freerider_fraction)
          .front();
  cfg.timeline.leave_at(seconds(10.0), leaver);
  Experiment ex(cfg);
  ex.run();
  for (const auto id : ex.freerider_ids()) {
    if (id == leaver || ex.is_departed(id)) continue;
    const auto& behavior = ex.engine(id).behavior();
    if (!behavior.collusion.has_value()) continue;
    EXPECT_FALSE(behavior.collusion->contains(leaver))
        << "colluder " << id.value()
        << " still covers for a member gone for 10 s";
  }
}

TEST(Adversary, CoalitionAndWhitewashScenariosAreThreadInvariant) {
  // Adversarial runs on the ParallelRunner must stay bit-identical at any
  // thread count (and across Experiment::reset lane reuse) — controllers,
  // hubs and probe callbacks live strictly inside one Experiment. This is
  // the case the TSan CI job runs.
  std::vector<RunSpec> specs;
  for (std::uint64_t rep = 0; rep < 2; ++rep) {
    auto coalition =
        accountability_config(adversary::Strategy::kCoalition, true, rep);
    specs.emplace_back(coalition, coalition.seed, "coalition");
    auto whitewash =
        accountability_config(adversary::Strategy::kWhitewash, true, rep);
    specs.emplace_back(whitewash, whitewash.seed, "whitewash");
  }
  ParallelRunner serial(1);
  const auto reference = serial.run_digests(specs);
  for (const unsigned threads : {2u, 4u}) {
    ParallelRunner runner(threads);
    const auto digests = runner.run_digests(specs);
    ASSERT_EQ(reference.size(), digests.size());
    for (std::size_t i = 0; i < digests.size(); ++i) {
      EXPECT_EQ(reference[i], digests[i])
          << "spec " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(Adversary, FrontierBurstDrainsOnlyHonestNodes) {
  // adversary_frontier_config targets its honest-departure burst via
  // Experiment::derive_freerider_ids; this pins that the standalone
  // derivation matches what a built deployment actually flags (the burst
  // must never drain adversaries — that would change the A/B's question).
  const auto cfg =
      adversary_frontier_config(true, derive_task_seed(0xF407ULL, 0));
  Experiment ex(cfg);  // roles derived by the experiment itself
  EXPECT_EQ(Experiment::derive_freerider_ids(cfg.seed, cfg.nodes,
                                             cfg.freerider_fraction),
            ex.freerider_ids());
  std::size_t burst_leaves = 0;
  for (const auto& event : cfg.timeline.events()) {
    if (event.kind != ScenarioEventKind::kLeave) continue;
    if (event.at > seconds(2.6)) continue;  // Poisson churn starts at 3 s
    ++burst_leaves;
    EXPECT_FALSE(ex.is_freerider(event.node))
        << "burst drained adversary " << event.node.value();
  }
  EXPECT_GT(burst_leaves, cfg.nodes / 4);
}

TEST(Adversary, SweepDrawsCatalogStrategiesDeterministically) {
  // The randomized sweep arms catalog strategies from per-case rng streams:
  // deterministic per case, present in a nontrivial fraction, and the
  // historical case prefix (population, Δ, loss, churn fields) unchanged.
  const auto cases = scenario_sweep_cases(24);
  const auto again = scenario_sweep_cases(24);
  std::size_t armed = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(cases[i].config.adversary.strategy,
              again[i].config.adversary.strategy);
    EXPECT_NO_THROW(cases[i].config.validate());
    if (cases[i].config.adversary.enabled()) ++armed;
  }
  EXPECT_GT(armed, 0u);
  EXPECT_LT(armed, cases.size());
}

}  // namespace
}  // namespace lifting::runtime

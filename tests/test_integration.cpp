#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/entropy_model.hpp"
#include "runtime/experiment.hpp"
#include "stats/summary.hpp"

/// End-to-end integration: full deployments exercising the attack/defense
/// interplay the paper describes — colluding cover-ups fooling the direct
/// cross-check, audits catching biased selection and MITM trails, and the
/// blame pipeline's behavior under loss.

namespace lifting::runtime {
namespace {

ScenarioConfig collusion_config(std::uint32_t nodes) {
  auto cfg = ScenarioConfig::small(nodes);
  cfg.duration = seconds(40.0);
  cfg.stream.duration = seconds(38.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior.delta_propose = 0.3;
  gossip::CollusionSpec collusion;
  collusion.bias_pm = 0.6;
  collusion.mitm = true;
  collusion.cover_up = true;
  cfg.freerider_behavior.collusion = collusion;
  return cfg;
}

TEST(Integration, CoverUpsSuppressScoreBlamesAgainstCoalition) {
  // Without audits, a MITM coalition keeps its members' blames close to
  // honest levels (§5.2: the direct cross-check alone is fooled) — compare
  // against the same freeriding without collusion.
  auto covered = collusion_config(80);
  covered.lifting.audit_probability = 0.0;
  Experiment with_cover(covered);
  with_cover.run();

  auto uncovered = covered;
  uncovered.freerider_behavior.collusion.reset();
  Experiment without_cover(uncovered);
  without_cover.run();

  double covered_blame = 0.0;
  for (const auto id : with_cover.freerider_ids()) {
    covered_blame += with_cover.ledger().total(id);
  }
  covered_blame /= static_cast<double>(with_cover.freerider_ids().size());
  double uncovered_blame = 0.0;
  for (const auto id : without_cover.freerider_ids()) {
    uncovered_blame += without_cover.ledger().total(id);
  }
  uncovered_blame /=
      static_cast<double>(without_cover.freerider_ids().size());
  EXPECT_LT(covered_blame, 0.6 * uncovered_blame)
      << "cover-up should suppress most cross-check blames";
}

TEST(Integration, AuditsCatchColludersThatFooledCrossChecking) {
  auto cfg = collusion_config(100);
  cfg.lifting.audit_probability = 0.04;
  cfg.lifting.audit_warmup_periods = 32;
  cfg.lifting.history_window = seconds(15.0);
  cfg.lifting.gamma = 5.0;  // between honest ~5.95 and coalition ~3.2
  cfg.lifting.min_fanin_samples = 100000;  // small-scale: fanout check only
  cfg.expulsion_enabled = true;
  Experiment ex(cfg);
  ex.run();

  // Every expulsion stems from an entropy audit and hits only freeriders.
  ASSERT_FALSE(ex.expulsions().empty());
  for (const auto& rec : ex.expulsions()) {
    EXPECT_TRUE(rec.from_audit);
    EXPECT_TRUE(rec.was_freerider)
        << "honest node " << rec.victim.value() << " expelled by audit";
  }
  // Audited coalition histories show coalition-capped entropy.
  for (const auto& report : ex.audit_reports()) {
    if (ex.is_freerider(report.subject) && report.history_entries > 10) {
      EXPECT_LT(report.fanout_entropy, 4.0);
    }
  }
}

TEST(Integration, HonestAuditsPassEntropyChecks) {
  auto cfg = ScenarioConfig::small(100);
  cfg.duration = seconds(40.0);
  cfg.stream.duration = seconds(38.0);
  cfg.lifting.audit_probability = 0.05;
  cfg.lifting.audit_warmup_periods = 32;
  cfg.lifting.history_window = seconds(15.0);
  cfg.lifting.gamma = 5.0;
  cfg.lifting.min_fanin_samples = 100000;
  cfg.expulsion_enabled = true;
  Experiment ex(cfg);
  ex.run();
  ASSERT_GT(ex.audit_reports().size(), 20u);
  for (const auto& report : ex.audit_reports()) {
    EXPECT_FALSE(report.fanout_check_failed)
        << "honest node " << report.subject.value() << " failed the audit "
        << "with entropy " << report.fanout_entropy;
  }
  EXPECT_TRUE(ex.expulsions().empty());
}

TEST(Integration, BiasedSelectionAboveEq7BoundFailsTheAudit) {
  // Eq. 7 cross-validation at system level: the coalition biases partner
  // selection to p_m far above p*_m for the deployment's γ; audited
  // histories must fail the entropy check.
  auto cfg = collusion_config(100);
  cfg.freerider_behavior.collusion->mitm = false;  // isolate the bias attack
  // p_m far above the Eq. 7 bound for γ=5.0 at this history size
  // (p* ≈ 0.7 for m'=9, N≈120): biased histories land at ~4.3 bits.
  cfg.freerider_behavior.collusion->bias_pm = 0.85;
  cfg.lifting.audit_probability = 0.05;
  cfg.lifting.audit_warmup_periods = 32;
  cfg.lifting.history_window = seconds(15.0);
  cfg.lifting.gamma = 5.0;
  cfg.lifting.min_fanin_samples = 100000;
  Experiment ex(cfg);
  ex.run();

  std::size_t coalition_audits = 0;
  for (const auto& report : ex.audit_reports()) {
    if (!ex.is_freerider(report.subject) || report.history_entries < 10) {
      continue;
    }
    ++coalition_audits;
    EXPECT_TRUE(report.fanout_check_failed)
        << "biased node passed with entropy " << report.fanout_entropy;
  }
  EXPECT_GT(coalition_audits, 0u);
}

TEST(Integration, LossyNetworkCompensationKeepsHonestNearZero) {
  auto cfg = ScenarioConfig::small(80);
  cfg.duration = seconds(30.0);
  cfg.stream.duration = seconds(28.0);
  cfg.link.loss = 0.03;
  cfg.lifting.loss_estimate = 0.059;  // pairwise: 1-(1-0.03)^2
  // The small preset's interaction density is below the §6 model just like
  // the PlanetLab one; measure-and-calibrate as an operator would.
  cfg.lifting.compensation_factor = 0.4;
  Experiment ex(cfg);
  ex.run();
  const auto snap = ex.snapshot_scores();
  stats::Summary honest;
  for (const auto s : snap.honest) honest.add(s);
  // Within a few score points of zero — and crucially not systematically
  // below the uncompensated blame level (~ -3/period·r uncompensated).
  EXPECT_GT(honest.mean(), -2.0);
  EXPECT_LT(honest.mean(), 2.0);
}

TEST(Integration, ExpelledNodesStopReceivingService) {
  auto cfg = ScenarioConfig::small(60);
  cfg.duration = seconds(35.0);
  cfg.stream.duration = seconds(33.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.6);
  cfg.expulsion_enabled = true;
  cfg.lifting.eta = -4.0;
  cfg.lifting.score_check_probability = 0.5;
  Experiment ex(cfg);
  ex.run();
  ASSERT_FALSE(ex.expulsions().empty());
  const auto victim = ex.expulsions().front().victim;
  const double expelled_at = ex.expulsions().front().at_seconds;
  // The victim's chunk deliveries essentially stop after expulsion.
  std::size_t late_deliveries = 0;
  for (const auto& [chunk, at] : ex.engine(victim).delivery_times()) {
    if (to_seconds(at) > expelled_at + 2.0) ++late_deliveries;
  }
  const double remaining_seconds =
      to_seconds(cfg.stream.duration) - (expelled_at + 2.0);
  if (remaining_seconds > 5.0) {
    // Healthy nodes receive ~5 chunks/s in this scenario; the victim gets
    // (almost) none.
    EXPECT_LT(static_cast<double>(late_deliveries),
              remaining_seconds * 1.0);
  }
}

TEST(Integration, GossipPeriodStretchingReducesProposalRate) {
  // Attack (iv): a node stretching Tg proposes less often; its audit
  // history holds fewer records than n_h.
  auto cfg = ScenarioConfig::small(60);
  cfg.duration = seconds(30.0);
  cfg.stream.duration = seconds(28.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior.period_stretch = 1.0;  // gossips every 2·Tg
  Experiment ex(cfg);
  ex.run();
  stats::Summary honest_props;
  stats::Summary cheat_props;
  for (std::uint32_t i = 1; i < cfg.nodes; ++i) {
    const NodeId id{i};
    const auto count =
        static_cast<double>(ex.engine(id).stats().proposals_sent);
    (ex.is_freerider(id) ? cheat_props : honest_props).add(count);
  }
  // Stretch factor 2 halves the *opportunities*; honest nodes skip the
  // occasional empty phase, so compare against both the honest rate and
  // the absolute phase budget (~29 phases in 29 s of doubled periods).
  EXPECT_LT(cheat_props.mean(), 0.75 * honest_props.mean());
  EXPECT_NEAR(cheat_props.mean(), 29.0, 4.0);
}

}  // namespace
}  // namespace lifting::runtime

#include <gtest/gtest.h>

#include <set>

#include "analysis/formulas.hpp"
#include "lifting/managers.hpp"

namespace lifting {
namespace {

LiftingParams test_params() {
  LiftingParams p;
  p.fanout = 12;
  p.period = milliseconds(500);
  p.nominal_request_size = 4;
  p.loss_estimate = 0.07;
  p.managers = 25;
  p.history_window = seconds(25.0);
  return p;
}

TEST(ManagerAssignment, DeterministicAndExcludesTarget) {
  const auto a = managers_of(NodeId{17}, 300, 25, 999);
  const auto b = managers_of(NodeId{17}, 300, 25, 999);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 25u);
  std::set<NodeId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 25u);
  EXPECT_FALSE(unique.contains(NodeId{17}));
}

TEST(ManagerAssignment, DifferentTargetsDifferentManagers) {
  const auto a = managers_of(NodeId{1}, 300, 25, 999);
  const auto b = managers_of(NodeId{2}, 300, 25, 999);
  EXPECT_NE(a, b);
}

TEST(ManagerAssignment, CapsAtPopulation) {
  const auto mgrs = managers_of(NodeId{3}, 10, 25, 1);
  EXPECT_EQ(mgrs.size(), 9u);
}

TEST(ManagerStore, FreshNodeScoresZero) {
  ManagerStore store(test_params(), kSimEpoch);
  const auto now = kSimEpoch + seconds(25.0);  // r = 50
  // No blames: compensation makes the normalized score positive (the node
  // beat the loss expectation) — definitely not below any negative η.
  EXPECT_GT(store.normalized_score(NodeId{1}, now), 0.0);
}

TEST(ManagerStore, ScoreMatchesEq6) {
  const auto params = test_params();
  ManagerStore store(params, kSimEpoch);
  const double b_tilde = analysis::expected_wrongful_blame(params.model());
  const auto now = kSimEpoch + params.period * 50;  // r = 50
  // Apply exactly the expected wrongful blame each period: s must be 0.
  store.apply_blame(NodeId{1}, 50.0 * b_tilde,
                    gossip::BlameReason::kDirectVerification);
  EXPECT_NEAR(store.normalized_score(NodeId{1}, now), 0.0, 1e-9);
  // A freerider collecting twice the expectation lands at -b̃.
  store.apply_blame(NodeId{2}, 100.0 * b_tilde,
                    gossip::BlameReason::kTestimony);
  EXPECT_NEAR(store.normalized_score(NodeId{2}, now), -b_tilde, 1e-9);
}

TEST(ManagerStore, ApccBlamesCompensatedByEq4) {
  const auto params = test_params();
  ManagerStore store(params, kSimEpoch);
  const double apcc_expected = analysis::expected_blame_apcc(
      params.model(), params.history_periods());
  EXPECT_NEAR(apcc_expected, 0.07 * 50 * 12, 1e-9);
  const auto now = kSimEpoch + params.period * 50;
  const double before = store.normalized_score(NodeId{1}, now);
  // An audit reporting exactly the expected number of loss-induced denials
  // must not move the score.
  store.apply_blame(NodeId{1}, apcc_expected,
                    gossip::BlameReason::kAposterioriCheck);
  EXPECT_NEAR(store.normalized_score(NodeId{1}, now), before, 1e-9);
  // Anything beyond the expectation costs score one-for-one.
  store.apply_blame(NodeId{1}, apcc_expected + 50.0,
                    gossip::BlameReason::kAposterioriCheck);
  EXPECT_NEAR(store.normalized_score(NodeId{1}, now), before - 1.0, 1e-9);
}

TEST(ManagerStore, PeriodsClampToOne) {
  ManagerStore store(test_params(), kSimEpoch);
  EXPECT_DOUBLE_EQ(store.periods_in_system(kSimEpoch), 1.0);
  EXPECT_DOUBLE_EQ(
      store.periods_in_system(kSimEpoch + milliseconds(100)), 1.0);
  EXPECT_DOUBLE_EQ(store.periods_in_system(kSimEpoch + seconds(5.0)), 10.0);
}

TEST(ManagerStore, ExpulsionIsSticky) {
  ManagerStore store(test_params(), kSimEpoch);
  EXPECT_FALSE(store.expelled(NodeId{4}));
  EXPECT_TRUE(store.mark_expelled(NodeId{4}));
  EXPECT_FALSE(store.mark_expelled(NodeId{4}));  // second mark not "first"
  EXPECT_TRUE(store.expelled(NodeId{4}));
}

TEST(ManagerStore, NormalizationDilutesOldBlames) {
  const auto params = test_params();
  ManagerStore store(params, kSimEpoch);
  store.apply_blame(NodeId{1}, 500.0, gossip::BlameReason::kInvalidAck);
  const double early =
      store.normalized_score(NodeId{1}, kSimEpoch + params.period * 10);
  const double late =
      store.normalized_score(NodeId{1}, kSimEpoch + params.period * 100);
  // The same absolute blame weighs less once amortized over more periods.
  EXPECT_LT(early, late);
}

}  // namespace
}  // namespace lifting

/// Parameter tuning with the analytical model (paper §6): pick η from a
/// false-positive budget and predict detection across freeriding degrees —
/// "a theoretical analysis that allows system designers to set parameters
/// to their optimal values" (§9).
///
///   $ ./parameter_tuning

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/table.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace lifting;
  using namespace lifting::analysis;

  // Deployment parameters (the paper's §6 setting).
  const ProtocolModel model{0.07, 12, 4, 1.0};
  const std::uint32_t r = 50;  // periods a node has been in the system

  const double b_tilde = expected_wrongful_blame(model);
  const double sigma = std::sqrt(variance_wrongful_blame(model));
  std::printf("expected wrongful blame per period b~ = %.2f (Eq. 5)\n",
              b_tilde);
  std::printf("sigma(b) = %.2f (closed form, cf. paper's empirical 25.6)\n\n",
              sigma);

  // Two ways to choose η for a 1% false-positive budget after r periods:
  //  (a) Chebyshev (distribution-free, conservative):
  //      beta <= sigma² / (r·eta²)  =>  |eta| >= sigma / sqrt(r·beta);
  //  (b) empirical (the paper's approach): the 1% quantile of simulated
  //      honest scores.
  const double beta_budget = 0.01;
  const double eta_cheb =
      -sigma / std::sqrt(static_cast<double>(r) * beta_budget);
  BlameSampler sampler(model);
  Pcg32 rng{5150};
  std::vector<double> honest_scores;
  for (int i = 0; i < 4000; ++i) {
    honest_scores.push_back(
        sampler.sample_score(rng, FreeriderDegree{}, r));
  }
  std::sort(honest_scores.begin(), honest_scores.end());
  const double eta = honest_scores[honest_scores.size() / 100];
  std::printf("for beta <= %.0f%% after r=%u periods:\n", beta_budget * 100,
              r);
  std::printf("  Chebyshev bound (conservative): eta = %.2f\n", eta_cheb);
  std::printf("  empirical 1%% quantile:          eta = %.2f\n", eta);
  std::printf("(the paper picks eta = -9.75 from its simulated curves)\n\n");

  // Predict detection across degrees with both the bound and Monte-Carlo.
  TextTable table({"delta", "gain", "alpha bound", "alpha (MC)", "beta (MC)"});
  for (const double delta : {0.02, 0.035, 0.05, 0.10, 0.15}) {
    const auto d = FreeriderDegree::uniform(delta);
    stats::Summary per_period;
    for (int i = 0; i < 20000; ++i) {
      per_period.add(sampler.sample_period(rng, d));
    }
    const double excess = expected_blame_freerider(model, d) - b_tilde;
    const double alpha_bound =
        detection_bound(excess, per_period.stddev(), eta, r);
    const auto mc = estimate_detection(sampler, d, eta, r, 1200, rng);
    table.add_row({TextTable::num(delta, 3), TextTable::num(d.gain(), 3),
                   TextTable::num(alpha_bound, 3),
                   TextTable::num(mc.detection, 3),
                   TextTable::num(mc.false_positive, 3)});
  }
  table.print();
  std::printf("\nLesson: a freerider aiming for ~10%% bandwidth savings "
              "(delta=0.035)\nis caught about half the time every %u periods "
              "— and detection compounds.\n", r);
  return 0;
}

/// Colluding freeriders vs the entropy audit (paper §5.3 / §6.3.2).
///
///   $ ./collusion_audit
///
/// A coalition biases partner selection toward itself (p_m) and mounts the
/// man-in-the-middle cover-up of Fig. 8b. Direct cross-checking alone is
/// fooled; the local-history audit catches both the bias (fanout entropy)
/// and the MITM (fanin entropy over the confirm-asker trail F'_h).

#include <cstdio>

#include "analysis/entropy_model.hpp"
#include "runtime/experiment.hpp"

int main() {
  using namespace lifting;

  auto cfg = runtime::ScenarioConfig::small(100);
  cfg.duration = seconds(40.0);
  cfg.stream.duration = seconds(38.0);
  cfg.freerider_fraction = 0.10;
  // The coalition: biased selection + MITM cover-up, mild freeriding.
  cfg.freerider_behavior.delta_propose = 0.3;
  gossip::CollusionSpec collusion;
  collusion.bias_pm = 0.6;
  collusion.mitm = true;
  collusion.cover_up = true;
  cfg.freerider_behavior.collusion = collusion;
  // Audits on: every node audits a random peer ~ once per 25 periods.
  cfg.lifting.audit_probability = 0.04;
  cfg.lifting.audit_warmup_periods = 32;
  cfg.lifting.history_window = seconds(15.0);  // n_h·f = 150 entries
  // Honest uniform histories measure ~5.95 bits of fanout entropy
  // ([5.74, 6.20] across audits: ~23 proposals x f=5 partners drawn from 99
  // peers); the coalition's MITM histories claim coalition partners and cap
  // at log2(coalition) ~ 3.2. γ = 5.0 splits the two decisively.
  cfg.lifting.gamma = 5.0;
  // The fanin (F'_h) check needs fanin populations ~n_h·f to share γ with
  // the fanout check (the paper's regime, exercised by bench_fig13/fig14);
  // at 100 nodes with ~2 servers/period the honest F'_h support is too
  // small for that γ, so this example relies on the fanout check + the
  // a-posteriori cross-check.
  cfg.lifting.min_fanin_samples = 100000;
  cfg.expulsion_enabled = true;

  // What does the theory predict? Eq. 7: the maximum bias that passes.
  const auto nh_f = cfg.lifting.history_periods() * cfg.lifting.fanout;
  const double p_star = analysis::max_undetected_bias(
      cfg.lifting.gamma, static_cast<std::uint32_t>(cfg.nodes * 0.10), nh_f);
  std::printf("coalition of %d, history of %u entries, gamma=%.2f\n",
              static_cast<int>(cfg.nodes * 0.10), nh_f, cfg.lifting.gamma);
  std::printf("Eq. 7: max undetected bias p*_m = %.2f; coalition uses %.2f\n\n",
              p_star, collusion.bias_pm);

  runtime::Experiment ex(cfg);
  ex.run();

  std::size_t audit_expulsions = 0;
  std::size_t score_expulsions = 0;
  for (const auto& rec : ex.expulsions()) {
    (rec.from_audit ? audit_expulsions : score_expulsions)++;
    std::printf("expelled node %3u at t=%.1fs via %s (%s)\n",
                rec.victim.value(), rec.at_seconds,
                rec.from_audit ? "entropy audit" : "score threshold",
                rec.was_freerider ? "freerider" : "HONEST");
  }
  std::printf("\naudits completed: %zu; expulsions: %zu by audit, %zu by "
              "score\n",
              ex.audit_reports().size(), audit_expulsions, score_expulsions);

  double failed_entropy = 0;
  for (const auto& report : ex.audit_reports()) {
    if (report.fanout_check_failed || report.fanin_check_failed) {
      ++failed_entropy;
    }
  }
  std::printf("audited histories failing an entropy check: %.0f of %zu\n",
              failed_entropy, ex.audit_reports().size());
  return 0;
}

/// Figure-1 style scenario: a live stream under aggressive freeriding,
/// with and without LiFTinG's expulsion machinery.
///
///   $ ./streaming_with_freeriders
///
/// Three runs of the same 300-node deployment:
///   (a) no freeriders — the baseline;
///   (b) 25% aggressive freeriders, LiFTinG disabled — the collapse;
///   (c) same freeriders, LiFTinG enabled with expulsion — the recovery.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

lifting::runtime::ScenarioConfig base_config() {
  auto cfg = lifting::runtime::ScenarioConfig::planetlab();
  cfg.nodes = 150;  // keep the example snappy; bench_fig01 runs the full 300
  cfg.duration = lifting::seconds(60.0);
  cfg.stream.duration = lifting::seconds(58.0);
  // The Fig. 1 regime: bandwidth-tight, heterogeneous uplinks, so that a
  // 25% freeriding population actually hurts (see bench_fig01).
  cfg.link.upload_capacity_bps = 2.2e6;
  cfg.weak_link.upload_capacity_bps = 1.2e6;
  cfg.weak_fraction = 0.35;
  return cfg;
}

std::vector<lifting::gossip::HealthPoint> run(
    lifting::runtime::ScenarioConfig cfg, const char* label) {
  lifting::runtime::Experiment ex(cfg);
  ex.run();
  lifting::gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  playback.warmup = lifting::seconds(15.0);
  const auto curve = ex.health_curve({1.0, 2.0, 5.0, 10.0, 20.0},
                                     /*honest_only=*/true, playback);
  std::printf("%-28s", label);
  for (const auto& point : curve) {
    std::printf("  %5.1f%%", point.fraction_clear * 100);
  }
  std::printf("   (expelled: %zu)\n", ex.expulsions().size());
  return curve;
}

}  // namespace

int main() {
  std::printf("fraction of honest nodes viewing a clear stream, by lag\n");
  std::printf("%-28s  %6s  %6s  %6s  %6s  %6s\n", "scenario", "1s", "2s",
              "5s", "10s", "20s");

  auto baseline = base_config();
  run(baseline, "no freeriders");

  auto collapsed = base_config();
  collapsed.freerider_fraction = 0.25;
  collapsed.freerider_behavior = lifting::gossip::BehaviorSpec::freerider(0.9);
  collapsed.lifting_enabled = false;
  run(collapsed, "25% freeriders");

  auto protectedrun = collapsed;
  protectedrun.lifting_enabled = true;
  // Wise freeriders throttle to the ~50%-detection point when LiFTinG is
  // watching (paper §1, Fig. 12); whoever is caught anyway gets expelled.
  protectedrun.freerider_behavior =
      lifting::gossip::BehaviorSpec::freerider(0.035);
  protectedrun.lifting.score_check_probability = 0.5;
  protectedrun.lifting.min_periods_before_detection = 20;
  protectedrun.expulsion_enabled = false;  // deterrence is the effect here (see bench_fig01)
  run(protectedrun, "25% freeriders (LiFTinG)");

  std::printf(
      "\nWithout LiFTinG nothing stops the freeriders and the stream\n"
      "degrades for everyone; under LiFTinG's threat of expulsion the wise\n"
      "freeriders restrain themselves and the curve returns to the baseline\n"
      "(paper Fig. 1).\n");
  return 0;
}

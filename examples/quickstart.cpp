/// Quickstart: build a small gossip deployment with LiFTinG enabled, run a
/// short stream, and inspect scores.
///
///   $ ./quickstart
///
/// Walks through the three things a user of the library touches:
///   1. ScenarioConfig — population, stream, network, freeriders, LiFTinG;
///   2. Experiment — builds and runs the deployment;
///   3. measurements — health curve, score snapshot, detection statistics.

#include <cstdio>

#include "common/table.hpp"
#include "runtime/experiment.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace lifting;

  // 1. Configure: 80 nodes, 15% freeriders that do 30% less work on every
  //    axis (fanout, proposals, serves).
  auto cfg = runtime::ScenarioConfig::small(80);
  cfg.duration = seconds(25.0);
  cfg.stream.duration = seconds(22.0);
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.3);

  std::printf("LiFTinG quickstart: %u nodes, %.0f%% freeriders (delta=0.3)\n",
              cfg.nodes, cfg.freerider_fraction * 100);
  std::printf("freerider upload saving (gain): %.0f%%\n\n",
              cfg.freerider_behavior.gain() * 100);

  // 2. Run.
  runtime::Experiment ex(cfg);
  ex.run();

  // 3. Measure. Health: who can watch the stream at a 5 s lag?
  // ("clear" = 95% of chunks on time; the lossless three-phase protocol
  // still misses a few chunks when freeriders sit on dissemination paths).
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  const auto health = ex.health_curve({2.0, 5.0}, true, playback);
  std::printf("stream health: %.0f%% of honest nodes clear at 2 s lag, "
              "%.0f%% at 5 s\n",
              health[0].fraction_clear * 100, health[1].fraction_clear * 100);

  // Scores: freeriders separate from honest nodes.
  const auto snap = ex.snapshot_scores();
  stats::Summary honest;
  stats::Summary cheats;
  for (const auto s : snap.honest) honest.add(s);
  for (const auto s : snap.freeriders) cheats.add(s);
  std::printf("honest scores:    mean %+7.2f  [%7.2f, %7.2f]\n",
              honest.mean(), honest.min(), honest.max());
  std::printf("freerider scores: mean %+7.2f  [%7.2f, %7.2f]\n\n",
              cheats.mean(), cheats.min(), cheats.max());

  // Detection at a threshold between the two modes.
  const double eta = cheats.mean() * 0.5 + honest.mean() * 0.5;
  const auto det = ex.detection_at(eta);
  std::printf("at eta=%.2f: detection %.0f%%, false positives %.1f%%\n", eta,
              det.detection * 100, det.false_positive * 100);

  // Bandwidth cost of the verification machinery (Table 5's metric).
  const auto overhead = ex.overhead();
  std::printf("verification overhead: %.2f%% of dissemination bytes\n",
              overhead.verification_ratio() * 100);
  return 0;
}

/// Dynamic membership walkthrough: a live stream with nodes joining
/// mid-stream, leaving cleanly, and crashing.
///
///   $ ./churn
///
/// Shows the scenario-timeline API end to end: a declarative event list
/// attached to the ScenarioConfig, per-epoch score snapshots sampled while
/// the deployment runs, a mid-stream joiner catching up to a clear stream,
/// and the wrongful-blame split between stayers and leavers (a crashed
/// partner looks like a δ1 freerider to its verifiers until the failure
/// detector fires).

#include <cstdio>

#include "runtime/experiment.hpp"

int main() {
  using namespace lifting;

  auto cfg = runtime::ScenarioConfig::small(80);
  cfg.duration = seconds(30.0);
  cfg.stream.duration = seconds(28.0);
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.02;
  cfg.failure_detection = seconds(2.0);

  // The timeline: three honest joiners arrive mid-stream, one node leaves
  // cleanly, three crash at staggered instants (the wrongful-blame pulse a
  // single crash leaves depends on where the victim's propose phase fell,
  // so several crashes show it reliably), and one honest node turns
  // freerider halfway in.
  cfg.timeline.join_at(seconds(8.0))
      .join_at(seconds(10.0))
      .join_at(seconds(12.0))
      .leave_at(seconds(14.0), NodeId{22})
      .crash_at(seconds(16.0), NodeId{34})
      .crash_at(seconds(18.3), NodeId{46})
      .crash_at(seconds(20.6), NodeId{58})
      .set_behavior_at(seconds(15.0), NodeId{17},
                       gossip::BehaviorSpec::freerider(0.5),
                       /*freerider=*/true);

  runtime::Experiment ex(cfg);
  ex.sample_scores_every(seconds(5.0));
  ex.run();

  std::printf("population: %u base + %zu joined, %zu departed, %zu live\n",
              cfg.nodes, ex.joins().size(), ex.departures().size(),
              ex.directory().live_count());

  std::printf("\nper-epoch score snapshots (mean honest vs freerider):\n");
  // The default sampling mode streams O(1) summaries per epoch; pass
  // ScoreSampleMode::kRetained to sample_scores_every for the full
  // per-node vectors (score_timeline()).
  for (const auto& sample : ex.score_summaries()) {
    std::printf("  t=%4.1fs   honest %8.2f   freerider %8.2f\n",
                sample.at_seconds, sample.honest_mean, sample.freerider_mean);
  }

  const NodeId joiner = ex.joins().front().node;
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.9;
  playback.warmup = seconds(10.0);
  const auto curve = ex.health_curve({2.0, 5.0}, /*honest_only=*/true,
                                     playback);
  std::printf("\nmid-stream joiner %u: %llu chunks received, score %.2f\n",
              joiner.value(),
              (unsigned long long)ex.engine(joiner).stats().chunks_received,
              ex.true_score(joiner));
  std::printf("honest stream health: %.0f%% clear at 2 s, %.0f%% at 5 s\n",
              curve[0].fraction_clear * 100, curve[1].fraction_clear * 100);

  const auto split = ex.honest_blame_split();
  double posthumous = 0.0;
  for (const auto& dep : ex.departures()) {
    posthumous +=
        ex.ledger().total(dep.node, gossip::BlameReason::kPostDeparture);
  }
  std::printf(
      "\nwrongful blame against honest nodes:\n"
      "  %zu stayers: %.1f blame each on average (loss noise)\n"
      "  %zu leavers: %.1f blame each, of it %.1f earned posthumously —\n"
      "  crash victims are blamed for their silence until the failure\n"
      "  detector catches up (the ledger tags those kPostDeparture).\n",
      split.stayers, split.stayer_mean(), split.leavers, split.leaver_mean(),
      posthumous);
  return 0;
}

// lifting_loopback — loopback wire deployment launcher + bandwidth report.
//
// Orchestrates a full deployment of lifting_node daemons from an ordinary
// ScenarioConfig: spawns one process per node, pipes each the serialized
// scenario, collects the bound ports, distributes the roster, lets the
// stream run over real UDP datagrams, then aggregates per-message-kind
// byte counts and prints a wire-vs-model bandwidth report.
//
// The report is the deployment-side validation of the paper's Table 5: the
// analytical gossip::wire_size model (which the whole simulator evaluation
// prices bandwidth with) is compared against the actual datagram sizes
// measured on the wire, per message kind. The two are tied by an exact
// accounting identity (see kind_delta below); the verification/stream
// overhead ratio and its <8% bound are then checked on *measured* bytes.
//
// Exit status: 0 = deployment healthy and report checks passed, 1 = a
// check failed, 124 = timeout. Used directly as the CI loopback smoke.
//
//   ./lifting_loopback --nodes 16 --seconds 3 --node-bin ./lifting_node

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "gossip/message.hpp"
#include "runtime/scenario.hpp"
#include "runtime/wire_scenario.hpp"

namespace {

using namespace lifting;

constexpr std::size_t kKinds = std::variant_size_v<gossip::Message>;

struct Options {
  std::uint32_t nodes = 16;
  double seconds = 3.0;  // stream length; 0 = the preset's own
  std::string node_bin = "./lifting_node";
  std::string preset = "small";
  std::uint64_t seed = 0;  // 0 = the preset's own
  double freeriders = -1.0;  // <0 = the preset's own
  double health_min = 0.85;
  unsigned timeout_s = 0;  // 0 = derived from the duration
  bool verbose = false;
  /// Run the §5.3 audit kinds over the reliable-UDP channel (retry/backoff
  /// + receiver dedup) instead of the modeled-TCP default. Makes the audit
  /// kinds' wire-vs-model delta exactly +6 B/msg like every other kind.
  bool audit_reliable = false;
  /// Stationary burst-loss fraction injected at every sender's transport
  /// seam (Gilbert–Elliott; 0 = no fault plan). Health checks downgrade to
  /// report-only: a degraded-but-reported run still exits 0.
  double burst_loss = 0.0;
  /// Arm each daemon's flight recorder and collect the per-node binary
  /// dumps as <trace_dir>/node<i>.trace (merge them with lifting_trace).
  /// Empty = tracing disarmed.
  std::string trace_dir;
  /// Per-node ring capacity in records (32 B each) under --trace-dir.
  std::size_t trace_capacity = 1 << 16;
};

struct Child {
  pid_t pid = -1;
  FILE* in = nullptr;   // launcher -> daemon stdin
  FILE* out = nullptr;  // daemon stdout -> launcher
  std::uint16_t port = 0;
  // Parsed report:
  std::uint64_t chunks_received = 0;
  std::uint64_t chunks_emitted = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t socket_errors = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t kind_count[kKinds] = {};
  std::uint64_t kind_modeled[kKinds] = {};
  std::uint64_t kind_wire[kKinds] = {};
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t audit_sends = 0;
  std::uint64_t audit_retries = 0;
  std::uint64_t audit_give_ups = 0;
  std::uint64_t audit_acks = 0;
  std::uint64_t audit_dups = 0;
  bool done = false;
};

// Timeout handler state: fixed-size plain arrays, mutated only between
// alarm() arm/disarm points from the main flow, read by the handler —
// std::vector would race its own reallocation against the signal.
constexpr std::uint32_t kMaxNodes = 4096;
pid_t g_pids[kMaxNodes] = {};
volatile sig_atomic_t g_done[kMaxNodes] = {};
volatile sig_atomic_t g_node_count = 0;

// write()-based helpers (the only formatted output that is legal inside a
// signal handler).
void sig_write(const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  (void)!::write(STDERR_FILENO, s, n);
}
void sig_write_u32(std::uint32_t v) {
  char buf[12];
  std::size_t i = sizeof buf;
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  (void)!::write(STDERR_FILENO, buf + i, sizeof buf - i);
}

void on_timeout(int) {
  // Name the stall before killing anything: the first node that never
  // reported DONE is where the deployment wedged (bind loop, drain hang,
  // dead daemon) — "exit 124" alone made these undebuggable in CI.
  sig_write("TIMEOUT: stalled before DONE:");
  int listed = 0;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(g_node_count);
       ++i) {
    if (g_done[i]) continue;
    if (listed == 8) {
      sig_write(" ...");
      break;
    }
    sig_write(" node ");
    sig_write_u32(i);
    ++listed;
  }
  sig_write("\n");
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(g_node_count);
       ++i) {
    if (g_pids[i] > 0) ::kill(g_pids[i], SIGKILL);
  }
  // Async-signal-safe exit; 124 is the conventional timeout status.
  _exit(124);
}

int kind_index(const std::string& name) {
  for (std::size_t i = 0; i < kKinds; ++i) {
    if (name == gossip::message_kind_name(i)) return static_cast<int>(i);
  }
  return -1;
}

/// Exact wire-vs-model byte delta per message of this kind, derived from
/// the frame format: every datagram adds the 6-byte frame header (sender
/// id + codec length) the model does not price. On top of that, serves
/// carry an explicit payload_bytes field (+4) the model folds into the
/// payload, and the audit kinds are priced with 40 B TCP framing while the
/// wire sends them as UDP datagrams (28 B headers): -12 + 6 = -6.
/// history_poll additionally serializes per-record partner-count fields
/// the model omits, so its delta is per-record, not per-message — the
/// caller falls back to a tolerance band for it.
///
/// Under --audit-reliable (`datagram_audit`) the Mailer prices every audit
/// kind with gossip::datagram_wire_size — IP/UDP headers plus the exact
/// codec length — so the whole audit family (history_poll included)
/// collapses to the universal +6 B frame-header delta. That exactness is
/// the point of the reliable channel: the -6 modeling artifact disappears.
bool exact_delta(std::size_t kind, long long& delta_per_msg,
                 bool datagram_audit) {
  static_assert(gossip::kGossipKindCount == 4);
  if (kind == 2) {  // serve
    delta_per_msg = 10;
    return true;
  }
  if (kind >= 12) {  // the audit kinds
    if (datagram_audit) {
      delta_per_msg = 6;
      return true;
    }
    if (kind == 14) return false;  // history_poll: per-record delta
    delta_per_msg = -6;            // modeled-TCP framing vs UDP headers
    return true;
  }
  delta_per_msg = 6;
  return true;
}

bool spawn(const std::string& node_bin, std::uint32_t self, Child& child) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0) return false;
  if (::pipe(from_child) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    const std::string self_arg = std::to_string(self);
    ::execl(node_bin.c_str(), "lifting_node", "--self", self_arg.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  child.pid = pid;
  child.in = ::fdopen(to_child[1], "w");
  child.out = ::fdopen(from_child[0], "r");
  g_pids[self] = pid;
  return child.in != nullptr && child.out != nullptr;
}

/// Tears a half-launched child down so its slot can be respawned.
void reap(std::uint32_t self, Child& child) {
  if (child.in != nullptr) std::fclose(child.in);
  if (child.out != nullptr) std::fclose(child.out);
  if (child.pid > 0) {
    ::kill(child.pid, SIGKILL);
    int status = 0;
    ::waitpid(child.pid, &status, 0);
  }
  g_pids[self] = 0;
  child = Child{};
}

bool read_line(Child& child, std::string& line);

/// Spawns node `self`, feeds it the scenario, and waits for its PORT line.
/// Transient failures here (a port-range clash inside the daemon's bind
/// loop, a fork hiccup under CI load) were the top loopback-smoke flake, so
/// the launcher retries ONE fresh process before giving up.
bool launch_node(const Options& opt, const std::string& scenario,
                 std::uint32_t self, Child& child) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) {
      std::fprintf(stderr, "node %u: launch failed, retrying once\n", self);
      reap(self, child);
    }
    if (!spawn(opt.node_bin, self, child)) continue;
    std::fputs(scenario.c_str(), child.in);
    std::fputs("END_SCENARIO\n", child.in);
    if (std::fflush(child.in) != 0) continue;
    std::string line;
    unsigned port = 0;
    if (!read_line(child, line) ||
        std::sscanf(line.c_str(), "PORT %u", &port) != 1 || port == 0) {
      std::fprintf(stderr, "node %u failed to bind: %s\n", self,
                   line.c_str());
      continue;
    }
    child.port = static_cast<std::uint16_t>(port);
    return true;
  }
  reap(self, child);
  return false;
}

bool read_line(Child& child, std::string& line) {
  char buf[512];
  if (std::fgets(buf, sizeof buf, child.out) == nullptr) return false;
  line.assign(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return true;
}

/// Reads STAT/KIND lines until DONE (or ERROR / stream end).
bool read_report(Child& child, bool verbose) {
  std::string line;
  while (read_line(child, line)) {
    if (line == "DONE") {
      child.done = true;
      return true;
    }
    char key[64];
    unsigned long long a = 0, b = 0, c = 0;
    if (std::sscanf(line.c_str(), "STAT %63s %llu", key, &a) == 2) {
      if (verbose) std::printf("  node %d: %s\n", child.pid, line.c_str());
      if (std::strcmp(key, "chunks_received") == 0) child.chunks_received = a;
      if (std::strcmp(key, "chunks_emitted") == 0) child.chunks_emitted = a;
      if (std::strcmp(key, "decode_failures") == 0) child.decode_failures = a;
      if (std::strcmp(key, "socket_errors") == 0) child.socket_errors = a;
      if (std::strcmp(key, "send_failures") == 0) child.send_failures = a;
      if (std::strcmp(key, "faults_dropped") == 0) child.faults_dropped = a;
      if (std::strcmp(key, "faults_duplicated") == 0) {
        child.faults_duplicated = a;
      }
      if (std::strcmp(key, "faults_delayed") == 0) child.faults_delayed = a;
      if (std::strcmp(key, "audit_sends") == 0) child.audit_sends = a;
      if (std::strcmp(key, "audit_retries") == 0) child.audit_retries = a;
      if (std::strcmp(key, "audit_give_ups") == 0) child.audit_give_ups = a;
      if (std::strcmp(key, "audit_acks") == 0) child.audit_acks = a;
      if (std::strcmp(key, "audit_dups_suppressed") == 0) child.audit_dups = a;
      continue;
    }
    if (std::sscanf(line.c_str(), "KIND %63s %llu %llu %llu", key, &a, &b,
                    &c) == 4) {
      const int k = kind_index(key);
      if (k >= 0) {
        child.kind_count[k] += a;
        child.kind_modeled[k] += b;
        child.kind_wire[k] += c;
      }
      continue;
    }
    std::fprintf(stderr, "daemon said: %s\n", line.c_str());
    if (line.rfind("ERROR", 0) == 0) return false;
  }
  return false;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seconds") {
      opt.seconds = std::strtod(next(), nullptr);
    } else if (arg == "--node-bin") {
      opt.node_bin = next();
    } else if (arg == "--preset") {
      opt.preset = next();
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--freeriders") {
      opt.freeriders = std::strtod(next(), nullptr);
    } else if (arg == "--health-min") {
      opt.health_min = std::strtod(next(), nullptr);
    } else if (arg == "--timeout") {
      opt.timeout_s =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--audit-reliable") {
      opt.audit_reliable = true;
    } else if (arg == "--burst-loss") {
      opt.burst_loss = std::strtod(next(), nullptr);
    } else if (arg == "--trace-dir") {
      opt.trace_dir = next();
    } else if (arg == "--trace-capacity") {
      opt.trace_capacity = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: lifting_loopback [--nodes N] [--seconds S] "
                   "[--node-bin PATH] [--preset small|planetlab] [--seed S] "
                   "[--freeriders F] [--health-min H] [--timeout S] "
                   "[--audit-reliable] [--burst-loss F] [--trace-dir D] "
                   "[--trace-capacity R] [--verbose]\n");
      std::exit(2);
    }
  }
  if (opt.burst_loss < 0.0 || opt.burst_loss > 0.5) {
    std::fprintf(stderr, "--burst-loss must be in [0, 0.5]\n");
    std::exit(2);
  }
  if (opt.trace_capacity == 0) {
    std::fprintf(stderr, "--trace-capacity must be positive\n");
    std::exit(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::signal(SIGPIPE, SIG_IGN);

  // ---- the scenario: an unmodified preset ScenarioConfig, with only the
  // population/stream-length knobs the command line asks for.
  runtime::ScenarioConfig config = opt.preset == "planetlab"
                                       ? runtime::ScenarioConfig::planetlab()
                                       : runtime::ScenarioConfig::small(16);
  config.nodes = opt.nodes;
  if (opt.seed != 0) config.seed = opt.seed;
  if (opt.freeriders >= 0.0) config.freerider_fraction = opt.freeriders;
  if (opt.seconds > 0.0) {
    config.stream.duration = seconds(opt.seconds);
    config.duration = seconds(opt.seconds + 2.0);  // dissemination tail
  }
  if (opt.audit_reliable) {
    config.lifting.audit_channel = LiftingParams::AuditChannel::kReliableUdp;
    // The point of the mode is audit traffic on the wire; presets default
    // to audit_probability 0, which would validate nothing. Switch the
    // entropy audits on (short warmup — smoke runs are seconds long)
    // unless the preset already audits.
    if (config.lifting.audit_probability == 0.0) {
      config.lifting.audit_probability = 0.3;
      config.lifting.audit_warmup_periods = 6;
    }
  }
  if (opt.burst_loss > 0.0) {
    // Gilbert–Elliott plan whose stationary loss equals --burst-loss F:
    // the bad state drops loss_bad of datagrams, so we need the stationary
    // bad fraction pi = F / loss_bad, and with a fixed recovery rate
    // p_bad_to_good the entry rate follows from pi = g2b / (g2b + b2g).
    constexpr double kLossBad = 0.9;
    constexpr double kBadToGood = 0.25;
    const double pi_bad = opt.burst_loss / kLossBad;
    faults::FaultPlan plan;
    plan.loss_bad = kLossBad;
    plan.p_bad_to_good = kBadToGood;
    plan.p_good_to_bad = pi_bad * kBadToGood / (1.0 - pi_bad);
    config.faults = plan;
  }
  const bool faulty = !config.faults.empty();
  std::string why;
  if (!runtime::wire_supported(config, &why)) {
    std::fprintf(stderr, "scenario not wire-deployable: %s\n", why.c_str());
    return 1;
  }
  const std::string scenario = runtime::encode_wire_scenario(config);

  if (config.nodes > kMaxNodes) {
    std::fprintf(stderr, "--nodes is capped at %u\n", kMaxNodes);
    return 2;
  }

  const double duration_s =
      std::chrono::duration<double>(config.duration).count();
  const unsigned timeout_s =
      opt.timeout_s > 0 ? opt.timeout_s
                        : static_cast<unsigned>(duration_s) + 60;
  g_node_count = static_cast<sig_atomic_t>(config.nodes);
  std::signal(SIGALRM, on_timeout);
  ::alarm(timeout_s);

  // ---- spawn + handshake (per node: spawn, scenario, PORT; one retry)
  std::vector<Child> children(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    if (!launch_node(opt, scenario, i, children[i])) {
      std::fprintf(stderr, "failed to launch node %u (%s)\n", i,
                   opt.node_bin.c_str());
      return 1;
    }
  }
  std::string roster = "ROSTER";
  for (const auto& child : children) {
    roster += ' ';
    roster += std::to_string(child.port);
  }
  roster += "\nGO\n";
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    auto& child = children[i];
    if (!opt.trace_dir.empty()) {
      // Arm the daemon's flight recorder before GO; it dumps the ring to
      // this path right before DONE.
      std::fprintf(child.in, "TRACE %s/node%u.trace %llu\n",
                   opt.trace_dir.c_str(), i,
                   static_cast<unsigned long long>(opt.trace_capacity));
    }
    std::fputs(roster.c_str(), child.in);
    std::fflush(child.in);
  }
  std::printf("lifting_loopback: %u nodes launched, streaming %.1f s...\n",
              config.nodes,
              std::chrono::duration<double>(config.stream.duration).count());
  std::fflush(stdout);

  // ---- collect reports
  bool ok = true;
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    if (read_report(children[i], opt.verbose)) {
      g_done[i] = 1;  // the timeout handler skips nodes that reported
    } else {
      std::fprintf(stderr, "node %u died without a report\n", i);
      ok = false;
    }
  }
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    int status = 0;
    ::waitpid(children[i].pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "node %u exited abnormally (status %d)\n", i,
                   status);
      ok = false;
    }
  }
  ::alarm(0);
  if (!ok) return 1;

  // ---- aggregate
  std::uint64_t kind_count[kKinds] = {};
  std::uint64_t kind_modeled[kKinds] = {};
  std::uint64_t kind_wire[kKinds] = {};
  std::uint64_t decode_failures = 0, socket_errors = 0, send_failures = 0;
  std::uint64_t faults_dropped = 0, faults_duplicated = 0, faults_delayed = 0;
  std::uint64_t audit_sends = 0, audit_retries = 0, audit_give_ups = 0;
  std::uint64_t audit_acks = 0, audit_dups = 0;
  const std::uint64_t emitted = children[0].chunks_emitted;
  double min_health = 1.0;
  std::uint32_t min_health_node = 0;
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    const auto& child = children[i];
    decode_failures += child.decode_failures;
    socket_errors += child.socket_errors;
    send_failures += child.send_failures;
    faults_dropped += child.faults_dropped;
    faults_duplicated += child.faults_duplicated;
    faults_delayed += child.faults_delayed;
    audit_sends += child.audit_sends;
    audit_retries += child.audit_retries;
    audit_give_ups += child.audit_give_ups;
    audit_acks += child.audit_acks;
    audit_dups += child.audit_dups;
    for (std::size_t k = 0; k < kKinds; ++k) {
      kind_count[k] += child.kind_count[k];
      kind_modeled[k] += child.kind_modeled[k];
      kind_wire[k] += child.kind_wire[k];
    }
    if (i > 0 && emitted > 0) {
      const double health = static_cast<double>(child.chunks_received) /
                            static_cast<double>(emitted);
      if (health < min_health) {
        min_health = health;
        min_health_node = i;
      }
    }
  }

  // ---- wire-vs-model report
  std::printf("\n== wire bandwidth report (%u nodes, %.1f s stream) ==\n",
              config.nodes,
              std::chrono::duration<double>(config.stream.duration).count());
  std::printf("%-18s %10s %14s %14s %12s\n", "kind", "count", "model B",
              "wire B", "wire/model");
  std::uint64_t diss_model = 0, diss_wire = 0;
  std::uint64_t verif_model = 0, verif_wire = 0;
  std::uint64_t audit_model = 0, audit_wire = 0;
  std::size_t largest_kind = 0;
  for (std::size_t k = 0; k < kKinds; ++k) {
    if (kind_count[k] == 0) continue;
    std::printf("%-18s %10llu %14llu %14llu %12.4f\n",
                gossip::message_kind_name(k),
                static_cast<unsigned long long>(kind_count[k]),
                static_cast<unsigned long long>(kind_modeled[k]),
                static_cast<unsigned long long>(kind_wire[k]),
                static_cast<double>(kind_wire[k]) /
                    static_cast<double>(kind_modeled[k]));
    if (kind_wire[k] > kind_wire[largest_kind]) largest_kind = k;
    if (k < 3) {
      diss_model += kind_modeled[k];
      diss_wire += kind_wire[k];
    } else if (k < 12) {
      verif_model += kind_modeled[k];
      verif_wire += kind_wire[k];
    } else {
      audit_model += kind_modeled[k];
      audit_wire += kind_wire[k];
    }
  }

  // Model agreement: the measured bytes must equal the model plus the
  // documented per-datagram framing delta, exactly.
  for (std::size_t k = 0; k < kKinds; ++k) {
    if (kind_count[k] == 0) continue;
    long long delta = 0;
    const auto wire = static_cast<long long>(kind_wire[k]);
    const auto modeled = static_cast<long long>(kind_modeled[k]);
    const auto count = static_cast<long long>(kind_count[k]);
    if (exact_delta(k, delta, opt.audit_reliable)) {
      if (wire != modeled + delta * count) {
        std::fprintf(stderr,
                     "FAIL %s: wire %lld != model %lld %+lld B/msg x %lld\n",
                     gossip::message_kind_name(k), wire, modeled, delta,
                     count);
        ok = false;
      }
    } else if (wire < modeled - 6 * count || wire > modeled + 16 * count) {
      std::fprintf(stderr, "FAIL %s: wire %lld outside model band [%lld]\n",
                   gossip::message_kind_name(k), wire, modeled);
      ok = false;
    }
  }

  const double ratio_wire =
      diss_wire > 0
          ? static_cast<double>(verif_wire) / static_cast<double>(diss_wire)
          : 0.0;
  const double ratio_model =
      diss_model > 0
          ? static_cast<double>(verif_model) / static_cast<double>(diss_model)
          : 0.0;
  std::printf(
      "dissemination: model %llu B, wire %llu B; verification overhead: "
      "model %.4f, wire %.4f; audit wire %llu B\n",
      static_cast<unsigned long long>(diss_model),
      static_cast<unsigned long long>(diss_wire), ratio_model, ratio_wire,
      static_cast<unsigned long long>(audit_wire));
  std::printf(
      "stream: %llu chunks emitted, min delivery %.3f (node %u); "
      "decode failures %llu, socket errors %llu, send failures %llu\n",
      static_cast<unsigned long long>(emitted), min_health, min_health_node,
      static_cast<unsigned long long>(decode_failures),
      static_cast<unsigned long long>(socket_errors),
      static_cast<unsigned long long>(send_failures));
  if (faulty) {
    std::printf(
        "faults: dropped %llu, duplicated %llu, delayed %llu datagrams\n",
        static_cast<unsigned long long>(faults_dropped),
        static_cast<unsigned long long>(faults_duplicated),
        static_cast<unsigned long long>(faults_delayed));
  }
  if (opt.audit_reliable) {
    std::printf(
        "audit channel: %llu sends, %llu retries, %llu give-ups, "
        "%llu acks, %llu dups suppressed\n",
        static_cast<unsigned long long>(audit_sends),
        static_cast<unsigned long long>(audit_retries),
        static_cast<unsigned long long>(audit_give_ups),
        static_cast<unsigned long long>(audit_acks),
        static_cast<unsigned long long>(audit_dups));
  }

  // ---- acceptance checks. With a fault plan active the health and ratio
  // bounds become report-only (a degraded-but-reported run is the point of
  // the exercise); structural checks — the exact framing identity, clean
  // sockets, a live source — stay hard either way, since faults are
  // injected above the wire accounting and never excuse those.
  if (emitted == 0) {
    std::fprintf(stderr, "FAIL: the source emitted nothing\n");
    ok = false;
  }
  if (min_health < opt.health_min) {
    std::fprintf(stderr, "%s: stream health %.3f < %.3f (node %u)\n",
                 faulty ? "DEGRADED" : "FAIL", min_health, opt.health_min,
                 min_health_node);
    if (!faulty) ok = false;
  }
  if (decode_failures != 0 || socket_errors != 0 || send_failures != 0) {
    std::fprintf(stderr, "FAIL: transport errors on a clean loopback run\n");
    ok = false;
  }
  if (largest_kind != 2) {
    std::fprintf(stderr,
                 "FAIL: serve is not the largest kind on the wire (%s is)\n",
                 gossip::message_kind_name(largest_kind));
    ok = false;
  }
  if (config.lifting_enabled) {
    // Table 5's headline: verification costs < 8% of the stream bandwidth,
    // now measured on actual datagrams; and the wire ratio must agree with
    // the analytical one the simulator reports.
    if (verif_wire == 0 || verif_wire >= diss_wire) {
      std::fprintf(stderr, "%s: verification/dissemination ordering\n",
                   faulty ? "DEGRADED" : "FAIL");
      if (!faulty) ok = false;
    }
    if (ratio_wire >= 0.08) {
      std::fprintf(stderr, "%s: wire verification overhead %.4f >= 8%%\n",
                   faulty ? "DEGRADED" : "FAIL", ratio_wire);
      if (!faulty) ok = false;
    }
    if (ratio_wire - ratio_model > 0.02 || ratio_model - ratio_wire > 0.02) {
      std::fprintf(stderr, "%s: wire ratio %.4f vs model ratio %.4f\n",
                   faulty ? "DEGRADED" : "FAIL", ratio_wire, ratio_model);
      if (!faulty) ok = false;
    }
  }

  if (!ok) return 1;
  std::printf("WIRE SMOKE OK\n");
  return 0;
}

// lifting_trace — flight-recorder dump tool (DESIGN.md §13).
//
// Merges the binary trace dumps that `lifting_node` daemons (or a traced
// simulator run) wrote, orders the records on the deployment's shared
// virtual-time axis, and exports one Chrome `trace_event` JSON timeline
// (load it in chrome://tracing or Perfetto; each node renders as a pid
// row). Doubles as the coverage checker of the traced CI smoke
// (--require) and as a command-line front end for the blame-provenance
// forensics (--explain).
//
//   ./lifting_trace --out merged.json traces/node*.trace
//   ./lifting_trace --require engine,verdict,blame traces/node*.trace
//   ./lifting_trace --explain 7 traces/node*.trace
//
// Exit status: 0 = merged (and every required seam category has at least
// one record), 1 = unreadable dump or a required category is empty,
// 2 = usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/explain.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lifting;

int usage() {
  std::fprintf(stderr,
               "usage: lifting_trace [--out FILE|-] [--merged-dump FILE] "
               "[--require CAT[,CAT...]] [--explain NODE] [--quiet] "
               "DUMP [DUMP...]\n"
               "  --out FILE      write the merged Chrome trace JSON "
               "(- = stdout)\n"
               "  --merged-dump F write the merged records as one binary "
               "dump\n"
               "  --require CATS  fail unless every listed seam category "
               "(engine, verdict, audit, blame, expel, handoff, rps, "
               "adversary, fault) has >= 1 record\n"
               "  --explain NODE  print the blame-provenance report for "
               "NODE instead of JSON\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string merged_dump_path;
  std::string require_csv;
  bool have_explain = false;
  bool quiet = false;
  std::uint32_t explain_node = 0;
  std::vector<std::string> dumps;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--merged-dump") {
      merged_dump_path = next();
    } else if (arg == "--require") {
      require_csv = next();
    } else if (arg == "--explain") {
      explain_node =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      have_explain = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else {
      dumps.push_back(arg);
    }
  }
  if (dumps.empty()) return usage();

  // ---- read + merge
  std::vector<obs::TraceRecord> records;
  for (const auto& path : dumps) {
    std::uint32_t node = 0;
    const std::size_t before = records.size();
    if (!obs::read_binary_dump(path, records, &node)) {
      std::fprintf(stderr, "lifting_trace: unreadable dump: %s\n",
                   path.c_str());
      return 1;
    }
    if (!quiet) {
      std::fprintf(stderr, "lifting_trace: %s: node %u, %zu records\n",
                   path.c_str(),
                   node, records.size() - before);
    }
  }
  obs::sort_for_merge(records);

  // ---- per-category coverage (the traced-smoke contract)
  std::uint64_t by_kind[obs::kEventKindCount] = {};
  for (const auto& record : records) {
    ++by_kind[static_cast<std::size_t>(record.kind)];
  }
  if (!quiet) {
    std::fprintf(stderr, "lifting_trace: merged %zu records\n",
                 records.size());
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
      if (by_kind[k] == 0) continue;
      const auto kind = static_cast<obs::EventKind>(k);
      std::fprintf(stderr, "  %-10s %-18s %llu\n", obs::kind_category(kind),
                   obs::kind_name(kind),
                   static_cast<unsigned long long>(by_kind[k]));
    }
  }
  if (!require_csv.empty()) {
    bool all_covered = true;
    for (const auto& category : split_csv(require_csv)) {
      std::uint64_t count = 0;
      bool known = false;
      for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
        const auto kind = static_cast<obs::EventKind>(k);
        if (category == obs::kind_category(kind)) {
          known = true;
          count += by_kind[k];
        }
      }
      if (!known) {
        std::fprintf(stderr, "lifting_trace: unknown category: %s\n",
                     category.c_str());
        return 2;
      }
      if (count == 0) {
        std::fprintf(stderr,
                     "lifting_trace: required seam category '%s' has no "
                     "records\n",
                     category.c_str());
        all_covered = false;
      }
    }
    if (!all_covered) return 1;
  }

  // ---- outputs
  if (have_explain) {
    // The forensic walk reads a ring; rebuild one over the merged records.
    obs::TraceRing ring;
    ring.arm(records.empty() ? 1 : records.size());
    for (const auto& record : records) ring.append(record);
    const std::string report = obs::explain(ring, NodeId{explain_node});
    std::fputs(report.c_str(), stdout);
  }
  if (!merged_dump_path.empty()) {
    if (!obs::write_binary_dump(merged_dump_path, records,
                                obs::kDumpWholeDeployment)) {
      std::fprintf(stderr, "lifting_trace: cannot write %s\n",
                   merged_dump_path.c_str());
      return 1;
    }
  }
  if (!out_path.empty()) {
    if (out_path == "-") {
      obs::write_chrome_trace(std::cout, records);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "lifting_trace: cannot write %s\n",
                     out_path.c_str());
        return 1;
      }
      obs::write_chrome_trace(out, records);
    }
  }
  return 0;
}

// lifting_node — one-node daemon of the wire deployment.
//
// Hosts a single node's Engine/Agent stack (runtime::NodeHost) over real
// UDP datagrams. The launcher (lifting_loopback) speaks a line protocol
// over stdin/stdout:
//
//   launcher -> daemon   the wire scenario (key value lines), then
//                        "END_SCENARIO"
//   daemon  -> launcher  "PORT <p>"           (endpoint bound)
//   launcher -> daemon   "ROSTER <p0> ... <pn-1>", then "GO"
//   daemon  -> launcher  (runs the scenario against the wall clock)
//                        "STAT <key> <value>" lines,
//                        "KIND <name> <count> <modeled> <wire>" lines,
//                        "DONE"
//
// Standalone usage (mostly for debugging a single daemon by hand):
//   ./lifting_node --self 3 < scenario_with_roster.txt

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gossip/message.hpp"
#include "runtime/node_host.hpp"
#include "runtime/wire_scenario.hpp"

namespace {

int fail(const std::string& why) {
  std::printf("ERROR %s\n", why.c_str());
  std::fflush(stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lifting;

  std::uint32_t self_id = 0;
  bool have_self = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self") == 0 && i + 1 < argc) {
      self_id = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      have_self = true;
    } else {
      return fail(std::string("unknown argument: ") + argv[i]);
    }
  }
  if (!have_self) return fail("--self <node id> is required");

  // ---- scenario block
  std::string scenario_text;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "END_SCENARIO") break;
    scenario_text += line;
    scenario_text += '\n';
  }
  std::string error;
  const auto config = runtime::decode_wire_scenario(scenario_text, &error);
  if (!config.has_value()) return fail("bad scenario: " + error);
  if (!runtime::wire_supported(*config, &error)) {
    return fail("unsupported scenario: " + error);
  }
  if (self_id >= config->nodes) return fail("--self outside the population");

  runtime::NodeHost host(*config, NodeId{self_id});
  std::printf("PORT %u\n", host.port());
  std::fflush(stdout);

  // ---- roster + go
  std::vector<std::uint16_t> ports;
  bool go = false;
  while (std::getline(std::cin, line)) {
    if (line == "GO") {
      go = true;
      break;
    }
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word != "ROSTER") return fail("expected ROSTER or GO, got: " + line);
    ports.clear();
    unsigned long p = 0;
    while (in >> p) ports.push_back(static_cast<std::uint16_t>(p));
  }
  if (!go) return fail("stdin closed before GO");
  if (ports.size() != config->nodes) return fail("roster size mismatch");
  host.set_roster(ports);

  host.run();

  // ---- report
  const auto& stats = host.engine_stats();
  std::printf("STAT chunks_received %llu\n",
              static_cast<unsigned long long>(stats.chunks_received));
  std::printf("STAT chunks_emitted %llu\n",
              static_cast<unsigned long long>(host.chunks_emitted()));
  std::printf("STAT duplicate_serves %llu\n",
              static_cast<unsigned long long>(stats.duplicate_serves));
  const auto& udp = host.transport();
  std::printf("STAT messages_sent %llu\n",
              static_cast<unsigned long long>(udp.messages_sent()));
  std::printf("STAT decode_failures %llu\n",
              static_cast<unsigned long long>(udp.decode_failures()));
  std::printf("STAT socket_errors %llu\n",
              static_cast<unsigned long long>(udp.socket_errors()));
  std::printf("STAT send_failures %llu\n",
              static_cast<unsigned long long>(udp.send_failures()));
  // Local fault-injection outcomes (all zero when the plan is empty) and
  // reliable-audit-channel health (zero under the modeled-TCP default).
  const auto& faults = host.fault_stats();
  std::printf("STAT faults_dropped %llu\n",
              static_cast<unsigned long long>(faults.dropped()));
  std::printf("STAT faults_duplicated %llu\n",
              static_cast<unsigned long long>(faults.duplicated));
  std::printf("STAT faults_delayed %llu\n",
              static_cast<unsigned long long>(faults.delayed +
                                              faults.reordered));
  const auto audit = host.audit_channel_totals();
  std::printf("STAT audit_sends %llu\n",
              static_cast<unsigned long long>(audit.sends));
  std::printf("STAT audit_retries %llu\n",
              static_cast<unsigned long long>(audit.retries));
  std::printf("STAT audit_give_ups %llu\n",
              static_cast<unsigned long long>(audit.give_ups));
  std::printf("STAT audit_acks %llu\n",
              static_cast<unsigned long long>(audit.acks_received));
  std::printf("STAT audit_dups_suppressed %llu\n",
              static_cast<unsigned long long>(audit.dups_suppressed));
  const auto& kinds = udp.wire_stats();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i].count == 0) continue;
    std::printf("KIND %s %llu %llu %llu\n", gossip::message_kind_name(i),
                static_cast<unsigned long long>(kinds[i].count),
                static_cast<unsigned long long>(kinds[i].modeled_bytes),
                static_cast<unsigned long long>(kinds[i].wire_bytes));
  }
  std::printf("DONE\n");
  std::fflush(stdout);
  return 0;
}

// lifting_node — one-node daemon of the wire deployment.
//
// Hosts a single node's Engine/Agent stack (runtime::NodeHost) over real
// UDP datagrams. The launcher (lifting_loopback) speaks a line protocol
// over stdin/stdout:
//
//   launcher -> daemon   the wire scenario (key value lines), then
//                        "END_SCENARIO"
//   daemon  -> launcher  "PORT <p>"           (endpoint bound)
//   launcher -> daemon   "ROSTER <p0> ... <pn-1>",
//                        optionally "TRACE <dump path> <ring capacity>",
//                        then "GO"
//   daemon  -> launcher  (runs the scenario against the wall clock,
//                        streaming periodic "STAT <key> <value>" lines)
//                        final "STAT <key> <value>" lines,
//                        "KIND <name> <count> <modeled> <wire>" lines,
//                        "DONE"
//
// STAT keys repeat across the periodic snapshots; consumers take the last
// occurrence (the launcher's parser assigns, so re-reads are idempotent).
// The optional TRACE line arms the flight recorder (DESIGN.md §13); the
// binary dump is written right before DONE and merged across processes by
// tools/lifting_trace.
//
// Standalone usage (mostly for debugging a single daemon by hand):
//   ./lifting_node --self 3 < scenario_with_roster.txt

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gossip/message.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "runtime/node_host.hpp"
#include "runtime/wire_scenario.hpp"

namespace {

int fail(const std::string& why) {
  std::printf("ERROR %s\n", why.c_str());
  std::fflush(stdout);
  return 1;
}

/// Folds the host's counters and prints one STAT line per registry
/// counter. Called mid-run (stat hook) and once after the drain — the
/// registry keeps its slots across calls, so every snapshot re-folds the
/// same keys in the same order.
void emit_stats(lifting::runtime::NodeHost& host, lifting::obs::Registry& reg) {
  host.collect_metrics(reg);
  for (const auto& entry : reg.entries()) {
    if (entry.kind != lifting::obs::Registry::Kind::kCounter) continue;
    std::printf("STAT %s %llu\n", entry.name.c_str(),
                static_cast<unsigned long long>(entry.counter));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lifting;

  std::uint32_t self_id = 0;
  bool have_self = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self") == 0 && i + 1 < argc) {
      self_id = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      have_self = true;
    } else {
      return fail(std::string("unknown argument: ") + argv[i]);
    }
  }
  if (!have_self) return fail("--self <node id> is required");

  // ---- scenario block
  std::string scenario_text;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "END_SCENARIO") break;
    scenario_text += line;
    scenario_text += '\n';
  }
  std::string error;
  const auto config = runtime::decode_wire_scenario(scenario_text, &error);
  if (!config.has_value()) return fail("bad scenario: " + error);
  if (!runtime::wire_supported(*config, &error)) {
    return fail("unsupported scenario: " + error);
  }
  if (self_id >= config->nodes) return fail("--self outside the population");

  runtime::NodeHost host(*config, NodeId{self_id});
  std::printf("PORT %u\n", host.port());
  std::fflush(stdout);

  // ---- roster + optional trace arming + go
  std::vector<std::uint16_t> ports;
  std::string trace_path;
  bool go = false;
  while (std::getline(std::cin, line)) {
    if (line == "GO") {
      go = true;
      break;
    }
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word == "ROSTER") {
      ports.clear();
      unsigned long p = 0;
      while (in >> p) ports.push_back(static_cast<std::uint16_t>(p));
    } else if (word == "TRACE") {
      std::size_t capacity = 0;
      if (!(in >> trace_path >> capacity) || capacity == 0) {
        return fail("TRACE needs <dump path> <ring capacity>");
      }
      host.enable_trace(capacity);
    } else {
      return fail("expected ROSTER, TRACE or GO, got: " + line);
    }
  }
  if (!go) return fail("stdin closed before GO");
  if (ports.size() != config->nodes) return fail("roster size mismatch");
  host.set_roster(ports);

  // Stream counter snapshots while running so the launcher (or a human
  // tailing the pipe) sees progress mid-run, not just the postmortem. At
  // most ~30 snapshots per run: the launcher drains the pipe only after
  // the stream ends, so unbounded streaming could fill the pipe buffer
  // and wedge the event loop on a blocked printf.
  obs::Registry registry;
  const auto stat_interval =
      std::max(seconds(1.0), Duration{config->duration.count() / 30});
  host.set_stat_hook(stat_interval, [&] { emit_stats(host, registry); });

  host.run();

  // ---- report: final STAT totals, per-kind wire accounting, trace dump
  emit_stats(host, registry);
  const auto& kinds = host.transport().wire_stats();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i].count == 0) continue;
    std::printf("KIND %s %llu %llu %llu\n", gossip::message_kind_name(i),
                static_cast<unsigned long long>(kinds[i].count),
                static_cast<unsigned long long>(kinds[i].modeled_bytes),
                static_cast<unsigned long long>(kinds[i].wire_bytes));
  }
  if (!trace_path.empty()) {
    if (!obs::write_binary_dump(trace_path, *host.trace_ring(), self_id)) {
      return fail("failed to write trace dump: " + trace_path);
    }
  }
  std::printf("DONE\n");
  std::fflush(stdout);
  return 0;
}

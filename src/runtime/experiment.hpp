#ifndef LIFTING_RUNTIME_EXPERIMENT_HPP
#define LIFTING_RUNTIME_EXPERIMENT_HPP

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/controller.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "gossip/engine.hpp"
#include "gossip/mailer.hpp"
#include "gossip/playback.hpp"
#include "gossip/stream_source.hpp"
#include "lifting/agent.hpp"
#include "membership/directory.hpp"
#include "membership/rps.hpp"
#include "obs/trace.hpp"
#include "runtime/scenario.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

/// Builds and runs a full deployment from a ScenarioConfig: simulator,
/// lossy network, membership, one gossip engine + LiFTinG agent per node, a
/// stream source at node 0, expulsion propagation, and all the measurement
/// hooks the benches and tests need (score snapshots, detection statistics,
/// health curves, bandwidth accounting, ground-truth blame ledger).

namespace lifting::obs {
class Registry;
}  // namespace lifting::obs

namespace lifting::runtime {

/// Ground-truth record of every blame emission (message-loss-free), for
/// analysis and tests; the managers' (lossy) view is measured separately.
/// Node ids are dense, so the ledger is a flat per-node table — recording a
/// blame is two array adds, with no hashing on the emission path.
class BlameLedger {
 public:
  void record(NodeId target, double value, gossip::BlameReason reason) {
    const auto v = static_cast<std::size_t>(target.value());
    if (v >= totals_.size()) {
      totals_.resize(v + 1, 0.0);
      by_reason_.resize(v + 1);
    }
    totals_[v] += value;
    by_reason_[v][static_cast<std::size_t>(reason)] += value;
    ++emissions_;
  }
  [[nodiscard]] double total(NodeId target) const {
    const auto v = static_cast<std::size_t>(target.value());
    return v < totals_.size() ? totals_[v] : 0.0;
  }
  [[nodiscard]] double total(NodeId target, gossip::BlameReason reason) const {
    const auto v = static_cast<std::size_t>(target.value());
    if (v >= by_reason_.size()) return 0.0;
    return by_reason_[v][static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t emissions() const noexcept { return emissions_; }

  /// Pre-sizes the per-node tables for a known population, so the ledger
  /// never reallocates during a run (joiners beyond `n` still grow it).
  /// The ledger is already epoch-compacted by construction: it keeps one
  /// running total (plus per-reason totals) per node — O(population) —
  /// instead of the emission log, which grows with time.
  void reserve(std::uint32_t n) {
    totals_.reserve(n);
    by_reason_.reserve(n);
  }

  /// Forgets all recorded blame, keeping table capacity.
  void reset() noexcept {
    totals_.clear();
    by_reason_.clear();
    emissions_ = 0;
  }

 private:
  using ReasonTotals = std::array<double, gossip::kBlameReasonCount>;
  std::vector<double> totals_;
  std::vector<ReasonTotals> by_reason_;  // zero-initialized on resize
  std::uint64_t emissions_ = 0;
};

struct ExpulsionRecord {
  NodeId victim;
  double at_seconds = 0.0;
  bool from_audit = false;
  bool was_freerider = false;
};

/// Ground-truth churn records (timeline-driven joins and departures).
struct JoinRecord {
  NodeId node;
  double at_seconds = 0.0;
  bool freerider = false;
};
struct DepartureRecord {
  NodeId node;
  double at_seconds = 0.0;
  bool crashed = false;  // abrupt (failure detector lag) vs. clean leave
  bool was_freerider = false;
};
struct RejoinRecord {
  NodeId node;
  double at_seconds = 0.0;
  std::uint32_t epoch = 0;  // the new incarnation's alive epoch (>= 2)
  bool freerider = false;
};

/// One executed manager handoff: `departed` left `target`'s quorum and
/// `replacement` adopted its ledger row (migrated exactly once — the
/// departing store is zeroed by the move).
struct HandoffRecord {
  NodeId target;
  NodeId departed;
  NodeId replacement;
  std::uint32_t departed_epoch = 0;  // incarnation that departed
  double at_seconds = 0.0;
  bool migrated = false;  // false: the departing manager held no row yet
  /// The manager left the quorum by *expulsion*, not departure (the
  /// expulsion-handoff extension, DESIGN.md §7).
  bool expelled = false;
};

/// Quorum health over the current manager assignment: how many managers of
/// each live non-source node are themselves still present.
struct QuorumStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t targets = 0;
};

/// Ledger blame against honest nodes, split by churn role — leavers accrue
/// wrongful blame (a crashed partner looks like a δ1 freerider to its
/// verifiers) that must not be conflated with the loss-induced blame
/// against stayers, and rejoiners additionally absorb the divergent-view
/// window around each of their transitions.
struct HonestBlameSplit {
  double stayer_total = 0.0;
  double leaver_total = 0.0;
  double rejoiner_total = 0.0;
  std::size_t stayers = 0;
  std::size_t leavers = 0;
  std::size_t rejoiners = 0;  // rejoined and currently present
  [[nodiscard]] double stayer_mean() const {
    return stayers == 0 ? 0.0 : stayer_total / static_cast<double>(stayers);
  }
  [[nodiscard]] double leaver_mean() const {
    return leavers == 0 ? 0.0 : leaver_total / static_cast<double>(leavers);
  }
  [[nodiscard]] double rejoiner_mean() const {
    return rejoiners == 0 ? 0.0
                          : rejoiner_total / static_cast<double>(rejoiners);
  }
};

/// Detection outcome over a score snapshot at a threshold η.
struct DetectionStats {
  double detection = 0.0;        // fraction of freeriders below η (or expelled)
  double false_positive = 0.0;   // fraction of honest nodes below η (or expelled)
  std::size_t freeriders = 0;
  std::size_t honest = 0;
};

/// Bandwidth accounting (Table 5).
struct OverheadReport {
  std::uint64_t dissemination_bytes = 0;  // propose + request + serve
  std::uint64_t verification_bytes = 0;   // ack + confirm + blame + score + expel
  std::uint64_t audit_bytes = 0;          // TCP audit traffic
  [[nodiscard]] double verification_ratio() const {
    return dissemination_bytes == 0
               ? 0.0
               : static_cast<double>(verification_bytes) /
                     static_cast<double>(dissemination_bytes);
  }
};

class Experiment {
 public:
  explicit Experiment(ScenarioConfig config);

  /// Rewinds the built deployment and rebuilds it for `config` — the
  /// cheap-repetition path for Monte-Carlo sweeps. Outcomes are
  /// bit-identical to constructing a fresh Experiment(config) (asserted by
  /// tests/test_parallel_runner.cpp), but the expensive substrate storage
  /// is reused instead of torn down and re-grown: the event-queue arena,
  /// the delivery pool, the dense per-node tables, the metrics registry
  /// (counters zeroed, handles kept) and — when (nodes, managers, seed)
  /// are unchanged — the shared ManagerAssignment table. Everything a
  /// fresh Experiment would not have is gone: measurement hooks like
  /// sample_scores_every() must be re-armed after every reset.
  void reset(ScenarioConfig config);
  /// Same-scenario repetition under a new seed (reset(config) with only
  /// the seed replaced). Note: a timeline embedded in the config was
  /// generated by the caller, typically from the old seed; regenerate it
  /// (use the full reset(config) overload) if it should track the seed.
  void reset(std::uint64_t seed);
  /// Repeats the identical scenario (same config, same seed).
  void reset() { reset(config_.seed); }

  /// Runs to the configured duration.
  void run();
  /// Runs up to `t` (absolute simulation time); resumable. Timeline events
  /// are ordinary simulator events, so checkpoint boundaries never change
  /// outcomes (tests/test_runtime_timeline.cpp).
  void run_until(TimePoint t);

  /// Stops all periodic activity (source, engines, agents, samplers,
  /// pending timeline events) and drains the event queue: every in-flight
  /// delivery lands or is dropped and every one-shot timer fizzles. After
  /// this, `network_stats` is final and the delivery pool is empty — the
  /// leak invariant asserted by tests/test_scenario_sweep.cpp.
  void wind_down();

  // ---- structure
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::Network<gossip::Message>& network() noexcept {
    return *network_;
  }
  [[nodiscard]] membership::Directory& directory() noexcept {
    return directory_;
  }
  /// The RPS substrate (DESIGN.md §12), or null when
  /// membership.rps_partner_sampling is off — the inert default.
  [[nodiscard]] const membership::RpsNetwork* rps() const noexcept {
    return rps_.get();
  }
  [[nodiscard]] const ScenarioConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] NodeId source() const noexcept { return NodeId{0}; }
  [[nodiscard]] gossip::Engine& engine(NodeId id) {
    return *nodes_.at(id.value()).engine;
  }
  [[nodiscard]] lifting::Agent& agent(NodeId id) {
    return *nodes_.at(id.value()).agent;
  }
  [[nodiscard]] bool has_agents() const noexcept {
    return config_.lifting_enabled;
  }
  [[nodiscard]] bool is_freerider(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < freerider_.size() && freerider_[v];
  }
  [[nodiscard]] bool is_weak(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < weak_.size() && weak_[v];
  }
  [[nodiscard]] const std::vector<NodeId>& freerider_ids() const noexcept {
    return freerider_list_;
  }
  /// The freerider ids a fresh Experiment over (seed, nodes, fraction)
  /// would flag (sorted), derivable without building one — the role
  /// assignment is a pure function of the triple. The ONE source of that
  /// derivation: scenario builders that need the roles up front (e.g.
  /// adversary_frontier_config's honest-departure burst) must call this
  /// instead of re-implementing the stream.
  [[nodiscard]] static std::vector<NodeId> derive_freerider_ids(
      std::uint64_t seed, std::uint32_t nodes, double fraction);

  // ---- dynamic membership
  /// Every id ever part of the deployment (initial population + joiners);
  /// ids are never recycled, so this is also the dense table bound.
  [[nodiscard]] std::uint32_t population() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] bool is_departed(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < departed_.size() && departed_[v];
  }
  [[nodiscard]] const std::vector<JoinRecord>& joins() const noexcept {
    return joins_;
  }
  [[nodiscard]] const std::vector<DepartureRecord>& departures()
      const noexcept {
    return departures_;
  }
  [[nodiscard]] const std::vector<RejoinRecord>& rejoins() const noexcept {
    return rejoins_;
  }
  /// Has `id` ever re-entered after a departure (any incarnation)?
  [[nodiscard]] bool ever_rejoined(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < ever_rejoined_.size() && ever_rejoined_[v] != 0;
  }
  [[nodiscard]] HonestBlameSplit honest_blame_split() const;

  // ---- manager handoff (DESIGN.md §7)
  /// Handoffs executed so far, in execution order. Handoffs for rows the
  /// assignment materializes later (no ledger state to migrate) are
  /// counted by the assignment's promotion counter instead.
  [[nodiscard]] const std::vector<HandoffRecord>& handoffs() const noexcept {
    return handoffs_;
  }
  /// Total promotions (the bench's handoff count). Measurement-
  /// independent: every row is materialized at a protocol-defined instant
  /// (base rows when churn starts, joiner rows at join), so the counter is
  /// a property of the run, not of who looked at which row when.
  [[nodiscard]] std::uint64_t handoff_promotions() const noexcept;
  /// Present-manager quorum over every live non-source node. A manager
  /// counts as present only while it is neither churn-departed nor expelled
  /// from the membership (an indicted manager is not a working quorum
  /// member, whether or not expulsion_handoff replaced it). Outcome-
  /// neutral (rows are already materialized and the replay contract covers
  /// stragglers) — safe to call mid-run for quorum-over-time curves.
  [[nodiscard]] QuorumStats quorum_stats();

  /// Has an expulsion of `id` been applied to the membership (committed
  /// AND propagated)? The latched commit alone (majority_expelled) does
  /// not yet vacate the manager role.
  [[nodiscard]] bool is_expelled_member(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < expelled_applied_.size() && expelled_applied_[v] != 0;
  }

  // ---- adaptive adversaries (src/adversary/, DESIGN.md §8)
  /// Aggregate over every adversary controller of the run, finalized at
  /// the current simulation time. mean_realized_gain is the adaptive
  /// analogue of Fig. 12's bandwidth gain: BehaviorSpec::gain() integrated
  /// over each adversary's present time.
  struct AdversaryStats {
    std::size_t adversaries = 0;
    double mean_realized_gain = 0.0;
    double mean_present_fraction = 0.0;  // of elapsed simulation time
    std::uint64_t behavior_switches = 0;
    std::uint64_t probes = 0;
    std::uint64_t bounces = 0;
  };
  [[nodiscard]] AdversaryStats adversary_stats();
  /// The controller steering `id`, or null (honest node, or no strategy
  /// configured). For tests and measurement code.
  [[nodiscard]] adversary::AdversaryController* adversary_controller(
      NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    return v < controllers_.size() ? controllers_[v].get() : nullptr;
  }

  // ---- measurements
  /// Min-vote score of `id` over its managers' (lossy) ledgers — exactly
  /// what a protocol-level read returns, obtained without messages.
  [[nodiscard]] double true_score(NodeId id);
  /// Is `id` marked expelled by a majority of its managers?
  [[nodiscard]] bool majority_expelled(NodeId id);
  /// Scores of all non-source nodes, split honest/freerider.
  struct ScoreSnapshot {
    std::vector<double> honest;
    std::vector<double> freeriders;
  };
  [[nodiscard]] ScoreSnapshot snapshot_scores();
  [[nodiscard]] DetectionStats detection_at(double eta);

  /// How periodic score samples are retained. kStream — the default — keeps
  /// one O(1) statistics summary per sample, so the timeline costs
  /// O(samples) regardless of population; kRetained additionally stores
  /// every node's score per sample in score_timeline() (O(nodes × samples),
  /// the classic mode for per-node trajectory plots).
  enum class ScoreSampleMode { kStream, kRetained };

  /// Enables periodic score sampling every `interval` (requires LiFTinG);
  /// each sample covers the then-live non-source population. Call before
  /// the first run_until().
  void sample_scores_every(Duration interval,
                           ScoreSampleMode mode = ScoreSampleMode::kStream);
  struct TimedScores {
    double at_seconds = 0.0;
    ScoreSnapshot scores;
  };
  /// Full per-sample score vectors; populated only in kRetained mode.
  [[nodiscard]] const std::vector<TimedScores>& score_timeline()
      const noexcept {
    return score_timeline_;
  }

  /// One streamed score sample: summary statistics only.
  struct ScoreSummary {
    double at_seconds = 0.0;
    std::size_t honest = 0;
    std::size_t freeriders = 0;
    double honest_mean = 0.0;
    double honest_min = 0.0;
    double freerider_mean = 0.0;
    double freerider_max = 0.0;
  };
  /// Populated in both sampling modes.
  [[nodiscard]] const std::vector<ScoreSummary>& score_summaries()
      const noexcept {
    return score_summaries_;
  }

  /// Health curve over honest nodes. Churn-aware: departed nodes are
  /// excluded (their logs froze mid-stream), and joiners are only counted
  /// once they were present for the whole judgeable window (join time
  /// before the playback warmup end) — otherwise every pre-join chunk
  /// would count against them.
  [[nodiscard]] std::vector<gossip::HealthPoint> health_curve(
      const std::vector<double>& lags_seconds, bool honest_only = true,
      const gossip::PlaybackConfig& playback = {});

  /// Arms the streaming health measurement — the O(nodes) mode for
  /// million-node runs. Every `fold_interval`, chunks whose judgment window
  /// has closed (emitted_at + max queried lag behind the clock) fold into
  /// per-(node, lag) on-time counters, and every delivery log drops the
  /// timestamps below the fold line (`DeliveryLog::compact_before`), so
  /// per-node delivery state is bounded by the fold horizon instead of the
  /// stream length. streamed_health_curve() then returns bit-identical
  /// values to health_curve(lags, honest_only, playback) over fully
  /// retained logs: folding is pure integer bookkeeping over the same
  /// on-time/eligible counts (asserted by tests/test_streamed_health.cpp).
  /// Fold events read logs and never touch any rng, so arming this cannot
  /// perturb fixed-seed outcomes. Call before the first run_until(); like
  /// sample_scores_every, it must be re-armed after reset().
  void enable_streamed_health(std::vector<double> lags_seconds,
                              bool honest_only,
                              const gossip::PlaybackConfig& playback,
                              Duration fold_interval);
  [[nodiscard]] std::vector<gossip::HealthPoint> streamed_health_curve();

  [[nodiscard]] OverheadReport overhead() const;
  [[nodiscard]] const sim::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Arms the flight recorder (DESIGN.md §13): a TraceRing of `capacity`
  /// records fed by every instrumented seam — engine phases, verifier
  /// verdicts, blame/ledger rows, score reads and expulsion ballots,
  /// manager handoffs, RPS merges, adversary ticks, injected faults.
  /// Recording is passive (no rng draws, no events), so armed fixed-seed
  /// runs stay bit-identical to disarmed ones; the disarmed default
  /// constructs and allocates nothing. A measurement hook like
  /// sample_scores_every: reset() drops the recorder, re-arm after it.
  void enable_trace(std::size_t capacity);
  /// The armed recorder, or null (disarmed).
  [[nodiscard]] obs::Recorder* trace() noexcept { return recorder_.get(); }
  /// The armed recorder's ring, or null (disarmed).
  [[nodiscard]] const obs::TraceRing* trace_ring() const noexcept {
    return recorder_ == nullptr ? nullptr : &recorder_->ring();
  }

  /// Folds every scattered counter family into one obs::Registry — wire
  /// stats (sim metrics), network/transport totals, engine duplicate
  /// counters, audit-channel delivery health, fault outcomes, ledger and
  /// expulsion tallies. Absolute totals (idempotent re-fold, not deltas).
  void collect_metrics(obs::Registry& out) const;
  [[nodiscard]] const sim::NetworkStats& network_stats() const {
    return network_->stats();
  }
  /// Transport fault-injection outcomes (src/faults/, DESIGN.md §11); all
  /// zero when the scenario's FaultPlan is empty.
  [[nodiscard]] const faults::FaultInjector::Stats& fault_stats() const {
    return injector_->stats();
  }
  /// Audit-channel delivery health summed over every live and retired
  /// agent (reliable-UDP mode; all zero under the modeled-TCP default).
  [[nodiscard]] lifting::Agent::AuditChannelStats audit_channel_totals() const {
    lifting::Agent::AuditChannelStats totals;
    const auto fold = [&totals](const std::vector<Node>& pool) {
      for (const auto& node : pool) {
        if (!node.agent) continue;
        const auto t = node.agent->audit_channel_totals();
        totals.sends += t.sends;
        totals.retries += t.retries;
        totals.give_ups += t.give_ups;
        totals.acks_received += t.acks_received;
        totals.dups_suppressed += t.dups_suppressed;
      }
    };
    fold(nodes_);
    fold(retired_);
    return totals;
  }
  [[nodiscard]] const BlameLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const std::vector<ExpulsionRecord>& expulsions()
      const noexcept {
    return expulsions_;
  }
  [[nodiscard]] const std::vector<gossip::ChunkMeta>& emitted_chunks()
      const noexcept {
    return source_->emitted();
  }
  [[nodiscard]] const std::vector<lifting::AuditReport>& audit_reports()
      const noexcept {
    return audit_reports_;
  }

 private:
  struct Node {
    std::unique_ptr<lifting::Agent> agent;  // null when LiFTinG is disabled
    std::unique_ptr<gossip::Engine> engine;
  };

  void build();
  /// Clears every per-run state table (keeping capacity) so build() can
  /// repopulate a reused deployment — the shared core of the constructor
  /// and the reset() path.
  void rewind();
  void on_expulsion_committed(NodeId victim, bool from_audit);

  // ---- timeline execution
  void apply_event(const ScenarioEvent& event);
  NodeId join_node(const ScenarioEvent& event);
  void retire_node(NodeId id, bool crash);
  void rejoin_node(NodeId id);
  /// Executes the delayed manager handoff for a departed node: registers
  /// the departure with the assignment and migrates ledger rows to the
  /// promoted replacements.
  void run_handoff(NodeId id);
  /// Same promotion + migration for a node whose expulsion was applied to
  /// the membership (expulsion_handoff, DESIGN.md §7). Shares the
  /// assignment's departed mask with the churn path, so the two can never
  /// migrate the same row twice.
  void run_expulsion_handoff(NodeId victim);
  /// Migrates the ledger rows of `executed` promotions and records them.
  void execute_handoffs(
      const std::vector<lifting::ManagerAssignment::Handoff>& executed,
      bool expelled);
  /// Builds and starts the adversary controller of freerider `id` (no-op
  /// unless a strategy is configured).
  void make_controller(NodeId id);
  void make_node(std::uint32_t i, const gossip::BehaviorSpec& behavior,
                 const sim::LinkProfile& profile);
  void set_freerider(NodeId id, bool freeride);
  /// Grows every dense per-node table to cover ids < `n`.
  void ensure_tables(std::uint32_t n);
  void schedule_score_sample();
  void schedule_rps_round();
  void schedule_health_fold();
  void fold_streamed_health();
  /// Fills an empty collusion coalition with the current freerider set.
  [[nodiscard]] gossip::BehaviorSpec resolve_behavior(
      gossip::BehaviorSpec spec) const;

  ScenarioConfig config_;
  Pcg32 rng_;
  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  membership::Directory directory_;
  /// RPS substrate; constructed only when membership.rps_partner_sampling
  /// is on (null = bit-identical legacy partner selection).
  std::unique_ptr<membership::RpsNetwork> rps_;
  std::unique_ptr<sim::Network<gossip::Message>> network_;
  /// Transport stack under the Mailer: SimTransport over the network, the
  /// fault injector wrapped around it (pure passthrough on an empty plan).
  std::unique_ptr<net::SimTransport> transport_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<gossip::Mailer> mailer_;
  std::vector<Node> nodes_;
  /// Flight recorder (enable_trace); null = disarmed, the inert default.
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<gossip::StreamSource> source_;
  std::shared_ptr<lifting::ManagerAssignment> assignment_;
  lifting::Agent::Hooks hooks_;

  // Dense per-node role/state tables, indexed by NodeId::value().
  std::vector<std::uint8_t> freerider_;
  std::vector<NodeId> freerider_list_;
  std::vector<std::uint8_t> weak_;
  std::vector<std::uint8_t> departed_;  // left/crashed through the timeline
  std::vector<TimePoint> join_time_;
  BlameLedger ledger_;
  std::vector<ExpulsionRecord> expulsions_;
  std::vector<std::uint8_t> expulsion_scheduled_;
  std::vector<std::uint8_t> expelled_applied_;  // expulsion reached membership
  std::vector<lifting::AuditReport> audit_reports_;

  // ---- adaptive adversaries (one controller per adversarial node; empty
  // vectors of nulls when no strategy is configured — the inert default)
  std::vector<std::unique_ptr<adversary::AdversaryController>> controllers_;
  std::unique_ptr<adversary::CoalitionHub> coalition_hub_;

  // ---- churn bookkeeping
  std::vector<ScenarioEvent> timeline_events_;  // time-ordered
  std::vector<JoinRecord> joins_;
  std::vector<DepartureRecord> departures_;
  std::vector<RejoinRecord> rejoins_;
  std::vector<HandoffRecord> handoffs_;
  std::vector<std::uint8_t> ever_rejoined_;  // dense, any incarnation
  /// Retired incarnations of rejoined ids: the old Engine/Agent objects
  /// must outlive any in-flight timer that still references them, so a
  /// rejoin moves them here instead of destroying them (same in-place
  /// retirement contract as plain departures, DESIGN.md §5/§7).
  std::vector<Node> retired_;
  std::uint32_t next_join_id_ = 0;

  Duration score_sample_interval_ = Duration::zero();
  ScoreSampleMode score_sample_mode_ = ScoreSampleMode::kStream;
  std::vector<TimedScores> score_timeline_;
  std::vector<ScoreSummary> score_summaries_;

  /// Streaming health state (enable_streamed_health).
  struct StreamedHealth {
    bool enabled = false;
    std::vector<double> lags_seconds;
    bool honest_only = true;
    gossip::PlaybackConfig playback;
    Duration fold_interval = Duration::zero();
    /// Chunks fold once emitted_at + fold_horizon <= now: the largest
    /// queried lag (and the common window), so every lag's verdict on the
    /// chunk is final at fold time.
    Duration fold_horizon = Duration::zero();
    std::size_t folded_chunks = 0;      ///< judged prefix of the stream
    std::uint64_t folded_eligible = 0;  ///< warmup-passing folded chunks
    /// Per-(node, lag) on-time deliveries among folded chunks, node-major.
    std::vector<std::uint32_t> on_time;
  };
  StreamedHealth streamed_;

  bool started_ = false;
  bool wound_down_ = false;
};

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_EXPERIMENT_HPP

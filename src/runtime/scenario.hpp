#ifndef LIFTING_RUNTIME_SCENARIO_HPP
#define LIFTING_RUNTIME_SCENARIO_HPP

#include <cstdint>

#include "adversary/membership.hpp"
#include "adversary/strategy.hpp"
#include "common/time.hpp"
#include "faults/plan.hpp"
#include "gossip/behavior.hpp"
#include "gossip/engine.hpp"
#include "gossip/stream_source.hpp"
#include "lifting/params.hpp"
#include "membership/sampler_policy.hpp"
#include "runtime/timeline.hpp"
#include "sim/network.hpp"

/// Experiment configuration: one struct describes a full deployment —
/// population, stream, network conditions, freerider population and
/// LiFTinG parameters. Presets mirror the paper's setups.

namespace lifting::runtime {

struct ScenarioConfig {
  // ---- population
  std::uint32_t nodes = 300;
  std::uint64_t seed = 42;

  // ---- protocol + stream
  gossip::GossipParams gossip;
  gossip::StreamSource::Params stream;
  Duration duration = seconds(60.0);

  // ---- LiFTinG
  bool lifting_enabled = true;
  LiftingParams lifting;
  /// When true, committed expulsions are propagated into the membership
  /// after `expulsion_propagation` (honest nodes then shun the victim).
  bool expulsion_enabled = false;
  Duration expulsion_propagation = seconds(1.0);

  // ---- freeriders
  /// Fraction of the population that freerides (the source never does).
  double freerider_fraction = 0.0;
  /// Behavior of every freerider. When `collusion` is set, the coalition
  /// is filled with the actual freerider ids by the experiment.
  gossip::BehaviorSpec freerider_behavior;

  // ---- adaptive adversaries (src/adversary/, DESIGN.md §8)
  /// Reactive attack policy run by every freerider on top of (and mutating)
  /// `freerider_behavior` — oscillating duty cycles, score-aware
  /// throttling, whitewashing departures, coalition view pooling. The
  /// default (Strategy::kNone) builds no controllers, draws no rng streams
  /// and schedules no events: a run without a strategy is bit-identical to
  /// one predating the subsystem.
  adversary::AdversaryConfig adversary;

  // ---- network conditions
  sim::LinkProfile link;       ///< profile of well-connected nodes
  double weak_fraction = 0.0;  ///< fraction of weak (lossy/slow) honest nodes
  sim::LinkProfile weak_link;  ///< their profile (§7.3's poor connections)
  /// Deterministic transport-seam fault injection (src/faults/,
  /// DESIGN.md §11): bursty loss, delay spikes, duplication/reordering,
  /// partition windows. Empty (the default) is fully inert — no rng, no
  /// events — so goldens are untouched. The same plan drives both the
  /// simulator and the wire deployment; timeline kSetFaults events can
  /// swap it mid-run.
  faults::FaultPlan faults;

  // ---- membership substrate (RPS, DESIGN.md §12)
  /// Random-peer-sampling configuration. Off by default (and fully inert:
  /// no RpsNetwork is constructed, no rng stream is drawn, nothing is
  /// scheduled — a run with the default block is bit-identical to one
  /// predating the subsystem). With rps_partner_sampling on, every gossip
  /// engine draws its partners from its node's RPS partial view instead of
  /// the full directory, which is where the membership-layer attacks and
  /// the hardened sampler variant become observable end to end.
  struct MembershipConfig {
    /// Master switch: run an RpsNetwork alongside the deployment and use
    /// its per-node views as the partner-selection source.
    bool rps_partner_sampling = false;
    /// Wall-clock period of one synchronous shuffle round.
    Duration rps_round_period = milliseconds(500);
    std::uint32_t view_size = 12;
    std::uint32_t shuffle_length = 6;
    /// Shuffle rounds run before the deployment starts (view warm-up).
    std::uint32_t bootstrap_rounds = 12;
    /// Legacy (bit-identical) or hardened sampler (membership/).
    membership::SamplerPolicy sampler;
    /// Membership-level attack over the freerider coalition
    /// (adversary/membership.hpp). Requires rps_partner_sampling.
    adversary::MembershipAttackConfig attack;
  };
  MembershipConfig membership;

  // ---- dynamic membership
  /// Scheduled deployment events (joins, leaves, crashes, rejoins,
  /// behavior/link switches). Empty = the classic static deployment.
  ScenarioTimeline timeline;
  /// How long a crashed node lingers in the membership before the failure
  /// detector removes it. During this window partners keep selecting the
  /// dead node and its verifiers blame the silence — the wrongful-blame
  /// regime bench_churn measures. Clean leaves propagate immediately.
  Duration failure_detection = seconds(2.0);

  // ---- churn-resilient accountability (DESIGN.md §7)
  /// When a manager departs, promote a deterministic replacement from the
  /// base pool and migrate its ledger row (manager handoff). Off = the
  /// quorum silently shrinks (the pre-handoff baseline) AND a departed
  /// manager that rejoins comes back with empty stores — without a
  /// migration protocol, blame knowledge is not conserved across a
  /// bounce.
  bool manager_handoff = true;
  /// Delay between a departure becoming known to the membership and the
  /// handoff executing (models the reassignment round). For crashes the
  /// failure-detection lag is added first.
  Duration manager_handoff_delay = seconds(1.0);
  /// Extend manager handoff to *expelled* managers: once an expulsion has
  /// been applied to the membership, the victim's manager rows promote the
  /// same deterministic replacements a departure would (and migrate their
  /// ledger state), after the same manager_handoff_delay. Off = the
  /// pre-fix baseline where an expelled manager leaves a permanent quorum
  /// hole. Requires manager_handoff; inert while nothing is expelled.
  bool expulsion_handoff = true;
  /// Maximum per-observer membership-view propagation lag: joins/leaves
  /// become visible to each node after a deterministic pseudo-random delay
  /// in [0, view_propagation] (divergent views — verifiers and auditors
  /// can disagree about liveness). Zero = the legacy shared view,
  /// bit-identical to pre-view behavior.
  Duration view_propagation = Duration::zero();
  /// Score history of a rejoining id: kFresh restarts the blame record and
  /// period count at the rejoin instant; kCarried keeps the previous
  /// incarnation's record (a returning node answers for its past).
  enum class RejoinScores : std::uint8_t { kFresh, kCarried };
  RejoinScores rejoin_scores = RejoinScores::kFresh;
  /// With manager_handoff OFF, conserve blame across a bounce anyway by
  /// carrying the departed incarnation's manager-ledger rows into the
  /// rejoining one (no migration protocol, no promotions — just the
  /// returning manager keeping its own store). Closes the ROADMAP item
  /// that made bench_adversary_frontier's handoff A/B compare "handoff"
  /// against "handoff + store amnesia" instead of handoff alone. Inert
  /// while manager_handoff is on (the handoff path already migrates).
  bool carried_manager_store = false;

  void validate() const;

  /// The paper's PlanetLab deployment (§7.1): 300 nodes, 674 kbps stream,
  /// f = 7, Tg = 500 ms, M = 25 managers, ~4% loss, 10% freeriders with
  /// Δ = (1/7, 0.1, 0.1).
  [[nodiscard]] static ScenarioConfig planetlab();

  /// A small fast configuration for tests and the quickstart example.
  [[nodiscard]] static ScenarioConfig small(std::uint32_t nodes = 60);
};

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_SCENARIO_HPP

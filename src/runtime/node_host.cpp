#include "runtime/node_host.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "obs/registry.hpp"
#include "runtime/experiment.hpp"
#include "runtime/wire_scenario.hpp"

namespace lifting::runtime {

namespace {
/// After the stream ends, keep polling this long so in-flight datagrams
/// (tail serves, acks of the final period) land before stats are read.
constexpr Duration kDrainWindow = milliseconds(300);
/// Longest poll_wait nap — bounds how late a timer can fire past its due
/// time when no datagram wakes the loop earlier.
constexpr Duration kMaxNap = milliseconds(5);
}  // namespace

NodeHost::NodeHost(const ScenarioConfig& config, NodeId self)
    : config_(config),
      self_(self),
      injector_(udp_, sim_, config.seed),
      mailer_(injector_, &metrics_),
      directory_(config.nodes) {
  config_.validate();
  std::string why;
  require(wire_supported(config_, &why), "wire deployment unsupported: " + why);
  require(self_.value() < config_.nodes, "self id outside the population");
  injector_.set_plan(config_.faults);
  mailer_.set_datagram_audit_pricing(
      config_.lifting_enabled &&
      config_.lifting.audit_channel == LiftingParams::AuditChannel::kReliableUdp);

  const bool bound =
      udp_.add_endpoint(self_, [this](NodeId from, gossip::Message msg) {
        // Same routing split as Experiment::make_node: the leading variant
        // alternatives are the gossip kinds, the rest is LiFTinG traffic.
        if (msg.index() < gossip::kGossipKindCount) {
          engine_->handle(from, msg);
        } else if (agent_) {
          agent_->handle(from, msg);
        }
      });
  require(bound, "failed to bind a loopback UDP endpoint");

  // Roles are derived, not communicated: every process draws the same
  // freerider set from the same role stream.
  const auto freeriders = Experiment::derive_freerider_ids(
      config_.seed, config_.nodes, config_.freerider_fraction);
  freerider_ = std::binary_search(freeriders.begin(), freeriders.end(), self_);
  const auto behavior =
      freerider_ ? config_.freerider_behavior : gossip::BehaviorSpec::honest();

  const std::uint32_t i = self_.value();
  if (config_.lifting_enabled) {
    assignment_ = std::make_shared<lifting::ManagerAssignment>(
        config_.nodes, config_.lifting.managers, config_.seed);
    agent_ = std::make_unique<lifting::Agent>(
        sim_, mailer_, directory_, self_, config_.lifting, behavior,
        derive_rng(config_.seed, 0xA00000000ULL + i), config_.seed, sim_.now(),
        lifting::Agent::Hooks{}, assignment_);
  }
  auto params = config_.gossip;
  params.emit_acks = config_.lifting_enabled;
  engine_ = std::make_unique<gossip::Engine>(
      sim_, mailer_, directory_, self_, params, behavior,
      derive_rng(config_.seed, 0xB00000000ULL + i),
      agent_ ? agent_.get() : nullptr);
  engine_->reserve_stream_chunks(config_.stream.expected_chunks());
  if (self_ == NodeId{0}) {
    source_ = std::make_unique<gossip::StreamSource>(sim_, *engine_,
                                                     config_.stream);
  }
}

std::uint16_t NodeHost::port() const { return udp_.port_of(self_); }

void NodeHost::enable_trace(std::size_t capacity) {
  require(recorder_ == nullptr, "flight recorder already armed");
  recorder_ = std::make_unique<obs::Recorder>(sim_, capacity);
  injector_.set_trace(recorder_.get());
  engine_->set_trace(recorder_.get());
  if (agent_) agent_->set_trace(recorder_.get());
}

void NodeHost::set_stat_hook(Duration interval, std::function<void()> hook) {
  require(interval > Duration::zero(), "stat interval must be positive");
  stat_interval_ = interval;
  stat_hook_ = std::move(hook);
}

void NodeHost::stat_tick(TimePoint end) {
  stat_hook_();
  if (sim_.now() + stat_interval_ <= end) {
    sim_.schedule_after(stat_interval_, [this, end] { stat_tick(end); });
  }
}

void NodeHost::collect_metrics(obs::Registry& out) const {
  const auto& engine = engine_->stats();
  out.set_counter("chunks_received", engine.chunks_received);
  out.set_counter("chunks_emitted", chunks_emitted());
  out.set_counter("duplicate_serves", engine.duplicate_serves);
  out.set_counter("proposals_sent", engine.proposals_sent);
  out.set_counter("requests_sent", engine.requests_sent);
  out.set_counter("chunks_served", engine.chunks_served);
  out.set_counter("invalid_requests", engine.invalid_requests);
  out.set_counter("duplicate_requests", engine.duplicate_requests);
  out.set_counter("messages_sent", udp_.messages_sent());
  out.set_counter("decode_failures", udp_.decode_failures());
  out.set_counter("socket_errors", udp_.socket_errors());
  out.set_counter("send_failures", udp_.send_failures());
  const auto& faults = injector_.stats();
  out.set_counter("faults_dropped", faults.dropped());
  out.set_counter("faults_duplicated", faults.duplicated);
  out.set_counter("faults_delayed", faults.delayed + faults.reordered);
  const auto audit = audit_channel_totals();
  out.set_counter("audit_sends", audit.sends);
  out.set_counter("audit_retries", audit.retries);
  out.set_counter("audit_give_ups", audit.give_ups);
  out.set_counter("audit_acks", audit.acks_received);
  out.set_counter("audit_dups_suppressed", audit.dups_suppressed);
  if (recorder_ != nullptr) {
    out.set_counter("trace_recorded", recorder_->ring().total_recorded());
    out.set_counter("trace_dropped", recorder_->ring().dropped());
  }
}

void NodeHost::set_roster(const std::vector<std::uint16_t>& ports) {
  require(ports.size() == config_.nodes, "roster size != population");
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    const NodeId id{i};
    if (id == self_) continue;
    require(ports[i] != 0, "roster carries a zero port");
    require(udp_.add_route(id, ports[i]), "duplicate roster entry");
  }
  roster_set_ = true;
}

void NodeHost::run() {
  require(roster_set_, "set_roster before run()");
  using Clock = std::chrono::steady_clock;

  // Desynchronized start like the simulator's population (the per-node
  // stream constant is the joiner-offset base, unused in the static wire
  // deployment, so it collides with nothing).
  auto offset_rng =
      derive_rng(config_.seed, 0x9000000000ULL + self_.value());
  const auto offset = Duration{static_cast<Duration::rep>(
      offset_rng.uniform() *
      static_cast<double>(config_.gossip.period.count()))};
  engine_->start(offset);
  if (agent_) agent_->start(offset);
  if (source_) source_->start();

  const TimePoint end = kSimEpoch + config_.duration;
  if (stat_hook_) {
    sim_.schedule_after(stat_interval_, [this, end] { stat_tick(end); });
  }
  const TimePoint drain_end = end + kDrainWindow;
  const auto wall0 = Clock::now();
  const auto wall_now = [&] {
    return kSimEpoch +
           std::chrono::duration_cast<Duration>(Clock::now() - wall0);
  };

  // The drive loop: advance the virtual clock to the wall clock (firing
  // every due protocol timer at its scheduled virtual timestamp), drain
  // the socket, then sleep until the next timer or datagram.
  bool wound_down = false;
  for (;;) {
    const TimePoint now = std::min(wall_now(), drain_end);
    sim_.run_until(wound_down ? now : std::min(now, end));
    udp_.poll();
    if (!wound_down && now >= end) {
      // Wind down in Experiment::wind_down order; the stopped stacks keep
      // answering incoming traffic while the drain window runs.
      wound_down = true;
      if (source_) source_->stop();
      engine_->stop();
      if (agent_) agent_->stop();
    }
    if (now >= drain_end) break;
    Duration nap = kMaxNap;
    if (sim_.has_pending()) {
      const TimePoint next = sim_.next_event_time();
      nap = next > now ? std::min(nap, next - now) : Duration::zero();
    }
    udp_.poll_wait(static_cast<int>(nap.count() / 1000));
  }
}

}  // namespace lifting::runtime

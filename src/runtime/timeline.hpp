#ifndef LIFTING_RUNTIME_TIMELINE_HPP
#define LIFTING_RUNTIME_TIMELINE_HPP

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "faults/plan.hpp"
#include "gossip/behavior.hpp"
#include "sim/network.hpp"

/// Scenario timeline: scheduled deployment events that turn a static
/// ScenarioConfig into a dynamic one — nodes joining mid-stream, leaving
/// gracefully, crashing, switching behavior (honest → freerider), or having
/// their link reprofiled. The timeline is declarative data; the Experiment
/// executes it through ordinary simulator events, so event application
/// interleaves deterministically with protocol traffic and `run_until`
/// checkpointing is oblivious to event boundaries.
///
/// Ordering contract: events are applied in (time, insertion-order) — two
/// events with equal timestamps apply in the order they were added
/// (validated by tests/test_runtime_timeline.cpp).

namespace lifting::runtime {

/// Sentinel for kJoin events: "allocate the next fresh id". Joiner ids are
/// never recycled from departed nodes, so dense NodeId-indexed tables
/// (ledger, engines, score stores) can never alias two incarnations.
inline constexpr NodeId kAutoNodeId{0xFFFFFFFFU};

enum class ScenarioEventKind : std::uint8_t {
  kJoin,         ///< a new node enters the deployment
  kLeave,        ///< graceful departure (membership updated immediately)
  kCrash,        ///< abrupt death (membership notices after failure_detection)
  kRejoin,       ///< a previously-departed id re-enters (epoch bumps)
  kSetBehavior,  ///< node switches behavior mid-run
  kSetLink,      ///< node's link profile changes mid-run
  kSetFaults,    ///< swap the transport fault plan (whole deployment)
};

struct ScenarioEvent {
  Duration at = Duration::zero();  ///< relative to experiment start
  ScenarioEventKind kind = ScenarioEventKind::kLeave;
  /// kJoin: the joiner's id (kAutoNodeId = allocate); others: the target.
  NodeId node = kAutoNodeId;
  /// kJoin: initial behavior; kSetBehavior: the new behavior. A collusion
  /// spec with an empty coalition is filled with the current freerider set
  /// when the event applies.
  gossip::BehaviorSpec behavior{};
  /// Role accounting for kJoin/kSetBehavior: is the node a freerider from
  /// now on (drives detection/false-positive statistics)?
  bool freerider = false;
  /// kJoin (when has_link) / kSetLink: the link profile.
  sim::LinkProfile link{};
  bool has_link = false;  ///< kJoin: false = use the scenario default link
  /// kSetFaults: the new transport fault plan (replaces the current one;
  /// an empty plan heals everything). Applies to the whole deployment, so
  /// `node` is ignored for this kind.
  faults::FaultPlan faults{};
};

class ScenarioTimeline {
 public:
  ScenarioTimeline& add(ScenarioEvent event) {
    events_.push_back(std::move(event));
    return *this;
  }

  // ---- convenience builders (all return *this for chaining)
  ScenarioTimeline& join_at(Duration at,
                            gossip::BehaviorSpec behavior = {},
                            bool freerider = false,
                            NodeId node = kAutoNodeId) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kJoin;
    e.node = node;
    e.behavior = std::move(behavior);
    e.freerider = freerider;
    return add(std::move(e));
  }
  ScenarioTimeline& leave_at(Duration at, NodeId node) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kLeave;
    e.node = node;
    return add(std::move(e));
  }
  ScenarioTimeline& crash_at(Duration at, NodeId node) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kCrash;
    e.node = node;
    return add(std::move(e));
  }
  /// Re-enters a departed id (DESIGN.md §7). The Experiment restores the
  /// node's *scenario-level* role — freerider flag (with the scenario's
  /// freerider behavior) and weak-link class; a custom BehaviorSpec or link
  /// installed mid-run via set_behavior/set_link is NOT carried across the
  /// departure (re-apply it after the rejoin if needed) — and bumps its
  /// alive epoch. The event is skipped if the node is not actually departed
  /// when it applies (e.g. it was expelled first — an indictment is not
  /// outlived by leaving).
  ScenarioTimeline& rejoin_at(Duration at, NodeId node) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kRejoin;
    e.node = node;
    return add(std::move(e));
  }
  ScenarioTimeline& set_behavior_at(Duration at, NodeId node,
                                    gossip::BehaviorSpec behavior,
                                    bool freerider) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kSetBehavior;
    e.node = node;
    e.behavior = std::move(behavior);
    e.freerider = freerider;
    return add(std::move(e));
  }
  ScenarioTimeline& set_link_at(Duration at, NodeId node,
                                sim::LinkProfile link) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kSetLink;
    e.node = node;
    e.link = link;
    e.has_link = true;
    return add(std::move(e));
  }
  /// Replaces the deployment-wide transport fault plan at `at` (src/faults/,
  /// DESIGN.md §11). Pass an empty plan to heal: partitions lift, loss and
  /// reordering stop. Injector chain state and rng streams persist across
  /// swaps, so toggling a plan off and on does not replay fault decisions.
  ScenarioTimeline& set_faults_at(Duration at, faults::FaultPlan plan) {
    ScenarioEvent e;
    e.at = at;
    e.kind = ScenarioEventKind::kSetFaults;
    e.faults = std::move(plan);
    return add(std::move(e));
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Events in insertion order (as added).
  [[nodiscard]] const std::vector<ScenarioEvent>& events() const noexcept {
    return events_;
  }
  /// Events sorted by time, ties kept in insertion order (stable).
  [[nodiscard]] std::vector<ScenarioEvent> ordered() const;

  /// Poisson churn preset: memoryless arrivals and departures, the default
  /// churn model of peer-sampling and streaming-system evaluations.
  struct PoissonChurn {
    /// Expected joins per minute as a fraction of the base population
    /// (0.05 = "5%/min" in the bench_churn sense).
    double arrival_fraction_per_min = 0.0;
    /// Expected departures per minute as a fraction of the *current* live
    /// population (mean lifetime = 60/departure_fraction_per_min seconds).
    double departure_fraction_per_min = 0.0;
    /// Fraction of departures that are crashes (abrupt) rather than clean
    /// leaves. Crashed nodes linger in the membership until the failure
    /// detector fires, accruing wrongful blame.
    double crash_fraction = 0.5;
    /// Fraction of joiners that freeride, with this behavior.
    double freerider_fraction = 0.0;
    gossip::BehaviorSpec freerider_behavior{};
    /// Fraction of departures that later rejoin (DESIGN.md §7). Zero keeps
    /// the generated timeline — and its rng draw sequence — byte-identical
    /// to the pre-rejoin preset.
    double rejoin_fraction = 0.0;
    /// Mean of the exponential offline time before a rejoin. Rejoins that
    /// would land past `end` are dropped (the node stays gone).
    Duration rejoin_delay_mean = seconds(10.0);
    Duration start = seconds(5.0);
    Duration end = seconds(55.0);
  };

  /// Generates a churn timeline over a deployment of `base_nodes` initial
  /// nodes (ids [0, base_nodes); joiners get fresh ids from base_nodes up).
  /// Pure function of (churn, base_nodes, seed); the source (node 0) never
  /// departs.
  [[nodiscard]] static ScenarioTimeline poisson_churn(
      const PoissonChurn& churn, std::uint32_t base_nodes, std::uint64_t seed);

 private:
  std::vector<ScenarioEvent> events_;
};

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_TIMELINE_HPP

#ifndef LIFTING_RUNTIME_RUNNER_HPP
#define LIFTING_RUNTIME_RUNNER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "runtime/experiment.hpp"
#include "runtime/scenario.hpp"

/// Parallel experiment runner: shards independent scenario runs across a
/// fixed worker pool. The simulator itself stays single-threaded by design
/// (DESIGN.md §4/§6) — every Experiment is confined to the worker that runs
/// it, and parallelism lives entirely at the run boundary.
///
/// Determinism contract (DESIGN.md §6):
///   * per-task seeds come from the task's RunSpec — never from thread
///     identity, scheduling, or completion order;
///   * results land in a slot-per-task vector, so aggregation happens in
///     task order no matter which worker finished first;
///   * a reduce over that vector is bit-identical to the serial run, for
///     every thread count (tests/test_parallel_runner.cpp).

namespace lifting::runtime {

/// One unit of sweep work: a scenario, the seed that makes it a concrete
/// run, and a human-readable label for reports.
struct RunSpec {
  ScenarioConfig config;
  std::uint64_t seed = 0;  ///< authoritative: overrides config.seed
  std::string label;

  RunSpec() = default;
  RunSpec(ScenarioConfig cfg, std::uint64_t run_seed, std::string run_label = {})
      : config(std::move(cfg)), seed(run_seed), label(std::move(run_label)) {
    config.seed = seed;
  }
  explicit RunSpec(ScenarioConfig cfg)
      : config(std::move(cfg)), seed(config.seed) {}
};

/// Derives the seed of sweep task `index` from a sweep-level base seed —
/// a pure function, so a task's run is reproducible in isolation.
[[nodiscard]] inline std::uint64_t derive_task_seed(
    std::uint64_t base, std::uint64_t index) noexcept {
  return splitmix64(base ^ splitmix64(0x7461736bULL + index));  // "task"
}

/// Slice [lo, hi) of `total` items owned by `shard` of `shards` — the one
/// shared slicing rule for fixed-shard Monte-Carlo benches (shard counts
/// are constants, never thread counts, so outputs are --threads-invariant).
struct ShardRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};
[[nodiscard]] constexpr ShardRange shard_range(std::size_t shard,
                                               std::size_t shards,
                                               std::size_t total) noexcept {
  return {shard * total / shards, (shard + 1) * total / shards};
}

/// Parses a numeric `--name N` / `--name=N` CLI flag for the benches.
/// Returns `fallback` when the flag is absent; a malformed or missing
/// value prints a diagnostic and exits 2 (a typo must not silently become
/// the default). The accepted range is [lo, hi].
[[nodiscard]] std::uint32_t parse_flag(int argc, const char* const* argv,
                                       const char* name, std::uint32_t lo,
                                       std::uint32_t hi,
                                       std::uint32_t fallback);

/// Order-insensitive exact fingerprint of one run's outcome — the per-run
/// counters the determinism suites and the scaling bench compare across
/// thread counts. operator== compares doubles bit-for-bit on purpose: the
/// parallel aggregate must EQUAL the serial one, not approximate it.
struct RunDigest {
  std::uint64_t events = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_lost = 0;
  std::uint64_t datagrams_dropped = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t blame_emissions = 0;
  std::uint64_t joins = 0;
  std::uint64_t departures = 0;
  std::size_t honest_scored = 0;
  std::size_t freeriders_scored = 0;
  double honest_score_sum = 0.0;
  double freerider_score_sum = 0.0;

  friend bool operator==(const RunDigest&, const RunDigest&) = default;

  /// Captures the digest of a completed run (scores only when LiFTinG ran).
  [[nodiscard]] static RunDigest of(Experiment& ex);
  /// Element-wise accumulation (for a task-ordered aggregate).
  void accumulate(const RunDigest& other) noexcept;
};

/// Fixed pool of worker threads executing independent tasks. Construction
/// spawns threads() - 1 workers; the calling thread participates as worker
/// 0, so a 1-thread runner executes everything inline on the caller with
/// no synchronization at all.
class ParallelRunner {
 public:
  /// `threads` = 0 resolves via resolve_threads() (env override, then
  /// hardware_concurrency).
  explicit ParallelRunner(unsigned threads = 0);
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Executes fn(task_index, worker_index) for every task in [0, count).
  /// worker_index identifies the executing lane in [0, threads()) — use it
  /// to index per-worker scratch, never to derive randomness or results.
  /// Blocks until every task completed. The first task exception (lowest
  /// task index) is rethrown on the caller; remaining tasks still run.
  /// Not reentrant: tasks must not call back into the same runner.
  void for_each(std::size_t count,
                const std::function<void(std::size_t, unsigned)>& fn);

  /// Deterministic parallel map: returns {fn(0), fn(1), ...} with results
  /// in task order regardless of scheduling. R must be default-constructible
  /// and assignable.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> map(std::size_t count, Fn&& fn) {
    static_assert(!std::is_same_v<R, bool>,
                  "vector<bool> packs 8 slots per byte — concurrent slot "
                  "writes would race; map to char/int instead");
    std::vector<R> out(count);
    for_each(count,
             [&](std::size_t i, unsigned /*worker*/) { out[i] = fn(i); });
    return out;
  }

  /// Runs every spec (config with config.seed = spec.seed) and returns
  /// fn(spec, experiment) per spec, in spec order. Each worker lane builds
  /// one Experiment and rewinds it via Experiment::reset for each further
  /// spec it executes — reset is bit-identical to fresh construction, so
  /// which lane (and which deployment history) a task lands on cannot
  /// affect its result.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> run_specs(const std::vector<RunSpec>& specs,
                                         Fn&& fn) {
    static_assert(!std::is_same_v<R, bool>,
                  "vector<bool> packs 8 slots per byte — concurrent slot "
                  "writes would race; map to char/int instead");
    std::vector<R> out(specs.size());
    std::vector<std::unique_ptr<Experiment>> lanes(threads_);
    for_each(specs.size(), [&](std::size_t i, unsigned worker) {
      const RunSpec& spec = specs[i];
      ScenarioConfig cfg = spec.config;
      cfg.seed = spec.seed;
      auto& lane = lanes[worker];
      if (lane == nullptr) {
        lane = std::make_unique<Experiment>(std::move(cfg));
      } else {
        lane->reset(std::move(cfg));
      }
      out[i] = fn(spec, *lane);
    });
    return out;
  }

  /// Runs every spec to its configured duration and digests the outcome —
  /// the common sweep shape (bench_sweep_scaling, determinism suites).
  [[nodiscard]] std::vector<RunDigest> run_digests(
      const std::vector<RunSpec>& specs);

  /// Thread-count policy: `requested` if nonzero, else the LIFTING_THREADS
  /// environment variable, else hardware_concurrency (minimum 1).
  [[nodiscard]] static unsigned resolve_threads(unsigned requested = 0);

  /// Parses `--threads N` / `--threads=N` out of argv (for the benches) and
  /// resolves the rest of the policy. Unrelated arguments are ignored.
  [[nodiscard]] static unsigned threads_from_args(int argc,
                                                  const char* const* argv);

 private:
  void worker_loop(unsigned worker_index);
  /// Claims and runs tasks of the current batch until none remain.
  void drain_batch(unsigned worker_index);

  unsigned threads_;
  std::vector<std::thread> workers_;  // threads_ - 1 spawned lanes

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, unsigned)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_task_{0};
  std::size_t active_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::size_t first_error_task_ = 0;
};

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_RUNNER_HPP

#include "runtime/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace lifting::runtime {

std::vector<ScenarioEvent> ScenarioTimeline::ordered() const {
  std::vector<ScenarioEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

namespace {

/// Exponential interarrival time in seconds; +inf when the rate is zero.
double exponential_seconds(Pcg32& rng, double rate_per_sec) {
  if (rate_per_sec <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log1p(-rng.uniform()) / rate_per_sec;
}

}  // namespace

ScenarioTimeline ScenarioTimeline::poisson_churn(const PoissonChurn& churn,
                                                 std::uint32_t base_nodes,
                                                 std::uint64_t seed) {
  require(base_nodes >= 3, "churn needs a base population");
  require(churn.arrival_fraction_per_min >= 0.0 &&
              churn.departure_fraction_per_min >= 0.0,
          "churn rates must be non-negative");
  require(churn.crash_fraction >= 0.0 && churn.crash_fraction <= 1.0,
          "crash fraction must be in [0,1]");
  require(churn.freerider_fraction >= 0.0 && churn.freerider_fraction <= 1.0,
          "freerider fraction must be in [0,1]");
  require(churn.end >= churn.start, "churn window must be non-empty");

  require(churn.rejoin_fraction >= 0.0 && churn.rejoin_fraction <= 1.0,
          "rejoin fraction must be in [0,1]");

  ScenarioTimeline timeline;
  auto rng = derive_rng(seed, 0x434855524EULL);  // "CHURN"

  // The generator mirrors the membership it will produce: candidates for
  // departure are the currently-live non-source nodes, so a generated
  // leave/crash always targets a node that is actually present, and a
  // rejoined node re-enters the departure pool only from its rejoin time.
  std::vector<NodeId> live;
  live.reserve(base_nodes);
  for (std::uint32_t i = 1; i < base_nodes; ++i) live.push_back(NodeId{i});
  std::uint32_t next_id = base_nodes;
  struct PendingRejoin {
    double at = 0.0;
    NodeId node;
  };
  std::vector<PendingRejoin> pending_rejoins;  // unordered; drained by time

  const double join_rate =
      churn.arrival_fraction_per_min / 60.0 * static_cast<double>(base_nodes);
  const double leave_fraction_per_sec = churn.departure_fraction_per_min / 60.0;

  double t = to_seconds(churn.start);
  const double end = to_seconds(churn.end);
  for (;;) {
    const double leave_rate =
        leave_fraction_per_sec * static_cast<double>(live.size());
    const double dt_join = exponential_seconds(rng, join_rate);
    const double dt_leave = exponential_seconds(rng, leave_rate);
    const double dt = std::min(dt_join, dt_leave);
    if (!std::isfinite(dt)) break;
    t += dt;
    if (t >= end) break;
    // Rejoins scheduled in the meantime put their node back in the pool.
    for (std::size_t i = 0; i < pending_rejoins.size();) {
      if (pending_rejoins[i].at <= t) {
        live.push_back(pending_rejoins[i].node);
        pending_rejoins[i] = pending_rejoins.back();
        pending_rejoins.pop_back();
      } else {
        ++i;
      }
    }
    if (dt_join <= dt_leave) {
      const NodeId id{next_id++};
      const bool freeride = rng.bernoulli(churn.freerider_fraction);
      timeline.join_at(seconds(t),
                       freeride ? churn.freerider_behavior
                                : gossip::BehaviorSpec::honest(),
                       freeride, id);
      live.push_back(id);
    } else {
      if (live.empty()) continue;
      const auto pick = rng.below(static_cast<std::uint32_t>(live.size()));
      const NodeId victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      if (rng.bernoulli(churn.crash_fraction)) {
        timeline.crash_at(seconds(t), victim);
      } else {
        timeline.leave_at(seconds(t), victim);
      }
      // Guarded so the zero-rejoin preset consumes the exact historical
      // draw sequence (comparable timelines across PRs).
      if (churn.rejoin_fraction > 0.0 &&
          rng.bernoulli(churn.rejoin_fraction)) {
        const double back = t + exponential_seconds(
                                    rng, 1.0 / std::max(
                                             to_seconds(
                                                 churn.rejoin_delay_mean),
                                             1e-6));
        if (back < end) {
          timeline.rejoin_at(seconds(back), victim);
          pending_rejoins.push_back(PendingRejoin{back, victim});
        }
      }
    }
  }
  return timeline;
}

}  // namespace lifting::runtime

#include "runtime/experiment.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/assert.hpp"
#include "lifting/managers.hpp"
#include "obs/registry.hpp"

namespace lifting::runtime {

namespace {
/// Rng-stream key for incarnations past the first: purpose tag, node id
/// and epoch occupy fully disjoint bit fields (56..63 / 24..55 / 0..23),
/// so no two (purpose, node, epoch) triples can alias — the layout is
/// load-bearing for the no-replayed-randomness guarantee and must only
/// exist here. Epoch-1 streams keep the legacy `base + i` constants
/// (fixed-seed goldens).
[[nodiscard]] std::uint64_t incarnation_stream(std::uint64_t purpose,
                                               std::uint32_t node,
                                               std::uint32_t epoch) {
  return splitmix64((purpose << 56U) |
                    (static_cast<std::uint64_t>(node) << 24U) | epoch);
}

/// Draws the freerider role set (sorted; never the source) from the role
/// stream. Shared by build() — whose weak-link picks continue the same
/// stream — and the standalone derive_freerider_ids().
[[nodiscard]] std::vector<NodeId> sample_freerider_roles(Pcg32& role_rng,
                                                         std::uint32_t n,
                                                         double fraction) {
  std::vector<NodeId> freeriders;
  const auto count =
      static_cast<std::uint32_t>(fraction * static_cast<double>(n));
  if (count > 0) {
    const auto picks = sample_k_distinct(role_rng, n - 1, count);
    freeriders.reserve(picks.size());
    for (const auto p : picks) {
      freeriders.push_back(NodeId{p + 1});  // skip the source (node 0)
    }
    std::sort(freeriders.begin(), freeriders.end());
  }
  return freeriders;
}
}  // namespace

std::vector<NodeId> Experiment::derive_freerider_ids(std::uint64_t seed,
                                                     std::uint32_t nodes,
                                                     double fraction) {
  auto role_rng = derive_rng(seed, 0x01);
  return sample_freerider_roles(role_rng, nodes, fraction);
}

Experiment::Experiment(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(derive_rng(config_.seed, /*stream=*/0xE58)),
      directory_(config_.nodes) {
  config_.validate();
  build();
}

void Experiment::reset(ScenarioConfig config) {
  config_ = std::move(config);
  config_.validate();
  rewind();
  build();
}

void Experiment::reset(std::uint64_t seed) {
  auto cfg = config_;
  cfg.seed = seed;
  reset(std::move(cfg));
}

void Experiment::rewind() {
  sim_.reset();
  metrics_.reset_all();  // counters zeroed; Mailer's cached handles stay valid
  directory_.reset(config_.nodes);
  rng_ = derive_rng(config_.seed, /*stream=*/0xE58);
  ledger_.reset();
  rps_.reset();
  // Measurement hook: re-arm enable_trace after reset. The injector is the
  // one traced component that survives rewinds, so disarm it before the
  // recorder dies under its pointer.
  if (injector_ != nullptr) injector_->set_trace(nullptr);
  recorder_.reset();
  expulsions_.clear();
  audit_reports_.clear();
  controllers_.clear();
  coalition_hub_.reset();
  joins_.clear();
  departures_.clear();
  rejoins_.clear();
  handoffs_.clear();
  retired_.clear();
  timeline_events_.clear();
  score_timeline_.clear();
  score_summaries_.clear();
  freerider_list_.clear();
  score_sample_interval_ = Duration::zero();
  score_sample_mode_ = ScoreSampleMode::kStream;
  streamed_ = StreamedHealth{};
  started_ = false;
  wound_down_ = false;
}

void Experiment::build() {
  const std::uint32_t n = config_.nodes;

  // --- assign roles: freeriders (never the source), weak links.
  freerider_.assign(n, 0);
  weak_.assign(n, 0);
  departed_.assign(n, 0);
  ever_rejoined_.assign(n, 0);
  expulsion_scheduled_.assign(n, 0);
  expelled_applied_.assign(n, 0);
  join_time_.assign(n, kSimEpoch);
  controllers_.resize(n);
  next_join_id_ = n;
  // Per-observer membership views (DESIGN.md §7): a zero lag (default)
  // collapses to the legacy shared view bit-for-bit.
  directory_.set_view_model(config_.view_propagation, config_.seed);
  auto role_rng = derive_rng(config_.seed, 0x01);
  freerider_list_ =
      sample_freerider_roles(role_rng, n, config_.freerider_fraction);
  for (const auto id : freerider_list_) freerider_[id.value()] = 1;
  // The weak-link picks continue the same role stream (order is
  // load-bearing for fixed-seed outcomes).
  const auto weak_count = static_cast<std::uint32_t>(
      config_.weak_fraction * static_cast<double>(n));
  if (weak_count > 0) {
    const auto picks = sample_k_distinct(role_rng, n - 1, weak_count);
    for (const auto p : picks) weak_[p + 1] = 1;
  }

  // --- network + mailer
  // Pre-size the event arena for the steady-state in-flight population
  // (a few dozen timers/deliveries per node).
  sim_.reserve_events(static_cast<std::size_t>(n) * 32);
  ledger_.reserve(n);
  if (network_ == nullptr) {
    network_ = std::make_unique<sim::Network<gossip::Message>>(
        sim_, derive_rng(config_.seed, 0x02));
    // Transport stack: SimTransport over the network, the fault injector
    // around it, the Mailer on top. With an empty FaultPlan (the default)
    // the injector is a pure passthrough — no rng streams exist, no draws
    // happen — so this stack is bit-identical to the historical
    // Mailer-over-network wiring (test_determinism pins it).
    transport_ = std::make_unique<net::SimTransport>(*network_);
    injector_ =
        std::make_unique<faults::FaultInjector>(*transport_, sim_, config_.seed);
    mailer_ = std::make_unique<gossip::Mailer>(*injector_, &metrics_);
  } else {
    // Reset path: same network object (the Mailer's reference stays
    // valid), fresh endpoints and statistics, reused delivery pool.
    network_->reset(derive_rng(config_.seed, 0x02));
    injector_->reset(config_.seed);
  }
  injector_->set_plan(config_.faults);
  // Reliable-UDP audits travel as real datagrams, so the Mailer prices
  // them with the exact datagram model instead of TCP framing.
  mailer_->set_datagram_audit_pricing(
      config_.lifting_enabled &&
      config_.lifting.audit_channel == LiftingParams::AuditChannel::kReliableUdp);

  hooks_.on_blame_emitted = [this](NodeId by, NodeId target, double value,
                                   gossip::BlameReason reason) {
    // Ground truth reclassifies blame against already-departed targets:
    // the emission is real (the wire message carries `reason`), but the
    // target's "freeriding" was death — see HonestBlameSplit.
    const auto effective = is_departed(target)
                               ? gossip::BlameReason::kPostDeparture
                               : reason;
    ledger_.record(target, value, effective);
    if (recorder_ != nullptr) {
      recorder_->record(obs::EventKind::kBlameLedger, by, target, 0, value,
                        static_cast<std::uint8_t>(effective));
    }
  };
  hooks_.on_expulsion_committed = [this](NodeId victim, NodeId /*manager*/,
                                         bool from_audit) {
    on_expulsion_committed(victim, from_audit);
  };
  hooks_.on_audit_report = [this](NodeId /*auditor*/,
                                  const lifting::AuditReport& report) {
    audit_reports_.push_back(report);
  };

  // One deployment-wide manager table shared by every agent — the
  // assignment is a pure function of (n, M, seed); joiners extend it
  // lazily, drawing their managers from the base pool [0, n). On reset the
  // table rebinds in place (a no-op when (n, M, seed) are unchanged).
  if (assignment_ == nullptr) {
    assignment_ = std::make_shared<lifting::ManagerAssignment>(
        n, config_.lifting.managers, config_.seed);
  } else {
    assignment_->rebind(n, config_.lifting.managers, config_.seed);
  }

  // --- membership substrate (RPS, DESIGN.md §12). Guarded so the default
  // constructs nothing and draws no rng stream — the fixed-seed goldens pin
  // that inertness, exactly like the adversary block below.
  if (config_.membership.rps_partner_sampling) {
    rps_ = std::make_unique<membership::RpsNetwork>(
        n, config_.membership.view_size, config_.membership.shuffle_length,
        config_.seed, config_.membership.sampler);
    if (config_.membership.attack.enabled()) {
      rps_->set_adversary(config_.membership.attack, freerider_list_);
    }
    // Warm-up: views must be mixed (and, with an armed attack, poisoned)
    // before the first partner draw.
    rps_->run_rounds(config_.membership.bootstrap_rounds);
  }

  network_->reserve_nodes(n);
  nodes_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id{i};
    const auto behavior = is_freerider(id)
                              ? resolve_behavior(config_.freerider_behavior)
                              : gossip::BehaviorSpec::honest();
    make_node(i, behavior, weak_[i] != 0 ? config_.weak_link : config_.link);
  }

  // --- stream source at node 0
  source_ = std::make_unique<gossip::StreamSource>(sim_, *nodes_[0].engine,
                                                   config_.stream);

  // --- adaptive adversaries (DESIGN.md §8). Guarded so the default
  // (Strategy::kNone) constructs nothing, draws nothing and schedules
  // nothing — the fixed-seed goldens pin that inertness.
  if (config_.adversary.enabled()) {
    if (config_.adversary.strategy == adversary::Strategy::kCoalition) {
      coalition_hub_ = std::make_unique<adversary::CoalitionHub>();
    }
    for (const auto id : freerider_list_) make_controller(id);
  }
}

void Experiment::make_controller(NodeId id) {
  if (!config_.adversary.enabled()) return;
  const auto v = static_cast<std::size_t>(id.value());
  adversary::AdversaryController::Hooks hooks;
  // Behavior mutation rides the same set_behavior machinery as timeline
  // kSetBehavior events (engine + agent), but never touches the freerider
  // role flag: an adversary playing nice is still ground-truth adversarial
  // for the detection statistics.
  hooks.apply_behavior = [this, v](const gossip::BehaviorSpec& spec) {
    if (is_departed(NodeId{static_cast<std::uint32_t>(v)})) return;
    auto& node = nodes_[v];
    node.engine->set_behavior(spec);
    if (node.agent) node.agent->set_behavior(spec);
  };
  if (config_.lifting_enabled) {
    // Manager score-feedback channel: a real §5.1 read about ourselves,
    // through whatever agent incarnation currently occupies the slot.
    hooks.probe_score = [this, id, v](adversary::ScoreEstimateFn on_done) {
      auto* agent = nodes_[v].agent.get();
      if (agent == nullptr) {
        on_done(adversary::ScoreEstimate{});
        return;
      }
      agent->probe_score(
          id, [cb = std::move(on_done)](const lifting::Agent::ScoreFeedback&
                                            feedback) {
            cb(adversary::ScoreEstimate{feedback.score, feedback.replies,
                                        feedback.expelled_hint});
          });
    };
  }
  hooks.leave = [this, id] {
    if (!wound_down_) retire_node(id, /*crash=*/false);
  };
  hooks.rejoin = [this, id] {
    if (!wound_down_) rejoin_node(id);
  };
  hooks.present = [this, id] {
    return !is_departed(id) && directory_.is_live(id);
  };
  hooks.sees = [this, id](NodeId subject) {
    return directory_.sees(id, subject, sim_.now());
  };
  // Controller rng streams live in their own 2^32-wide base (0xC...), like
  // the agents' 0xA and engines' 0xB bases; the stream exists only when a
  // strategy is configured, so unconfigured runs draw nothing.
  controllers_[v] = std::make_unique<adversary::AdversaryController>(
      sim_, id, config_.adversary,
      resolve_behavior(config_.freerider_behavior), config_.lifting.eta,
      derive_rng(config_.seed, 0xC00000000ULL + v), std::move(hooks),
      coalition_hub_.get());
  if (recorder_ != nullptr) controllers_[v]->set_trace(recorder_.get());
  controllers_[v]->start();
}

gossip::BehaviorSpec Experiment::resolve_behavior(
    gossip::BehaviorSpec spec) const {
  if (spec.collusion.has_value() && spec.collusion->coalition.empty()) {
    spec.collusion->coalition = freerider_list_;
  }
  return spec;
}

void Experiment::make_node(std::uint32_t i,
                           const gossip::BehaviorSpec& behavior,
                           const sim::LinkProfile& profile) {
  const NodeId id{i};
  auto& node = nodes_[i];
  // Per-node rng streams live in disjoint 2^32-wide bases so no two
  // (purpose, node) pairs can ever collide — the old 0x1000+i / 0x2000+i
  // scheme gave node 4096+k's agent the exact stream of node k's engine,
  // silently correlating audit sampling with partner selection at the
  // populations the scale benches measure. A rejoining incarnation
  // (epoch > 1) must not replay its predecessor's randomness, so later
  // epochs mix (base, node, epoch) through splitmix64 instead — the
  // epoch-1 constants are untouched to keep fixed-seed goldens valid.
  const std::uint32_t epoch = std::max(directory_.epoch_of(id), 1U);
  const auto stream = [&](std::uint64_t legacy_base, std::uint64_t purpose) {
    return epoch == 1 ? legacy_base + i : incarnation_stream(purpose, i, epoch);
  };
  if (config_.lifting_enabled) {
    // Genesis is the node's own join instant: a joiner's score normalizes
    // over the periods it has actually spent in the system.
    node.agent = std::make_unique<lifting::Agent>(
        sim_, *mailer_, directory_, id, config_.lifting, behavior,
        derive_rng(config_.seed, stream(0xA00000000ULL, 0xA5)), config_.seed,
        sim_.now(), hooks_, assignment_);
  }
  auto params = config_.gossip;
  params.emit_acks = config_.lifting_enabled;
  node.engine = std::make_unique<gossip::Engine>(
      sim_, *mailer_, directory_, id, params, behavior,
      derive_rng(config_.seed, stream(0xB00000000ULL, 0xB5)),
      node.agent ? node.agent.get() : nullptr);
  node.engine->reserve_stream_chunks(config_.stream.expected_chunks());
  if (rps_) node.engine->set_partner_view(rps_.get());
  // Late joiners and rejoiners enter an armed deployment already traced.
  if (recorder_ != nullptr) {
    node.engine->set_trace(recorder_.get());
    if (node.agent) node.agent->set_trace(recorder_.get());
  }

  network_->add_node(id, profile, [this, i](
                                      sim::Delivery<gossip::Message>& d) {
    auto& target = nodes_[i];
    const auto& msg = d.payload;
    // The leading Message alternatives are the gossip kinds
    // (propose/request/serve/ack — order pinned by static_asserts next
    // to the variant); everything else is LiFTinG traffic.
    if (msg.index() < gossip::kGossipKindCount) {
      target.engine->handle(d.from, msg);
    } else if (target.agent) {
      target.agent->handle(d.from, msg);
    }
  });
}

void Experiment::run_until(TimePoint t) {
  if (!started_) {
    started_ = true;
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      const auto offset = Duration{static_cast<Duration::rep>(
          rng_.uniform() *
          static_cast<double>(config_.gossip.period.count()))};
      nodes_[i].engine->start(offset);
      if (nodes_[i].agent) nodes_[i].agent->start(offset);
    }
    source_->start();
    // Timeline events become ordinary simulator events. Scheduling them in
    // stable time order means equal timestamps apply in insertion order
    // (the queue's (time, insertion-seq) total order), and run_until
    // checkpoints cannot observe event boundaries.
    timeline_events_ = config_.timeline.ordered();
    for (std::size_t i = 0; i < timeline_events_.size(); ++i) {
      sim_.schedule_at(kSimEpoch + timeline_events_[i].at,
                       [this, i] { apply_event(timeline_events_[i]); });
    }
    if (score_sample_interval_ > Duration::zero()) schedule_score_sample();
    if (rps_) schedule_rps_round();
    if (streamed_.enabled) schedule_health_fold();
  }
  sim_.run_until(t);
}

void Experiment::run() { run_until(kSimEpoch + config_.duration); }

void Experiment::wind_down() {
  wound_down_ = true;
  if (source_) source_->stop();
  for (auto& node : nodes_) {
    if (node.engine) node.engine->stop();
    if (node.agent) node.agent->stop();
  }
  // Adversary controllers reschedule themselves like agents do; stopping
  // them is what lets the drain below terminate.
  for (auto& controller : controllers_) {
    if (controller) controller->stop();
  }
  // Drain: with every periodic loop stopped, only in-flight deliveries and
  // one-shot timers remain, and none of them reschedules. The queue
  // empties, returning every pooled delivery slot.
  sim_.run();
}

// ------------------------------------------------------------- timeline

void Experiment::ensure_tables(std::uint32_t n) {
  if (nodes_.size() >= n) return;
  nodes_.resize(n);
  freerider_.resize(n, 0);
  weak_.resize(n, 0);
  departed_.resize(n, 0);
  ever_rejoined_.resize(n, 0);
  expulsion_scheduled_.resize(n, 0);
  expelled_applied_.resize(n, 0);
  join_time_.resize(n, kSimEpoch);
  controllers_.resize(n);
}

void Experiment::set_freerider(NodeId id, bool freeride) {
  auto& flag = freerider_[id.value()];
  if ((flag != 0) == freeride) return;
  flag = freeride ? 1 : 0;
  if (freeride) {
    freerider_list_.insert(
        std::lower_bound(freerider_list_.begin(), freerider_list_.end(), id),
        id);
  } else {
    const auto it =
        std::find(freerider_list_.begin(), freerider_list_.end(), id);
    if (it != freerider_list_.end()) freerider_list_.erase(it);
  }
}

void Experiment::apply_event(const ScenarioEvent& event) {
  if (wound_down_) return;
  switch (event.kind) {
    case ScenarioEventKind::kJoin:
      join_node(event);
      break;
    case ScenarioEventKind::kLeave:
      retire_node(event.node, /*crash=*/false);
      break;
    case ScenarioEventKind::kCrash:
      retire_node(event.node, /*crash=*/true);
      break;
    case ScenarioEventKind::kRejoin:
      rejoin_node(event.node);
      break;
    case ScenarioEventKind::kSetBehavior: {
      const auto v = static_cast<std::size_t>(event.node.value());
      require(v < nodes_.size(), "set_behavior on an unknown node");
      if (is_departed(event.node)) return;
      set_freerider(event.node, event.freerider);
      const auto behavior = resolve_behavior(event.behavior);
      auto& node = nodes_[v];
      node.engine->set_behavior(behavior);
      if (node.agent) node.agent->set_behavior(behavior);
      break;
    }
    case ScenarioEventKind::kSetLink: {
      const auto v = static_cast<std::size_t>(event.node.value());
      require(v < nodes_.size(), "set_link on an unknown node");
      if (is_departed(event.node)) return;
      network_->set_profile(event.node, event.link);
      break;
    }
    case ScenarioEventKind::kSetFaults:
      // Deployment-wide plan swap; injector chain state and rng streams
      // persist across swaps (an empty plan heals without forgetting).
      injector_->set_plan(event.faults);
      break;
  }
}

NodeId Experiment::join_node(const ScenarioEvent& event) {
  const std::uint32_t idv =
      event.node == kAutoNodeId ? next_join_id_ : event.node.value();
  require(idv == next_join_id_,
          "joiner ids must be fresh and contiguous (base population, then "
          "join order) — ids are never recycled, so dense tables (ledger, "
          "scores) can never alias two incarnations, and no hole slots "
          "without an engine can exist");
  next_join_id_ = idv + 1;
  ensure_tables(idv + 1);
  const NodeId id{idv};

  directory_.join(id, sim_.now());
  if (rps_) rps_->join(id);
  set_freerider(id, event.freerider);
  join_time_[idv] = sim_.now();
  make_node(idv, resolve_behavior(event.behavior),
            event.has_link ? event.link : config_.link);
  // Materialize the joiner's manager row at a protocol-defined instant so
  // the assignment's promotion counter cannot depend on whether (and when)
  // measurement code later looks at the row.
  if (config_.lifting_enabled) (void)assignment_->of(id);

  // Desynchronized start, like the initial population (own stream so the
  // draw is independent of join order).
  auto offset_rng = derive_rng(config_.seed, 0x9000000000ULL + idv);
  const auto offset = Duration{static_cast<Duration::rep>(
      offset_rng.uniform() *
      static_cast<double>(config_.gossip.period.count()))};
  nodes_[idv].engine->start(offset);
  if (nodes_[idv].agent) nodes_[idv].agent->start(offset);
  // A freeriding joiner is an adversary like any base-population one: it
  // gets a controller the moment it enters (a coalition recruits it as the
  // members' views catch up).
  if (event.freerider) make_controller(id);
  joins_.push_back(JoinRecord{id, to_seconds(sim_.now()), event.freerider});
  return id;
}

void Experiment::retire_node(NodeId id, bool crash) {
  require(id != source(), "the source is pinned infrastructure");
  const auto v = static_cast<std::size_t>(id.value());
  require(v < nodes_.size(), "departure of an unknown node");
  if (is_departed(id)) return;
  // A node LiFTinG already expelled is not live; a churn departure
  // targeting it (the Poisson preset is generated blind to runtime
  // expulsions) must not reclassify it as a leaver — expulsion keeps it
  // in the detection statistics as a caught node.
  if (!directory_.is_live(id)) return;
  departed_[v] = 1;

  // Wind the node down in place: the objects outlive the departure so
  // pending timers and deliveries referencing them stay valid, but they
  // stop proposing, ticking and testifying. The network endpoint is torn
  // down immediately — packets to a dead host vanish.
  auto& node = nodes_[v];
  node.engine->stop();
  if (node.agent) node.agent->stop();
  network_->remove_node(id);
  // The RPS learns of the departure like the membership does: the node's
  // own view empties now, references elsewhere decay as stale entries.
  if (rps_) rps_->leave(id);

  if (crash) {
    // The membership only learns of a crash when the failure detector
    // fires; until then partners keep selecting the dead node and its
    // verifiers blame the silence (wrongful blame, split out by
    // honest_blame_split / bench_churn). Epoch-guarded: if the node
    // rejoins before detection, the stale detector must not evict the new
    // incarnation (rejoin_node records the departure itself in that case).
    const std::uint32_t epoch = directory_.epoch_of(id);
    sim_.schedule_after(config_.failure_detection, [this, id, epoch] {
      if (directory_.epoch_of(id) == epoch && is_departed(id)) {
        directory_.leave(id, sim_.now());
      }
    });
  } else {
    directory_.leave(id, sim_.now());
  }
  departures_.push_back(
      DepartureRecord{id, to_seconds(sim_.now()), crash, is_freerider(id)});

  // Manager handoff (DESIGN.md §7): once the membership has learned of the
  // departure and the reassignment round has run, promote replacements and
  // migrate the departed node's ledger rows. Epoch-guarded like the
  // failure detector: a rejoin cancels the pending handoff.
  if (config_.manager_handoff && config_.lifting_enabled) {
    const std::uint32_t epoch = directory_.epoch_of(id);
    const Duration delay =
        (crash ? config_.failure_detection : Duration::zero()) +
        config_.manager_handoff_delay;
    sim_.schedule_after(delay, [this, id, epoch] {
      if (directory_.epoch_of(id) == epoch) run_handoff(id);
    });
  }
}

void Experiment::run_handoff(NodeId id) {
  if (wound_down_ || !is_departed(id)) return;
  execute_handoffs(assignment_->mark_departed(id), /*expelled=*/false);
}

void Experiment::run_expulsion_handoff(NodeId victim) {
  if (wound_down_) return;
  // mark_departed is shared with the churn path and idempotent, so an
  // expelled manager that ALSO appears in a churn departure can never have
  // a row promoted (or migrated) twice — whichever event lands first wins,
  // the other finds the mask already set and executes nothing.
  execute_handoffs(assignment_->mark_departed(victim), /*expelled=*/true);
}

void Experiment::execute_handoffs(
    const std::vector<lifting::ManagerAssignment::Handoff>& executed,
    bool expelled) {
  for (const auto& handoff : executed) {
    bool migrated = false;
    auto* from = nodes_[handoff.departed.value()].agent.get();
    auto* to = nodes_[handoff.replacement.value()].agent.get();
    if (from != nullptr && to != nullptr) {
      // The move zeroes the departing store's row, so a row can migrate at
      // most once (tests/test_churn_resilience.cpp pins this).
      const auto record = from->manager_store().take_record(handoff.target);
      migrated = record.valid;
      to->manager_store().adopt_record(handoff.target, record);
    }
    handoffs_.push_back(HandoffRecord{handoff.target, handoff.departed,
                                      handoff.replacement,
                                      directory_.epoch_of(handoff.departed),
                                      to_seconds(sim_.now()), migrated,
                                      expelled});
    if (recorder_ != nullptr) {
      recorder_->record(
          obs::EventKind::kHandoff, handoff.replacement, handoff.target,
          handoff.departed.value(), 0.0,
          static_cast<std::uint8_t>((migrated ? 1U : 0U) |
                                    (expelled ? 2U : 0U)));
    }
  }
}

void Experiment::rejoin_node(NodeId id) {
  require(id != source(), "the source is pinned infrastructure");
  const auto v = static_cast<std::size_t>(id.value());
  require(v < nodes_.size(), "rejoin of an unknown node");
  // Lenient like retire_node: the timeline is generated blind to runtime
  // outcomes, so a rejoin of a node that never departed — or that LiFTinG
  // expelled first (an indictment is not outlived by leaving) — is a no-op.
  if (!is_departed(id)) return;
  // A committed expulsion whose propagation the departure preempted is
  // still an indictment: the managers agreed before the node vanished, so
  // it may not slip back in (and the latched expulsion_scheduled_ flag
  // would otherwise block ever expelling the new incarnation).
  if (expulsion_scheduled_[v] != 0) return;
  // If this node's own manager handoff is still pending (it bounced back
  // inside the handoff window), execute it NOW: the epoch bump below
  // cancels the scheduled timer, and without the early migration the
  // graveyard move would destroy every ledger row the old incarnation
  // held — bouncing must not be a way to flush blame records.
  if (config_.manager_handoff && config_.lifting_enabled) run_handoff(id);
  departed_[v] = 0;
  ever_rejoined_[v] = 1;
  // A crashed node whose failure detector has not fired yet is still in
  // the membership; record the departure now so the rejoin below bumps the
  // alive epoch (the stale detector lambda is epoch-guarded and fizzles).
  if (directory_.is_live(id)) directory_.leave(id, sim_.now());
  directory_.join(id, sim_.now());
  if (rps_) {
    rps_->leave(id);  // idempotent: retire_node already marked it dead
    rps_->join(id);
  }
  join_time_[v] = sim_.now();

  // The old incarnation's objects move to the graveyard — in-flight timers
  // and deliveries may still reference them (DESIGN.md §5 retirement
  // contract); a fresh Engine/Agent pair with epoch-keyed rng streams and
  // genesis = now takes the slot. Prior roles (freerider flag, weak link)
  // are restored from the deployment's role tables.
  retired_.push_back(std::move(nodes_[v]));
  const auto behavior = is_freerider(id)
                            ? resolve_behavior(config_.freerider_behavior)
                            : gossip::BehaviorSpec::honest();
  make_node(static_cast<std::uint32_t>(v), behavior,
            weak_[v] != 0 ? config_.weak_link : config_.link);

  // Carried store (carried_manager_store): with handoff OFF, blame
  // knowledge is conserved across the bounce by the returning manager
  // keeping its own rows — move them from the retired incarnation's store
  // into the fresh one (genesis-stamped so period counts don't restart).
  // Inert while manager_handoff is on: the handoff path already migrated
  // the rows to promoted replacements. Runs before the kFresh loop below
  // so the rejoining node's own carried row still obeys the fresh policy.
  if (config_.lifting_enabled && !config_.manager_handoff &&
      config_.carried_manager_store) {
    auto* old_agent = retired_.back().agent.get();
    auto* new_agent = nodes_[v].agent.get();
    if (old_agent != nullptr && new_agent != nullptr) {
      old_agent->manager_store().carry_into(new_agent->manager_store());
    }
  }

  // Desynchronized start, keyed like make_node's streams so no incarnation
  // replays another's offset draw.
  auto offset_rng = derive_rng(
      config_.seed,
      incarnation_stream(0x95, static_cast<std::uint32_t>(v),
                         directory_.epoch_of(id)));
  const auto offset = Duration{static_cast<Duration::rep>(
      offset_rng.uniform() *
      static_cast<double>(config_.gossip.period.count()))};
  nodes_[v].engine->start(offset);
  if (nodes_[v].agent) nodes_[v].agent->start(offset);

  if (config_.lifting_enabled) {
    // The returning node becomes an eligible handoff candidate again;
    // promotions that already happened stay (handoff is sticky).
    if (config_.manager_handoff) assignment_->mark_returned(id);
    if (config_.rejoin_scores == ScenarioConfig::RejoinScores::kFresh) {
      // Fresh score policy: the managers restart the row at the rejoin
      // instant — blame forgotten, period count restarted (the expulsion
      // mark, if any, survives). kCarried keeps the rows untouched.
      // Departed managers are restarted too: their stores are live memory
      // (in-place retirement), and a pending handoff would otherwise
      // migrate the previous incarnation's blame to the replacement,
      // silently violating the fresh policy.
      for (const auto manager : assignment_->of(id)) {
        auto* agent = nodes_[manager.value()].agent.get();
        if (agent != nullptr) {
          agent->manager_store().begin_incarnation(id, sim_.now());
        }
      }
    }
  }
  // An adversary's controller survives the incarnation change (it is the
  // node's operator, not part of the node) — resynchronize it with the
  // full-throttle behavior make_node just reinstalled, whether the rejoin
  // was its own whitewash bounce or a timeline event.
  if (auto* controller = controllers_[v].get()) {
    controller->on_reincarnated();
  }
  rejoins_.push_back(RejoinRecord{id, to_seconds(sim_.now()),
                                  directory_.epoch_of(id), is_freerider(id)});
}

// ------------------------------------------------------------ expulsions

void Experiment::on_expulsion_committed(NodeId victim, bool from_audit) {
  if (!config_.expulsion_enabled) return;
  if (victim == source()) return;  // the source is trusted infrastructure
  if (expulsion_scheduled_[victim.value()] != 0) return;
  expulsion_scheduled_[victim.value()] = 1;
  // The managers announce the expulsion; it reaches the membership layer
  // after a propagation delay, at which point honest nodes shun the victim.
  sim_.schedule_after(config_.expulsion_propagation, [this, victim,
                                                      from_audit] {
    if (!directory_.is_live(victim)) return;
    directory_.expel(victim);
    // Honest nodes shun the victim: its RPS views die with the expulsion
    // (entries naming it elsewhere go stale and decay over the next rounds).
    if (rps_) rps_->leave(victim);
    expelled_applied_[victim.value()] = 1;
    expulsions_.push_back(ExpulsionRecord{victim, to_seconds(sim_.now()),
                                          from_audit,
                                          is_freerider(victim)});
    if (recorder_ != nullptr) {
      recorder_->record(obs::EventKind::kExpulsionApplied, victim, victim, 0,
                        0.0, from_audit ? 1 : 0,
                        is_freerider(victim) ? 1 : 0);
    }
    // Expulsion handoff (DESIGN.md §7): an expelled manager vacates its
    // quorum slots the same way a departed one does — replacement promoted
    // after the reassignment round, ledger rows migrated. Without it the
    // indicted manager leaves a permanent quorum hole (the pre-fix
    // baseline expulsion_handoff = false preserves for A/B runs).
    if (config_.manager_handoff && config_.expulsion_handoff &&
        config_.lifting_enabled) {
      sim_.schedule_after(config_.manager_handoff_delay,
                          [this, victim] { run_expulsion_handoff(victim); });
    }
  });
}

// ----------------------------------------------------------- measurement

double Experiment::true_score(NodeId id) {
  LIFTING_ASSERT(config_.lifting_enabled, "scores require LiFTinG");
  const auto& mgrs = assignment_->of(id);
  // Mirrors the protocol read: min-vote by default, mean for the ablation.
  const bool use_min =
      config_.lifting.score_vote == LiftingParams::ScoreVote::kMin;
  double min_score = 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  const bool coalition_active =
      config_.freerider_behavior.collusion.has_value() && is_freerider(id);
  for (const auto m : mgrs) {
    if (is_departed(m)) continue;  // a departed manager answers nothing
    double s =
        nodes_[m.value()].agent->manager_store().normalized_score(id,
                                                                  sim_.now());
    // A colluding manager inflates its coalition's scores on the wire
    // (§5.1); this read mirrors what the managers would actually answer
    // (the same inflated value Agent::handle_score_query reports).
    if (coalition_active && is_freerider(m)) s = std::max(s, 25.0);
    sum += s;
    if (counted == 0 || s < min_score) min_score = s;
    ++counted;
  }
  if (counted == 0) return 0.0;  // all managers churned out: no reply
  return use_min ? min_score : sum / static_cast<double>(counted);
}

bool Experiment::majority_expelled(NodeId id) {
  const auto& mgrs = assignment_->of(id);
  std::size_t expelled = 0;
  std::size_t counted = 0;
  for (const auto m : mgrs) {
    if (is_departed(m)) continue;
    if (nodes_[m.value()].agent->manager_store().expelled(id)) ++expelled;
    ++counted;
  }
  return counted > 0 && expelled * 2 > counted;
}

Experiment::ScoreSnapshot Experiment::snapshot_scores() {
  ScoreSnapshot snap;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_departed(id)) continue;
    const double s = true_score(id);
    if (is_freerider(id)) {
      snap.freeriders.push_back(s);
    } else {
      snap.honest.push_back(s);
    }
  }
  return snap;
}

void Experiment::sample_scores_every(Duration interval, ScoreSampleMode mode) {
  require(interval > Duration::zero(), "sampling interval must be positive");
  require(config_.lifting_enabled, "score sampling requires LiFTinG");
  const bool arm_now = started_ && score_sample_interval_ == Duration::zero();
  score_sample_interval_ = interval;
  score_sample_mode_ = mode;
  if (arm_now) schedule_score_sample();
}

void Experiment::schedule_score_sample() {
  sim_.schedule_after(score_sample_interval_, [this] {
    if (wound_down_) return;
    // Streamed summary: one pass over the live population, O(1) retained.
    ScoreSummary summary;
    summary.at_seconds = to_seconds(sim_.now());
    double honest_sum = 0.0;
    double freerider_sum = 0.0;
    for (std::uint32_t i = 1; i < population(); ++i) {
      const NodeId id{i};
      if (is_departed(id)) continue;
      const double s = true_score(id);
      if (is_freerider(id)) {
        ++summary.freeriders;
        freerider_sum += s;
        if (summary.freeriders == 1 || s > summary.freerider_max) {
          summary.freerider_max = s;
        }
      } else {
        ++summary.honest;
        honest_sum += s;
        if (summary.honest == 1 || s < summary.honest_min) {
          summary.honest_min = s;
        }
      }
    }
    if (summary.honest > 0) {
      summary.honest_mean = honest_sum / static_cast<double>(summary.honest);
    }
    if (summary.freeriders > 0) {
      summary.freerider_mean =
          freerider_sum / static_cast<double>(summary.freeriders);
    }
    score_summaries_.push_back(summary);
    if (score_sample_mode_ == ScoreSampleMode::kRetained) {
      score_timeline_.push_back(
          TimedScores{summary.at_seconds, snapshot_scores()});
    }
    schedule_score_sample();
  });
}

DetectionStats Experiment::detection_at(double eta) {
  DetectionStats stats;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_departed(id)) continue;  // gone through churn: not judgeable
    const bool flagged = !directory_.is_live(id) || true_score(id) < eta;
    if (is_freerider(id)) {
      ++stats.freeriders;
      if (flagged) stats.detection += 1.0;
    } else {
      ++stats.honest;
      if (flagged) stats.false_positive += 1.0;
    }
  }
  if (stats.freeriders > 0) {
    stats.detection /= static_cast<double>(stats.freeriders);
  }
  if (stats.honest > 0) {
    stats.false_positive /= static_cast<double>(stats.honest);
  }
  return stats;
}

HonestBlameSplit Experiment::honest_blame_split() const {
  HonestBlameSplit split;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_freerider(id)) continue;
    if (is_departed(id)) {
      // Currently gone counts as a leaver even if it rejoined in between —
      // its most recent transition is a departure.
      ++split.leavers;
      split.leaver_total += ledger_.total(id);
    } else if (ever_rejoined(id)) {
      ++split.rejoiners;
      split.rejoiner_total += ledger_.total(id);
    } else {
      ++split.stayers;
      split.stayer_total += ledger_.total(id);
    }
  }
  return split;
}

Experiment::AdversaryStats Experiment::adversary_stats() {
  AdversaryStats stats;
  const double elapsed = to_seconds(sim_.now());
  double gain_sum = 0.0;
  double presence_sum = 0.0;
  for (auto& controller : controllers_) {
    if (!controller) continue;
    const auto s = controller->stats(sim_.now());
    ++stats.adversaries;
    gain_sum += s.realized_gain();
    if (elapsed > 0.0) presence_sum += s.present_seconds / elapsed;
    stats.behavior_switches += s.behavior_switches;
    stats.probes += s.probes;
    stats.bounces += s.bounces;
  }
  if (stats.adversaries > 0) {
    stats.mean_realized_gain =
        gain_sum / static_cast<double>(stats.adversaries);
    stats.mean_present_fraction =
        presence_sum / static_cast<double>(stats.adversaries);
  }
  return stats;
}

std::uint64_t Experiment::handoff_promotions() const noexcept {
  return assignment_ == nullptr ? 0 : assignment_->promotions();
}

QuorumStats Experiment::quorum_stats() {
  QuorumStats stats;
  if (assignment_ == nullptr) return stats;
  std::size_t min_present = std::numeric_limits<std::size_t>::max();
  double sum = 0.0;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_departed(id) || !directory_.is_live(id)) continue;
    const auto& managers = assignment_->of(id);
    std::size_t present = 0;
    for (const auto manager : managers) {
      // An expelled manager is not a working quorum member even when no
      // handoff replaced it (the pre-fix accounting counted it present,
      // hiding the permanent hole expulsions used to leave).
      if (!is_departed(manager) && !is_expelled_member(manager)) ++present;
    }
    sum += static_cast<double>(present);
    min_present = std::min(min_present, present);
    ++stats.targets;
  }
  if (stats.targets > 0) {
    stats.mean = sum / static_cast<double>(stats.targets);
    stats.min = min_present;
  }
  return stats;
}

std::vector<gossip::HealthPoint> Experiment::health_curve(
    const std::vector<double>& lags_seconds, bool honest_only,
    const gossip::PlaybackConfig& playback) {
  std::vector<const gossip::DeliveryLog*> deliveries;
  const TimePoint warmup_end = kSimEpoch + playback.warmup;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (honest_only && is_freerider(id)) continue;
    if (is_departed(id)) continue;          // log froze mid-stream
    if (join_time_[i] > warmup_end) continue;  // missed judgeable chunks
    deliveries.push_back(&nodes_[i].engine->delivery_times());
  }
  return gossip::health_curve(source_->emitted(), deliveries, sim_.now(),
                              lags_seconds, playback);
}

void Experiment::enable_streamed_health(std::vector<double> lags_seconds,
                                        bool honest_only,
                                        const gossip::PlaybackConfig& playback,
                                        Duration fold_interval) {
  require(!lags_seconds.empty(), "streamed health needs at least one lag");
  require(fold_interval > Duration::zero(), "fold interval must be positive");
  const bool arm_now = started_ && !streamed_.enabled;
  streamed_.enabled = true;
  streamed_.lags_seconds = std::move(lags_seconds);
  streamed_.honest_only = honest_only;
  streamed_.playback = playback;
  streamed_.fold_interval = fold_interval;
  double horizon = playback.common_window_lag;
  for (const double lag : streamed_.lags_seconds) {
    horizon = std::max(horizon, lag);
  }
  streamed_.fold_horizon = seconds(horizon);
  streamed_.folded_chunks = 0;
  streamed_.folded_eligible = 0;
  streamed_.on_time.assign(static_cast<std::size_t>(population()) *
                               streamed_.lags_seconds.size(),
                           0);
  if (arm_now) schedule_health_fold();
}

void Experiment::schedule_rps_round() {
  sim_.schedule_after(config_.membership.rps_round_period, [this] {
    if (wound_down_) return;
    rps_->run_round();
    schedule_rps_round();
  });
}

void Experiment::schedule_health_fold() {
  sim_.schedule_after(streamed_.fold_interval, [this] {
    if (wound_down_) return;
    fold_streamed_health();
    schedule_health_fold();
  });
}

void Experiment::fold_streamed_health() {
  const auto& emitted = source_->emitted();
  const std::size_t nlags = streamed_.lags_seconds.size();
  // Joiners since the last fold: extend the counter table (dense by id).
  streamed_.on_time.resize(static_cast<std::size_t>(population()) * nlags, 0);
  const TimePoint warmup_end = kSimEpoch + streamed_.playback.warmup;
  const TimePoint now = sim_.now();
  std::size_t i = streamed_.folded_chunks;
  for (; i < emitted.size(); ++i) {
    const auto& chunk = emitted[i];
    // Emission times are monotone, so the foldable chunks are a prefix.
    // Strictly before `now`: a delivery scheduled at this very instant but
    // ordered after the fold would land exactly on its deadline — folding
    // the chunk now would judge it late while retained logs judge it on
    // time. Past-deadline chunks cannot have that race.
    if (chunk.emitted_at + streamed_.fold_horizon >= now) break;
    if (chunk.emitted_at < warmup_end) continue;  // ineligible at every lag
    ++streamed_.folded_eligible;
    for (std::uint32_t v = 1; v < population(); ++v) {
      const TimePoint* at = nodes_[v].engine->delivery_times().find(chunk.id);
      if (at == nullptr) continue;  // never arrived: on time nowhere
      auto* counters = &streamed_.on_time[static_cast<std::size_t>(v) * nlags];
      for (std::size_t j = 0; j < nlags; ++j) {
        if (*at <= chunk.emitted_at + seconds(streamed_.lags_seconds[j])) {
          ++counters[j];
        }
      }
    }
  }
  if (i == streamed_.folded_chunks) return;
  streamed_.folded_chunks = i;
  // Every chunk below the fold line is judged at every lag; its delivery
  // stamps can go. Presence bits stay (they are the engines' held-set).
  const ChunkId horizon = i < emitted.size()
                              ? emitted[i].id
                              : ChunkId{emitted.back().id.value() + 1};
  for (auto& node : nodes_) {
    if (node.engine) node.engine->compact_delivery_log(horizon);
  }
  for (auto& node : retired_) {
    if (node.engine) node.engine->compact_delivery_log(horizon);
  }
}

std::vector<gossip::HealthPoint> Experiment::streamed_health_curve() {
  require(streamed_.enabled, "call enable_streamed_health first");
  const auto& emitted = source_->emitted();
  const std::size_t nlags = streamed_.lags_seconds.size();
  streamed_.on_time.resize(static_cast<std::size_t>(population()) * nlags, 0);
  const TimePoint warmup_end = kSimEpoch + streamed_.playback.warmup;
  const TimePoint end = sim_.now();

  // Node filter, exactly health_curve's.
  std::vector<std::uint32_t> included;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (streamed_.honest_only && is_freerider(id)) continue;
    if (is_departed(id)) continue;             // log froze mid-stream
    if (join_time_[i] > warmup_end) continue;  // missed judgeable chunks
    included.push_back(i);
  }

  const bool common = streamed_.playback.common_window_lag > 0.0;
  std::vector<gossip::HealthPoint> curve;
  curve.reserve(nlags);
  std::vector<std::uint32_t> tail_on_time(included.size());
  for (std::size_t j = 0; j < nlags; ++j) {
    const double lag_s = streamed_.lags_seconds[j];
    const Duration lag = seconds(lag_s);
    const Duration window_lag =
        common ? seconds(streamed_.playback.common_window_lag) : lag;
    // The unfolded tail — chunks whose window closed after the last fold —
    // still has its delivery stamps and is judged exactly like
    // health_curve does; the folded prefix contributes integer counters.
    std::uint64_t eligible = streamed_.folded_eligible;
    std::fill(tail_on_time.begin(), tail_on_time.end(), 0);
    for (std::size_t c = streamed_.folded_chunks; c < emitted.size(); ++c) {
      const auto& chunk = emitted[c];
      if (chunk.emitted_at < warmup_end) continue;
      if (chunk.emitted_at + window_lag > end) continue;
      ++eligible;
      for (std::size_t k = 0; k < included.size(); ++k) {
        const TimePoint* at =
            nodes_[included[k]].engine->delivery_times().find(chunk.id);
        if (at != nullptr && *at <= chunk.emitted_at + lag) {
          ++tail_on_time[k];
        }
      }
    }
    if (eligible == 0) {
      curve.push_back(gossip::HealthPoint{lag_s, 0.0});
      continue;
    }
    std::size_t clear_nodes = 0;
    for (std::size_t k = 0; k < included.size(); ++k) {
      const auto folded =
          streamed_.on_time[static_cast<std::size_t>(included[k]) * nlags + j];
      const double frac = static_cast<double>(folded + tail_on_time[k]) /
                          static_cast<double>(eligible);
      if (frac >= streamed_.playback.clear_threshold) ++clear_nodes;
    }
    curve.push_back(gossip::HealthPoint{
        lag_s, included.empty()
                   ? 0.0
                   : static_cast<double>(clear_nodes) /
                         static_cast<double>(included.size())});
  }
  return curve;
}

void Experiment::enable_trace(std::size_t capacity) {
  require(recorder_ == nullptr, "flight recorder already armed");
  recorder_ = std::make_unique<obs::Recorder>(sim_, capacity);
  injector_->set_trace(recorder_.get());
  if (rps_) rps_->set_trace(recorder_.get());
  for (auto& node : nodes_) {
    if (node.engine) node.engine->set_trace(recorder_.get());
    if (node.agent) node.agent->set_trace(recorder_.get());
  }
  for (auto& controller : controllers_) {
    if (controller) controller->set_trace(recorder_.get());
  }
}

void Experiment::collect_metrics(obs::Registry& out) const {
  // Wire stats: every sim::MetricsRegistry counter under its own name
  // (sent.<kind>.count / sent.<kind>.bytes — the Mailer's naming). The
  // sim registry orders slots by first use, which depends on deployment
  // history across resets; sort by name so the folded registry's entry
  // order is a function of the run alone (the reset audit compares two
  // registries slot-by-slot).
  auto wire = metrics_.snapshot();
  std::sort(wire.begin(), wire.end());
  for (const auto& [name, value] : wire) {
    out.set_counter(name, value);
  }
  const auto& net = network_->stats();
  out.set_counter("net.datagrams_sent", net.datagrams_sent);
  out.set_counter("net.datagrams_lost", net.datagrams_lost);
  out.set_counter("net.datagrams_dropped", net.datagrams_dropped);
  out.set_counter("net.datagrams_delivered", net.datagrams_delivered);
  out.set_counter("net.reliable_sent", net.reliable_sent);
  out.set_counter("net.reliable_delivered", net.reliable_delivered);
  out.set_counter("net.bytes_sent", net.bytes_sent);
  out.set_counter("net.bytes_delivered", net.bytes_delivered);
  out.set_counter("net.no_route", net.no_route);
  const auto& faults = injector_->stats();
  out.set_counter("faults.dropped_burst", faults.dropped_burst);
  out.set_counter("faults.dropped_partition", faults.dropped_partition);
  out.set_counter("faults.duplicated", faults.duplicated);
  out.set_counter("faults.delayed", faults.delayed);
  out.set_counter("faults.reordered", faults.reordered);
  const auto audit = audit_channel_totals();
  out.set_counter("audit_channel.sends", audit.sends);
  out.set_counter("audit_channel.retries", audit.retries);
  out.set_counter("audit_channel.give_ups", audit.give_ups);
  out.set_counter("audit_channel.acks_received", audit.acks_received);
  out.set_counter("audit_channel.dups_suppressed", audit.dups_suppressed);
  gossip::EngineStats engines;
  const auto fold_engines = [&engines](const std::vector<Node>& pool) {
    for (const auto& node : pool) {
      if (!node.engine) continue;
      const auto& s = node.engine->stats();
      engines.chunks_received += s.chunks_received;
      engines.duplicate_serves += s.duplicate_serves;
      engines.proposals_sent += s.proposals_sent;
      engines.requests_sent += s.requests_sent;
      engines.chunks_served += s.chunks_served;
      engines.invalid_requests += s.invalid_requests;
      engines.duplicate_requests += s.duplicate_requests;
    }
  };
  fold_engines(nodes_);
  fold_engines(retired_);
  out.set_counter("engine.chunks_received", engines.chunks_received);
  out.set_counter("engine.duplicate_serves", engines.duplicate_serves);
  out.set_counter("engine.proposals_sent", engines.proposals_sent);
  out.set_counter("engine.requests_sent", engines.requests_sent);
  out.set_counter("engine.chunks_served", engines.chunks_served);
  out.set_counter("engine.invalid_requests", engines.invalid_requests);
  out.set_counter("engine.duplicate_requests", engines.duplicate_requests);
  out.set_counter("blame.ledger_emissions", ledger_.emissions());
  out.set_counter("expulsions.applied", expulsions_.size());
  out.set_counter("handoffs.executed", handoffs_.size());
  out.set_counter("churn.joins", joins_.size());
  out.set_counter("churn.departures", departures_.size());
  out.set_counter("churn.rejoins", rejoins_.size());
  if (recorder_ != nullptr) {
    out.set_counter("trace.recorded", recorder_->ring().total_recorded());
    out.set_counter("trace.dropped", recorder_->ring().dropped());
  }
}

OverheadReport Experiment::overhead() const {
  OverheadReport report;
  static const char* kDissemination[] = {"propose", "request", "serve"};
  static const char* kVerification[] = {"ack",          "confirm_req",
                                        "confirm_resp", "blame",
                                        "score_query",  "score_reply",
                                        "expel_request", "expel_vote",
                                        "expel_commit"};
  static const char* kAudit[] = {"audit_request", "audit_history",
                                 "history_poll", "history_poll_resp",
                                 "audit_ack"};
  for (const auto* kind : kDissemination) {
    report.dissemination_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  for (const auto* kind : kVerification) {
    report.verification_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  for (const auto* kind : kAudit) {
    report.audit_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  return report;
}

}  // namespace lifting::runtime

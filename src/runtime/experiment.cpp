#include "runtime/experiment.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "lifting/managers.hpp"

namespace lifting::runtime {

Experiment::Experiment(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(derive_rng(config_.seed, /*stream=*/0xE58)),
      directory_(config_.nodes) {
  config_.validate();
  build();
}

void Experiment::build() {
  const std::uint32_t n = config_.nodes;

  // --- assign roles: freeriders (never the source), weak links.
  freerider_.assign(n, 0);
  weak_.assign(n, 0);
  expulsion_scheduled_.assign(n, 0);
  auto role_rng = derive_rng(config_.seed, 0x01);
  const auto freerider_count = static_cast<std::uint32_t>(
      config_.freerider_fraction * static_cast<double>(n));
  if (freerider_count > 0) {
    const auto picks = sample_k_distinct(role_rng, n - 1, freerider_count);
    for (const auto p : picks) {
      const NodeId id{p + 1};  // skip the source (node 0)
      freerider_[id.value()] = 1;
      freerider_list_.push_back(id);
    }
    std::sort(freerider_list_.begin(), freerider_list_.end());
  }
  const auto weak_count = static_cast<std::uint32_t>(
      config_.weak_fraction * static_cast<double>(n));
  if (weak_count > 0) {
    const auto picks = sample_k_distinct(role_rng, n - 1, weak_count);
    for (const auto p : picks) weak_[p + 1] = 1;
  }

  // --- network + mailer
  // Pre-size the event arena for the steady-state in-flight population
  // (a few dozen timers/deliveries per node).
  sim_.reserve_events(static_cast<std::size_t>(n) * 32);
  network_ = std::make_unique<sim::Network<gossip::Message>>(
      sim_, derive_rng(config_.seed, 0x02));
  mailer_ = std::make_unique<gossip::Mailer>(*network_, &metrics_);

  // --- behavior of each node
  gossip::BehaviorSpec freerider_behavior = config_.freerider_behavior;
  if (freerider_behavior.collusion.has_value()) {
    freerider_behavior.collusion->coalition = freerider_list_;
  }

  lifting::Agent::Hooks hooks;
  hooks.on_blame_emitted = [this](NodeId /*by*/, NodeId target, double value,
                                  gossip::BlameReason reason) {
    ledger_.record(target, value, reason);
  };
  hooks.on_expulsion_committed = [this](NodeId victim, NodeId /*manager*/,
                                        bool from_audit) {
    on_expulsion_committed(victim, from_audit);
  };
  hooks.on_audit_report = [this](NodeId /*auditor*/,
                                 const lifting::AuditReport& report) {
    audit_reports_.push_back(report);
  };

  // One deployment-wide manager table shared by every agent — the
  // assignment is a pure function of (n, M, seed).
  auto assignment = std::make_shared<lifting::ManagerAssignment>(
      n, config_.lifting.managers, config_.seed);

  nodes_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id{i};
    const bool freeride = is_freerider(id);
    const auto behavior =
        freeride ? freerider_behavior : gossip::BehaviorSpec::honest();
    auto& node = nodes_[i];

    if (config_.lifting_enabled) {
      node.agent = std::make_unique<lifting::Agent>(
          sim_, *mailer_, directory_, id, config_.lifting, behavior,
          derive_rng(config_.seed, 0x1000ULL + i), config_.seed, kSimEpoch,
          hooks, assignment);
    }
    auto params = config_.gossip;
    params.emit_acks = config_.lifting_enabled;
    node.engine = std::make_unique<gossip::Engine>(
        sim_, *mailer_, directory_, id, params, behavior,
        derive_rng(config_.seed, 0x2000ULL + i),
        node.agent ? node.agent.get() : nullptr);

    const auto profile = weak_[i] != 0 ? config_.weak_link : config_.link;
    network_->add_node(id, profile, [this, i](
                                        sim::Delivery<gossip::Message>& d) {
      auto& target = nodes_[i];
      const auto& msg = d.payload;
      // The leading Message alternatives are the gossip kinds
      // (propose/request/serve/ack — order pinned by static_asserts next
      // to the variant); everything else is LiFTinG traffic.
      if (msg.index() < gossip::kGossipKindCount) {
        target.engine->handle(d.from, msg);
      } else if (target.agent) {
        target.agent->handle(d.from, msg);
      }
    });
  }

  // --- stream source at node 0
  source_ = std::make_unique<gossip::StreamSource>(sim_, *nodes_[0].engine,
                                                   config_.stream);
}

void Experiment::run_until(TimePoint t) {
  if (!started_) {
    started_ = true;
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      const auto offset = Duration{static_cast<Duration::rep>(
          rng_.uniform() *
          static_cast<double>(config_.gossip.period.count()))};
      nodes_[i].engine->start(offset);
      if (nodes_[i].agent) nodes_[i].agent->start(offset);
    }
    source_->start();
  }
  sim_.run_until(t);
}

void Experiment::run() { run_until(kSimEpoch + config_.duration); }

void Experiment::on_expulsion_committed(NodeId victim, bool from_audit) {
  if (!config_.expulsion_enabled) return;
  if (victim == source()) return;  // the source is trusted infrastructure
  if (expulsion_scheduled_[victim.value()] != 0) return;
  expulsion_scheduled_[victim.value()] = 1;
  // The managers announce the expulsion; it reaches the membership layer
  // after a propagation delay, at which point honest nodes shun the victim.
  sim_.schedule_after(config_.expulsion_propagation, [this, victim,
                                                      from_audit] {
    if (!directory_.is_live(victim)) return;
    directory_.expel(victim);
    expulsions_.push_back(ExpulsionRecord{victim, to_seconds(sim_.now()),
                                          from_audit,
                                          is_freerider(victim)});
  });
}

double Experiment::true_score(NodeId id) {
  LIFTING_ASSERT(config_.lifting_enabled, "scores require LiFTinG");
  const auto mgrs = lifting::managers_of(id, config_.nodes,
                                         config_.lifting.managers,
                                         config_.seed);
  // Mirrors the protocol read: min-vote by default, mean for the ablation.
  const bool use_min =
      config_.lifting.score_vote == LiftingParams::ScoreVote::kMin;
  double min_score = 0.0;
  double sum = 0.0;
  bool first = true;
  const bool coalition_active =
      config_.freerider_behavior.collusion.has_value() && is_freerider(id);
  for (const auto m : mgrs) {
    double s =
        nodes_[m.value()].agent->manager_store().normalized_score(id,
                                                                  sim_.now());
    // A colluding manager inflates its coalition's scores on the wire
    // (§5.1); this read mirrors what the managers would actually answer
    // (the same inflated value Agent::handle_score_query reports).
    if (coalition_active && is_freerider(m)) s = std::max(s, 25.0);
    sum += s;
    if (first || s < min_score) {
      min_score = s;
      first = false;
    }
  }
  return use_min ? min_score : sum / static_cast<double>(mgrs.size());
}

bool Experiment::majority_expelled(NodeId id) {
  const auto mgrs = lifting::managers_of(id, config_.nodes,
                                         config_.lifting.managers,
                                         config_.seed);
  std::size_t expelled = 0;
  for (const auto m : mgrs) {
    if (nodes_[m.value()].agent->manager_store().expelled(id)) ++expelled;
  }
  return expelled * 2 > mgrs.size();
}

Experiment::ScoreSnapshot Experiment::snapshot_scores() {
  ScoreSnapshot snap;
  for (std::uint32_t i = 1; i < config_.nodes; ++i) {
    const NodeId id{i};
    const double s = true_score(id);
    if (is_freerider(id)) {
      snap.freeriders.push_back(s);
    } else {
      snap.honest.push_back(s);
    }
  }
  return snap;
}

DetectionStats Experiment::detection_at(double eta) {
  DetectionStats stats;
  for (std::uint32_t i = 1; i < config_.nodes; ++i) {
    const NodeId id{i};
    const bool flagged = !directory_.is_live(id) || true_score(id) < eta;
    if (is_freerider(id)) {
      ++stats.freeriders;
      if (flagged) stats.detection += 1.0;
    } else {
      ++stats.honest;
      if (flagged) stats.false_positive += 1.0;
    }
  }
  if (stats.freeriders > 0) {
    stats.detection /= static_cast<double>(stats.freeriders);
  }
  if (stats.honest > 0) {
    stats.false_positive /= static_cast<double>(stats.honest);
  }
  return stats;
}

std::vector<gossip::HealthPoint> Experiment::health_curve(
    const std::vector<double>& lags_seconds, bool honest_only,
    const gossip::PlaybackConfig& playback) {
  std::vector<const gossip::DeliveryLog*> deliveries;
  for (std::uint32_t i = 1; i < config_.nodes; ++i) {
    if (honest_only && is_freerider(NodeId{i})) continue;
    deliveries.push_back(&nodes_[i].engine->delivery_times());
  }
  return gossip::health_curve(source_->emitted(), deliveries, sim_.now(),
                              lags_seconds, playback);
}

OverheadReport Experiment::overhead() const {
  OverheadReport report;
  static const char* kDissemination[] = {"propose", "request", "serve"};
  static const char* kVerification[] = {"ack",          "confirm_req",
                                        "confirm_resp", "blame",
                                        "score_query",  "score_reply",
                                        "expel_request", "expel_vote",
                                        "expel_commit"};
  static const char* kAudit[] = {"audit_request", "audit_history",
                                 "history_poll", "history_poll_resp"};
  for (const auto* kind : kDissemination) {
    report.dissemination_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  for (const auto* kind : kVerification) {
    report.verification_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  for (const auto* kind : kAudit) {
    report.audit_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  return report;
}

}  // namespace lifting::runtime

#include "runtime/experiment.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "lifting/managers.hpp"

namespace lifting::runtime {

Experiment::Experiment(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(derive_rng(config_.seed, /*stream=*/0xE58)),
      directory_(config_.nodes) {
  config_.validate();
  build();
}

void Experiment::reset(ScenarioConfig config) {
  config_ = std::move(config);
  config_.validate();
  rewind();
  build();
}

void Experiment::reset(std::uint64_t seed) {
  auto cfg = config_;
  cfg.seed = seed;
  reset(std::move(cfg));
}

void Experiment::rewind() {
  sim_.reset();
  metrics_.reset_all();  // counters zeroed; Mailer's cached handles stay valid
  directory_.reset(config_.nodes);
  rng_ = derive_rng(config_.seed, /*stream=*/0xE58);
  ledger_.reset();
  expulsions_.clear();
  audit_reports_.clear();
  joins_.clear();
  departures_.clear();
  timeline_events_.clear();
  score_timeline_.clear();
  freerider_list_.clear();
  score_sample_interval_ = Duration::zero();
  started_ = false;
  wound_down_ = false;
}

void Experiment::build() {
  const std::uint32_t n = config_.nodes;

  // --- assign roles: freeriders (never the source), weak links.
  freerider_.assign(n, 0);
  weak_.assign(n, 0);
  departed_.assign(n, 0);
  expulsion_scheduled_.assign(n, 0);
  join_time_.assign(n, kSimEpoch);
  next_join_id_ = n;
  auto role_rng = derive_rng(config_.seed, 0x01);
  const auto freerider_count = static_cast<std::uint32_t>(
      config_.freerider_fraction * static_cast<double>(n));
  if (freerider_count > 0) {
    const auto picks = sample_k_distinct(role_rng, n - 1, freerider_count);
    for (const auto p : picks) {
      const NodeId id{p + 1};  // skip the source (node 0)
      freerider_[id.value()] = 1;
      freerider_list_.push_back(id);
    }
    std::sort(freerider_list_.begin(), freerider_list_.end());
  }
  const auto weak_count = static_cast<std::uint32_t>(
      config_.weak_fraction * static_cast<double>(n));
  if (weak_count > 0) {
    const auto picks = sample_k_distinct(role_rng, n - 1, weak_count);
    for (const auto p : picks) weak_[p + 1] = 1;
  }

  // --- network + mailer
  // Pre-size the event arena for the steady-state in-flight population
  // (a few dozen timers/deliveries per node).
  sim_.reserve_events(static_cast<std::size_t>(n) * 32);
  if (network_ == nullptr) {
    network_ = std::make_unique<sim::Network<gossip::Message>>(
        sim_, derive_rng(config_.seed, 0x02));
    mailer_ = std::make_unique<gossip::Mailer>(*network_, &metrics_);
  } else {
    // Reset path: same network object (the Mailer's reference stays
    // valid), fresh endpoints and statistics, reused delivery pool.
    network_->reset(derive_rng(config_.seed, 0x02));
  }

  hooks_.on_blame_emitted = [this](NodeId /*by*/, NodeId target, double value,
                                   gossip::BlameReason reason) {
    // Ground truth reclassifies blame against already-departed targets:
    // the emission is real (the wire message carries `reason`), but the
    // target's "freeriding" was death — see HonestBlameSplit.
    ledger_.record(target, value,
                   is_departed(target) ? gossip::BlameReason::kPostDeparture
                                       : reason);
  };
  hooks_.on_expulsion_committed = [this](NodeId victim, NodeId /*manager*/,
                                         bool from_audit) {
    on_expulsion_committed(victim, from_audit);
  };
  hooks_.on_audit_report = [this](NodeId /*auditor*/,
                                  const lifting::AuditReport& report) {
    audit_reports_.push_back(report);
  };

  // One deployment-wide manager table shared by every agent — the
  // assignment is a pure function of (n, M, seed); joiners extend it
  // lazily, drawing their managers from the base pool [0, n). On reset the
  // table rebinds in place (a no-op when (n, M, seed) are unchanged).
  if (assignment_ == nullptr) {
    assignment_ = std::make_shared<lifting::ManagerAssignment>(
        n, config_.lifting.managers, config_.seed);
  } else {
    assignment_->rebind(n, config_.lifting.managers, config_.seed);
  }

  nodes_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id{i};
    const auto behavior = is_freerider(id)
                              ? resolve_behavior(config_.freerider_behavior)
                              : gossip::BehaviorSpec::honest();
    make_node(i, behavior, weak_[i] != 0 ? config_.weak_link : config_.link);
  }

  // --- stream source at node 0
  source_ = std::make_unique<gossip::StreamSource>(sim_, *nodes_[0].engine,
                                                   config_.stream);
}

gossip::BehaviorSpec Experiment::resolve_behavior(
    gossip::BehaviorSpec spec) const {
  if (spec.collusion.has_value() && spec.collusion->coalition.empty()) {
    spec.collusion->coalition = freerider_list_;
  }
  return spec;
}

void Experiment::make_node(std::uint32_t i,
                           const gossip::BehaviorSpec& behavior,
                           const sim::LinkProfile& profile) {
  const NodeId id{i};
  auto& node = nodes_[i];
  // Per-node rng streams live in disjoint 2^32-wide bases so no two
  // (purpose, node) pairs can ever collide — the old 0x1000+i / 0x2000+i
  // scheme gave node 4096+k's agent the exact stream of node k's engine,
  // silently correlating audit sampling with partner selection at the
  // populations the scale benches measure.
  if (config_.lifting_enabled) {
    // Genesis is the node's own join instant: a joiner's score normalizes
    // over the periods it has actually spent in the system.
    node.agent = std::make_unique<lifting::Agent>(
        sim_, *mailer_, directory_, id, config_.lifting, behavior,
        derive_rng(config_.seed, 0xA00000000ULL + i), config_.seed,
        sim_.now(), hooks_, assignment_);
  }
  auto params = config_.gossip;
  params.emit_acks = config_.lifting_enabled;
  node.engine = std::make_unique<gossip::Engine>(
      sim_, *mailer_, directory_, id, params, behavior,
      derive_rng(config_.seed, 0xB00000000ULL + i),
      node.agent ? node.agent.get() : nullptr);

  network_->add_node(id, profile, [this, i](
                                      sim::Delivery<gossip::Message>& d) {
    auto& target = nodes_[i];
    const auto& msg = d.payload;
    // The leading Message alternatives are the gossip kinds
    // (propose/request/serve/ack — order pinned by static_asserts next
    // to the variant); everything else is LiFTinG traffic.
    if (msg.index() < gossip::kGossipKindCount) {
      target.engine->handle(d.from, msg);
    } else if (target.agent) {
      target.agent->handle(d.from, msg);
    }
  });
}

void Experiment::run_until(TimePoint t) {
  if (!started_) {
    started_ = true;
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      const auto offset = Duration{static_cast<Duration::rep>(
          rng_.uniform() *
          static_cast<double>(config_.gossip.period.count()))};
      nodes_[i].engine->start(offset);
      if (nodes_[i].agent) nodes_[i].agent->start(offset);
    }
    source_->start();
    // Timeline events become ordinary simulator events. Scheduling them in
    // stable time order means equal timestamps apply in insertion order
    // (the queue's (time, insertion-seq) total order), and run_until
    // checkpoints cannot observe event boundaries.
    timeline_events_ = config_.timeline.ordered();
    for (std::size_t i = 0; i < timeline_events_.size(); ++i) {
      sim_.schedule_at(kSimEpoch + timeline_events_[i].at,
                       [this, i] { apply_event(timeline_events_[i]); });
    }
    if (score_sample_interval_ > Duration::zero()) schedule_score_sample();
  }
  sim_.run_until(t);
}

void Experiment::run() { run_until(kSimEpoch + config_.duration); }

void Experiment::wind_down() {
  wound_down_ = true;
  if (source_) source_->stop();
  for (auto& node : nodes_) {
    if (node.engine) node.engine->stop();
    if (node.agent) node.agent->stop();
  }
  // Drain: with every periodic loop stopped, only in-flight deliveries and
  // one-shot timers remain, and none of them reschedules. The queue
  // empties, returning every pooled delivery slot.
  sim_.run();
}

// ------------------------------------------------------------- timeline

void Experiment::ensure_tables(std::uint32_t n) {
  if (nodes_.size() >= n) return;
  nodes_.resize(n);
  freerider_.resize(n, 0);
  weak_.resize(n, 0);
  departed_.resize(n, 0);
  expulsion_scheduled_.resize(n, 0);
  join_time_.resize(n, kSimEpoch);
}

void Experiment::set_freerider(NodeId id, bool freeride) {
  auto& flag = freerider_[id.value()];
  if ((flag != 0) == freeride) return;
  flag = freeride ? 1 : 0;
  if (freeride) {
    freerider_list_.insert(
        std::lower_bound(freerider_list_.begin(), freerider_list_.end(), id),
        id);
  } else {
    const auto it =
        std::find(freerider_list_.begin(), freerider_list_.end(), id);
    if (it != freerider_list_.end()) freerider_list_.erase(it);
  }
}

void Experiment::apply_event(const ScenarioEvent& event) {
  if (wound_down_) return;
  switch (event.kind) {
    case ScenarioEventKind::kJoin:
      join_node(event);
      break;
    case ScenarioEventKind::kLeave:
      retire_node(event.node, /*crash=*/false);
      break;
    case ScenarioEventKind::kCrash:
      retire_node(event.node, /*crash=*/true);
      break;
    case ScenarioEventKind::kSetBehavior: {
      const auto v = static_cast<std::size_t>(event.node.value());
      require(v < nodes_.size(), "set_behavior on an unknown node");
      if (is_departed(event.node)) return;
      set_freerider(event.node, event.freerider);
      const auto behavior = resolve_behavior(event.behavior);
      auto& node = nodes_[v];
      node.engine->set_behavior(behavior);
      if (node.agent) node.agent->set_behavior(behavior);
      break;
    }
    case ScenarioEventKind::kSetLink: {
      const auto v = static_cast<std::size_t>(event.node.value());
      require(v < nodes_.size(), "set_link on an unknown node");
      if (is_departed(event.node)) return;
      network_->set_profile(event.node, event.link);
      break;
    }
  }
}

NodeId Experiment::join_node(const ScenarioEvent& event) {
  const std::uint32_t idv =
      event.node == kAutoNodeId ? next_join_id_ : event.node.value();
  require(idv == next_join_id_,
          "joiner ids must be fresh and contiguous (base population, then "
          "join order) — ids are never recycled, so dense tables (ledger, "
          "scores) can never alias two incarnations, and no hole slots "
          "without an engine can exist");
  next_join_id_ = idv + 1;
  ensure_tables(idv + 1);
  const NodeId id{idv};

  directory_.join(id);
  set_freerider(id, event.freerider);
  join_time_[idv] = sim_.now();
  make_node(idv, resolve_behavior(event.behavior),
            event.has_link ? event.link : config_.link);

  // Desynchronized start, like the initial population (own stream so the
  // draw is independent of join order).
  auto offset_rng = derive_rng(config_.seed, 0x9000000000ULL + idv);
  const auto offset = Duration{static_cast<Duration::rep>(
      offset_rng.uniform() *
      static_cast<double>(config_.gossip.period.count()))};
  nodes_[idv].engine->start(offset);
  if (nodes_[idv].agent) nodes_[idv].agent->start(offset);
  joins_.push_back(JoinRecord{id, to_seconds(sim_.now()), event.freerider});
  return id;
}

void Experiment::retire_node(NodeId id, bool crash) {
  require(id != source(), "the source is pinned infrastructure");
  const auto v = static_cast<std::size_t>(id.value());
  require(v < nodes_.size(), "departure of an unknown node");
  if (is_departed(id)) return;
  // A node LiFTinG already expelled is not live; a churn departure
  // targeting it (the Poisson preset is generated blind to runtime
  // expulsions) must not reclassify it as a leaver — expulsion keeps it
  // in the detection statistics as a caught node.
  if (!directory_.is_live(id)) return;
  departed_[v] = 1;

  // Wind the node down in place: the objects outlive the departure so
  // pending timers and deliveries referencing them stay valid, but they
  // stop proposing, ticking and testifying. The network endpoint is torn
  // down immediately — packets to a dead host vanish.
  auto& node = nodes_[v];
  node.engine->stop();
  if (node.agent) node.agent->stop();
  network_->remove_node(id);

  if (crash) {
    // The membership only learns of a crash when the failure detector
    // fires; until then partners keep selecting the dead node and its
    // verifiers blame the silence (wrongful blame, split out by
    // honest_blame_split / bench_churn).
    sim_.schedule_after(config_.failure_detection,
                        [this, id] { directory_.leave(id); });
  } else {
    directory_.leave(id);
  }
  departures_.push_back(
      DepartureRecord{id, to_seconds(sim_.now()), crash, is_freerider(id)});
}

// ------------------------------------------------------------ expulsions

void Experiment::on_expulsion_committed(NodeId victim, bool from_audit) {
  if (!config_.expulsion_enabled) return;
  if (victim == source()) return;  // the source is trusted infrastructure
  if (expulsion_scheduled_[victim.value()] != 0) return;
  expulsion_scheduled_[victim.value()] = 1;
  // The managers announce the expulsion; it reaches the membership layer
  // after a propagation delay, at which point honest nodes shun the victim.
  sim_.schedule_after(config_.expulsion_propagation, [this, victim,
                                                      from_audit] {
    if (!directory_.is_live(victim)) return;
    directory_.expel(victim);
    expulsions_.push_back(ExpulsionRecord{victim, to_seconds(sim_.now()),
                                          from_audit,
                                          is_freerider(victim)});
  });
}

// ----------------------------------------------------------- measurement

double Experiment::true_score(NodeId id) {
  LIFTING_ASSERT(config_.lifting_enabled, "scores require LiFTinG");
  const auto& mgrs = assignment_->of(id);
  // Mirrors the protocol read: min-vote by default, mean for the ablation.
  const bool use_min =
      config_.lifting.score_vote == LiftingParams::ScoreVote::kMin;
  double min_score = 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  const bool coalition_active =
      config_.freerider_behavior.collusion.has_value() && is_freerider(id);
  for (const auto m : mgrs) {
    if (is_departed(m)) continue;  // a departed manager answers nothing
    double s =
        nodes_[m.value()].agent->manager_store().normalized_score(id,
                                                                  sim_.now());
    // A colluding manager inflates its coalition's scores on the wire
    // (§5.1); this read mirrors what the managers would actually answer
    // (the same inflated value Agent::handle_score_query reports).
    if (coalition_active && is_freerider(m)) s = std::max(s, 25.0);
    sum += s;
    if (counted == 0 || s < min_score) min_score = s;
    ++counted;
  }
  if (counted == 0) return 0.0;  // all managers churned out: no reply
  return use_min ? min_score : sum / static_cast<double>(counted);
}

bool Experiment::majority_expelled(NodeId id) {
  const auto& mgrs = assignment_->of(id);
  std::size_t expelled = 0;
  std::size_t counted = 0;
  for (const auto m : mgrs) {
    if (is_departed(m)) continue;
    if (nodes_[m.value()].agent->manager_store().expelled(id)) ++expelled;
    ++counted;
  }
  return counted > 0 && expelled * 2 > counted;
}

Experiment::ScoreSnapshot Experiment::snapshot_scores() {
  ScoreSnapshot snap;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_departed(id)) continue;
    const double s = true_score(id);
    if (is_freerider(id)) {
      snap.freeriders.push_back(s);
    } else {
      snap.honest.push_back(s);
    }
  }
  return snap;
}

void Experiment::sample_scores_every(Duration interval) {
  require(interval > Duration::zero(), "sampling interval must be positive");
  require(config_.lifting_enabled, "score sampling requires LiFTinG");
  const bool arm_now = started_ && score_sample_interval_ == Duration::zero();
  score_sample_interval_ = interval;
  if (arm_now) schedule_score_sample();
}

void Experiment::schedule_score_sample() {
  sim_.schedule_after(score_sample_interval_, [this] {
    if (wound_down_) return;
    score_timeline_.push_back(
        TimedScores{to_seconds(sim_.now()), snapshot_scores()});
    schedule_score_sample();
  });
}

DetectionStats Experiment::detection_at(double eta) {
  DetectionStats stats;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_departed(id)) continue;  // gone through churn: not judgeable
    const bool flagged = !directory_.is_live(id) || true_score(id) < eta;
    if (is_freerider(id)) {
      ++stats.freeriders;
      if (flagged) stats.detection += 1.0;
    } else {
      ++stats.honest;
      if (flagged) stats.false_positive += 1.0;
    }
  }
  if (stats.freeriders > 0) {
    stats.detection /= static_cast<double>(stats.freeriders);
  }
  if (stats.honest > 0) {
    stats.false_positive /= static_cast<double>(stats.honest);
  }
  return stats;
}

HonestBlameSplit Experiment::honest_blame_split() const {
  HonestBlameSplit split;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (is_freerider(id)) continue;
    if (is_departed(id)) {
      ++split.leavers;
      split.leaver_total += ledger_.total(id);
    } else {
      ++split.stayers;
      split.stayer_total += ledger_.total(id);
    }
  }
  return split;
}

std::vector<gossip::HealthPoint> Experiment::health_curve(
    const std::vector<double>& lags_seconds, bool honest_only,
    const gossip::PlaybackConfig& playback) {
  std::vector<const gossip::DeliveryLog*> deliveries;
  const TimePoint warmup_end = kSimEpoch + playback.warmup;
  for (std::uint32_t i = 1; i < population(); ++i) {
    const NodeId id{i};
    if (honest_only && is_freerider(id)) continue;
    if (is_departed(id)) continue;          // log froze mid-stream
    if (join_time_[i] > warmup_end) continue;  // missed judgeable chunks
    deliveries.push_back(&nodes_[i].engine->delivery_times());
  }
  return gossip::health_curve(source_->emitted(), deliveries, sim_.now(),
                              lags_seconds, playback);
}

OverheadReport Experiment::overhead() const {
  OverheadReport report;
  static const char* kDissemination[] = {"propose", "request", "serve"};
  static const char* kVerification[] = {"ack",          "confirm_req",
                                        "confirm_resp", "blame",
                                        "score_query",  "score_reply",
                                        "expel_request", "expel_vote",
                                        "expel_commit"};
  static const char* kAudit[] = {"audit_request", "audit_history",
                                 "history_poll", "history_poll_resp"};
  for (const auto* kind : kDissemination) {
    report.dissemination_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  for (const auto* kind : kVerification) {
    report.verification_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  for (const auto* kind : kAudit) {
    report.audit_bytes +=
        metrics_.value(std::string("sent.") + kind + ".bytes");
  }
  return report;
}

}  // namespace lifting::runtime

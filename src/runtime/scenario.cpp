#include "runtime/scenario.hpp"

#include "common/assert.hpp"

namespace lifting::runtime {

void ScenarioConfig::validate() const {
  require(nodes >= 3, "need at least three nodes");
  require(freerider_fraction >= 0.0 && freerider_fraction < 1.0,
          "freerider fraction must be in [0,1)");
  require(weak_fraction >= 0.0 && weak_fraction <= 1.0,
          "weak fraction must be in [0,1]");
  require(duration > Duration::zero(), "duration must be positive");
  require(failure_detection >= Duration::zero(),
          "failure detection delay must be non-negative");
  require(manager_handoff_delay >= Duration::zero(),
          "manager handoff delay must be non-negative");
  require(view_propagation >= Duration::zero(),
          "view propagation lag must be non-negative");
  for (const auto& event : timeline.events()) {
    require(event.at >= Duration::zero(), "timeline event in the past");
    if (event.kind == ScenarioEventKind::kSetFaults) {
      event.faults.validate();
    } else if (event.kind != ScenarioEventKind::kJoin) {
      require(event.node != kAutoNodeId, "timeline event needs a target node");
      require(event.node != NodeId{0},
              "the source (node 0) is pinned infrastructure");
    }
  }
  faults.validate();
  adversary.validate();
  lifting.validate();
  membership.sampler.validate();
  membership.attack.validate();
  if (membership.rps_partner_sampling) {
    require(membership.view_size >= 2 && membership.view_size < nodes,
            "RPS view size must be in [2, nodes)");
    require(membership.shuffle_length >= 1 &&
                membership.shuffle_length <= membership.view_size,
            "RPS shuffle length must be in [1, view_size]");
    require(membership.rps_round_period > Duration::zero(),
            "RPS round period must be positive");
  } else {
    require(!membership.attack.enabled(),
            "membership attack requires rps_partner_sampling");
  }
}

ScenarioConfig ScenarioConfig::planetlab() {
  ScenarioConfig cfg;
  cfg.nodes = 300;
  cfg.seed = 1202;

  cfg.gossip.fanout = 7;
  cfg.gossip.period = milliseconds(500);
  cfg.gossip.request_timeout = milliseconds(500);
  // Uncapped requests: infect-and-die wave dynamics concentrate each
  // wave's chunks on the first-arriving proposer; capping starves chunks
  // whose propose window has passed (see DESIGN.md, Fig. 14 notes).
  cfg.gossip.max_request_per_proposal = 0;

  // ~56 chunks/s of ~1.5 kB: with f = 7 proposals per period this yields
  // |R| ≈ 4 requested chunks per proposal spread over ~f servers — the
  // §6 steady-state the compensation model assumes (and the regime the
  // authors' streaming system [6] operates in).
  cfg.stream.bitrate_bps = 674'000.0;
  cfg.stream.chunk_payload_bytes = 1'504;
  cfg.stream.duration = seconds(55.0);
  cfg.duration = seconds(60.0);

  cfg.lifting.fanout = 7;
  cfg.lifting.period = milliseconds(500);
  cfg.lifting.nominal_request_size = 4;
  cfg.lifting.p_dcc = 1.0;
  cfg.lifting.loss_estimate = 0.04;  // the PlanetLab average (§7.3)
  // Calibrated to this deployment's measured verification activity (the
  // engine reaches ~0.7x the §6 model's interaction density; the paper's
  // testbed operated at ~1x, where the literal Eq. 5 value applies).
  cfg.lifting.compensation_factor = 0.71;
  cfg.lifting.managers = 25;
  // The paper's η = -9.75 at model density; the equivalent operating point
  // at this deployment's activity (freerider blame excess scales with the
  // interaction density too) — see EXPERIMENTS.md, Fig. 14.
  cfg.lifting.eta = -3.0;

  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior.delta_fanout = 1.0 / 7.0;  // f̂ = 6 (§7.1)
  cfg.freerider_behavior.delta_propose = 0.1;
  cfg.freerider_behavior.delta_serve = 0.1;

  // PlanetLab-like links: ~4% loss on good nodes, generous uplinks; a tail
  // of weak nodes with heavy loss and a constrained uplink reproduces the
  // "honest nodes with very poor connections" of §7.3.
  cfg.link.loss = 0.02;  // per endpoint => ~4% per message pair
  cfg.link.latency_base = milliseconds(30);
  cfg.link.latency_jitter = milliseconds(20);
  cfg.link.upload_capacity_bps = 10e6;
  cfg.weak_fraction = 0.12;
  cfg.weak_link.loss = 0.08;
  cfg.weak_link.latency_base = milliseconds(80);
  cfg.weak_link.latency_jitter = milliseconds(60);
  cfg.weak_link.upload_capacity_bps = 2.5e6;
  return cfg;
}

ScenarioConfig ScenarioConfig::small(std::uint32_t nodes) {
  ScenarioConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 7;

  cfg.gossip.fanout = 5;
  cfg.gossip.period = milliseconds(500);

  cfg.stream.bitrate_bps = 200'000.0;
  cfg.stream.chunk_payload_bytes = 5'000;  // 5 chunks/s
  cfg.stream.duration = seconds(18.0);
  cfg.duration = seconds(20.0);

  cfg.lifting.fanout = 5;
  cfg.lifting.period = milliseconds(500);
  cfg.lifting.nominal_request_size = 3;
  cfg.lifting.managers = 8;
  cfg.lifting.loss_estimate = 0.0;
  cfg.lifting.min_score_replies = 2;

  cfg.link.loss = 0.0;
  cfg.link.latency_base = milliseconds(10);
  cfg.link.latency_jitter = milliseconds(5);
  cfg.link.upload_capacity_bps = 50e6;
  return cfg;
}

}  // namespace lifting::runtime

#include "runtime/sweep.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"

namespace lifting::runtime {

namespace {

SweepCase make_case(std::uint32_t index, Pcg32& rng) {
  SweepCase c;
  c.index = index;
  const std::uint32_t nodes = 40 + rng.below(60);
  c.config = ScenarioConfig::small(nodes);
  c.config.seed = 0x5EEDULL + index;
  c.config.duration = seconds(10.0 + rng.uniform() * 4.0);
  c.config.stream.duration = c.config.duration - seconds(2.0);

  static constexpr double kDeltas[] = {0.1, 0.3, 0.5, 0.7};
  c.delta = kDeltas[rng.below(4)];
  c.config.freerider_fraction = 0.1 + rng.uniform() * 0.15;
  c.config.freerider_behavior = gossip::BehaviorSpec::freerider(c.delta);

  c.config.link.loss = rng.uniform() * 0.04;
  c.config.weak_fraction = rng.uniform() * 0.2;
  c.config.weak_link = c.config.link;
  c.config.weak_link.loss = std::min(0.15, c.config.link.loss * 3 + 0.02);
  c.config.weak_link.upload_capacity_bps = 5e6;

  c.churn = (index % 2) == 1;
  if (c.churn) {
    // The churn-resilience knobs (PR 4) draw from a stream derived from
    // the case seed, NOT the shared generator rng — the historical case
    // fields above keep their exact values and the prefix property holds.
    auto resilience_rng = derive_rng(c.config.seed, 0x524553494CULL);  // "RESIL"
    ScenarioTimeline::PoissonChurn churn;
    churn.arrival_fraction_per_min = 0.3 + rng.uniform() * 0.4;
    churn.departure_fraction_per_min = 0.3 + rng.uniform() * 0.4;
    churn.crash_fraction = rng.uniform();
    churn.freerider_fraction = 0.1;
    churn.freerider_behavior = c.config.freerider_behavior;
    churn.start = seconds(2.0);
    churn.end = c.config.duration - seconds(2.0);
    churn.rejoin_fraction = resilience_rng.uniform() * 0.6;
    churn.rejoin_delay_mean = seconds(1.0 + resilience_rng.uniform() * 4.0);
    c.config.timeline =
        ScenarioTimeline::poisson_churn(churn, nodes, c.config.seed);
    // Divergent membership views on half the churn cases; handoff runs on
    // all of them (it is the default); a third of the rejoin cases carry
    // score history across incarnations.
    if (resilience_rng.bernoulli(0.5)) {
      c.config.view_propagation =
          seconds(0.2 + resilience_rng.uniform() * 0.8);
    }
    if (resilience_rng.bernoulli(0.33)) {
      c.config.rejoin_scores = ScenarioConfig::RejoinScores::kCarried;
    }
  }
  return c;
}

}  // namespace

std::vector<SweepCase> scenario_sweep_cases(std::uint32_t count) {
  auto rng = derive_rng(0xC0FFEE, 0x5357454550ULL);  // "SWEEP"
  std::vector<SweepCase> cases;
  cases.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cases.push_back(make_case(i, rng));
  }
  return cases;
}

std::vector<RunSpec> scenario_sweep_specs(std::uint32_t count) {
  auto cases = scenario_sweep_cases(count);
  std::vector<RunSpec> specs;
  specs.reserve(cases.size());
  for (auto& c : cases) {
    char label[64];
    std::snprintf(label, sizeof(label), "sweep/%02u n=%u delta=%.1f%s",
                  c.index, c.config.nodes, c.delta,
                  c.churn ? " churn" : "");
    const std::uint64_t seed = c.config.seed;
    specs.emplace_back(std::move(c.config), seed, label);
  }
  return specs;
}

}  // namespace lifting::runtime

#include "runtime/sweep.hpp"

#include <algorithm>
#include <cstdio>

#include "adversary/strategy.hpp"
#include "common/rng.hpp"

namespace lifting::runtime {

namespace {

SweepCase make_case(std::uint32_t index, Pcg32& rng) {
  SweepCase c;
  c.index = index;
  const std::uint32_t nodes = 40 + rng.below(60);
  c.config = ScenarioConfig::small(nodes);
  c.config.seed = 0x5EEDULL + index;
  c.config.duration = seconds(10.0 + rng.uniform() * 4.0);
  c.config.stream.duration = c.config.duration - seconds(2.0);

  static constexpr double kDeltas[] = {0.1, 0.3, 0.5, 0.7};
  c.delta = kDeltas[rng.below(4)];
  c.config.freerider_fraction = 0.1 + rng.uniform() * 0.15;
  c.config.freerider_behavior = gossip::BehaviorSpec::freerider(c.delta);

  c.config.link.loss = rng.uniform() * 0.04;
  c.config.weak_fraction = rng.uniform() * 0.2;
  c.config.weak_link = c.config.link;
  c.config.weak_link.loss = std::min(0.15, c.config.link.loss * 3 + 0.02);
  c.config.weak_link.upload_capacity_bps = 5e6;

  c.churn = (index % 2) == 1;
  if (c.churn) {
    // The churn-resilience knobs (PR 4) draw from a stream derived from
    // the case seed, NOT the shared generator rng — the historical case
    // fields above keep their exact values and the prefix property holds.
    auto resilience_rng = derive_rng(c.config.seed, 0x524553494CULL);  // "RESIL"
    ScenarioTimeline::PoissonChurn churn;
    churn.arrival_fraction_per_min = 0.3 + rng.uniform() * 0.4;
    churn.departure_fraction_per_min = 0.3 + rng.uniform() * 0.4;
    churn.crash_fraction = rng.uniform();
    churn.freerider_fraction = 0.1;
    churn.freerider_behavior = c.config.freerider_behavior;
    churn.start = seconds(2.0);
    churn.end = c.config.duration - seconds(2.0);
    churn.rejoin_fraction = resilience_rng.uniform() * 0.6;
    churn.rejoin_delay_mean = seconds(1.0 + resilience_rng.uniform() * 4.0);
    c.config.timeline =
        ScenarioTimeline::poisson_churn(churn, nodes, c.config.seed);
    // Divergent membership views on half the churn cases; handoff runs on
    // all of them (it is the default); a third of the rejoin cases carry
    // score history across incarnations.
    if (resilience_rng.bernoulli(0.5)) {
      c.config.view_propagation =
          seconds(0.2 + resilience_rng.uniform() * 0.8);
    }
    if (resilience_rng.bernoulli(0.33)) {
      c.config.rejoin_scores = ScenarioConfig::RejoinScores::kCarried;
    }
  }

  // Adaptive adversaries (this PR) draw from their own per-case stream —
  // rule 2 above: the shared generator and the resilience stream keep
  // their exact historical draw sequences, so every pre-adversary case
  // field is byte-identical and the prefix property holds. A third of the
  // cases arm a random catalog strategy over the case's freeriders.
  auto adversary_rng = derive_rng(c.config.seed, 0x414456ULL);  // "ADV"
  if (adversary_rng.bernoulli(0.33)) {
    const auto& entries = adversary::catalog();
    c.config.adversary =
        entries[adversary_rng.below(
                    static_cast<std::uint32_t>(entries.size()))]
            .config;
  }

  // Membership knobs (DESIGN.md §12) draw from their own per-case stream —
  // rule 2 again: every pre-membership case field keeps its historical
  // value. ~30% of cases run RPS-driven partner selection; those split
  // between the legacy and hardened sampler and some arm a membership
  // attack over the case's freeriders.
  auto membership_rng = derive_rng(c.config.seed, 0x4D454DULL);  // "MEM"
  if (membership_rng.bernoulli(0.3)) {
    auto& mem = c.config.membership;
    mem.rps_partner_sampling = true;
    mem.view_size = 8 + membership_rng.below(8);
    mem.shuffle_length = 3 + membership_rng.below(3);
    mem.bootstrap_rounds = 6 + membership_rng.below(10);
    if (membership_rng.bernoulli(0.5)) {
      mem.sampler = membership::SamplerPolicy::hardened_defaults();
    }
    if (membership_rng.bernoulli(0.4)) {
      const auto& entries = adversary::membership_catalog();
      mem.attack = entries[membership_rng.below(
                               static_cast<std::uint32_t>(entries.size()))]
                       .config;
    }
  }
  return c;
}

}  // namespace

std::vector<SweepCase> scenario_sweep_cases(std::uint32_t count) {
  auto rng = derive_rng(0xC0FFEE, 0x5357454550ULL);  // "SWEEP"
  std::vector<SweepCase> cases;
  cases.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cases.push_back(make_case(i, rng));
  }
  return cases;
}

ScenarioConfig adversary_frontier_config(bool handoff_on,
                                         std::uint64_t seed) {
  auto cfg = ScenarioConfig::small(120);
  cfg.seed = seed;
  cfg.duration = seconds(35.0);
  cfg.stream.duration = seconds(33.0);

  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);

  cfg.lifting.eta = -2.0;
  cfg.lifting.score_check_probability = 0.7;
  cfg.lifting.managers = 4;
  cfg.lifting.min_score_replies = 3;
  cfg.lifting.min_periods_before_detection = 8;
  cfg.expulsion_enabled = true;
  cfg.expulsion_propagation = seconds(0.5);

  cfg.view_propagation = seconds(1.0);
  cfg.manager_handoff = handoff_on;
  cfg.expulsion_handoff = handoff_on;
  cfg.manager_handoff_delay = milliseconds(500);
  cfg.failure_detection = seconds(1.0);

  ScenarioTimeline::PoissonChurn churn;
  churn.arrival_fraction_per_min = 0.3;
  churn.departure_fraction_per_min = 0.3;
  churn.crash_fraction = 0.5;
  churn.freerider_fraction = 0.10;
  churn.freerider_behavior = cfg.freerider_behavior;
  churn.rejoin_fraction = 0.5;
  churn.rejoin_delay_mean = seconds(4.0);
  churn.start = seconds(3.0);
  churn.end = seconds(31.0);
  cfg.timeline =
      ScenarioTimeline::poisson_churn(churn, cfg.nodes, cfg.seed);

  // Early honest-departure burst over honest nodes only — draining the
  // adversaries would change the question, not the answer. The roles come
  // from the Experiment's own derivation (a pure function of (seed, n,
  // fraction)), so burst targets cannot drift from the deployment's
  // actual role assignment.
  std::vector<std::uint8_t> freerider(cfg.nodes, 0);
  for (const auto id : Experiment::derive_freerider_ids(
           cfg.seed, cfg.nodes, cfg.freerider_fraction)) {
    freerider[id.value()] = 1;
  }
  auto burst_rng = derive_rng(seed, 0xB5257ULL);  // "BURST"
  std::vector<std::uint32_t> honest;
  for (std::uint32_t i = 1; i < cfg.nodes; ++i) {
    if (freerider[i] == 0) honest.push_back(i);
  }
  burst_rng.shuffle(honest);
  const std::size_t burst = honest.size() * 2 / 5;
  for (std::size_t j = 0; j < burst; ++j) {
    cfg.timeline.leave_at(seconds(1.0 + 1.5 * burst_rng.uniform()),
                          NodeId{honest[j]});
  }
  return cfg;
}

ScenarioConfig membership_frontier_config(std::uint64_t seed) {
  auto cfg = ScenarioConfig::small(120);
  cfg.seed = seed;
  cfg.duration = seconds(30.0);
  cfg.stream.duration = seconds(28.0);

  // A fifth of the population freerides aggressively AND colludes: an empty
  // coalition is filled with the actual freerider set by the Experiment,
  // and colluding freeriders never blame coalition members
  // (Agent::emit_blame). Under honest sampling the coalition is a small
  // minority of any node's partners, so blame starvation barely shows; a
  // membership attack that packs honest views with colluders turns the
  // same local rule into a detection collapse — the bench's A axis.
  cfg.freerider_fraction = 0.20;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.freerider_behavior.collusion = gossip::CollusionSpec{};

  // η sits just above the honest-sampling freerider score band (≈ −4 ± 0.6
  // for this population/duration; honest scores stay near 0), so baseline
  // detection is ≈ 1 with comfortable false-positive margin — and the
  // partial blame starvation a successful view attack buys (coalition
  // partners never blame, but honest proposers still catch the freerider
  // as a receiver) lifts scores above η and shows up as missed detections.
  cfg.lifting.eta = -3.0;
  cfg.lifting.score_check_probability = 0.7;
  cfg.lifting.managers = 4;
  cfg.lifting.min_score_replies = 3;
  cfg.lifting.min_periods_before_detection = 8;
  // Detection is read from scores (detection_at), not expulsions: leaving
  // expulsions off keeps every freerider observable for the whole run.
  cfg.expulsion_enabled = false;

  cfg.membership.rps_partner_sampling = true;
  cfg.membership.view_size = 10;
  cfg.membership.shuffle_length = 5;
  cfg.membership.bootstrap_rounds = 12;
  return cfg;
}

std::vector<RunSpec> scenario_sweep_specs(std::uint32_t count) {
  auto cases = scenario_sweep_cases(count);
  std::vector<RunSpec> specs;
  specs.reserve(cases.size());
  for (auto& c : cases) {
    const auto& mem = c.config.membership;
    char label[112];
    std::snprintf(label, sizeof(label),
                  "sweep/%02u n=%u delta=%.1f%s%s%s%s%s%s",
                  c.index, c.config.nodes, c.delta,
                  c.churn ? " churn" : "",
                  c.config.adversary.enabled() ? " adv=" : "",
                  c.config.adversary.enabled()
                      ? adversary::strategy_name(c.config.adversary.strategy)
                      : "",
                  mem.rps_partner_sampling
                      ? (mem.sampler.hardened() ? " rps=hardened" : " rps")
                      : "",
                  mem.attack.enabled() ? " mem=" : "",
                  mem.attack.enabled()
                      ? adversary::membership_strategy_name(
                            mem.attack.strategy)
                      : "");
    const std::uint64_t seed = c.config.seed;
    specs.emplace_back(std::move(c.config), seed, label);
  }
  return specs;
}

}  // namespace lifting::runtime

#ifndef LIFTING_RUNTIME_WIRE_SCENARIO_HPP
#define LIFTING_RUNTIME_WIRE_SCENARIO_HPP

#include <optional>
#include <string>

#include "runtime/scenario.hpp"

/// Text serialization of a ScenarioConfig for the wire deployment: the
/// lifting_loopback launcher encodes the scenario once and pipes it to
/// every lifting_node daemon, which reconstructs an identical config —
/// identical (nodes, seed, params) means every process independently
/// derives the same manager assignment, freerider roles and rng streams,
/// so no further coordination is needed beyond the port roster.
///
/// The format is one `key value` pair per line ('#' starts a comment);
/// durations travel as integer microseconds, doubles with round-trip
/// precision. Unknown keys are an error — the encoder and decoder ship in
/// the same binary, so a mismatch means corruption, not version skew.

namespace lifting::runtime {

/// True when `config` only uses features the wire deployment supports.
/// The v1 deployment is the static-membership streaming scenario: no
/// timeline events, no adaptive adversary controllers, no expulsion
/// propagation, no divergent membership views, and no collusion (all of
/// which live in Experiment machinery above the per-node stack). Link
/// profiles — including the weak-node class, which differs only by its
/// profile — are simulator-only and simply ignored on the wire: the
/// loopback path's loss/latency is the real thing. On false, `why` (if
/// non-null) names the first unsupported feature.
[[nodiscard]] bool wire_supported(const ScenarioConfig& config,
                                  std::string* why = nullptr);

/// Serializes the wire-relevant subset of `config` (population, gossip,
/// stream, LiFTinG parameters, freerider roles/behavior).
[[nodiscard]] std::string encode_wire_scenario(const ScenarioConfig& config);

/// Parses encode_wire_scenario output back into a config (fields start at
/// their defaults, so the round trip is exact on the serialized subset).
/// Returns std::nullopt on malformed input; `error` (if non-null) says why.
[[nodiscard]] std::optional<ScenarioConfig> decode_wire_scenario(
    const std::string& text, std::string* error = nullptr);

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_WIRE_SCENARIO_HPP

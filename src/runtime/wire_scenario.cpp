#include "runtime/wire_scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace lifting::runtime {

namespace {

void put_u64(std::string& out, std::string_view key, std::uint64_t v) {
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(v));
  out.push_back('\n');
}

void put_f64(std::string& out, std::string_view key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out.append(key);
  out.push_back(' ');
  out.append(buf);
  out.push_back('\n');
}

void put_duration(std::string& out, std::string_view key, Duration d) {
  put_u64(out, key, static_cast<std::uint64_t>(d.count()));
}

struct Parser {
  std::string_view key;
  std::string_view value;
  bool matched = false;
  bool failed = false;

  bool want(std::string_view name) {
    if (matched || failed || key != name) return false;
    matched = true;
    return true;
  }

  template <typename T>
  void u(std::string_view name, T& field) {
    if (!want(name)) return;
    char* end = nullptr;
    const std::string tmp(value);
    const auto v = std::strtoull(tmp.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      failed = true;
      return;
    }
    field = static_cast<T>(v);
  }

  void f(std::string_view name, double& field) {
    if (!want(name)) return;
    char* end = nullptr;
    const std::string tmp(value);
    const double v = std::strtod(tmp.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      failed = true;
      return;
    }
    field = v;
  }

  void b(std::string_view name, bool& field) {
    if (!want(name)) return;
    if (value == "0") {
      field = false;
    } else if (value == "1") {
      field = true;
    } else {
      failed = true;
    }
  }

  void dur(std::string_view name, Duration& field) {
    std::uint64_t us = 0;
    const bool was_matched = matched;
    u(name, us);
    if (matched && !was_matched && !failed) {
      field = Duration{static_cast<Duration::rep>(us)};
    }
  }
};

/// Indexed partition-window keys (`faults.partition.N.field`): the Parser
/// matches fixed names, so the prefix and index are peeled off by hand and
/// the remainder dispatches through the usual matchers. Windows are
/// resized on demand, so entry order relative to the `faults.partitions`
/// count key cannot matter.
void parse_partition_field(Parser& p, ScenarioConfig& cfg) {
  constexpr std::string_view kPrefix = "faults.partition.";
  if (p.matched || p.failed || p.key.substr(0, kPrefix.size()) != kPrefix) {
    return;
  }
  const std::string_view rest = p.key.substr(kPrefix.size());
  const auto dot = rest.find('.');
  if (dot == std::string_view::npos || dot == 0) return;  // unknown key
  std::size_t index = 0;
  for (const char c : rest.substr(0, dot)) {
    if (c < '0' || c > '9') return;  // unknown key
    index = index * 10 + static_cast<std::size_t>(c - '0');
    if (index > 4096) {  // scenario files are human-scale; cap the resize
      p.failed = true;
      return;
    }
  }
  auto& windows = cfg.faults.partitions;
  if (index >= windows.size()) windows.resize(index + 1);
  auto& w = windows[index];
  p.key = rest.substr(dot + 1);
  p.dur("start_us", w.start);
  p.dur("end_us", w.end);
  p.u("modulus", w.modulus);
  p.u("remainder", w.remainder);
  p.b("drop_island_to_main", w.drop_island_to_main);
  p.b("drop_main_to_island", w.drop_main_to_island);
}

/// One field table walked by both encode (via put_*) and decode (via
/// Parser) would be nicer, but the two sides differ enough (string
/// building vs error handling) that the duplication below is the simpler
/// honest version; decode_wire_scenario's round-trip test pins that the
/// two lists agree.
void parse_field(Parser& p, ScenarioConfig& cfg) {
  p.u("nodes", cfg.nodes);
  p.u("seed", cfg.seed);
  p.dur("duration_us", cfg.duration);

  p.u("gossip.fanout", cfg.gossip.fanout);
  p.dur("gossip.period_us", cfg.gossip.period);
  p.dur("gossip.request_timeout_us", cfg.gossip.request_timeout);
  p.u("gossip.proposal_retention_periods",
      cfg.gossip.proposal_retention_periods);
  p.u("gossip.max_request_per_proposal", cfg.gossip.max_request_per_proposal);

  p.f("stream.bitrate_bps", cfg.stream.bitrate_bps);
  p.u("stream.chunk_payload_bytes", cfg.stream.chunk_payload_bytes);
  p.dur("stream.duration_us", cfg.stream.duration);

  p.b("lifting_enabled", cfg.lifting_enabled);
  p.u("lifting.fanout", cfg.lifting.fanout);
  p.dur("lifting.period_us", cfg.lifting.period);
  p.u("lifting.nominal_request_size", cfg.lifting.nominal_request_size);
  p.f("lifting.p_dcc", cfg.lifting.p_dcc);
  p.f("lifting.loss_estimate", cfg.lifting.loss_estimate);
  p.f("lifting.compensation_factor", cfg.lifting.compensation_factor);
  p.dur("lifting.dv_timeout_us", cfg.lifting.dv_timeout);
  p.dur("lifting.ack_timeout_us", cfg.lifting.ack_timeout);
  p.dur("lifting.confirm_timeout_us", cfg.lifting.confirm_timeout);
  p.b("lifting.adaptive_pdcc", cfg.lifting.adaptive_pdcc);
  p.f("lifting.adaptive_min_pdcc", cfg.lifting.adaptive_min_pdcc);
  p.f("lifting.adaptive_decay", cfg.lifting.adaptive_decay);
  p.f("lifting.adaptive_noise_multiple", cfg.lifting.adaptive_noise_multiple);
  p.u("lifting.managers", cfg.lifting.managers);
  p.f("lifting.eta", cfg.lifting.eta);
  if (p.want("lifting.score_vote")) {
    if (p.value == "min") {
      cfg.lifting.score_vote = LiftingParams::ScoreVote::kMin;
    } else if (p.value == "mean") {
      cfg.lifting.score_vote = LiftingParams::ScoreVote::kMean;
    } else {
      p.failed = true;
    }
  }
  p.f("lifting.expel_slack", cfg.lifting.expel_slack);
  p.u("lifting.min_score_replies", cfg.lifting.min_score_replies);
  p.dur("lifting.score_reply_timeout_us", cfg.lifting.score_reply_timeout);
  p.dur("lifting.expel_vote_timeout_us", cfg.lifting.expel_vote_timeout);
  p.f("lifting.score_check_probability",
      cfg.lifting.score_check_probability);
  p.u("lifting.min_periods_before_detection",
      cfg.lifting.min_periods_before_detection);
  p.f("lifting.gamma", cfg.lifting.gamma);
  p.dur("lifting.history_window_us", cfg.lifting.history_window);
  p.f("lifting.audit_probability", cfg.lifting.audit_probability);
  p.u("lifting.audit_warmup_periods", cfg.lifting.audit_warmup_periods);
  p.dur("lifting.audit_poll_timeout_us", cfg.lifting.audit_poll_timeout);
  p.u("lifting.min_fanin_samples", cfg.lifting.min_fanin_samples);
  p.f("lifting.rate_tolerance", cfg.lifting.rate_tolerance);
  p.dur("lifting.history_retention_us", cfg.lifting.history_retention);
  if (p.want("lifting.audit_channel")) {
    if (p.value == "modeled_tcp") {
      cfg.lifting.audit_channel = LiftingParams::AuditChannel::kModeledTcp;
    } else if (p.value == "reliable_udp") {
      cfg.lifting.audit_channel = LiftingParams::AuditChannel::kReliableUdp;
    } else {
      p.failed = true;
    }
  }
  p.u("lifting.audit_max_retries", cfg.lifting.audit_max_retries);
  p.dur("lifting.audit_retry_base_us", cfg.lifting.audit_retry_base);
  p.f("lifting.audit_retry_jitter", cfg.lifting.audit_retry_jitter);
  p.u("lifting.audit_dedup_cap", cfg.lifting.audit_dedup_cap);
  p.dur("lifting.blame_dedup_window_us", cfg.lifting.blame_dedup_window);

  p.f("faults.p_good_to_bad", cfg.faults.p_good_to_bad);
  p.f("faults.p_bad_to_good", cfg.faults.p_bad_to_good);
  p.f("faults.loss_good", cfg.faults.loss_good);
  p.f("faults.loss_bad", cfg.faults.loss_bad);
  p.f("faults.delay_spike_probability", cfg.faults.delay_spike_probability);
  p.dur("faults.delay_spike_min_us", cfg.faults.delay_spike_min);
  p.dur("faults.delay_spike_max_us", cfg.faults.delay_spike_max);
  p.f("faults.duplicate_probability", cfg.faults.duplicate_probability);
  p.f("faults.reorder_probability", cfg.faults.reorder_probability);
  p.dur("faults.reorder_delay_us", cfg.faults.reorder_delay);
  if (p.want("faults.partitions")) {
    char* end = nullptr;
    const std::string tmp(p.value);
    const auto v = std::strtoull(tmp.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v > 4096) {
      p.failed = true;
    } else {
      cfg.faults.partitions.resize(static_cast<std::size_t>(v));
    }
  }
  parse_partition_field(p, cfg);

  p.f("freerider_fraction", cfg.freerider_fraction);
  p.f("behavior.delta_fanout", cfg.freerider_behavior.delta_fanout);
  p.f("behavior.delta_propose", cfg.freerider_behavior.delta_propose);
  p.f("behavior.delta_serve", cfg.freerider_behavior.delta_serve);
  p.f("behavior.period_stretch", cfg.freerider_behavior.period_stretch);
  p.b("behavior.lie_in_history", cfg.freerider_behavior.lie_in_history);
}

}  // namespace

bool wire_supported(const ScenarioConfig& config, std::string* why) {
  const auto unsupported = [&](const char* what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (config.nodes < 2) return unsupported("need at least 2 nodes");
  if (!config.timeline.empty()) {
    return unsupported("timeline events (churn) are simulator-only");
  }
  if (config.adversary.enabled()) {
    return unsupported("adaptive adversary controllers are simulator-only");
  }
  if (config.expulsion_enabled) {
    return unsupported("expulsion propagation is simulator-only");
  }
  if (config.view_propagation != Duration::zero()) {
    return unsupported("divergent membership views are simulator-only");
  }
  // weak_fraction is NOT rejected: weak nodes differ only by link profile,
  // and link profiles are simulator-only (the wire has its own physics) —
  // on the wire a "weak" node is just a node.
  if (config.freerider_behavior.collusion.has_value()) {
    return unsupported("collusion is simulator-only");
  }
  return true;
}

std::string encode_wire_scenario(const ScenarioConfig& config) {
  std::string out;
  out.reserve(2048);
  out.append("# lifting wire scenario\n");
  put_u64(out, "nodes", config.nodes);
  put_u64(out, "seed", config.seed);
  put_duration(out, "duration_us", config.duration);

  put_u64(out, "gossip.fanout", config.gossip.fanout);
  put_duration(out, "gossip.period_us", config.gossip.period);
  put_duration(out, "gossip.request_timeout_us", config.gossip.request_timeout);
  put_u64(out, "gossip.proposal_retention_periods",
          config.gossip.proposal_retention_periods);
  put_u64(out, "gossip.max_request_per_proposal",
          config.gossip.max_request_per_proposal);

  put_f64(out, "stream.bitrate_bps", config.stream.bitrate_bps);
  put_u64(out, "stream.chunk_payload_bytes", config.stream.chunk_payload_bytes);
  put_duration(out, "stream.duration_us", config.stream.duration);

  put_u64(out, "lifting_enabled", config.lifting_enabled ? 1 : 0);
  const auto& lp = config.lifting;
  put_u64(out, "lifting.fanout", lp.fanout);
  put_duration(out, "lifting.period_us", lp.period);
  put_u64(out, "lifting.nominal_request_size", lp.nominal_request_size);
  put_f64(out, "lifting.p_dcc", lp.p_dcc);
  put_f64(out, "lifting.loss_estimate", lp.loss_estimate);
  put_f64(out, "lifting.compensation_factor", lp.compensation_factor);
  put_duration(out, "lifting.dv_timeout_us", lp.dv_timeout);
  put_duration(out, "lifting.ack_timeout_us", lp.ack_timeout);
  put_duration(out, "lifting.confirm_timeout_us", lp.confirm_timeout);
  put_u64(out, "lifting.adaptive_pdcc", lp.adaptive_pdcc ? 1 : 0);
  put_f64(out, "lifting.adaptive_min_pdcc", lp.adaptive_min_pdcc);
  put_f64(out, "lifting.adaptive_decay", lp.adaptive_decay);
  put_f64(out, "lifting.adaptive_noise_multiple", lp.adaptive_noise_multiple);
  put_u64(out, "lifting.managers", lp.managers);
  put_f64(out, "lifting.eta", lp.eta);
  out.append("lifting.score_vote ");
  out.append(lp.score_vote == LiftingParams::ScoreVote::kMin ? "min" : "mean");
  out.push_back('\n');
  put_f64(out, "lifting.expel_slack", lp.expel_slack);
  put_u64(out, "lifting.min_score_replies", lp.min_score_replies);
  put_duration(out, "lifting.score_reply_timeout_us", lp.score_reply_timeout);
  put_duration(out, "lifting.expel_vote_timeout_us", lp.expel_vote_timeout);
  put_f64(out, "lifting.score_check_probability", lp.score_check_probability);
  put_u64(out, "lifting.min_periods_before_detection",
          lp.min_periods_before_detection);
  put_f64(out, "lifting.gamma", lp.gamma);
  put_duration(out, "lifting.history_window_us", lp.history_window);
  put_f64(out, "lifting.audit_probability", lp.audit_probability);
  put_u64(out, "lifting.audit_warmup_periods", lp.audit_warmup_periods);
  put_duration(out, "lifting.audit_poll_timeout_us", lp.audit_poll_timeout);
  put_u64(out, "lifting.min_fanin_samples", lp.min_fanin_samples);
  put_f64(out, "lifting.rate_tolerance", lp.rate_tolerance);
  put_duration(out, "lifting.history_retention_us", lp.history_retention);
  out.append("lifting.audit_channel ");
  out.append(lp.audit_channel == LiftingParams::AuditChannel::kReliableUdp
                 ? "reliable_udp"
                 : "modeled_tcp");
  out.push_back('\n');
  put_u64(out, "lifting.audit_max_retries", lp.audit_max_retries);
  put_duration(out, "lifting.audit_retry_base_us", lp.audit_retry_base);
  put_f64(out, "lifting.audit_retry_jitter", lp.audit_retry_jitter);
  put_u64(out, "lifting.audit_dedup_cap", lp.audit_dedup_cap);
  put_duration(out, "lifting.blame_dedup_window_us", lp.blame_dedup_window);

  const auto& fp = config.faults;
  put_f64(out, "faults.p_good_to_bad", fp.p_good_to_bad);
  put_f64(out, "faults.p_bad_to_good", fp.p_bad_to_good);
  put_f64(out, "faults.loss_good", fp.loss_good);
  put_f64(out, "faults.loss_bad", fp.loss_bad);
  put_f64(out, "faults.delay_spike_probability", fp.delay_spike_probability);
  put_duration(out, "faults.delay_spike_min_us", fp.delay_spike_min);
  put_duration(out, "faults.delay_spike_max_us", fp.delay_spike_max);
  put_f64(out, "faults.duplicate_probability", fp.duplicate_probability);
  put_f64(out, "faults.reorder_probability", fp.reorder_probability);
  put_duration(out, "faults.reorder_delay_us", fp.reorder_delay);
  put_u64(out, "faults.partitions", fp.partitions.size());
  for (std::size_t i = 0; i < fp.partitions.size(); ++i) {
    const auto& w = fp.partitions[i];
    const std::string prefix = "faults.partition." + std::to_string(i) + ".";
    put_duration(out, prefix + "start_us", w.start);
    put_duration(out, prefix + "end_us", w.end);
    put_u64(out, prefix + "modulus", w.modulus);
    put_u64(out, prefix + "remainder", w.remainder);
    put_u64(out, prefix + "drop_island_to_main", w.drop_island_to_main ? 1 : 0);
    put_u64(out, prefix + "drop_main_to_island", w.drop_main_to_island ? 1 : 0);
  }

  put_f64(out, "freerider_fraction", config.freerider_fraction);
  const auto& fb = config.freerider_behavior;
  put_f64(out, "behavior.delta_fanout", fb.delta_fanout);
  put_f64(out, "behavior.delta_propose", fb.delta_propose);
  put_f64(out, "behavior.delta_serve", fb.delta_serve);
  put_f64(out, "behavior.period_stretch", fb.period_stretch);
  put_u64(out, "behavior.lie_in_history", fb.lie_in_history ? 1 : 0);
  return out;
}

std::optional<ScenarioConfig> decode_wire_scenario(const std::string& text,
                                                   std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ScenarioConfig cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return fail("malformed line: " + line);
    }
    Parser p;
    p.key = std::string_view(line).substr(0, space);
    p.value = std::string_view(line).substr(space + 1);
    parse_field(p, cfg);
    if (p.failed) return fail("bad value: " + line);
    if (!p.matched) return fail("unknown key: " + line);
  }
  return cfg;
}

}  // namespace lifting::runtime

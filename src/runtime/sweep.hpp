#ifndef LIFTING_RUNTIME_SWEEP_HPP
#define LIFTING_RUNTIME_SWEEP_HPP

#include <cstdint>
#include <vector>

#include "runtime/runner.hpp"
#include "runtime/scenario.hpp"

/// The randomized scenario-sweep workload: ~count small configurations
/// (population, δ-vector, loss, weak fraction, churn on/off) derived from
/// one fixed seed. Shared by tests/test_scenario_sweep.cpp (structural
/// invariants per case) and bench/bench_sweep_scaling.cpp (throughput and
/// parallel-vs-serial identity over the same case set), so "the sweep
/// workload" means the same thing in both.

namespace lifting::runtime {

struct SweepCase {
  std::uint32_t index = 0;
  double delta = 0.0;
  bool churn = false;
  ScenarioConfig config;
};

/// Generates the deterministic sweep cases. The generator rng is consumed
/// strictly sequentially across cases, so scenario_sweep_cases(20) yields
/// the exact historical 20-config suite as a prefix of any longer sweep.
[[nodiscard]] std::vector<SweepCase> scenario_sweep_cases(
    std::uint32_t count = 20);

/// The same workload as labeled RunSpecs for the parallel runner (the
/// spec's seed is the case config's seed).
[[nodiscard]] std::vector<RunSpec> scenario_sweep_specs(
    std::uint32_t count = 20);

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_SWEEP_HPP

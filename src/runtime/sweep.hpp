#ifndef LIFTING_RUNTIME_SWEEP_HPP
#define LIFTING_RUNTIME_SWEEP_HPP

#include <cstdint>
#include <vector>

#include "runtime/runner.hpp"
#include "runtime/scenario.hpp"

/// The randomized scenario-sweep workload: ~count small configurations
/// (population, δ-vector, loss, weak fraction, churn on/off — churn cases
/// additionally draw rejoin rates, divergent-view lags and the rejoin
/// score policy; ~30% of cases additionally draw RPS membership knobs —
/// view size, shuffle length, sampler variant, membership attack) derived
/// from one fixed seed. Shared by
/// tests/test_scenario_sweep.cpp (structural invariants per case) and
/// bench/bench_sweep_scaling.cpp (throughput and parallel-vs-serial
/// identity over the same case set), so "the sweep workload" means the
/// same thing in both.

namespace lifting::runtime {

struct SweepCase {
  std::uint32_t index = 0;   ///< position in the sweep (labels, sharding)
  double delta = 0.0;        ///< the case's uniform freeriding degree Δ
  bool churn = false;        ///< has a Poisson churn timeline (odd indices)
  ScenarioConfig config;     ///< self-contained: seed + timeline embedded
};

/// Generates the deterministic sweep cases. Two stability rules make sweep
/// numbers comparable across PRs:
///   1. the shared generator rng is consumed strictly sequentially across
///      cases, so scenario_sweep_cases(20) yields the exact historical
///      20-config suite as a prefix of any longer sweep;
///   2. knobs added later (e.g. the churn-resilience fields) draw from
///      per-case rngs derived from the case seed, never from the shared
///      generator — extending a case cannot shift any other case's draws.
/// Each case's config.seed is 0x5EED + index; its churn timeline is
/// regenerated from that seed, so a RunSpec carrying the case is fully
/// reproducible in isolation.
[[nodiscard]] std::vector<SweepCase> scenario_sweep_cases(
    std::uint32_t count = 20);

/// The same workload as labeled RunSpecs for the parallel runner. The
/// spec's seed is the case config's seed (no re-derivation — the case
/// already owns a seed and a timeline generated from it), and the label
/// encodes (index, n, Δ, churn) for reports.
[[nodiscard]] std::vector<RunSpec> scenario_sweep_specs(
    std::uint32_t count = 20);

/// The adversary-frontier accountability scenario (DESIGN.md §8), shared
/// by bench_adversary_frontier and tests/test_adversary.cpp so the
/// whitewash A/B means the same thing in both: 120 nodes / 35 s with
/// aggressive freeriders (Δ = 0.5), dense score policing and expulsions
/// over a small quorum (M = 4, actionable reads need 3 replies), divergent
/// views, mild Poisson churn, and an early burst in which 40% of the
/// honest base population leaves — the quorum damage manager handoff +
/// expulsion handoff repair (`handoff_on`) and the baseline mode carries
/// for the rest of the run. Pure function of (handoff_on, seed); arm
/// `config.adversary` yourself.
[[nodiscard]] ScenarioConfig adversary_frontier_config(bool handoff_on,
                                                       std::uint64_t seed);

/// The membership-compromise accountability scenario (DESIGN.md §12),
/// shared by bench_adversary_frontier's membership axis and
/// tests/test_rps_properties.cpp: 120 nodes / 30 s with RPS-driven partner
/// selection, 20% colluding aggressive freeriders (empty CollusionSpec —
/// the coalition fills with the actual freerider set, so coalition members
/// never blame each other), dense score policing over a small quorum, and
/// expulsions off so detection stays a pure score read. Pure function of
/// the seed; arm `config.membership.attack` / swap
/// `config.membership.sampler` (and scale freerider_fraction) per cell.
[[nodiscard]] ScenarioConfig membership_frontier_config(std::uint64_t seed);

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_SWEEP_HPP

#ifndef LIFTING_RUNTIME_NODE_HOST_HPP
#define LIFTING_RUNTIME_NODE_HOST_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "faults/injector.hpp"
#include "gossip/engine.hpp"
#include "gossip/mailer.hpp"
#include "gossip/stream_source.hpp"
#include "lifting/agent.hpp"
#include "lifting/managers.hpp"
#include "membership/directory.hpp"
#include "net/udp_transport.hpp"
#include "obs/trace.hpp"
#include "runtime/scenario.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

/// One node's full protocol stack over real UDP datagrams — the wire
/// counterpart of Experiment::make_node. A NodeHost is what a lifting_node
/// daemon process runs (and what in-process wire tests run on threads):
/// Directory + ManagerAssignment + Mailer-over-UdpTransport + Engine +
/// Agent (+ StreamSource on the source node), built from the same
/// ScenarioConfig the simulator consumes.
///
/// Determinism across processes: the manager assignment is a pure function
/// of (n, M, seed), freerider roles come from the same role rng stream
/// Experiment draws (Experiment::derive_freerider_ids), and each node's
/// agent/engine rng streams use the same per-node stream constants — so N
/// independent processes given identical configs agree on every piece of
/// shared state without exchanging anything but the port roster.
///
/// Time: protocol timers still run on the sim::Simulator event queue, but
/// run() slaves the virtual clock to std::chrono::steady_clock — due
/// timers fire at their scheduled virtual timestamps while the loop blocks
/// in UdpTransport::poll_wait between deadlines. The same Engine/Agent
/// code drives both backends; only the outermost loop differs.

namespace lifting::obs {
class Registry;
}  // namespace lifting::obs

namespace lifting::runtime {

class NodeHost {
 public:
  /// Builds the stack for node `self` of `config` and binds its UDP
  /// endpoint (an ephemeral loopback port; see port()). Requires
  /// wire_supported(config).
  NodeHost(const ScenarioConfig& config, NodeId self);

  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  /// The UDP port this node's endpoint bound.
  [[nodiscard]] std::uint16_t port() const;

  /// Installs the deployment's port roster: `ports[i]` is node i's port
  /// (the own entry is ignored). Must be called before run().
  void set_roster(const std::vector<std::uint16_t>& ports);

  /// Runs the node for the scenario duration against the wall clock, then
  /// winds down and drains in-flight traffic briefly. Blocking; a process
  /// calls it once (in-process tests give each host its own thread).
  void run();

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] bool is_source() const noexcept { return source_ != nullptr; }
  [[nodiscard]] bool is_freerider() const noexcept { return freerider_; }
  [[nodiscard]] const gossip::EngineStats& engine_stats() const noexcept {
    return engine_->stats();
  }
  /// Chunks emitted by the stream source (0 on non-source nodes).
  [[nodiscard]] std::uint64_t chunks_emitted() const noexcept {
    return source_ ? source_->emitted().size() : 0;
  }
  [[nodiscard]] const net::UdpTransport& transport() const noexcept {
    return udp_;
  }
  /// Local fault-injection outcomes (this node's sends only). The same
  /// FaultPlan drives every process; each derives its own per-sender rng
  /// stream, so no coordination is needed.
  [[nodiscard]] const faults::FaultInjector::Stats& fault_stats() const {
    return injector_.stats();
  }
  /// Audit-channel delivery health (reliable-UDP mode; zeros otherwise /
  /// when LiFTinG is off).
  [[nodiscard]] lifting::Agent::AuditChannelStats audit_channel_totals()
      const {
    return agent_ ? agent_->audit_channel_totals()
                  : lifting::Agent::AuditChannelStats{};
  }

  /// Arms the flight recorder over this process's stack — engine, agent
  /// and fault injector (DESIGN.md §13). Record timestamps are virtual
  /// time, which run() slaves to the wall clock, so the per-process dumps
  /// of one deployment merge on a shared timeline (tools/lifting_trace).
  /// Call before run().
  void enable_trace(std::size_t capacity);
  /// The armed ring, or null when tracing is disarmed.
  [[nodiscard]] const obs::TraceRing* trace_ring() const noexcept {
    return recorder_ == nullptr ? nullptr : &recorder_->ring();
  }

  /// Installs a periodic reporting hook that run() schedules on the event
  /// queue (first firing one `interval` after start, last at or before
  /// wind-down). The wire deployment pins no golden event order, so the
  /// extra timer is safe; lifting_node uses it to stream STAT lines
  /// mid-run. Call before run().
  void set_stat_hook(Duration interval, std::function<void()> hook);

  /// Folds every scattered counter family — engine, transport, faults,
  /// audit channel, trace ring — into `out` as absolute totals
  /// (idempotent re-fold; the wire counterpart of
  /// Experiment::collect_metrics).
  void collect_metrics(obs::Registry& out) const;

 private:
  void stat_tick(TimePoint end);
  ScenarioConfig config_;
  NodeId self_;
  bool freerider_ = false;

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  net::UdpTransport udp_;
  /// Fault injector between Mailer and sockets — the SAME seam the
  /// simulator injects at, so one FaultPlan means one fault model on both
  /// backends. Held sends ride the sim event queue, which run() slaves to
  /// the wall clock, so delay spikes happen in real time.
  faults::FaultInjector injector_;
  gossip::Mailer mailer_;
  membership::Directory directory_;
  std::shared_ptr<lifting::ManagerAssignment> assignment_;
  std::unique_ptr<lifting::Agent> agent_;
  std::unique_ptr<gossip::Engine> engine_;
  std::unique_ptr<gossip::StreamSource> source_;
  std::unique_ptr<obs::Recorder> recorder_;
  Duration stat_interval_ = Duration::zero();
  std::function<void()> stat_hook_;
  bool roster_set_ = false;
};

}  // namespace lifting::runtime

#endif  // LIFTING_RUNTIME_NODE_HOST_HPP

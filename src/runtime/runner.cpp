#include "runtime/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"

namespace lifting::runtime {

RunDigest RunDigest::of(Experiment& ex) {
  RunDigest d;
  d.events = ex.simulator().events_processed();
  const auto& net = ex.network_stats();
  d.datagrams_sent = net.datagrams_sent;
  d.datagrams_lost = net.datagrams_lost;
  d.datagrams_dropped = net.datagrams_dropped;
  d.datagrams_delivered = net.datagrams_delivered;
  d.bytes_sent = net.bytes_sent;
  d.bytes_delivered = net.bytes_delivered;
  d.blame_emissions = ex.ledger().emissions();
  d.joins = ex.joins().size();
  d.departures = ex.departures().size();
  const auto& faults = ex.fault_stats();
  d.faults_dropped = faults.dropped();
  d.faults_duplicated = faults.duplicated;
  d.faults_delayed = faults.delayed + faults.reordered;
  if (ex.has_agents()) {
    const auto audit = ex.audit_channel_totals();
    d.audit_retries = audit.retries;
    d.audit_give_ups = audit.give_ups;
    d.audit_dups_suppressed = audit.dups_suppressed;
  }
  if (ex.has_agents()) {
    const auto snap = ex.snapshot_scores();
    d.honest_scored = snap.honest.size();
    d.freeriders_scored = snap.freeriders.size();
    for (const double s : snap.honest) d.honest_score_sum += s;
    for (const double s : snap.freeriders) d.freerider_score_sum += s;
  }
  return d;
}

void RunDigest::accumulate(const RunDigest& other) noexcept {
  events += other.events;
  datagrams_sent += other.datagrams_sent;
  datagrams_lost += other.datagrams_lost;
  datagrams_dropped += other.datagrams_dropped;
  datagrams_delivered += other.datagrams_delivered;
  bytes_sent += other.bytes_sent;
  bytes_delivered += other.bytes_delivered;
  blame_emissions += other.blame_emissions;
  joins += other.joins;
  departures += other.departures;
  faults_dropped += other.faults_dropped;
  faults_duplicated += other.faults_duplicated;
  faults_delayed += other.faults_delayed;
  audit_retries += other.audit_retries;
  audit_give_ups += other.audit_give_ups;
  audit_dups_suppressed += other.audit_dups_suppressed;
  honest_scored += other.honest_scored;
  freeriders_scored += other.freeriders_scored;
  honest_score_sum += other.honest_score_sum;
  freerider_score_sum += other.freerider_score_sum;
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ParallelRunner::drain_batch(unsigned worker_index) {
  for (;;) {
    const std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_count_) return;
    try {
      (*job_)(i, worker_index);
    } catch (...) {
      // Remember the lowest-index failure; the batch keeps draining so
      // result slots of unrelated tasks still fill.
      std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_ == nullptr || i < first_error_task_) {
        first_error_ = std::current_exception();
        first_error_task_ = i;
      }
    }
  }
}

void ParallelRunner::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_start_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    lock.unlock();
    drain_batch(worker_index);
    lock.lock();
    if (--active_workers_ == 0) cv_done_.notify_all();
  }
}

void ParallelRunner::for_each(
    std::size_t count, const std::function<void(std::size_t, unsigned)>& fn) {
  if (count == 0) return;
  LIFTING_ASSERT(job_ == nullptr,
                 "ParallelRunner::for_each is not reentrant — tasks must "
                 "not call back into the runner that executes them");
  first_error_ = nullptr;
  if (threads_ == 1) {
    // Serial lane: run inline on the caller, no synchronization. This is
    // the reference execution the parallel runs must match bit for bit.
    job_ = &fn;
    job_count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    drain_batch(0);
    job_ = nullptr;
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      job_count_ = count;
      next_task_.store(0, std::memory_order_relaxed);
      active_workers_ = threads_ - 1;
      ++generation_;
    }
    cv_start_.notify_all();
    drain_batch(0);  // the caller is worker 0
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = nullptr;
  }
  if (first_error_ != nullptr) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::vector<RunDigest> ParallelRunner::run_digests(
    const std::vector<RunSpec>& specs) {
  return run_specs<RunDigest>(specs,
                              [](const RunSpec& /*spec*/, Experiment& ex) {
                                ex.run();
                                return RunDigest::of(ex);
                              });
}

unsigned ParallelRunner::resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LIFTING_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint32_t parse_flag(int argc, const char* const* argv, const char* name,
                         std::uint32_t lo, std::uint32_t hi,
                         std::uint32_t fallback) {
  const std::size_t name_len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, name) == 0) {
      // A trailing flag with no value must not silently become the
      // default either.
      value = i + 1 < argc ? argv[i + 1] : "";
    } else if (std::strncmp(arg, name, name_len) == 0 &&
               arg[name_len] == '=') {
      value = arg + name_len + 1;
    }
    if (value != nullptr) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(value, &end, 10);
      if (end != value && *end == '\0' && v >= lo && v <= hi) {
        return static_cast<std::uint32_t>(v);
      }
      std::fprintf(stderr, "%s: '%s' is not an integer in [%u, %u]\n", name,
                   value, lo, hi);
      std::exit(2);
    }
  }
  return fallback;
}

unsigned ParallelRunner::threads_from_args(int argc, const char* const* argv) {
  // Fallback 0 = "no cap given": resolve via env/hardware policy.
  const std::uint32_t v = parse_flag(argc, argv, "--threads", 1, 4096, 0);
  return v == 0 ? resolve_threads(0) : static_cast<unsigned>(v);
}

}  // namespace lifting::runtime

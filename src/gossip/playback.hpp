#ifndef LIFTING_GOSSIP_PLAYBACK_HPP
#define LIFTING_GOSSIP_PLAYBACK_HPP

#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/chunk.hpp"

/// Stream playback model, for Figure 1: "fraction of nodes viewing a clear
/// stream as a function of the stream lag". A node views a clear stream at
/// lag L if at least `clear_threshold` of the eligible chunks reached it
/// within L seconds of emission. Eligible chunks exclude a warmup window
/// (dissemination start-up) and the trailing L seconds (not yet judgeable).

namespace lifting::gossip {

struct PlaybackConfig {
  /// Fraction of chunks that must arrive in time for "clear" viewing.
  double clear_threshold = 0.99;
  /// Chunks emitted before this instant are excluded (system warmup).
  Duration warmup = seconds(5.0);
  /// When positive, every lag is judged over one common chunk set — the
  /// chunks whose deadline at *this* lag (seconds) fits the measured
  /// window — instead of a per-lag set. Set it to the largest queried lag
  /// to make the curve comparable, and monotone, across lags (the
  /// invariant asserted by the scenario sweep). 0 keeps the classic
  /// per-lag eligibility of the figure benches.
  double common_window_lag = 0.0;
};

struct HealthPoint {
  double lag_seconds = 0.0;
  double fraction_clear = 0.0;
};

/// Computes the health curve over the given nodes' delivery logs.
/// `measurement_end` is the simulation time the deliveries were captured at.
[[nodiscard]] std::vector<HealthPoint> health_curve(
    const std::vector<ChunkMeta>& emitted,
    const std::vector<const DeliveryLog*>& node_deliveries,
    TimePoint measurement_end, const std::vector<double>& lags_seconds,
    const PlaybackConfig& config = {});

/// Average delivery lag (seconds) over delivered chunks — a scalar summary
/// used by tests and examples.
[[nodiscard]] double mean_delivery_lag(const std::vector<ChunkMeta>& emitted,
                                       const DeliveryLog& deliveries);

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_PLAYBACK_HPP

#ifndef LIFTING_GOSSIP_BEHAVIOR_HPP
#define LIFTING_GOSSIP_BEHAVIOR_HPP

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

/// Behavior specification — every §4 attack as data.
///
/// The degree of freeriding is the paper's Δ = (δ1, δ2, δ3) (§6.3.1). We use
/// the *deviation* convention throughout (see DESIGN.md): a freerider
/// contacts (1-δ1)·f partners, proposes the chunks received from a fraction
/// (1-δ2) of its servers, and serves (1-δ3)·|R| chunks per request. The
/// bandwidth gain is 1-(1-δ1)(1-δ2)(1-δ3), matching the paper's Fig. 12 and
/// the PlanetLab setup (f̂ = 6 of f = 7 ⇔ δ1 = 1/7).

namespace lifting::gossip {

/// Collusion parameters (attacks marked ⋆ in the paper).
struct CollusionSpec {
  /// The coalition, including this node.
  std::vector<NodeId> coalition;
  /// Probability of picking a coalition member per partner slot
  /// (§6.3.2's p_m). 0 keeps selection uniform.
  double bias_pm = 0.0;
  /// Man-in-the-middle (Fig. 8b): acks to real servers list coalition
  /// members; serves carry a coalition member as ack-to so downstream
  /// verification is rerouted to the coalition.
  bool mitm = false;
  /// Coalition members answer "yes" to confirm requests about each other
  /// and acknowledge each other's history entries during audits.
  bool cover_up = true;

  [[nodiscard]] bool contains(NodeId id) const {
    return std::find(coalition.begin(), coalition.end(), id) !=
           coalition.end();
  }
};

struct BehaviorSpec {
  /// δ1 — fanout decrease: contact only round((1-δ1)·f) partners.
  double delta_fanout = 0.0;
  /// δ2 — partial propose: drop the chunks received from a fraction δ2 of
  /// the servers of the last period (the footnote-optimal strategy: removing
  /// whole servers minimizes the number of blaming verifiers).
  double delta_propose = 0.0;
  /// δ3 — partial serve: serve only round((1-δ3)·|R|) of each request.
  double delta_serve = 0.0;
  /// Gossip-period increase (§4.1 attack (iv)): the node gossips every
  /// (1 + period_stretch)·Tg instead of every Tg.
  double period_stretch = 0.0;
  /// When audited, replace coalition partners in the reported history with
  /// random honest nodes (defeats the entropy check but fails the
  /// a-posteriori cross-check — §5.3).
  bool lie_in_history = false;
  /// Freeriders lie in their acks: they always claim the served chunks were
  /// proposed (dropping them openly would be self-incriminating); witnesses
  /// then contradict. Honest nodes have nothing to lie about.
  std::optional<CollusionSpec> collusion;

  [[nodiscard]] bool is_honest() const {
    return delta_fanout == 0.0 && delta_propose == 0.0 && delta_serve == 0.0 &&
           period_stretch == 0.0 && !lie_in_history && !collusion.has_value();
  }

  [[nodiscard]] bool colludes_with(NodeId id) const {
    return collusion.has_value() && collusion->contains(id);
  }

  /// The paper's upload-bandwidth gain 1-(1-δ1)(1-δ2)(1-δ3).
  [[nodiscard]] double gain() const {
    return 1.0 -
           (1.0 - delta_fanout) * (1.0 - delta_propose) * (1.0 - delta_serve);
  }

  /// Uniform freerider of degree δ on all three axes (Fig. 12's x-axis).
  [[nodiscard]] static BehaviorSpec freerider(double delta) {
    BehaviorSpec spec;
    spec.delta_fanout = delta;
    spec.delta_propose = delta;
    spec.delta_serve = delta;
    return spec;
  }

  [[nodiscard]] static BehaviorSpec honest() { return {}; }
};

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_BEHAVIOR_HPP

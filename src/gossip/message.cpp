#include "gossip/message.hpp"

#include <iterator>

namespace lifting::gossip {

namespace {

constexpr std::size_t kUdpHeader = 28;  // IP (20) + UDP (8)
constexpr std::size_t kTcpFraming = 40; // IP + TCP, amortized per message
constexpr std::size_t kTag = 1;         // message type tag
constexpr std::size_t kNode = 4;
constexpr std::size_t kChunk = 8;
constexpr std::size_t kPeriod = 4;
constexpr std::size_t kCount = 2;
constexpr std::size_t kScore = 8;

struct SizeVisitor {
  std::size_t operator()(const ProposeMsg& m) const {
    return kUdpHeader + kTag + kPeriod + kCount + kChunk * m.chunks.size();
  }
  std::size_t operator()(const RequestMsg& m) const {
    return kUdpHeader + kTag + kPeriod + kCount + kChunk * m.chunks.size();
  }
  std::size_t operator()(const ServeMsg& m) const {
    return kUdpHeader + kTag + kPeriod + kChunk + kNode + m.payload_bytes;
  }
  std::size_t operator()(const AckMsg& m) const {
    return kUdpHeader + kTag + kPeriod + kCount + kChunk * m.chunks.size() +
           kCount + kNode * m.partners.size();
  }
  std::size_t operator()(const ConfirmReqMsg& m) const {
    return kUdpHeader + kTag + kNode + kPeriod + kCount +
           kChunk * m.chunks.size();
  }
  std::size_t operator()(const ConfirmRespMsg&) const {
    return kUdpHeader + kTag + kNode + kPeriod + 1;
  }
  std::size_t operator()(const BlameMsg&) const {
    return kUdpHeader + kTag + kNode + kScore + 1;
  }
  std::size_t operator()(const ScoreQueryMsg&) const {
    return kUdpHeader + kTag + kNode + 4;
  }
  std::size_t operator()(const ScoreReplyMsg&) const {
    return kUdpHeader + kTag + kNode + 4 + kScore + 1;
  }
  std::size_t operator()(const ExpelRequestMsg&) const {
    return kUdpHeader + kTag + kNode + kScore;
  }
  std::size_t operator()(const ExpelVoteMsg&) const {
    return kUdpHeader + kTag + kNode + 1;
  }
  std::size_t operator()(const ExpelCommitMsg&) const {
    return kUdpHeader + kTag + kNode + 1;
  }
  std::size_t operator()(const AuditRequestMsg&) const {
    return kTcpFraming + kTag + 4;
  }
  std::size_t operator()(const AuditHistoryMsg& m) const {
    std::size_t bytes = kTcpFraming + kTag + 4 + kCount;
    for (const auto& rec : m.proposals) {
      bytes += kPeriod + kCount + kNode * rec.partners.size() + kCount +
               kChunk * rec.chunks.size();
    }
    return bytes;
  }
  std::size_t operator()(const HistoryPollMsg& m) const {
    std::size_t bytes = kTcpFraming + kTag + 4 + kNode + kCount;
    for (const auto& rec : m.claims) {
      bytes += kPeriod + kCount + kChunk * rec.chunks.size();
    }
    return bytes;
  }
  std::size_t operator()(const HistoryPollRespMsg& m) const {
    return kTcpFraming + kTag + 4 + kNode + 4 + 4 + kCount +
           kNode * m.confirm_askers.size();
  }
  std::size_t operator()(const AuditAckMsg&) const {
    // Channel-level ack of the reliable-UDP audit mode: a real datagram,
    // never part of the modeled TCP stream.
    return kUdpHeader + kTag + 1 + 4 + kNode;
  }
  std::size_t operator()(const RpsShuffleMsg& m) const {
    // Substrate shuffle exchange: one UDP datagram; entries are
    // (id, age, epoch, flags) = 13 B each.
    return kUdpHeader + kTag + 4 + 1 + kCount +
           (kNode + 4 + 4 + 1) * m.entries.size();
  }
};

/// Exact codec payload length (net/codec.cpp layouts, kept in lockstep by
/// tests/test_faults.cpp round-trip size pins): tag 1 B, node 4 B, chunk
/// 8 B, u32 4 B, list count 2 B.
struct DatagramSizeVisitor {
  static std::size_t records(
      const std::vector<HistoryProposalRecord>& recs) {
    std::size_t bytes = kCount;
    for (const auto& rec : recs) {
      bytes += kPeriod + kCount + kNode * rec.partners.size() + kCount +
               kChunk * rec.chunks.size();
    }
    return bytes;
  }
  std::size_t operator()(const ProposeMsg& m) const {
    return kTag + kPeriod + kCount + kChunk * m.chunks.size();
  }
  std::size_t operator()(const RequestMsg& m) const {
    return kTag + kPeriod + kCount + kChunk * m.chunks.size();
  }
  std::size_t operator()(const ServeMsg& m) const {
    return kTag + kPeriod + kChunk + 4 + kNode + m.payload_bytes;
  }
  std::size_t operator()(const AckMsg& m) const {
    return kTag + kPeriod + kCount + kChunk * m.chunks.size() + kCount +
           kNode * m.partners.size();
  }
  std::size_t operator()(const ConfirmReqMsg& m) const {
    return kTag + kNode + kPeriod + kCount + kChunk * m.chunks.size();
  }
  std::size_t operator()(const ConfirmRespMsg&) const {
    return kTag + kNode + kPeriod + 1;
  }
  std::size_t operator()(const BlameMsg&) const {
    return kTag + kNode + kScore + 1;
  }
  std::size_t operator()(const ScoreQueryMsg&) const {
    return kTag + kNode + 4;
  }
  std::size_t operator()(const ScoreReplyMsg&) const {
    return kTag + kNode + 4 + kScore + 1;
  }
  std::size_t operator()(const ExpelRequestMsg&) const {
    return kTag + kNode + kScore;
  }
  std::size_t operator()(const ExpelVoteMsg&) const { return kTag + kNode + 1; }
  std::size_t operator()(const ExpelCommitMsg&) const {
    return kTag + kNode + 1;
  }
  std::size_t operator()(const AuditRequestMsg&) const { return kTag + 4; }
  std::size_t operator()(const AuditHistoryMsg& m) const {
    return kTag + 4 + records(m.proposals);
  }
  std::size_t operator()(const HistoryPollMsg& m) const {
    return kTag + 4 + kNode + records(m.claims);
  }
  std::size_t operator()(const HistoryPollRespMsg& m) const {
    return kTag + 4 + kNode + 4 + 4 + kCount +
           kNode * m.confirm_askers.size();
  }
  std::size_t operator()(const AuditAckMsg&) const {
    return kTag + 1 + 4 + kNode;
  }
  std::size_t operator()(const RpsShuffleMsg& m) const {
    return kTag + 4 + 1 + kCount + (kNode + 4 + 4 + 1) * m.entries.size();
  }
};

struct KindVisitor {
  const char* operator()(const ProposeMsg&) const { return "propose"; }
  const char* operator()(const RequestMsg&) const { return "request"; }
  const char* operator()(const ServeMsg&) const { return "serve"; }
  const char* operator()(const AckMsg&) const { return "ack"; }
  const char* operator()(const ConfirmReqMsg&) const { return "confirm_req"; }
  const char* operator()(const ConfirmRespMsg&) const { return "confirm_resp"; }
  const char* operator()(const BlameMsg&) const { return "blame"; }
  const char* operator()(const ScoreQueryMsg&) const { return "score_query"; }
  const char* operator()(const ScoreReplyMsg&) const { return "score_reply"; }
  const char* operator()(const ExpelRequestMsg&) const { return "expel_request"; }
  const char* operator()(const ExpelVoteMsg&) const { return "expel_vote"; }
  const char* operator()(const ExpelCommitMsg&) const { return "expel_commit"; }
  const char* operator()(const AuditRequestMsg&) const { return "audit_request"; }
  const char* operator()(const AuditHistoryMsg&) const { return "audit_history"; }
  const char* operator()(const HistoryPollMsg&) const { return "history_poll"; }
  const char* operator()(const HistoryPollRespMsg&) const {
    return "history_poll_resp";
  }
  const char* operator()(const AuditAckMsg&) const { return "audit_ack"; }
  const char* operator()(const RpsShuffleMsg&) const { return "rps_shuffle"; }
};

}  // namespace

std::size_t wire_size(const Message& msg) {
  return std::visit(SizeVisitor{}, msg);
}

std::size_t datagram_wire_size(const Message& msg) {
  return kUdpHeader + std::visit(DatagramSizeVisitor{}, msg);
}

const char* message_kind(const Message& msg) {
  return std::visit(KindVisitor{}, msg);
}

const char* message_kind_name(std::size_t index) {
  static constexpr const char* kNames[] = {
      "propose",       "request",       "serve",
      "ack",           "confirm_req",   "confirm_resp",
      "blame",         "score_query",   "score_reply",
      "expel_request", "expel_vote",    "expel_commit",
      "audit_request", "audit_history", "history_poll",
      "history_poll_resp", "audit_ack", "rps_shuffle"};
  static_assert(std::size(kNames) == std::variant_size_v<Message>);
  return index < std::size(kNames) ? kNames[index] : "unknown";
}

}  // namespace lifting::gossip

#include "gossip/playback.hpp"

#include "common/assert.hpp"

namespace lifting::gossip {

std::vector<HealthPoint> health_curve(
    const std::vector<ChunkMeta>& emitted,
    const std::vector<const DeliveryLog*>& node_deliveries,
    TimePoint measurement_end, const std::vector<double>& lags_seconds,
    const PlaybackConfig& config) {
  std::vector<HealthPoint> curve;
  curve.reserve(lags_seconds.size());
  const TimePoint warmup_end = kSimEpoch + config.warmup;

  // A chunk is judgeable at a lag if it was emitted after warmup and its
  // deadline (emit + lag) falls within the measured window. With a
  // common_window_lag the deadline cutoff — and therefore the eligible
  // set — is shared by every lag and computed once.
  const bool common_window = config.common_window_lag > 0.0;
  std::vector<const ChunkMeta*> eligible;
  auto collect_eligible = [&](Duration window_lag) {
    eligible.clear();
    for (const auto& chunk : emitted) {
      if (chunk.emitted_at < warmup_end) continue;
      if (chunk.emitted_at + window_lag > measurement_end) continue;
      eligible.push_back(&chunk);
    }
  };
  if (common_window) collect_eligible(seconds(config.common_window_lag));

  for (const double lag_s : lags_seconds) {
    const Duration lag = seconds(lag_s);
    if (!common_window) collect_eligible(lag);
    if (eligible.empty()) {
      curve.push_back(HealthPoint{lag_s, 0.0});
      continue;
    }
    std::size_t clear_nodes = 0;
    for (const auto* deliveries : node_deliveries) {
      std::size_t on_time = 0;
      for (const auto* chunk : eligible) {
        const TimePoint* at = deliveries->find(chunk->id);
        if (at != nullptr && *at <= chunk->emitted_at + lag) {
          ++on_time;
        }
      }
      const double frac = static_cast<double>(on_time) /
                          static_cast<double>(eligible.size());
      if (frac >= config.clear_threshold) ++clear_nodes;
    }
    curve.push_back(HealthPoint{
        lag_s, node_deliveries.empty()
                   ? 0.0
                   : static_cast<double>(clear_nodes) /
                         static_cast<double>(node_deliveries.size())});
  }
  return curve;
}

double mean_delivery_lag(const std::vector<ChunkMeta>& emitted,
                         const DeliveryLog& deliveries) {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& chunk : emitted) {
    const TimePoint* at = deliveries.find(chunk.id);
    if (at == nullptr) continue;
    total += to_seconds(*at - chunk.emitted_at);
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace lifting::gossip

#ifndef LIFTING_GOSSIP_CHUNK_HPP
#define LIFTING_GOSSIP_CHUNK_HPP

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

/// Stream chunks (paper §3): the content is split into chunks identified by
/// chunk ids; payloads are modeled by size only (the tracking protocol never
/// inspects content).

namespace lifting::gossip {

struct ChunkMeta {
  ChunkId id;
  std::uint32_t payload_bytes = 0;
  TimePoint emitted_at;  // when the source injected it
};

/// A small sorted set of chunk ids — proposals, requests and serve batches
/// are all chunk-id sets of size ~|P| or ~|R| (single digits to tens).
using ChunkIdList = std::vector<ChunkId>;

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_CHUNK_HPP

#ifndef LIFTING_GOSSIP_CHUNK_HPP
#define LIFTING_GOSSIP_CHUNK_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/small_vector.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

/// Stream chunks (paper §3): the content is split into chunks identified by
/// chunk ids; payloads are modeled by size only (the tracking protocol never
/// inspects content).

namespace lifting::gossip {

struct ChunkMeta {
  ChunkId id;
  std::uint32_t payload_bytes = 0;
  TimePoint emitted_at;  // when the source injected it
};

/// A small set of chunk ids — proposals, requests and serve batches are all
/// chunk-id sets of size ~|P| or ~|R| (single digits to tens). Inline
/// capacity 16 covers the steady state, so building and moving these lists
/// is allocation-free on the gossip hot path.
using ChunkIdList = SmallVector<ChunkId, 16>;

/// First-delivery times of the chunks a node received (or injected).
///
/// Chunk ids are dense in emission order, so a flat index replaces the
/// hash map: containment and lookup are O(1) array reads on the per-serve
/// hot path, while the insertion-ordered (chunk, time) log keeps iteration
/// and reporting cheap.
class DeliveryLog {
 public:
  [[nodiscard]] bool contains(ChunkId id) const noexcept {
    const auto v = static_cast<std::size_t>(id.value());
    return v < index_.size() && index_[v] != kAbsent;
  }

  /// Delivery time of `id`, or nullptr when the chunk never arrived.
  [[nodiscard]] const TimePoint* find(ChunkId id) const noexcept {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= index_.size() || index_[v] == kAbsent) return nullptr;
    return &log_[index_[v]].second;
  }

  /// Records the first delivery of `id`. Precondition: !contains(id).
  void record(ChunkId id, TimePoint at) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= index_.size()) index_.resize(v + 1, kAbsent);
    LIFTING_ASSERT(index_[v] == kAbsent, "chunk delivery recorded twice");
    index_[v] = static_cast<std::uint32_t>(log_.size());
    log_.emplace_back(id, at);
  }

  [[nodiscard]] std::size_t size() const noexcept { return log_.size(); }

  /// Iteration over (chunk, time) in delivery order.
  [[nodiscard]] auto begin() const noexcept { return log_.begin(); }
  [[nodiscard]] auto end() const noexcept { return log_.end(); }

 private:
  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFU;
  std::vector<std::pair<ChunkId, TimePoint>> log_;
  std::vector<std::uint32_t> index_;  // chunk value -> log position
};

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_CHUNK_HPP

#ifndef LIFTING_GOSSIP_CHUNK_HPP
#define LIFTING_GOSSIP_CHUNK_HPP

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/small_vector.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

/// Stream chunks (paper §3): the content is split into chunks identified by
/// chunk ids; payloads are modeled by size only (the tracking protocol never
/// inspects content).

namespace lifting::gossip {

struct ChunkMeta {
  ChunkId id;
  std::uint32_t payload_bytes = 0;
  TimePoint emitted_at;  // when the source injected it
};

/// A small set of chunk ids — proposals, requests and serve batches are all
/// chunk-id sets of size ~|P| or ~|R| (single digits to tens). Inline
/// capacity 32 covers the steady state including the planetlab preset's
/// |P| ≈ 28 chunks/period, so building and moving these lists is
/// allocation-free on the gossip hot path (with 4-byte ChunkIds the inline
/// buffer costs the same 128 bytes the old 16×8 layout did).
using ChunkIdList = SmallVector<ChunkId, 32>;

/// First-delivery times of the chunks a node received (or injected).
///
/// Chunk ids are dense in emission order, so the log is a presence bitmap
/// (1 bit/chunk, never compacted — has_chunk must answer for the whole
/// stream) plus a flat time table (8 B/chunk): containment and lookup are
/// O(1) array reads on the per-serve hot path. Long streamed runs call
/// compact_before(horizon) once per fold to drop the *times* of chunks
/// older than the judgment horizon — delivery counts and presence survive,
/// so memory is O(window), not O(stream length). find() returns nullptr
/// for a folded chunk; callers that need folded times must consume them
/// before the fold (src/runtime/experiment.cpp's streamed health does).
class DeliveryLog {
 public:
  [[nodiscard]] bool contains(ChunkId id) const noexcept {
    const auto v = static_cast<std::size_t>(id.value());
    const std::size_t word = v / 64;
    return word < present_.size() &&
           (present_[word] >> (v % 64) & 1ULL) != 0;
  }

  /// Delivery time of `id`, or nullptr when the chunk never arrived (or
  /// its time was folded away by compact_before).
  [[nodiscard]] const TimePoint* find(ChunkId id) const noexcept {
    if (!contains(id)) return nullptr;
    const auto v = static_cast<std::size_t>(id.value());
    if (v < base_ || v - base_ >= at_.size()) return nullptr;
    return &at_[v - base_];
  }

  /// Records the first delivery of `id`. Precondition: !contains(id).
  void record(ChunkId id, TimePoint at) {
    const auto v = static_cast<std::size_t>(id.value());
    const std::size_t word = v / 64;
    if (word >= present_.size()) present_.resize(word + 1, 0);
    LIFTING_ASSERT((present_[word] >> (v % 64) & 1ULL) == 0,
                   "chunk delivery recorded twice");
    present_[word] |= 1ULL << (v % 64);
    ++size_;
    if (v < base_) return;  // delivered after its window folded: count only
    if (v - base_ >= at_.size()) at_.resize(v - base_ + 1, TimePoint::min());
    at_[v - base_] = at;
  }

  /// Number of chunks delivered (folded entries included).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Pre-sizes the presence bitmap for a stream of `chunks` ids total, so
  /// steady-state record() calls never regrow it (the bitmap is the one
  /// DeliveryLog structure that scales with stream length, not window).
  void reserve_stream(std::size_t chunks) { present_.reserve(chunks / 64 + 1); }

  /// Drops the stored delivery times of every chunk with id < `horizon`.
  /// Presence (contains) and the delivery count are unaffected. Idempotent;
  /// horizons only move forward.
  void compact_before(ChunkId horizon) {
    const auto h = static_cast<std::size_t>(horizon.value());
    if (h <= base_) return;
    const std::size_t drop = std::min(h - base_, at_.size());
    at_.erase(at_.begin(), at_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ = h;
  }

  /// First id whose delivery time is still retained (0 when never folded).
  [[nodiscard]] ChunkId window_base() const noexcept {
    return ChunkId{static_cast<ChunkId::rep_type>(base_)};
  }

  /// Iteration over (chunk, time) for the retained window, in chunk-id
  /// order (delivery consumers are order-insensitive aggregations).
  class const_iterator {
   public:
    const_iterator(const DeliveryLog* log, std::size_t v) : log_(log), v_(v) {
      skip_absent();
    }
    [[nodiscard]] std::pair<ChunkId, TimePoint> operator*() const {
      return {ChunkId{static_cast<ChunkId::rep_type>(v_)},
              log_->at_[v_ - log_->base_]};
    }
    const_iterator& operator++() {
      ++v_;
      skip_absent();
      return *this;
    }
    friend bool operator==(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.v_ == b.v_;
    }

   private:
    void skip_absent() {
      const std::size_t end = log_->base_ + log_->at_.size();
      while (v_ < end &&
             !log_->contains(ChunkId{static_cast<ChunkId::rep_type>(v_)})) {
        ++v_;
      }
      if (v_ > end) v_ = end;
    }
    const DeliveryLog* log_;
    std::size_t v_;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator{this, base_};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator{this, base_ + at_.size()};
  }

 private:
  RecycledVector<std::uint64_t> present_;  // 1 bit per chunk id, full stream
  RecycledVector<TimePoint> at_;           // delivery times, ids >= base_
  std::size_t base_ = 0;                // id of at_[0]
  std::size_t size_ = 0;                // chunks delivered, ever
};

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_CHUNK_HPP

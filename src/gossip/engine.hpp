#ifndef LIFTING_GOSSIP_ENGINE_HPP
#define LIFTING_GOSSIP_ENGINE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ring_log.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/behavior.hpp"
#include "gossip/chunk.hpp"
#include "gossip/mailer.hpp"
#include "gossip/message.hpp"
#include "membership/directory.hpp"
#include "sim/simulator.hpp"

/// The three-phase gossip dissemination engine (paper §3) with every §4
/// freeriding attack implementable through its BehaviorSpec.
///
/// Each node runs one Engine. Every gossip period Tg the engine proposes
/// the chunks received since the last propose phase to f uniformly random
/// partners (infect-and-die); on a proposal it requests the chunks it needs;
/// on a valid request it serves the requested chunks. With LiFTinG enabled,
/// the engine additionally emits the ack messages of the direct
/// cross-checking protocol (§5.2) at propose time, and reports protocol
/// events to an EngineObserver (the LiFTinG agent).

namespace lifting::membership {
class RpsNetwork;
}  // namespace lifting::membership

namespace lifting::obs {
class Recorder;
}  // namespace lifting::obs

namespace lifting::gossip {

/// Protocol events consumed by the LiFTinG agent. All references are only
/// valid for the duration of the call.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// A proposal arrived from `from` (witness bookkeeping).
  virtual void on_propose_received(NodeId from, PeriodIndex period,
                                   const ChunkIdList& chunks) = 0;
  /// We requested `chunks` from `proposer` (direct-verification arm).
  virtual void on_request_sent(NodeId proposer, PeriodIndex period,
                               const ChunkIdList& chunks) = 0;
  /// A chunk was served to us. `ack_to` is whom the protocol says to
  /// acknowledge (equals `sender` unless the sender mounts a MITM).
  virtual void on_serve_received(NodeId sender, NodeId ack_to,
                                 PeriodIndex period, ChunkId chunk) = 0;
  /// We served `chunks` to `receiver` against its request on our proposal
  /// of `period` (cross-checking expectation arm).
  virtual void on_chunks_served(NodeId receiver, PeriodIndex period,
                                const ChunkIdList& chunks) = 0;
  /// Our propose phase completed. `claimed_partners` is what our acks
  /// assert (may differ from `real_partners` under MITM).
  virtual void on_proposal_sent(PeriodIndex period,
                                const std::vector<NodeId>& claimed_partners,
                                const std::vector<NodeId>& real_partners,
                                const ChunkIdList& chunks) = 0;
  /// An ack[i](partners) arrived from `from` (cross-checking verifier arm).
  virtual void on_ack_received(NodeId from, const AckMsg& ack) = 0;
};

struct GossipParams {
  /// Fanout f (typically slightly larger than ln n — §3).
  std::size_t fanout = 7;
  /// Gossip period Tg.
  Duration period = milliseconds(500);
  /// A requested chunk not served within this delay becomes requestable
  /// from another proposer (also the direct-verification deadline).
  Duration request_timeout = milliseconds(500);
  /// Sent proposals are kept this many periods for request validation.
  std::uint32_t proposal_retention_periods = 4;
  /// Emit the cross-checking acks (§5.2). Off when LiFTinG is disabled —
  /// the plain three-phase protocol has no acknowledgments.
  bool emit_acks = true;
  /// Request at most this many chunks from a single proposal (0 = no cap).
  /// Streaming deployments balance requests across proposers; a cap of
  /// |R| puts the system in the §6 steady state (each node served by ~f
  /// servers with |R| chunks each per period).
  std::uint32_t max_request_per_proposal = 0;
};

/// Per-engine protocol statistics.
struct EngineStats {
  std::uint64_t chunks_received = 0;
  std::uint64_t duplicate_serves = 0;
  std::uint64_t proposals_sent = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t chunks_served = 0;
  std::uint64_t invalid_requests = 0;  // requests not matching a proposal
  std::uint64_t duplicate_requests = 0;  // already-served (transport dup)
};

class Engine {
 public:
  Engine(sim::Simulator& sim, Mailer& mailer, membership::Directory& directory,
         NodeId self, GossipParams params, BehaviorSpec behavior, Pcg32 rng,
         EngineObserver* observer);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Begins the periodic propose loop after `initial_offset` (nodes are
  /// desynchronized in practice; pass a random fraction of Tg).
  void start(Duration initial_offset);

  /// Stops proposing (the node still answers incoming traffic). Used to
  /// wind down expelled nodes in long experiments and to retire departed
  /// nodes (the engine object outlives the node so pending timers land on
  /// live memory; the stopped flag makes them no-ops).
  void stop() noexcept { running_ = false; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Replaces the node's behavior mid-run (timeline set_behavior events:
  /// an honest node turning freerider, a freerider going straight).
  void set_behavior(BehaviorSpec behavior);

  /// Partner selection from an RPS partial view (DESIGN.md §12): when set,
  /// honest partner draws come from `rps->view_of(self)` (filtered through
  /// this node's membership view) instead of the full directory. Null (the
  /// default) keeps the legacy directory sampling bit-identical.
  void set_partner_view(const membership::RpsNetwork* rps) noexcept {
    rps_view_ = rps;
  }

  /// Arms the flight recorder for this engine's phase transitions
  /// (DESIGN.md §13). Null (the default) disarms: no record is built.
  void set_trace(obs::Recorder* trace) noexcept { trace_ = trace; }

  /// Routes one of the four gossip message kinds to the engine.
  void handle(NodeId from, const Message& message);

  /// Injects a brand-new chunk (stream source only): it will be proposed in
  /// the next propose phase like any received chunk, with no ack owed.
  void inject_chunk(const ChunkMeta& chunk);

  [[nodiscard]] bool has_chunk(ChunkId id) const {
    return delivery_log_.contains(id);
  }
  /// First-delivery times of every chunk this node received (or injected).
  [[nodiscard]] const DeliveryLog& delivery_times() const noexcept {
    return delivery_log_;
  }
  /// Streamed-health fold: drops the delivery timestamps of chunks below
  /// `horizon` (their judgment window has closed). Presence bits stay — the
  /// log's bitmap is also the engine's held-set — so protocol behavior is
  /// untouched.
  void compact_delivery_log(ChunkId horizon) {
    delivery_log_.compact_before(horizon);
  }
  /// Pre-sizes the delivery log's presence bitmap for the whole stream, so
  /// steady-state deliveries never regrow it (part of the per-period
  /// zero-allocation invariant).
  void reserve_stream_chunks(std::size_t chunks) {
    delivery_log_.reserve_stream(chunks);
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] PeriodIndex current_period() const noexcept { return period_; }
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] const BehaviorSpec& behavior() const noexcept {
    return behavior_;
  }

 private:
  struct FreshChunk {
    ChunkId id;
    NodeId ack_to;      // whom to acknowledge (serve's ack_to)
    bool has_origin;    // false for source-injected chunks
    std::uint32_t payload_bytes;
  };

  static constexpr std::uint32_t kNotHeld = 0xFFFFFFFFU;

  void propose_phase();
  void schedule_next_phase();
  void handle_propose(NodeId from, const ProposeMsg& msg);
  void handle_request(NodeId from, const RequestMsg& msg);
  void handle_serve(NodeId from, const ServeMsg& msg);
  void send_acks(PeriodIndex period,
                 const RecycledVector<FreshChunk>& fresh,
                 const std::vector<NodeId>& claimed_partners);
  void pick_partners_into(std::size_t count, std::vector<NodeId>& out);
  [[nodiscard]] NodeId choose_ack_target();
  void add_chunk(ChunkId id, std::uint32_t payload_bytes);
  [[nodiscard]] std::uint32_t held_payload_bytes(ChunkId id) const {
    if (!has_chunk(id)) return kNotHeld;
    for (const auto& [chunk, bytes] : payload_exceptions_) {
      if (chunk == id) return bytes;
    }
    return default_payload_;
  }
  [[nodiscard]] TimePoint pending_deadline(ChunkId id) const {
    for (const auto& p : pending_) {
      if (p.chunk == id) return p.until;
    }
    return TimePoint::min();
  }
  void set_pending(ChunkId id, TimePoint until);
  void clear_pending(ChunkId id);
  void prune_sent_proposals();

  sim::Simulator& sim_;
  Mailer& mailer_;
  membership::Directory& directory_;
  NodeId self_;
  GossipParams params_;
  BehaviorSpec behavior_;
  Pcg32 rng_;
  EngineObserver* observer_;
  /// Flight recorder (null = disarmed, records nothing).
  obs::Recorder* trace_ = nullptr;
  /// RPS partner-selection source (null = legacy directory sampling).
  const membership::RpsNetwork* rps_view_ = nullptr;

  bool running_ = false;
  PeriodIndex period_ = 0;

  /// Per-chunk state (DESIGN.md §9). The DeliveryLog's presence bitmap is
  /// the held-set (1 bit/chunk); payload sizes collapse to one default —
  /// a CBR stream emits constant-size chunks — plus a flat exception list
  /// for the rare odd-sized ones. The old dense held_bytes_ table paid
  /// 4 B/chunk/node for a value that is the same everywhere.
  DeliveryLog delivery_log_;
  std::uint32_t default_payload_ = kNotHeld;  // set by the first add_chunk
  RecycledVector<std::pair<ChunkId, std::uint32_t>> payload_exceptions_;
  /// Outstanding requests awaiting a serve: a flat list of live deadlines
  /// (~|P| entries, lazily swept) instead of a dense per-chunk table that
  /// grew with the stream length.
  struct PendingRequest {
    ChunkId chunk;
    TimePoint until;
  };
  RecycledVector<PendingRequest> pending_;
  RecycledVector<FreshChunk> fresh_;
  /// Proposals we sent, newest last, for request validation. One record per
  /// propose phase — the chunk list is shared by all partners of that
  /// period instead of being copied per partner — and only the retention
  /// window is kept, so request validation scans a handful of records
  /// indexed by period. Ring slots recycle their list capacity, so the
  /// steady-state record path never allocates.
  struct SentProposal {
    PeriodIndex period = 0;
    TimePoint at{};
    ChunkIdList chunks;
    SmallVector<NodeId, 8> partners;
    /// Partners already served this period. A request is answered once: a
    /// transport-duplicated request must not re-serve (or re-draw a
    /// partial-serve behavior's rng) — the duplicate-delivery idempotence
    /// contract (tests/test_faults.cpp).
    SmallVector<NodeId, 8> served;
  };
  RingLog<SentProposal> sent_proposals_;
  /// Reusable (ack target, append seq, chunk) scratch for send_acks'
  /// grouping sort — grows once, then the per-period ack path is
  /// allocation-free. The seq makes (target, seq) a total order, so an
  /// in-place std::sort yields the same target-major / receive-order-minor
  /// grouping a stable sort by target would, without its temp buffer.
  struct AckRow {
    NodeId target{};
    std::uint32_t seq = 0;
    ChunkId chunk{};
  };
  RecycledVector<AckRow> ack_scratch_;
  /// Propose-phase scratch buffers (capacity retained across periods so the
  /// steady-state phase is allocation-free; see bench_sweep_scaling's
  /// zero-allocation delta row).
  RecycledVector<FreshChunk> fresh_scratch_;
  std::vector<NodeId> partners_scratch_;
  std::vector<NodeId> claimed_scratch_;
  std::vector<NodeId> rps_pool_scratch_;
  RecycledVector<NodeId> servers_scratch_;
  std::vector<std::uint32_t> sample_index_scratch_;

  EngineStats stats_;
};

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_ENGINE_HPP

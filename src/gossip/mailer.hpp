#ifndef LIFTING_GOSSIP_MAILER_HPP
#define LIFTING_GOSSIP_MAILER_HPP

#include <array>
#include <optional>
#include <string>
#include <variant>

#include "gossip/message.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

/// Sends protocol messages through a net::Transport while keeping per-kind
/// message/byte accounting — the raw data behind Table 5 (verification
/// overhead as a fraction of stream bandwidth) and Table 3 (verification
/// message counts).
///
/// The Mailer is the single choke point between the protocol stack and the
/// backend: every Engine/Agent send passes through it, so swapping the
/// transport (simulator vs real UDP sockets) never touches protocol code.
///
/// Counter handles are resolved once per message kind (on its first send,
/// preserving the registry's historical registration order) and cached by
/// variant index, so steady-state accounting is two pointer bumps with no
/// string building on the per-message path.

namespace lifting::gossip {

class Mailer {
 public:
  /// Simulator convenience: wraps `network` in an owned SimTransport.
  /// `metrics` may be null (no accounting, e.g. in micro-tests).
  Mailer(sim::Network<Message>& network, sim::MetricsRegistry* metrics)
      : sim_backend_(std::in_place, network),
        transport_(*sim_backend_),
        metrics_(metrics) {}

  /// Backend-agnostic form: sends through `transport` (which must outlive
  /// the Mailer). Used by the wire deployment (NodeHost over UdpTransport).
  Mailer(net::Transport& transport, sim::MetricsRegistry* metrics)
      : transport_(transport), metrics_(metrics) {}

  /// Prices the §5.3 audit kinds (and their channel acks) with the exact
  /// datagram model instead of amortized TCP framing — set by the runtime
  /// when LiftingParams::audit_channel is kReliableUdp, where those kinds
  /// travel as real datagrams. Off (the default) keeps the historical
  /// byte-identical accounting.
  void set_datagram_audit_pricing(bool on) noexcept {
    datagram_audit_pricing_ = on;
  }

  void send(NodeId from, NodeId to, sim::Channel channel, Message message) {
    const bool audit_kind = message.index() >= kAuditKindFirst;
    const std::size_t bytes = datagram_audit_pricing_ && audit_kind
                                  ? datagram_wire_size(message)
                                  : wire_size(message);
    if (metrics_ != nullptr) {
      auto& kind_counters = counters_[message.index()];
      if (kind_counters.count == nullptr) {
        const std::string kind = message_kind(message);
        kind_counters.count = &metrics_->counter("sent." + kind + ".count");
        kind_counters.bytes = &metrics_->counter("sent." + kind + ".bytes");
      }
      kind_counters.count->add(1);
      kind_counters.bytes->add(bytes);
    }
    transport_.send(from, to, channel, bytes, std::move(message));
  }

  [[nodiscard]] net::Transport& transport() noexcept { return transport_; }
  [[nodiscard]] sim::MetricsRegistry* metrics() noexcept { return metrics_; }

 private:
  struct KindCounters {
    sim::Counter* count = nullptr;
    sim::Counter* bytes = nullptr;
  };

  // Declared before transport_ so the simulator constructor can bind the
  // reference to the engaged optional.
  std::optional<net::SimTransport> sim_backend_;
  net::Transport& transport_;
  sim::MetricsRegistry* metrics_;
  bool datagram_audit_pricing_ = false;
  std::array<KindCounters, std::variant_size_v<Message>> counters_{};
};

/// Message kinds that constitute the three-phase dissemination itself.
[[nodiscard]] inline bool is_dissemination_kind(const std::string& kind) {
  return kind == "propose" || kind == "request" || kind == "serve";
}

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_MAILER_HPP

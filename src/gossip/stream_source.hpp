#ifndef LIFTING_GOSSIP_STREAM_SOURCE_HPP
#define LIFTING_GOSSIP_STREAM_SOURCE_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "gossip/chunk.hpp"
#include "gossip/engine.hpp"
#include "sim/simulator.hpp"

/// Constant-bitrate stream source (paper §7: a 674 kbps stream broadcast to
/// 300 nodes). The source node injects chunks into its own gossip engine;
/// dissemination then follows the ordinary three-phase protocol.

namespace lifting::gossip {

class StreamSource {
 public:
  struct Params {
    double bitrate_bps = 674'000.0;
    std::uint32_t chunk_payload_bytes = 8'425;  // => 10 chunks/s at 674 kbps
    Duration duration = seconds(60.0);

    /// Chunk ids the full stream will span (ceiling), for pre-sizing
    /// per-stream structures like the DeliveryLog presence bitmap.
    [[nodiscard]] std::size_t expected_chunks() const noexcept {
      const double per_chunk_s =
          static_cast<double>(chunk_payload_bytes) * 8.0 / bitrate_bps;
      const double span_s = std::chrono::duration<double>(duration).count();
      return static_cast<std::size_t>(span_s / per_chunk_s) + 1;
    }
  };

  StreamSource(sim::Simulator& sim, Engine& source_engine, Params params)
      : sim_(sim), engine_(source_engine), params_(params) {
    require(params_.bitrate_bps > 0, "bitrate must be positive");
    require(params_.chunk_payload_bytes > 0, "chunk size must be positive");
    interval_ = Duration{static_cast<Duration::rep>(
        static_cast<double>(params_.chunk_payload_bytes) * 8.0 /
        params_.bitrate_bps * 1e6)};
    // The emission record grows for the whole stream; sized up front so
    // mid-stream emits never reallocate it (steady-state zero-alloc).
    emitted_.reserve(params_.expected_chunks());
  }

  /// Starts emitting chunks every `chunk_payload_bytes·8/bitrate` seconds
  /// until `duration` has elapsed.
  void start() {
    end_ = sim_.now() + params_.duration;
    emit();
  }

  /// Stops the stream early (experiment wind-down); the pending emit timer
  /// fires once more and fizzles.
  void stop() { end_ = sim_.now(); }

  [[nodiscard]] const std::vector<ChunkMeta>& emitted() const noexcept {
    return emitted_;
  }
  [[nodiscard]] Duration chunk_interval() const noexcept { return interval_; }

 private:
  void emit() {
    if (sim_.now() >= end_) return;
    const ChunkMeta chunk{next_id_, params_.chunk_payload_bytes, sim_.now()};
    ++next_id_;
    emitted_.push_back(chunk);
    engine_.inject_chunk(chunk);
    sim_.schedule_after(interval_, [this] { emit(); });
  }

  sim::Simulator& sim_;
  Engine& engine_;
  Params params_;
  Duration interval_{};
  TimePoint end_{};
  ChunkId next_id_{0};
  std::vector<ChunkMeta> emitted_;
};

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_STREAM_SOURCE_HPP

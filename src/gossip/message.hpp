#ifndef LIFTING_GOSSIP_MESSAGE_HPP
#define LIFTING_GOSSIP_MESSAGE_HPP

#include <cstdint>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "gossip/chunk.hpp"

/// Wire messages — the three-phase gossip protocol (§3) plus every LiFTinG
/// verification message (§5). One variant type covers the whole stack so a
/// node has a single network endpoint, as in the deployed system.
///
/// Sizes are modeled explicitly (wire_size) because Table 5 reports the
/// verification overhead as a fraction of stream bandwidth.

namespace lifting::gossip {

// ---------------------------------------------------------------- gossip

/// Propose phase: sender advertises the chunks received since its last
/// propose phase to f random partners.
struct ProposeMsg {
  PeriodIndex period = 0;  // sender's period counter
  ChunkIdList chunks;
};

/// Request phase: receiver asks for the subset it needs.
struct RequestMsg {
  PeriodIndex period = 0;  // echoes the proposal's period
  ChunkIdList chunks;
};

/// Serving phase: one chunk per message (chunks are large; one datagram
/// carries one chunk).
struct ServeMsg {
  PeriodIndex period = 0;       // echoes the proposal's period
  ChunkId chunk;
  std::uint32_t payload_bytes = 0;
  /// Whom the receiver should acknowledge to once it re-proposes the chunk.
  /// Honest nodes set this to themselves; a man-in-the-middle freerider
  /// (§5.2, Fig. 8b) points it at a colluder to reroute the verification.
  NodeId ack_to;
};

// ------------------------------------------------- direct cross-checking

/// Partner list of an ack: f is single-digit in every deployment, so the
/// list lives inline and an ack costs no heap allocation to build or copy.
using PartnerList = SmallVector<NodeId, 8>;

/// ack[i](partners): receiver tells the server that the served chunks were
/// proposed to `partners` during its propose phase `period` (§5.2).
struct AckMsg {
  PeriodIndex period = 0;  // receiver's propose-phase period
  ChunkIdList chunks;      // the served chunks that were re-proposed
  PartnerList partners;
};

/// confirm[i](subject): the verifier asks a witness whether `subject`
/// proposed (at least) `chunks` to it.
struct ConfirmReqMsg {
  NodeId subject;
  PeriodIndex subject_period = 0;
  ChunkIdList chunks;
};

/// Witness answer: yes/no.
struct ConfirmRespMsg {
  NodeId subject;
  PeriodIndex subject_period = 0;
  bool confirmed = false;
};

// -------------------------------------------------- blames / reputation

/// Classification of a blame (drives manager-side compensation).
enum class BlameReason : std::uint8_t {
  kDirectVerification,  // partial serve: f * (|R|-|S|)/|R|
  kInvalidAck,          // no/incomplete acknowledgment: f
  kFanoutDecrease,      // ack lists fewer than f partners: f - f_hat
  kTestimony,           // contradictory/missing witness testimony: 1 each
  kAposterioriCheck,    // unconfirmed history entries: 1 each
  kRateCheck,           // missing proposals in history
  /// Ledger-only attribution (never on the wire): the blame targeted a
  /// node that had already left or crashed — its verifiers mistook the
  /// silence for freeriding. The ground-truth BlameLedger reclassifies
  /// such emissions so churn-induced wrongful blame is separable from
  /// blame against live nodes.
  kPostDeparture,
};

/// Number of BlameReason alternatives (for dense per-reason tables).
inline constexpr std::size_t kBlameReasonCount =
    static_cast<std::size_t>(BlameReason::kPostDeparture) + 1;

/// Blame sent to each of the target's M managers.
struct BlameMsg {
  NodeId target;
  double value = 0.0;
  BlameReason reason = BlameReason::kDirectVerification;
};

/// Score read (min-vote over the M managers' replies).
struct ScoreQueryMsg {
  NodeId target;
  std::uint32_t query_id = 0;
};
struct ScoreReplyMsg {
  NodeId target;
  std::uint32_t query_id = 0;
  double normalized_score = 0.0;
  bool expelled = false;
};

/// Expulsion: an observer whose min-vote read fell below η asks the
/// managers to expel; managers vote against their local copies; the
/// observer commits on majority (see DESIGN.md — the paper leaves the
/// commit protocol unspecified).
struct ExpelRequestMsg {
  NodeId target;
  double observed_score = 0.0;
};
struct ExpelVoteMsg {
  NodeId target;
  bool agree = false;
};
struct ExpelCommitMsg {
  NodeId target;
  /// True when the expulsion comes from a failed entropy audit (§5.3),
  /// which expels directly rather than through the score path.
  bool from_audit = false;
};

// ----------------------------------------------------- local auditing (TCP)

/// One sent-proposal record in a node's local history.
struct HistoryProposalRecord {
  PeriodIndex period = 0;
  std::vector<NodeId> partners;
  ChunkIdList chunks;
};

/// Auditor asks the subject for its history of the last h seconds.
struct AuditRequestMsg {
  std::uint32_t audit_id = 0;
};
struct AuditHistoryMsg {
  std::uint32_t audit_id = 0;
  std::vector<HistoryProposalRecord> proposals;
};

/// Auditor polls an alleged receiver: (a) which of these claimed proposals
/// from `subject` did you actually receive, and (b) who asked you to
/// confirm proposals of `subject` (the F'_h trail)?
struct HistoryPollMsg {
  std::uint32_t audit_id = 0;
  NodeId subject;
  std::vector<HistoryProposalRecord> claims;  // claims whose partner == polled node
};
struct HistoryPollRespMsg {
  std::uint32_t audit_id = 0;
  NodeId subject;
  std::uint32_t confirmed = 0;  // claims actually received
  std::uint32_t denied = 0;     // claims never received
  std::vector<NodeId> confirm_askers;  // F'_h contributions (with multiplicity)
};

/// Application-level acknowledgment for the reliable-UDP audit channel
/// (LiftingParams::AuditChannel::kReliableUdp): the receiver of an audit
/// kind echoes the sender's retry key so the pending retransmission can be
/// cancelled. Never sent in the default modeled-TCP mode. The key is
/// derived from the audit message's own content — (kind, audit_id,
/// subject) — so no sequence numbers are added to existing messages and
/// their wire sizes stay untouched.
struct AuditAckMsg {
  std::uint8_t acked_kind = 0;  // Message variant index of the acked kind
  std::uint32_t audit_id = 0;
  NodeId subject;  // NodeId{0} for kinds without a subject field
};

// ------------------------------------------------ membership substrate

/// One partial-view entry as carried by an RPS shuffle exchange
/// (membership::RpsNetwork, DESIGN.md §12). `flags` bit 0 is the
/// ground-truth forged marker: set only by membership-layer attacks
/// (adversary/membership.hpp) on fabricated entries, never by honest
/// code — the modeled RAPTEE-style attested merge rejects flagged entries
/// the way a TEE-backed sampler would reject entries without a valid
/// attestation.
struct RpsViewEntry {
  NodeId id;
  std::uint32_t age = 0;
  std::uint32_t epoch = 1;
  std::uint8_t flags = 0;
};
inline constexpr std::uint8_t kRpsEntryForged = 0x01;

/// One RPS shuffle exchange (the initiator's offer or the contacted
/// node's response). The attested flag marks exchanges produced under the
/// hardened sampler's attestation option.
struct RpsShuffleMsg {
  std::uint32_t round = 0;
  std::uint8_t flags = 0;
  std::vector<RpsViewEntry> entries;
};
inline constexpr std::uint8_t kRpsShuffleAttested = 0x01;
inline constexpr std::uint8_t kRpsShuffleResponse = 0x02;

// ----------------------------------------------------------------- variant

using Message =
    std::variant<ProposeMsg, RequestMsg, ServeMsg, AckMsg, ConfirmReqMsg,
                 ConfirmRespMsg, BlameMsg, ScoreQueryMsg, ScoreReplyMsg,
                 ExpelRequestMsg, ExpelVoteMsg, ExpelCommitMsg,
                 AuditRequestMsg, AuditHistoryMsg, HistoryPollMsg,
                 HistoryPollRespMsg, AuditAckMsg, RpsShuffleMsg>;

/// The first kGossipKindCount Message alternatives are the dissemination
/// kinds handled by the gossip engine (routing tests `index() < 4`); the
/// asserts pin the variant order that routing relies on.
inline constexpr std::size_t kGossipKindCount = 4;
static_assert(std::is_same_v<std::variant_alternative_t<0, Message>, ProposeMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<1, Message>, RequestMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<2, Message>, ServeMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<3, Message>, AckMsg>);

/// First variant index of the §5.3 audit kinds (audit_request,
/// audit_history, history_poll, history_poll_resp) — the contiguous block
/// the reliable-UDP audit channel reprices and retries. AuditAckMsg sits
/// after the block: it is channel machinery, not an audited RPC.
inline constexpr std::size_t kAuditKindFirst = 12;
inline constexpr std::size_t kAuditKindCount = 4;
static_assert(std::is_same_v<std::variant_alternative_t<12, Message>,
                             AuditRequestMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<15, Message>,
                             HistoryPollRespMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<16, Message>,
                             AuditAckMsg>);

/// The RPS shuffle sits after the audit block: substrate traffic, neither
/// a gossip kind (engine routing) nor an audited RPC (retry channel).
static_assert(std::is_same_v<std::variant_alternative_t<17, Message>,
                             RpsShuffleMsg>);

/// Modeled wire size in bytes, including a per-datagram IP+UDP header
/// (28 B) or amortized TCP framing (40 B). Field sizes: node id 4 B,
/// chunk id 8 B, period 4 B, count 2 B, score 8 B, flag/tag 1 B.
[[nodiscard]] std::size_t wire_size(const Message& msg);

/// Exact datagram size model: IP+UDP header (28 B) plus the precise
/// net::codec payload length of `msg` (plus any zero-filled serve payload).
/// Used to price the audit kinds when they travel as real datagrams
/// (reliable-UDP audit channel) instead of a modeled TCP stream — with it,
/// measured wire bytes exceed modeled bytes by exactly the 6 B/datagram
/// loopback frame header for every kind.
[[nodiscard]] std::size_t datagram_wire_size(const Message& msg);

/// Short name of the message alternative (metrics keys).
[[nodiscard]] const char* message_kind(const Message& msg);

/// Same names, addressed by variant index (per-kind stat tables that have
/// no Message instance at hand, e.g. UdpTransport::wire_stats). Returns
/// "unknown" for an out-of-range index.
[[nodiscard]] const char* message_kind_name(std::size_t index);

}  // namespace lifting::gossip

#endif  // LIFTING_GOSSIP_MESSAGE_HPP

#include "gossip/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "membership/rps.hpp"
#include "membership/sampler.hpp"
#include "obs/trace.hpp"

namespace lifting::gossip {

Engine::Engine(sim::Simulator& sim, Mailer& mailer,
               membership::Directory& directory, NodeId self,
               GossipParams params, BehaviorSpec behavior, Pcg32 rng,
               EngineObserver* observer)
    : sim_(sim),
      mailer_(mailer),
      directory_(directory),
      self_(self),
      params_(params),
      behavior_(behavior),
      rng_(rng),
      observer_(observer) {
  require(params_.fanout >= 1, "fanout must be >= 1");
  require(params_.period > Duration::zero(), "gossip period must be positive");
  if (behavior_.collusion.has_value()) {
    require(behavior_.collusion->bias_pm >= 0.0 &&
                behavior_.collusion->bias_pm <= 1.0,
            "bias p_m must be in [0,1]");
  }
}

void Engine::set_behavior(BehaviorSpec behavior) {
  if (behavior.collusion.has_value()) {
    require(behavior.collusion->bias_pm >= 0.0 &&
                behavior.collusion->bias_pm <= 1.0,
            "bias p_m must be in [0,1]");
  }
  behavior_ = std::move(behavior);
}

void Engine::start(Duration initial_offset) {
  LIFTING_ASSERT(!running_, "engine started twice");
  running_ = true;
  sim_.schedule_after(initial_offset, [this] { propose_phase(); });
}

void Engine::schedule_next_phase() {
  // Attack (iv), §4.1: a freerider stretches its gossip period, proposing
  // less frequently (and therefore staler, less interesting chunks).
  const double factor = 1.0 + behavior_.period_stretch;
  const auto delay = Duration{static_cast<Duration::rep>(
      static_cast<double>(params_.period.count()) * factor)};
  sim_.schedule_after(delay, [this] { propose_phase(); });
}

void Engine::add_chunk(ChunkId id, std::uint32_t payload_bytes) {
  LIFTING_ASSERT(payload_bytes != kNotHeld, "unrepresentable payload size");
  // The delivery log's presence bit doubles as the held-set; payload sizes
  // collapse to the first-seen default (CBR streams emit constant-size
  // chunks) plus an exception list for odd-sized ones. The exception list
  // is never pruned — it stays empty on every in-tree stream shape.
  if (default_payload_ == kNotHeld) {
    default_payload_ = payload_bytes;
  } else if (payload_bytes != default_payload_) {
    payload_exceptions_.emplace_back(id, payload_bytes);
  }
  delivery_log_.record(id, sim_.now());
}

void Engine::inject_chunk(const ChunkMeta& chunk) {
  if (has_chunk(chunk.id)) return;
  add_chunk(chunk.id, chunk.payload_bytes);
  fresh_.push_back(FreshChunk{chunk.id, self_, /*has_origin=*/false,
                              chunk.payload_bytes});
}

void Engine::handle(NodeId from, const Message& message) {
  // Honest nodes ignore traffic from expelled nodes; freeriders have no
  // incentive to talk to them either (expelled nodes cannot reciprocate).
  // Under divergent views (DESIGN.md §7) the test is what *this* node
  // currently believes: a joiner it has not yet learned of is ignored too.
  if (!directory_.sees(self_, from, sim_.now())) return;
  if (const auto* propose = std::get_if<ProposeMsg>(&message)) {
    handle_propose(from, *propose);
  } else if (const auto* request = std::get_if<RequestMsg>(&message)) {
    handle_request(from, *request);
  } else if (const auto* serve = std::get_if<ServeMsg>(&message)) {
    handle_serve(from, *serve);
  } else if (const auto* ack = std::get_if<AckMsg>(&message)) {
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kAckReceived, self_, from, ack->period,
                     0.0, 0, static_cast<std::uint16_t>(ack->partners.size()));
    }
    if (observer_ != nullptr) observer_->on_ack_received(from, *ack);
  } else {
    LIFTING_ASSERT(false, "non-gossip message routed to Engine");
  }
}

void Engine::handle_propose(NodeId from, const ProposeMsg& msg) {
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kProposeReceived, self_, from, msg.period,
                   0.0, 0, static_cast<std::uint16_t>(msg.chunks.size()));
  }
  if (observer_ != nullptr) {
    observer_->on_propose_received(from, msg.period, msg.chunks);
  }
  // Request phase: ask for the proposed chunks we neither hold nor have
  // already requested from another proposer (re-requestable after timeout).
  ChunkIdList needed;
  needed.reserve(msg.chunks.size());
  const TimePoint now = sim_.now();
  for (const auto chunk : msg.chunks) {
    if (has_chunk(chunk)) continue;
    if (pending_deadline(chunk) > now) continue;
    needed.push_back(chunk);
  }
  if (needed.empty()) return;
  // Balance requests across proposers: take at most the cap from this
  // proposal and leave the rest to the other ~f proposals arriving this
  // period. Oldest chunks first — they have the fewest remaining
  // propose opportunities under infect-and-die, so greedy aging avoids
  // starvation (the rarest-first principle of swarming systems).
  if (params_.max_request_per_proposal > 0 &&
      needed.size() > params_.max_request_per_proposal) {
    const auto cap = static_cast<std::ptrdiff_t>(params_.max_request_per_proposal);
    std::nth_element(needed.begin(), needed.begin() + cap, needed.end());
    needed.resize(params_.max_request_per_proposal);
    std::sort(needed.begin(), needed.end());
  }
  for (const auto chunk : needed) {
    set_pending(chunk, now + params_.request_timeout);
  }
  ++stats_.requests_sent;
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kRequestSent, self_, from, msg.period,
                   0.0, 0, static_cast<std::uint16_t>(needed.size()));
  }
  if (observer_ != nullptr) {
    observer_->on_request_sent(from, msg.period, needed);
  }
  mailer_.send(self_, from, sim::Channel::kDatagram,
               RequestMsg{msg.period, needed});
}

void Engine::handle_request(NodeId from, const RequestMsg& msg) {
  // Serve only chunks that were effectively proposed to this requester in
  // this period (§3: invalid requests are ignored). Records are indexed by
  // period (one per propose phase, newest last), so the lookup scans a
  // handful of records from the most recent backwards.
  SentProposal* match = nullptr;
  for (std::size_t i = sent_proposals_.size(); i-- > 0;) {
    SentProposal& rec = sent_proposals_[i];
    if (rec.period < msg.period) break;
    if (rec.period == msg.period) {
      if (std::find(rec.partners.begin(), rec.partners.end(), from) !=
          rec.partners.end()) {
        match = &rec;
      }
      break;
    }
  }
  if (match == nullptr) {
    ++stats_.invalid_requests;
    return;
  }
  if (std::find(match->served.begin(), match->served.end(), from) !=
      match->served.end()) {
    // Transport-duplicated request: the batch already went out. Serving
    // again would waste uplink and (for partial-serve behaviors) draw rng
    // on a duplicate arrival.
    ++stats_.duplicate_requests;
    return;
  }
  ChunkIdList valid;
  for (const auto chunk : msg.chunks) {
    if (std::find(match->chunks.begin(), match->chunks.end(), chunk) !=
        match->chunks.end()) {
      valid.push_back(chunk);
    }
  }
  if (valid.empty()) return;
  match->served.push_back(from);

  // Attack: partial serve — serve only (1-δ3)·|R| of the valid request.
  std::size_t serve_count = valid.size();
  if (behavior_.delta_serve > 0.0) {
    serve_count = std::min<std::size_t>(
        valid.size(),
        round_randomized(rng_, (1.0 - behavior_.delta_serve) *
                                   static_cast<double>(valid.size())));
    rng_.shuffle(valid);
  }
  ChunkIdList served(valid.begin(),
                     valid.begin() + static_cast<std::ptrdiff_t>(serve_count));

  const NodeId ack_target = choose_ack_target();
  for (const auto chunk : served) {
    const std::uint32_t payload_bytes = held_payload_bytes(chunk);
    LIFTING_ASSERT(payload_bytes != kNotHeld, "proposed a chunk we do not hold");
    mailer_.send(self_, from, sim::Channel::kDatagram,
                 ServeMsg{msg.period, chunk, payload_bytes, ack_target});
  }
  stats_.chunks_served += served.size();
  if (trace_ != nullptr && !served.empty()) {
    trace_->record(obs::EventKind::kChunksServed, self_, from, msg.period,
                   0.0, 0, static_cast<std::uint16_t>(served.size()));
  }
  if (observer_ != nullptr && !served.empty()) {
    observer_->on_chunks_served(from, msg.period, served);
  }
}

NodeId Engine::choose_ack_target() {
  // MITM (§5.2, Fig. 8b): route the receiver's acknowledgment to a live
  // coalition member so the verification trail bypasses us.
  if (behavior_.collusion.has_value() && behavior_.collusion->mitm) {
    std::vector<NodeId> live;
    for (const auto id : behavior_.collusion->coalition) {
      if (id != self_ && directory_.is_live(id)) live.push_back(id);
    }
    if (!live.empty()) {
      return live[rng_.below(static_cast<std::uint32_t>(live.size()))];
    }
  }
  return self_;
}

void Engine::handle_serve(NodeId from, const ServeMsg& msg) {
  if (has_chunk(msg.chunk)) {
    ++stats_.duplicate_serves;
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kServeReceived, self_, from,
                     msg.chunk.value(), 0.0, /*detail=*/1);
    }
    return;
  }
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kServeReceived, self_, from,
                   msg.chunk.value());
  }
  add_chunk(msg.chunk, msg.payload_bytes);
  clear_pending(msg.chunk);
  fresh_.push_back(
      FreshChunk{msg.chunk, msg.ack_to, /*has_origin=*/true,
                 msg.payload_bytes});
  ++stats_.chunks_received;
  if (observer_ != nullptr) {
    observer_->on_serve_received(from, msg.ack_to, msg.period, msg.chunk);
  }
}

void Engine::pick_partners_into(std::size_t count, std::vector<NodeId>& out) {
  if (behavior_.collusion.has_value() && behavior_.collusion->bias_pm > 0.0) {
    // Colluding freeriders coordinate out of band, so their biased
    // selection keeps the shared view (the coalition always knows who of
    // its own is up); only honest selection diverges under view lag.
    // (Allocating is fine here — the zero-allocation steady state is the
    // honest path's contract.)
    const auto partners = membership::sample_biased(
        rng_, directory_, self_, count, behavior_.collusion->coalition,
        behavior_.collusion->bias_pm);
    out.assign(partners.begin(), partners.end());
    return;
  }
  if (rps_view_ != nullptr) {
    // RPS-driven selection (DESIGN.md §12): the candidate pool is this
    // node's partial view, filtered through its membership view (a partner
    // the node has not yet heard departed stays selectable — same wrongful
    // blame window as the directory path). Partial Fisher-Yates over the
    // pool; falls back to the directory below only when the view is empty
    // (a freshly-joined node before its first shuffle round).
    rps_pool_scratch_.clear();
    for (const auto id : rps_view_->view_of(self_)) {
      if (directory_.sees(self_, id, sim_.now())) rps_pool_scratch_.push_back(id);
    }
    if (!rps_pool_scratch_.empty()) {
      auto& pool = rps_pool_scratch_;
      const std::size_t take = std::min(count, pool.size());
      out.clear();
      for (std::size_t i = 0; i < take; ++i) {
        const auto j = i + rng_.below(static_cast<std::uint32_t>(
                               pool.size() - i));
        std::swap(pool[i], pool[j]);
        out.push_back(pool[i]);
      }
      return;
    }
  }
  // View-aware: with a membership-propagation lag this node may still
  // select a recently-departed partner (wrongful blame follows when the
  // silence is verified) and cannot yet select joiners it has not heard
  // of. Identical to sample_uniform when the view model is off.
  membership::sample_view_into(rng_, directory_, self_, count, sim_.now(),
                               sample_index_scratch_, out);
}

void Engine::set_pending(ChunkId id, TimePoint until) {
  // One pass: refresh the chunk's entry if present and sweep out expired
  // deadlines (they already answer "re-requestable", dropping them changes
  // no observable outcome). The list stays at ~|P| live entries.
  const TimePoint now = sim_.now();
  std::size_t keep = 0;
  bool updated = false;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingRequest p = pending_[i];
    if (p.chunk == id) {
      p.until = until;
      updated = true;
    } else if (p.until <= now) {
      continue;
    }
    pending_[keep++] = p;
  }
  pending_.resize(keep);
  if (!updated) pending_.push_back(PendingRequest{id, until});
}

void Engine::clear_pending(ChunkId id) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].chunk == id) {
      pending_[i] = pending_.back();
      pending_.pop_back();
      return;
    }
  }
}

void Engine::propose_phase() {
  if (!running_) return;
  ++period_;
  prune_sent_proposals();

  // Collect the chunks received since the last propose phase; infect-and-die
  // means each chunk is proposed in exactly one phase (§3). The swap with a
  // member scratch keeps both buffers' capacity across periods.
  fresh_scratch_.clear();
  fresh_scratch_.swap(fresh_);
  const RecycledVector<FreshChunk>& fresh = fresh_scratch_;

  if (!fresh.empty()) {
    // Attack: partial propose — drop the chunks received from a fraction δ2
    // of this period's servers (whole servers: the blame-minimizing choice,
    // §6.3.1 footnote). The dropped set is the shuffled prefix of the
    // server scratch; membership tests scan that prefix.
    std::size_t dropped_count = 0;
    servers_scratch_.clear();
    if (behavior_.delta_propose > 0.0) {
      RecycledVector<NodeId>& servers = servers_scratch_;
      for (const auto& c : fresh) {
        if (c.has_origin &&
            std::find(servers.begin(), servers.end(), c.ack_to) ==
                servers.end()) {
          servers.push_back(c.ack_to);
        }
      }
      dropped_count = std::min<std::size_t>(
          servers.size(),
          round_randomized(rng_, behavior_.delta_propose *
                                     static_cast<double>(servers.size())));
      rng_.shuffle(servers);
    }
    const auto dropped_end =
        servers_scratch_.begin() + static_cast<std::ptrdiff_t>(dropped_count);
    const auto is_dropped = [&](NodeId id) {
      return std::find(servers_scratch_.begin(), dropped_end, id) !=
             dropped_end;
    };

    ChunkIdList proposal;
    proposal.reserve(fresh.size());
    for (const auto& c : fresh) {
      if (c.has_origin && is_dropped(c.ack_to)) continue;
      proposal.push_back(c.id);
    }

    {
      // Attack: fanout decrease — contact only (1-δ1)·f partners.
      std::size_t fanout = params_.fanout;
      if (behavior_.delta_fanout > 0.0) {
        fanout = std::min<std::size_t>(
            fanout, round_randomized(
                        rng_, (1.0 - behavior_.delta_fanout) *
                                  static_cast<double>(params_.fanout)));
      }
      pick_partners_into(fanout, partners_scratch_);
      const std::vector<NodeId>& partners = partners_scratch_;
      if (!proposal.empty()) {
        SentProposal& rec = sent_proposals_.push_slot();
        rec.period = period_;
        rec.at = sim_.now();
        rec.chunks.assign(proposal.begin(), proposal.end());
        rec.partners.assign(partners.begin(), partners.end());
        rec.served.clear();  // recycled slot: forget the old period's serves
        for (const auto partner : partners) {
          mailer_.send(self_, partner, sim::Channel::kDatagram,
                       ProposeMsg{period_, proposal});
        }
        ++stats_.proposals_sent;
        if (trace_ != nullptr) {
          trace_->record(obs::EventKind::kProposeSent, self_, self_, period_,
                         0.0,
                         static_cast<std::uint8_t>(partners.size()),
                         static_cast<std::uint16_t>(proposal.size()));
        }
      }

      // Cross-checking ack: what we *claim* our partner set was. A MITM
      // freerider claims coalition members so the verifier's confirms land
      // on nodes that cover for it.
      claimed_scratch_.assign(partners.begin(), partners.end());
      std::vector<NodeId>& claimed = claimed_scratch_;
      if (behavior_.collusion.has_value() && behavior_.collusion->mitm) {
        claimed.clear();
        std::vector<NodeId> live;
        for (const auto id : behavior_.collusion->coalition) {
          if (id != self_ && directory_.is_live(id)) live.push_back(id);
        }
        rng_.shuffle(live);
        for (std::size_t i = 0; i < params_.fanout && i < live.size(); ++i) {
          claimed.push_back(live[i]);
        }
        // Build the fake F'_h trail (Fig. 8b): a coalition member sends
        // confirm requests about us to our real partners, so their
        // asker records point into the coalition instead of at our servers.
        if (!live.empty() && !proposal.empty()) {
          for (const auto partner : partners) {
            const NodeId colluder =
                live[rng_.below(static_cast<std::uint32_t>(live.size()))];
            if (colluder == partner) continue;  // biased selection can pick
                                                // coalition partners
            mailer_.send(colluder, partner, sim::Channel::kDatagram,
                         ConfirmReqMsg{self_, period_, proposal});
          }
        }
      }

      send_acks(period_, fresh, claimed);
      if (observer_ != nullptr) {
        observer_->on_proposal_sent(period_, claimed, partners, proposal);
      }
    }
  }

  schedule_next_phase();
}

void Engine::send_acks(PeriodIndex period,
                       const RecycledVector<FreshChunk>& fresh,
                       const std::vector<NodeId>& claimed_partners) {
  if (!params_.emit_acks) return;
  // Group the served chunks by acknowledgment target. A freerider's ack
  // always claims every served chunk was proposed — openly admitting a drop
  // (δ2) would be self-incriminating; the lie is only caught by the
  // witnesses' contradictory testimonies (§5.2).
  //
  // Grouping sorts (target, seq, chunk) rows in a reusable scratch
  // buffer: acks go out in ascending target-id order with each one's
  // chunks in receive order (the seq ties the sort to append order — a
  // total order, so plain std::sort reproduces what a stable sort by
  // target alone would, without stable_sort's temporary buffer) and the
  // period's last heap allocation is gone — the hash map this replaces
  // allocated per phase *and* iterated in stdlib-dependent order.
  ack_scratch_.clear();
  const TimePoint ack_now = sim_.now();
  for (const auto& c : fresh) {
    if (!c.has_origin) continue;  // source-injected: nobody to acknowledge
    // View-aware liveness: a laggard keeps acking a server it believes
    // alive (the datagram vanishes at the dead endpoint).
    if (c.ack_to == self_ || !directory_.sees(self_, c.ack_to, ack_now)) {
      continue;
    }
    ack_scratch_.push_back(
        {c.ack_to, static_cast<std::uint32_t>(ack_scratch_.size()), c.id});
  }
  std::sort(ack_scratch_.begin(), ack_scratch_.end(),
            [](const AckRow& a, const AckRow& b) {
              if (a.target != b.target) return a.target < b.target;
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < ack_scratch_.size();) {
    AckMsg ack;
    ack.period = period;
    const NodeId target = ack_scratch_[i].target;
    for (; i < ack_scratch_.size() && ack_scratch_[i].target == target; ++i) {
      ack.chunks.push_back(ack_scratch_[i].chunk);
    }
    ack.partners.assign(claimed_partners.begin(), claimed_partners.end());
    mailer_.send(self_, target, sim::Channel::kDatagram, std::move(ack));
  }
}

void Engine::prune_sent_proposals() {
  const auto horizon =
      params_.period * params_.proposal_retention_periods;
  const TimePoint cutoff =
      sim_.now() - std::min(sim_.now().time_since_epoch(), horizon);
  while (!sent_proposals_.empty() && sent_proposals_.front().at < cutoff) {
    sent_proposals_.pop_front();
  }
}

}  // namespace lifting::gossip

#include "gossip/engine.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "membership/sampler.hpp"

namespace lifting::gossip {

Engine::Engine(sim::Simulator& sim, Mailer& mailer,
               membership::Directory& directory, NodeId self,
               GossipParams params, BehaviorSpec behavior, Pcg32 rng,
               EngineObserver* observer)
    : sim_(sim),
      mailer_(mailer),
      directory_(directory),
      self_(self),
      params_(params),
      behavior_(behavior),
      rng_(rng),
      observer_(observer) {
  require(params_.fanout >= 1, "fanout must be >= 1");
  require(params_.period > Duration::zero(), "gossip period must be positive");
  if (behavior_.collusion.has_value()) {
    require(behavior_.collusion->bias_pm >= 0.0 &&
                behavior_.collusion->bias_pm <= 1.0,
            "bias p_m must be in [0,1]");
  }
}

void Engine::set_behavior(BehaviorSpec behavior) {
  if (behavior.collusion.has_value()) {
    require(behavior.collusion->bias_pm >= 0.0 &&
                behavior.collusion->bias_pm <= 1.0,
            "bias p_m must be in [0,1]");
  }
  behavior_ = std::move(behavior);
}

void Engine::start(Duration initial_offset) {
  LIFTING_ASSERT(!running_, "engine started twice");
  running_ = true;
  sim_.schedule_after(initial_offset, [this] { propose_phase(); });
}

void Engine::schedule_next_phase() {
  // Attack (iv), §4.1: a freerider stretches its gossip period, proposing
  // less frequently (and therefore staler, less interesting chunks).
  const double factor = 1.0 + behavior_.period_stretch;
  const auto delay = Duration{static_cast<Duration::rep>(
      static_cast<double>(params_.period.count()) * factor)};
  sim_.schedule_after(delay, [this] { propose_phase(); });
}

void Engine::add_chunk(ChunkId id, std::uint32_t payload_bytes) {
  LIFTING_ASSERT(payload_bytes != kNotHeld, "unrepresentable payload size");
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= held_bytes_.size()) held_bytes_.resize(v + 1, kNotHeld);
  held_bytes_[v] = payload_bytes;
  delivery_log_.record(id, sim_.now());
}

void Engine::inject_chunk(const ChunkMeta& chunk) {
  if (has_chunk(chunk.id)) return;
  add_chunk(chunk.id, chunk.payload_bytes);
  fresh_.push_back(FreshChunk{chunk.id, self_, /*has_origin=*/false,
                              chunk.payload_bytes});
}

void Engine::handle(NodeId from, const Message& message) {
  // Honest nodes ignore traffic from expelled nodes; freeriders have no
  // incentive to talk to them either (expelled nodes cannot reciprocate).
  // Under divergent views (DESIGN.md §7) the test is what *this* node
  // currently believes: a joiner it has not yet learned of is ignored too.
  if (!directory_.sees(self_, from, sim_.now())) return;
  if (const auto* propose = std::get_if<ProposeMsg>(&message)) {
    handle_propose(from, *propose);
  } else if (const auto* request = std::get_if<RequestMsg>(&message)) {
    handle_request(from, *request);
  } else if (const auto* serve = std::get_if<ServeMsg>(&message)) {
    handle_serve(from, *serve);
  } else if (const auto* ack = std::get_if<AckMsg>(&message)) {
    if (observer_ != nullptr) observer_->on_ack_received(from, *ack);
  } else {
    LIFTING_ASSERT(false, "non-gossip message routed to Engine");
  }
}

void Engine::handle_propose(NodeId from, const ProposeMsg& msg) {
  if (observer_ != nullptr) {
    observer_->on_propose_received(from, msg.period, msg.chunks);
  }
  // Request phase: ask for the proposed chunks we neither hold nor have
  // already requested from another proposer (re-requestable after timeout).
  ChunkIdList needed;
  needed.reserve(msg.chunks.size());
  const TimePoint now = sim_.now();
  for (const auto chunk : msg.chunks) {
    if (has_chunk(chunk)) continue;
    if (pending_deadline(chunk) > now) continue;
    needed.push_back(chunk);
  }
  if (needed.empty()) return;
  // Balance requests across proposers: take at most the cap from this
  // proposal and leave the rest to the other ~f proposals arriving this
  // period. Oldest chunks first — they have the fewest remaining
  // propose opportunities under infect-and-die, so greedy aging avoids
  // starvation (the rarest-first principle of swarming systems).
  if (params_.max_request_per_proposal > 0 &&
      needed.size() > params_.max_request_per_proposal) {
    const auto cap = static_cast<std::ptrdiff_t>(params_.max_request_per_proposal);
    std::nth_element(needed.begin(), needed.begin() + cap, needed.end());
    needed.resize(params_.max_request_per_proposal);
    std::sort(needed.begin(), needed.end());
  }
  for (const auto chunk : needed) {
    const auto v = static_cast<std::size_t>(chunk.value());
    if (v >= pending_until_.size()) {
      pending_until_.resize(v + 1, TimePoint::min());
    }
    pending_until_[v] = now + params_.request_timeout;
  }
  ++stats_.requests_sent;
  if (observer_ != nullptr) {
    observer_->on_request_sent(from, msg.period, needed);
  }
  mailer_.send(self_, from, sim::Channel::kDatagram,
               RequestMsg{msg.period, needed});
}

void Engine::handle_request(NodeId from, const RequestMsg& msg) {
  // Serve only chunks that were effectively proposed to this requester in
  // this period (§3: invalid requests are ignored). Records are indexed by
  // period (one per propose phase, newest last), so the lookup scans a
  // handful of records from the most recent backwards.
  const SentProposal* match = nullptr;
  for (auto it = sent_proposals_.rbegin(); it != sent_proposals_.rend(); ++it) {
    if (it->period < msg.period) break;
    if (it->period == msg.period) {
      if (std::find(it->partners.begin(), it->partners.end(), from) !=
          it->partners.end()) {
        match = &*it;
      }
      break;
    }
  }
  if (match == nullptr) {
    ++stats_.invalid_requests;
    return;
  }
  ChunkIdList valid;
  for (const auto chunk : msg.chunks) {
    if (std::find(match->chunks.begin(), match->chunks.end(), chunk) !=
        match->chunks.end()) {
      valid.push_back(chunk);
    }
  }
  if (valid.empty()) return;

  // Attack: partial serve — serve only (1-δ3)·|R| of the valid request.
  std::size_t serve_count = valid.size();
  if (behavior_.delta_serve > 0.0) {
    serve_count = std::min<std::size_t>(
        valid.size(),
        round_randomized(rng_, (1.0 - behavior_.delta_serve) *
                                   static_cast<double>(valid.size())));
    rng_.shuffle(valid);
  }
  ChunkIdList served(valid.begin(),
                     valid.begin() + static_cast<std::ptrdiff_t>(serve_count));

  const NodeId ack_target = choose_ack_target();
  for (const auto chunk : served) {
    const std::uint32_t payload_bytes = held_payload_bytes(chunk);
    LIFTING_ASSERT(payload_bytes != kNotHeld, "proposed a chunk we do not hold");
    mailer_.send(self_, from, sim::Channel::kDatagram,
                 ServeMsg{msg.period, chunk, payload_bytes, ack_target});
  }
  stats_.chunks_served += served.size();
  if (observer_ != nullptr && !served.empty()) {
    observer_->on_chunks_served(from, msg.period, served);
  }
}

NodeId Engine::choose_ack_target() {
  // MITM (§5.2, Fig. 8b): route the receiver's acknowledgment to a live
  // coalition member so the verification trail bypasses us.
  if (behavior_.collusion.has_value() && behavior_.collusion->mitm) {
    std::vector<NodeId> live;
    for (const auto id : behavior_.collusion->coalition) {
      if (id != self_ && directory_.is_live(id)) live.push_back(id);
    }
    if (!live.empty()) {
      return live[rng_.below(static_cast<std::uint32_t>(live.size()))];
    }
  }
  return self_;
}

void Engine::handle_serve(NodeId from, const ServeMsg& msg) {
  if (has_chunk(msg.chunk)) {
    ++stats_.duplicate_serves;
    return;
  }
  add_chunk(msg.chunk, msg.payload_bytes);
  const auto v = static_cast<std::size_t>(msg.chunk.value());
  if (v < pending_until_.size()) pending_until_[v] = TimePoint::min();
  fresh_.push_back(
      FreshChunk{msg.chunk, msg.ack_to, /*has_origin=*/true,
                 msg.payload_bytes});
  ++stats_.chunks_received;
  if (observer_ != nullptr) {
    observer_->on_serve_received(from, msg.ack_to, msg.period, msg.chunk);
  }
}

std::vector<NodeId> Engine::pick_partners(std::size_t count) {
  if (behavior_.collusion.has_value() && behavior_.collusion->bias_pm > 0.0) {
    // Colluding freeriders coordinate out of band, so their biased
    // selection keeps the shared view (the coalition always knows who of
    // its own is up); only honest selection diverges under view lag.
    return membership::sample_biased(rng_, directory_, self_, count,
                                     behavior_.collusion->coalition,
                                     behavior_.collusion->bias_pm);
  }
  // View-aware: with a membership-propagation lag this node may still
  // select a recently-departed partner (wrongful blame follows when the
  // silence is verified) and cannot yet select joiners it has not heard
  // of. Identical to sample_uniform when the view model is off.
  return membership::sample_view(rng_, directory_, self_, count, sim_.now());
}

void Engine::propose_phase() {
  if (!running_) return;
  ++period_;
  prune_sent_proposals();

  // Collect the chunks received since the last propose phase; infect-and-die
  // means each chunk is proposed in exactly one phase (§3).
  std::vector<FreshChunk> fresh;
  fresh.swap(fresh_);

  if (!fresh.empty()) {
    // Attack: partial propose — drop the chunks received from a fraction δ2
    // of this period's servers (whole servers: the blame-minimizing choice,
    // §6.3.1 footnote).
    std::unordered_set<NodeId> dropped_servers;
    if (behavior_.delta_propose > 0.0) {
      std::vector<NodeId> servers;
      for (const auto& c : fresh) {
        if (c.has_origin &&
            std::find(servers.begin(), servers.end(), c.ack_to) ==
                servers.end()) {
          servers.push_back(c.ack_to);
        }
      }
      const auto drop_count = std::min<std::size_t>(
          servers.size(),
          round_randomized(rng_, behavior_.delta_propose *
                                     static_cast<double>(servers.size())));
      rng_.shuffle(servers);
      dropped_servers.insert(servers.begin(),
                             servers.begin() +
                                 static_cast<std::ptrdiff_t>(drop_count));
    }

    ChunkIdList proposal;
    proposal.reserve(fresh.size());
    for (const auto& c : fresh) {
      if (c.has_origin && dropped_servers.contains(c.ack_to)) continue;
      proposal.push_back(c.id);
    }

    {
      // Attack: fanout decrease — contact only (1-δ1)·f partners.
      std::size_t fanout = params_.fanout;
      if (behavior_.delta_fanout > 0.0) {
        fanout = std::min<std::size_t>(
            fanout, round_randomized(
                        rng_, (1.0 - behavior_.delta_fanout) *
                                  static_cast<double>(params_.fanout)));
      }
      const auto partners = pick_partners(fanout);
      if (!proposal.empty()) {
        sent_proposals_.push_back(
            SentProposal{period_, sim_.now(), proposal, partners});
        for (const auto partner : partners) {
          mailer_.send(self_, partner, sim::Channel::kDatagram,
                       ProposeMsg{period_, proposal});
        }
        ++stats_.proposals_sent;
      }

      // Cross-checking ack: what we *claim* our partner set was. A MITM
      // freerider claims coalition members so the verifier's confirms land
      // on nodes that cover for it.
      std::vector<NodeId> claimed = partners;
      if (behavior_.collusion.has_value() && behavior_.collusion->mitm) {
        claimed.clear();
        std::vector<NodeId> live;
        for (const auto id : behavior_.collusion->coalition) {
          if (id != self_ && directory_.is_live(id)) live.push_back(id);
        }
        rng_.shuffle(live);
        for (std::size_t i = 0; i < params_.fanout && i < live.size(); ++i) {
          claimed.push_back(live[i]);
        }
        // Build the fake F'_h trail (Fig. 8b): a coalition member sends
        // confirm requests about us to our real partners, so their
        // asker records point into the coalition instead of at our servers.
        if (!live.empty() && !proposal.empty()) {
          for (const auto partner : partners) {
            const NodeId colluder =
                live[rng_.below(static_cast<std::uint32_t>(live.size()))];
            if (colluder == partner) continue;  // biased selection can pick
                                                // coalition partners
            mailer_.send(colluder, partner, sim::Channel::kDatagram,
                         ConfirmReqMsg{self_, period_, proposal});
          }
        }
      }

      send_acks(period_, fresh, claimed);
      if (observer_ != nullptr) {
        observer_->on_proposal_sent(period_, claimed, partners, proposal);
      }
    }
  }

  schedule_next_phase();
}

void Engine::send_acks(PeriodIndex period, const std::vector<FreshChunk>& fresh,
                       const std::vector<NodeId>& claimed_partners) {
  if (!params_.emit_acks) return;
  // Group the served chunks by acknowledgment target. A freerider's ack
  // always claims every served chunk was proposed — openly admitting a drop
  // (δ2) would be self-incriminating; the lie is only caught by the
  // witnesses' contradictory testimonies (§5.2).
  //
  // Grouping is a stable sort of (target, chunk) pairs in a reusable
  // scratch buffer: acks go out in ascending target-id order (each one's
  // chunks in receive order) and the period's last heap allocation is gone
  // — the hash map this replaces allocated per phase *and* iterated in
  // stdlib-dependent order.
  ack_scratch_.clear();
  const TimePoint ack_now = sim_.now();
  for (const auto& c : fresh) {
    if (!c.has_origin) continue;  // source-injected: nobody to acknowledge
    // View-aware liveness: a laggard keeps acking a server it believes
    // alive (the datagram vanishes at the dead endpoint).
    if (c.ack_to == self_ || !directory_.sees(self_, c.ack_to, ack_now)) {
      continue;
    }
    ack_scratch_.emplace_back(c.ack_to, c.id);
  }
  std::stable_sort(ack_scratch_.begin(), ack_scratch_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < ack_scratch_.size();) {
    AckMsg ack;
    ack.period = period;
    const NodeId target = ack_scratch_[i].first;
    for (; i < ack_scratch_.size() && ack_scratch_[i].first == target; ++i) {
      ack.chunks.push_back(ack_scratch_[i].second);
    }
    ack.partners.assign(claimed_partners.begin(), claimed_partners.end());
    mailer_.send(self_, target, sim::Channel::kDatagram, std::move(ack));
  }
}

void Engine::prune_sent_proposals() {
  const auto horizon =
      params_.period * params_.proposal_retention_periods;
  const TimePoint cutoff =
      sim_.now() - std::min(sim_.now().time_since_epoch(), horizon);
  while (!sent_proposals_.empty() && sent_proposals_.front().at < cutoff) {
    sent_proposals_.pop_front();
  }
}

}  // namespace lifting::gossip

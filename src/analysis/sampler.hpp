#ifndef LIFTING_ANALYSIS_SAMPLER_HPP
#define LIFTING_ANALYSIS_SAMPLER_HPP

#include <cstdint>

#include "analysis/formulas.hpp"
#include "common/rng.hpp"

/// Protocol-faithful Monte-Carlo sampler of the per-period blame applied to
/// a node, under the §6 model assumptions (every node receives chunks each
/// period, requests a constant |R| per proposal, in-degree ≈ Poisson(f)).
///
/// The paper's §6 figures (10, 11, 12) are themselves simulations of this
/// model at n = 10,000 — packet-level runs at that scale are unnecessary
/// and the model is cross-validated against the full simulator in the test
/// suite at smaller n (see DESIGN.md, substitutions).

namespace lifting::analysis {

class BlameSampler {
 public:
  explicit BlameSampler(ProtocolModel model) : model_(model) {}

  /// One period's blame for an honest node (wrongful blames only).
  [[nodiscard]] double sample_honest(Pcg32& rng) const {
    return sample_period(rng, FreeriderDegree{});
  }

  /// One period's blame for a freerider of degree Δ (includes both earned
  /// and wrongful blames — they are indistinguishable to the managers).
  [[nodiscard]] double sample_period(Pcg32& rng,
                                     const FreeriderDegree& d) const;

  /// Normalized, compensated score after r periods (§6.3.1, Eq. 6):
  ///   s = -(1/r)·Σ_i (b_i - b̃)
  /// with b̃ the honest expectation used for compensation.
  [[nodiscard]] double sample_score(Pcg32& rng, const FreeriderDegree& d,
                                    std::uint32_t r) const;

  [[nodiscard]] const ProtocolModel& model() const noexcept { return model_; }

 private:
  ProtocolModel model_;
};

/// Empirical detection/false-positive rates at threshold eta over `trials`
/// sampled nodes of each class after r periods (Fig. 12's data).
struct DetectionEstimate {
  double detection = 0.0;       // α: fraction of freeriders with s < η
  double false_positive = 0.0;  // β: fraction of honest nodes with s < η
};
[[nodiscard]] DetectionEstimate estimate_detection(
    const BlameSampler& sampler, const FreeriderDegree& d, double eta,
    std::uint32_t r, std::uint32_t trials, Pcg32& rng);

}  // namespace lifting::analysis

#endif  // LIFTING_ANALYSIS_SAMPLER_HPP

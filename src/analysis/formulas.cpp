#include "analysis/formulas.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace lifting::analysis {

namespace {

[[nodiscard]] double ipow(double base, std::uint32_t exp) {
  double out = 1.0;
  for (std::uint32_t i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace

double expected_blame_direct_verification(const ProtocolModel& m) {
  // Eq. 2: per partner, blame f when the proposal arrives but the request
  // is lost (pr(1-pr)); blame (f/|R|) per lost serve when the exchange
  // happens (pr²·|R|(1-pr)·f/|R|). Summed over the f partners:
  //   b̃_dv = f·[pr(1-pr)f + pr²(1-pr)f] = pr(1-pr²)·f².
  const double pr = m.pr();
  const double f = static_cast<double>(m.fanout);
  return pr * (1.0 - pr * pr) * f * f;
}

double expected_blame_cross_check(const ProtocolModel& m) {
  // Eq. 3, p_dcc-generalized. Per verifier (f on average), conditioned on
  // the exchange happening (pr²):
  //  (a) some serve or the ack lost (1-pr^{|R|+1}): the ack cannot cover the
  //      served chunks → blame f. Ack inspection is always on.
  //  (b) otherwise, with probability p_dcc the confirm round runs and each
  //      of the f witness chains (propose-to-witness, confirm, response)
  //      fails independently with probability 1-pr³ → blame 1 each.
  const double pr = m.pr();
  const double f = static_cast<double>(m.fanout);
  const double surviving = ipow(pr, m.request_size + 1);
  return f * pr * pr *
         ((1.0 - surviving) * f +
          m.p_dcc * surviving * f * (1.0 - ipow(pr, 3)));
}

double expected_wrongful_blame(const ProtocolModel& m) {
  // Eq. 5: b̃ = b̃_dv + b̃_dcc. At p_dcc = 1 this equals
  // pr(1+pr-pr²-pr^{|R|+5})·f² (the paper's closed form).
  return expected_blame_direct_verification(m) +
         expected_blame_cross_check(m);
}

double expected_blame_apcc(const ProtocolModel& m,
                           std::uint32_t history_periods) {
  // Eq. 4: each of the n_h·f history entries goes unconfirmed when the
  // original proposal was lost (probability 1-pr); the poll itself runs
  // over TCP and is loss-free.
  return (1.0 - m.pr()) * static_cast<double>(history_periods) *
         static_cast<double>(m.fanout);
}

double variance_blame_direct_verification(const ProtocolModel& m) {
  // Per partner X = f·1[A1] + (f/|R|)·K·1[A2], A1/A2 disjoint,
  // P(A1)=pr(1-pr), P(A2)=pr², K ~ Binomial(|R|, 1-pr).
  const double pr = m.pr();
  const double q = 1.0 - pr;
  const double f = static_cast<double>(m.fanout);
  const double R = static_cast<double>(m.request_size);
  const double a1 = pr * q;
  const double a2 = pr * pr;
  const double mean_k = R * q;
  const double mean_k2 = R * q * pr + mean_k * mean_k;
  const double e1 = a1 * f + a2 * (f / R) * mean_k;
  const double e2 = a1 * f * f + a2 * (f / R) * (f / R) * mean_k2;
  const double var_per_partner = e2 - e1 * e1;
  // The f partners' losses are independent (distinct links).
  return f * var_per_partner;
}

double variance_blame_cross_check(const ProtocolModel& m) {
  // Per verifier, conditioned on the exchange (pr²):
  //   bad ack (prob 1-pr^{|R|+1})           -> blame f
  //   else, triggered (p_dcc): Binomial(f, 1-pr³) witness failures.
  // Three variance contributions (see header): within-verifier mixture,
  // Poisson in-degree, and the shared-witness covariance across verifiers.
  const double pr = m.pr();
  const double q = 1.0 - pr;
  const double f = static_cast<double>(m.fanout);
  const double p_ex = pr * pr;
  const double p_good = ipow(pr, m.request_size + 1);
  const double w = 1.0 - ipow(pr, 3);

  const double mean_b = f * w;
  const double mean_b2 = f * w * (1.0 - w) + mean_b * mean_b;
  const double ey = p_ex * ((1.0 - p_good) * f + p_good * m.p_dcc * mean_b);
  const double ey2 =
      p_ex * ((1.0 - p_good) * f * f + p_good * m.p_dcc * mean_b2);
  const double var_y = ey2 - ey * ey;

  // In-degree V ~ Poisson(f): Var(Σ Y_v) = E[V]·Var(Y) + Var(V)·E[Y]²
  //                                      + E[V(V-1)]·Cov(Y_v, Y_v').
  // For Poisson, E[V] = Var(V) = f and E[V(V-1)] = f².
  // Cov(Y_v, Y_v') through the shared witness set: each witness w
  // contributes Cov(W_vw, W_v'w) = pr⁵(1-pr), active only when both
  // verifiers run the full confirm round (probability p_A each, with
  // p_A = p_dcc·pr^{|R|+3}).
  const double p_a = m.p_dcc * ipow(pr, m.request_size + 3);
  const double cov_pair = p_a * p_a * f * ipow(pr, 5) * q;
  return f * var_y + f * ey * ey + f * f * cov_pair;
}

double variance_wrongful_blame(const ProtocolModel& m) {
  // Cov(b_dv, b_dcc) < 0 through shared proposal-to-partner losses: a
  // partner that never received our proposal neither blames us via direct
  // verification nor can confirm as a witness (blaming us 1 via every
  // verifier's confirm round):
  //   Cov = -f³ · p_A · pr³ · (1-pr)² · (1+pr).
  const double pr = m.pr();
  const double q = 1.0 - pr;
  const double f = static_cast<double>(m.fanout);
  const double p_a = m.p_dcc * ipow(pr, m.request_size + 3);
  const double cov = -f * f * f * p_a * ipow(pr, 3) * q * q * (1.0 + pr);
  return variance_blame_direct_verification(m) +
         variance_blame_cross_check(m) + 2.0 * cov;
}

double expected_blame_freerider(const ProtocolModel& m,
                                const FreeriderDegree& d) {
  // This implementation's blame rules (DESIGN.md), deviation convention.
  // f̂ = (1-δ1)f partners; blame components:
  //   dv:  per partner, pr(1-pr)·f (request lost) +
  //        pr²·f·(1-pr(1-δ3)) (undelivered fraction of the request);
  //   dcc: per server (f on average), given the exchange (pr²):
  //        bad ack (1-pr^{|R|+1}) → f;
  //        else fanout shortfall (f-f̂) plus, with p_dcc, the witness round:
  //        dropped servers (δ2) are contradicted by all f̂ witnesses,
  //        truthful ones fail per witness chain with 1-pr³.
  const double pr = m.pr();
  const double f = static_cast<double>(m.fanout);
  const double f_hat = (1.0 - d.delta_fanout) * f;
  const double p_good = ipow(pr, m.request_size + 1);

  const double dv =
      f_hat * f *
      (pr * (1.0 - pr) + pr * pr * (1.0 - pr * (1.0 - d.delta_serve)));
  const double witness_round =
      d.delta_propose * f_hat +
      (1.0 - d.delta_propose) * f_hat * (1.0 - ipow(pr, 3));
  const double dcc =
      f * pr * pr *
      ((1.0 - p_good) * f +
       p_good * ((f - f_hat) + m.p_dcc * witness_round));
  return dv + dcc;
}

double expected_blame_freerider_paper(const ProtocolModel& m,
                                      const FreeriderDegree& d) {
  // The paper's literal b̃'(Δ) (§6.3.1); stated for p_dcc = 1.
  LIFTING_ASSERT(m.p_dcc == 1.0,
                 "the paper's b'(delta) formula assumes p_dcc = 1");
  const double pr = m.pr();
  const double f2 = static_cast<double>(m.fanout) *
                    static_cast<double>(m.fanout);
  const double pR1 = ipow(pr, m.request_size + 1);
  const double d1 = d.delta_fanout;
  const double d2 = d.delta_propose;
  const double d3 = d.delta_serve;
  return (1.0 - d1) * pr * (1.0 - pr * pr * (1.0 - d3)) * f2 + d2 * f2 +
         (1.0 - d2) * pr * pr *
             (pR1 * (1.0 - ipow(pr, 3) * (1.0 - d1)) + (1.0 - pR1)) * f2;
}

double false_positive_bound(double sigma_b, double eta, std::uint32_t r) {
  LIFTING_ASSERT(eta < 0.0, "detection threshold must be negative");
  LIFTING_ASSERT(r > 0, "node must have spent at least one period");
  const double bound =
      sigma_b * sigma_b / (static_cast<double>(r) * eta * eta);
  return std::min(1.0, bound);
}

double detection_bound(double mean_excess_blame, double sigma_b_freerider,
                       double eta, std::uint32_t r) {
  LIFTING_ASSERT(eta < 0.0, "detection threshold must be negative");
  LIFTING_ASSERT(r > 0, "node must have spent at least one period");
  // Freerider mean normalized score: μ' = -(b̃' - b̃). The bound is
  // informative only when μ' < η, i.e. mean_excess_blame > -η.
  const double distance = mean_excess_blame + eta;
  if (distance <= 0.0) return 0.0;
  const double bound = 1.0 - sigma_b_freerider * sigma_b_freerider /
                                 (static_cast<double>(r) * distance * distance);
  return std::max(0.0, bound);
}

}  // namespace lifting::analysis

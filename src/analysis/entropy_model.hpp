#ifndef LIFTING_ANALYSIS_ENTROPY_MODEL_HPP
#define LIFTING_ANALYSIS_ENTROPY_MODEL_HPP

#include <cstdint>

/// Analytical model of the entropy-based audit (paper §6.3.2, Eq. 7).
///
/// A freerider that picks a coalition member with probability p_m (uniform
/// within each class — the entropy-maximizing strategy) produces a history
/// whose expected entropy is
///   H(p_m) = -p_m·log2(p_m/m') - (1-p_m)·log2((1-p_m)/(N-m'))
/// with m' the coalition size and N = n_h·f the history length. Inverting
/// H(p*) = γ yields the maximum bias that passes the audit.

namespace lifting::analysis {

/// Eq. 7's right-hand side: the (asymptotic) entropy of a history of size
/// `history_size` biased toward a coalition of `coalition_size` with
/// per-slot probability `p_m`.
[[nodiscard]] double biased_history_entropy(double p_m,
                                            std::uint32_t coalition_size,
                                            std::uint32_t history_size);

/// Largest p_m whose biased history still reaches entropy γ — the paper's
/// p*_m (γ = 8.95, m' = 25, N = 600 gives ≈ 0.21). Solved by bisection on
/// the decreasing branch [m'/N, 1]. Returns:
///  - 1.0 when even full bias passes (γ ≤ log2(m'));
///  - coalition_size/history_size (the unbiased rate) when γ exceeds the
///    achievable maximum log2(N).
[[nodiscard]] double max_undetected_bias(double gamma,
                                         std::uint32_t coalition_size,
                                         std::uint32_t history_size);

}  // namespace lifting::analysis

#endif  // LIFTING_ANALYSIS_ENTROPY_MODEL_HPP

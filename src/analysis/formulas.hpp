#ifndef LIFTING_ANALYSIS_FORMULAS_HPP
#define LIFTING_ANALYSIS_FORMULAS_HPP

#include <cstdint>

/// Closed-form performance model of LiFTinG (paper §6).
///
/// Expected wrongful blames (Eq. 2–5) drive the score compensation that
/// keeps honest nodes' normalized scores centered at zero; the variance
/// expressions (derived here from the same per-component independence
/// assumptions — the paper defers them to tech report [8]) drive the
/// Chebyshev bounds on the false-positive probability β and the detection
/// probability α (§6.3.1).
///
/// Conventions (see DESIGN.md): Δ = (δ1, δ2, δ3) is the *deviation* degree —
/// a freerider contacts (1-δ1)·f partners, proposes chunks from a (1-δ2)
/// fraction of its servers, and serves (1-δ3)·|R| chunks per request.
/// All formulas take p_dcc as a parameter; ack-validity blames are always
/// active (acks are always sent — §7.2), witness-confirm blames scale with
/// p_dcc. At p_dcc = 1 everything reduces to the paper's Eq. 2/3/5.

namespace lifting::analysis {

/// Parameters of the protocol model (Table 4 notations).
struct ProtocolModel {
  double loss = 0.07;        ///< p_l, per-message Bernoulli loss
  std::uint32_t fanout = 12; ///< f
  std::uint32_t request_size = 4;  ///< |R|, chunks requested per proposal
  double p_dcc = 1.0;        ///< probability of triggering a cross-check

  [[nodiscard]] double pr() const noexcept { return 1.0 - loss; }
};

/// Degree of freeriding Δ (deviation convention).
struct FreeriderDegree {
  double delta_fanout = 0.0;   ///< δ1
  double delta_propose = 0.0;  ///< δ2
  double delta_serve = 0.0;    ///< δ3

  /// Upload-bandwidth gain 1-(1-δ1)(1-δ2)(1-δ3) (§6.3.1).
  [[nodiscard]] double gain() const noexcept {
    return 1.0 - (1.0 - delta_fanout) * (1.0 - delta_propose) *
                     (1.0 - delta_serve);
  }
  /// Uniform degree δ on all axes (Fig. 12's x-axis).
  [[nodiscard]] static FreeriderDegree uniform(double delta) noexcept {
    return FreeriderDegree{delta, delta, delta};
  }
};

// ------------------------------------------------ expected wrongful blames

/// Eq. 2: expected per-period blame on an honest node from direct
/// verification, caused by message loss: pr(1-pr²)·f².
[[nodiscard]] double expected_blame_direct_verification(
    const ProtocolModel& m);

/// Eq. 3 (p_dcc-generalized): expected per-period blame on an honest node
/// from direct cross-checking. At p_dcc=1: pr²(1-pr^{|R|+4})·f².
[[nodiscard]] double expected_blame_cross_check(const ProtocolModel& m);

/// Eq. 5: total expected wrongful blame per period, b̃ = b̃_dv + b̃_dcc.
/// At p_dcc=1: pr(1+pr-pr²-pr^{|R|+5})·f².
[[nodiscard]] double expected_wrongful_blame(const ProtocolModel& m);

/// Eq. 4: expected wrongful blame of one a-posteriori history cross-check
/// over n_h periods: (1-pr)·n_h·f.
[[nodiscard]] double expected_blame_apcc(const ProtocolModel& m,
                                         std::uint32_t history_periods);

// ----------------------------------------------------- derived variances

/// Var of the per-period direct-verification blame on an honest node.
/// Derivation: the f partners blame independently; each contributes
///   f·1[prop ∧ ¬req] + (f/|R|)·Binomial(|R|, 1-pr)·1[prop ∧ req].
[[nodiscard]] double variance_blame_direct_verification(
    const ProtocolModel& m);

/// Var of the per-period cross-checking blame on an honest node.
/// Includes (a) the within-verifier mixture variance, (b) the random
/// number of verifiers (in-degree ≈ Poisson(f) in steady state — each of
/// n-1 peers targets the node with probability f/(n-1)), and (c) the
/// positive covariance across verifiers induced by shared
/// proposal-to-witness losses (all verifiers confirm with the *same* f
/// witnesses). Terms (b) and (c) are what the paper's empirical
/// σ(b) = 25.6 (Fig. 10) exhibits over the naive independent-sum value.
[[nodiscard]] double variance_blame_cross_check(const ProtocolModel& m);

/// Var(b) for honest nodes: Var_dv + Var_dcc + 2·Cov(dv, dcc), where the
/// negative covariance stems from shared proposal losses (a partner that
/// never received the proposal neither blames via direct verification nor
/// can confirm as a witness).
[[nodiscard]] double variance_wrongful_blame(const ProtocolModel& m);

// ------------------------------------------------------- freerider model

/// Expected per-period blame on a freerider of degree Δ under *this
/// implementation's* blame rules (protocol-faithful; see DESIGN.md).
/// Reduces exactly to expected_wrongful_blame at Δ = 0.
[[nodiscard]] double expected_blame_freerider(const ProtocolModel& m,
                                              const FreeriderDegree& d);

/// The paper's literal b̃'(Δ) expression (§6.3.1), for comparison tables.
/// Only defined for p_dcc = 1 (the paper's analysis assumption).
[[nodiscard]] double expected_blame_freerider_paper(const ProtocolModel& m,
                                                    const FreeriderDegree& d);

// ------------------------------------------------------ detection bounds

/// Bienaymé–Tchebychev bound on the false-positive probability (§6.3.1):
///   β ≤ σ(b)² / (r·η²),  η < 0 the detection threshold,
/// r the number of periods spent in the system.
[[nodiscard]] double false_positive_bound(double sigma_b, double eta,
                                          std::uint32_t r);

/// Bienaymé–Tchebychev lower bound on the detection probability:
///   α ≥ 1 − σ(b')² / (r·(μ' − η)²)
/// where μ' = −(b̃'(Δ) − b̃) is the freerider's mean normalized score.
/// Returns 0 when μ' ≥ η (the bound is vacuous: the freerider's mean score
/// sits above the threshold).
[[nodiscard]] double detection_bound(double mean_excess_blame,
                                     double sigma_b_freerider, double eta,
                                     std::uint32_t r);

}  // namespace lifting::analysis

#endif  // LIFTING_ANALYSIS_FORMULAS_HPP

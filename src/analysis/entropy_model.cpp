#include "analysis/entropy_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace lifting::analysis {

double biased_history_entropy(double p_m, std::uint32_t coalition_size,
                              std::uint32_t history_size) {
  LIFTING_ASSERT(p_m >= 0.0 && p_m <= 1.0, "p_m must be in [0,1]");
  LIFTING_ASSERT(coalition_size > 0 && coalition_size < history_size,
                 "need 0 < m' < n_h*f");
  const double m = static_cast<double>(coalition_size);
  const double rest = static_cast<double>(history_size - coalition_size);
  double h = 0.0;
  if (p_m > 0.0) h -= p_m * std::log2(p_m / m);
  if (p_m < 1.0) h -= (1.0 - p_m) * std::log2((1.0 - p_m) / rest);
  return h;
}

double max_undetected_bias(double gamma, std::uint32_t coalition_size,
                           std::uint32_t history_size) {
  const double uniform_rate = static_cast<double>(coalition_size) /
                              static_cast<double>(history_size);
  // H is concave with maximum log2(N) at p_m = m'/N and decreases toward
  // log2(m') at p_m = 1.
  if (gamma <= biased_history_entropy(1.0, coalition_size, history_size)) {
    return 1.0;  // even a fully coalition-directed history passes
  }
  if (gamma >= biased_history_entropy(uniform_rate, coalition_size,
                                      history_size)) {
    return uniform_rate;  // no bias beyond the natural rate passes
  }
  double lo = uniform_rate;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (biased_history_entropy(mid, coalition_size, history_size) >= gamma) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace lifting::analysis

#include "analysis/sampler.hpp"

#include <algorithm>
#include <vector>

namespace lifting::analysis {

double BlameSampler::sample_period(Pcg32& rng,
                                   const FreeriderDegree& d) const {
  const double pr = model_.pr();
  const double p_dcc = model_.p_dcc;
  const std::uint32_t f = model_.fanout;
  const std::uint32_t R = model_.request_size;
  const double fd = static_cast<double>(f);

  // Partner set of the period: f̂ = (1-δ1)·f partners; the same nodes act
  // as direct-verification blamers and as cross-check witnesses, sharing
  // the proposal-loss draw (the source of the negative dv/dcc covariance).
  const std::uint32_t f_hat = std::min(
      f, round_randomized(rng, (1.0 - d.delta_fanout) * fd));
  std::vector<bool> proposal_lost(f_hat);
  for (std::uint32_t w = 0; w < f_hat; ++w) {
    proposal_lost[w] = rng.bernoulli(1.0 - pr);
  }

  double blame = 0.0;

  // --- Direct verification: each partner that received our proposal
  // requests |R| chunks; we serve (1-δ3)·|R| of them; per missing chunk the
  // partner blames f/|R| (all of f if nothing was exchanged).
  for (std::uint32_t j = 0; j < f_hat; ++j) {
    if (proposal_lost[j]) continue;
    if (!rng.bernoulli(pr)) {  // request lost -> nothing served
      blame += fd;
      continue;
    }
    const std::uint32_t sent = std::min(
        R, round_randomized(rng, (1.0 - d.delta_serve) *
                                     static_cast<double>(R)));
    const std::uint32_t delivered = rng.binomial(sent, pr);
    blame += fd * static_cast<double>(R - delivered) /
             static_cast<double>(R);
  }

  // --- Direct cross-checking: V ~ Poisson(f) servers verify us.
  const std::uint32_t verifiers = rng.poisson(fd);
  for (std::uint32_t v = 0; v < verifiers; ++v) {
    if (!rng.bernoulli(pr * pr)) continue;  // their proposal or our request lost
    // All |R| serves and our ack must arrive for the ack to cover the batch.
    bool covered = rng.bernoulli(pr);  // the ack itself
    for (std::uint32_t c = 0; covered && c < R; ++c) {
      covered = rng.bernoulli(pr);
    }
    if (!covered) {
      blame += fd;
      continue;
    }
    // Ack inspection: fanout shortfall is blamed by every verifier.
    blame += fd - static_cast<double>(f_hat);
    if (!rng.bernoulli(p_dcc)) continue;
    // δ2: this server's chunks were dropped from our proposal (we lied in
    // the ack); every witness contradicts or goes missing — blame 1 each.
    const bool dropped_server = rng.bernoulli(d.delta_propose);
    for (std::uint32_t w = 0; w < f_hat; ++w) {
      if (dropped_server || proposal_lost[w] ||
          !rng.bernoulli(pr * pr)) {  // confirm or response lost
        blame += 1.0;
      }
    }
  }
  return blame;
}

double BlameSampler::sample_score(Pcg32& rng, const FreeriderDegree& d,
                                  std::uint32_t r) const {
  const double compensation = expected_wrongful_blame(model_);
  double total = 0.0;
  for (std::uint32_t i = 0; i < r; ++i) {
    total += sample_period(rng, d) - compensation;
  }
  return -total / static_cast<double>(r);
}

DetectionEstimate estimate_detection(const BlameSampler& sampler,
                                     const FreeriderDegree& d, double eta,
                                     std::uint32_t r, std::uint32_t trials,
                                     Pcg32& rng) {
  std::uint32_t detected = 0;
  std::uint32_t wrongly = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    if (sampler.sample_score(rng, d, r) < eta) ++detected;
    if (sampler.sample_score(rng, FreeriderDegree{}, r) < eta) ++wrongly;
  }
  return DetectionEstimate{
      static_cast<double>(detected) / static_cast<double>(trials),
      static_cast<double>(wrongly) / static_cast<double>(trials)};
}

}  // namespace lifting::analysis

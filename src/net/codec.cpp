#include "net/codec.hpp"

#include <bit>

namespace lifting::net {

namespace {

// ---- writer (explicit little-endian: byte-shift serialization, not
// memcpy, so the format is identical on big-endian hosts)

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void f64(double v) { le(std::bit_cast<std::uint64_t>(v)); }
  void node(NodeId id) { u32(id.value()); }
  void chunk(ChunkId id) { u64(id.value()); }
  void chunks(const gossip::ChunkIdList& list) {
    u16(static_cast<std::uint16_t>(list.size()));
    for (const auto c : list) chunk(c);
  }
  template <typename NodeList>  // std::vector<NodeId> or gossip::PartnerList
  void nodes(const NodeList& list) {
    u16(static_cast<std::uint16_t>(list.size()));
    for (const auto n : list) node(n);
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

// ---- reader (bounds-checked; ok() goes false on any overrun)

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == size_; }
  /// Count×size pre-check for length-prefixed lists: a hostile count must
  /// fail before any reserve() can amplify it.
  [[nodiscard]] bool can_read(std::size_t bytes) const noexcept {
    return ok_ && bytes <= size_ - pos_;
  }

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  double f64() { return std::bit_cast<double>(take<std::uint64_t>()); }
  NodeId node() { return NodeId{u32()}; }
  // Chunk ids travel as 8 bytes on the wire (the in-memory rep is 32-bit;
  // the wire format predates the shrink and the size model keeps pricing
  // them at 8 B). An id outside the in-memory range cannot name a real
  // chunk — truncating it would alias a valid one, so a corrupted or
  // hostile frame carrying such an id is rejected as malformed.
  ChunkId chunk() {
    const std::uint64_t v = u64();
    if (v > 0xFFFFFFFFULL) ok_ = false;
    return ChunkId{static_cast<ChunkId::rep_type>(v)};
  }
  gossip::ChunkIdList chunks() {
    const auto count = u16();
    gossip::ChunkIdList out;
    if (!ok_) return out;
    if (static_cast<std::size_t>(count) * 8 > size_ - pos_) {
      ok_ = false;
      return out;
    }
    out.reserve(count);
    for (std::uint16_t i = 0; i < count && ok_; ++i) out.push_back(chunk());
    return out;
  }
  template <typename NodeList = std::vector<NodeId>>
  NodeList nodes() {
    const auto count = u16();
    NodeList out;
    if (!ok_) return out;
    if (static_cast<std::size_t>(count) * 4 > size_ - pos_) {
      ok_ = false;
      return out;
    }
    out.reserve(count);
    for (std::uint16_t i = 0; i < count && ok_; ++i) out.push_back(node());
    return out;
  }

 private:
  template <typename T>
  T take() {
    if (!ok_ || size_ - pos_ < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

enum class Tag : std::uint8_t {
  kPropose = 1,
  kRequest,
  kServe,
  kAck,
  kConfirmReq,
  kConfirmResp,
  kBlame,
  kScoreQuery,
  kScoreReply,
  kExpelRequest,
  kExpelVote,
  kExpelCommit,
  kAuditRequest,
  kAuditHistory,
  kHistoryPoll,
  kHistoryPollResp,
  kAuditAck,
  kRpsShuffle,
};

void write_records(Writer& w,
                   const std::vector<gossip::HistoryProposalRecord>& recs) {
  w.u16(static_cast<std::uint16_t>(recs.size()));
  for (const auto& rec : recs) {
    w.u32(rec.period);
    w.nodes(rec.partners);
    w.chunks(rec.chunks);
  }
}

std::vector<gossip::HistoryProposalRecord> read_records(Reader& r) {
  const auto count = r.u16();
  std::vector<gossip::HistoryProposalRecord> out;
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    gossip::HistoryProposalRecord rec;
    rec.period = r.u32();
    rec.partners = r.nodes();
    rec.chunks = r.chunks();
    out.push_back(std::move(rec));
  }
  return out;
}

struct EncodeVisitor {
  Writer& w;
  void operator()(const gossip::ProposeMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kPropose));
    w.u32(m.period);
    w.chunks(m.chunks);
  }
  void operator()(const gossip::RequestMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRequest));
    w.u32(m.period);
    w.chunks(m.chunks);
  }
  void operator()(const gossip::ServeMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kServe));
    w.u32(m.period);
    w.chunk(m.chunk);
    w.u32(m.payload_bytes);
    w.node(m.ack_to);
  }
  void operator()(const gossip::AckMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kAck));
    w.u32(m.period);
    w.chunks(m.chunks);
    w.nodes(m.partners);
  }
  void operator()(const gossip::ConfirmReqMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kConfirmReq));
    w.node(m.subject);
    w.u32(m.subject_period);
    w.chunks(m.chunks);
  }
  void operator()(const gossip::ConfirmRespMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kConfirmResp));
    w.node(m.subject);
    w.u32(m.subject_period);
    w.u8(m.confirmed ? 1 : 0);
  }
  void operator()(const gossip::BlameMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kBlame));
    w.node(m.target);
    w.f64(m.value);
    w.u8(static_cast<std::uint8_t>(m.reason));
  }
  void operator()(const gossip::ScoreQueryMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kScoreQuery));
    w.node(m.target);
    w.u32(m.query_id);
  }
  void operator()(const gossip::ScoreReplyMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kScoreReply));
    w.node(m.target);
    w.u32(m.query_id);
    w.f64(m.normalized_score);
    w.u8(m.expelled ? 1 : 0);
  }
  void operator()(const gossip::ExpelRequestMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kExpelRequest));
    w.node(m.target);
    w.f64(m.observed_score);
  }
  void operator()(const gossip::ExpelVoteMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kExpelVote));
    w.node(m.target);
    w.u8(m.agree ? 1 : 0);
  }
  void operator()(const gossip::ExpelCommitMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kExpelCommit));
    w.node(m.target);
    w.u8(m.from_audit ? 1 : 0);
  }
  void operator()(const gossip::AuditRequestMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kAuditRequest));
    w.u32(m.audit_id);
  }
  void operator()(const gossip::AuditHistoryMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kAuditHistory));
    w.u32(m.audit_id);
    write_records(w, m.proposals);
  }
  void operator()(const gossip::HistoryPollMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kHistoryPoll));
    w.u32(m.audit_id);
    w.node(m.subject);
    write_records(w, m.claims);
  }
  void operator()(const gossip::HistoryPollRespMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kHistoryPollResp));
    w.u32(m.audit_id);
    w.node(m.subject);
    w.u32(m.confirmed);
    w.u32(m.denied);
    w.nodes(m.confirm_askers);
  }
  void operator()(const gossip::AuditAckMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kAuditAck));
    w.u8(m.acked_kind);
    w.u32(m.audit_id);
    w.node(m.subject);
  }
  void operator()(const gossip::RpsShuffleMsg& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRpsShuffle));
    w.u32(m.round);
    w.u8(m.flags);
    w.u16(static_cast<std::uint16_t>(m.entries.size()));
    for (const auto& e : m.entries) {
      w.node(e.id);
      w.u32(e.age);
      w.u32(e.epoch);
      w.u8(e.flags);
    }
  }
};

}  // namespace

std::vector<std::uint8_t> encode(const gossip::Message& msg) {
  Writer w;
  std::visit(EncodeVisitor{w}, msg);
  return w.take();
}

std::optional<gossip::Message> decode(const std::uint8_t* data,
                                      std::size_t size) {
  Reader r(data, size);
  const auto tag = r.u8();
  if (!r.ok()) return std::nullopt;
  gossip::Message msg;
  switch (static_cast<Tag>(tag)) {
    case Tag::kPropose: {
      gossip::ProposeMsg m;
      m.period = r.u32();
      m.chunks = r.chunks();
      msg = std::move(m);
      break;
    }
    case Tag::kRequest: {
      gossip::RequestMsg m;
      m.period = r.u32();
      m.chunks = r.chunks();
      msg = std::move(m);
      break;
    }
    case Tag::kServe: {
      gossip::ServeMsg m;
      m.period = r.u32();
      m.chunk = r.chunk();
      m.payload_bytes = r.u32();
      m.ack_to = r.node();
      msg = m;
      break;
    }
    case Tag::kAck: {
      gossip::AckMsg m;
      m.period = r.u32();
      m.chunks = r.chunks();
      m.partners = r.nodes<gossip::PartnerList>();
      msg = std::move(m);
      break;
    }
    case Tag::kConfirmReq: {
      gossip::ConfirmReqMsg m;
      m.subject = r.node();
      m.subject_period = r.u32();
      m.chunks = r.chunks();
      msg = std::move(m);
      break;
    }
    case Tag::kConfirmResp: {
      gossip::ConfirmRespMsg m;
      m.subject = r.node();
      m.subject_period = r.u32();
      m.confirmed = r.u8() != 0;
      msg = m;
      break;
    }
    case Tag::kBlame: {
      gossip::BlameMsg m;
      m.target = r.node();
      m.value = r.f64();
      m.reason = static_cast<gossip::BlameReason>(r.u8());
      msg = m;
      break;
    }
    case Tag::kScoreQuery: {
      gossip::ScoreQueryMsg m;
      m.target = r.node();
      m.query_id = r.u32();
      msg = m;
      break;
    }
    case Tag::kScoreReply: {
      gossip::ScoreReplyMsg m;
      m.target = r.node();
      m.query_id = r.u32();
      m.normalized_score = r.f64();
      m.expelled = r.u8() != 0;
      msg = m;
      break;
    }
    case Tag::kExpelRequest: {
      gossip::ExpelRequestMsg m;
      m.target = r.node();
      m.observed_score = r.f64();
      msg = m;
      break;
    }
    case Tag::kExpelVote: {
      gossip::ExpelVoteMsg m;
      m.target = r.node();
      m.agree = r.u8() != 0;
      msg = m;
      break;
    }
    case Tag::kExpelCommit: {
      gossip::ExpelCommitMsg m;
      m.target = r.node();
      m.from_audit = r.u8() != 0;
      msg = m;
      break;
    }
    case Tag::kAuditRequest: {
      gossip::AuditRequestMsg m;
      m.audit_id = r.u32();
      msg = m;
      break;
    }
    case Tag::kAuditHistory: {
      gossip::AuditHistoryMsg m;
      m.audit_id = r.u32();
      m.proposals = read_records(r);
      msg = std::move(m);
      break;
    }
    case Tag::kHistoryPoll: {
      gossip::HistoryPollMsg m;
      m.audit_id = r.u32();
      m.subject = r.node();
      m.claims = read_records(r);
      msg = std::move(m);
      break;
    }
    case Tag::kHistoryPollResp: {
      gossip::HistoryPollRespMsg m;
      m.audit_id = r.u32();
      m.subject = r.node();
      m.confirmed = r.u32();
      m.denied = r.u32();
      m.confirm_askers = r.nodes();
      msg = std::move(m);
      break;
    }
    case Tag::kAuditAck: {
      gossip::AuditAckMsg m;
      m.acked_kind = r.u8();
      m.audit_id = r.u32();
      m.subject = r.node();
      msg = m;
      break;
    }
    case Tag::kRpsShuffle: {
      gossip::RpsShuffleMsg m;
      m.round = r.u32();
      m.flags = r.u8();
      const auto count = r.u16();
      if (!r.ok() || !r.can_read(static_cast<std::size_t>(count) * 13)) {
        return std::nullopt;
      }
      m.entries.reserve(count);
      for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
        gossip::RpsViewEntry e;
        e.id = r.node();
        e.age = r.u32();
        e.epoch = r.u32();
        e.flags = r.u8();
        m.entries.push_back(e);
      }
      msg = std::move(m);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

}  // namespace lifting::net

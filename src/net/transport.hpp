#ifndef LIFTING_NET_TRANSPORT_HPP
#define LIFTING_NET_TRANSPORT_HPP

#include <cstddef>
#include <utility>

#include "common/types.hpp"
#include "gossip/message.hpp"
#include "sim/network.hpp"

/// The transport seam between the protocol stack and the world.
///
/// Engine and Agent send every message through gossip::Mailer; the Mailer
/// prices the message with the analytical wire_size model and hands it to a
/// Transport. Two implementations exist:
///
///   - SimTransport (here): delegates to sim::Network — the deterministic
///     discrete-event backend all experiments and goldens run on.
///   - UdpTransport (net/udp_transport.hpp): frames the message with the
///     net::codec byte format and sends a real UDP datagram — the
///     deployment backend behind the lifting_node daemon.
///
/// The interface deliberately mirrors sim::Network::send so the simulator
/// path is a single virtual call away from its historical behavior: same
/// arguments, same call order, bit-identical schedules (the determinism
/// goldens in tests/test_determinism.cpp pin this).

namespace lifting::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Submits `message` from `from` to `to`. `bytes` is the modeled wire
  /// size (gossip::wire_size) — the simulator charges it against uplink
  /// capacity; the UDP backend records it for model-vs-wire accounting.
  /// `channel` selects datagram vs reliable semantics where the backend
  /// distinguishes them (the simulator does; UDP sends a datagram either
  /// way and the size model prices the reliable kinds with TCP framing).
  virtual void send(NodeId from, NodeId to, sim::Channel channel,
                    std::size_t bytes, gossip::Message message) = 0;
};

/// Simulator-backed transport: forwards verbatim to sim::Network.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Network<gossip::Message>& network)
      : network_(network) {}

  void send(NodeId from, NodeId to, sim::Channel channel, std::size_t bytes,
            gossip::Message message) override {
    network_.send(from, to, channel, bytes, std::move(message));
  }

  [[nodiscard]] sim::Network<gossip::Message>& network() noexcept {
    return network_;
  }

 private:
  sim::Network<gossip::Message>& network_;
};

}  // namespace lifting::net

#endif  // LIFTING_NET_TRANSPORT_HPP

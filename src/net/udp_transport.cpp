#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "net/codec.hpp"

namespace lifting::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

UdpTransport::~UdpTransport() {
  for (auto& [id, ep] : sockets_) {
    if (ep.fd >= 0) ::close(ep.fd);
  }
}

bool UdpTransport::add_endpoint(NodeId id, Handler handler) {
  if (sockets_.contains(id)) return false;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  Endpoint ep;
  ep.fd = fd;
  ep.port = ntohs(addr.sin_port);
  ep.handler = std::move(handler);
  sockets_.emplace(id, std::move(ep));
  return true;
}

bool UdpTransport::send(NodeId from, NodeId to, const gossip::Message& msg) {
  const auto src = sockets_.find(from);
  const auto dst = sockets_.find(to);
  if (src == sockets_.end() || dst == sockets_.end()) return false;
  // Frame: 4-byte sender id + codec payload.
  auto payload = encode(msg);
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 4);
  const std::uint32_t sender = from.value();
  const auto* p = reinterpret_cast<const std::uint8_t*>(&sender);
  frame.insert(frame.end(), p, p + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dst->second.port);
  const auto n = ::sendto(src->second.fd, frame.data(), frame.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (n != static_cast<ssize_t>(frame.size())) return false;
  ++sent_;
  return true;
}

std::size_t UdpTransport::poll() {
  std::size_t delivered = 0;
  std::uint8_t buffer[65536];
  for (auto& [id, ep] : sockets_) {
    for (;;) {
      const auto n = ::recv(ep.fd, buffer, sizeof buffer, 0);
      if (n <= 0) break;
      if (n < 4) continue;
      std::uint32_t sender = 0;
      std::memcpy(&sender, buffer, 4);
      auto decoded = decode(buffer + 4, static_cast<std::size_t>(n) - 4);
      if (!decoded.has_value()) {
        ++decode_failures_;
        continue;
      }
      if (ep.handler) {
        ep.handler(NodeId{sender}, std::move(*decoded));
        ++delivered;
      }
    }
  }
  return delivered;
}

std::size_t UdpTransport::poll_wait(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(sockets_.size());
  for (const auto& [id, ep] : sockets_) {
    fds.push_back(pollfd{ep.fd, POLLIN, 0});
  }
  if (fds.empty()) return 0;
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;
  return poll();
}

}  // namespace lifting::net

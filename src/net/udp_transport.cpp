#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/codec.hpp"

namespace lifting::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint16_t read_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// Payload bytes the transport appends after the codec bytes (serve frames
/// carry the chunk body; everything else is header-only).
std::uint32_t trailing_payload_bytes(const gossip::Message& msg) {
  const auto* serve = std::get_if<gossip::ServeMsg>(&msg);
  return serve != nullptr ? serve->payload_bytes : 0;
}

}  // namespace

UdpTransport::~UdpTransport() {
  for (auto& [id, ep] : sockets_) {
    if (ep.fd >= 0) ::close(ep.fd);
  }
}

bool UdpTransport::add_endpoint(NodeId id, Handler handler) {
  if (sockets_.contains(id)) return false;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr = loopback_addr(0);  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  Endpoint ep;
  ep.fd = fd;
  ep.port = ntohs(addr.sin_port);
  ep.handler = std::move(handler);
  sockets_.emplace(id, std::move(ep));
  return true;
}

bool UdpTransport::add_route(NodeId id, std::uint16_t port) {
  if (port == 0 || sockets_.contains(id) || routes_.contains(id)) return false;
  routes_[id] = port;
  return true;
}

std::uint16_t UdpTransport::port_of(NodeId id) const {
  const auto it = sockets_.find(id);
  return it != sockets_.end() ? it->second.port : 0;
}

std::uint16_t UdpTransport::destination_port(NodeId to) const {
  if (const auto it = sockets_.find(to); it != sockets_.end()) {
    return it->second.port;
  }
  if (const auto it = routes_.find(to); it != routes_.end()) {
    return it->second;
  }
  return 0;
}

bool UdpTransport::send(NodeId from, NodeId to, const gossip::Message& msg) {
  return send_with_modeled(from, to, msg, gossip::wire_size(msg));
}

bool UdpTransport::send_with_modeled(NodeId from, NodeId to,
                                     const gossip::Message& msg,
                                     std::size_t modeled_bytes) {
  const auto src = sockets_.find(from);
  const std::uint16_t port = destination_port(to);
  if (src == sockets_.end() || port == 0) {
    ++send_failures_;
    return false;
  }
  const auto codec = encode(msg);
  if (codec.size() > 0xFFFF) {  // codec_len is a u16
    ++send_failures_;
    return false;
  }
  const std::uint32_t payload = trailing_payload_bytes(msg);
  auto& frame = frame_scratch_;
  frame.clear();
  frame.reserve(kFrameHeaderBytes + codec.size() + payload);
  const std::uint32_t sender = from.value();
  frame.push_back(static_cast<std::uint8_t>(sender));
  frame.push_back(static_cast<std::uint8_t>(sender >> 8));
  frame.push_back(static_cast<std::uint8_t>(sender >> 16));
  frame.push_back(static_cast<std::uint8_t>(sender >> 24));
  const auto codec_len = static_cast<std::uint16_t>(codec.size());
  frame.push_back(static_cast<std::uint8_t>(codec_len));
  frame.push_back(static_cast<std::uint8_t>(codec_len >> 8));
  frame.insert(frame.end(), codec.begin(), codec.end());
  // Chunk body: this repo disseminates metadata-only chunks, so the body is
  // a zero-filled placeholder of the real size — the datagram on the wire
  // is as long as a deployment's would be.
  frame.resize(frame.size() + payload, 0);

  sockaddr_in addr = loopback_addr(port);
  const auto n = ::sendto(src->second.fd, frame.data(), frame.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (n != static_cast<ssize_t>(frame.size())) {
    ++send_failures_;
    return false;
  }
  ++sent_;
  auto& kind = wire_stats_[msg.index()];
  ++kind.count;
  kind.wire_bytes += frame.size() + kIpUdpHeaderBytes;
  kind.modeled_bytes += modeled_bytes;
  return true;
}

void UdpTransport::send(NodeId from, NodeId to, sim::Channel /*channel*/,
                        std::size_t bytes, gossip::Message message) {
  // `bytes` is the Mailer's modeled price for this message — recorded
  // as-is so the wire-vs-model stats agree with the sender's accounting
  // (under reliable-UDP audit pricing the Mailer charges the exact
  // datagram model, not TCP framing). UDP has no reliable channel, so both
  // channels collapse to a datagram.
  send_with_modeled(from, to, message, bytes);
}

std::size_t UdpTransport::poll() {
  std::size_t delivered = 0;
  std::uint8_t buffer[65536];
  for (auto& [id, ep] : sockets_) {
    for (;;) {
      const auto n = ::recv(ep.fd, buffer, sizeof buffer, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        // A real socket error (e.g. ECONNREFUSED from an ICMP port-
        // unreachable). The failing recv consumed the error condition;
        // ECONNREFUSED leaves the queue intact, so keep draining. Anything
        // else could recur forever — count it and yield until next poll.
        ++socket_errors_;
        if (errno == ECONNREFUSED) continue;
        break;
      }
      // n == 0 is a valid zero-length datagram, not "socket drained" — it
      // falls through to the runt check below and draining continues.
      const auto size = static_cast<std::size_t>(n);
      if (size < kFrameHeaderBytes) {
        ++decode_failures_;
        continue;
      }
      const std::uint32_t sender = read_le32(buffer);
      const std::size_t codec_len = read_le16(buffer + 4);
      if (kFrameHeaderBytes + codec_len > size) {
        ++decode_failures_;
        continue;
      }
      auto decoded = decode(buffer + kFrameHeaderBytes, codec_len);
      if (!decoded.has_value()) {
        ++decode_failures_;
        continue;
      }
      const std::size_t trailing = size - kFrameHeaderBytes - codec_len;
      if (trailing != trailing_payload_bytes(*decoded)) {
        ++decode_failures_;
        continue;
      }
      if (ep.handler) {
        ep.handler(NodeId{sender}, std::move(*decoded));
        ++delivered;
      }
    }
  }
  return delivered;
}

std::size_t UdpTransport::poll_wait(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(sockets_.size());
  for (const auto& [id, ep] : sockets_) {
    fds.push_back(pollfd{ep.fd, POLLIN, 0});
  }
  if (fds.empty()) return 0;
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;
  return poll();
}

}  // namespace lifting::net

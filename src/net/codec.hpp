#ifndef LIFTING_NET_CODEC_HPP
#define LIFTING_NET_CODEC_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "gossip/message.hpp"

/// Binary wire format for protocol messages (little-endian, length-checked).
///
/// The simulator models message *sizes* analytically (gossip::wire_size);
/// this codec is the actual byte format used by the real UDP transport in
/// src/net, and its round-trip property is enforced by tests so a deployment
/// speaks exactly what the simulation accounts for.
///
/// All multi-byte integers are explicitly little-endian regardless of host
/// byte order (byte-shift serialization, not memcpy). Doubles travel as the
/// little-endian bytes of their IEEE-754 bit pattern. Chunk ids travel as
/// 8 bytes; ids above the 32-bit in-memory range are rejected as malformed.
///
/// UDP datagram frame (UdpTransport wraps each encoded message):
///
///   sender_id  u32 LE   | node id of the sending endpoint
///   codec_len  u16 LE   | length of the codec bytes that follow
///   codec      bytes    | encode(msg) — tag byte + fields, as below
///   payload    bytes    | chunk body, serve frames only (payload_bytes
///                       | long; zero-filled placeholder in this repo)
///
/// Non-serve frames carry no trailing bytes; a serve frame whose trailing
/// length differs from its payload_bytes field is a decode failure.

namespace lifting::net {

/// Serializes a message (without payload bytes for serves — the chunk body
/// is appended by the transport; the codec carries `payload_bytes` so the
/// receiver can account for it).
[[nodiscard]] std::vector<std::uint8_t> encode(const gossip::Message& msg);

/// Decodes a message; std::nullopt on malformed/truncated input (never
/// throws, never reads out of bounds).
[[nodiscard]] std::optional<gossip::Message> decode(
    const std::uint8_t* data, std::size_t size);

[[nodiscard]] inline std::optional<gossip::Message> decode(
    const std::vector<std::uint8_t>& buffer) {
  return decode(buffer.data(), buffer.size());
}

}  // namespace lifting::net

#endif  // LIFTING_NET_CODEC_HPP

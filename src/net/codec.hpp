#ifndef LIFTING_NET_CODEC_HPP
#define LIFTING_NET_CODEC_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "gossip/message.hpp"

/// Binary wire format for protocol messages (little-endian, length-checked).
///
/// The simulator models message *sizes* analytically (gossip::wire_size);
/// this codec is the actual byte format used by the real UDP transport in
/// src/net, and its round-trip property is enforced by tests so a future
/// deployment speaks exactly what the simulation accounts for.

namespace lifting::net {

/// Serializes a message (without payload bytes for serves — the chunk body
/// is appended by the transport; the codec carries `payload_bytes` so the
/// receiver can account for it).
[[nodiscard]] std::vector<std::uint8_t> encode(const gossip::Message& msg);

/// Decodes a message; std::nullopt on malformed/truncated input (never
/// throws, never reads out of bounds).
[[nodiscard]] std::optional<gossip::Message> decode(
    const std::uint8_t* data, std::size_t size);

[[nodiscard]] inline std::optional<gossip::Message> decode(
    const std::vector<std::uint8_t>& buffer) {
  return decode(buffer.data(), buffer.size());
}

}  // namespace lifting::net

#endif  // LIFTING_NET_CODEC_HPP

#ifndef LIFTING_NET_UDP_TRANSPORT_HPP
#define LIFTING_NET_UDP_TRANSPORT_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "gossip/message.hpp"
#include "net/transport.hpp"

/// Real-socket datagram transport (loopback), the deployment-facing
/// counterpart of sim::Network. Every endpoint owns a non-blocking UDP
/// socket; messages are framed with the net::codec wire format (see
/// codec.hpp for the frame layout: sender id + codec length + codec bytes
/// + serve payload, all little-endian). `poll()` drains all sockets and
/// dispatches to the registered handlers — call it from your event loop.
///
/// A transport usually hosts one endpoint per process (the lifting_node
/// daemon) with `add_route` naming the other nodes' ports, but it can hold
/// many endpoints in one process for loopback tests. It implements
/// net::Transport, so a gossip::Mailer can sit directly on top of it and
/// the Engine/Agent stack runs unmodified over real datagrams.
///
/// Accounting: every sent message is tallied per message kind with both its
/// actual on-wire size (frame bytes + 28 B IP/UDP headers per datagram) and
/// its analytical gossip::wire_size — the raw data behind the wire-vs-model
/// bandwidth report (Table 5 validation; see lifting_loopback).

namespace lifting::net {

class UdpTransport final : public Transport {
 public:
  using Handler = std::function<void(NodeId from, gossip::Message)>;

  /// Per-message-kind byte accounting, indexed by gossip::Message variant
  /// index (see wire_stats()).
  struct KindWireStats {
    std::uint64_t count = 0;
    std::uint64_t wire_bytes = 0;     ///< frame + 28 B IP/UDP per datagram
    std::uint64_t modeled_bytes = 0;  ///< gossip::wire_size sum
  };

  /// IP (20) + UDP (8) header bytes charged per datagram, matching the
  /// analytical model's per-message constant.
  static constexpr std::size_t kIpUdpHeaderBytes = 28;
  /// Frame header: sender id (4) + codec length (2), little-endian.
  static constexpr std::size_t kFrameHeaderBytes = 6;

  UdpTransport() = default;
  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a loopback UDP socket for `id` on an ephemeral port and
  /// registers the receive handler. Returns false on socket errors.
  bool add_endpoint(NodeId id, Handler handler);

  /// Registers a remote peer reachable at `port` on loopback (another
  /// process's endpoint). Local endpoints take precedence on send.
  bool add_route(NodeId id, std::uint16_t port);

  /// The bound port of a local endpoint (0 if `id` is not local).
  [[nodiscard]] std::uint16_t port_of(NodeId id) const;

  /// Sends `msg` from local endpoint `from` to `to` (a local endpoint or a
  /// route). Serves carry a zero-filled payload body of payload_bytes.
  /// Returns false (and counts a send failure) if the destination is
  /// unknown or the datagram could not be sent.
  bool send(NodeId from, NodeId to, const gossip::Message& msg);

  /// net::Transport entry point (Mailer-facing). `bytes` is the modeled
  /// size as priced by the Mailer (TCP framing or exact-datagram for audit
  /// kinds) and is recorded verbatim in wire_stats; the channel collapses
  /// to a datagram.
  void send(NodeId from, NodeId to, sim::Channel channel, std::size_t bytes,
            gossip::Message message) override;

  /// Drains every socket, dispatching decoded messages. Returns the number
  /// of messages delivered.
  std::size_t poll();

  /// Blocks up to `timeout_ms` waiting for any socket to become readable,
  /// then polls. Returns messages delivered.
  std::size_t poll_wait(int timeout_ms);

  [[nodiscard]] std::size_t endpoints() const noexcept {
    return sockets_.size();
  }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  /// Frames that failed to decode: runts (shorter than the frame header —
  /// including zero-length datagrams), bad codec bytes, or a serve whose
  /// trailing payload length contradicts its payload_bytes field.
  [[nodiscard]] std::uint64_t decode_failures() const noexcept {
    return decode_failures_;
  }
  /// recv() failures other than "no data" (EAGAIN/EWOULDBLOCK/EINTR), e.g.
  /// ECONNREFUSED surfaced by an ICMP port-unreachable.
  [[nodiscard]] std::uint64_t socket_errors() const noexcept {
    return socket_errors_;
  }
  /// Sends that failed (unknown destination, oversized frame, sendto error).
  [[nodiscard]] std::uint64_t send_failures() const noexcept {
    return send_failures_;
  }
  [[nodiscard]] const std::array<KindWireStats,
                                 std::variant_size_v<gossip::Message>>&
  wire_stats() const noexcept {
    return wire_stats_;
  }

 private:
  struct Endpoint {
    int fd = -1;
    std::uint16_t port = 0;
    Handler handler;
  };

  /// Port of `to`: local endpoint first, then routes. 0 if unknown.
  [[nodiscard]] std::uint16_t destination_port(NodeId to) const;

  /// Shared sender: frames + sends, recording `modeled_bytes` against the
  /// message kind (the bool overload derives it with gossip::wire_size).
  bool send_with_modeled(NodeId from, NodeId to, const gossip::Message& msg,
                         std::size_t modeled_bytes);

  std::unordered_map<NodeId, Endpoint> sockets_;
  std::unordered_map<NodeId, std::uint16_t> routes_;
  std::vector<std::uint8_t> frame_scratch_;
  std::uint64_t sent_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t socket_errors_ = 0;
  std::uint64_t send_failures_ = 0;
  std::array<KindWireStats, std::variant_size_v<gossip::Message>>
      wire_stats_{};
};

}  // namespace lifting::net

#endif  // LIFTING_NET_UDP_TRANSPORT_HPP

#ifndef LIFTING_NET_UDP_TRANSPORT_HPP
#define LIFTING_NET_UDP_TRANSPORT_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "gossip/message.hpp"

/// Real-socket datagram transport (loopback), the deployment-facing
/// counterpart of sim::Network. Every endpoint owns a non-blocking UDP
/// socket; messages are framed with the net::codec wire format plus a
/// 4-byte sender id. `poll()` drains all sockets and dispatches to the
/// registered handlers — call it from your event loop.
///
/// The PlanetLab evaluation is reproduced on the deterministic simulator
/// (see DESIGN.md); this transport exists so the message layer is proven
/// against real sockets (integration-tested over loopback).

namespace lifting::net {

class UdpTransport {
 public:
  using Handler = std::function<void(NodeId from, gossip::Message)>;

  UdpTransport() = default;
  ~UdpTransport();
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a loopback UDP socket for `id` on an ephemeral port and
  /// registers the receive handler. Returns false on socket errors.
  bool add_endpoint(NodeId id, Handler handler);

  /// Sends `msg` from `from` to `to` (both must be registered endpoints).
  /// Returns false if the send failed (e.g. unknown endpoint).
  bool send(NodeId from, NodeId to, const gossip::Message& msg);

  /// Drains every socket, dispatching decoded messages. Returns the number
  /// of messages delivered.
  std::size_t poll();

  /// Blocks up to `timeout_ms` waiting for any socket to become readable,
  /// then polls. Returns messages delivered.
  std::size_t poll_wait(int timeout_ms);

  [[nodiscard]] std::size_t endpoints() const noexcept {
    return sockets_.size();
  }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t decode_failures() const noexcept {
    return decode_failures_;
  }

 private:
  struct Endpoint {
    int fd = -1;
    std::uint16_t port = 0;
    Handler handler;
  };

  std::unordered_map<NodeId, Endpoint> sockets_;
  std::uint64_t sent_ = 0;
  std::uint64_t decode_failures_ = 0;
};

}  // namespace lifting::net

#endif  // LIFTING_NET_UDP_TRANSPORT_HPP

#ifndef LIFTING_LIFTING_PARAMS_HPP
#define LIFTING_LIFTING_PARAMS_HPP

#include <cstdint>

#include "analysis/formulas.hpp"
#include "common/assert.hpp"
#include "common/time.hpp"

/// LiFTinG configuration (paper §5 and §7.1). One instance is shared by all
/// honest nodes of a deployment; it also feeds the analytical compensation
/// model (§6.2).

namespace lifting {

struct LiftingParams {
  // ---- protocol parameters mirrored from the gossip layer
  std::uint32_t fanout = 7;            ///< f
  Duration period = milliseconds(500); ///< Tg
  /// Nominal |R| used by the compensation formulas (the paper uses the
  /// deployment's steady-state average; §6.2 assumes it constant).
  std::uint32_t nominal_request_size = 4;

  // ---- verification knobs
  /// Probability of triggering a direct cross-check per valid ack (§5).
  double p_dcc = 1.0;
  /// Estimated per-message loss used for compensation (§7.3 uses the
  /// 4% average observed on PlanetLab).
  double loss_estimate = 0.04;
  /// Calibrates the per-period compensation to the deployment's observed
  /// verification activity. Eq. 5 assumes the §6 steady state (every node
  /// exchanges |R| chunks with f servers AND f requesters per period);
  /// deployments below that density compensate proportionally less, just
  /// as the paper plugs the *observed* loss rate into the formulas (§7.3).
  /// 1.0 = the literal Eq. 5 value.
  double compensation_factor = 1.0;
  /// Direct-verification deadline after sending a request.
  Duration dv_timeout = milliseconds(500);
  /// Deadline for the receiver's ack after we served it (its next propose
  /// phase happens within Tg; add a latency allowance).
  Duration ack_timeout = milliseconds(900);
  /// Deadline for witness confirm responses.
  Duration confirm_timeout = milliseconds(300);

  // ---- adaptive cross-checking (§1: "this overhead can be dynamically
  // adjusted and potentially reduced to zero when the system is healthy")
  /// When enabled, each node decays its own p_dcc toward adaptive_min_pdcc
  /// while its verifications stay clean, and snaps back to the configured
  /// p_dcc the moment a verification blames someone.
  bool adaptive_pdcc = false;
  double adaptive_min_pdcc = 0.0;
  /// Multiplicative decay applied to the working p_dcc per clean period.
  double adaptive_decay = 0.85;
  /// A period is "clean" when the EWMA of blame value emitted per period
  /// stays below this multiple of the loss-noise floor (the node's share
  /// of Eq. 5's wrongful blames, ≈ compensation_factor·b̃). Message loss
  /// alone must not keep the cross-check rate pinned at maximum.
  double adaptive_noise_multiple = 1.5;

  // ---- reputation architecture (§5.1)
  std::uint32_t managers = 25;  ///< M managers per node
  double eta = -9.75;           ///< score-based expulsion threshold η
  /// Vote used to combine the managers' score replies. The paper uses the
  /// minimum ("to be resilient to message losses and malicious attacks,
  /// i.e. colluding managers increasing the scores"); the mean is provided
  /// for the ablation benchmark that demonstrates why.
  enum class ScoreVote : std::uint8_t { kMin, kMean };
  ScoreVote score_vote = ScoreVote::kMin;
  /// A manager agrees to an expulsion when its local copy is below
  /// η·(1-expel_slack) — slack absorbs blame messages it may have missed.
  double expel_slack = 0.2;
  /// Minimum score replies for a min-vote read to be actionable.
  std::uint32_t min_score_replies = 3;
  Duration score_reply_timeout = milliseconds(400);
  Duration expel_vote_timeout = milliseconds(400);
  /// Per-period probability that a node score-checks a recent contact.
  double score_check_probability = 0.0;
  /// Nodes younger than this many periods are never expelled on score
  /// (their normalized score has too few samples — §6.3.1: detection
  /// quality grows with r).
  std::uint32_t min_periods_before_detection = 10;

  // ---- local history auditing (§5.3)
  double gamma = 8.95;              ///< entropy threshold γ
  Duration history_window = seconds(25.0);  ///< h
  /// Per-period probability that a node audits a random peer.
  double audit_probability = 0.0;
  /// No audits before this many periods (histories must fill up first).
  std::uint32_t audit_warmup_periods = 50;
  Duration audit_poll_timeout = seconds(2.0);
  /// Fan-in entropy is only checked when at least this many asker samples
  /// were collected (with p_dcc = 0 nobody sends confirms and F'_h is
  /// legitimately empty).
  std::uint32_t min_fanin_samples = 50;
  /// Tolerated shortfall of the history proposal-rate check: blames are
  /// emitted when fewer than rate_tolerance·n_h proposals are on record.
  double rate_tolerance = 0.5;

  // ---- audit channel (§5.3 semantics, DESIGN.md §11)
  /// How the four audit kinds travel. kModeledTcp (the default, and the
  /// historical behavior) uses the simulator's lossless reliable channel
  /// priced with amortized TCP framing. kReliableUdp sends them as real
  /// datagrams priced with the exact codec length, made reliable in the
  /// application: bounded retries with exponential backoff + jitter,
  /// AuditAckMsg acknowledgments, duplicate suppression at the receiver.
  enum class AuditChannel : std::uint8_t { kModeledTcp, kReliableUdp };
  AuditChannel audit_channel = AuditChannel::kModeledTcp;
  /// Retransmissions after the initial send before giving up.
  std::uint32_t audit_max_retries = 4;
  /// Backoff before retry k is audit_retry_base · 2^k, stretched by up to
  /// audit_retry_jitter (uniform) to decorrelate loss-synchronized peers.
  Duration audit_retry_base = milliseconds(200);
  double audit_retry_jitter = 0.5;
  /// Receiver-side duplicate-suppression ring capacity (recently seen
  /// audit-message keys per node).
  std::uint32_t audit_dedup_cap = 128;
  /// Blame datagrams carry no sequence numbers (their wire size is
  /// pinned), so transport-level duplicates are suppressed heuristically:
  /// a manager drops a blame identical to one it applied from the same
  /// sender within this window. Zero (the default) disables the window —
  /// required for byte-identical goldens, since a legitimate identical
  /// re-blame inside the window is indistinguishable from a duplicate.
  Duration blame_dedup_window = Duration::zero();

  // ---- memory budget (DESIGN.md §9)
  /// Periods a confirm/history-poll answer may look back (§5.2: the
  /// verifier confirms against the witnesses' last few periods).
  static constexpr std::uint32_t kConfirmWindowPeriods = 3;
  /// How long the per-node accountability logs actually retain entries.
  /// zero (the default) means the full audit window `history_window` —
  /// required whenever audits run. Deployments that never audit (the
  /// million-node scale benches) shrink it to the confirm window, cutting
  /// the dominant per-node allocation ~16x with identical confirm/poll
  /// answers. Must cover at least kConfirmWindowPeriods + 1 periods.
  Duration history_retention = Duration::zero();

  /// n_h = h / Tg (§5: the number of gossip periods covered by the history).
  [[nodiscard]] std::uint32_t history_periods() const {
    return static_cast<std::uint32_t>(history_window / period);
  }

  /// The log-retention span actually applied by Agent::tick's prune.
  [[nodiscard]] Duration effective_history_retention() const {
    return history_retention == Duration::zero() ? history_window
                                                 : history_retention;
  }

  /// The §6 model with these parameters (for compensation and bounds).
  [[nodiscard]] analysis::ProtocolModel model() const {
    return analysis::ProtocolModel{loss_estimate, fanout,
                                   nominal_request_size, p_dcc};
  }

  void validate() const {
    require(fanout >= 1, "fanout must be >= 1");
    require(period > Duration::zero(), "period must be positive");
    require(p_dcc >= 0.0 && p_dcc <= 1.0, "p_dcc must be in [0,1]");
    require(loss_estimate >= 0.0 && loss_estimate < 1.0,
            "loss estimate must be in [0,1)");
    require(compensation_factor >= 0.0, "compensation factor must be >= 0");
    require(adaptive_min_pdcc >= 0.0 && adaptive_min_pdcc <= p_dcc,
            "adaptive minimum must be within [0, p_dcc]");
    require(adaptive_decay > 0.0 && adaptive_decay < 1.0,
            "adaptive decay must be in (0,1)");
    require(managers >= 1, "need at least one manager");
    require(eta < 0.0, "eta must be negative");
    require(gamma >= 0.0, "gamma must be non-negative");
    require(history_window >= period, "history must span >= one period");
    require(history_retention == Duration::zero() ||
                (history_retention <= history_window &&
                 history_retention >= period * (kConfirmWindowPeriods + 1)),
            "history_retention must cover the confirm window and not "
            "exceed history_window");
    require(rate_tolerance >= 0.0 && rate_tolerance <= 1.0,
            "rate_tolerance in [0,1]");
    require(audit_retry_base > Duration::zero(),
            "audit_retry_base must be positive");
    require(audit_retry_jitter >= 0.0 && audit_retry_jitter <= 1.0,
            "audit_retry_jitter must be in [0,1]");
    require(audit_dedup_cap >= 1, "audit_dedup_cap must be >= 1");
    require(blame_dedup_window >= Duration::zero(),
            "blame_dedup_window must be non-negative");
  }
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_PARAMS_HPP

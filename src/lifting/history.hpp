#ifndef LIFTING_LIFTING_HISTORY_HPP
#define LIFTING_LIFTING_HISTORY_HPP

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"

/// Bounded accountability logs (paper §5: "every node logs a bounded-size
/// history of sent and received messages ... corresponding to the last
/// n_h = h/Tg gossip periods").
///
/// Three logs per node:
///  * SentProposalHistory — own proposals (period, partners, chunks); the
///    payload of an audit reply and the source of F_h.
///  * ReceivedProposalLog — proposals received, to answer confirm requests
///    and history polls as a witness.
///  * ConfirmAskerLog — who asked this node to confirm whose proposals;
///    polled by auditors to reconstruct F'_h (§5.3).

namespace lifting {

class SentProposalHistory {
 public:
  void record(TimePoint at, PeriodIndex period,
              std::vector<NodeId> partners, gossip::ChunkIdList chunks) {
    entries_.push_back(Entry{at, {period, std::move(partners),
                                  std::move(chunks)}});
  }

  void prune(TimePoint cutoff) {
    while (!entries_.empty() && entries_.front().at < cutoff) {
      entries_.pop_front();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// The audit-visible records, oldest first.
  [[nodiscard]] std::vector<gossip::HistoryProposalRecord> snapshot() const {
    std::vector<gossip::HistoryProposalRecord> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.record);
    return out;
  }

 private:
  struct Entry {
    TimePoint at;
    gossip::HistoryProposalRecord record;
  };
  std::deque<Entry> entries_;
};

class ReceivedProposalLog {
 public:
  void record(TimePoint at, NodeId from, PeriodIndex period,
              const gossip::ChunkIdList& chunks) {
    entries_.push_back(Entry{at, from, period, chunks});
  }

  void prune(TimePoint cutoff) {
    while (!entries_.empty() && entries_.front().at < cutoff) {
      entries_.pop_front();
    }
  }

  /// Does the log contain a proposal from `subject` (not older than
  /// `since`) containing every chunk in `chunks`? This is the witness-side
  /// test behind confirm responses and history polls.
  [[nodiscard]] bool confirms(NodeId subject,
                              const gossip::ChunkIdList& chunks,
                              TimePoint since) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->at < since) break;  // entries are time-ordered
      if (it->from != subject) continue;
      bool all = true;
      for (const auto c : chunks) {
        if (std::find(it->chunks.begin(), it->chunks.end(), c) ==
            it->chunks.end()) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    TimePoint at;
    NodeId from;
    PeriodIndex period;
    gossip::ChunkIdList chunks;
  };
  std::deque<Entry> entries_;
};

class ConfirmAskerLog {
 public:
  void record(TimePoint at, NodeId subject, NodeId asker) {
    entries_.push_back(Entry{at, subject, asker});
  }

  void prune(TimePoint cutoff) {
    while (!entries_.empty() && entries_.front().at < cutoff) {
      entries_.pop_front();
    }
  }

  /// All nodes that asked about `subject` within the log, with
  /// multiplicity — the witness's contribution to F'_h.
  [[nodiscard]] std::vector<NodeId> askers_about(NodeId subject) const {
    std::vector<NodeId> out;
    for (const auto& e : entries_) {
      if (e.subject == subject) out.push_back(e.asker);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    TimePoint at;
    NodeId subject;
    NodeId asker;
  };
  std::deque<Entry> entries_;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_HISTORY_HPP

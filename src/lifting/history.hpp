#ifndef LIFTING_LIFTING_HISTORY_HPP
#define LIFTING_LIFTING_HISTORY_HPP

#include <algorithm>
#include <vector>

#include "common/ring_log.hpp"
#include "common/small_vector.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"

/// Bounded accountability logs (paper §5: "every node logs a bounded-size
/// history of sent and received messages ... corresponding to the last
/// n_h = h/Tg gossip periods").
///
/// Three logs per node:
///  * SentProposalHistory — own proposals (period, partners, chunks); the
///    payload of an audit reply and the source of F_h.
///  * ReceivedProposalLog — proposals received, to answer confirm requests
///    and history polls as a witness.
///  * ConfirmAskerLog — who asked this node to confirm whose proposals;
///    polled by auditors to reconstruct F'_h (§5.3).
///
/// Storage is a flat RingLog per log (entries period/time-ordered, oldest
/// at the front): the window only ever evicts from the front and appends at
/// the back, and ring slots recycle their SmallVector payload capacity, so
/// a steady-state node records its whole history without heap allocation.
/// These deques were the last per-element allocators of a warm planetlab
/// run — see DESIGN.md §9.

namespace lifting {

class SentProposalHistory {
 public:
  void record(TimePoint at, PeriodIndex period,
              const std::vector<NodeId>& partners,
              const gossip::ChunkIdList& chunks) {
    Entry& e = entries_.push_slot();
    e.at = at;
    e.period = period;
    e.partners.assign(partners.begin(), partners.end());
    e.chunks.assign(chunks.begin(), chunks.end());
  }

  void prune(TimePoint cutoff) {
    while (!entries_.empty() && entries_.front().at < cutoff) {
      entries_.pop_front();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// The audit-visible records, oldest first. Materializes fresh vectors —
  /// this is the audit-reply path, not a steady-state one.
  [[nodiscard]] std::vector<gossip::HistoryProposalRecord> snapshot() const {
    std::vector<gossip::HistoryProposalRecord> out;
    out.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out.push_back(gossip::HistoryProposalRecord{
          e.period, std::vector<NodeId>(e.partners.begin(), e.partners.end()),
          e.chunks});
    }
    return out;
  }

 private:
  struct Entry {
    TimePoint at{};
    PeriodIndex period = 0;
    SmallVector<NodeId, 8> partners;  // |partners| = fanout (7 on planetlab)
    gossip::ChunkIdList chunks;
  };
  RingLog<Entry> entries_;
};

class ReceivedProposalLog {
 public:
  void record(TimePoint at, NodeId from, PeriodIndex period,
              const gossip::ChunkIdList& chunks) {
    Entry& e = entries_.push_slot();
    e.at = at;
    e.from = from;
    e.period = period;
    e.chunks.assign(chunks.begin(), chunks.end());
  }

  void prune(TimePoint cutoff) {
    while (!entries_.empty() && entries_.front().at < cutoff) {
      entries_.pop_front();
    }
  }

  /// Already holds a proposal from `from` for `period`? A proposer sends
  /// one propose per period, so a second sighting is a transport duplicate
  /// and must not be re-recorded (the duplicate-delivery idempotence
  /// contract, tests/test_faults.cpp).
  [[nodiscard]] bool has(NodeId from, PeriodIndex period) const {
    for (std::size_t i = entries_.size(); i-- > 0;) {
      const Entry& e = entries_[i];
      if (e.from == from && e.period == period) return true;
    }
    return false;
  }

  /// Does the log contain a proposal from `subject` (not older than
  /// `since`) containing every chunk in `chunks`? This is the witness-side
  /// test behind confirm responses and history polls.
  [[nodiscard]] bool confirms(NodeId subject,
                              const gossip::ChunkIdList& chunks,
                              TimePoint since) const {
    for (std::size_t i = entries_.size(); i-- > 0;) {
      const Entry& e = entries_[i];
      if (e.at < since) break;  // entries are time-ordered
      if (e.from != subject) continue;
      bool all = true;
      for (const auto c : chunks) {
        if (std::find(e.chunks.begin(), e.chunks.end(), c) ==
            e.chunks.end()) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    TimePoint at{};
    NodeId from{};
    PeriodIndex period = 0;
    gossip::ChunkIdList chunks;
  };
  RingLog<Entry> entries_;
};

class ConfirmAskerLog {
 public:
  void record(TimePoint at, NodeId subject, NodeId asker) {
    Entry& e = entries_.push_slot();
    e.at = at;
    e.subject = subject;
    e.asker = asker;
  }

  void prune(TimePoint cutoff) {
    while (!entries_.empty() && entries_.front().at < cutoff) {
      entries_.pop_front();
    }
  }

  /// All nodes that asked about `subject` within the log, with
  /// multiplicity — the witness's contribution to F'_h.
  [[nodiscard]] std::vector<NodeId> askers_about(NodeId subject) const {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].subject == subject) out.push_back(entries_[i].asker);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    TimePoint at{};
    NodeId subject{};
    NodeId asker{};
  };
  RingLog<Entry> entries_;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_HISTORY_HPP

#include "lifting/verifier.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace lifting {

namespace {

/// Sorted-unique insert into a ChunkIdList — the std::set semantics the
/// verification trackers rely on, without the per-element node allocation.
void insert_sorted_unique(gossip::ChunkIdList& list, ChunkId c) {
  const auto it = std::lower_bound(list.begin(), list.end(), c);
  if (it == list.end() || *it != c) list.insert(it, c);
}

void erase_sorted(gossip::ChunkIdList& list, ChunkId c) {
  const auto it = std::lower_bound(list.begin(), list.end(), c);
  if (it != list.end() && *it == c) list.erase(it, it + 1);
}

}  // namespace

// ------------------------------------------------------- DirectVerifier

namespace {
constexpr auto kPendingKeyLess = [](const auto& p, const auto& k) {
  return p.key < k;
};
}  // namespace

DirectVerifier::Pending* DirectVerifier::find_pending(const Key& key) {
  const auto it = std::lower_bound(pending_.begin(), pending_.end(), key,
                                   kPendingKeyLess);
  return it != pending_.end() && it->key == key ? &*it : nullptr;
}

void DirectVerifier::on_request_sent(NodeId proposer, PeriodIndex period,
                                     const gossip::ChunkIdList& chunks) {
  if (chunks.empty()) return;
  const Key key{proposer, period};
  // One binary search serves both the hit and the miss: lower_bound is
  // simultaneously the lookup answer and the sorted insert position.
  auto it = std::lower_bound(pending_.begin(), pending_.end(), key,
                             kPendingKeyLess);
  if (it == pending_.end() || it->key != key) {
    it = pending_.insert(it, Pending{key, {}, 0});
  }
  for (const auto c : chunks) insert_sorted_unique(it->outstanding, c);
  it->requested += chunks.size();
  sim_.schedule_after(params_.dv_timeout, [this, key] { on_deadline(key); });
}

void DirectVerifier::on_serve_received(NodeId sender, PeriodIndex period,
                                       ChunkId chunk) {
  Pending* pending = find_pending(Key{sender, period});
  if (pending == nullptr) return;
  erase_sorted(pending->outstanding, chunk);
}

void DirectVerifier::on_deadline(Key key) {
  Pending* pending = find_pending(key);
  if (pending == nullptr) return;
  // Blame f/|R| per chunk requested but never served (§5.2, Table 1);
  // |R| is this request's actual size.
  if (!pending->outstanding.empty()) {
    const double value = static_cast<double>(params_.fanout) *
                         static_cast<double>(pending->outstanding.size()) /
                         static_cast<double>(pending->requested);
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kVerdictUnserved, trace_self_,
                     key.proposer, key.period, value, 0,
                     static_cast<std::uint16_t>(pending->outstanding.size()));
    }
    blame_(key.proposer, value, gossip::BlameReason::kDirectVerification);
  }
  ++completed_;
  pending_.erase(pending_.begin() + (pending - pending_.data()));
}

// --------------------------------------------------------- CrossChecker

namespace {
constexpr auto kEntryKeyLess = [](const auto& entry, const auto& key) {
  return entry.key() < key;
};
}  // namespace

CrossChecker::Batch* CrossChecker::find_batch(NodeId receiver,
                                              PeriodIndex serve_period) {
  const auto key = std::make_pair(receiver, serve_period);
  const auto it = std::lower_bound(batches_.begin(), batches_.end(), key,
                                   kEntryKeyLess);
  return it != batches_.end() && it->key() == key ? &*it : nullptr;
}

CrossChecker::ConfirmRound* CrossChecker::find_round(
    NodeId subject, PeriodIndex subject_period) {
  const auto key = std::make_pair(subject, subject_period);
  const auto it =
      std::lower_bound(rounds_.begin(), rounds_.end(), key, kEntryKeyLess);
  return it != rounds_.end() && it->key() == key ? &*it : nullptr;
}

void CrossChecker::on_chunks_served(NodeId receiver, PeriodIndex period,
                                    const gossip::ChunkIdList& chunks) {
  const auto key = std::make_pair(receiver, period);
  // One binary search is both the lookup and the sorted insert position.
  auto it = std::lower_bound(batches_.begin(), batches_.end(), key,
                             kEntryKeyLess);
  if (it == batches_.end() || it->key() != key) {
    it = batches_.insert(it, Batch{receiver, period, {}, false, 0});
  }
  auto& batch = *it;
  batch.generation = ++generation_;
  for (const auto c : chunks) insert_sorted_unique(batch.chunks, c);
  const auto generation = batch.generation;
  sim_.schedule_after(params_.ack_timeout,
                      [this, receiver, period, generation] {
                        on_ack_deadline(receiver, period, generation);
                      });
}

void CrossChecker::on_ack_received(NodeId from, const gossip::AckMsg& ack) {
  // Unsolicited acks (we served this node nothing) carry no weight.
  const bool expected = std::any_of(
      batches_.begin(), batches_.end(),
      [&](const Batch& b) { return b.receiver == from; });
  if (!expected) return;

  // Fanout check happens once per (receiver, propose phase): the ack
  // asserts the receiver's partner set for one propose phase (§5.2,
  // Table 1: blame f - f̂). A transport-duplicated ack re-asserts the same
  // phase and must not blame twice.
  const auto fanout_key = std::make_pair(from, ack.period);
  const auto checked_it = std::lower_bound(
      fanout_checked_.begin(), fanout_checked_.end(), fanout_key);
  if (checked_it == fanout_checked_.end() || *checked_it != fanout_key) {
    // Bound the table against the advancing period horizon: anything
    // older than the in-flight window (ack_timeout spans ~2 periods) can
    // no longer be duplicated by a delay/reorder fault worth modeling.
    constexpr PeriodIndex kFanoutCheckedWindow = 16;
    if (fanout_checked_.size() >= 1024) {
      std::erase_if(fanout_checked_, [&](const auto& e) {
        return e.second + kFanoutCheckedWindow < ack.period;
      });
    }
    fanout_checked_.insert(
        std::lower_bound(fanout_checked_.begin(), fanout_checked_.end(),
                         fanout_key),
        fanout_key);
    if (ack.partners.size() < params_.fanout) {
      const double value =
          static_cast<double>(params_.fanout - ack.partners.size());
      if (trace_ != nullptr) {
        trace_->record(obs::EventKind::kVerdictFanout, self_, from,
                       ack.period, value, 0,
                       static_cast<std::uint16_t>(ack.partners.size()));
      }
      blame_(from, value, gossip::BlameReason::kFanoutDecrease);
    }
  }

  // Mark every outstanding batch for this receiver whose chunks the ack
  // fully covers; covered batches with a triggered check share one confirm
  // round per (subject, subject-period).
  gossip::ChunkIdList covered_chunks;
  for (auto& batch : batches_) {
    if (batch.receiver != from || batch.covered) continue;
    const bool all = std::all_of(
        batch.chunks.begin(), batch.chunks.end(), [&](ChunkId c) {
          return std::find(ack.chunks.begin(), ack.chunks.end(), c) !=
                 ack.chunks.end();
        });
    if (!all) continue;
    batch.covered = true;
    covered_chunks.insert(covered_chunks.end(), batch.chunks.begin(),
                          batch.chunks.end());
  }
  if (covered_chunks.empty()) return;

  // §5: the check is triggered with probability p_dcc per serve-ack.
  if (!rng_.bernoulli(params_.p_dcc)) return;
  start_confirm_round(ack, from, covered_chunks);
}

void CrossChecker::start_confirm_round(const gossip::AckMsg& ack,
                                       NodeId subject,
                                       const gossip::ChunkIdList& chunks) {
  const auto key = std::make_pair(subject, ack.period);
  const auto it =
      std::lower_bound(rounds_.begin(), rounds_.end(), key, kEntryKeyLess);
  if (it != rounds_.end() && it->key() == key) {
    return;  // one round per receiver propose phase
  }
  ConfirmRound round;
  round.subject = subject;
  round.subject_period = ack.period;
  std::size_t sent = 0;
  for (const auto witness : ack.partners) {
    if (witness == self_ || witness == subject) continue;
    send_(witness, gossip::ConfirmReqMsg{subject, ack.period, chunks});
    ++sent;
  }
  if (sent == 0) return;
  round.witnesses = sent;
  rounds_.insert(it, round);
  ++rounds_started_;
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kConfirmRound, self_, subject, ack.period,
                   0.0, 0, static_cast<std::uint16_t>(sent));
  }
  sim_.schedule_after(params_.confirm_timeout,
                      [this, subject, period = ack.period] {
                        on_confirm_deadline(subject, period);
                      });
}

void CrossChecker::on_confirm_response(NodeId witness,
                                       const gossip::ConfirmRespMsg& msg) {
  ConfirmRound* round = find_round(msg.subject, msg.subject_period);
  if (round == nullptr) return;
  if (std::find(round->responded.begin(), round->responded.end(), witness) !=
      round->responded.end()) {
    return;  // transport-duplicated testimony: one vote per witness
  }
  if (round->yes + round->no >= round->witnesses) return;  // late duplicates
  round->responded.push_back(witness);
  if (msg.confirmed) {
    ++round->yes;
  } else {
    ++round->no;
  }
}

void CrossChecker::on_confirm_deadline(NodeId subject,
                                       PeriodIndex subject_period) {
  ConfirmRound* round = find_round(subject, subject_period);
  if (round == nullptr) return;
  // Blame 1 per contradictory testimony; a missing testimony is
  // indistinguishable from a lost witness chain and blames 1 as well
  // (Eq. 3's (1-pr³) term).
  const std::size_t failures = round->witnesses - round->yes;
  if (failures > 0) {
    if (trace_ != nullptr) {
      trace_->record(
          obs::EventKind::kVerdictTestimony, self_, subject, subject_period,
          static_cast<double>(failures), 0,
          static_cast<std::uint16_t>((round->yes << 8) | (round->no & 0xFF)));
    }
    blame_(subject, static_cast<double>(failures),
           gossip::BlameReason::kTestimony);
  }
  rounds_.erase(rounds_.begin() + (round - rounds_.data()));
}

void CrossChecker::on_ack_deadline(NodeId receiver, PeriodIndex serve_period,
                                   std::uint64_t generation) {
  Batch* batch = find_batch(receiver, serve_period);
  if (batch == nullptr) return;
  if (batch->generation != generation) return;  // superseded by later serves
  if (!batch->covered) {
    // No acknowledgment covering the batch: blame f (§5.2 — same value as
    // not proposing at all).
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kVerdictNoAck, self_, receiver,
                     serve_period, static_cast<double>(params_.fanout));
    }
    blame_(receiver, static_cast<double>(params_.fanout),
           gossip::BlameReason::kInvalidAck);
  }
  batches_.erase(batches_.begin() + (batch - batches_.data()));
}

}  // namespace lifting

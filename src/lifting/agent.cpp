#include "lifting/agent.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "membership/sampler.hpp"
#include "obs/trace.hpp"

namespace lifting {

namespace {
/// Witness window for confirm requests: a proposal must have been received
/// within this many periods to count (the serve→propose causality spans at
/// most one period plus transit slack). Also the floor on
/// LiftingParams::history_retention — pruning must never outrun it.
constexpr std::uint32_t kConfirmWindowPeriods =
    LiftingParams::kConfirmWindowPeriods;
constexpr std::size_t kRecentContactsCap = 64;
/// The score a colluding manager reports for a coalition member — a
/// "better than clean" value (§5.1's score-inflation attack).
constexpr double kInflatedScore = 25.0;
}  // namespace

Agent::Agent(sim::Simulator& sim, gossip::Mailer& mailer,
             membership::Directory& directory, NodeId self,
             const LiftingParams& params, gossip::BehaviorSpec behavior,
             Pcg32 rng, std::uint64_t deployment_seed, TimePoint genesis,
             Hooks hooks, std::shared_ptr<ManagerAssignment> assignment)
    : sim_(sim),
      mailer_(mailer),
      directory_(directory),
      self_(self),
      params_(params),
      behavior_(std::move(behavior)),
      rng_(rng),
      deployment_seed_(deployment_seed),
      genesis_(genesis),
      hooks_(std::move(hooks)),
      assignment_(assignment != nullptr
                      ? std::move(assignment)
                      : std::make_shared<ManagerAssignment>(
                            directory.initial_size(), params.managers,
                            deployment_seed)),
      managers_(params_, genesis),
      direct_verifier_(
          sim, params_,
          [this](NodeId t, double v, gossip::BlameReason r) {
            emit_blame(t, v, r);
          }),
      cross_checker_(
          sim, params_, self, rng_,
          [this](NodeId t, double v, gossip::BlameReason r) {
            emit_blame(t, v, r);
          },
          [this](NodeId to, gossip::Message m) {
            send_datagram(to, std::move(m));
          }),
      auditor_(
          sim, params_, self,
          [this](NodeId t, double v, gossip::BlameReason r) {
            emit_blame(t, v, r);
          },
          [this](NodeId to, gossip::Message m) {
            send_reliable(to, std::move(m));
          },
          [this](NodeId target) {
            // Entropy-based expulsion is direct (§5.3): commit to the
            // subject's managers without the score-vote round.
            for (const auto manager : managers_for(target)) {
              if (manager == self_) {
                handle_expel_commit(gossip::ExpelCommitMsg{target, true});
              } else {
                send_datagram(manager, gossip::ExpelCommitMsg{target, true});
              }
            }
          },
          [this](const AuditReport& report) {
            if (trace_ != nullptr) {
              const std::uint8_t failed =
                  static_cast<std::uint8_t>(
                      (report.fanout_check_failed ? 1U : 0U) |
                      (report.fanin_check_failed ? 2U : 0U) |
                      (report.rate_check_failed ? 4U : 0U));
              trace_->record(obs::EventKind::kAuditReport, self_,
                             report.subject, 0, 0.0, failed,
                             static_cast<std::uint16_t>(report.confirmed));
            }
            if (hooks_.on_audit_report) {
              hooks_.on_audit_report(self_, report);
            }
          }) {
  params_.validate();
  base_pdcc_ = params_.p_dcc;
  // A node manages ~M targets in expectation (Poisson(M) tail); pre-size
  // the blame ledger so the first periods never reallocate it.
  managers_.reserve(2 * static_cast<std::size_t>(params_.managers));
}

void Agent::start(Duration offset) {
  LIFTING_ASSERT(!started_, "agent started twice");
  started_ = true;
  sim_.schedule_after(offset, [this] { tick(); });
}

void Agent::set_trace(obs::Recorder* trace) noexcept {
  trace_ = trace;
  direct_verifier_.set_trace(trace, self_);
  cross_checker_.set_trace(trace);
}

void Agent::tick() {
  if (stopped_) return;  // retired: do not reschedule
  const TimePoint now = sim_.now();
  const TimePoint cutoff =
      now - std::min(now.time_since_epoch(),
                     params_.effective_history_retention());
  sent_history_.prune(cutoff);
  received_log_.prune(cutoff);
  asker_log_.prune(cutoff);

  // Adaptive cross-checking (§1): decay the working p_dcc while our own
  // verifications stay clean; snap back to the configured value when the
  // emitted-blame EWMA exceeds the loss-noise floor. The CrossChecker
  // reads params_.p_dcc by reference, so changes take effect immediately.
  if (params_.adaptive_pdcc) {
    constexpr double kEwmaAlpha = 0.2;
    blame_rate_ewma_ = (1.0 - kEwmaAlpha) * blame_rate_ewma_ +
                       kEwmaAlpha * blame_emitted_this_period_;
    blame_emitted_this_period_ = 0.0;
    // A node verifies ~f peers that each receive b̃ from ~f verifiers, so
    // its own loss-noise emission floor is ≈ compensation_factor·b̃.
    const double noise_floor =
        params_.compensation_factor *
        analysis::expected_wrongful_blame(params_.model());
    if (blame_rate_ewma_ <=
        params_.adaptive_noise_multiple * std::max(noise_floor, 0.5)) {
      params_.p_dcc = std::max(params_.adaptive_min_pdcc,
                               params_.p_dcc * params_.adaptive_decay);
    } else {
      params_.p_dcc = base_pdcc_;
    }
  }

  // Score-based policing: read a recent contact's score; expel if below η.
  if (params_.score_check_probability > 0.0 &&
      rng_.bernoulli(params_.score_check_probability) &&
      !recent_contacts_.empty() && old_enough_for_detection(now)) {
    const NodeId target = recent_contacts_[rng_.below(
        static_cast<std::uint32_t>(recent_contacts_.size()))];
    // View-aware: this node polices whoever *it* believes is still a
    // member — under a propagation lag that can be a recent leaver, and
    // the read then runs against whatever quorum still answers.
    if (directory_.sees(self_, target, now) && target != self_ &&
        !behavior_.colludes_with(target)) {
      score_check(target);
    }
  }

  // Sporadic local-history audits (§5.3).
  const auto age_periods =
      static_cast<std::uint32_t>((now - genesis_) / params_.period);
  if (params_.audit_probability > 0.0 &&
      age_periods >= params_.audit_warmup_periods &&
      rng_.bernoulli(params_.audit_probability)) {
    // View-aware subject pick: an auditor can select a node it does not
    // yet know has departed; the audit then times out against silence —
    // one of the wrongful-blame sources divergent views introduce.
    const auto pick =
        membership::sample_view(rng_, directory_, self_, 1, now);
    if (!pick.empty() && !behavior_.colludes_with(pick.front())) {
      auditor_.start_audit(pick.front());
    }
  }

  sim_.schedule_after(params_.period, [this] { tick(); });
}

bool Agent::old_enough_for_detection(TimePoint now) const {
  const auto age = static_cast<std::uint32_t>((now - genesis_) /
                                              params_.period);
  return age >= params_.min_periods_before_detection;
}

// --------------------------------------------------------- blame routing

void Agent::emit_blame(NodeId target, double value,
                       gossip::BlameReason reason) {
  if (value <= 0.0) return;
  // A retired node's lingering verification deadlines still fire (the
  // object outlives the departure) but a dead node testifies to nothing.
  if (stopped_) return;
  // Colluding freeriders never blame coalition members (§5.2: "if p0
  // colludes with p1, it will not blame p1").
  if (behavior_.colludes_with(target)) return;
  blame_emitted_this_period_ += value;  // feeds the adaptive p_dcc controller
  blame_emitted_total_ += value;
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kBlameEmitted, self_, target, 0, value,
                   static_cast<std::uint8_t>(reason));
  }
  if (hooks_.on_blame_emitted) {
    hooks_.on_blame_emitted(self_, target, value, reason);
  }
  for (const auto manager : managers_for(target)) {
    if (manager == self_) {
      handle_blame(self_, gossip::BlameMsg{target, value, reason});
    } else {
      send_datagram(manager, gossip::BlameMsg{target, value, reason});
    }
  }
}

void Agent::send_datagram(NodeId to, gossip::Message msg) {
  mailer_.send(self_, to, sim::Channel::kDatagram, std::move(msg));
}

// --------------------------------------- reliable-UDP audit channel

Agent::AuditKey Agent::audit_key(const gossip::Message& msg) {
  AuditKey key;
  key.kind = static_cast<std::uint8_t>(msg.index());
  if (const auto* req = std::get_if<gossip::AuditRequestMsg>(&msg)) {
    key.audit_id = req->audit_id;
  } else if (const auto* hist = std::get_if<gossip::AuditHistoryMsg>(&msg)) {
    key.audit_id = hist->audit_id;
  } else if (const auto* poll = std::get_if<gossip::HistoryPollMsg>(&msg)) {
    key.audit_id = poll->audit_id;
    key.subject = poll->subject;
  } else if (const auto* resp =
                 std::get_if<gossip::HistoryPollRespMsg>(&msg)) {
    key.audit_id = resp->audit_id;
    key.subject = resp->subject;
  } else {
    LIFTING_ASSERT(false, "audit_key on a non-audit message");
  }
  return key;
}

Duration Agent::retry_backoff(std::uint32_t attempt) {
  // attempt = transmissions already made (>= 1): base · 2^(attempt-1),
  // stretched by up to audit_retry_jitter to decorrelate peers whose
  // sends were lost by the same burst.
  Duration backoff = params_.audit_retry_base * (1ULL << (attempt - 1));
  if (params_.audit_retry_jitter > 0.0) {
    if (!retry_rng_.has_value()) {
      retry_rng_ = derive_rng(deployment_seed_,
                              0xD00000000ULL + self_.value());
    }
    const double stretch =
        1.0 + params_.audit_retry_jitter * retry_rng_->uniform();
    backoff = Duration{static_cast<Duration::rep>(
        static_cast<double>(backoff.count()) * stretch)};
  }
  return backoff;
}

void Agent::arm_retry(std::uint64_t token) {
  const auto it =
      std::find_if(pending_audits_.begin(), pending_audits_.end(),
                   [&](const PendingAudit& p) { return p.token == token; });
  if (it == pending_audits_.end()) return;
  sim_.schedule_after(retry_backoff(it->attempts),
                      [this, token] { on_retry_timer(token); });
}

void Agent::on_retry_timer(std::uint64_t token) {
  if (stopped_) return;
  const auto it =
      std::find_if(pending_audits_.begin(), pending_audits_.end(),
                   [&](const PendingAudit& p) { return p.token == token; });
  if (it == pending_audits_.end()) return;  // acked meanwhile
  auto& stats =
      audit_channel_stats_[it->key.kind - gossip::kAuditKindFirst];
  if (it->attempts > params_.audit_max_retries) {
    ++stats.give_ups;
    pending_audits_.erase(it);
    return;
  }
  ++stats.retries;
  ++it->attempts;
  mailer_.send(self_, it->to, sim::Channel::kDatagram, it->message);
  arm_retry(token);
}

void Agent::send_reliable(NodeId to, gossip::Message msg) {
  if (params_.audit_channel == LiftingParams::AuditChannel::kModeledTcp) {
    mailer_.send(self_, to, sim::Channel::kReliable, std::move(msg));
    return;
  }
  // Reliable-UDP mode: the message is a real datagram; reliability is
  // bounded retransmission until the receiver's AuditAckMsg arrives.
  const AuditKey key = audit_key(msg);
  const std::uint64_t token = next_retry_token_++;
  ++audit_channel_stats_[key.kind - gossip::kAuditKindFirst].sends;
  pending_audits_.push_back(PendingAudit{to, key, 1, token, msg});
  mailer_.send(self_, to, sim::Channel::kDatagram, std::move(msg));
  arm_retry(token);
}

void Agent::handle_audit_ack(NodeId from, const gossip::AuditAckMsg& msg) {
  const AuditKey key{msg.acked_kind, msg.audit_id, msg.subject};
  const auto it = std::find_if(
      pending_audits_.begin(), pending_audits_.end(),
      [&](const PendingAudit& p) { return p.to == from && p.key == key; });
  if (it == pending_audits_.end()) return;  // late/duplicate ack
  if (key.kind >= gossip::kAuditKindFirst &&
      key.kind < gossip::kAuditKindFirst + gossip::kAuditKindCount) {
    ++audit_channel_stats_[key.kind - gossip::kAuditKindFirst].acks_received;
  }
  pending_audits_.erase(it);
}

bool Agent::audit_dedup_and_ack(NodeId from, const gossip::Message& msg) {
  const AuditKey key = audit_key(msg);
  // Ack every copy: the receiver cannot know whether its previous ack
  // survived, and a lost ack is exactly why the copy exists.
  send_datagram(from, gossip::AuditAckMsg{key.kind, key.audit_id,
                                          key.subject});
  for (const auto& seen : seen_audits_) {
    if (seen.from == from && seen.key == key) {
      ++audit_channel_stats_[key.kind - gossip::kAuditKindFirst]
            .dups_suppressed;
      return true;
    }
  }
  const std::size_t cap = params_.audit_dedup_cap;
  if (seen_audits_.size() < cap) {
    seen_audits_.push_back(SeenAudit{from, key});
  } else {
    seen_audits_[seen_audits_head_] = SeenAudit{from, key};
    seen_audits_head_ = (seen_audits_head_ + 1) % cap;
  }
  return false;
}

bool Agent::blame_is_duplicate(NodeId from, const gossip::BlameMsg& msg) {
  if (params_.blame_dedup_window == Duration::zero() || from == self_) {
    return false;
  }
  const TimePoint now = sim_.now();
  const TimePoint since =
      now - std::min(now.time_since_epoch(), params_.blame_dedup_window);
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(msg.value);
  for (const auto& seen : seen_blames_) {
    if (seen.from == from && seen.target == msg.target &&
        seen.reason == msg.reason && seen.value_bits == bits &&
        seen.at >= since) {
      ++blame_dups_suppressed_;
      return true;
    }
  }
  constexpr std::size_t kSeenBlamesCap = 32;
  const SeenBlame entry{from, msg.target, bits, msg.reason, now};
  if (seen_blames_.size() < kSeenBlamesCap) {
    seen_blames_.push_back(entry);
  } else {
    seen_blames_[seen_blames_head_] = entry;
    seen_blames_head_ = (seen_blames_head_ + 1) % kSeenBlamesCap;
  }
  return false;
}

std::span<const NodeId> Agent::managers_for(NodeId target) {
  return assignment_->of(target);
}

bool Agent::is_manager_of(NodeId target) {
  const auto& mgrs = managers_for(target);
  return std::find(mgrs.begin(), mgrs.end(), self_) != mgrs.end();
}

// ------------------------------------------------------- engine observer

void Agent::note_contact(NodeId id) {
  if (id == self_) return;
  if (recent_contacts_.size() >= kRecentContactsCap) {
    recent_contacts_[rng_.below(
        static_cast<std::uint32_t>(recent_contacts_.size()))] = id;
  } else {
    recent_contacts_.push_back(id);
  }
}

void Agent::on_propose_received(NodeId from, PeriodIndex period,
                                const gossip::ChunkIdList& chunks) {
  // Transport-duplicated propose: already logged. Skipping note_contact
  // matters for determinism under faults — a full contact table replaces a
  // random slot, and that draw must not depend on duplicate arrivals.
  if (received_log_.has(from, period)) return;
  received_log_.record(sim_.now(), from, period, chunks);
  note_contact(from);
}

void Agent::on_request_sent(NodeId proposer, PeriodIndex period,
                            const gossip::ChunkIdList& chunks) {
  direct_verifier_.on_request_sent(proposer, period, chunks);
}

void Agent::on_serve_received(NodeId sender, NodeId /*ack_to*/,
                              PeriodIndex period, ChunkId chunk) {
  direct_verifier_.on_serve_received(sender, period, chunk);
  note_contact(sender);
}

void Agent::on_chunks_served(NodeId receiver, PeriodIndex period,
                             const gossip::ChunkIdList& chunks) {
  cross_checker_.on_chunks_served(receiver, period, chunks);
}

void Agent::on_proposal_sent(PeriodIndex period,
                             const std::vector<NodeId>& claimed_partners,
                             const std::vector<NodeId>& /*real_partners*/,
                             const gossip::ChunkIdList& chunks) {
  // The audit-visible history must be consistent with the acks we emitted,
  // hence the *claimed* partner set (honest nodes: claimed == real).
  sent_history_.record(sim_.now(), period, claimed_partners, chunks);
}

void Agent::on_ack_received(NodeId from, const gossip::AckMsg& ack) {
  cross_checker_.on_ack_received(from, ack);
}

// ------------------------------------------------------ message handling

void Agent::handle(NodeId from, const gossip::Message& message) {
  if (const auto* confirm = std::get_if<gossip::ConfirmReqMsg>(&message)) {
    handle_confirm_request(from, *confirm);
  } else if (const auto* resp =
                 std::get_if<gossip::ConfirmRespMsg>(&message)) {
    cross_checker_.on_confirm_response(from, *resp);
  } else if (const auto* blame = std::get_if<gossip::BlameMsg>(&message)) {
    handle_blame(from, *blame);
  } else if (const auto* query =
                 std::get_if<gossip::ScoreQueryMsg>(&message)) {
    handle_score_query(from, *query);
  } else if (const auto* reply =
                 std::get_if<gossip::ScoreReplyMsg>(&message)) {
    handle_score_reply(from, *reply);
  } else if (const auto* expel =
                 std::get_if<gossip::ExpelRequestMsg>(&message)) {
    handle_expel_request(from, *expel);
  } else if (const auto* vote = std::get_if<gossip::ExpelVoteMsg>(&message)) {
    handle_expel_vote(from, *vote);
  } else if (const auto* commit =
                 std::get_if<gossip::ExpelCommitMsg>(&message)) {
    handle_expel_commit(*commit);
  } else if (message.index() >= gossip::kAuditKindFirst &&
             message.index() <
                 gossip::kAuditKindFirst + gossip::kAuditKindCount) {
    // Reliable-UDP mode acks every copy and suppresses re-processing of
    // duplicates (retransmissions whose first copy already arrived, or
    // fault-injected replays). Modeled TCP needs neither.
    if (params_.audit_channel == LiftingParams::AuditChannel::kReliableUdp &&
        audit_dedup_and_ack(from, message)) {
      return;
    }
    if (const auto* audit =
            std::get_if<gossip::AuditRequestMsg>(&message)) {
      handle_audit_request(from, *audit);
    } else if (const auto* history =
                   std::get_if<gossip::AuditHistoryMsg>(&message)) {
      auditor_.on_history(from, *history);
    } else if (const auto* poll =
                   std::get_if<gossip::HistoryPollMsg>(&message)) {
      handle_history_poll(from, *poll);
    } else if (const auto* poll_resp =
                   std::get_if<gossip::HistoryPollRespMsg>(&message)) {
      auditor_.on_poll_response(from, *poll_resp);
    }
  } else if (const auto* ack = std::get_if<gossip::AuditAckMsg>(&message)) {
    handle_audit_ack(from, *ack);
  } else {
    LIFTING_ASSERT(false, "gossip message routed to Agent");
  }
}

void Agent::handle_confirm_request(NodeId from,
                                   const gossip::ConfirmReqMsg& msg) {
  // Record the asker — the F'_h trail polled by auditors (§5.3).
  asker_log_.record(sim_.now(), msg.subject, from);
  bool confirmed;
  if (behavior_.collusion.has_value() && behavior_.collusion->cover_up &&
      behavior_.colludes_with(msg.subject)) {
    confirmed = true;  // coalition members cover each other up
  } else {
    const auto window = params_.period * kConfirmWindowPeriods;
    const TimePoint since =
        sim_.now() - std::min(sim_.now().time_since_epoch(), window);
    confirmed = received_log_.confirms(msg.subject, msg.chunks, since);
  }
  send_datagram(from, gossip::ConfirmRespMsg{msg.subject, msg.subject_period,
                                             confirmed});
}

void Agent::handle_blame(NodeId from, const gossip::BlameMsg& msg) {
  if (!is_manager_of(msg.target)) return;  // stray blame: ignore
  // A colluding manager shields its coalition: it silently drops blames
  // against coalition members (countered by the min-vote read).
  if (behavior_.colludes_with(msg.target)) return;
  if (blame_is_duplicate(from, msg)) return;
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kBlameApplied, self_, msg.target,
                   from.value(), msg.value,
                   static_cast<std::uint8_t>(msg.reason));
  }
  managers_.apply_blame(msg.target, msg.value, msg.reason);
}

void Agent::handle_score_query(NodeId from, const gossip::ScoreQueryMsg& msg) {
  if (!is_manager_of(msg.target)) return;
  double score = managers_.normalized_score(msg.target, sim_.now());
  bool expelled = managers_.expelled(msg.target);
  if (behavior_.colludes_with(msg.target)) {
    // Colluding manager inflates the coalition's scores (§5.1) — the
    // min-vote makes this ineffective as long as one honest manager
    // answers.
    score = std::max(score, kInflatedScore);
    expelled = false;
  }
  send_datagram(from,
                gossip::ScoreReplyMsg{msg.target, msg.query_id, score,
                                      expelled});
}

void Agent::score_check(NodeId target) { begin_score_read(target, {}); }

void Agent::probe_score(NodeId target, ScoreFeedbackFn on_done) {
  if (stopped_) {
    // A retired incarnation probes nothing; answer "no replies" so the
    // caller's in-flight bookkeeping still resolves.
    if (on_done) on_done(ScoreFeedback{});
    return;
  }
  begin_score_read(target, std::move(on_done));
}

void Agent::begin_score_read(NodeId target, ScoreFeedbackFn probe) {
  const std::uint32_t query_id = next_query_id_++;
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kScoreRead, self_, target, query_id, 0.0,
                   probe ? 1 : 0);
  }
  score_reads_.emplace(
      query_id, PendingScoreRead{target, {}, {}, false, std::move(probe)});
  for (const auto manager : managers_for(target)) {
    if (manager == self_) {
      auto& read = score_reads_.at(query_id);
      read.replies.push_back(managers_.normalized_score(target, sim_.now()));
      read.target_already_expelled |= managers_.expelled(target);
    } else {
      send_datagram(manager, gossip::ScoreQueryMsg{target, query_id});
    }
  }
  sim_.schedule_after(params_.score_reply_timeout,
                      [this, query_id] { finish_score_read(query_id); });
}

void Agent::handle_score_reply(NodeId from, const gossip::ScoreReplyMsg& msg) {
  const auto it = score_reads_.find(msg.query_id);
  if (it == score_reads_.end() || it->second.target != msg.target) return;
  auto& read = it->second;
  if (std::find(read.repliers.begin(), read.repliers.end(), from) !=
      read.repliers.end()) {
    return;  // transport-duplicated reply: one ballot per manager
  }
  read.repliers.push_back(from);
  read.replies.push_back(msg.normalized_score);
  read.target_already_expelled |= msg.expelled;
}

void Agent::finish_score_read(std::uint32_t query_id) {
  const auto it = score_reads_.find(query_id);
  if (it == score_reads_.end()) return;
  const auto read = it->second;
  score_reads_.erase(it);
  if (read.probe) {
    // Feedback read: report what the managers answered and stop — probes
    // never feed the expulsion protocol. A read that outlived its
    // incarnation (the node retired mid-flight) reports zero replies so
    // cross-incarnation estimates cannot leak.
    ScoreFeedback feedback;
    if (!stopped_) {
      feedback.replies = read.replies.size();
      feedback.expelled_hint = read.target_already_expelled;
      if (!read.replies.empty()) {
        feedback.score =
            *std::min_element(read.replies.begin(), read.replies.end());
      }
    }
    read.probe(feedback);
    return;
  }
  if (read.target_already_expelled) return;  // nothing to do
  if (read.replies.size() < params_.min_score_replies) return;
  // Min-vote (§5.1) by default: the most pessimistic manager saw the most
  // blames; colluding managers inflating a coalition member's score are
  // outvoted by any one honest manager.
  double score;
  if (params_.score_vote == LiftingParams::ScoreVote::kMin) {
    score = *std::min_element(read.replies.begin(), read.replies.end());
  } else {
    score = 0.0;
    for (const double s : read.replies) score += s;
    score /= static_cast<double>(read.replies.size());
  }
  if (score >= params_.eta) return;
  if (!expel_requested_.insert(read.target).second) return;  // in flight
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kExpelRequest, self_, read.target, 0,
                   score);
  }
  auto& vote = expel_votes_[read.target];
  vote = PendingExpelVote{};
  vote.total_managers = managers_for(read.target).size();
  for (const auto manager : managers_for(read.target)) {
    if (manager == self_) {
      const bool agree = managers_.normalized_score(read.target, sim_.now()) <
                         params_.eta * (1.0 - params_.expel_slack);
      if (trace_ != nullptr) {
        trace_->record(obs::EventKind::kExpelVote, self_, read.target, 0, 0.0,
                       agree ? 1 : 0);
      }
      if (agree) ++vote.yes;
    } else {
      send_datagram(manager, gossip::ExpelRequestMsg{read.target, score});
    }
  }
  sim_.schedule_after(params_.expel_vote_timeout, [this, t = read.target] {
    finish_expel_vote(t);
  });
}

void Agent::handle_expel_request(NodeId from,
                                 const gossip::ExpelRequestMsg& msg) {
  if (!is_manager_of(msg.target)) return;
  bool agree = managers_.expelled(msg.target) ||
               managers_.normalized_score(msg.target, sim_.now()) <
                   params_.eta * (1.0 - params_.expel_slack);
  if (behavior_.colludes_with(msg.target)) agree = false;
  send_datagram(from, gossip::ExpelVoteMsg{msg.target, agree});
}

void Agent::handle_expel_vote(NodeId from, const gossip::ExpelVoteMsg& msg) {
  const auto it = expel_votes_.find(msg.target);
  if (it == expel_votes_.end() || it->second.committed) return;
  auto& vote = it->second;
  if (std::find(vote.voters.begin(), vote.voters.end(), from) !=
      vote.voters.end()) {
    return;  // transport-duplicated ballot: one vote per manager
  }
  vote.voters.push_back(from);
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kExpelVote, from, msg.target, 0, 0.0,
                   msg.agree ? 1 : 0);
  }
  if (msg.agree) ++vote.yes;
}

void Agent::finish_expel_vote(NodeId target) {
  const auto it = expel_votes_.find(target);
  if (it == expel_votes_.end() || it->second.committed) return;
  const bool majority = it->second.yes * 2 > it->second.total_managers;
  it->second.committed = true;
  if (!majority) {
    expel_votes_.erase(it);
    expel_requested_.erase(target);  // allow a later retry
    return;
  }
  for (const auto manager : managers_for(target)) {
    if (manager == self_) {
      handle_expel_commit(gossip::ExpelCommitMsg{target, false});
    } else {
      send_datagram(manager, gossip::ExpelCommitMsg{target, false});
    }
  }
  expel_votes_.erase(target);
  // The request latch only serializes rounds — it must not outlive this
  // one. A committed expulsion normally takes effect (the target drops out
  // of recent contacts and later reads return the expelled mark, so a
  // retry is naturally bounded); but when the commit fails to take hold —
  // the managers refuse corroboration because the target's incarnation
  // changed mid-vote (a whitewasher bouncing through the pipeline,
  // DESIGN.md §8) — the checker must be able to indict again next time
  // its read comes back bad, exactly as a live deployment would.
  expel_requested_.erase(target);
}

void Agent::handle_expel_commit(const gossip::ExpelCommitMsg& msg) {
  if (!is_manager_of(msg.target)) return;
  if (behavior_.colludes_with(msg.target)) return;
  // Audit expulsions are authoritative (§5.3: a failed entropy check expels
  // directly); score expulsions require local corroboration so a single
  // lying observer cannot evict a healthy node.
  if (!msg.from_audit) {
    const bool corroborated =
        managers_.normalized_score(msg.target, sim_.now()) <
        params_.eta * (1.0 - params_.expel_slack);
    if (!corroborated) return;
  }
  if (managers_.mark_expelled(msg.target)) {
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kExpelCommit, self_, msg.target, 0, 0.0,
                     msg.from_audit ? 1 : 0);
    }
    if (hooks_.on_expulsion_committed) {
      hooks_.on_expulsion_committed(msg.target, self_, msg.from_audit);
    }
  }
}

void Agent::handle_audit_request(NodeId from,
                                 const gossip::AuditRequestMsg& msg) {
  ++audit_requests_received_;
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kAuditServed, self_, from, msg.audit_id);
  }
  auto records = sent_history_.snapshot();
  if (behavior_.lie_in_history && behavior_.collusion.has_value()) {
    // Replace coalition partners with random live nodes: beats the entropy
    // check, but the substituted nodes will deny the claims during the
    // a-posteriori cross-check (§5.3).
    for (auto& rec : records) {
      for (auto& partner : rec.partners) {
        if (!behavior_.collusion->contains(partner)) continue;
        const auto substitute =
            membership::sample_uniform(rng_, directory_, self_, 1);
        if (!substitute.empty()) partner = substitute.front();
      }
    }
  }
  send_reliable(from, gossip::AuditHistoryMsg{msg.audit_id, std::move(records)});
}

void Agent::handle_history_poll(NodeId from,
                                const gossip::HistoryPollMsg& msg) {
  std::uint32_t confirmed = 0;
  std::uint32_t denied = 0;
  const bool cover = behavior_.collusion.has_value() &&
                     behavior_.collusion->cover_up &&
                     behavior_.colludes_with(msg.subject);
  for (const auto& claim : msg.claims) {
    if (cover || received_log_.confirms(msg.subject, claim.chunks,
                                        kSimEpoch)) {
      ++confirmed;
    } else {
      ++denied;
    }
  }
  auto askers = asker_log_.askers_about(msg.subject);
  send_reliable(from, gossip::HistoryPollRespMsg{msg.audit_id, msg.subject,
                                                 confirmed, denied,
                                                 std::move(askers)});
}

}  // namespace lifting

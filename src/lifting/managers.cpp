#include "lifting/managers.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lifting {

std::vector<NodeId> managers_of(NodeId target, std::uint32_t n,
                                std::uint32_t m, std::uint64_t seed) {
  std::vector<std::uint32_t> scratch;
  std::vector<NodeId> out(std::min(m, n));
  const std::uint32_t count =
      managers_of_into(target, n, m, seed, scratch, out.data());
  out.resize(count);
  return out;
}

std::uint32_t managers_of_into(NodeId target, std::uint32_t n,
                               std::uint32_t m, std::uint64_t seed,
                               std::vector<std::uint32_t>& index_scratch,
                               NodeId* out) {
  LIFTING_ASSERT(n >= 2, "manager assignment needs at least two nodes");
  auto rng = derive_rng(seed ^ (0x9e3779b9ULL * (target.value() + 1)),
                        /*stream=*/0x4d414e4147455253ULL);  // "MANAGERS"
  if (target.value() >= n) {
    // Churn joiner outside the base pool: every base node is a candidate
    // (the target cannot collide with the pool, so no exclusion shift).
    const std::uint32_t count = std::min(m, n);
    sample_k_distinct_into(rng, n, count, index_scratch);
    for (std::uint32_t i = 0; i < count; ++i) out[i] = NodeId{index_scratch[i]};
    return count;
  }
  const std::uint32_t count = std::min(m, n - 1);
  // Sample over [0, n-1) and shift indices >= target to exclude the target
  // itself (a node must not manage its own score).
  sample_k_distinct_into(rng, n - 1, count, index_scratch);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t idx = index_scratch[i];
    out[i] = NodeId{idx >= target.value() ? idx + 1 : idx};
  }
  return count;
}

// ------------------------------------------------------ ManagerAssignment

void ManagerAssignment::rebind(std::uint32_t n, std::uint32_t m,
                               std::uint64_t seed) {
  // Handoff state never survives a rebind: the churn log belongs to one
  // run's event history. Promoted rows revert to the base assignment.
  if (!churn_log_.empty()) {
    for (const auto v : promoted_rows_) {
      if (v < ready_.size()) ready_[v] = 0;
    }
    churn_log_.clear();
    departed_mask_.assign(departed_mask_.size(), 0);
    reverse_.clear();  // emptiness marks "index not built" for the next run
    handoff_rngs_.clear();
    promoted_rows_.clear();
    promotions_ = 0;
  }
  // Drop joiner rows from the previous run unconditionally: a fresh table
  // holds only base rows, and the first-churn bootstrap materializes and
  // indexes EVERY cached row — a leftover row for an id that has not
  // joined yet this run would be promoted (and reported) ahead of its
  // existence, diverging reset from fresh. Joiner rows re-derive at join.
  if (len_.size() > n_) {
    flat_.resize(static_cast<std::size_t>(n_) * m_);
    len_.resize(n_);
    ready_.resize(n_);
  }
  if (n == n_ && m == m_ && seed == seed_) return;
  n_ = n;
  m_ = m;
  seed_ = seed;
  flat_.resize(static_cast<std::size_t>(n) * m);
  len_.assign(n, 0);
  ready_.assign(n, 0);
}

void ManagerAssignment::ensure_row(std::size_t v) {
  if (v < len_.size()) return;
  flat_.resize((v + 1) * m_);
  len_.resize(v + 1, 0);
  ready_.resize(v + 1, 0);
}

std::span<const NodeId> ManagerAssignment::of(NodeId target) {
  const auto v = static_cast<std::size_t>(target.value());
  ensure_row(v);  // churn joiner beyond the base population
  if (ready_[v] == 0) materialize(v);
  return row(v);
}

Pcg32& ManagerAssignment::handoff_rng(std::uint32_t target) {
  const auto it = std::find_if(
      handoff_rngs_.begin(), handoff_rngs_.end(),
      [target](const auto& kv) { return kv.first == target; });
  if (it != handoff_rngs_.end()) return it->second;
  // Same shared-hash scheme as managers_of: every participant derives the
  // identical replacement stream from (target, seed).
  handoff_rngs_.emplace_back(
      target, derive_rng(seed_ ^ (0x9e3779b9ULL * (target + 1)),
                         /*stream=*/0x48414e444f4646ULL));  // "HANDOFF"
  return handoff_rngs_.back().second;
}

template <typename DepartedFn>
NodeId ManagerAssignment::promote(std::size_t v, NodeId departed,
                                  const DepartedFn& is_departed) {
  const auto r = row(v);
  const auto slot = std::find(r.begin(), r.end(), departed);
  if (slot == r.end()) return kNoReplacement;  // replaced earlier in the log
  auto& rng = handoff_rng(static_cast<std::uint32_t>(v));
  // Walk the target's deterministic handoff stream for the first candidate
  // that is not the target, not already in the quorum, and not departed at
  // this log position. Bounded attempts: when churn has consumed nearly the
  // whole base pool there may be no eligible candidate left, in which case
  // the slot is dropped and the quorum shrinks (the pre-handoff behavior).
  const std::uint32_t max_attempts = 16 * std::max(n_, 8U);
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const NodeId candidate{rng.below(n_)};
    if (candidate.value() == v) continue;
    if (is_departed(candidate)) continue;
    if (std::find(r.begin(), r.end(), candidate) != r.end()) continue;
    *slot = candidate;
    reverse_[candidate.value()].push_back(static_cast<std::uint32_t>(v));
    promoted_rows_.push_back(static_cast<std::uint32_t>(v));
    ++promotions_;
    return candidate;
  }
  // Drop the slot: shift the row tail left and shrink the length (the flat
  // layout's erase).
  std::move(slot + 1, r.end(), slot);
  --len_[v];
  promoted_rows_.push_back(static_cast<std::uint32_t>(v));
  return kNoReplacement;
}

void ManagerAssignment::materialize(std::size_t v) {
  len_[v] = managers_of_into(NodeId{static_cast<std::uint32_t>(v)}, n_, m_,
                             seed_, sample_scratch_, row_data(v));
  ready_[v] = 1;
  if (churn_log_.empty()) return;
  // Index the *base* row before the replay, mirroring the eager path (a
  // row that existed pre-churn was indexed with its base managers, and
  // promote() appends each replacement itself) — indexing after the replay
  // would double-count replayed replacements. Entries for managers the
  // replay then replaces go stale, which the index tolerates by design.
  if (reverse_.empty()) reverse_.resize(n_);
  for (const auto manager : row(v)) {
    reverse_[manager.value()].push_back(static_cast<std::uint32_t>(v));
  }
  // Replay the churn log against a reconstructed prefix mask so this row
  // ends up exactly as if it had existed (and been promoted incrementally)
  // since the start — materialization order must never change row content.
  scratch_mask_.assign(departed_mask_.size(), 0);
  for (const auto& event : churn_log_) {
    const auto node = static_cast<std::size_t>(event.node.value());
    if (event.returned) {
      scratch_mask_[node] = 0;
      continue;
    }
    scratch_mask_[node] = 1;
    promote(v, event.node, [this](NodeId c) {
      const auto cv = static_cast<std::size_t>(c.value());
      return cv < scratch_mask_.size() && scratch_mask_[cv] != 0;
    });
  }
}

std::vector<ManagerAssignment::Handoff> ManagerAssignment::mark_departed(
    NodeId id) {
  const auto v = static_cast<std::size_t>(id.value());
  if (departed_mask_.size() <= v) departed_mask_.resize(v + 1, 0);
  std::vector<Handoff> executed;
  if (departed_mask_[v] != 0) return executed;  // already registered
  if (churn_log_.empty() && reverse_.empty()) {
    // First churn event: materialize EVERY known row, then index them all.
    // Materialization is outcome-neutral (replay contract), and with every
    // row present the promotion counter becomes a property of the run
    // alone — a lazily-skipped row would otherwise replay (and count) its
    // promotions only if some measurement happened to look at it later.
    // One-time O(n·M); joiner rows added later are forced at join time
    // (Experiment::join_node).
    reverse_.resize(n_);
    for (std::size_t r = 0; r < ready_.size(); ++r) {
      if (ready_[r] == 0) materialize(r);
      for (const auto manager : row(r)) {
        reverse_[manager.value()].push_back(static_cast<std::uint32_t>(r));
      }
    }
  }
  churn_log_.push_back(ChurnEvent{id, /*returned=*/false});
  departed_mask_[v] = 1;
  if (id.value() >= n_) return executed;  // joiners never manage anyone
  if (reverse_.size() < n_) reverse_.resize(n_);
  // The reverse index is append-only, so verify each entry against the row
  // before promoting (the manager may have been replaced there already).
  // promote() appends to reverse_[replacement], never to reverse_[id], so
  // iterating a snapshot is safe.
  const auto targets = reverse_[id.value()];
  const auto is_departed_now = [this](NodeId c) { return departed(c); };
  for (const auto target : targets) {
    const auto row = static_cast<std::size_t>(target);
    if (ready_[row] == 0) continue;
    const NodeId replacement = promote(row, id, is_departed_now);
    if (replacement != kNoReplacement) {
      executed.push_back(Handoff{NodeId{target}, id, replacement});
    }
  }
  return executed;
}

void ManagerAssignment::mark_returned(NodeId id) {
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= departed_mask_.size() || departed_mask_[v] == 0) return;
  churn_log_.push_back(ChurnEvent{id, /*returned=*/true});
  departed_mask_[v] = 0;
}

}  // namespace lifting

#include "lifting/managers.hpp"

#include "common/assert.hpp"

namespace lifting {

std::vector<NodeId> managers_of(NodeId target, std::uint32_t n,
                                std::uint32_t m, std::uint64_t seed) {
  LIFTING_ASSERT(n >= 2, "manager assignment needs at least two nodes");
  auto rng = derive_rng(seed ^ (0x9e3779b9ULL * (target.value() + 1)),
                        /*stream=*/0x4d414e4147455253ULL);  // "MANAGERS"
  std::vector<NodeId> out;
  if (target.value() >= n) {
    // Churn joiner outside the base pool: every base node is a candidate
    // (the target cannot collide with the pool, so no exclusion shift).
    const std::uint32_t count = std::min(m, n);
    const auto raw = sample_k_distinct(rng, n, count);
    out.reserve(count);
    for (const auto idx : raw) out.push_back(NodeId{idx});
    return out;
  }
  const std::uint32_t count = std::min(m, n - 1);
  // Sample over [0, n-1) and shift indices >= target to exclude the target
  // itself (a node must not manage its own score).
  const auto raw = sample_k_distinct(rng, n - 1, count);
  out.reserve(count);
  for (const auto idx : raw) {
    const std::uint32_t shifted = idx >= target.value() ? idx + 1 : idx;
    out.push_back(NodeId{shifted});
  }
  return out;
}

}  // namespace lifting

#ifndef LIFTING_LIFTING_MANAGERS_HPP
#define LIFTING_LIFTING_MANAGERS_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/formulas.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"
#include "lifting/params.hpp"

/// Alliatrust-like reputation architecture (paper §5.1): every node is
/// assigned M managers that accumulate the blames against it. Reads take
/// the minimum over the managers' replies (robust to lost blame messages
/// and to colluding managers inflating scores); expulsions are agreed among
/// the managers.

namespace lifting {

/// Deterministic manager assignment: every participant can derive the M
/// managers of any node from the shared deployment seed (the paper assigns
/// "M random managers"; a shared hash achieves that without coordination).
///
/// `n` is the *base* population: managers are always drawn from the initial
/// id range [0, n). A target outside that range (a churn joiner) still gets
/// M deterministic managers from the base pool — every participant derives
/// the same set from (target, n, m, seed) the moment the joiner appears,
/// with no reassignment protocol. When a base-pool manager departs, the
/// ManagerAssignment below promotes a deterministic replacement (DESIGN.md
/// §7); without handoff the min-vote read tolerates the shrunken quorum.
[[nodiscard]] std::vector<NodeId> managers_of(NodeId target, std::uint32_t n,
                                              std::uint32_t m,
                                              std::uint64_t seed);

/// Allocation-free managers_of: writes up to min(m, ...) managers into
/// `out` (which must have room for m entries) and returns the count, using
/// `index_scratch` for the k-subset draw. Identical rng draw sequence and
/// result as managers_of — this is what fills the ManagerAssignment's flat
/// row storage without a per-row heap vector.
std::uint32_t managers_of_into(NodeId target, std::uint32_t n,
                               std::uint32_t m, std::uint64_t seed,
                               std::vector<std::uint32_t>& index_scratch,
                               NodeId* out);

/// Lazily-materialized manager assignment for a whole deployment, indexed
/// densely by target id. The *base* assignment is a pure function of
/// (n, m, seed), so one instance is shared by every agent of an experiment
/// — the per-blame manager lookup is an array read instead of a hash plus
/// a fresh O(m) sample.
///
/// Manager handoff (DESIGN.md §7): the table additionally tracks churn
/// among the base pool through an ordered log of departures/returns
/// (`mark_departed` / `mark_returned`, driven by the Experiment after the
/// handoff delay). When a departed node sits in a target's manager row, it
/// is replaced by the next eligible candidate from a per-target
/// deterministic handoff stream — the same shared-hash idea as the base
/// assignment, so every participant derives the same replacement from
/// (target, seed, departure history). Rows materialized after churn replay
/// the log against a reconstructed prefix mask, so WHEN a row is first
/// looked at can never change WHAT it contains — measurement code may
/// materialize rows early without perturbing outcomes. Promotions are
/// sticky: a manager that departs and later returns does not demote its
/// replacement (it becomes an eligible candidate again, nothing more).
class ManagerAssignment {
 public:
  ManagerAssignment(std::uint32_t n, std::uint32_t m, std::uint64_t seed)
      : n_(n),
        m_(m),
        seed_(seed),
        flat_(static_cast<std::size_t>(n) * m),
        len_(n, 0),
        ready_(n, 0) {}

  /// Re-targets the table at a (possibly) different deployment, always
  /// clearing handoff state (churn log, promotions, handoff rngs) and
  /// dropping joiner rows (ids >= n re-derive at their next join; keeping
  /// them would let the first-churn bootstrap see rows for nodes that do
  /// not exist yet this run). When (n, m, seed) are unchanged the base
  /// rows untouched by promotions stay valid — the base assignment is a
  /// pure function of the triple. Otherwise every row is invalidated in
  /// place and refilled lazily, keeping the outer table storage
  /// (Experiment::reset).
  void rebind(std::uint32_t n, std::uint32_t m, std::uint64_t seed);

  /// The current M managers of `target`: the base assignment with every
  /// handoff promotion logged so far applied. The returned view is stable
  /// until the next promotion touching the row or the next joiner-row
  /// growth (same lifetime callers already respected when rows were heap
  /// vectors — consume the row before the table can mutate).
  [[nodiscard]] std::span<const NodeId> of(NodeId target);

  /// One executed promotion: `departed` left `target`'s quorum and
  /// `replacement` took its slot (and should adopt its ledger row).
  struct Handoff {
    NodeId target;
    NodeId departed;
    NodeId replacement;
  };

  /// Registers a base-pool departure in the churn log and promotes a
  /// replacement in every *materialized* row containing `id`. Returns those
  /// promotions so the caller can migrate ledger rows; rows materialized
  /// later replay the log internally (they never held ledger state, so
  /// there is nothing to migrate for them). No-op (empty result) when the
  /// node is already marked departed.
  std::vector<Handoff> mark_departed(NodeId id);

  /// Registers a rejoin: `id` becomes an eligible replacement candidate
  /// again. Promotions that already happened stay (handoff is sticky).
  void mark_returned(NodeId id);

  [[nodiscard]] bool departed(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < departed_mask_.size() && departed_mask_[v] != 0;
  }

  /// Total promotions executed (eager and replayed) — the bench's
  /// "handoff count".
  [[nodiscard]] std::uint64_t promotions() const noexcept {
    return promotions_;
  }

 private:
  struct ChurnEvent {
    NodeId node;
    bool returned;  // false = departed, true = returned
  };

  /// Fills row `v` with the base assignment and replays the full churn log
  /// against a reconstructed prefix mask (scratch_mask_), so a late
  /// materialization reproduces exactly the promotions an early one would
  /// have received incrementally.
  void materialize(std::size_t v);
  /// Replaces `departed` in row `v` with the next eligible candidate from
  /// the target's handoff stream and returns it; returns kNoReplacement
  /// when `departed` is not in the row (already replaced) or no eligible
  /// candidate exists (the slot is dropped and the quorum shrinks).
  /// `is_departed(candidate)` must answer against the mask valid at this
  /// log position.
  static constexpr NodeId kNoReplacement{0xFFFFFFFFU};
  template <typename DepartedFn>
  NodeId promote(std::size_t v, NodeId departed,
                 const DepartedFn& is_departed);
  [[nodiscard]] Pcg32& handoff_rng(std::uint32_t target);

  /// Grows flat_/len_/ready_ to cover row `v` (churn joiners beyond the
  /// base pool).
  void ensure_row(std::size_t v);
  [[nodiscard]] NodeId* row_data(std::size_t v) noexcept {
    return flat_.data() + v * m_;
  }
  [[nodiscard]] std::span<NodeId> row(std::size_t v) noexcept {
    return {row_data(v), len_[v]};
  }

  std::uint32_t n_;
  std::uint32_t m_;
  std::uint64_t seed_;
  /// Row storage, structure-of-arrays: one flat m_-strided buffer plus a
  /// per-row length (rows shrink when a handoff finds no eligible
  /// replacement). One allocation for the whole deployment instead of one
  /// heap vector per node — at 10^6 nodes the per-row vector headers and
  /// allocator slack alone cost more than the manager ids.
  std::vector<NodeId> flat_;
  std::vector<std::uint32_t> len_;
  std::vector<std::uint8_t> ready_;
  std::vector<std::uint32_t> sample_scratch_;  // managers_of_into k-subset

  // ---- handoff state (cleared by rebind)
  std::vector<ChurnEvent> churn_log_;
  std::vector<std::uint8_t> departed_mask_;  // current, dense by id
  /// manager id -> target ids whose materialized row contains it (append-
  /// only; entries go stale when the manager is replaced and are verified
  /// against the row before use). Sized by base pool: only [0, n) ids can
  /// ever be managers.
  std::vector<std::vector<std::uint32_t>> reverse_;
  /// Per-target handoff stream, created on first promotion (flat map —
  /// promotions are rare relative to rows).
  std::vector<std::pair<std::uint32_t, Pcg32>> handoff_rngs_;
  std::vector<std::uint32_t> promoted_rows_;  // rows to invalidate on rebind
  std::vector<std::uint8_t> scratch_mask_;    // replay prefix mask
  std::uint64_t promotions_ = 0;
};

/// Per-node manager state: the blame ledger for the nodes this node
/// manages, with loss compensation applied at read time (§6.2): the
/// normalized score after r periods is
///   s = (r·b̃ - Σ blames) / r
/// which has zero mean for honest nodes. A-posteriori-check blames are
/// compensated by Eq. 4 when they arrive (audits are sporadic — §6.2).
///
/// Churn support (DESIGN.md §7): a row can be handed off to a replacement
/// manager (`take_record` / `adopt_record` — the blame total moves exactly
/// once) and a rejoining target can restart its score history
/// (`begin_incarnation` — blame cleared, score periods counted from the
/// rejoin instant via a per-record genesis override).
class ManagerStore {
 public:
  ManagerStore(const LiftingParams& params, TimePoint genesis)
      : period_(params.period),
        genesis_(genesis),
        per_period_compensation_(params.compensation_factor *
                                 analysis::expected_wrongful_blame(
                                     params.model())),
        apcc_compensation_(params.compensation_factor *
                           analysis::expected_blame_apcc(
                               params.model(), params.history_periods())) {}

  /// Pre-sizes the flat map for the expected managed-target count. Each of
  /// n nodes draws M managers uniformly, so a manager serves ~Binomial(n,
  /// M/n) ≈ Poisson(M) targets; 2·M covers that far beyond any realistic
  /// tail. Called once at agent construction so the table never reallocates
  /// during the first periods of a run.
  void reserve(std::size_t expected_targets) {
    keys_.reserve(expected_targets);
    recs_.reserve(expected_targets);
  }

  /// Applies a blame. Rate-check and a-posteriori blames carry their own
  /// compensation; regular verification blames are compensated per period
  /// at read time.
  void apply_blame(NodeId target, double value, gossip::BlameReason reason) {
    auto& rec = record(target);
    if (reason == gossip::BlameReason::kAposterioriCheck) {
      // Eq. 4: subtract the expected loss-induced unconfirmed entries.
      rec.blame_total += value - apcc_compensation_;
    } else {
      rec.blame_total += value;
    }
  }

  /// Normalized, compensated score of `target` at time `now`. The period
  /// count r runs from this manager's genesis unless the target's record
  /// carries an incarnation override (a rejoiner restarting fresh).
  [[nodiscard]] double normalized_score(NodeId target, TimePoint now) const {
    const Record* rec = find_record(target);
    const double r = periods_since(
        rec != nullptr && rec->has_genesis ? rec->genesis : genesis_, now);
    const double blames = rec == nullptr ? 0.0 : rec->blame_total;
    return (r * per_period_compensation_ - blames) / r;
  }

  /// Number of gossip periods the target has spent in the system (>= 1).
  [[nodiscard]] double periods_in_system(TimePoint now) const {
    return periods_since(genesis_, now);
  }

  [[nodiscard]] bool expelled(NodeId target) const {
    const Record* rec = find_record(target);
    return rec != nullptr && rec->expelled;
  }
  /// Marks the target expelled. Returns true on the first transition.
  bool mark_expelled(NodeId target) {
    auto& rec = record(target);
    const bool first = !rec.expelled;
    rec.expelled = true;
    return first;
  }

  /// A ledger row in transit between managers (handoff migration).
  struct MigratedRecord {
    double blame_total = 0.0;
    bool expelled = false;
    bool has_genesis = false;
    TimePoint genesis{};
    bool valid = false;  ///< false: the source never held a row
  };

  /// Extracts and *zeroes* the target's row — the departing manager's half
  /// of a handoff. Calling it again returns {valid = false}, which is what
  /// makes "migrated exactly once" checkable.
  MigratedRecord take_record(NodeId target) {
    Record* rec = find_mutable(target);
    if (rec == nullptr || (!rec->has_genesis && rec->blame_total == 0.0 &&
                           !rec->expelled)) {
      return {};
    }
    MigratedRecord out{rec->blame_total, rec->expelled, rec->has_genesis,
                       rec->genesis, true};
    *rec = Record{};
    return out;
  }

  /// Merges a migrated row into this store — the replacement manager's
  /// half of a handoff. Blame accumulates on top of anything already
  /// routed here since the promotion.
  void adopt_record(NodeId target, const MigratedRecord& migrated) {
    if (!migrated.valid) return;
    auto& rec = record(target);
    rec.blame_total += migrated.blame_total;
    rec.expelled = rec.expelled || migrated.expelled;
    if (migrated.has_genesis && !rec.has_genesis) {
      rec.has_genesis = true;
      rec.genesis = migrated.genesis;
    }
  }

  /// Moves every non-empty row into `dest` — the carried-store rejoin path
  /// (ScenarioConfig::carried_manager_store): this store belongs to the
  /// departed incarnation, `dest` to the returning one. Rows without a
  /// per-incarnation genesis override are stamped with THIS store's genesis
  /// first: the blame they hold accrued against it, and adopting them into
  /// a store whose genesis is the rejoin instant would silently shrink
  /// every target's period count to ~1 (a score cliff for everyone the
  /// returning manager judges). Source rows are zeroed by the move, so a
  /// row carries at most once. Returns the number of rows moved.
  std::size_t carry_into(ManagerStore& dest) {
    std::size_t moved = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      Record& rec = recs_[i];
      if (!rec.has_genesis && rec.blame_total == 0.0 && !rec.expelled) {
        continue;  // empty row: nothing to conserve
      }
      const MigratedRecord out{rec.blame_total, rec.expelled, true,
                               rec.has_genesis ? rec.genesis : genesis_, true};
      rec = Record{};
      dest.adopt_record(keys_[i], out);
      ++moved;
    }
    return moved;
  }

  /// Restarts the target's score history at `now` (rejoin with the fresh
  /// score policy): blame forgotten, period count restarted. The expulsion
  /// mark survives — an indictment is not erased by leaving and returning.
  void begin_incarnation(NodeId target, TimePoint now) {
    auto& rec = record(target);
    rec.blame_total = 0.0;
    rec.has_genesis = true;
    rec.genesis = now;
  }

  [[nodiscard]] double raw_blame_total(NodeId target) const {
    const Record* rec = find_record(target);
    return rec == nullptr ? 0.0 : rec->blame_total;
  }
  [[nodiscard]] double per_period_compensation() const noexcept {
    return per_period_compensation_;
  }

 private:
  struct Record {
    double blame_total = 0.0;
    bool expelled = false;
    bool has_genesis = false;  ///< per-incarnation genesis override set?
    TimePoint genesis{};
  };

  [[nodiscard]] double periods_since(TimePoint genesis, TimePoint now) const {
    const auto age = now - genesis;
    const double r = static_cast<double>(age / period_);
    return r < 1.0 ? 1.0 : r;
  }

  /// A node manages ~M targets, so the record table is a small flat map:
  /// a linear scan over contiguous keys beats hashing at this size and
  /// keeps the per-blame path allocation- and hash-free.
  [[nodiscard]] const Record* find_record(NodeId target) const noexcept {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == target) return &recs_[i];
    }
    return nullptr;
  }
  [[nodiscard]] Record* find_mutable(NodeId target) noexcept {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == target) return &recs_[i];
    }
    return nullptr;
  }
  [[nodiscard]] Record& record(NodeId target) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == target) return recs_[i];
    }
    keys_.push_back(target);
    recs_.emplace_back();
    return recs_.back();
  }

  /// Only the gossip period survives from LiftingParams — copying the whole
  /// parameter block into every one of n stores wasted ~200 B/node for two
  /// derived doubles and one Duration.
  Duration period_;
  TimePoint genesis_;
  double per_period_compensation_;
  double apcc_compensation_;
  std::vector<NodeId> keys_;
  std::vector<Record> recs_;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_MANAGERS_HPP

#ifndef LIFTING_LIFTING_MANAGERS_HPP
#define LIFTING_LIFTING_MANAGERS_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/formulas.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"
#include "lifting/params.hpp"

/// Alliatrust-like reputation architecture (paper §5.1): every node is
/// assigned M managers that accumulate the blames against it. Reads take
/// the minimum over the managers' replies (robust to lost blame messages
/// and to colluding managers inflating scores); expulsions are agreed among
/// the managers.

namespace lifting {

/// Deterministic manager assignment: every participant can derive the M
/// managers of any node from the shared deployment seed (the paper assigns
/// "M random managers"; a shared hash achieves that without coordination).
///
/// `n` is the *base* population: managers are always drawn from the initial
/// id range [0, n). A target outside that range (a churn joiner) still gets
/// M deterministic managers from the base pool — every participant derives
/// the same set from (target, n, m, seed) the moment the joiner appears,
/// with no reassignment protocol. Base-pool managers that later depart
/// simply stop answering; the min-vote read tolerates the shrunken quorum.
[[nodiscard]] std::vector<NodeId> managers_of(NodeId target, std::uint32_t n,
                                              std::uint32_t m,
                                              std::uint64_t seed);

/// Lazily-materialized manager assignment for a whole deployment, indexed
/// densely by target id. The assignment is a pure function of
/// (n, m, seed), so one instance is shared by every agent of an experiment
/// — the per-blame manager lookup is an array read instead of a hash plus
/// a fresh O(m) sample.
class ManagerAssignment {
 public:
  ManagerAssignment(std::uint32_t n, std::uint32_t m, std::uint64_t seed)
      : n_(n), m_(m), seed_(seed), cache_(n), ready_(n, 0) {}

  /// Re-targets the table at a (possibly) different deployment. A no-op
  /// when (n, m, seed) are unchanged — the assignment is a pure function of
  /// them, so every cached row (including lazily-added churn joiners) stays
  /// valid. Otherwise the rows are invalidated in place and refilled
  /// lazily, keeping the outer table storage (Experiment::reset).
  void rebind(std::uint32_t n, std::uint32_t m, std::uint64_t seed) {
    if (n == n_ && m == m_ && seed == seed_) return;
    n_ = n;
    m_ = m;
    seed_ = seed;
    cache_.resize(n);
    ready_.assign(n, 0);
  }

  [[nodiscard]] const std::vector<NodeId>& of(NodeId target) {
    const auto v = static_cast<std::size_t>(target.value());
    if (v >= cache_.size()) {  // churn joiner beyond the base population
      cache_.resize(v + 1);
      ready_.resize(v + 1, 0);
    }
    if (ready_[v] == 0) {
      cache_[v] = managers_of(target, n_, m_, seed_);
      ready_[v] = 1;
    }
    return cache_[v];
  }

 private:
  std::uint32_t n_;
  std::uint32_t m_;
  std::uint64_t seed_;
  std::vector<std::vector<NodeId>> cache_;
  std::vector<std::uint8_t> ready_;
};

/// Per-node manager state: the blame ledger for the nodes this node
/// manages, with loss compensation applied at read time (§6.2): the
/// normalized score after r periods is
///   s = (r·b̃ - Σ blames) / r
/// which has zero mean for honest nodes. A-posteriori-check blames are
/// compensated by Eq. 4 when they arrive (audits are sporadic — §6.2).
class ManagerStore {
 public:
  ManagerStore(const LiftingParams& params, TimePoint genesis)
      : params_(params),
        genesis_(genesis),
        per_period_compensation_(params.compensation_factor *
                                 analysis::expected_wrongful_blame(
                                     params.model())),
        apcc_compensation_(params.compensation_factor *
                           analysis::expected_blame_apcc(
                               params.model(), params.history_periods())) {}

  /// Applies a blame. Rate-check and a-posteriori blames carry their own
  /// compensation; regular verification blames are compensated per period
  /// at read time.
  void apply_blame(NodeId target, double value, gossip::BlameReason reason) {
    auto& rec = record(target);
    if (reason == gossip::BlameReason::kAposterioriCheck) {
      // Eq. 4: subtract the expected loss-induced unconfirmed entries.
      rec.blame_total += value - apcc_compensation_;
    } else {
      rec.blame_total += value;
    }
  }

  /// Normalized, compensated score of `target` at time `now`.
  [[nodiscard]] double normalized_score(NodeId target, TimePoint now) const {
    const double r = periods_in_system(now);
    const Record* rec = find_record(target);
    const double blames = rec == nullptr ? 0.0 : rec->blame_total;
    return (r * per_period_compensation_ - blames) / r;
  }

  /// Number of gossip periods the target has spent in the system (>= 1).
  [[nodiscard]] double periods_in_system(TimePoint now) const {
    const auto age = now - genesis_;
    const double r = static_cast<double>(age / params_.period);
    return r < 1.0 ? 1.0 : r;
  }

  [[nodiscard]] bool expelled(NodeId target) const {
    const Record* rec = find_record(target);
    return rec != nullptr && rec->expelled;
  }
  /// Marks the target expelled. Returns true on the first transition.
  bool mark_expelled(NodeId target) {
    auto& rec = record(target);
    const bool first = !rec.expelled;
    rec.expelled = true;
    return first;
  }

  [[nodiscard]] double raw_blame_total(NodeId target) const {
    const Record* rec = find_record(target);
    return rec == nullptr ? 0.0 : rec->blame_total;
  }
  [[nodiscard]] double per_period_compensation() const noexcept {
    return per_period_compensation_;
  }

 private:
  struct Record {
    double blame_total = 0.0;
    bool expelled = false;
  };

  /// A node manages ~M targets, so the record table is a small flat map:
  /// a linear scan over contiguous keys beats hashing at this size and
  /// keeps the per-blame path allocation- and hash-free.
  [[nodiscard]] const Record* find_record(NodeId target) const noexcept {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == target) return &recs_[i];
    }
    return nullptr;
  }
  [[nodiscard]] Record& record(NodeId target) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == target) return recs_[i];
    }
    keys_.push_back(target);
    recs_.emplace_back();
    return recs_.back();
  }

  LiftingParams params_;
  TimePoint genesis_;
  double per_period_compensation_;
  double apcc_compensation_;
  std::vector<NodeId> keys_;
  std::vector<Record> recs_;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_MANAGERS_HPP

#ifndef LIFTING_LIFTING_MANAGERS_HPP
#define LIFTING_LIFTING_MANAGERS_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/formulas.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"
#include "lifting/params.hpp"

/// Alliatrust-like reputation architecture (paper §5.1): every node is
/// assigned M managers that accumulate the blames against it. Reads take
/// the minimum over the managers' replies (robust to lost blame messages
/// and to colluding managers inflating scores); expulsions are agreed among
/// the managers.

namespace lifting {

/// Deterministic manager assignment: every participant can derive the M
/// managers of any node from the shared deployment seed (the paper assigns
/// "M random managers"; a shared hash achieves that without coordination).
[[nodiscard]] std::vector<NodeId> managers_of(NodeId target, std::uint32_t n,
                                              std::uint32_t m,
                                              std::uint64_t seed);

/// Per-node manager state: the blame ledger for the nodes this node
/// manages, with loss compensation applied at read time (§6.2): the
/// normalized score after r periods is
///   s = (r·b̃ - Σ blames) / r
/// which has zero mean for honest nodes. A-posteriori-check blames are
/// compensated by Eq. 4 when they arrive (audits are sporadic — §6.2).
class ManagerStore {
 public:
  ManagerStore(const LiftingParams& params, TimePoint genesis)
      : params_(params),
        genesis_(genesis),
        per_period_compensation_(params.compensation_factor *
                                 analysis::expected_wrongful_blame(
                                     params.model())),
        apcc_compensation_(params.compensation_factor *
                           analysis::expected_blame_apcc(
                               params.model(), params.history_periods())) {}

  /// Applies a blame. Rate-check and a-posteriori blames carry their own
  /// compensation; regular verification blames are compensated per period
  /// at read time.
  void apply_blame(NodeId target, double value, gossip::BlameReason reason) {
    auto& rec = records_[target];
    if (reason == gossip::BlameReason::kAposterioriCheck) {
      // Eq. 4: subtract the expected loss-induced unconfirmed entries.
      rec.blame_total += value - apcc_compensation_;
    } else {
      rec.blame_total += value;
    }
  }

  /// Normalized, compensated score of `target` at time `now`.
  [[nodiscard]] double normalized_score(NodeId target, TimePoint now) const {
    const double r = periods_in_system(now);
    const auto it = records_.find(target);
    const double blames = it == records_.end() ? 0.0 : it->second.blame_total;
    return (r * per_period_compensation_ - blames) / r;
  }

  /// Number of gossip periods the target has spent in the system (>= 1).
  [[nodiscard]] double periods_in_system(TimePoint now) const {
    const auto age = now - genesis_;
    const double r = static_cast<double>(age / params_.period);
    return r < 1.0 ? 1.0 : r;
  }

  [[nodiscard]] bool expelled(NodeId target) const {
    const auto it = records_.find(target);
    return it != records_.end() && it->second.expelled;
  }
  /// Marks the target expelled. Returns true on the first transition.
  bool mark_expelled(NodeId target) {
    auto& rec = records_[target];
    const bool first = !rec.expelled;
    rec.expelled = true;
    return first;
  }

  [[nodiscard]] double raw_blame_total(NodeId target) const {
    const auto it = records_.find(target);
    return it == records_.end() ? 0.0 : it->second.blame_total;
  }
  [[nodiscard]] double per_period_compensation() const noexcept {
    return per_period_compensation_;
  }

 private:
  struct Record {
    double blame_total = 0.0;
    bool expelled = false;
  };

  LiftingParams params_;
  TimePoint genesis_;
  double per_period_compensation_;
  double apcc_compensation_;
  std::unordered_map<NodeId, Record> records_;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_MANAGERS_HPP

#ifndef LIFTING_LIFTING_VERIFIER_HPP
#define LIFTING_LIFTING_VERIFIER_HPP

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"
#include "lifting/params.hpp"
#include "sim/simulator.hpp"

namespace lifting::obs {
class Recorder;
}  // namespace lifting::obs

/// The two direct verification procedures of LiFTinG (paper §5.2).
///
/// DirectVerifier (requester side): after requesting R chunks against a
/// proposal, blames the proposer f·(|R|-|S|)/|R| for the chunks that never
/// arrived — f when nothing arrived, matching a dropped proposal.
///
/// CrossChecker (server side): after serving chunks, expects an ack listing
/// the receiver's next-phase partners; blames f when the ack is missing or
/// does not cover the served chunks; blames the fanout shortfall (f - f̂)
/// from the ack's partner list; and, with probability p_dcc, polls the
/// listed witnesses and blames 1 per contradictory or missing testimony.

namespace lifting {

/// Emits a blame against `target` (routed to its managers by the agent).
using BlameFn =
    std::function<void(NodeId target, double value, gossip::BlameReason)>;

/// Sends a protocol message (datagram) from this node.
using SendFn = std::function<void(NodeId to, gossip::Message message)>;

class DirectVerifier {
 public:
  DirectVerifier(sim::Simulator& sim, const LiftingParams& params,
                 BlameFn blame)
      : sim_(sim), params_(params), blame_(std::move(blame)) {}

  /// Arms verdict tracing (DESIGN.md §13). The verifier does not know its
  /// own id, so the arming agent passes it for the records' actor field.
  void set_trace(obs::Recorder* trace, NodeId self) noexcept {
    trace_ = trace;
    trace_self_ = self;
  }

  /// We requested `chunks` from `proposer` against its proposal `period`.
  void on_request_sent(NodeId proposer, PeriodIndex period,
                       const gossip::ChunkIdList& chunks);

  /// A served chunk arrived from `sender`.
  void on_serve_received(NodeId sender, PeriodIndex period, ChunkId chunk);

  [[nodiscard]] std::uint64_t verifications_completed() const noexcept {
    return completed_;
  }

 private:
  struct Key {
    NodeId proposer;
    PeriodIndex period;
    friend bool operator==(const Key&, const Key&) = default;
    bool operator<(const Key& o) const {
      return proposer != o.proposer ? proposer < o.proposer
                                    : period < o.period;
    }
  };
  /// Outstanding chunk ids, kept sorted and unique — a SmallVector with
  /// inline capacity >= the typical |R|, so tracking a verification
  /// allocates nothing (the per-request std::set it replaces paid one node
  /// allocation per chunk, the top allocator of whole runs).
  struct Pending {
    Key key;
    gossip::ChunkIdList outstanding;
    std::size_t requested = 0;
  };

  /// A node has at most ~f concurrent outstanding verifications (one per
  /// proposer contacted within dv_timeout ≈ one period), so the pending set
  /// is a key-sorted flat vector: binary search, ordered insert/erase, and
  /// — unlike the std::map it replaces — zero per-entry node allocations
  /// once the vector's capacity has warmed up (Experiment::reset keeps it).
  [[nodiscard]] Pending* find_pending(const Key& key);

  void on_deadline(Key key);

  sim::Simulator& sim_;
  const LiftingParams& params_;
  BlameFn blame_;
  obs::Recorder* trace_ = nullptr;
  NodeId trace_self_;
  RecycledVector<Pending> pending_;  // sorted by key
  std::uint64_t completed_ = 0;
};

class CrossChecker {
 public:
  CrossChecker(sim::Simulator& sim, const LiftingParams& params, NodeId self,
               Pcg32& rng, BlameFn blame, SendFn send)
      : sim_(sim),
        params_(params),
        self_(self),
        rng_(rng),
        blame_(std::move(blame)),
        send_(std::move(send)) {}

  /// Arms verdict tracing (records carry self_ as the actor).
  void set_trace(obs::Recorder* trace) noexcept { trace_ = trace; }

  /// We served `chunks` to `receiver` (against our proposal of `period`).
  void on_chunks_served(NodeId receiver, PeriodIndex period,
                        const gossip::ChunkIdList& chunks);

  /// The receiver's ack[i](partners) arrived.
  void on_ack_received(NodeId from, const gossip::AckMsg& ack);

  /// A witness testimony arrived.
  void on_confirm_response(NodeId witness, const gossip::ConfirmRespMsg& msg);

  [[nodiscard]] std::uint64_t confirm_rounds_started() const noexcept {
    return rounds_started_;
  }

 private:
  /// Key of both tracker tables: (peer, period). The tables were std::maps
  /// over this pair; a node has only ~f outstanding serve batches and a
  /// handful of running confirm rounds at any instant, so — like
  /// DirectVerifier::pending_ above — they are key-sorted flat vectors
  /// now: binary search, ordered insert/erase, identical iteration order
  /// to the maps they replace (sorted by key), and zero per-entry node
  /// allocations once the vectors' capacity has warmed up
  /// (Experiment::reset keeps it; bench_sweep_scaling prints the
  /// fresh-vs-reset delta this buys).
  struct Batch {
    NodeId receiver;
    PeriodIndex serve_period;  // our proposal period the serve answered
    gossip::ChunkIdList chunks;  // sorted + unique (see Pending::outstanding)
    bool covered = false;  // fully covered by an ack
    std::uint64_t generation = 0;
    [[nodiscard]] std::pair<NodeId, PeriodIndex> key() const noexcept {
      return {receiver, serve_period};
    }
  };
  struct ConfirmRound {
    NodeId subject;
    PeriodIndex subject_period;  // the ack's (receiver's) period
    std::size_t witnesses = 0;
    std::size_t yes = 0;
    std::size_t no = 0;
    /// Witnesses whose testimony was counted. One vote per witness: a
    /// transport-duplicated response must not fill the round's quota and
    /// crowd out a real witness (duplicate-delivery idempotence,
    /// tests/test_faults.cpp).
    std::vector<NodeId> responded;
    [[nodiscard]] std::pair<NodeId, PeriodIndex> key() const noexcept {
      return {subject, subject_period};
    }
  };

  [[nodiscard]] Batch* find_batch(NodeId receiver, PeriodIndex serve_period);
  [[nodiscard]] ConfirmRound* find_round(NodeId subject,
                                         PeriodIndex subject_period);

  void on_ack_deadline(NodeId receiver, PeriodIndex serve_period,
                       std::uint64_t generation);
  void on_confirm_deadline(NodeId subject, PeriodIndex subject_period);
  void start_confirm_round(const gossip::AckMsg& ack, NodeId subject,
                           const gossip::ChunkIdList& chunks);

  sim::Simulator& sim_;
  const LiftingParams& params_;
  NodeId self_;
  Pcg32& rng_;
  BlameFn blame_;
  SendFn send_;
  obs::Recorder* trace_ = nullptr;

  /// Outstanding serve batches, sorted by (receiver, serve_period).
  RecycledVector<Batch> batches_;
  /// Running confirm rounds, sorted by (subject, subject_period).
  RecycledVector<ConfirmRound> rounds_;
  /// (receiver, ack period) pairs whose fanout assertion was already
  /// judged — a transport-level duplicate of an ack must not double-blame
  /// kFanoutDecrease (each ack asserts ONE propose phase's partner set).
  /// Sorted flat vector; pruned against the advancing period horizon so it
  /// stays bounded by the in-flight window.
  std::vector<std::pair<NodeId, PeriodIndex>> fanout_checked_;
  std::uint64_t generation_ = 0;
  std::uint64_t rounds_started_ = 0;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_VERIFIER_HPP

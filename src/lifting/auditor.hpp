#ifndef LIFTING_LIFTING_AUDITOR_HPP
#define LIFTING_LIFTING_AUDITOR_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"
#include "lifting/params.hpp"
#include "sim/simulator.hpp"

/// Local history auditing (paper §5.3), auditor side.
///
/// An audit of a suspected node proceeds in two rounds over TCP:
///  1. Fetch the subject's history of sent proposals (last h seconds).
///     Immediately check (a) the proposal rate (gossip-period compliance)
///     and (b) the Shannon entropy of the fanout multiset F_h against γ.
///  2. Poll every distinct partner named in the history: each reports which
///     claimed proposals it actually received (a-posteriori cross-check —
///     blame 1 per denial) and who asked it to confirm the subject's
///     proposals (reconstructing F'_h, whose entropy is checked against γ
///     to catch man-in-the-middle cover-ups).

namespace lifting {

/// Outcome of a completed audit (also surfaced to experiments).
struct AuditReport {
  NodeId subject;
  double fanout_entropy = 0.0;
  double fanin_entropy = 0.0;
  std::size_t history_entries = 0;
  std::size_t fanin_samples = 0;
  std::uint32_t confirmed = 0;
  std::uint32_t denied = 0;
  bool fanout_check_failed = false;
  bool fanin_check_failed = false;
  bool rate_check_failed = false;
  bool expelled = false;
};

class Auditor {
 public:
  using BlameFn =
      std::function<void(NodeId, double, gossip::BlameReason)>;
  using SendFn = std::function<void(NodeId to, gossip::Message)>;  // TCP
  using ExpelFn = std::function<void(NodeId target)>;
  using ReportFn = std::function<void(const AuditReport&)>;

  Auditor(sim::Simulator& sim, const LiftingParams& params, NodeId self,
          BlameFn blame, SendFn send, ExpelFn expel, ReportFn report)
      : sim_(sim),
        params_(params),
        self_(self),
        blame_(std::move(blame)),
        send_(std::move(send)),
        expel_(std::move(expel)),
        report_(std::move(report)) {}

  /// Starts an audit of `target`. Concurrent audits of distinct targets
  /// are supported; a second audit of the same target supersedes the first.
  void start_audit(NodeId target);

  /// The subject's history arrived.
  void on_history(NodeId from, const gossip::AuditHistoryMsg& msg);

  /// A polled partner answered.
  void on_poll_response(NodeId from, const gossip::HistoryPollRespMsg& msg);

  [[nodiscard]] std::uint64_t audits_started() const noexcept {
    return audits_started_;
  }

 private:
  struct Audit {
    std::uint32_t id = 0;
    NodeId subject;
    std::vector<gossip::HistoryProposalRecord> history;
    std::size_t polls_outstanding = 0;
    std::uint32_t confirmed = 0;
    std::uint32_t denied = 0;
    std::vector<NodeId> askers;  // F'_h multiset
    AuditReport report;
    bool finished = false;
  };

  void on_history_deadline(NodeId subject, std::uint32_t id);
  void on_poll_deadline(NodeId subject, std::uint32_t id);
  void finish(Audit& audit);

  sim::Simulator& sim_;
  const LiftingParams& params_;
  NodeId self_;
  BlameFn blame_;
  SendFn send_;
  ExpelFn expel_;
  ReportFn report_;

  std::unordered_map<NodeId, Audit> audits_;  // by subject
  std::uint32_t next_id_ = 1;
  std::uint64_t audits_started_ = 0;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_AUDITOR_HPP

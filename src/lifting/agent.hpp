#ifndef LIFTING_LIFTING_AGENT_HPP
#define LIFTING_LIFTING_AGENT_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/behavior.hpp"
#include "gossip/engine.hpp"
#include "gossip/mailer.hpp"
#include "gossip/message.hpp"
#include "lifting/auditor.hpp"
#include "lifting/history.hpp"
#include "lifting/managers.hpp"
#include "lifting/params.hpp"
#include "lifting/verifier.hpp"
#include "membership/directory.hpp"
#include "sim/simulator.hpp"

/// The per-node LiFTinG agent — the paper's contribution assembled:
/// direct verification, direct cross-checking, the manager-based blaming
/// architecture with loss compensation, score-based expulsion, and local
/// history auditing. It observes the gossip engine's protocol events and
/// owns every verification message on the wire.
///
/// Freerider behavior (lying acks are in the engine) shows up here as:
/// coalition cover-ups in confirm/poll answers, withheld blames against
/// coalition members, inflated score replies for coalition members when
/// acting as their manager, and doctored audit replies.

namespace lifting {

class Agent final : public gossip::EngineObserver {
 public:
  struct Hooks {
    /// A manager committed an expulsion (first local transition).
    std::function<void(NodeId victim, NodeId manager, bool from_audit)>
        on_expulsion_committed;
    /// Ground-truth blame ledger (once per emission, before manager fanout).
    std::function<void(NodeId by, NodeId target, double value,
                       gossip::BlameReason)>
        on_blame_emitted;
    /// A completed audit report (auditor side).
    std::function<void(NodeId auditor, const AuditReport&)> on_audit_report;
  };

  /// `assignment` shares one deployment-wide manager table among agents
  /// (it is a pure function of (n, M, seed)); when null, the agent builds
  /// its own — convenient for standalone agents in tests.
  Agent(sim::Simulator& sim, gossip::Mailer& mailer,
        membership::Directory& directory, NodeId self,
        const LiftingParams& params, gossip::BehaviorSpec behavior,
        Pcg32 rng, std::uint64_t deployment_seed, TimePoint genesis,
        Hooks hooks = {},
        std::shared_ptr<ManagerAssignment> assignment = nullptr);

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Starts the periodic maintenance tick (log pruning, score checks,
  /// audit triggers) after `offset`.
  void start(Duration offset);

  /// Retires the agent (node left or crashed): the maintenance tick stops
  /// rescheduling and no further blames are emitted. Pending one-shot
  /// timers land on live memory and fizzle — the agent object must outlive
  /// the last event that references it.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Replaces the node's behavior mid-run (timeline set_behavior events).
  void set_behavior(gossip::BehaviorSpec behavior) {
    behavior_ = std::move(behavior);
  }

  /// Arms the flight recorder (DESIGN.md §13) on this agent and its
  /// verifiers: verdicts, blame rows, score reads, expulsion ballots and
  /// served audits. Null disarms (the default — nothing is recorded).
  void set_trace(obs::Recorder* trace) noexcept;

  /// Routes a LiFTinG message (anything that is not propose/request/serve/
  /// ack) to the agent.
  void handle(NodeId from, const gossip::Message& message);

  // --- EngineObserver
  void on_propose_received(NodeId from, PeriodIndex period,
                           const gossip::ChunkIdList& chunks) override;
  void on_request_sent(NodeId proposer, PeriodIndex period,
                       const gossip::ChunkIdList& chunks) override;
  void on_serve_received(NodeId sender, NodeId ack_to, PeriodIndex period,
                         ChunkId chunk) override;
  void on_chunks_served(NodeId receiver, PeriodIndex period,
                        const gossip::ChunkIdList& chunks) override;
  void on_proposal_sent(PeriodIndex period,
                        const std::vector<NodeId>& claimed_partners,
                        const std::vector<NodeId>& real_partners,
                        const gossip::ChunkIdList& chunks) override;
  void on_ack_received(NodeId from, const gossip::AckMsg& ack) override;

  /// Requests an audit of `target` (also available to external policy).
  void audit(NodeId target) { auditor_.start_audit(target); }

  /// Requests a min-vote score read followed by the expulsion protocol if
  /// the score is below η (also used by the periodic policy).
  void score_check(NodeId target);

  /// One completed feedback score read (probe_score below).
  struct ScoreFeedback {
    double score = 0.0;          ///< min-vote over the replies that arrived
    std::size_t replies = 0;     ///< 0 = no manager answered in time
    bool expelled_hint = false;  ///< a reply carried the expulsion mark
  };
  using ScoreFeedbackFn = std::function<void(const ScoreFeedback&)>;

  /// Runs a §5.1 score read about `target` purely as *feedback*: the same
  /// query datagrams, manager replies and reply deadline as score_check,
  /// but the outcome is handed to `on_done` (exactly once, at the
  /// deadline) instead of feeding the expulsion protocol. This is the
  /// manager score-feedback channel the adaptive adversaries use to probe
  /// their own standing (src/adversary/) — anyone can query anyone's
  /// managers, so a freerider asking about itself is protocol-legal and
  /// costs it real query bandwidth. A retired agent reports zero replies.
  void probe_score(NodeId target, ScoreFeedbackFn on_done);

  // --- introspection for experiments and tests
  [[nodiscard]] const ManagerStore& manager_store() const noexcept {
    return managers_;
  }
  [[nodiscard]] ManagerStore& manager_store() noexcept { return managers_; }
  [[nodiscard]] const LiftingParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] double blame_emitted_total() const noexcept {
    return blame_emitted_total_;
  }
  /// Audit requests answered so far — the one detection-pressure signal
  /// the protocol leaks to its *subject* (auditors must ask the audited
  /// node for its history, §5.3). The adversary layer reads it as a
  /// received-blame proxy.
  [[nodiscard]] std::uint64_t audit_requests_received() const noexcept {
    return audit_requests_received_;
  }
  /// The working cross-check probability (== configured p_dcc unless
  /// adaptive_pdcc has decayed it during clean periods).
  [[nodiscard]] double current_pdcc() const noexcept { return params_.p_dcc; }
  [[nodiscard]] const SentProposalHistory& sent_history() const noexcept {
    return sent_history_;
  }

  /// Delivery-health counters of the reliable-UDP audit channel, per audit
  /// kind (index = variant index − kAuditKindFirst). All-zero in the
  /// default modeled-TCP mode.
  struct AuditChannelStats {
    std::uint64_t sends = 0;            ///< first transmissions
    std::uint64_t retries = 0;          ///< backoff retransmissions
    std::uint64_t give_ups = 0;         ///< retry budget exhausted
    std::uint64_t acks_received = 0;    ///< pending entries cancelled
    std::uint64_t dups_suppressed = 0;  ///< receiver-side duplicate drops
  };
  [[nodiscard]] const std::array<AuditChannelStats, gossip::kAuditKindCount>&
  audit_channel_stats() const noexcept {
    return audit_channel_stats_;
  }
  [[nodiscard]] AuditChannelStats audit_channel_totals() const noexcept {
    AuditChannelStats total;
    for (const auto& s : audit_channel_stats_) {
      total.sends += s.sends;
      total.retries += s.retries;
      total.give_ups += s.give_ups;
      total.acks_received += s.acks_received;
      total.dups_suppressed += s.dups_suppressed;
    }
    return total;
  }
  /// Duplicated blame datagrams dropped by the receiver-side window
  /// (LiftingParams::blame_dedup_window; zero when the window is off).
  [[nodiscard]] std::uint64_t blame_dups_suppressed() const noexcept {
    return blame_dups_suppressed_;
  }

 private:
  void tick();
  void emit_blame(NodeId target, double value, gossip::BlameReason reason);
  void send_datagram(NodeId to, gossip::Message msg);
  void send_reliable(NodeId to, gossip::Message msg);
  [[nodiscard]] std::span<const NodeId> managers_for(NodeId target);
  [[nodiscard]] bool is_manager_of(NodeId target);
  void handle_confirm_request(NodeId from, const gossip::ConfirmReqMsg& msg);
  void handle_blame(NodeId from, const gossip::BlameMsg& msg);
  void handle_score_query(NodeId from, const gossip::ScoreQueryMsg& msg);
  void handle_score_reply(NodeId from, const gossip::ScoreReplyMsg& msg);
  void handle_expel_request(NodeId from, const gossip::ExpelRequestMsg& msg);
  void handle_expel_vote(NodeId from, const gossip::ExpelVoteMsg& msg);
  void handle_expel_commit(const gossip::ExpelCommitMsg& msg);
  void handle_audit_request(NodeId from, const gossip::AuditRequestMsg& msg);
  void handle_history_poll(NodeId from, const gossip::HistoryPollMsg& msg);

  // ---- reliable-UDP audit channel (inert under kModeledTcp)
  /// Content-derived retry/dedup key of an audit-kind message.
  struct AuditKey {
    std::uint8_t kind = 0;  // Message variant index
    std::uint32_t audit_id = 0;
    NodeId subject;  // NodeId{0} for kinds without a subject
    [[nodiscard]] bool operator==(const AuditKey& o) const noexcept {
      return kind == o.kind && audit_id == o.audit_id && subject == o.subject;
    }
  };
  [[nodiscard]] static AuditKey audit_key(const gossip::Message& msg);
  [[nodiscard]] Duration retry_backoff(std::uint32_t attempt);
  void arm_retry(std::uint64_t token);
  void on_retry_timer(std::uint64_t token);
  void handle_audit_ack(NodeId from, const gossip::AuditAckMsg& msg);
  /// Receiver preamble for incoming audit kinds: acks every copy (the
  /// previous ack may have been lost) and reports true when the message is
  /// a recently seen duplicate that must not be re-processed.
  [[nodiscard]] bool audit_dedup_and_ack(NodeId from,
                                         const gossip::Message& msg);
  [[nodiscard]] bool blame_is_duplicate(NodeId from,
                                        const gossip::BlameMsg& msg);
  /// Fans the score queries out to `target`'s managers and arms the reply
  /// deadline — shared by score_check (expulsion path) and probe_score
  /// (feedback path, `probe` set).
  void begin_score_read(NodeId target, ScoreFeedbackFn probe);
  void finish_score_read(std::uint32_t query_id);
  void finish_expel_vote(NodeId target);
  void note_contact(NodeId id);
  [[nodiscard]] bool old_enough_for_detection(TimePoint now) const;

  sim::Simulator& sim_;
  gossip::Mailer& mailer_;
  membership::Directory& directory_;
  NodeId self_;
  LiftingParams params_;
  gossip::BehaviorSpec behavior_;
  Pcg32 rng_;
  std::uint64_t deployment_seed_;
  TimePoint genesis_;
  Hooks hooks_;
  obs::Recorder* trace_ = nullptr;

  std::shared_ptr<ManagerAssignment> assignment_;
  ManagerStore managers_;
  DirectVerifier direct_verifier_;
  CrossChecker cross_checker_;
  Auditor auditor_;

  SentProposalHistory sent_history_;
  ReceivedProposalLog received_log_;
  ConfirmAskerLog asker_log_;

  std::vector<NodeId> recent_contacts_;

  struct PendingScoreRead {
    NodeId target;
    std::vector<double> replies;
    /// Managers whose reply was counted — one reply per manager, so a
    /// transport-duplicated reply cannot make an under-replicated read
    /// look like it met min_score_replies.
    std::vector<NodeId> repliers;
    bool target_already_expelled = false;
    /// Set for probe reads: the deadline reports here and the expulsion
    /// machinery is skipped.
    ScoreFeedbackFn probe;
  };
  std::unordered_map<std::uint32_t, PendingScoreRead> score_reads_;
  std::uint32_t next_query_id_ = 1;

  struct PendingExpelVote {
    std::size_t yes = 0;
    std::size_t total_managers = 0;
    bool committed = false;
    /// Managers whose ballot was counted — a transport-duplicated agree
    /// vote must not reach a majority by itself.
    std::vector<NodeId> voters;
  };
  std::unordered_map<NodeId, PendingExpelVote> expel_votes_;
  std::unordered_set<NodeId> expel_requested_;

  /// One in-flight reliable-UDP audit send awaiting its AuditAckMsg.
  struct PendingAudit {
    NodeId to;
    AuditKey key;
    std::uint32_t attempts = 0;  // transmissions so far
    std::uint64_t token = 0;     // ties backoff timers to this entry
    gossip::Message message;     // retained for retransmission
  };
  std::vector<PendingAudit> pending_audits_;
  std::uint64_t next_retry_token_ = 1;
  /// Backoff jitter draws come from their own stream (0xD00000000 + self)
  /// so enabling the channel never perturbs the agent's main rng_ sequence
  /// (which CrossChecker shares by reference). Engaged lazily, only in
  /// kReliableUdp mode.
  std::optional<Pcg32> retry_rng_;

  /// Receiver-side duplicate suppression: ring of recently seen
  /// (sender, key) pairs, capacity params_.audit_dedup_cap.
  struct SeenAudit {
    NodeId from;
    AuditKey key;
  };
  std::vector<SeenAudit> seen_audits_;
  std::size_t seen_audits_head_ = 0;

  std::array<AuditChannelStats, gossip::kAuditKindCount> audit_channel_stats_{};

  /// Windowed blame dedup (LiftingParams::blame_dedup_window): recently
  /// applied network blames, so an exact transport-level duplicate cannot
  /// double-count in the manager ledger.
  struct SeenBlame {
    NodeId from;
    NodeId target;
    std::uint64_t value_bits = 0;
    gossip::BlameReason reason = gossip::BlameReason::kDirectVerification;
    TimePoint at;
  };
  std::vector<SeenBlame> seen_blames_;
  std::size_t seen_blames_head_ = 0;
  std::uint64_t blame_dups_suppressed_ = 0;

  double blame_emitted_total_ = 0.0;
  std::uint64_t audit_requests_received_ = 0;
  double base_pdcc_ = 1.0;
  double blame_emitted_this_period_ = 0.0;
  double blame_rate_ewma_ = 0.0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace lifting

#endif  // LIFTING_LIFTING_AGENT_HPP

#include "lifting/auditor.hpp"

#include <algorithm>
#include <unordered_map>

#include "stats/entropy.hpp"

namespace lifting {

void Auditor::start_audit(NodeId target) {
  Audit audit;
  audit.id = next_id_++;
  audit.subject = target;
  audit.report.subject = target;
  audits_[target] = std::move(audit);
  ++audits_started_;
  send_(target, gossip::AuditRequestMsg{audits_[target].id});
  sim_.schedule_after(params_.audit_poll_timeout,
                      [this, target, id = audits_[target].id] {
                        on_history_deadline(target, id);
                      });
}

void Auditor::on_history_deadline(NodeId subject, std::uint32_t id) {
  const auto it = audits_.find(subject);
  if (it == audits_.end() || it->second.id != id) return;
  if (!it->second.history.empty() || it->second.finished) return;
  // The subject never answered the (reliable) audit request: refusing to be
  // audited is itself grounds for expulsion — otherwise freeriders would
  // simply stay silent.
  it->second.report.rate_check_failed = true;
  finish(it->second);
}

void Auditor::on_history(NodeId from, const gossip::AuditHistoryMsg& msg) {
  const auto it = audits_.find(from);
  if (it == audits_.end() || it->second.id != msg.audit_id ||
      it->second.finished) {
    return;
  }
  auto& audit = it->second;
  audit.history = msg.proposals;
  audit.report.history_entries = audit.history.size();

  // --- Gossip-rate check (§5.3): with a correct fanout the number of
  // proposals in the history reveals the gossip period. Tolerate slack for
  // lossy startup; blame f per missing proposal below the tolerated floor.
  const auto expected = static_cast<double>(params_.history_periods());
  const auto floor_count = params_.rate_tolerance * expected;
  if (static_cast<double>(audit.history.size()) < floor_count) {
    const double missing =
        floor_count - static_cast<double>(audit.history.size());
    blame_(from, missing * static_cast<double>(params_.fanout),
           gossip::BlameReason::kRateCheck);
    audit.report.rate_check_failed = true;
  }

  // --- Fanout entropy check (§5.3, Eq. 1): H(F_h) >= γ or expulsion.
  std::vector<NodeId> fanout_multiset;
  for (const auto& rec : audit.history) {
    fanout_multiset.insert(fanout_multiset.end(), rec.partners.begin(),
                           rec.partners.end());
  }
  audit.report.fanout_entropy = stats::multiset_entropy<NodeId>(
      {fanout_multiset.data(), fanout_multiset.size()});
  if (audit.report.fanout_entropy < params_.gamma) {
    audit.report.fanout_check_failed = true;
    finish(audit);
    return;
  }

  // --- A-posteriori cross-check: poll each distinct partner with the
  // claims that name it.
  std::unordered_map<NodeId, std::vector<gossip::HistoryProposalRecord>>
      claims_by_partner;
  for (const auto& rec : audit.history) {
    for (const auto partner : rec.partners) {
      if (partner == self_ || partner == from) continue;
      auto& claims = claims_by_partner[partner];
      if (!claims.empty() && claims.back().period == rec.period) continue;
      gossip::HistoryProposalRecord claim;
      claim.period = rec.period;
      claim.chunks = rec.chunks;
      claims.push_back(std::move(claim));
    }
  }
  if (claims_by_partner.empty()) {
    finish(audit);
    return;
  }
  audit.polls_outstanding = claims_by_partner.size();
  for (auto& [partner, claims] : claims_by_partner) {
    send_(partner,
          gossip::HistoryPollMsg{audit.id, from, std::move(claims)});
  }
  sim_.schedule_after(params_.audit_poll_timeout,
                      [this, subject = from, id = audit.id] {
                        on_poll_deadline(subject, id);
                      });
}

void Auditor::on_poll_response(NodeId /*from*/,
                               const gossip::HistoryPollRespMsg& msg) {
  const auto it = audits_.find(msg.subject);
  if (it == audits_.end() || it->second.id != msg.audit_id ||
      it->second.finished) {
    return;
  }
  auto& audit = it->second;
  audit.confirmed += msg.confirmed;
  audit.denied += msg.denied;
  audit.askers.insert(audit.askers.end(), msg.confirm_askers.begin(),
                      msg.confirm_askers.end());
  if (audit.polls_outstanding > 0) --audit.polls_outstanding;
  if (audit.polls_outstanding == 0) finish(audit);
}

void Auditor::on_poll_deadline(NodeId subject, std::uint32_t id) {
  const auto it = audits_.find(subject);
  if (it == audits_.end() || it->second.id != id || it->second.finished) {
    return;
  }
  finish(it->second);
}

void Auditor::finish(Audit& audit) {
  audit.finished = true;
  auto& report = audit.report;
  report.confirmed = audit.confirmed;
  report.denied = audit.denied;
  report.fanin_samples = audit.askers.size();

  // A-posteriori cross-check blames: 1 per denied claim (§5.3). The
  // managers subtract the expected loss-induced denials (Eq. 4).
  if (audit.denied > 0) {
    blame_(audit.subject, static_cast<double>(audit.denied),
           gossip::BlameReason::kAposterioriCheck);
  }

  // Fan-in entropy check over F'_h (man-in-the-middle detector, §5.3).
  // Only meaningful when cross-checking actually generates confirm
  // traffic and enough samples were collected.
  if (params_.p_dcc > 0.0 &&
      audit.askers.size() >= params_.min_fanin_samples) {
    report.fanin_entropy = stats::multiset_entropy<NodeId>(
        {audit.askers.data(), audit.askers.size()});
    if (report.fanin_entropy < params_.gamma) {
      report.fanin_check_failed = true;
    }
  }

  report.expelled = report.fanout_check_failed || report.fanin_check_failed ||
                    (report.rate_check_failed && audit.history.empty());
  if (report.expelled) expel_(audit.subject);
  if (report_) report_(report);
  audits_.erase(audit.subject);
}

}  // namespace lifting

#include "adversary/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace lifting::adversary {

// --------------------------------------------------------- CoalitionHub

void CoalitionHub::enroll(NodeId id) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id);
  if (it != members_.end() && *it == id) return;
  const auto index = static_cast<std::size_t>(it - members_.begin());
  members_.insert(it, id);
  last_seen_.insert(last_seen_.begin() + static_cast<std::ptrdiff_t>(index),
                    TimePoint::min());
}

void CoalitionHub::report_sighting(NodeId subject, TimePoint now) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), subject);
  if (it == members_.end() || *it != subject) return;  // not a colluder
  auto& seen = last_seen_[static_cast<std::size_t>(it - members_.begin())];
  seen = std::max(seen, now);
}

bool CoalitionHub::recently_seen(NodeId subject, TimePoint now,
                                 Duration stale) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), subject);
  if (it == members_.end() || *it != subject) return false;
  const TimePoint seen =
      last_seen_[static_cast<std::size_t>(it - members_.begin())];
  return seen != TimePoint::min() && seen + stale >= now;
}

// --------------------------------------------------- AdversaryController

AdversaryController::AdversaryController(sim::Simulator& sim, NodeId self,
                                         AdversaryConfig config,
                                         gossip::BehaviorSpec freeride,
                                         double eta, Pcg32 rng, Hooks hooks,
                                         CoalitionHub* hub)
    : sim_(sim),
      self_(self),
      config_(config),
      freeride_(std::move(freeride)),
      eta_(eta),
      rng_(rng),
      hooks_(std::move(hooks)),
      hub_(hub),
      score_(std::numeric_limits<double>::quiet_NaN()) {
  config_.validate();
  LIFTING_ASSERT(config_.enabled(), "controller built for Strategy::kNone");
  if (config_.strategy == Strategy::kCoalition) {
    LIFTING_ASSERT(hub_ != nullptr, "coalition strategy needs a hub");
    // A coalition adversary always colludes; give it an (initially empty)
    // cover-up spec if the scenario's freerider behavior carries none.
    if (!freeride_.collusion.has_value()) {
      freeride_.collusion.emplace();
      freeride_.collusion->cover_up = true;
    }
    hub_->enroll(self_);
  }
}

void AdversaryController::start() {
  LIFTING_ASSERT(!started_, "controller started twice");
  started_ = true;
  mark_ = sim_.now();
  // Desynchronized first tick, drawn from the controller's own stream so a
  // scenario without adversaries draws nothing anywhere.
  const auto offset = Duration{static_cast<Duration::rep>(
      rng_.uniform() * static_cast<double>(config_.decision_period.count()))};
  phase_origin_ = sim_.now() + offset;
  next_probe_ = phase_origin_;
  sim_.schedule_after(offset, [this] { tick(); });
}

void AdversaryController::account(TimePoint now) {
  const double dt = to_seconds(now - mark_);
  mark_ = now;
  if (dt <= 0.0) return;
  const bool present = !hooks_.present || hooks_.present();
  if (!present) return;
  stats_.present_seconds += dt;
  if (freeriding_) stats_.gain_seconds += dt * freeride_.gain();
}

AdversaryController::Stats AdversaryController::stats(TimePoint now) {
  account(now);
  return stats_;
}

void AdversaryController::on_reincarnated() {
  const TimePoint now = sim_.now();
  account(now);  // close the absence interval at the rejoin boundary
  freeriding_ = true;  // make_node reinstalled the full-throttle spec
  awaiting_rejoin_ = false;
  rejoin_attempts_ = 0;
  score_ = std::numeric_limits<double>::quiet_NaN();
  probe_in_flight_ = false;
  next_probe_ = now + config_.probe_interval;
  cover_set_.clear();
}

void AdversaryController::switch_mode(bool freeriding, TimePoint now) {
  if (freeriding == freeriding_) return;
  account(now);
  freeriding_ = freeriding;
  ++stats_.behavior_switches;
  if (hooks_.apply_behavior) {
    hooks_.apply_behavior(freeriding ? freeride_
                                     : gossip::BehaviorSpec::honest());
  }
}

void AdversaryController::maybe_probe(TimePoint now) {
  if (!config_.needs_probes() || !hooks_.probe_score) return;
  if (probe_in_flight_ || now < next_probe_) return;
  probe_in_flight_ = true;
  next_probe_ = now + config_.probe_interval;
  ++stats_.probes;
  hooks_.probe_score([this](const ScoreEstimate& estimate) {
    probe_in_flight_ = false;
    if (estimate.replies > 0) score_ = estimate.score;
    if (estimate.expelled_hint) {
      // A manager already holds the expulsion mark: the most alarming
      // signal the protocol can leak to us.
      score_ = -std::numeric_limits<double>::infinity();
    }
  });
}

void AdversaryController::tick() {
  if (stopped_ || dormant_) return;
  const TimePoint now = sim_.now();
  // Integrate presence/gain at tick resolution so timeline-driven churn of
  // this node is attributed to within one decision period.
  account(now);
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kAdversaryTick, self_, self_,
                   stats_.probes, std::isnan(score_) ? 0.0 : score_,
                   freeriding_ ? 1 : 0,
                   static_cast<std::uint16_t>(stats_.bounces));
  }
  decide(now);
  if (!dormant_) {
    sim_.schedule_after(config_.decision_period, [this] { tick(); });
  }
}

void AdversaryController::decide(TimePoint now) {
  switch (config_.strategy) {
    case Strategy::kNone:
      return;
    case Strategy::kOscillate:
      decide_oscillate(now);
      return;
    case Strategy::kScoreAware:
      decide_score_aware();
      return;
    case Strategy::kWhitewash:
      decide_whitewash(now);
      return;
    case Strategy::kCoalition:
      decide_coalition(now);
      return;
  }
}

void AdversaryController::decide_oscillate(TimePoint now) {
  if (hooks_.present && !hooks_.present()) return;
  const auto cycle = config_.duty_on + config_.duty_off;
  const auto phase =
      Duration{(now - phase_origin_).count() % cycle.count()};
  switch_mode(phase < config_.duty_on, now);
}

void AdversaryController::decide_score_aware() {
  const TimePoint now = sim_.now();
  if (hooks_.present && !hooks_.present()) return;
  maybe_probe(now);
  if (std::isnan(score_)) return;  // no feedback yet: keep freeriding
  if (freeriding_ && score_ <= eta_ + config_.throttle_margin) {
    switch_mode(false, now);
  } else if (!freeriding_ && score_ >= eta_ + config_.resume_margin) {
    switch_mode(true, now);
  }
}

void AdversaryController::decide_whitewash(TimePoint now) {
  if (awaiting_rejoin_) {
    if (now < rejoin_due_ || !hooks_.rejoin) return;
    hooks_.rejoin();
    // On success the deployment rebuilt our node and called
    // on_reincarnated(), which cleared awaiting_rejoin_ and reset the
    // mode/score state; a refusal leaves the flag set.
    if (awaiting_rejoin_ && ++rejoin_attempts_ >= 3) {
      // The rejoin is being refused — a committed expulsion outlived the
      // departure. We are caught; stop scheming.
      dormant_ = true;
    }
    return;
  }
  if (hooks_.present && !hooks_.present()) return;  // timeline took us out
  maybe_probe(now);
  if (std::isnan(score_) || score_ > eta_ + config_.flee_margin) return;
  if (stats_.bounces >= config_.max_bounces) {
    // Bounce budget spent: surviving beats gaining — go straight.
    switch_mode(false, now);
    return;
  }
  if (!hooks_.leave) return;
  account(now);
  hooks_.leave();
  ++stats_.bounces;
  awaiting_rejoin_ = true;
  rejoin_due_ = now + config_.lay_low;
  score_ = std::numeric_limits<double>::quiet_NaN();
}

void AdversaryController::decide_coalition(TimePoint now) {
  if (hooks_.present && !hooks_.present()) return;
  // Publish what we see, then cover for everyone the coalition's pooled
  // (view-lag-aware) intelligence still believes is in the system.
  hub_->report_sighting(self_, now);
  for (const NodeId member : hub_->members()) {
    if (member == self_) continue;
    if (hooks_.sees && hooks_.sees(member)) {
      hub_->report_sighting(member, now);
    }
  }
  // Scratch reuse: the effective set is recomputed every tick but changes
  // rarely — the steady state must not allocate per decision.
  effective_scratch_.clear();
  for (const NodeId member : hub_->members()) {
    if (member == self_ ||
        hub_->recently_seen(member, now, config_.intel_stale)) {
      effective_scratch_.push_back(member);
    }
  }
  if (effective_scratch_ == cover_set_) return;
  cover_set_ = effective_scratch_;
  auto spec = freeride_;
  spec.collusion->coalition = cover_set_;
  ++stats_.behavior_switches;
  if (hooks_.apply_behavior) hooks_.apply_behavior(spec);
}

}  // namespace lifting::adversary

#ifndef LIFTING_ADVERSARY_STRATEGY_HPP
#define LIFTING_ADVERSARY_STRATEGY_HPP

#include <cstdint>
#include <vector>

#include "common/time.hpp"

/// Adaptive adversary strategies — the attack side of the evaluation made
/// first-class. The paper's §6 freeriders are *static*: one Δ = (δ1, δ2, δ3)
/// for the whole run. Related work (RAPTEE, LIFT) treats adaptive Byzantine
/// behavior as the baseline threat model for gossip systems, and the
/// accountability machinery built for churn (manager handoff, divergent
/// views, rejoin — DESIGN.md §7) is only meaningfully stress-tested by
/// opponents that *react* to it. An AdversaryConfig describes a reactive
/// policy; the AdversaryController (controller.hpp) executes it per
/// adversarial node as ordinary deterministic simulator events.
///
/// The catalog below names the built-in strategies; each entry is a plain
/// AdversaryConfig, so every catalog attack is expressible directly in a
/// ScenarioConfig and drawable by the randomized scenario sweep.

namespace lifting::adversary {

enum class Strategy : std::uint8_t {
  /// No adversary layer at all: no controllers are built, no rng streams
  /// are drawn, no events are scheduled. A run with kNone is bit-identical
  /// to one predating the subsystem (the inertness guarantee the fixed-seed
  /// goldens pin).
  kNone,
  /// Oscillating freerider: freeride for duty_on, behave honestly for
  /// duty_off, repeat. The §4 attacks executed in bursts — blame accrues
  /// only part-time while the score normalization keeps running, so the
  /// time-averaged score sits above a static freerider of the same Δ.
  kOscillate,
  /// Score-aware throttler: probe the own min-vote score through the
  /// managers (the §5.1 read, as protocol messages) and freeride only
  /// while the estimate stays clear of the expulsion threshold η; switch
  /// honest when it approaches, resume when compensation has healed it.
  kScoreAware,
  /// Whitewasher: the ROADMAP's timed-departure adversary. Probe the own
  /// score and *leave* just before an expulsion can commit, then rejoin
  /// after lay_low and restart (fresh scores under the kFresh rejoin
  /// policy). Defeated by committed-expulsions-block-rejoin plus manager
  /// handoff for departed AND expelled managers (quorums stay full enough
  /// to commit in time).
  kWhitewash,
  /// Coalition coordinator: static freeriding plus collusion whose
  /// cover-up set is maintained *dynamically* from the members' divergent
  /// membership views — colluders pool sightings, so the coalition keeps
  /// covering a member some laggard colluder still sees and recruits
  /// freerider joiners as each member learns of them (the ROADMAP's
  /// "wire divergent views into collusion paths" item).
  kCoalition,
};

[[nodiscard]] const char* strategy_name(Strategy strategy) noexcept;

struct AdversaryConfig {
  Strategy strategy = Strategy::kNone;

  /// Cadence of the controller's decision tick (one simulator event per
  /// tick per adversarial node).
  Duration decision_period = milliseconds(500);
  /// Minimum spacing of self score probes (kScoreAware / kWhitewash). Each
  /// probe is a real §5.1 score read — query datagrams to the M managers,
  /// min-vote over the replies — so probing costs the adversary bandwidth.
  Duration probe_interval = seconds(1.0);

  // ---- kOscillate
  Duration duty_on = seconds(3.0);   ///< freeriding burst length
  Duration duty_off = seconds(3.0);  ///< honest recovery length

  // ---- kScoreAware (margins are relative to η, in score units)
  /// Switch honest when the score estimate falls to η + throttle_margin.
  double throttle_margin = 1.5;
  /// Resume freeriding when the estimate has healed to η + resume_margin.
  double resume_margin = 3.0;

  // ---- kWhitewash
  /// Leave when the score estimate falls to η + flee_margin.
  double flee_margin = 1.0;
  /// Offline time before attempting the rejoin.
  Duration lay_low = seconds(3.0);
  /// Bounce budget (a real whitewasher cannot re-enter forever without
  /// burning identities; ids are never recycled here, so the budget also
  /// bounds the run's table growth).
  std::uint32_t max_bounces = 8;

  // ---- kCoalition
  /// How long a pooled sighting of a coalition member stays trustworthy.
  /// Within this window a member keeps covering up for a peer that any
  /// colluder recently reported alive, even if its own view lags.
  Duration intel_stale = seconds(2.0);

  [[nodiscard]] bool enabled() const noexcept {
    return strategy != Strategy::kNone;
  }
  /// Does this strategy need the manager score-feedback channel (and thus
  /// LiFTinG agents)?
  [[nodiscard]] bool needs_probes() const noexcept {
    return strategy == Strategy::kScoreAware ||
           strategy == Strategy::kWhitewash;
  }

  void validate() const;
};

/// One named catalog attack: a ready-to-run AdversaryConfig plus the paper
/// cross-reference it perturbs (see DESIGN.md §8 for the full table).
struct CatalogEntry {
  const char* name;       ///< stable identifier (bench rows, sweep labels)
  const char* paper_ref;  ///< the section/figure the strategy stresses
  AdversaryConfig config;
};

/// The built-in attack catalog, in fixed order: oscillate, score-aware,
/// whitewash, coalition. The order is load-bearing for the sweep's
/// deterministic draws and the frontier bench's task grid.
[[nodiscard]] const std::vector<CatalogEntry>& catalog();

}  // namespace lifting::adversary

#endif  // LIFTING_ADVERSARY_STRATEGY_HPP

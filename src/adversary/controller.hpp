#ifndef LIFTING_ADVERSARY_CONTROLLER_HPP
#define LIFTING_ADVERSARY_CONTROLLER_HPP

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "adversary/strategy.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "gossip/behavior.hpp"
#include "sim/simulator.hpp"

/// The per-node adversary controller: executes one AdversaryConfig policy
/// for one adversarial node, as ordinary deterministic simulator events.
///
/// The controller sits ABOVE the protocol stack — it is the node's
/// "operator", not a protocol component. It observes only signals a real
/// freerider could observe locally (its own score as reported by its
/// managers through real §5.1 score reads, whether a manager already marked
/// it expelled, its own membership view) and acts only through capabilities
/// a real freerider has (mutating its own behavior, leaving, rejoining).
/// Those capabilities are injected as Hooks by the deployment (the
/// Experiment), so the adversary layer depends on nothing above gossip.
///
/// Determinism: every decision happens inside a tick scheduled on the
/// shared simulator, randomness comes from the controller's own derived
/// stream, and coalition intel flows through a CoalitionHub mutated only
/// from tick events — runs are bit-identical at any thread count, and a
/// scenario without adversaries never constructs any of this (inertness).

namespace lifting::obs {
class Recorder;
}  // namespace lifting::obs

namespace lifting::adversary {

/// One completed self score probe, as the managers answered it.
struct ScoreEstimate {
  double score = 0.0;          ///< min-vote over the replies that arrived
  std::size_t replies = 0;     ///< 0 = every manager was silent
  bool expelled_hint = false;  ///< some manager already marked us expelled
};
using ScoreEstimateFn = std::function<void(const ScoreEstimate&)>;

/// Shared intelligence of one coalition (kCoalition): members pool
/// membership sightings so the cover-up set survives divergent views. The
/// hub is plain data owned by the deployment — one per Experiment, mutated
/// only from controller ticks (simulator event order), reachable from no
/// other Experiment (the DESIGN.md §6 re-entrancy contract).
class CoalitionHub {
 public:
  /// Registers a coalition member (idempotent; keeps members sorted so
  /// every derived cover-up list is in deterministic order).
  void enroll(NodeId id);

  /// A member reported seeing `subject` alive at `now`.
  void report_sighting(NodeId subject, TimePoint now);

  /// Was `subject` reported alive within the last `stale` window?
  [[nodiscard]] bool recently_seen(NodeId subject, TimePoint now,
                                   Duration stale) const;

  [[nodiscard]] const std::vector<NodeId>& members() const noexcept {
    return members_;
  }

 private:
  std::vector<NodeId> members_;  // sorted
  /// Last pooled sighting per member, aligned with members_.
  std::vector<TimePoint> last_seen_;
};

class AdversaryController {
 public:
  /// Capabilities the deployment grants the adversary. All of them act on
  /// the controller's own node; null hooks disable the matching feature
  /// (e.g. no probe channel when LiFTinG is disabled).
  struct Hooks {
    /// Install a new BehaviorSpec on the node's engine + agent (the
    /// set_behavior machinery timeline events use).
    std::function<void(const gossip::BehaviorSpec&)> apply_behavior;
    /// Start a §5.1 score read about ourselves through our managers; the
    /// callback fires once, at the read's reply deadline.
    std::function<void(ScoreEstimateFn)> probe_score;
    /// Clean self-departure (whitewash flee).
    std::function<void()> leave;
    /// Attempt to re-enter after a departure. May be refused (a committed
    /// expulsion outlives the departure) — observable via present().
    std::function<void()> rejoin;
    /// Is the node currently a live deployment member?
    std::function<bool()> present;
    /// Does *this node's* membership view currently contain `id`?
    std::function<bool(NodeId)> sees;
  };

  /// Counters and time integrals for the gain-vs-detection frontier.
  /// gain_seconds integrates BehaviorSpec::gain() over present time, so
  /// gain_seconds / present_seconds is the realized upload-bandwidth gain
  /// (the adaptive analogue of Fig. 12's x-axis).
  struct Stats {
    double gain_seconds = 0.0;
    double present_seconds = 0.0;
    std::uint64_t behavior_switches = 0;
    std::uint64_t probes = 0;
    std::uint64_t bounces = 0;
    [[nodiscard]] double realized_gain() const {
      return present_seconds <= 0.0 ? 0.0 : gain_seconds / present_seconds;
    }
  };

  /// `freeride` is the node's full-throttle behavior (the scenario's
  /// freerider spec); `eta` the deployment's expulsion threshold the
  /// score-reactive strategies steer against. `hub` is required for
  /// kCoalition and ignored otherwise.
  AdversaryController(sim::Simulator& sim, NodeId self, AdversaryConfig config,
                      gossip::BehaviorSpec freeride, double eta, Pcg32 rng,
                      Hooks hooks, CoalitionHub* hub);

  AdversaryController(const AdversaryController&) = delete;
  AdversaryController& operator=(const AdversaryController&) = delete;

  /// Schedules the first decision tick after a fraction of the decision
  /// period drawn from the controller's own stream (desynchronized, like
  /// engine/agent starts).
  void start();

  /// Stops the decision loop (wind-down). Pending ticks fizzle.
  void stop() noexcept { stopped_ = true; }

  /// The deployment rebuilt this node's Engine/Agent with the scenario's
  /// full-throttle freerider behavior (a rejoin — whether initiated by
  /// this controller's whitewash flee or by the scenario timeline).
  /// Resynchronizes the controller's mode state with what is actually
  /// installed: full throttle, no score estimate (fresh incarnation, and
  /// any in-flight probe will report zero replies from the retired
  /// agent), cover-up set forgotten so a coalition reinstalls its pooled
  /// view on the next tick.
  void on_reincarnated();

  /// Finalizes the time integrals up to `now` and returns the counters.
  [[nodiscard]] Stats stats(TimePoint now);

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  /// Latest score estimate (NaN before the first completed probe).
  [[nodiscard]] double latest_score() const noexcept { return score_; }
  [[nodiscard]] bool freeriding() const noexcept { return freeriding_; }
  /// Permanently out (rejoin refused after a flee, or bounce budget spent
  /// while away): the controller stops rescheduling.
  [[nodiscard]] bool dormant() const noexcept { return dormant_; }

  /// Arms decision-tick tracing (DESIGN.md §13); null disarms. Passive —
  /// no draws, no events — so armed runs stay bit-identical.
  void set_trace(obs::Recorder* trace) noexcept { trace_ = trace; }

 private:
  void tick();
  void decide(TimePoint now);
  void decide_oscillate(TimePoint now);
  void decide_score_aware();
  void decide_whitewash(TimePoint now);
  void decide_coalition(TimePoint now);
  /// Installs `freeriding` mode (full-throttle vs honest), accounting the
  /// integral boundary at `now`. No-op when already in that mode.
  void switch_mode(bool freeriding, TimePoint now);
  /// Accumulates gain/present integrals over [mark_, now].
  void account(TimePoint now);
  void maybe_probe(TimePoint now);

  sim::Simulator& sim_;
  NodeId self_;
  AdversaryConfig config_;
  gossip::BehaviorSpec freeride_;
  double eta_;
  Pcg32 rng_;
  Hooks hooks_;
  CoalitionHub* hub_;
  obs::Recorder* trace_ = nullptr;

  bool started_ = false;
  bool stopped_ = false;
  bool dormant_ = false;
  bool freeriding_ = true;  // deployments start adversaries at full throttle
  TimePoint mark_{};        // integral boundary
  TimePoint phase_origin_{};  // oscillator epoch (first tick)

  double score_;  // NaN until the first probe completes
  bool probe_in_flight_ = false;
  TimePoint next_probe_{};

  bool awaiting_rejoin_ = false;
  TimePoint rejoin_due_{};
  std::uint32_t rejoin_attempts_ = 0;

  /// Last cover-up set installed (kCoalition), to skip no-op re-installs,
  /// and the per-tick recomputation scratch (steady state: no allocation).
  std::vector<NodeId> cover_set_;
  std::vector<NodeId> effective_scratch_;

  Stats stats_;
};

}  // namespace lifting::adversary

#endif  // LIFTING_ADVERSARY_CONTROLLER_HPP

#ifndef LIFTING_ADVERSARY_MEMBERSHIP_HPP
#define LIFTING_ADVERSARY_MEMBERSHIP_HPP

#include <cstdint>
#include <vector>

/// Membership-layer attack strategies (DESIGN.md §12): compromising
/// LiFTinG from *below* the accountability layer. The §4/§5 catalog
/// (strategy.hpp) games the verification protocol itself; these strategies
/// instead corrupt the random peer sampling substrate that §2 assumes is
/// honest ("uniform selection is usually achieved using ... a random peer
/// sampling protocol") — the Byzantine-peer-sampling baseline threat of
/// the related work (RAPTEE's view poisoning, LIFT's hub capture).
///
/// A strategy here is pure data consumed by membership::RpsNetwork; like
/// AdversaryConfig, the kNone default arms nothing, draws nothing and
/// schedules nothing — runs without a membership strategy are bit-identical
/// to runs predating the subsystem (fixed-seed goldens pin this).

namespace lifting::adversary {

enum class MembershipStrategy : std::uint8_t {
  kNone,
  /// Colluders answer every shuffle exchange with forged colluder-heavy
  /// offers (age 0, so age-ranked truncation keeps them) instead of honest
  /// view subsets. Victim views fill with colluders; freeriders' partner
  /// slots land on coalition members who never blame them.
  kViewPoison,
  /// View poisoning plus directed unsolicited pushes: every colluder fires
  /// `extra_pushes` forged offers per round at random honest targets,
  /// biasing in-degree until colluders dominate victims' partner sets and
  /// honest cross-check observations starve.
  kHubCapture,
  /// View poisoning plus pushes concentrated on a fixed victim subset
  /// (`eclipse_fraction` of the honest population): the victims' views
  /// become almost entirely colluders — eclipse-assisted freeriding that
  /// composes with the §4 catalog (the eclipsed victims' observations are
  /// the ones the coalition's freeriding would otherwise trip).
  kEclipse,
};

[[nodiscard]] const char* membership_strategy_name(
    MembershipStrategy strategy) noexcept;

/// Knobs of the membership-layer attacks. Consumed by
/// membership::RpsNetwork::set_adversary; the colluder set itself comes
/// from the deployment (the freerider list, like CollusionSpec's coalition).
struct MembershipAttackConfig {
  MembershipStrategy strategy = MembershipStrategy::kNone;
  /// Fraction of a forged offer filled with colluder entries (the rest is
  /// padded with real view entries, so a poisoned offer is not trivially
  /// distinguishable by composition alone).
  double poison_fill = 0.75;
  /// kHubCapture / kEclipse: directed forged pushes per colluder per round.
  std::uint32_t extra_pushes = 3;
  /// kEclipse: fraction of the honest population chosen (deterministically,
  /// at arm time) as eclipse victims.
  double eclipse_fraction = 0.2;

  [[nodiscard]] bool enabled() const noexcept {
    return strategy != MembershipStrategy::kNone;
  }
  void validate() const;
};

/// One catalog row: a named, paper-anchored membership attack preset.
struct MembershipCatalogEntry {
  const char* name;
  const char* paper_ref;
  MembershipAttackConfig config;
};

/// The membership-attack catalog in fixed order (view-poison, hub-capture,
/// eclipse) — benches sweep it, the scenario sweep draws from it, and
/// tests pin the order.
[[nodiscard]] const std::vector<MembershipCatalogEntry>& membership_catalog();

}  // namespace lifting::adversary

#endif  // LIFTING_ADVERSARY_MEMBERSHIP_HPP

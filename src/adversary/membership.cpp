#include "adversary/membership.hpp"

#include "common/assert.hpp"

namespace lifting::adversary {

const char* membership_strategy_name(MembershipStrategy strategy) noexcept {
  switch (strategy) {
    case MembershipStrategy::kNone:
      return "none";
    case MembershipStrategy::kViewPoison:
      return "view-poison";
    case MembershipStrategy::kHubCapture:
      return "hub-capture";
    case MembershipStrategy::kEclipse:
      return "eclipse";
  }
  return "?";
}

void MembershipAttackConfig::validate() const {
  if (!enabled()) return;
  require(poison_fill > 0.0 && poison_fill <= 1.0,
          "poison fill must be in (0, 1]");
  if (strategy == MembershipStrategy::kHubCapture ||
      strategy == MembershipStrategy::kEclipse) {
    require(extra_pushes >= 1, "directed-push strategies need extra_pushes >= 1");
  }
  if (strategy == MembershipStrategy::kEclipse) {
    require(eclipse_fraction > 0.0 && eclipse_fraction < 1.0,
            "eclipse fraction must be in (0, 1)");
  }
}

const std::vector<MembershipCatalogEntry>& membership_catalog() {
  static const std::vector<MembershipCatalogEntry> entries = [] {
    std::vector<MembershipCatalogEntry> list;

    {
      MembershipAttackConfig cfg;
      cfg.strategy = MembershipStrategy::kViewPoison;
      cfg.poison_fill = 0.75;
      list.push_back({"view-poison",
                      "forged colluder-heavy shuffle offers vs the §2 "
                      "uniform-sampling assumption (RAPTEE's baseline threat)",
                      cfg});
    }
    {
      MembershipAttackConfig cfg;
      cfg.strategy = MembershipStrategy::kHubCapture;
      cfg.poison_fill = 0.75;
      cfg.extra_pushes = 3;
      list.push_back({"hub-capture",
                      "in-degree capture via directed forged pushes — "
                      "colluders dominate partner sets, honest cross-checks "
                      "(§5.2) starve",
                      cfg});
    }
    {
      MembershipAttackConfig cfg;
      cfg.strategy = MembershipStrategy::kEclipse;
      cfg.poison_fill = 0.75;
      cfg.extra_pushes = 3;
      cfg.eclipse_fraction = 0.2;
      list.push_back({"eclipse",
                      "eclipse-assisted freeriding: victim views captured "
                      "entirely, composing with the §4 attack catalog",
                      cfg});
    }
    return list;
  }();
  return entries;
}

}  // namespace lifting::adversary

#include "adversary/strategy.hpp"

#include "common/assert.hpp"

namespace lifting::adversary {

const char* strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kNone:
      return "none";
    case Strategy::kOscillate:
      return "oscillate";
    case Strategy::kScoreAware:
      return "score-aware";
    case Strategy::kWhitewash:
      return "whitewash";
    case Strategy::kCoalition:
      return "coalition";
  }
  return "?";
}

void AdversaryConfig::validate() const {
  if (!enabled()) return;
  require(decision_period > Duration::zero(),
          "adversary decision period must be positive");
  require(probe_interval > Duration::zero(),
          "adversary probe interval must be positive");
  if (strategy == Strategy::kOscillate) {
    require(duty_on > Duration::zero() && duty_off > Duration::zero(),
            "oscillator duty phases must be positive");
  }
  if (strategy == Strategy::kScoreAware) {
    require(resume_margin >= throttle_margin,
            "score-aware resume margin must be >= throttle margin "
            "(hysteresis, not a flapping band)");
  }
  if (strategy == Strategy::kWhitewash) {
    require(lay_low > Duration::zero(), "whitewash lay-low must be positive");
    require(max_bounces >= 1, "whitewash needs a bounce budget >= 1");
  }
  if (strategy == Strategy::kCoalition) {
    require(intel_stale >= Duration::zero(),
            "coalition intel staleness must be non-negative");
  }
}

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> entries = [] {
    std::vector<CatalogEntry> list;

    {
      AdversaryConfig cfg;
      cfg.strategy = Strategy::kOscillate;
      cfg.duty_on = seconds(3.0);
      cfg.duty_off = seconds(3.0);
      list.push_back({"oscillate", "§4 attacks, burst-mode vs §6.2 "
                                   "score normalization",
                      cfg});
    }
    {
      AdversaryConfig cfg;
      cfg.strategy = Strategy::kScoreAware;
      cfg.throttle_margin = 1.5;
      cfg.resume_margin = 3.0;
      list.push_back({"score-aware", "§5.1 score reads turned against the "
                                     "η threshold (Fig. 11/12)",
                      cfg});
    }
    {
      AdversaryConfig cfg;
      cfg.strategy = Strategy::kWhitewash;
      cfg.flee_margin = 1.0;
      cfg.lay_low = seconds(3.0);
      list.push_back({"whitewash", "timed departures vs expulsion commit "
                                   "(§5.1) and rejoin (DESIGN.md §7)",
                      cfg});
    }
    {
      AdversaryConfig cfg;
      cfg.strategy = Strategy::kCoalition;
      cfg.intel_stale = seconds(2.0);
      list.push_back({"coalition", "⋆ collusion (§5.2/§6.3.2) under "
                                   "divergent views (DESIGN.md §7)",
                      cfg});
    }
    return list;
  }();
  return entries;
}

}  // namespace lifting::adversary

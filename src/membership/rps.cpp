#include "membership/rps.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lifting::membership {

RpsNetwork::RpsNetwork(std::uint32_t n, std::size_t view_size,
                       std::size_t shuffle_length, std::uint64_t seed)
    : view_size_(view_size),
      shuffle_length_(std::min(shuffle_length, view_size)),
      rng_(derive_rng(seed, 0x525053ULL)) {  // "RPS"
  require(n >= 3, "RPS needs at least three nodes");
  require(view_size >= 2 && view_size < n, "view size must be in [2, n)");
  require(shuffle_length >= 1, "shuffle length must be >= 1");
  views_.resize(n);
  alive_.assign(n, 1);
  epoch_.assign(n, 1);
  // Bootstrap: successors on a ring plus random shortcuts. Deliberately
  // non-uniform — the shuffle rounds must do the mixing.
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& view = views_[i];
    for (std::size_t j = 1; j <= view_size_; ++j) {
      NodeId candidate{static_cast<std::uint32_t>((i + j) % n)};
      if (j == view_size_) {  // one shortcut
        candidate = NodeId{rng_.below(n)};
      }
      if (candidate != NodeId{i} && !contains(view, candidate)) {
        view.entries.push_back(Entry{candidate, 0, 1});
      }
    }
    rebuild_cache(i);
  }
}

void RpsNetwork::join(NodeId id) {
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= views_.size()) {
    views_.resize(v + 1);
    alive_.resize(v + 1, 0);
    epoch_.resize(v + 1, 0);
  }
  LIFTING_ASSERT(alive_[v] == 0, "RPS join of a node already alive");
  alive_[v] = 1;
  ++epoch_[v];
  // Bootstrap the joiner's view with random live peers (its introducers).
  // Partial Fisher-Yates: only the `take` selected positions are swapped,
  // not the whole candidate list.
  auto& view = views_[v];
  view.entries.clear();
  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] != 0 && i != v) candidates.push_back(NodeId{
        static_cast<std::uint32_t>(i)});
  }
  const std::size_t take = std::min(view_size_, candidates.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto j = i + rng_.below(static_cast<std::uint32_t>(
                           candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    view.entries.push_back(
        Entry{candidates[i], 0, epoch_[candidates[i].value()]});
  }
  rebuild_cache(static_cast<std::uint32_t>(v));
}

void RpsNetwork::leave(NodeId id) {
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= alive_.size() || alive_[v] == 0) return;
  alive_[v] = 0;
  views_[v].entries.clear();
  rebuild_cache(static_cast<std::uint32_t>(v));
}

void RpsNetwork::purge_stale(View& view) {
  view.entries.erase(
      std::remove_if(view.entries.begin(), view.entries.end(),
                     [this](const Entry& e) { return stale(e); }),
      view.entries.end());
}

bool RpsNetwork::contains(const View& view, NodeId id) const {
  return std::any_of(view.entries.begin(), view.entries.end(),
                     [&](const Entry& e) { return e.id == id; });
}

void RpsNetwork::rebuild_cache(std::uint32_t node) {
  auto& view = views_[node];
  view.ids_cache.clear();
  view.ids_cache.reserve(view.entries.size());
  for (const auto& e : view.entries) {
    if (!stale(e)) view.ids_cache.push_back(e.id);
  }
}

void RpsNetwork::run_round() {
  // Synchronous sweep in random order (order affects nothing observable;
  // randomizing avoids systematic id-order artifacts).
  std::vector<std::uint32_t> order(views_.size());
  for (std::uint32_t i = 0; i < views_.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  for (const auto initiator : order) {
    if (alive_[initiator] == 0) continue;
    shuffle_pair(initiator);
  }
  for (std::uint32_t i = 0; i < views_.size(); ++i) rebuild_cache(i);
}

void RpsNetwork::shuffle_pair(std::uint32_t initiator) {
  auto& mine = views_[initiator];
  purge_stale(mine);
  if (mine.entries.empty()) return;
  for (auto& e : mine.entries) ++e.age;

  // Contact the oldest entry (Cyclon's healing rule: old entries are
  // likely dead or stale; exchanging through them refreshes both sides).
  const auto oldest = std::max_element(
      mine.entries.begin(), mine.entries.end(),
      [](const Entry& a, const Entry& b) { return a.age < b.age; });
  const NodeId peer_id = oldest->id;
  auto& theirs = views_[peer_id.value()];
  purge_stale(theirs);

  // Pick subsets to exchange; the initiator always offers itself (age 0).
  const auto pick_subset = [&](View& view, NodeId exclude,
                               std::size_t count) {
    std::vector<Entry> subset;
    std::vector<std::size_t> idx(view.entries.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng_.shuffle(idx);
    for (const auto i : idx) {
      if (subset.size() >= count) break;
      if (view.entries[i].id == exclude) continue;
      subset.push_back(view.entries[i]);
    }
    return subset;
  };

  auto sent = pick_subset(mine, peer_id, shuffle_length_ - 1);
  sent.push_back(Entry{NodeId{initiator}, 0, epoch_[initiator]});
  const auto received = pick_subset(theirs, NodeId{initiator},
                                    shuffle_length_);

  // Merge policy: drop the entries we sent, insert what we received,
  // dedupe (keep the younger), truncate to the view size by age.
  const auto merge = [&](View& view, NodeId self,
                         const std::vector<Entry>& outgoing,
                         const std::vector<Entry>& incoming) {
    for (const auto& out : outgoing) {
      const auto it = std::find_if(
          view.entries.begin(), view.entries.end(),
          [&](const Entry& e) { return e.id == out.id; });
      if (it != view.entries.end()) view.entries.erase(it);
    }
    for (const auto& in : incoming) {
      if (in.id == self || stale(in)) continue;
      const auto it = std::find_if(
          view.entries.begin(), view.entries.end(),
          [&](const Entry& e) { return e.id == in.id; });
      if (it != view.entries.end()) {
        it->age = std::min(it->age, in.age);
      } else {
        view.entries.push_back(in);
      }
    }
    if (view.entries.size() > view_size_) {
      std::sort(view.entries.begin(), view.entries.end(),
                [](const Entry& a, const Entry& b) { return a.age < b.age; });
      view.entries.resize(view_size_);
    }
  };
  merge(mine, NodeId{initiator}, sent, received);
  merge(theirs, peer_id, received, sent);
}

NodeId RpsNetwork::sample(NodeId self, Pcg32& rng) const {
  const auto& view = views_[self.value()];
  LIFTING_ASSERT(!view.ids_cache.empty(), "sampling from an empty view");
  return view.ids_cache[rng.below(
      static_cast<std::uint32_t>(view.ids_cache.size()))];
}

std::vector<NodeId> RpsNetwork::sample_distinct(NodeId self, Pcg32& rng,
                                                std::size_t k) const {
  const auto& ids = views_[self.value()].ids_cache;
  std::vector<NodeId> shuffled = ids;
  rng.shuffle(shuffled);
  if (shuffled.size() > k) shuffled.resize(k);
  return shuffled;
}

const std::vector<NodeId>& RpsNetwork::view_of(NodeId self) const {
  return views_[self.value()].ids_cache;
}

std::vector<std::uint32_t> RpsNetwork::in_degrees() const {
  std::vector<std::uint32_t> degrees(views_.size(), 0);
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (alive_[i] == 0) continue;
    for (const auto& e : views_[i].entries) {
      if (!stale(e)) ++degrees[e.id.value()];
    }
  }
  return degrees;
}

double RpsNetwork::coverage_of(NodeId id) const {
  std::size_t holders = 0;
  std::size_t observers = 0;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (alive_[i] == 0 || NodeId{static_cast<std::uint32_t>(i)} == id) {
      continue;
    }
    ++observers;
    for (const auto& e : views_[i].entries) {
      // Count any entry naming the id, stale or not: a holder of a stale
      // entry still *believes* the node is reachable until a shuffle
      // purges it — exactly the laggard-observer population the
      // Directory's view lag models.
      if (e.id == id) {
        ++holders;
        break;
      }
    }
  }
  return observers == 0 ? 0.0
                        : static_cast<double>(holders) /
                              static_cast<double>(observers);
}

}  // namespace lifting::membership

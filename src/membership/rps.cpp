#include "membership/rps.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace lifting::membership {

namespace {

/// Wire conversion: the forged bit is the only non-trivial field mapping.
gossip::RpsViewEntry to_wire(NodeId id, std::uint32_t age, std::uint32_t epoch,
                             bool forged) {
  return gossip::RpsViewEntry{
      id, age, epoch,
      static_cast<std::uint8_t>(forged ? gossip::kRpsEntryForged : 0)};
}

}  // namespace

RpsNetwork::RpsNetwork(std::uint32_t n, std::size_t view_size,
                       std::size_t shuffle_length, std::uint64_t seed,
                       SamplerPolicy policy)
    : view_size_(view_size),
      shuffle_length_(std::min(shuffle_length, view_size)),
      policy_(policy),
      rng_(derive_rng(seed, 0x525053ULL)) {  // "RPS"
  require(n >= 3, "RPS needs at least three nodes");
  require(view_size >= 2 && view_size < n, "view size must be in [2, n)");
  require(shuffle_length >= 1, "shuffle length must be >= 1");
  policy_.validate();
  views_.resize(n);
  alive_.assign(n, 1);
  epoch_.assign(n, 1);
  responses_.assign(n, 0);
  // Bootstrap: successors on a ring plus random shortcuts. Deliberately
  // non-uniform — the shuffle rounds must do the mixing.
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& view = views_[i];
    for (std::size_t j = 1; j <= view_size_; ++j) {
      NodeId candidate{static_cast<std::uint32_t>((i + j) % n)};
      if (j == view_size_) {  // one shortcut
        candidate = NodeId{rng_.below(n)};
      }
      if (candidate != NodeId{i} && !contains(view, candidate)) {
        view.entries.push_back(Entry{candidate, 0, 1});
      }
    }
    rebuild_cache(i);
  }
}

void RpsNetwork::set_adversary(const adversary::MembershipAttackConfig& attack,
                               const std::vector<NodeId>& colluders) {
  attack.validate();
  attack_ = attack;
  colluders_.clear();
  colluder_.assign(alive_.size(), 0);
  victims_.clear();
  victim_.assign(alive_.size(), 0);
  if (!attack_.enabled()) return;
  require(!colluders.empty(), "membership attack armed without colluders");
  for (const auto c : colluders) {
    const auto v = static_cast<std::size_t>(c.value());
    require(v < alive_.size(), "membership colluder id out of range");
    if (colluder_[v] != 0) continue;
    colluder_[v] = 1;
    colluders_.push_back(c);
  }
  if (attack_.strategy == adversary::MembershipStrategy::kEclipse) {
    // Pick the victim subset once, deterministically: the attack tracks a
    // fixed set of targets rather than re-rolling every round.
    std::vector<NodeId> honest;
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      if (alive_[i] != 0 && colluder_[i] == 0) {
        honest.push_back(NodeId{static_cast<std::uint32_t>(i)});
      }
    }
    require(!honest.empty(), "eclipse attack needs at least one honest node");
    rng_.shuffle(honest);
    auto take = static_cast<std::size_t>(
        attack_.eclipse_fraction * static_cast<double>(honest.size()) + 0.5);
    take = std::min(std::max<std::size_t>(take, 1), honest.size());
    victims_.assign(honest.begin(),
                    honest.begin() + static_cast<std::ptrdiff_t>(take));
    for (const auto vic : victims_) victim_[vic.value()] = 1;
  }
}

void RpsNetwork::join(NodeId id) {
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= views_.size()) {
    views_.resize(v + 1);
    alive_.resize(v + 1, 0);
    epoch_.resize(v + 1, 0);
    responses_.resize(v + 1, 0);
    if (!colluder_.empty()) colluder_.resize(v + 1, 0);
    if (!victim_.empty()) victim_.resize(v + 1, 0);
  }
  LIFTING_ASSERT(alive_[v] == 0, "RPS join of a node already alive");
  alive_[v] = 1;
  ++epoch_[v];
  // Bootstrap the joiner's view with random live peers (its introducers).
  // Partial Fisher-Yates: only the `take` selected positions are swapped,
  // not the whole candidate list.
  auto& view = views_[v];
  view.entries.clear();
  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] != 0 && i != v) candidates.push_back(NodeId{
        static_cast<std::uint32_t>(i)});
  }
  const std::size_t take = std::min(view_size_, candidates.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto j = i + rng_.below(static_cast<std::uint32_t>(
                           candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    view.entries.push_back(
        Entry{candidates[i], 0, epoch_[candidates[i].value()]});
  }
  rebuild_cache(static_cast<std::uint32_t>(v));
}

void RpsNetwork::leave(NodeId id) {
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= alive_.size() || alive_[v] == 0) return;
  alive_[v] = 0;
  views_[v].entries.clear();
  rebuild_cache(static_cast<std::uint32_t>(v));
}

void RpsNetwork::purge_stale(View& view) {
  view.entries.erase(
      std::remove_if(view.entries.begin(), view.entries.end(),
                     [this](const Entry& e) { return stale(e); }),
      view.entries.end());
}

void RpsNetwork::evict_old(View& view) {
  view.entries.erase(
      std::remove_if(view.entries.begin(), view.entries.end(),
                     [this](const Entry& e) {
                       return e.age > policy_.max_entry_age;
                     }),
      view.entries.end());
}

bool RpsNetwork::contains(const View& view, NodeId id) const {
  return std::any_of(view.entries.begin(), view.entries.end(),
                     [&](const Entry& e) { return e.id == id; });
}

void RpsNetwork::rebuild_cache(std::uint32_t node) {
  auto& view = views_[node];
  view.ids_cache.clear();
  view.ids_cache.reserve(view.entries.size());
  for (const auto& e : view.entries) {
    if (!stale(e)) view.ids_cache.push_back(e.id);
  }
}

void RpsNetwork::run_round() {
  ++round_;
  if (policy_.hardened()) responses_.assign(views_.size(), 0);
  // Synchronous sweep in random order (order affects nothing observable;
  // randomizing avoids systematic id-order artifacts).
  std::vector<std::uint32_t> order(views_.size());
  for (std::uint32_t i = 0; i < views_.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  for (const auto initiator : order) {
    if (alive_[initiator] == 0) continue;
    shuffle_pair(initiator);
  }
  // Directed attack pushes run after the honest sweep: colluders cannot
  // pre-burn a victim's responder budget before its honest exchanges land,
  // so the hardened rate cap bounds attack traffic, not honest traffic.
  if (attack_.enabled()) attack_pushes();
  for (std::uint32_t i = 0; i < views_.size(); ++i) rebuild_cache(i);
}

void RpsNetwork::shuffle_pair(std::uint32_t initiator) {
  auto& mine = views_[initiator];
  purge_stale(mine);
  if (policy_.hardened()) evict_old(mine);
  if (mine.entries.empty()) return;
  for (auto& e : mine.entries) ++e.age;

  // Contact the oldest entry (Cyclon's healing rule: old entries are
  // likely dead or stale; exchanging through them refreshes both sides).
  const auto oldest = std::max_element(
      mine.entries.begin(), mine.entries.end(),
      [](const Entry& a, const Entry& b) { return a.age < b.age; });
  const NodeId peer_id = oldest->id;

  // Hardened responder rate cap: a refused contact still cost the
  // initiator its round (ages already bumped), like contacting a node
  // that drops the exchange.
  if (policy_.hardened()) {
    auto& budget = responses_[peer_id.value()];
    if (budget >= policy_.max_responses_per_round) return;
    ++budget;
  }

  auto& theirs = views_[peer_id.value()];
  purge_stale(theirs);
  if (policy_.hardened()) evict_old(theirs);

  // The initiator's offer always carries itself at age 0; the response is
  // a plain subset. Colluder sides substitute poisoned payloads inside
  // make_exchange.
  const gossip::RpsShuffleMsg offer =
      make_exchange(NodeId{initiator}, peer_id, shuffle_length_ - 1, true);
  const gossip::RpsShuffleMsg reply =
      make_exchange(peer_id, NodeId{initiator}, shuffle_length_, false);
  merge_into(mine, NodeId{initiator}, offer.entries, reply.entries);
  merge_into(theirs, peer_id, reply.entries, offer.entries);
  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kRpsMerge, NodeId{initiator}, peer_id,
                   round_, 0.0, 0,
                   static_cast<std::uint16_t>(reply.entries.size()));
  }
}

gossip::RpsShuffleMsg RpsNetwork::make_exchange(NodeId from, NodeId to,
                                                std::size_t count,
                                                bool offer) {
  gossip::RpsShuffleMsg msg;
  msg.round = round_;
  if (policy_.attestation_active()) msg.flags |= gossip::kRpsShuffleAttested;
  if (!offer) msg.flags |= gossip::kRpsShuffleResponse;
  if (attack_.enabled() && is_colluder(from)) {
    fill_poisoned(msg, from, to, count);
  } else {
    pick_subset_into(msg, views_[static_cast<std::size_t>(from.value())], to,
                     count);
  }
  if (offer) {
    // The self-advert is genuine even from a colluder: a real node naming
    // itself is exactly what the honest protocol allows, so attestation
    // never strips it (RAPTEE bounds attacks to protocol-legal behavior,
    // it does not unmask participants).
    msg.entries.push_back(to_wire(from, 0, epoch_[from.value()], false));
  }
  return msg;
}

void RpsNetwork::pick_subset_into(gossip::RpsShuffleMsg& msg, View& view,
                                  NodeId exclude, std::size_t count) {
  std::vector<std::size_t> idx(view.entries.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng_.shuffle(idx);
  for (const auto i : idx) {
    if (msg.entries.size() >= count) break;
    const Entry& e = view.entries[i];
    if (e.id == exclude) continue;
    // Skip ids the message already carries — a no-op for honest exchanges
    // (view entries are unique by id) but needed when padding a poisoned
    // offer that already names colluders.
    const bool dup = std::any_of(
        msg.entries.begin(), msg.entries.end(),
        [&](const gossip::RpsViewEntry& w) { return w.id == e.id; });
    if (dup) continue;
    msg.entries.push_back(to_wire(e.id, e.age, e.epoch, e.forged));
  }
}

void RpsNetwork::fill_poisoned(gossip::RpsShuffleMsg& msg, NodeId from,
                               NodeId to, std::size_t count) {
  if (count == 0) return;
  // Forged coalition adverts at age 0: maximally attractive to the
  // age-sorted merge, so they displace the oldest honest entries first.
  std::vector<NodeId> pool;
  for (const auto c : colluders_) {
    if (c == from || c == to || !alive(c)) continue;
    pool.push_back(c);
  }
  rng_.shuffle(pool);
  auto forged_target = static_cast<std::size_t>(
      attack_.poison_fill * static_cast<double>(count) + 0.5);
  forged_target = std::min(std::max<std::size_t>(forged_target, 1), count);
  for (std::size_t i = 0; i < pool.size() && msg.entries.size() < forged_target;
       ++i) {
    msg.entries.push_back(
        to_wire(pool[i], 0, epoch_[pool[i].value()], true));
  }
  // Pad with genuinely held entries so the exchange keeps its natural
  // size — a size anomaly would be trivially detectable.
  pick_subset_into(msg, views_[static_cast<std::size_t>(from.value())], to,
                   count);
}

void RpsNetwork::merge_into(View& view, NodeId self,
                            const std::vector<gossip::RpsViewEntry>& outgoing,
                            const std::vector<gossip::RpsViewEntry>& incoming) {
  if (!policy_.hardened()) {
    // Legacy merge (bit-identical to the pre-policy sampler): drop the
    // entries we sent, insert what we received, dedupe (keep the younger),
    // truncate to the view size by age.
    for (const auto& out : outgoing) {
      const auto it = std::find_if(
          view.entries.begin(), view.entries.end(),
          [&](const Entry& e) { return e.id == out.id; });
      if (it != view.entries.end()) view.entries.erase(it);
    }
    for (const auto& in : incoming) {
      const Entry e{in.id, in.age, in.epoch,
                    (in.flags & gossip::kRpsEntryForged) != 0};
      if (e.id == self || stale(e)) continue;
      const auto it = std::find_if(
          view.entries.begin(), view.entries.end(),
          [&](const Entry& x) { return x.id == e.id; });
      if (it != view.entries.end()) {
        it->age = std::min(it->age, e.age);
      } else {
        view.entries.push_back(e);
      }
    }
    if (view.entries.size() > view_size_) {
      std::sort(view.entries.begin(), view.entries.end(),
                [](const Entry& a, const Entry& b) { return a.age < b.age; });
      view.entries.resize(view_size_);
    }
    return;
  }

  // Hardened merge: filter the incoming entries first (attestation, age
  // bound, bounded push acceptance), then spend the entries we handed away
  // only as accepted replacements arrive — Cyclon's remove-as-needed swap.
  // Removing everything sent regardless (the legacy rule) would let a
  // mostly-rejected forged offer drain the victim's view: attestation
  // strips the payload but the victim still paid full price, and repeated
  // poisoned exchanges collapse views into a handful of overloaded targets.
  std::vector<Entry> accepted;
  for (const auto& in : incoming) {
    const Entry e{in.id, in.age, in.epoch,
                  (in.flags & gossip::kRpsEntryForged) != 0};
    if (e.id == self || stale(e)) continue;
    if (policy_.attestation_active() && e.forged) continue;
    if (e.age > policy_.max_entry_age) continue;
    const auto it = std::find_if(
        view.entries.begin(), view.entries.end(),
        [&](const Entry& x) { return x.id == e.id; });
    if (it != view.entries.end()) {
      it->age = std::min(it->age, e.age);
      continue;
    }
    const bool dup = std::any_of(
        accepted.begin(), accepted.end(),
        [&](const Entry& x) { return x.id == e.id; });
    if (dup) continue;
    // Bounded push acceptance: a solicited shuffle may refill what it
    // offered, an unsolicited push (empty outgoing) can plant at most
    // max_push_accept new ids — a directed flood cannot flip a whole view
    // in one round.
    if (accepted.size() >= outgoing.size() + policy_.max_push_accept) break;
    accepted.push_back(e);
  }
  std::size_t spent = 0;
  for (const auto& out : outgoing) {
    if (spent >= accepted.size()) break;
    const auto it = std::find_if(
        view.entries.begin(), view.entries.end(),
        [&](const Entry& e) { return e.id == out.id; });
    if (it != view.entries.end()) {
      view.entries.erase(it);
      ++spent;
    }
  }
  view.entries.insert(view.entries.end(), accepted.begin(), accepted.end());
  if (view.entries.size() > view_size_) {
    std::sort(view.entries.begin(), view.entries.end(),
              [](const Entry& a, const Entry& b) { return a.age < b.age; });
    view.entries.resize(view_size_);
  }
}

void RpsNetwork::attack_pushes() {
  using adversary::MembershipStrategy;
  if (attack_.strategy != MembershipStrategy::kHubCapture &&
      attack_.strategy != MembershipStrategy::kEclipse) {
    return;
  }
  static const std::vector<gossip::RpsViewEntry> kNoOutgoing;
  for (const auto c : colluders_) {
    if (!alive(c)) continue;
    for (std::uint32_t p = 0; p < attack_.extra_pushes; ++p) {
      // Bounded retries keep target selection deterministic even when most
      // candidates are dead or fellow colluders.
      NodeId target = c;  // sentinel: c itself means "none found"
      for (int attempt = 0; attempt < 8; ++attempt) {
        NodeId cand;
        if (attack_.strategy == MembershipStrategy::kEclipse) {
          if (victims_.empty()) break;
          cand = victims_[rng_.below(
              static_cast<std::uint32_t>(victims_.size()))];
        } else {
          cand = NodeId{rng_.below(
              static_cast<std::uint32_t>(views_.size()))};
        }
        if (!alive(cand) || is_colluder(cand) || cand == c) continue;
        target = cand;
        break;
      }
      if (target == c) continue;
      if (policy_.hardened()) {
        auto& budget = responses_[target.value()];
        if (budget >= policy_.max_responses_per_round) continue;
        ++budget;
      }
      const gossip::RpsShuffleMsg push =
          make_exchange(c, target, shuffle_length_ - 1, true);
      merge_into(views_[static_cast<std::size_t>(target.value())], target,
                 kNoOutgoing, push.entries);
    }
  }
}

NodeId RpsNetwork::sample(NodeId self, Pcg32& rng) const {
  const auto& view = views_[self.value()];
  LIFTING_ASSERT(!view.ids_cache.empty(), "sampling from an empty view");
  return view.ids_cache[rng.below(
      static_cast<std::uint32_t>(view.ids_cache.size()))];
}

std::vector<NodeId> RpsNetwork::sample_distinct(NodeId self, Pcg32& rng,
                                                std::size_t k) const {
  const auto& ids = views_[self.value()].ids_cache;
  std::vector<NodeId> shuffled = ids;
  rng.shuffle(shuffled);
  if (shuffled.size() > k) shuffled.resize(k);
  return shuffled;
}

const std::vector<NodeId>& RpsNetwork::view_of(NodeId self) const {
  return views_[self.value()].ids_cache;
}

std::vector<std::uint32_t> RpsNetwork::in_degrees() const {
  std::vector<std::uint32_t> degrees(views_.size(), 0);
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (alive_[i] == 0) continue;
    for (const auto& e : views_[i].entries) {
      if (!stale(e)) ++degrees[e.id.value()];
    }
  }
  return degrees;
}

double RpsNetwork::coverage_of(NodeId id) const {
  std::size_t holders = 0;
  std::size_t observers = 0;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (alive_[i] == 0 || NodeId{static_cast<std::uint32_t>(i)} == id) {
      continue;
    }
    ++observers;
    for (const auto& e : views_[i].entries) {
      // Count any entry naming the id, stale or not: a holder of a stale
      // entry still *believes* the node is reachable until a shuffle
      // purges it — exactly the laggard-observer population the
      // Directory's view lag models.
      if (e.id == id) {
        ++holders;
        break;
      }
    }
  }
  return observers == 0 ? 0.0
                        : static_cast<double>(holders) /
                              static_cast<double>(observers);
}

double RpsNetwork::colluder_share_of(NodeId id) const {
  const auto& entries = views_[static_cast<std::size_t>(id.value())].entries;
  std::size_t live = 0;
  std::size_t coll = 0;
  for (const auto& e : entries) {
    if (stale(e)) continue;
    ++live;
    if (is_colluder(e.id)) ++coll;
  }
  return live == 0 ? 0.0
                   : static_cast<double>(coll) / static_cast<double>(live);
}

double RpsNetwork::colluder_view_share() const {
  double sum = 0.0;
  std::size_t honest = 0;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (alive_[i] == 0 || is_colluder(id)) continue;
    sum += colluder_share_of(id);
    ++honest;
  }
  return honest == 0 ? 0.0 : sum / static_cast<double>(honest);
}

}  // namespace lifting::membership

#include "membership/rps.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lifting::membership {

RpsNetwork::RpsNetwork(std::uint32_t n, std::size_t view_size,
                       std::size_t shuffle_length, std::uint64_t seed)
    : view_size_(view_size),
      shuffle_length_(std::min(shuffle_length, view_size)),
      rng_(derive_rng(seed, 0x525053ULL)) {  // "RPS"
  require(n >= 3, "RPS needs at least three nodes");
  require(view_size >= 2 && view_size < n, "view size must be in [2, n)");
  require(shuffle_length >= 1, "shuffle length must be >= 1");
  views_.resize(n);
  // Bootstrap: successors on a ring plus random shortcuts. Deliberately
  // non-uniform — the shuffle rounds must do the mixing.
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& view = views_[i];
    for (std::size_t j = 1; j <= view_size_; ++j) {
      NodeId candidate{static_cast<std::uint32_t>((i + j) % n)};
      if (j == view_size_) {  // one shortcut
        candidate = NodeId{rng_.below(n)};
      }
      if (candidate != NodeId{i} && !contains(view, candidate)) {
        view.entries.push_back(Entry{candidate, 0});
      }
    }
    rebuild_cache(i);
  }
}

bool RpsNetwork::contains(const View& view, NodeId id) const {
  return std::any_of(view.entries.begin(), view.entries.end(),
                     [&](const Entry& e) { return e.id == id; });
}

void RpsNetwork::rebuild_cache(std::uint32_t node) {
  auto& view = views_[node];
  view.ids_cache.clear();
  view.ids_cache.reserve(view.entries.size());
  for (const auto& e : view.entries) view.ids_cache.push_back(e.id);
}

void RpsNetwork::run_round() {
  // Synchronous sweep in random order (order affects nothing observable;
  // randomizing avoids systematic id-order artifacts).
  std::vector<std::uint32_t> order(views_.size());
  for (std::uint32_t i = 0; i < views_.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  for (const auto initiator : order) {
    shuffle_pair(initiator);
  }
  for (std::uint32_t i = 0; i < views_.size(); ++i) rebuild_cache(i);
}

void RpsNetwork::shuffle_pair(std::uint32_t initiator) {
  auto& mine = views_[initiator];
  if (mine.entries.empty()) return;
  for (auto& e : mine.entries) ++e.age;

  // Contact the oldest entry (Cyclon's healing rule: old entries are
  // likely dead or stale; exchanging through them refreshes both sides).
  const auto oldest = std::max_element(
      mine.entries.begin(), mine.entries.end(),
      [](const Entry& a, const Entry& b) { return a.age < b.age; });
  const NodeId peer_id = oldest->id;
  auto& theirs = views_[peer_id.value()];

  // Pick subsets to exchange; the initiator always offers itself (age 0).
  const auto pick_subset = [&](View& view, NodeId exclude,
                               std::size_t count) {
    std::vector<Entry> subset;
    std::vector<std::size_t> idx(view.entries.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng_.shuffle(idx);
    for (const auto i : idx) {
      if (subset.size() >= count) break;
      if (view.entries[i].id == exclude) continue;
      subset.push_back(view.entries[i]);
    }
    return subset;
  };

  auto sent = pick_subset(mine, peer_id, shuffle_length_ - 1);
  sent.push_back(Entry{NodeId{initiator}, 0});
  const auto received = pick_subset(theirs, NodeId{initiator},
                                    shuffle_length_);

  // Merge policy: drop the entries we sent, insert what we received,
  // dedupe (keep the younger), truncate to the view size by age.
  const auto merge = [&](View& view, NodeId self,
                         const std::vector<Entry>& outgoing,
                         const std::vector<Entry>& incoming) {
    for (const auto& out : outgoing) {
      const auto it = std::find_if(
          view.entries.begin(), view.entries.end(),
          [&](const Entry& e) { return e.id == out.id; });
      if (it != view.entries.end()) view.entries.erase(it);
    }
    for (const auto& in : incoming) {
      if (in.id == self) continue;
      const auto it = std::find_if(
          view.entries.begin(), view.entries.end(),
          [&](const Entry& e) { return e.id == in.id; });
      if (it != view.entries.end()) {
        it->age = std::min(it->age, in.age);
      } else {
        view.entries.push_back(in);
      }
    }
    if (view.entries.size() > view_size_) {
      std::sort(view.entries.begin(), view.entries.end(),
                [](const Entry& a, const Entry& b) { return a.age < b.age; });
      view.entries.resize(view_size_);
    }
  };
  merge(mine, NodeId{initiator}, sent, received);
  merge(theirs, peer_id, received, sent);
}

NodeId RpsNetwork::sample(NodeId self, Pcg32& rng) const {
  const auto& view = views_[self.value()];
  LIFTING_ASSERT(!view.ids_cache.empty(), "sampling from an empty view");
  return view.ids_cache[rng.below(
      static_cast<std::uint32_t>(view.ids_cache.size()))];
}

std::vector<NodeId> RpsNetwork::sample_distinct(NodeId self, Pcg32& rng,
                                                std::size_t k) const {
  const auto& ids = views_[self.value()].ids_cache;
  std::vector<NodeId> shuffled = ids;
  rng.shuffle(shuffled);
  if (shuffled.size() > k) shuffled.resize(k);
  return shuffled;
}

const std::vector<NodeId>& RpsNetwork::view_of(NodeId self) const {
  return views_[self.value()].ids_cache;
}

std::vector<std::uint32_t> RpsNetwork::in_degrees() const {
  std::vector<std::uint32_t> degrees(views_.size(), 0);
  for (const auto& view : views_) {
    for (const auto& e : view.entries) ++degrees[e.id.value()];
  }
  return degrees;
}

}  // namespace lifting::membership

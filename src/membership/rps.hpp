#ifndef LIFTING_MEMBERSHIP_RPS_HPP
#define LIFTING_MEMBERSHIP_RPS_HPP

#include <cstdint>
#include <vector>

#include "adversary/membership.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/message.hpp"
#include "membership/sampler_policy.hpp"

/// Gossip-based random peer sampling (paper §2: uniform selection "is
/// usually achieved using full membership or a random peer sampling
/// protocol [13, 18]").
///
/// This is a Cyclon-style shuffling service: every node keeps a small
/// partial view (id + age); each round it contacts its oldest entry and
/// the two swap random subsets of their views. After a few rounds the
/// in-degree distribution concentrates around the view size and sampling
/// from the view approximates uniform sampling — with exactly the "small
/// deviation with respect to the uniform distribution" that §5.3 requires
/// the entropy threshold γ to tolerate (validated in the test suite).
///
/// The service is substrate-level: rounds advance synchronously over the
/// population. It can be either a standalone calibration artifact (the
/// historical role) or — with ScenarioConfig::membership.rps_partner_sampling
/// — the actual partner-selection source of every gossip engine
/// (DESIGN.md §12), which is where the membership-layer attacks bite.
///
/// Exchange subsets travel as gossip::RpsShuffleMsg (the wire type the
/// net codec round-trips), so what the attacks forge and what the
/// hardened sampler's attestation rejects is exactly what a deployment
/// would put on the wire.

namespace lifting::obs {
class Recorder;
}  // namespace lifting::obs

namespace lifting::membership {

class RpsNetwork {
 public:
  /// Builds a population of n views bootstrapped from a random ring plus
  /// random shortcuts (a weakly connected start that shuffling must mix).
  /// The default (legacy) policy leaves every rng draw and view mutation
  /// byte-identical to the pre-policy sampler.
  RpsNetwork(std::uint32_t n, std::size_t view_size, std::size_t shuffle_length,
             std::uint64_t seed, SamplerPolicy policy = {});

  /// Arms a membership-layer attack (DESIGN.md §12) over `colluders`
  /// (typically the deployment's freerider list). kEclipse picks its
  /// victim subset now, deterministically from the network rng. A kNone
  /// config disarms.
  void set_adversary(const adversary::MembershipAttackConfig& attack,
                     const std::vector<NodeId>& colluders);

  /// Runs one synchronous shuffle round over every live node (plus the
  /// armed attack's directed pushes, if any).
  void run_round();
  void run_rounds(std::uint32_t rounds) {
    for (std::uint32_t i = 0; i < rounds; ++i) run_round();
  }

  // ---- dynamic membership (alive-epoch masks)
  //
  // Views are dense NodeId-indexed tables, so departures cannot compact
  // them; instead every node carries an alive flag plus a join epoch, and
  // view entries record the epoch they were learned under. An entry whose
  // (id, epoch) no longer matches is stale: it is purged lazily during
  // shuffles, exactly like Cyclon's aging heals dead links. A rejoining id
  // bumps its epoch, so stale entries from the previous incarnation can
  // never resurrect it with old state.

  /// Adds `id` (fresh, growing the id space, or returning — epoch bumps).
  /// The joiner bootstraps its view from random live nodes and spreads into
  /// other views through subsequent shuffle rounds.
  void join(NodeId id);
  /// Marks `id` dead. Its own view empties; references to it elsewhere
  /// become stale and decay over the following rounds.
  void leave(NodeId id);
  [[nodiscard]] bool alive(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < alive_.size() && alive_[v] != 0;
  }
  /// Join epoch of `id` (0 = never joined).
  [[nodiscard]] std::uint32_t epoch_of(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < epoch_.size() ? epoch_[v] : 0;
  }

  /// Samples one peer from `self`'s current view (uniform over the view).
  [[nodiscard]] NodeId sample(NodeId self, Pcg32& rng) const;

  /// Samples up to k distinct peers from `self`'s view.
  [[nodiscard]] std::vector<NodeId> sample_distinct(NodeId self, Pcg32& rng,
                                                    std::size_t k) const;

  [[nodiscard]] const std::vector<NodeId>& view_of(NodeId self) const;
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(views_.size());
  }
  [[nodiscard]] const SamplerPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint32_t rounds_run() const noexcept { return round_; }

  /// In-degree of every live node (how many views contain it) — the classic
  /// RPS health metric: it concentrates around view_size after mixing.
  [[nodiscard]] std::vector<std::uint32_t> in_degrees() const;

  /// Fraction of live views (excluding `id`'s own) that currently contain
  /// an entry naming `id` — stale entries included on purpose: a holder of
  /// a stale entry still *believes* the node is reachable until a shuffle
  /// purges it, which is precisely the laggard-observer population the
  /// Directory's view-propagation lag models (DESIGN.md §7). After a join
  /// the value climbs from 0 toward the in-degree plateau over a few
  /// shuffle rounds; after a leave it decays only as shuffles purge the
  /// stale references — the calibration test in
  /// tests/test_churn_resilience.cpp measures both curves.
  [[nodiscard]] double coverage_of(NodeId id) const;

  // ---- attack observability (all zero / empty when nothing is armed)
  [[nodiscard]] bool is_colluder(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < colluder_.size() && colluder_[v] != 0;
  }
  /// Victim subset of an armed kEclipse attack (empty otherwise).
  [[nodiscard]] const std::vector<NodeId>& eclipse_victims() const noexcept {
    return victims_;
  }
  /// Fraction of `id`'s live view entries naming colluders.
  [[nodiscard]] double colluder_share_of(NodeId id) const;
  /// Mean colluder share over live NON-colluder views — the health metric
  /// the membership bench axis reports (≈ colluder population share under
  /// honest sampling; pinned much higher by a successful poisoning).
  [[nodiscard]] double colluder_view_share() const;

  /// Arms shuffle tracing (DESIGN.md §13); null disarms. Recording is
  /// passive — no draws — so armed rounds stay bit-identical.
  void set_trace(obs::Recorder* trace) noexcept { trace_ = trace; }

 private:
  struct Entry {
    NodeId id;
    std::uint32_t age = 0;
    std::uint32_t epoch = 1;  // the target's epoch when learned
    /// Ground-truth fabrication marker (gossip::kRpsEntryForged on the
    /// wire): set only by membership attacks, propagated by honest
    /// shuffles, rejected by the hardened sampler's attested merge.
    bool forged = false;
  };
  struct View {
    std::vector<Entry> entries;
    std::vector<NodeId> ids_cache;  // rebuilt after each round
  };

  void shuffle_pair(std::uint32_t initiator);
  void rebuild_cache(std::uint32_t node);
  void purge_stale(View& view);
  /// Hardened-only hygiene: drop entries past the policy age bound.
  void evict_old(View& view);
  /// Builds one exchange message from `from` toward `to`: the honest
  /// random subset (exact legacy rng draws), or a forged colluder-heavy
  /// offer when `from` is an armed colluder.
  [[nodiscard]] gossip::RpsShuffleMsg make_exchange(NodeId from, NodeId to,
                                                    std::size_t count,
                                                    bool offer);
  void fill_poisoned(gossip::RpsShuffleMsg& msg, NodeId from, NodeId to,
                     std::size_t count);
  void pick_subset_into(gossip::RpsShuffleMsg& msg, View& view, NodeId exclude,
                        std::size_t count);
  /// Applies one exchange to `view`: drop what was sent, admit what was
  /// received under the sampler policy, truncate by age.
  void merge_into(View& view, NodeId self,
                  const std::vector<gossip::RpsViewEntry>& outgoing,
                  const std::vector<gossip::RpsViewEntry>& incoming);
  /// Directed forged pushes of kHubCapture / kEclipse (after the sweep).
  void attack_pushes();
  [[nodiscard]] bool stale(const Entry& e) const {
    const auto v = static_cast<std::size_t>(e.id.value());
    return v >= alive_.size() || alive_[v] == 0 || e.epoch != epoch_[v];
  }
  [[nodiscard]] bool contains(const View& view, NodeId id) const;

  std::size_t view_size_;
  std::size_t shuffle_length_;
  SamplerPolicy policy_;
  obs::Recorder* trace_ = nullptr;
  Pcg32 rng_;
  std::uint32_t round_ = 0;
  std::vector<View> views_;
  std::vector<std::uint8_t> alive_;    // dense, indexed by NodeId::value()
  std::vector<std::uint32_t> epoch_;   // joins so far per id
  /// Hardened responder rate cap: exchanges accepted this round as the
  /// contacted side (reset per round; untouched under legacy).
  std::vector<std::uint16_t> responses_;

  // ---- armed membership attack (empty/zero when disarmed)
  adversary::MembershipAttackConfig attack_;
  std::vector<NodeId> colluders_;
  std::vector<std::uint8_t> colluder_;  // dense mask
  std::vector<NodeId> victims_;         // kEclipse only
  std::vector<std::uint8_t> victim_;    // dense mask
};

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_RPS_HPP

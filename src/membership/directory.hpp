#ifndef LIFTING_MEMBERSHIP_DIRECTORY_HPP
#define LIFTING_MEMBERSHIP_DIRECTORY_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

/// Full-membership directory (paper §2: "we assume that nodes can pick
/// uniformly at random a set of nodes in the system", via full membership or
/// a random peer sampling service).
///
/// The directory also records expulsions: once LiFTinG's managers commit an
/// expulsion, honest nodes neither select the victim as a partner nor accept
/// its traffic. Expulsions are shared state applied after a configurable
/// propagation delay (scheduled by the caller).
///
/// Churn support: join()/leave() grow and shrink the membership mid-run.
/// Every id carries an *alive epoch* — a counter bumped on each (re)join —
/// so dense NodeId-indexed tables elsewhere can detect id reuse ((id, epoch)
/// pairs are never ambiguous) even when an id rejoins at the Experiment
/// level.
///
/// Divergent views (DESIGN.md §7): membership changes do not reach every
/// node at once — in a deployment they spread through RPS shuffles, so two
/// observers can disagree about a third node's liveness for a few rounds.
/// `set_view_model(max_lag, seed)` turns that on: each (observer, event)
/// pair gets a deterministic pseudo-random visibility delay in [0, max_lag]
/// (a pure hash — no per-pair storage, no extra rng draws), and `sees()` /
/// the view-aware samplers answer per-observer liveness. Departed nodes
/// linger in a limbo list for up to max_lag so laggard observers keep
/// selecting them — the wrongful-blame source the paper's PlanetLab runs
/// exhibit. With max_lag == 0 (the default) every view collapses to the
/// shared membership and the legacy behavior is bit-identical.

namespace lifting::membership {

class Directory {
 public:
  /// Creates a directory over nodes {0, 1, ..., n-1}, all live.
  /// Node ids are dense, so membership is a flat position table — liveness
  /// checks on the per-message path are a single array read.
  explicit Directory(std::uint32_t n) { reset(n); }

  /// Rewinds to the initial membership over {0, ..., n-1}, all live at
  /// epoch 1, with empty expulsion/departure/limbo records. Table capacity
  /// and the view model are kept (Experiment::reset re-arms the latter).
  void reset(std::uint32_t n) {
    live_.clear();
    position_.clear();
    epoch_.clear();
    expelled_.clear();
    departed_.clear();
    visible_since_.clear();
    limbo_.clear();
    live_.reserve(n);
    position_.reserve(n);
    epoch_.reserve(n);
    visible_since_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      position_.push_back(i);
      live_.push_back(NodeId{i});
      epoch_.push_back(1);
      // The initial population is common knowledge from before t = 0.
      visible_since_.push_back(TimePoint::min());
    }
    initial_size_ = n;
  }

  // ---- divergent-view model

  /// Arms the per-observer view model: each membership event becomes
  /// visible to observer o after a deterministic pseudo-random delay in
  /// [0, max_lag] hashed from (seed, o, subject, epoch, event kind).
  /// max_lag == 0 (default) disables the model entirely.
  void set_view_model(Duration max_lag, std::uint64_t seed) {
    LIFTING_ASSERT(max_lag >= Duration::zero(), "view lag must be >= 0");
    view_lag_ = max_lag;
    view_seed_ = seed;
  }
  [[nodiscard]] Duration view_lag() const noexcept { return view_lag_; }

  /// A node recently departed (leave/crash-detected) that laggard observers
  /// may still believe alive. Entries outlive the departure by at most
  /// view_lag() and are pruned on later mutations.
  struct LimboEntry {
    NodeId id;
    TimePoint left_at{};
    std::uint32_t epoch = 0;  ///< the incarnation that departed
  };
  [[nodiscard]] const std::vector<LimboEntry>& limbo() const noexcept {
    return limbo_;
  }

  /// Does `observer` currently believe `id` is a live member? This is the
  /// per-observer counterpart of is_live(): under a zero view lag the two
  /// agree exactly; with a lag, joins become visible late and departures
  /// stay invisible for up to view_lag(). A node always knows its own
  /// status, and expulsions use the shared propagation path (is_live).
  [[nodiscard]] bool sees(NodeId observer, NodeId id, TimePoint now) const {
    if (is_live(id)) {
      if (view_lag_ == Duration::zero() || observer == id) return true;
      const auto v = static_cast<std::size_t>(id.value());
      const TimePoint since = visible_since_[v];
      if (since == TimePoint::min()) return true;  // initial population
      return now >= since + view_jitter(observer, id, epoch_[v], kJoinSalt);
    }
    if (view_lag_ == Duration::zero() || observer == id) return false;
    // Departed: visible-as-live to observers the departure has not reached,
    // provided they had learned of the join in the first place.
    for (const auto& entry : limbo_) {
      if (entry.id != id) continue;
      if (entry.epoch != epoch_of(id)) continue;  // stale incarnation
      if (now >= entry.left_at +
                     view_jitter(observer, id, entry.epoch, kLeaveSalt)) {
        return false;
      }
      const auto v = static_cast<std::size_t>(id.value());
      const TimePoint since =
          v < visible_since_.size() ? visible_since_[v] : TimePoint::min();
      return since == TimePoint::min() ||
             now >= since + view_jitter(observer, id, entry.epoch, kJoinSalt);
    }
    return false;
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_.size();
  }
  [[nodiscard]] std::uint32_t initial_size() const noexcept {
    return initial_size_;
  }

  [[nodiscard]] bool is_live(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < position_.size() && position_[v] != kDead;
  }

  /// Live nodes, dense, in unspecified order. Stable between mutations.
  [[nodiscard]] const std::vector<NodeId>& live() const noexcept {
    return live_;
  }

  /// Removes a node by expulsion (LiFTinG indictment). Idempotent.
  /// Expulsions are announced, not gossiped: they use the shared
  /// `expulsion_propagation` delay, never the per-observer view lag.
  void expel(NodeId id) {
    if (remove(id)) expelled_.push_back(id);
  }

  /// Removes a node by churn (leave or detected crash) — a departure, not
  /// an indictment; recorded separately from expulsions. Idempotent. `now`
  /// feeds the divergent-view model (laggard observers keep seeing the node
  /// until their per-observer delay elapses); immaterial when the view
  /// model is off.
  void leave(NodeId id, TimePoint now = kSimEpoch) {
    if (!remove(id)) return;
    departed_.push_back(id);
    if (view_lag_ > Duration::zero()) {
      prune_limbo(now);
      limbo_.push_back(LimboEntry{id, now, epoch_of(id)});
    }
  }

  /// Adds `id` to the membership — a fresh id (growing the dense id space)
  /// or a returning one. Each (re)join bumps the id's alive epoch. `now` is
  /// the join instant for the view model (observers learn of the joiner
  /// after their per-observer delay).
  void join(NodeId id, TimePoint now = kSimEpoch) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= position_.size()) {
      position_.resize(v + 1, kDead);
      epoch_.resize(v + 1, 0);
      visible_since_.resize(v + 1, TimePoint::min());
    }
    LIFTING_ASSERT(position_[v] == kDead, "join of a node already live");
    position_[v] = static_cast<std::uint32_t>(live_.size());
    live_.push_back(id);
    ++epoch_[v];
    visible_since_[v] = now;
  }

  /// Dense id-space bound: every id ever seen is < id_capacity().
  [[nodiscard]] std::uint32_t id_capacity() const noexcept {
    return static_cast<std::uint32_t>(position_.size());
  }

  /// Alive epoch of `id`: 0 if the id was never a member, otherwise the
  /// number of times it has joined. Keyed tables that must survive id reuse
  /// store (id, epoch) and compare against this.
  [[nodiscard]] std::uint32_t epoch_of(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < epoch_.size() ? epoch_[v] : 0;
  }

  /// Nodes expelled so far, in expulsion order.
  [[nodiscard]] const std::vector<NodeId>& expelled() const noexcept {
    return expelled_;
  }

  /// Nodes departed through churn, in departure order (a rejoining id
  /// appears once per departed incarnation).
  [[nodiscard]] const std::vector<NodeId>& departed() const noexcept {
    return departed_;
  }

  /// Index of a live node within live() — used by samplers for O(1)
  /// exclusion of the caller.
  [[nodiscard]] std::size_t position_of(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    LIFTING_ASSERT(v < position_.size() && position_[v] != kDead,
                   "position_of: node not live");
    return position_[v];
  }

 private:
  static constexpr std::uint32_t kDead = 0xFFFFFFFFU;
  static constexpr std::uint64_t kJoinSalt = 0;
  static constexpr std::uint64_t kLeaveSalt = 1;

  /// Deterministic per-(observer, event) visibility delay in [0, view_lag_]
  /// — a pure hash, so every component (and every rerun) derives the same
  /// divergent views without coordination or storage. Two-stage mix:
  /// (observer, id) occupy disjoint bit fields of the first key; the
  /// bijective splitmix64 output then absorbs (epoch, salt), so no two
  /// coordinates can structurally alias each other (XORing overlapping
  /// shifted fields would let an epoch masquerade as an id).
  [[nodiscard]] Duration view_jitter(NodeId observer, NodeId id,
                                     std::uint32_t epoch,
                                     std::uint64_t salt) const {
    const std::uint64_t pair =
        splitmix64(view_seed_ ^
                   ((static_cast<std::uint64_t>(observer.value()) << 32U) |
                    id.value()));
    const std::uint64_t key =
        pair + ((static_cast<std::uint64_t>(epoch) << 1U) | salt);
    const auto span = static_cast<std::uint64_t>(view_lag_.count()) + 1;
    return Duration{static_cast<Duration::rep>(splitmix64(key) % span)};
  }

  /// Drops limbo entries no observer can still see (older than the lag).
  void prune_limbo(TimePoint now) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < limbo_.size(); ++i) {
      if (limbo_[i].left_at + view_lag_ >= now) limbo_[keep++] = limbo_[i];
    }
    limbo_.resize(keep);
  }

  /// Swap-removes `id` from the live set. Returns false when already gone.
  bool remove(NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= position_.size() || position_[v] == kDead) return false;
    const std::uint32_t pos = position_[v];
    const NodeId last = live_.back();
    live_[pos] = last;
    position_[last.value()] = pos;
    live_.pop_back();
    position_[v] = kDead;
    return true;
  }

  std::vector<NodeId> live_;
  std::vector<std::uint32_t> position_;  // NodeId value -> index in live_
  std::vector<std::uint32_t> epoch_;     // NodeId value -> joins so far
  std::vector<NodeId> expelled_;
  std::vector<NodeId> departed_;
  std::vector<TimePoint> visible_since_;  // join instant per id (view model)
  std::vector<LimboEntry> limbo_;
  std::uint32_t initial_size_{0};
  Duration view_lag_ = Duration::zero();
  std::uint64_t view_seed_ = 0;
};

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_DIRECTORY_HPP

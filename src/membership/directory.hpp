#ifndef LIFTING_MEMBERSHIP_DIRECTORY_HPP
#define LIFTING_MEMBERSHIP_DIRECTORY_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

/// Full-membership directory (paper §2: "we assume that nodes can pick
/// uniformly at random a set of nodes in the system", via full membership or
/// a random peer sampling service).
///
/// The directory also records expulsions: once LiFTinG's managers commit an
/// expulsion, honest nodes neither select the victim as a partner nor accept
/// its traffic. We model the membership layer as shared state with the
/// expulsion applied after a configurable propagation delay (scheduled by
/// the caller); per-node divergent views would only add noise without
/// changing any mechanism under test.

namespace lifting::membership {

class Directory {
 public:
  /// Creates a directory over nodes {0, 1, ..., n-1}, all live.
  /// Node ids are dense, so membership is a flat position table — liveness
  /// checks on the per-message path are a single array read.
  explicit Directory(std::uint32_t n) {
    live_.reserve(n);
    position_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      position_.push_back(i);
      live_.push_back(NodeId{i});
    }
    initial_size_ = n;
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_.size();
  }
  [[nodiscard]] std::uint32_t initial_size() const noexcept {
    return initial_size_;
  }

  [[nodiscard]] bool is_live(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < position_.size() && position_[v] != kDead;
  }

  /// Live nodes, dense, in unspecified order. Stable between mutations.
  [[nodiscard]] const std::vector<NodeId>& live() const noexcept {
    return live_;
  }

  /// Removes a node from the membership (expulsion or churn). Idempotent.
  void expel(NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= position_.size() || position_[v] == kDead) return;
    const std::uint32_t pos = position_[v];
    const NodeId last = live_.back();
    live_[pos] = last;
    position_[last.value()] = pos;
    live_.pop_back();
    position_[v] = kDead;
    expelled_.push_back(id);
  }

  /// Nodes expelled so far, in expulsion order.
  [[nodiscard]] const std::vector<NodeId>& expelled() const noexcept {
    return expelled_;
  }

  /// Index of a live node within live() — used by samplers for O(1)
  /// exclusion of the caller.
  [[nodiscard]] std::size_t position_of(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    LIFTING_ASSERT(v < position_.size() && position_[v] != kDead,
                   "position_of: node not live");
    return position_[v];
  }

 private:
  static constexpr std::uint32_t kDead = 0xFFFFFFFFU;

  std::vector<NodeId> live_;
  std::vector<std::uint32_t> position_;  // NodeId value -> index in live_
  std::vector<NodeId> expelled_;
  std::uint32_t initial_size_{0};
};

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_DIRECTORY_HPP

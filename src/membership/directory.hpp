#ifndef LIFTING_MEMBERSHIP_DIRECTORY_HPP
#define LIFTING_MEMBERSHIP_DIRECTORY_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

/// Full-membership directory (paper §2: "we assume that nodes can pick
/// uniformly at random a set of nodes in the system", via full membership or
/// a random peer sampling service).
///
/// The directory also records expulsions: once LiFTinG's managers commit an
/// expulsion, honest nodes neither select the victim as a partner nor accept
/// its traffic. We model the membership layer as shared state with the
/// expulsion applied after a configurable propagation delay (scheduled by
/// the caller); per-node divergent views would only add noise without
/// changing any mechanism under test.
///
/// Churn support: join()/leave() grow and shrink the membership mid-run.
/// Every id carries an *alive epoch* — a counter bumped on each (re)join —
/// so dense NodeId-indexed tables elsewhere can detect id reuse ((id, epoch)
/// pairs are never ambiguous) even though the Experiment's allocation policy
/// never recycles ids in the first place.

namespace lifting::membership {

class Directory {
 public:
  /// Creates a directory over nodes {0, 1, ..., n-1}, all live.
  /// Node ids are dense, so membership is a flat position table — liveness
  /// checks on the per-message path are a single array read.
  explicit Directory(std::uint32_t n) { reset(n); }

  /// Rewinds to the initial membership over {0, ..., n-1}, all live at
  /// epoch 1, with empty expulsion/departure records. Table capacity is
  /// kept (Experiment::reset).
  void reset(std::uint32_t n) {
    live_.clear();
    position_.clear();
    epoch_.clear();
    expelled_.clear();
    departed_.clear();
    live_.reserve(n);
    position_.reserve(n);
    epoch_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      position_.push_back(i);
      live_.push_back(NodeId{i});
      epoch_.push_back(1);
    }
    initial_size_ = n;
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_.size();
  }
  [[nodiscard]] std::uint32_t initial_size() const noexcept {
    return initial_size_;
  }

  [[nodiscard]] bool is_live(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < position_.size() && position_[v] != kDead;
  }

  /// Live nodes, dense, in unspecified order. Stable between mutations.
  [[nodiscard]] const std::vector<NodeId>& live() const noexcept {
    return live_;
  }

  /// Removes a node by expulsion (LiFTinG indictment). Idempotent.
  void expel(NodeId id) {
    if (remove(id)) expelled_.push_back(id);
  }

  /// Removes a node by churn (leave or detected crash) — a departure, not
  /// an indictment; recorded separately from expulsions. Idempotent.
  void leave(NodeId id) {
    if (remove(id)) departed_.push_back(id);
  }

  /// Adds `id` to the membership — a fresh id (growing the dense id space)
  /// or a returning one. Each (re)join bumps the id's alive epoch.
  void join(NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= position_.size()) {
      position_.resize(v + 1, kDead);
      epoch_.resize(v + 1, 0);
    }
    LIFTING_ASSERT(position_[v] == kDead, "join of a node already live");
    position_[v] = static_cast<std::uint32_t>(live_.size());
    live_.push_back(id);
    ++epoch_[v];
  }

  /// Dense id-space bound: every id ever seen is < id_capacity().
  [[nodiscard]] std::uint32_t id_capacity() const noexcept {
    return static_cast<std::uint32_t>(position_.size());
  }

  /// Alive epoch of `id`: 0 if the id was never a member, otherwise the
  /// number of times it has joined. Keyed tables that must survive id reuse
  /// store (id, epoch) and compare against this.
  [[nodiscard]] std::uint32_t epoch_of(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < epoch_.size() ? epoch_[v] : 0;
  }

  /// Nodes expelled so far, in expulsion order.
  [[nodiscard]] const std::vector<NodeId>& expelled() const noexcept {
    return expelled_;
  }

  /// Nodes departed through churn, in departure order.
  [[nodiscard]] const std::vector<NodeId>& departed() const noexcept {
    return departed_;
  }

  /// Index of a live node within live() — used by samplers for O(1)
  /// exclusion of the caller.
  [[nodiscard]] std::size_t position_of(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    LIFTING_ASSERT(v < position_.size() && position_[v] != kDead,
                   "position_of: node not live");
    return position_[v];
  }

 private:
  static constexpr std::uint32_t kDead = 0xFFFFFFFFU;

  /// Swap-removes `id` from the live set. Returns false when already gone.
  bool remove(NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= position_.size() || position_[v] == kDead) return false;
    const std::uint32_t pos = position_[v];
    const NodeId last = live_.back();
    live_[pos] = last;
    position_[last.value()] = pos;
    live_.pop_back();
    position_[v] = kDead;
    return true;
  }

  std::vector<NodeId> live_;
  std::vector<std::uint32_t> position_;  // NodeId value -> index in live_
  std::vector<std::uint32_t> epoch_;     // NodeId value -> joins so far
  std::vector<NodeId> expelled_;
  std::vector<NodeId> departed_;
  std::uint32_t initial_size_{0};
};

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_DIRECTORY_HPP

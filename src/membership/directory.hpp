#ifndef LIFTING_MEMBERSHIP_DIRECTORY_HPP
#define LIFTING_MEMBERSHIP_DIRECTORY_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

/// Full-membership directory (paper §2: "we assume that nodes can pick
/// uniformly at random a set of nodes in the system", via full membership or
/// a random peer sampling service).
///
/// The directory also records expulsions: once LiFTinG's managers commit an
/// expulsion, honest nodes neither select the victim as a partner nor accept
/// its traffic. We model the membership layer as shared state with the
/// expulsion applied after a configurable propagation delay (scheduled by
/// the caller); per-node divergent views would only add noise without
/// changing any mechanism under test.

namespace lifting::membership {

class Directory {
 public:
  /// Creates a directory over nodes {0, 1, ..., n-1}, all live.
  explicit Directory(std::uint32_t n) {
    live_.reserve(n);
    position_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId id{i};
      position_.emplace(id, live_.size());
      live_.push_back(id);
    }
    initial_size_ = n;
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_.size();
  }
  [[nodiscard]] std::uint32_t initial_size() const noexcept {
    return initial_size_;
  }

  [[nodiscard]] bool is_live(NodeId id) const {
    return position_.find(id) != position_.end();
  }

  /// Live nodes, dense, in unspecified order. Stable between mutations.
  [[nodiscard]] const std::vector<NodeId>& live() const noexcept {
    return live_;
  }

  /// Removes a node from the membership (expulsion or churn). Idempotent.
  void expel(NodeId id) {
    const auto it = position_.find(id);
    if (it == position_.end()) return;
    const std::size_t pos = it->second;
    const NodeId last = live_.back();
    live_[pos] = last;
    position_[last] = pos;
    live_.pop_back();
    position_.erase(it);
    expelled_.push_back(id);
  }

  /// Nodes expelled so far, in expulsion order.
  [[nodiscard]] const std::vector<NodeId>& expelled() const noexcept {
    return expelled_;
  }

  /// Index of a live node within live() — used by samplers for O(1)
  /// exclusion of the caller.
  [[nodiscard]] std::size_t position_of(NodeId id) const {
    const auto it = position_.find(id);
    LIFTING_ASSERT(it != position_.end(), "position_of: node not live");
    return it->second;
  }

 private:
  std::vector<NodeId> live_;
  std::unordered_map<NodeId, std::size_t> position_;
  std::vector<NodeId> expelled_;
  std::uint32_t initial_size_{0};
};

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_DIRECTORY_HPP

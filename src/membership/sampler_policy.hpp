#ifndef LIFTING_MEMBERSHIP_SAMPLER_POLICY_HPP
#define LIFTING_MEMBERSHIP_SAMPLER_POLICY_HPP

#include <cstdint>

#include "common/assert.hpp"

/// Sampler hardening policy for the RPS (DESIGN.md §12). The legacy
/// variant is the bit-identical default: with it, RpsNetwork's rng draws
/// and view evolution are byte-for-byte what they were before the policy
/// existed (fixed-seed goldens are NOT re-pinned). The hardened variant
/// models the defenses of Byzantine-resilient peer sampling:
///
///  - bounded push acceptance (`max_push_accept`): per exchange, at most
///    this many *new* ids beyond replacement of the entries the exchange
///    handed away are admitted. Solicited shuffles refill freely; an
///    unsolicited push (nothing handed away) plants at most this many ids,
///    capping how fast a directed push flood can displace honest entries;
///  - responder rate limiting (`max_responses_per_round`): a node takes
///    part in at most this many exchanges per round as the contacted side,
///    so directed-push floods (hub capture) mostly bounce;
///  - age-based eviction (`max_entry_age`): entries older than the bound
///    are dropped before every exchange — stale links cannot be farmed;
///  - modeled attested exchange (`attested`, RAPTEE-style): entries whose
///    ground-truth forged marker is set fail attestation and are rejected
///    on merge. The marker models what a TEE-backed sampler proves
///    cryptographically; here it is set only by the membership attacks
///    themselves (adversary/membership.hpp), never by honest code.

namespace lifting::membership {

struct SamplerPolicy {
  enum class Variant : std::uint8_t { kLegacy, kHardened };

  Variant variant = Variant::kLegacy;
  /// Hardened: new ids admitted per incoming exchange beyond replacement
  /// of the entries the exchange handed away (push-flood bound).
  std::uint32_t max_push_accept = 4;
  /// Hardened: exchanges a node accepts per round as the contacted side.
  std::uint32_t max_responses_per_round = 3;
  /// Hardened: entries older than this are evicted before exchanging.
  std::uint32_t max_entry_age = 24;
  /// Hardened: reject entries carrying the forged marker (modeled
  /// RAPTEE-style attestation).
  bool attested = true;

  [[nodiscard]] bool hardened() const noexcept {
    return variant == Variant::kHardened;
  }
  /// Attestation is only meaningful under the hardened variant.
  [[nodiscard]] bool attestation_active() const noexcept {
    return hardened() && attested;
  }

  void validate() const {
    if (!hardened()) return;
    require(max_push_accept >= 1, "hardened sampler needs max_push_accept >= 1");
    require(max_responses_per_round >= 1,
            "hardened sampler needs max_responses_per_round >= 1");
    require(max_entry_age >= 2, "hardened sampler needs max_entry_age >= 2");
  }

  /// The hardened preset the benches and the sweep arm (all defenses on).
  [[nodiscard]] static SamplerPolicy hardened_defaults() {
    SamplerPolicy p;
    p.variant = Variant::kHardened;
    return p;
  }
};

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_SAMPLER_POLICY_HPP

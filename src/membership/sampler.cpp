#include "membership/sampler.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace lifting::membership {

std::vector<NodeId> sample_uniform(Pcg32& rng, const Directory& directory,
                                   NodeId self, std::size_t k) {
  std::vector<std::uint32_t> index_scratch;
  std::vector<NodeId> partners;
  sample_uniform_into(rng, directory, self, k, index_scratch, partners);
  return partners;
}

void sample_uniform_into(Pcg32& rng, const Directory& directory, NodeId self,
                         std::size_t k,
                         std::vector<std::uint32_t>& index_scratch,
                         std::vector<NodeId>& out) {
  out.clear();
  const auto& live = directory.live();
  const bool self_live = directory.is_live(self);
  const std::size_t candidates = live.size() - (self_live ? 1 : 0);
  const std::size_t take = std::min(k, candidates);
  if (take == 0) return;

  // Sample indices over the candidate space [0, candidates) and shift
  // indices at/after the caller's slot so `self` is excluded in O(1).
  const std::size_t self_pos =
      self_live ? directory.position_of(self) : live.size();
  sample_k_distinct_into(rng, static_cast<std::uint32_t>(candidates),
                         static_cast<std::uint32_t>(take), index_scratch);
  out.reserve(take);
  for (const auto raw : index_scratch) {
    const std::size_t idx = (raw >= self_pos) ? raw + 1 : raw;
    out.push_back(live[idx]);
  }
}

std::vector<NodeId> sample_view(Pcg32& rng, const Directory& directory,
                                NodeId self, std::size_t k, TimePoint now) {
  std::vector<std::uint32_t> index_scratch;
  std::vector<NodeId> partners;
  sample_view_into(rng, directory, self, k, now, index_scratch, partners);
  return partners;
}

void sample_view_into(Pcg32& rng, const Directory& directory, NodeId self,
                      std::size_t k, TimePoint now,
                      std::vector<std::uint32_t>& index_scratch,
                      std::vector<NodeId>& partners) {
  if (directory.view_lag() == Duration::zero()) {
    sample_uniform_into(rng, directory, self, k, index_scratch, partners);
    return;
  }
  const auto& live = directory.live();
  const auto& limbo = directory.limbo();
  const auto pool =
      static_cast<std::uint32_t>(live.size() + limbo.size());
  partners.clear();
  if (pool == 0) return;
  partners.reserve(k);
  // Rejection sampling over live ∪ limbo: the candidate pool mixes nodes
  // `self` knows about with departures it has not yet heard of; `sees`
  // filters both directions of divergence. Bounded attempts keep the loop
  // finite when most of the pool is invisible to this observer.
  const std::size_t max_attempts = 64 * std::max<std::size_t>(k, 1);
  std::size_t attempts = 0;
  while (partners.size() < k && attempts++ < max_attempts) {
    const auto idx = rng.below(pool);
    NodeId id;
    if (idx < live.size()) {
      id = live[idx];
    } else {
      const auto& entry = limbo[idx - live.size()];
      // A stale limbo entry (the id rejoined since) would double-count the
      // live incarnation; skip it.
      if (entry.epoch != directory.epoch_of(entry.id)) continue;
      id = entry.id;
    }
    if (id == self) continue;
    if (std::find(partners.begin(), partners.end(), id) != partners.end()) {
      continue;
    }
    if (!directory.sees(self, id, now)) continue;
    partners.push_back(id);
  }
}

std::vector<NodeId> sample_biased(Pcg32& rng, const Directory& directory,
                                  NodeId self, std::size_t k,
                                  const std::vector<NodeId>& coalition,
                                  double p_m) {
  // Live coalition members other than self.
  std::vector<NodeId> live_coalition;
  live_coalition.reserve(coalition.size());
  for (const auto id : coalition) {
    if (id != self && directory.is_live(id)) live_coalition.push_back(id);
  }
  const std::unordered_set<NodeId> coalition_set(live_coalition.begin(),
                                                 live_coalition.end());

  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> partners;
  partners.reserve(k);
  std::size_t coalition_used = 0;

  const auto try_add = [&](NodeId id) {
    if (id == self || !chosen.insert(id).second) return false;
    partners.push_back(id);
    if (coalition_set.contains(id)) ++coalition_used;
    return true;
  };

  // Each slot tosses the bias coin; within the chosen class the pick is
  // uniform — the entropy-maximizing strategy for the freerider (§6.3.2).
  // Rejection bounds keep the loop finite when a class is nearly exhausted.
  const std::size_t max_attempts = 64 * std::max<std::size_t>(k, 1);
  std::size_t attempts = 0;
  while (partners.size() < k && attempts++ < max_attempts) {
    const bool coalition_available = coalition_used < live_coalition.size();
    if (coalition_available && rng.bernoulli(p_m)) {
      const auto idx =
          rng.below(static_cast<std::uint32_t>(live_coalition.size()));
      try_add(live_coalition[idx]);
    } else {
      const auto uniform = sample_uniform(rng, directory, self, 1);
      if (uniform.empty()) break;
      if (!coalition_set.contains(uniform.front())) {
        try_add(uniform.front());
      }
    }
  }
  // Fill any remaining slots with uniform picks regardless of class
  // (coalition exhausted or repeated rejections); stop when the membership
  // itself cannot supply more distinct partners.
  attempts = 0;
  while (partners.size() < k &&
         chosen.size() < directory.live_count() - (directory.is_live(self) ? 1 : 0) &&
         attempts++ < max_attempts) {
    const auto uniform = sample_uniform(rng, directory, self, 1);
    if (uniform.empty()) break;
    try_add(uniform.front());
  }
  return partners;
}

}  // namespace lifting::membership

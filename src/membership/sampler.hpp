#ifndef LIFTING_MEMBERSHIP_SAMPLER_HPP
#define LIFTING_MEMBERSHIP_SAMPLER_HPP

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "membership/directory.hpp"

/// Partner selection policies.
///
/// Honest nodes select gossip partners uniformly at random (§3). Colluding
/// freeriders bias the selection toward their coalition with probability
/// p_m (§4.1 attack (iii), analyzed in §6.3.2) — the attack the entropy
/// audit is designed to catch.

namespace lifting::membership {

/// Picks `k` distinct live partners uniformly at random, excluding `self`.
/// If fewer than k candidates exist, returns all of them (shuffled).
[[nodiscard]] std::vector<NodeId> sample_uniform(Pcg32& rng,
                                                 const Directory& directory,
                                                 NodeId self, std::size_t k);

/// Biased selection used by colluding freeriders: each slot is filled with
/// a (uniform) coalition member with probability `p_m`, otherwise with a
/// uniform non-coalition node. Partners are distinct; when the coalition is
/// exhausted the remaining slots fall back to honest nodes (a coalition of
/// size m' < k cannot fill every slot — paper §6.3.2 requires n_h·f >> m').
[[nodiscard]] std::vector<NodeId> sample_biased(
    Pcg32& rng, const Directory& directory, NodeId self, std::size_t k,
    const std::vector<NodeId>& coalition, double p_m);

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_SAMPLER_HPP

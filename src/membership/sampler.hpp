#ifndef LIFTING_MEMBERSHIP_SAMPLER_HPP
#define LIFTING_MEMBERSHIP_SAMPLER_HPP

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "membership/directory.hpp"

/// Partner selection policies.
///
/// Honest nodes select gossip partners uniformly at random (§3). Colluding
/// freeriders bias the selection toward their coalition with probability
/// p_m (§4.1 attack (iii), analyzed in §6.3.2) — the attack the entropy
/// audit is designed to catch.

namespace lifting::membership {

/// Picks `k` distinct live partners uniformly at random, excluding `self`.
/// If fewer than k candidates exist, returns all of them (shuffled).
[[nodiscard]] std::vector<NodeId> sample_uniform(Pcg32& rng,
                                                 const Directory& directory,
                                                 NodeId self, std::size_t k);

/// Allocation-free sample_uniform: fills `out` (cleared; capacity reused),
/// using `index_scratch` for the k-subset draw. Identical rng sequence and
/// result as sample_uniform — the per-period partner pick is the gossip
/// loop's hottest sampler, and with retained capacity it never touches the
/// allocator in steady state.
void sample_uniform_into(Pcg32& rng, const Directory& directory, NodeId self,
                         std::size_t k,
                         std::vector<std::uint32_t>& index_scratch,
                         std::vector<NodeId>& out);

/// View-aware uniform selection (DESIGN.md §7): picks up to `k` distinct
/// partners uniformly from what `self` currently *believes* the membership
/// is — joins it has not yet learned of are excluded, recent departures it
/// has not yet learned of are still included (the directory's limbo list).
/// With the view model off (view_lag() == 0) this is sample_uniform down to
/// the exact rng draw sequence, so fixed-seed goldens are unaffected.
[[nodiscard]] std::vector<NodeId> sample_view(Pcg32& rng,
                                              const Directory& directory,
                                              NodeId self, std::size_t k,
                                              TimePoint now);

/// Allocation-free sample_view (same contract as sample_uniform_into).
void sample_view_into(Pcg32& rng, const Directory& directory, NodeId self,
                      std::size_t k, TimePoint now,
                      std::vector<std::uint32_t>& index_scratch,
                      std::vector<NodeId>& out);

/// Biased selection used by colluding freeriders: each slot is filled with
/// a (uniform) coalition member with probability `p_m`, otherwise with a
/// uniform non-coalition node. Partners are distinct; when the coalition is
/// exhausted the remaining slots fall back to honest nodes (a coalition of
/// size m' < k cannot fill every slot — paper §6.3.2 requires n_h·f >> m').
[[nodiscard]] std::vector<NodeId> sample_biased(
    Pcg32& rng, const Directory& directory, NodeId self, std::size_t k,
    const std::vector<NodeId>& coalition, double p_m);

}  // namespace lifting::membership

#endif  // LIFTING_MEMBERSHIP_SAMPLER_HPP

#ifndef LIFTING_FAULTS_INJECTOR_HPP
#define LIFTING_FAULTS_INJECTOR_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "faults/plan.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

/// Deterministic fault injection at the transport seam (DESIGN.md §11).
///
/// FaultInjector wraps any net::Transport — the simulator backend inside
/// runtime::Experiment, the UDP backend inside runtime::NodeHost — and
/// applies a FaultPlan to every datagram-channel send. The reliable
/// channel (sim::Channel::kReliable, the modeled-TCP audit stream) passes
/// through untouched: TCP retransmits below our abstraction, so faults on
/// it would model the wrong layer. The reliable-UDP audit mode sends real
/// datagrams and therefore does contend with faults — which is the point.
///
/// Determinism: all randomness comes from per-sender Pcg32 streams derived
/// as derive_rng(seed, 0xF00000000 + sender) — disjoint from every other
/// stream base the runtime uses and independent of thread count or the
/// interleaving of other senders. Partition windows are rng-free time/id
/// arithmetic. An empty plan constructs no generator and draws nothing, so
/// fixed-seed goldens are byte-identical with the injector in place.

namespace lifting::obs {
class Recorder;
}  // namespace lifting::obs

namespace lifting::faults {

class FaultInjector final : public net::Transport {
 public:
  struct Stats {
    std::uint64_t dropped_burst = 0;      // Gilbert–Elliott loss drops
    std::uint64_t dropped_partition = 0;  // partition-window drops
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;    // delay spikes
    std::uint64_t reordered = 0;  // reorder holds
    [[nodiscard]] std::uint64_t dropped() const noexcept {
      return dropped_burst + dropped_partition;
    }
  };

  FaultInjector(net::Transport& inner, sim::Simulator& sim,
                std::uint64_t seed)
      : inner_(inner), sim_(sim), seed_(seed) {}

  /// Installs a plan (validated). Safe mid-run: the timeline's kSetFaults
  /// event lands here. Sender chain states persist across plan swaps so a
  /// heal (empty plan) followed by a re-fault resumes the same streams.
  void set_plan(FaultPlan plan) {
    plan.validate();
    plan_ = std::move(plan);
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Forgets per-sender chain state and counters (Experiment::reset path);
  /// the plan itself is re-installed by the caller from the new config.
  void reset(std::uint64_t seed) {
    seed_ = seed;
    senders_.clear();
    stats_ = Stats{};
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Arms fault tracing (DESIGN.md §13); null disarms.
  void set_trace(obs::Recorder* trace) noexcept { trace_ = trace; }

  void send(NodeId from, NodeId to, sim::Channel channel, std::size_t bytes,
            gossip::Message message) override;

 private:
  struct SenderState {
    Pcg32 rng;
    bool bad = false;  // Gilbert–Elliott chain state
  };
  SenderState& state_for(NodeId from);

  net::Transport& inner_;
  sim::Simulator& sim_;
  std::uint64_t seed_;
  FaultPlan plan_;
  // Dense by sender id; null until the sender first sends under a
  // non-empty plan, so empty-plan runs allocate nothing per node.
  std::vector<std::unique_ptr<SenderState>> senders_;
  Stats stats_;
  obs::Recorder* trace_ = nullptr;
};

}  // namespace lifting::faults

#endif  // LIFTING_FAULTS_INJECTOR_HPP

#ifndef LIFTING_FAULTS_PLAN_HPP
#define LIFTING_FAULTS_PLAN_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

/// Fault-injection plans (DESIGN.md §11).
///
/// A FaultPlan is pure data describing network-level misbehavior to impose
/// at the net::Transport seam: Gilbert–Elliott bursty loss, delay spikes,
/// datagram duplication and reordering, and asymmetric partition windows.
/// The same plan drives the simulator (via FaultInjector owned by
/// runtime::Experiment) and real loopback processes (via the injector each
/// lifting_node wraps around its UdpTransport), so robustness scenarios
/// measured in simulation are reproducible on the wire.
///
/// A default-constructed plan is empty(): the injector is a pure
/// pass-through that constructs no rng and draws nothing, which is what
/// keeps the fixed-seed determinism goldens byte-identical.

namespace lifting::faults {

/// One asymmetric partition window: during [start, end), traffic crossing
/// the island boundary is dropped in the configured direction(s). The
/// island is the id-class `node % modulus == remainder` — membership is
/// pure arithmetic, so every process (and every thread of a sweep) agrees
/// on it without coordination.
struct PartitionWindow {
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  std::uint32_t modulus = 0;  // 0 disables the window
  std::uint32_t remainder = 0;
  bool drop_island_to_main = true;
  bool drop_main_to_island = true;

  [[nodiscard]] bool contains(NodeId id) const noexcept {
    return modulus != 0 && id.value() % modulus == remainder;
  }
  [[nodiscard]] bool active_at(Duration since_epoch) const noexcept {
    return modulus != 0 && since_epoch >= start && since_epoch < end;
  }
};

/// Deterministic description of the faults to inject. Probabilities are
/// per-datagram; the Gilbert–Elliott chain advances one step per datagram
/// a sender submits (state is per-sender, so concurrent sweeps and
/// separate wire processes never share a chain).
struct FaultPlan {
  // ---- Gilbert–Elliott bursty loss (replaces "independent Bernoulli
  // only"): two states, good and bad, each with its own loss rate.
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.0;
  double loss_good = 0.0;
  double loss_bad = 0.0;

  // ---- delay spikes: with probability `delay_spike_probability` a
  // datagram is held for an extra uniform [min, max] before submission.
  double delay_spike_probability = 0.0;
  Duration delay_spike_min = Duration::zero();
  Duration delay_spike_max = Duration::zero();

  // ---- duplication / reordering
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  /// A reordered datagram is held for exactly this long, letting later
  /// sends overtake it.
  Duration reorder_delay = Duration::zero();

  // ---- partition/heal windows
  std::vector<PartitionWindow> partitions;

  /// True when no fault can ever trigger — the injector then never
  /// constructs a generator or draws a number (the determinism contract).
  [[nodiscard]] bool empty() const noexcept {
    return loss_good <= 0.0 && loss_bad <= 0.0 &&
           delay_spike_probability <= 0.0 && duplicate_probability <= 0.0 &&
           reorder_probability <= 0.0 && partitions.empty();
  }

  void validate() const {
    auto prob = [](double p, const char* what) {
      require(p >= 0.0 && p <= 1.0, what);
    };
    prob(p_good_to_bad, "faults: p_good_to_bad must be a probability");
    prob(p_bad_to_good, "faults: p_bad_to_good must be a probability");
    prob(loss_good, "faults: loss_good must be a probability");
    prob(loss_bad, "faults: loss_bad must be a probability");
    prob(delay_spike_probability,
         "faults: delay_spike_probability must be a probability");
    prob(duplicate_probability,
         "faults: duplicate_probability must be a probability");
    prob(reorder_probability,
         "faults: reorder_probability must be a probability");
    require(delay_spike_min >= Duration::zero() &&
                delay_spike_max >= delay_spike_min,
            "faults: delay spike range must satisfy 0 <= min <= max");
    require(reorder_delay >= Duration::zero(),
            "faults: reorder_delay must be non-negative");
    for (const auto& w : partitions) {
      require(w.modulus == 0 || w.remainder < w.modulus,
              "faults: partition remainder must be < modulus");
      require(w.end >= w.start,
              "faults: partition window must satisfy start <= end");
    }
  }
};

}  // namespace lifting::faults

#endif  // LIFTING_FAULTS_PLAN_HPP

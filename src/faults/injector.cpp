#include "faults/injector.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace lifting::faults {

namespace {
/// Stream base for per-sender fault generators; disjoint from the runtime
/// bases (0xA/0xB/0xC/0xD/0xE58, 0x9000000000+i) by construction.
constexpr std::uint64_t kFaultStreamBase = 0xF00000000ULL;
}  // namespace

FaultInjector::SenderState& FaultInjector::state_for(NodeId from) {
  const auto v = static_cast<std::size_t>(from.value());
  if (v >= senders_.size()) senders_.resize(v + 1);
  if (!senders_[v]) {
    senders_[v] = std::make_unique<SenderState>(
        SenderState{derive_rng(seed_, kFaultStreamBase + from.value()), false});
  }
  return *senders_[v];
}

void FaultInjector::send(NodeId from, NodeId to, sim::Channel channel,
                         std::size_t bytes, gossip::Message message) {
  // The modeled-TCP channel retransmits below this seam; only datagrams
  // are at the mercy of the plan. An empty plan is a pure pass-through —
  // no state, no draws.
  if (channel == sim::Channel::kReliable || plan_.empty()) {
    inner_.send(from, to, channel, bytes, std::move(message));
    return;
  }

  // Partition windows first: rng-free, so a fully partitioned pair costs
  // no draws and healing restores the exact per-sender stream position.
  const Duration now = sim_.now().time_since_epoch();
  for (const auto& w : plan_.partitions) {
    if (!w.active_at(now)) continue;
    const bool from_island = w.contains(from);
    const bool to_island = w.contains(to);
    if (from_island == to_island) continue;
    if ((from_island && w.drop_island_to_main) ||
        (!from_island && w.drop_main_to_island)) {
      ++stats_.dropped_partition;
      if (trace_ != nullptr) {
        trace_->record(obs::EventKind::kFaultDrop, from, to, 0, 0.0, 2,
                       static_cast<std::uint16_t>(message.index()));
      }
      return;
    }
  }

  SenderState& st = state_for(from);

  // Gilbert–Elliott: advance the chain one step, then apply the current
  // state's loss rate. Draw order is fixed (transition, then loss);
  // Pcg32::bernoulli consumes nothing for p <= 0, so disabled dimensions
  // stay draw-free.
  if (st.bad) {
    if (st.rng.bernoulli(plan_.p_bad_to_good)) st.bad = false;
  } else {
    if (st.rng.bernoulli(plan_.p_good_to_bad)) st.bad = true;
  }
  if (st.rng.bernoulli(st.bad ? plan_.loss_bad : plan_.loss_good)) {
    ++stats_.dropped_burst;
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kFaultDrop, from, to, 0, 0.0, 1,
                     static_cast<std::uint16_t>(message.index()));
    }
    return;
  }

  // Duplication: an extra copy is submitted immediately; the original
  // continues through the delay pipeline below.
  if (st.rng.bernoulli(plan_.duplicate_probability)) {
    ++stats_.duplicated;
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kFaultDuplicate, from, to, 0, 0.0, 0,
                     static_cast<std::uint16_t>(message.index()));
    }
    inner_.send(from, to, channel, bytes, message);
  }

  // Delay spike, else reorder hold (a held datagram is overtaken by later
  // sends — real reordering, not a shuffle).
  Duration extra = Duration::zero();
  if (st.rng.bernoulli(plan_.delay_spike_probability)) {
    const auto range = plan_.delay_spike_max - plan_.delay_spike_min;
    extra = plan_.delay_spike_min +
            Duration{static_cast<Duration::rep>(
                st.rng.uniform() * static_cast<double>(range.count()))};
    ++stats_.delayed;
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kFaultDelay, from, to,
                     static_cast<std::uint64_t>(extra.count()), 0.0, 0,
                     static_cast<std::uint16_t>(message.index()));
    }
  } else if (st.rng.bernoulli(plan_.reorder_probability)) {
    extra = plan_.reorder_delay;
    ++stats_.reordered;
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kFaultReorder, from, to,
                     static_cast<std::uint64_t>(extra.count()), 0.0, 0,
                     static_cast<std::uint16_t>(message.index()));
    }
  }

  if (extra > Duration::zero()) {
    sim_.schedule_after(extra, [this, from, to, channel, bytes,
                                m = std::move(message)]() mutable {
      inner_.send(from, to, channel, bytes, std::move(m));
    });
    return;
  }
  inner_.send(from, to, channel, bytes, std::move(message));
}

}  // namespace lifting::faults

#ifndef LIFTING_COMMON_SMALL_VECTOR_HPP
#define LIFTING_COMMON_SMALL_VECTOR_HPP

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

/// A vector with inline storage for small element counts.
///
/// Gossip messages carry chunk-id sets of size ~|P| or ~|R| (single digits
/// to tens); storing them in std::vector makes every propose/request/ack a
/// heap allocation on both the send and the (pooled) delivery path. With
/// inline capacity sized to the common case, steady-state rounds build and
/// move these lists without touching the allocator; oversized lists spill
/// to the heap transparently.
///
/// Restricted to trivially copyable element types (ids, PODs) so moves and
/// growth are plain memcpy — exactly the payload shapes the wire messages
/// use.

namespace lifting {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is specialized for trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename InputIt>
    requires(!std::is_integral_v<InputIt>)
  SmallVector(InputIt first, InputIt last) {
    assign(first, last);
  }

  explicit SmallVector(std::size_t count, const T& value = T{}) {
    resize(count, value);
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { steal(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage();
      assign(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal(other);
    }
    return *this;
  }

  ~SmallVector() { clear_storage(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      const T copy = value;  // `value` may alias an element being grown away
      grow(size_ + 1);
      data_[size_++] = copy;
      return;
    }
    data_[size_++] = value;
  }

  void pop_back() noexcept {
    LIFTING_ASSERT(size_ > 0, "pop_back on empty SmallVector");
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void resize(std::size_t n, const T& value = T{}) {
    if (n > capacity_) {
      const T copy = value;  // `value` may alias an element being grown away
      grow(n);
      for (std::size_t i = size_; i < n; ++i) data_[i] = copy;
      size_ = n;
      return;
    }
    for (std::size_t i = size_; i < n; ++i) data_[i] = value;
    size_ = n;
  }

  iterator erase(const_iterator first, const_iterator last) {
    auto* f = const_cast<iterator>(first);
    auto* l = const_cast<iterator>(last);
    if (f != l) {
      std::memmove(f, l, static_cast<std::size_t>(end() - l) * sizeof(T));
      size_ -= static_cast<std::size_t>(l - f);
    }
    return f;
  }

  iterator insert(const_iterator pos, const T& value) {
    return insert(pos, &value, &value + 1);
  }

  /// Range insert. The source range must not alias this vector's storage
  /// (growth would invalidate it) — all in-tree callers insert from a
  /// different container. Multi-pass iterators only: the range is measured
  /// and then copied.
  template <std::forward_iterator InputIt>
  iterator insert(const_iterator pos, InputIt first, InputIt last) {
    const std::size_t offset = static_cast<std::size_t>(pos - begin());
    const std::size_t count = static_cast<std::size_t>(std::distance(first, last));
    if (size_ + count > capacity_) grow(size_ + count);
    T* p = data_ + offset;
    std::memmove(p + count, p, (size_ - offset) * sizeof(T));
    std::copy(first, last, p);
    size_ += count;
    return p;
  }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    insert(end(), first, last);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow(std::size_t needed) {
    std::size_t new_cap = capacity_ * 2;
    if (new_cap < needed) new_cap = needed;
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_cap;
  }

  void clear_storage() noexcept {
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void steal(SmallVector& other) noexcept {
    if (other.data_ == other.inline_data()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  [[nodiscard]] T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_));
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace lifting

#endif  // LIFTING_COMMON_SMALL_VECTOR_HPP

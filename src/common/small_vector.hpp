#ifndef LIFTING_COMMON_SMALL_VECTOR_HPP
#define LIFTING_COMMON_SMALL_VECTOR_HPP

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

/// A vector with inline storage for small element counts.
///
/// Gossip messages carry chunk-id sets of size ~|P| or ~|R| (single digits
/// to tens); storing them in std::vector makes every propose/request/ack a
/// heap allocation on both the send and the (pooled) delivery path. With
/// inline capacity sized to the common case, steady-state rounds build and
/// move these lists without touching the allocator; oversized lists spill
/// to the heap transparently.
///
/// Restricted to trivially copyable element types (ids, PODs) so moves and
/// growth are plain memcpy — exactly the payload shapes the wire messages
/// use.
///
/// Spill buffers are recycled through a thread-local size-class cache
/// (SpillCache below): a list that outgrows its inline capacity in one
/// period hands its heap block back when it dies, and the next oversized
/// list takes it over — so steady-state rounds are allocation-free even
/// for the occasional spilled list, not just for the inline common case
/// (the per-period zero-allocation invariant bench_sweep_scaling asserts).

namespace lifting {

namespace detail {

/// Thread-local recycler for SmallVector spill blocks. Blocks are
/// power-of-two sized (64 B .. 64 KiB; larger ones bypass the cache) and
/// shared across element types — a freed propose list can come back as a
/// request list. Per-class population is capped so a one-off burst cannot
/// hoard memory forever. Thread-local by design: experiments on parallel
/// runner workers never contend or share blocks.
class SpillCache {
 public:
  static constexpr std::size_t kMinBytes = 64;
  static constexpr std::size_t kMaxBytes = 64 * 1024;
  /// Cached bytes per class are capped, so a one-off burst can hoard at
  /// most kClasses * kMaxClassBytes per thread before blocks flow back to
  /// the allocator.
  static constexpr std::size_t kMaxClassBytes = 8 * 1024 * 1024;

  /// Smallest cacheable power-of-two block covering `bytes`.
  [[nodiscard]] static std::size_t block_bytes(std::size_t bytes) noexcept {
    std::size_t b = kMinBytes;
    while (b < bytes) b <<= 1;
    return b;
  }

  /// A recycled block of exactly block_bytes(bytes), or nullptr.
  [[nodiscard]] static void* take(std::size_t bytes) noexcept {
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses) return nullptr;
    auto& list = lists()[cls];
    if (list.empty()) return nullptr;
    void* p = list.back();
    list.pop_back();
    return p;
  }

  /// Offers a block back; false means the caller must operator delete it.
  /// The freelist itself grows amortized (and only to a new high-water
  /// population) — once a workload's peak block count has been seen, puts
  /// are allocation-free.
  [[nodiscard]] static bool put(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses) return false;
    auto& list = lists()[cls];
    if ((list.size() + 1) * (kMinBytes << cls) > kMaxClassBytes) return false;
    try {
      list.push_back(p);
    } catch (...) {
      return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kClasses = 11;  // 64 << 10 == 64 KiB

  [[nodiscard]] static std::size_t class_of(std::size_t bytes) noexcept {
    std::size_t cls = 0;
    std::size_t b = kMinBytes;
    while (b < bytes) {
      b <<= 1;
      ++cls;
    }
    return cls;
  }

  struct Store {
    std::vector<void*> lists[kClasses];
    ~Store() {
      for (auto& list : lists) {
        for (void* p : list) ::operator delete(p);
      }
    }
  };
  [[nodiscard]] static std::vector<void*>* lists() {
    thread_local Store store;
    return store.lists;
  }
};

}  // namespace detail

/// std::allocator drop-in that routes cacheable sizes through the
/// SpillCache. The per-node bookkeeping containers (history rings, flat
/// verifier tables, delivery logs, engine scratch) use it via
/// RecycledVector so their growth reallocations recycle blocks freed by
/// earlier growth — together with SmallVector's spilled payloads, every
/// steady-state byte of a warmed deployment comes out of the thread's
/// cache, never the system allocator (the zero-allocation window
/// bench_sweep_scaling asserts). Blocks above SpillCache::kMaxBytes pass
/// straight through, so million-node arrays cost exact bytes, not
/// next-power-of-two bytes.
template <typename T>
struct RecycledAllocator {
  using value_type = T;

  RecycledAllocator() noexcept = default;
  template <typename U>
  RecycledAllocator(const RecycledAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes <= detail::SpillCache::kMaxBytes) {
      if (void* p = detail::SpillCache::take(
              detail::SpillCache::block_bytes(bytes))) {
        return static_cast<T*>(p);
      }
      return static_cast<T*>(
          ::operator new(detail::SpillCache::block_bytes(bytes)));
    }
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    const std::size_t block = bytes <= detail::SpillCache::kMaxBytes
                                  ? detail::SpillCache::block_bytes(bytes)
                                  : bytes;
    if (!detail::SpillCache::put(p, block)) ::operator delete(p);
  }

  template <typename U>
  friend bool operator==(const RecycledAllocator&,
                         const RecycledAllocator<U>&) noexcept {
    return true;
  }
};

/// std::vector on the spill-block recycler — the default storage for
/// per-node bookkeeping that grows at runtime.
template <typename T>
using RecycledVector = std::vector<T, RecycledAllocator<T>>;

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is specialized for trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename InputIt>
    requires(!std::is_integral_v<InputIt>)
  SmallVector(InputIt first, InputIt last) {
    assign(first, last);
  }

  explicit SmallVector(std::size_t count, const T& value = T{}) {
    resize(count, value);
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { steal(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage();
      assign(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal(other);
    }
    return *this;
  }

  ~SmallVector() { clear_storage(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      const T copy = value;  // `value` may alias an element being grown away
      grow(size_ + 1);
      data_[size_++] = copy;
      return;
    }
    data_[size_++] = value;
  }

  void pop_back() noexcept {
    LIFTING_ASSERT(size_ > 0, "pop_back on empty SmallVector");
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void resize(std::size_t n, const T& value = T{}) {
    if (n > capacity_) {
      const T copy = value;  // `value` may alias an element being grown away
      grow(n);
      for (std::size_t i = size_; i < n; ++i) data_[i] = copy;
      size_ = n;
      return;
    }
    for (std::size_t i = size_; i < n; ++i) data_[i] = value;
    size_ = n;
  }

  iterator erase(const_iterator first, const_iterator last) {
    auto* f = const_cast<iterator>(first);
    auto* l = const_cast<iterator>(last);
    if (f != l) {
      std::memmove(f, l, static_cast<std::size_t>(end() - l) * sizeof(T));
      size_ -= static_cast<std::size_t>(l - f);
    }
    return f;
  }

  iterator insert(const_iterator pos, const T& value) {
    return insert(pos, &value, &value + 1);
  }

  /// Range insert. The source range must not alias this vector's storage
  /// (growth would invalidate it) — all in-tree callers insert from a
  /// different container. Multi-pass iterators only: the range is measured
  /// and then copied.
  template <std::forward_iterator InputIt>
  iterator insert(const_iterator pos, InputIt first, InputIt last) {
    const std::size_t offset = static_cast<std::size_t>(pos - begin());
    const std::size_t count = static_cast<std::size_t>(std::distance(first, last));
    if (size_ + count > capacity_) grow(size_ + count);
    T* p = data_ + offset;
    std::memmove(p + count, p, (size_ - offset) * sizeof(T));
    std::copy(first, last, p);
    size_ += count;
    return p;
  }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    insert(end(), first, last);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow(std::size_t needed) {
    std::size_t new_cap = capacity_ * 2;
    if (new_cap < needed) new_cap = needed;
    std::size_t bytes = new_cap * sizeof(T);
    if (bytes <= detail::SpillCache::kMaxBytes) {
      // Round the request up to the cache's block size and claim the whole
      // block as capacity. new_cap >= 2 here, so recomputing
      // block_bytes(capacity_ * sizeof(T)) at release time recovers the
      // same class (the floor division below loses less than half a block).
      bytes = detail::SpillCache::block_bytes(bytes);
      new_cap = bytes / sizeof(T);
    }
    T* heap = static_cast<T*>(detail::SpillCache::take(bytes));
    if (heap == nullptr) heap = static_cast<T*>(::operator new(bytes));
    std::memcpy(heap, data_, size_ * sizeof(T));
    release_heap();
    data_ = heap;
    capacity_ = new_cap;
  }

  /// Returns a spilled buffer to the cache (or the allocator). No-op for
  /// inline storage.
  void release_heap() noexcept {
    if (data_ == inline_data()) return;
    const std::size_t bytes = capacity_ * sizeof(T);
    const std::size_t block = bytes <= detail::SpillCache::kMaxBytes
                                  ? detail::SpillCache::block_bytes(bytes)
                                  : bytes;
    if (!detail::SpillCache::put(data_, block)) ::operator delete(data_);
  }

  void clear_storage() noexcept {
    release_heap();
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void steal(SmallVector& other) noexcept {
    if (other.data_ == other.inline_data()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  [[nodiscard]] T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_));
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace lifting

#endif  // LIFTING_COMMON_SMALL_VECTOR_HPP

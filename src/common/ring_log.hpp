#ifndef LIFTING_COMMON_RING_LOG_HPP
#define LIFTING_COMMON_RING_LOG_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/small_vector.hpp"

/// A flat circular log: push at the back, prune from the front, O(1) both.
///
/// This is the storage behind the per-node accountability histories
/// (src/lifting/history.hpp) and the engine's sent-proposal window. Those
/// logs hold a sliding window of the last n_h periods, so a deque is the
/// obvious shape — but deques allocate per block and, worse, entries whose
/// payload is a SmallVector lose their spilled heap capacity every time an
/// entry is popped and a new one is constructed. A ring never destroys its
/// slots: pop_front() just advances the head index and the slot's payload
/// buffers stay allocated until the same slot is reused by a later
/// push_slot(). Once the ring has grown to the window's high-water entry
/// count, a steady-state run performs zero allocations here.
///
/// Contract for slot reuse: refill payload containers with `.assign()` /
/// `.clear()` + `push_back`, never `operator=` — SmallVector's assignment
/// operators release the spilled buffer, which would defeat the reuse.
///
/// Growth doubles the backing vector and linearizes the live entries (the
/// only moment entries are moved); capacity is never given back. The
/// backing storage is a RecycledVector, so growth reallocations (and the
/// final release at teardown) cycle through the thread's spill-block
/// cache instead of the system allocator.

namespace lifting {

template <typename T>
class RingLog {
 public:
  RingLog() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Oldest-first access: (*this)[0] is the front, [size()-1] the back.
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    LIFTING_ASSERT(i < size_, "RingLog index out of range");
    return buf_[wrap(head_ + i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    LIFTING_ASSERT(i < size_, "RingLog index out of range");
    return buf_[wrap(head_ + i)];
  }

  [[nodiscard]] T& front() noexcept { return (*this)[0]; }
  [[nodiscard]] const T& front() const noexcept { return (*this)[0]; }
  [[nodiscard]] T& back() noexcept { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[size_ - 1]; }

  /// Appends an entry and returns the (recycled) slot for the caller to
  /// fill. The slot holds whatever a previously pruned entry left behind —
  /// callers overwrite every field they read back.
  [[nodiscard]] T& push_slot() {
    if (size_ == buf_.size()) grow();
    T& slot = buf_[wrap(head_ + size_)];
    ++size_;
    return slot;
  }

  /// Drops the oldest entry without destroying the slot (its payload
  /// capacity is recycled by a future push_slot()).
  void pop_front() noexcept {
    LIFTING_ASSERT(size_ > 0, "pop_front on empty RingLog");
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// Forgets the live entries; slots (and their payload capacity) remain.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i < buf_.size() ? i : i - buf_.size();
  }

  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    RecycledVector<T> next;
    next.reserve(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next.push_back(std::move((*this)[i]));
    }
    next.resize(new_cap);
    buf_.swap(next);
    head_ = 0;
  }

  RecycledVector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lifting

#endif  // LIFTING_COMMON_RING_LOG_HPP

#ifndef LIFTING_COMMON_ASSERT_HPP
#define LIFTING_COMMON_ASSERT_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

/// Invariant / precondition checking for the LiFTinG library.
///
/// LIFTING_ASSERT is an always-on invariant check (the simulator is the
/// ground truth for the paper's claims, so internal consistency must hold in
/// release builds too). Configuration errors raise exceptions instead — see
/// lifting::require.

#define LIFTING_ASSERT(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "LIFTING_ASSERT failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, (msg));                             \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

namespace lifting {

/// Validates a user-supplied configuration value; throws on violation.
/// Use for anything reachable from public configuration structs.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

}  // namespace lifting

#endif  // LIFTING_COMMON_ASSERT_HPP

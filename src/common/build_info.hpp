#ifndef LIFTING_COMMON_BUILD_INFO_HPP
#define LIFTING_COMMON_BUILD_INFO_HPP

/// Build self-description for bench headers: saved bench logs must say what
/// was measured. A debug-built bench number is meaningless as a baseline
/// (the checked-in BENCH_baseline.json was once captured from a debug build
/// precisely because nothing said so), and sanitizer builds distort timing
/// by an order of magnitude.

namespace lifting {

/// "release" when compiled with NDEBUG (assert()-free codegen), else
/// "debug". Tracks the translation unit including this header, which for
/// the benches matches the library build (one CMake build type per tree).
[[nodiscard]] constexpr const char* build_type() noexcept {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Sanitizer instrumentation compiled into this binary, or "none".
/// GCC defines __SANITIZE_*__; Clang exposes the same via __has_feature.
#if !defined(__has_feature)
#define LIFTING_HAS_FEATURE(x) 0
#else
#define LIFTING_HAS_FEATURE(x) __has_feature(x)
#endif
[[nodiscard]] constexpr const char* sanitizer_tag() noexcept {
#if defined(__SANITIZE_THREAD__) || LIFTING_HAS_FEATURE(thread_sanitizer)
  return "tsan";
#elif defined(__SANITIZE_ADDRESS__) || LIFTING_HAS_FEATURE(address_sanitizer)
  return "asan";
#else
  return "none";
#endif
}
#undef LIFTING_HAS_FEATURE

}  // namespace lifting

#endif  // LIFTING_COMMON_BUILD_INFO_HPP

#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace lifting {

std::uint32_t Pcg32::binomial(std::uint32_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // For the sizes used in the blame model (n <= a few hundred), summing
  // Bernoulli trials is exact and fast enough; the analysis sampler calls
  // this in tight loops with n = |R| or f.
  std::uint32_t successes = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    successes += bernoulli(p) ? 1U : 0U;
  }
  return successes;
}

std::uint32_t Pcg32::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  std::uint32_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

double Pcg32::normal() noexcept {
  // Polar Box–Muller; the spare variate is discarded so that consumption
  // of the underlying stream is deterministic per call.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::uint32_t round_randomized(Pcg32& rng, double x) {
  LIFTING_ASSERT(x >= 0.0, "round_randomized requires x >= 0");
  const double fl = std::floor(x);
  const double frac = x - fl;
  return static_cast<std::uint32_t>(fl) + (rng.bernoulli(frac) ? 1U : 0U);
}

std::vector<std::uint32_t> sample_k_distinct(Pcg32& rng, std::uint32_t n,
                                             std::uint32_t k) {
  std::vector<std::uint32_t> result;
  sample_k_distinct_into(rng, n, k, result);
  return result;
}

void sample_k_distinct_into(Pcg32& rng, std::uint32_t n, std::uint32_t k,
                            std::vector<std::uint32_t>& out) {
  LIFTING_ASSERT(k <= n, "sample_k_distinct requires k <= n");
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; take t unless
  // already chosen, in which case take j (always new — every earlier pick
  // is <= j-1). Produces a uniform k-subset. The partial result doubles as
  // the chosen-set, so no hash set and no allocation beyond `out`'s
  // (retained) capacity.
  out.clear();
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const std::uint32_t t = rng.below(j + 1);
    const bool taken = std::find(out.begin(), out.end(), t) != out.end();
    out.push_back(taken ? j : t);
  }
  // Floyd's method biases element order (later slots favor later indices);
  // shuffle so callers may truncate or iterate without order effects.
  rng.shuffle(out);
}

}  // namespace lifting
